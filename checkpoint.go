package lbica

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"lbica/internal/checkpoint"
	"lbica/internal/engine"
)

// checkpointKey is the canonical identity of a single-stack run: every
// normalized option that shapes the simulation, plus the checkpoint
// format version. A restore whose options produce a different key is
// resuming a different experiment and is rejected outright — unlike the
// sweep's warm cache (where a bad entry silently degrades to scratch), a
// checkpoint file named explicitly by the user is a hard contract.
func checkpointKey(o Options) string {
	t := o.Thresholds.coreThresholds().Normalize()
	id := struct {
		Format                       int
		Workload, Name, Scheme       string
		Seed                         int64
		Intervals                    int
		IntervalNS                   int64
		RateFactor                   float64
		Phases                       []Phase
		CacheMiB, CacheWays          int
		Replacement                  string
		DominantPair, MemberMin      float64
		PromoteAlone, ReadAlone      float64
		MinQueued                    int
		DiskElevator, DisablePrewarm bool
	}{
		Format:         checkpoint.FormatVersion,
		Workload:       strings.ToLower(o.Workload),
		Name:           o.Name,
		Scheme:         strings.ToLower(o.Scheme),
		Seed:           o.Seed,
		Intervals:      o.Intervals,
		IntervalNS:     int64(o.IntervalLength),
		RateFactor:     o.RateFactor,
		Phases:         o.Phases,
		CacheMiB:       o.CacheMiB,
		CacheWays:      o.CacheWays,
		Replacement:    o.Replacement,
		DominantPair:   t.DominantPair,
		MemberMin:      t.MemberMin,
		PromoteAlone:   t.PromoteAlone,
		ReadAlone:      t.ReadAlone,
		MinQueued:      t.MinQueued,
		DiskElevator:   o.DiskElevator,
		DisablePrewarm: o.DisablePrewarm,
	}
	// The struct holds only JSON-marshalable field types, so Marshal
	// cannot fail; json gives a canonical, human-inspectable encoding.
	b, _ := json.Marshal(id)
	return "run|" + string(b)
}

// checkpointable rejects option combinations the single-run checkpoint
// path does not cover.
func checkpointable(o Options) error {
	if o.Volumes > 1 {
		return fmt.Errorf("lbica: checkpoint/restore needs a single volume (got Volumes %d); multi-volume warmups persist through the sweep warm cache instead (lbicasweep -warm-cache)", o.Volumes)
	}
	if o.TraceWriter != nil || o.RecordTo != nil || o.ReplayFrom != nil {
		return fmt.Errorf("lbica: checkpoint/restore does not compose with TraceWriter, RecordTo or ReplayFrom")
	}
	return nil
}

// buildSingleStack assembles the single-volume stack for normalized
// options, exactly as RunContext's single-stack path wires it (minus
// trace/record plumbing, which checkpointable rejects).
func buildSingleStack(o Options) (*engine.Stack, error) {
	gen, err := buildWorkload(o, nil)
	if err != nil {
		return nil, err
	}
	bal, initial, err := buildScheme(o)
	if err != nil {
		return nil, err
	}
	cfg, err := buildEngineConfig(o, initial)
	if err != nil {
		return nil, err
	}
	return engine.New(cfg, gen, bal), nil
}

// RunCheckpoint is RunContext with a mid-run save: the simulation pauses
// at the saveAt-th interval barrier, writes its complete warmed state to
// path (atomically: temp file + rename), then runs to completion and
// returns the full report — byte-identical to the same RunContext call.
// A later RunRestore with the same options resumes from the barrier and
// finishes the identical run. saveAt zero means half the run; it must be
// positive and strictly before Options.Intervals otherwise. Single-volume
// runs only — multi-volume warmups persist through the sweep warm cache.
//
// A cancellation that arrives before the barrier skips the save (no file
// is written — a halted mid-interval state is not a resumable prefix) and
// returns the partial report with ctx.Err(), like RunContext.
func RunCheckpoint(ctx context.Context, o Options, path string, saveAt int) (*Report, error) {
	o, err := normalizeOptions(o)
	if err != nil {
		return nil, err
	}
	if err := checkpointable(o); err != nil {
		return nil, err
	}
	if saveAt < 0 {
		return nil, fmt.Errorf("lbica: negative checkpoint interval %d; zero means half the run", saveAt)
	}
	if saveAt == 0 {
		saveAt = o.Intervals / 2
		if saveAt == 0 {
			saveAt = 1
		}
	}
	if saveAt >= o.Intervals {
		return nil, fmt.Errorf("lbica: checkpoint interval %d is not strictly before the run's %d intervals", saveAt, o.Intervals)
	}
	st, err := buildSingleStack(o)
	if err != nil {
		return nil, err
	}
	st.Start(ctx, o.Intervals)
	st.StepTo(time.Duration(saveAt) * o.IntervalLength)
	if ctx.Err() == nil {
		payload, err := checkpoint.EncodeStack(st)
		if err != nil {
			return nil, fmt.Errorf("lbica: encoding checkpoint: %w", err)
		}
		if err := checkpoint.WriteFile(path, checkpointKey(o), [][]byte{payload}); err != nil {
			return nil, fmt.Errorf("lbica: writing checkpoint: %w", err)
		}
	}
	st.Drain()
	res := st.Collect()
	return buildReport(o, res), runCtxErr(ctx, o, res)
}

// RunRestore resumes a run saved with RunCheckpoint: o must describe the
// same run (same workload, scheme, seed, intervals, cache geometry, …) —
// the file records the run's canonical identity and a mismatch is an
// error, as is any corruption, truncation or format-version skew. The
// simulation picks up at the saved barrier and runs to completion; the
// report is byte-identical to the uninterrupted run's.
func RunRestore(ctx context.Context, o Options, path string) (*Report, error) {
	o, err := normalizeOptions(o)
	if err != nil {
		return nil, err
	}
	if err := checkpointable(o); err != nil {
		return nil, err
	}
	key, payloads, err := checkpoint.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lbica: %w", err)
	}
	if key != checkpointKey(o) {
		return nil, fmt.Errorf("lbica: checkpoint %s was saved for a different run configuration", path)
	}
	if len(payloads) != 1 {
		return nil, fmt.Errorf("lbica: checkpoint %s holds %d stacks; single-run restore needs exactly 1", path, len(payloads))
	}
	st, err := buildSingleStack(o)
	if err != nil {
		return nil, err
	}
	if err := checkpoint.DecodeStack(ctx, st, payloads[0]); err != nil {
		return nil, fmt.Errorf("lbica: restoring checkpoint %s: %w", path, err)
	}
	st.Drain()
	res := st.Collect()
	return buildReport(o, res), runCtxErr(ctx, o, res)
}

// runCtxErr applies RunContext's partial-run rule: a cancellation that
// lands only after every requested interval has sampled changed nothing —
// the run is complete, not partial.
func runCtxErr(ctx context.Context, o Options, res *engine.Results) error {
	if err := ctx.Err(); err != nil && len(res.Samples) < o.Intervals {
		return err
	}
	return nil
}
