package lbica

import (
	"context"
	"strings"

	"lbica/internal/experiments"
	"lbica/internal/runner"
	"lbica/internal/sim"
)

// RunnerOptions configures a RunAll batch. The zero value runs the batch
// across GOMAXPROCS workers with each spec's own seed.
type RunnerOptions struct {
	// Workers caps the worker pool; ≤0 means GOMAXPROCS. Workers == 1 is
	// the serial baseline — RunAll's output is byte-identical for every
	// worker count.
	Workers int

	// Seed, when non-zero, assigns every spec whose own Seed is zero an
	// isolated per-run seed split off with sim.Stream(Seed, i), where i is
	// the spec's index in the batch. Splits depend only on (Seed, index),
	// never on scheduling, so re-running the batch — serially, in
	// parallel, or with a different worker count — reproduces the same
	// reports bit for bit. Specs with an explicit Seed keep it.
	Seed int64

	// OnProgress, when non-nil, observes completion: it is called once
	// per finished run with the running count and the batch size. Calls
	// are serialized but arrive in completion order.
	OnProgress func(done, total int)
}

// RunAll executes a batch of independent simulations across a bounded
// worker pool and returns the reports in spec order: reports[i] is the
// run of specs[i], whatever order the runs finished in.
//
// Determinism guarantee: no state is shared between runs — each run's
// randomness derives from its own (seed, workload, component) stream
// tuple — so the returned reports are byte-identical to executing the
// specs one at a time in order. Streams in TraceWriter/RecordTo of
// different specs may interleave their writes only if they alias the same
// underlying writer; give each spec its own.
//
// ctx cancels the batch: runs in flight stop at their next event
// boundary, queued runs never start, and RunAll returns ctx.Err(). A
// failing spec likewise cancels the rest and its error is returned.
func RunAll(ctx context.Context, specs []Options, ro RunnerOptions) ([]*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	resolved := make([]Options, len(specs))
	for i, o := range specs {
		if o.Seed == 0 && ro.Seed != 0 {
			o.Seed = sim.Stream(ro.Seed, i)
		}
		resolved[i] = o
	}
	opt := runner.Options{Workers: ro.Workers}
	if ro.OnProgress != nil {
		opt.OnDone = func(_, done, total int) { ro.OnProgress(done, total) }
	}
	return runner.Map(ctx, len(resolved), opt,
		func(ctx context.Context, i int) (*Report, error) {
			return RunContext(ctx, resolved[i])
		})
}

// MatrixSpecs returns the paper's evaluation matrix — the 3 workloads ×
// 3 schemes of Figs. 4–7 — as a RunAll batch in paper order (workload-
// major). All cells share the given seed so every scheme sees an
// identical workload, the paper's controlled comparison.
func MatrixSpecs(seed int64) []Options {
	// Seed 0 is pinned to the run default here rather than left for Run
	// to fill: a zero seed in the batch would let RunnerOptions.Seed
	// split per-cell streams, silently breaking the shared-workload
	// comparison this function promises.
	if seed == 0 {
		seed = 1
	}
	// Derived from the experiments package's lists so the public batch
	// can never drift from the figure harness's enumeration.
	specs := make([]Options, 0, len(experiments.Workloads)*len(experiments.Schemes))
	for _, wl := range experiments.Workloads {
		for _, sc := range experiments.Schemes {
			specs = append(specs, Options{Workload: wl, Scheme: strings.ToLower(sc), Seed: seed})
		}
	}
	return specs
}
