module lbica

go 1.24
