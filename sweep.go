package lbica

import (
	"context"
	"io"
	"time"

	"lbica/internal/sweep"
)

// GridSpec declares a parameter sweep: the cross product of its axes,
// generalizing the paper's fixed 3 workloads × 3 schemes matrix along the
// dimensions its claims should be robust to. Empty axes fall back to the
// paper's evaluation defaults, so the zero GridSpec is exactly the paper's
// matrix.
type GridSpec struct {
	// Workloads names workload-catalog entries: the paper trio
	// (tpcc|mail|web), the synthetic catalog (synth-randread,
	// synth-randwrite, synth-seqread, synth-seqwrite, synth-mixed,
	// burst-mix-lo|mid|hi), or parameterized family names such as
	// "synth-randread-zipf1.2" and "burst-mix-on6x-duty0.45-read0.35".
	// Empty = the paper trio. Schemes are wb|sib|lbica|array-lb; empty =
	// the paper trio (wb, sib, lbica).
	Workloads []string
	Schemes   []string
	// CacheMults scales the SSD cache capacity relative to the paper's
	// 256 MiB configuration (empty = {1}).
	CacheMults []float64
	// RateFactors scales workload IOPS (empty = {1}).
	RateFactors []float64
	// BurstMults is the burst-intensity axis: each value scales every
	// bursting phase's ON-rate and ON/OFF duty cycle (empty = {1}, the
	// workloads' published burst shapes).
	BurstMults []float64
	// Volumes is the array-width axis: each value shards every run across
	// that many independent cache+disk volumes behind a deterministic
	// router (empty = {1}, the paper's single stack).
	Volumes []int
	// RouteSkews is the router-skew axis: the Zipf exponent of the
	// router's volume-popularity distribution (0 = uniform routing; empty
	// = {0}). Skew is inert at one volume, so for width-1 cells every
	// skew canonicalizes to the single skew-0 cell (expanded once, never
	// inflating replicate counts); the collapsed combinations are
	// reported in SweepResult.Skipped rather than failing the sweep.
	RouteSkews []float64
	// RouteVariant selects the "array-lb" controller's adaptation
	// mechanism for every array-lb cell of the sweep: "weighted"
	// (default) or "p2c". Ignored by the other schemes.
	RouteVariant string
	// SeedReplicates is the number of seed replicates per cell (default 1).
	// Replicate r derives its seed from (Seed, r) alone, and every scheme
	// inside a replicate shares it — the paper's controlled comparison.
	SeedReplicates int
	// Seed is the base seed (default 1).
	Seed int64
	// Intervals and IntervalLength override the per-run scale (0 = the
	// paper's defaults).
	Intervals      int
	IntervalLength time.Duration
	// WarmupIntervals, when positive, lets cells that differ only by
	// scheme share one simulated warmup prefix of that many intervals:
	// the prefix is simulated once — for multi-volume cells, across the
	// whole statically routed array — and every sibling scheme's run is
	// forked from the warm state (falling back to a scratch run whenever
	// sharing would change the output). Results stay byte-identical to a
	// WarmupIntervals == 0 sweep; only wall-clock time changes. The plan's
	// outcomes land in SweepResult.Warm. Negative values are an error.
	WarmupIntervals int
	// WarmCacheDir, when non-empty, backs the warm-fork plan with a
	// persistent on-disk checkpoint store rooted at that directory: each
	// shared warmup prefix is restored from the store when a previous
	// invocation left it there and written through after being simulated,
	// so repeated sweeps over overlapping grids skip the warmup wall-clock
	// entirely. Results stay byte-identical to an uncached sweep; a
	// missing, corrupt, truncated, or version-skewed entry silently falls
	// back to simulation (tallied in SweepResult.Warm) and is overwritten.
	// The directory is created if absent; an unusable path is an error
	// before any run starts. Requires WarmupIntervals > 0.
	WarmCacheDir string
	// CITolerance, when positive, turns on cross-cell early termination:
	// a grid coordinate stops launching further seed replicates once, for
	// every scheme at that coordinate, the 95% confidence half-width over
	// the completed replicates' QMeanUS is at most CITolerance × the
	// metric's mean (relative tolerance; at least two replicates always
	// run), and the freed worker slot goes to unfinished coordinates.
	// Terminated cells are marked (SweepCell.EarlyTerminated) with their
	// achieved half-width and actual replicate count. 0 (the default)
	// runs every replicate and emits byte-identical output to earlier
	// versions; negative or non-finite values are an error.
	CITolerance float64
}

// SweepOptions tunes sweep execution.
type SweepOptions struct {
	// Workers caps the runner pool (≤0 = GOMAXPROCS; 1 = serial baseline).
	Workers int
	// OnProgress, when non-nil, observes completion (serialized,
	// completion order).
	OnProgress func(done, total int)
	// SeriesDir, when non-empty, exports each run's per-interval series
	// (cache/disk load, hit ratio, balancer group and policy) as one CSV
	// per cell into the directory; bytes are identical for every Workers
	// value.
	SeriesDir string
}

// SweepRun is one finished simulation of a sweep: its grid coordinates
// plus scalar metrics. QMeanUS is the run's mean per-interval maximum
// cache queue time (the Fig. 4 metric, µs) and DiskQMeanUS the
// disk-subsystem counterpart.
type SweepRun struct {
	Workload     string
	Scheme       string
	CacheMult    float64
	RateFactor   float64
	BurstMult    float64
	Volumes      int
	RouteSkew    float64
	Replicate    int
	Seed         int64
	QMeanUS      float64
	DiskQMeanUS  float64
	AvgLatencyUS float64
	HitRatio     float64
	PolicyFlips  int
	Requests     uint64
}

// SweepCell summarizes one (workload, scheme, cache-mult, rate) cell
// across its seed replicates: mean/min/max of the max-queue-time metric,
// mean latency and hit ratio, mean policy-flip count, and latency
// speedups against the WB and SIB cells at the same coordinate (zero when
// the sweep has no matching baseline).
type SweepCell struct {
	Workload        string
	Scheme          string
	CacheMult       float64
	RateFactor      float64
	BurstMult       float64
	Volumes         int
	RouteSkew       float64
	Replicates      int
	QMeanUS         float64
	QMinUS          float64
	QMaxUS          float64
	DiskQMeanUS     float64
	LatencyMeanUS   float64
	HitRatioMean    float64
	PolicyFlipsMean float64
	SpeedupVsWB     float64
	SpeedupVsSIB    float64
	// QCIHalfUS is the achieved 95% confidence half-width over the
	// replicates' QMeanUS and EarlyTerminated marks a coordinate that
	// stopped below the requested replicate count — both populated only
	// on early-termination sweeps (GridSpec.CITolerance > 0) with at
	// least two completed replicates.
	QCIHalfUS       float64
	EarlyTerminated bool
}

// SweepResult is a finished (or interrupted) sweep: every completed run in
// deterministic expansion order plus the per-cell aggregation. Total is
// the grid size; on an interrupted sweep Completed < Total and the result
// covers only the runs that finished.
type SweepResult struct {
	Runs      []SweepRun
	Cells     []SweepCell
	Total     int
	Completed int
	// Skipped lists grid combinations the expansion canonicalized away
	// (one entry per inert width-1 × non-zero-skew pair), for the log.
	Skipped []string
	// Warm summarizes the warm-fork plan's outcomes (nil unless
	// GridSpec.WarmupIntervals > 0): how many runs led a shared warmup,
	// forked one, or fell back to scratch — keyed by reason — so a
	// regression to 0% sharing is visible instead of a silent slowdown.
	Warm *SweepWarmStats

	res *sweep.Result
}

// SweepWarmStats counts a warm-fork sweep's per-run plan outcomes.
type SweepWarmStats struct {
	// Leaders ran the shared warmup prefix themselves; Forked reused a
	// leader's prefix via a deep-copy state fork; Scratch ran from
	// scratch.
	Leaders int
	Forked  int
	Scratch int
	// Fallbacks keys scratch runs by reason: "no-leader" (nothing to
	// share), "sib", "balancer-acted", "multi-volume" (an array-lb cell
	// whose adaptive controller diverges from the static prefix), or
	// "fork-error".
	Fallbacks map[string]int
	// Persistent-cache tallies, all zero unless GridSpec.WarmCacheDir is
	// set: CacheHits leaders restored their warmup prefix from the store,
	// CacheStores simulated and published it, and CacheCorrupt counts the
	// stores forced by an unusable entry (also included in CacheStores).
	// Cached leaders are included in Leaders, so Leaders + Forked +
	// Scratch still covers every run.
	CacheHits    int
	CacheStores  int
	CacheCorrupt int
}

// Sweep expands the grid and executes it across the bounded worker pool.
//
// The determinism guarantee of RunAll extends to sweeps: expansion order
// is a pure function of the spec, every run's randomness derives from its
// own grid coordinates, and aggregation folds runs in expansion order —
// so the result (and every emitted report) is byte-identical for any
// worker count, including the Workers == 1 serial baseline.
//
// Cancellation returns ctx's error together with a partial result
// aggregating the runs that completed.
func Sweep(ctx context.Context, g GridSpec, opt SweepOptions) (*SweepResult, error) {
	res, err := sweep.Execute(ctx, sweep.Grid{
		Workloads:       g.Workloads,
		Schemes:         g.Schemes,
		CacheMults:      g.CacheMults,
		RateFactors:     g.RateFactors,
		BurstMults:      g.BurstMults,
		Volumes:         g.Volumes,
		RouteSkews:      g.RouteSkews,
		RouteVariant:    g.RouteVariant,
		Replicates:      g.SeedReplicates,
		Seed:            g.Seed,
		Intervals:       g.Intervals,
		Interval:        g.IntervalLength,
		WarmupIntervals: g.WarmupIntervals,
		WarmCacheDir:    g.WarmCacheDir,
		CITolerance:     g.CITolerance,
	}, sweep.Options{Workers: opt.Workers, OnDone: opt.OnProgress, SeriesDir: opt.SeriesDir})
	if res == nil {
		return nil, err
	}
	out := &SweepResult{
		Runs:      make([]SweepRun, len(res.Runs)),
		Cells:     make([]SweepCell, len(res.Cells)),
		Total:     res.Total,
		Completed: res.Completed,
		Skipped:   res.Skipped,
		res:       res,
	}
	if res.Warm != nil {
		out.Warm = &SweepWarmStats{
			Leaders:      res.Warm.Leaders,
			Forked:       res.Warm.Forked,
			Scratch:      res.Warm.Scratch,
			Fallbacks:    res.Warm.Fallbacks,
			CacheHits:    res.Warm.CacheHits,
			CacheStores:  res.Warm.CacheStores,
			CacheCorrupt: res.Warm.CacheCorrupt,
		}
	}
	for i, r := range res.Runs {
		out.Runs[i] = SweepRun(r)
	}
	for i, c := range res.Cells {
		out.Cells[i] = SweepCell(c)
	}
	return out, err
}

// WriteCSV emits the per-cell summaries as CSV (lossless float encoding;
// sweep.ParseCellsCSV-compatible layout).
func (r *SweepResult) WriteCSV(w io.Writer) error { return sweep.WriteCellsCSV(w, r.res.Cells) }

// WriteJSON emits the whole result — grid, runs, cells — as indented JSON.
func (r *SweepResult) WriteJSON(w io.Writer) error { return sweep.WriteJSON(w, r.res) }

// WriteReport renders the compact text report.
func (r *SweepResult) WriteReport(w io.Writer) error { return sweep.WriteReport(w, r.res) }
