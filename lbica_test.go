package lbica

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// quick returns small-run options so facade tests stay fast.
func quick(workload, scheme string) Options {
	return Options{
		Workload:       workload,
		Scheme:         scheme,
		Intervals:      12,
		IntervalLength: 100 * time.Millisecond,
		RateFactor:     0.5,
	}
}

func TestRunDefaults(t *testing.T) {
	r, err := Run(Options{Intervals: 4, IntervalLength: 50 * time.Millisecond, RateFactor: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != "tpcc" || r.Scheme != "LBICA" {
		t.Errorf("defaults = %s/%s", r.Workload, r.Scheme)
	}
	if len(r.Intervals) != 4 {
		t.Errorf("intervals = %d", len(r.Intervals))
	}
	if r.Summary.Requests == 0 {
		t.Error("no requests simulated")
	}
}

func TestRunUnknownInputs(t *testing.T) {
	if _, err := Run(Options{Workload: "nope"}); err == nil {
		t.Error("unknown workload must error")
	}
	if _, err := Run(Options{Scheme: "nope"}); err == nil {
		t.Error("unknown scheme must error")
	}
	if _, err := Run(Options{CacheMiB: 1, CacheWays: 10000}); err == nil {
		t.Error("impossible cache geometry must error")
	}
}

func TestAllSchemesRun(t *testing.T) {
	for _, sc := range []string{SchemeWB, SchemeSIB, SchemeLBICA, SchemeArrayLB, SchemeStaticWT, SchemeStaticRO, SchemeStaticWO, SchemeStaticWTWO} {
		r, err := Run(quick(WorkloadMixed, sc))
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if r.Summary.Requests == 0 {
			t.Errorf("%s: no requests", sc)
		}
	}
}

func TestAllWorkloadsRun(t *testing.T) {
	for _, wl := range []string{WorkloadTPCC, WorkloadMail, WorkloadWeb, WorkloadRandomRead,
		WorkloadRandomWrite, WorkloadSeqRead, WorkloadSeqWrite, WorkloadMixed} {
		r, err := Run(quick(wl, SchemeWB))
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if r.Summary.Requests == 0 {
			t.Errorf("%s: no requests", wl)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(quick(WorkloadMail, SchemeLBICA))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quick(WorkloadMail, SchemeLBICA))
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary != b.Summary {
		t.Errorf("summaries differ:\n%+v\n%+v", a.Summary, b.Summary)
	}
}

func TestCustomPhases(t *testing.T) {
	r, err := Run(Options{
		Name:   "spike",
		Scheme: SchemeLBICA,
		Phases: []Phase{
			{Name: "calm", Duration: 200 * time.Millisecond, BaseIOPS: 1000, ReadRatio: 0.9, WorkingSetBlocks: 4096, ZipfExponent: 0.9},
			{Name: "storm", Duration: 400 * time.Millisecond, BaseIOPS: 2000, BurstIOPS: 15000,
				BurstOn: 40 * time.Millisecond, BurstOff: 60 * time.Millisecond,
				ReadRatio: 0.9, WorkingSetBlocks: 131072, ZipfExponent: 0.7},
		},
		Intervals:      6,
		IntervalLength: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != "spike" {
		t.Errorf("workload = %q", r.Workload)
	}
	if r.Summary.Requests == 0 {
		t.Error("custom workload produced nothing")
	}
}

func TestStaticPolicySchemeNames(t *testing.T) {
	r, err := Run(quick(WorkloadMixed, SchemeStaticRO))
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheme != "RO" {
		t.Errorf("scheme = %q, want RO", r.Scheme)
	}
}

func TestTraceCapture(t *testing.T) {
	var buf bytes.Buffer
	o := quick(WorkloadMixed, SchemeWB)
	o.TraceWriter = &buf
	if _, err := Run(o); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no trace bytes written")
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("LBICATR1")) {
		t.Error("trace magic missing")
	}
}

func TestReportCSV(t *testing.T) {
	r, err := Run(quick(WorkloadMail, SchemeLBICA))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(r.Intervals)+1 {
		t.Fatalf("csv lines = %d, want %d", len(lines), len(r.Intervals)+1)
	}
	if !strings.HasPrefix(lines[0], "interval,cache_load_us") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestCacheGeometryOptions(t *testing.T) {
	o := quick(WorkloadRandomRead, SchemeWB)
	o.CacheMiB = 32
	o.CacheWays = 4
	o.DisablePrewarm = true
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	// A 32 MiB cold cache under a large working set must show misses.
	if r.Summary.HitRatio > 0.9 {
		t.Errorf("hit ratio %.2f too high for a small cold cache", r.Summary.HitRatio)
	}
}

func TestRecordAndReplay(t *testing.T) {
	var rec bytes.Buffer
	o := quick(WorkloadMixed, SchemeWB)
	o.RecordTo = &rec
	a, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("nothing recorded")
	}
	// Replay the captured stream through a different scheme: the request
	// count must match exactly.
	b, err := Run(Options{
		ReplayFrom:     bytes.NewReader(rec.Bytes()),
		Scheme:         SchemeLBICA,
		Intervals:      12,
		IntervalLength: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Workload != "replay" {
		t.Errorf("workload = %q", b.Workload)
	}
	if b.Summary.Requests != a.Summary.Requests {
		t.Errorf("replay served %d requests, original %d", b.Summary.Requests, a.Summary.Requests)
	}
}

func TestReplayBadStream(t *testing.T) {
	if _, err := Run(Options{ReplayFrom: strings.NewReader("garbage-bytes!!!")}); err == nil {
		t.Error("bad replay stream must error")
	}
}

func TestEnduranceAccounting(t *testing.T) {
	// RO never writes to the SSD beyond promotes; WB buffers every write.
	wb, err := Run(quick(WorkloadRandomWrite, SchemeWB))
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Run(quick(WorkloadRandomWrite, SchemeStaticRO))
	if err != nil {
		t.Fatal(err)
	}
	if wb.Summary.SSDWrittenMiB <= 0 {
		t.Fatal("WB run recorded no SSD writes")
	}
	if ro.Summary.SSDWrittenMiB >= wb.Summary.SSDWrittenMiB/2 {
		t.Errorf("RO SSD writes %.1f MiB not well below WB %.1f MiB",
			ro.Summary.SSDWrittenMiB, wb.Summary.SSDWrittenMiB)
	}
	if ro.Summary.HDDWrittenMiB <= wb.Summary.HDDWrittenMiB {
		t.Errorf("RO disk writes %.1f MiB not above WB %.1f MiB",
			ro.Summary.HDDWrittenMiB, wb.Summary.HDDWrittenMiB)
	}
}

func TestSummaryQuantileOrdering(t *testing.T) {
	r, err := Run(quick(WorkloadTPCC, SchemeWB))
	if err != nil {
		t.Fatal(err)
	}
	s := r.Summary
	if s.P50Latency > s.P99Latency || s.P99Latency > s.MaxLatency {
		t.Errorf("quantiles out of order: p50=%v p99=%v max=%v", s.P50Latency, s.P99Latency, s.MaxLatency)
	}
	if s.AvgLatency <= 0 {
		t.Error("avg latency missing")
	}
}

// TestCatalogWorkloadsThroughPublicAPI: names beyond the legacy aliases
// resolve through the workload catalog — presets and parameterized family
// names both run end to end.
func TestCatalogWorkloadsThroughPublicAPI(t *testing.T) {
	for _, wl := range []string{"burst-mix-hi", "synth-randread-zipf1.2", "burst-mix-on4x-duty0.3-read0.5"} {
		r, err := Run(quick(wl, SchemeLBICA))
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if r.Workload != wl {
			t.Errorf("report labeled %q, want %q", r.Workload, wl)
		}
		if r.Summary.Requests == 0 {
			t.Errorf("%s completed no requests", wl)
		}
	}
	if _, err := Run(quick("burst-mix-onXx-duty0.3-read0.5", SchemeWB)); err == nil {
		t.Error("malformed family name ran instead of erroring")
	}
}

// TestNegativeOptionsAreErrors: zero means "use the default"; negative
// Intervals/IntervalLength/RateFactor used to be silently rewritten to
// their defaults and must now surface as errors.
func TestNegativeOptionsAreErrors(t *testing.T) {
	for _, o := range []Options{
		{Intervals: -1},
		{IntervalLength: -time.Second},
		{RateFactor: -0.5},
	} {
		if _, err := Run(o); err == nil {
			t.Errorf("Options %+v ran instead of erroring", o)
		}
	}
}
