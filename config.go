package lbica

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// The JSON configuration surface: everything in Options except the
// stream fields (trace, record, replay), which are wired up by the caller.
// Durations serialize as Go duration strings ("200ms", "1.5s").

// optionsJSON mirrors Options with JSON-friendly fields.
type optionsJSON struct {
	Workload       string      `json:"workload,omitempty"`
	Scheme         string      `json:"scheme,omitempty"`
	Seed           int64       `json:"seed,omitempty"`
	Intervals      int         `json:"intervals,omitempty"`
	IntervalLength string      `json:"interval_length,omitempty"`
	RateFactor     float64     `json:"rate_factor,omitempty"`
	Name           string      `json:"name,omitempty"`
	Phases         []phaseJSON `json:"phases,omitempty"`
	CacheMiB       int         `json:"cache_mib,omitempty"`
	CacheWays      int         `json:"cache_ways,omitempty"`
	Replacement    string      `json:"replacement,omitempty"`
	DiskElevator   bool        `json:"disk_elevator,omitempty"`
	DisablePrewarm bool        `json:"disable_prewarm,omitempty"`

	Volumes      int             `json:"volumes,omitempty"`
	RoutePolicy  string          `json:"route_policy,omitempty"`
	RouteSkew    float64         `json:"route_skew,omitempty"`
	RouteVariant string          `json:"route_variant,omitempty"`
	ShardWorkers int             `json:"shard_workers,omitempty"`
	Thresholds   *thresholdsJSON `json:"thresholds,omitempty"`
}

// thresholdsJSON mirrors Thresholds; zero/omitted fields inherit the
// paper defaults field-wise, matching the in-process knob.
type thresholdsJSON struct {
	DominantPair float64 `json:"dominant_pair,omitempty"`
	MemberMin    float64 `json:"member_min,omitempty"`
	PromoteAlone float64 `json:"promote_alone,omitempty"`
	ReadAlone    float64 `json:"read_alone,omitempty"`
	MinQueued    int     `json:"min_queued,omitempty"`
}

type phaseJSON struct {
	Name                  string  `json:"name,omitempty"`
	Duration              string  `json:"duration"`
	BaseIOPS              float64 `json:"base_iops"`
	BurstIOPS             float64 `json:"burst_iops,omitempty"`
	BurstOn               string  `json:"burst_on,omitempty"`
	BurstOff              string  `json:"burst_off,omitempty"`
	ReadRatio             float64 `json:"read_ratio"`
	Sequential            float64 `json:"sequential,omitempty"`
	WorkingSetBlocks      int64   `json:"working_set_blocks"`
	BaseBlock             int64   `json:"base_block,omitempty"`
	ZipfExponent          float64 `json:"zipf_exponent,omitempty"`
	SizesSectors          []int64 `json:"sizes_sectors,omitempty"`
	WriteWorkingSetBlocks int64   `json:"write_working_set_blocks,omitempty"`
	WriteBaseBlock        int64   `json:"write_base_block,omitempty"`
	WriteZipfExponent     float64 `json:"write_zipf_exponent,omitempty"`
}

// LoadOptions reads a JSON run configuration.
func LoadOptions(r io.Reader) (Options, error) {
	var j optionsJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return Options{}, fmt.Errorf("lbica: parsing options: %w", err)
	}
	o := Options{
		Workload:       j.Workload,
		Scheme:         j.Scheme,
		Seed:           j.Seed,
		Intervals:      j.Intervals,
		RateFactor:     j.RateFactor,
		Name:           j.Name,
		CacheMiB:       j.CacheMiB,
		CacheWays:      j.CacheWays,
		Replacement:    j.Replacement,
		DiskElevator:   j.DiskElevator,
		DisablePrewarm: j.DisablePrewarm,
		Volumes:        j.Volumes,
		RoutePolicy:    j.RoutePolicy,
		RouteSkew:      j.RouteSkew,
		RouteVariant:   j.RouteVariant,
		ShardWorkers:   j.ShardWorkers,
	}
	if j.Thresholds != nil {
		o.Thresholds = Thresholds{
			DominantPair: j.Thresholds.DominantPair,
			MemberMin:    j.Thresholds.MemberMin,
			PromoteAlone: j.Thresholds.PromoteAlone,
			ReadAlone:    j.Thresholds.ReadAlone,
			MinQueued:    j.Thresholds.MinQueued,
		}
	}
	var err error
	if o.IntervalLength, err = parseDur(j.IntervalLength, "interval_length"); err != nil {
		return Options{}, err
	}
	for i, pj := range j.Phases {
		p := Phase{
			Name:                  pj.Name,
			BaseIOPS:              pj.BaseIOPS,
			BurstIOPS:             pj.BurstIOPS,
			ReadRatio:             pj.ReadRatio,
			Sequential:            pj.Sequential,
			WorkingSetBlocks:      pj.WorkingSetBlocks,
			BaseBlock:             pj.BaseBlock,
			ZipfExponent:          pj.ZipfExponent,
			SizesSectors:          pj.SizesSectors,
			WriteWorkingSetBlocks: pj.WriteWorkingSetBlocks,
			WriteBaseBlock:        pj.WriteBaseBlock,
			WriteZipfExponent:     pj.WriteZipfExponent,
		}
		if p.Duration, err = parseDur(pj.Duration, fmt.Sprintf("phases[%d].duration", i)); err != nil {
			return Options{}, err
		}
		if p.BurstOn, err = parseDur(pj.BurstOn, fmt.Sprintf("phases[%d].burst_on", i)); err != nil {
			return Options{}, err
		}
		if p.BurstOff, err = parseDur(pj.BurstOff, fmt.Sprintf("phases[%d].burst_off", i)); err != nil {
			return Options{}, err
		}
		o.Phases = append(o.Phases, p)
	}
	return o, nil
}

// SaveOptions writes a JSON run configuration.
func SaveOptions(w io.Writer, o Options) error {
	j := optionsJSON{
		Workload:       o.Workload,
		Scheme:         o.Scheme,
		Seed:           o.Seed,
		Intervals:      o.Intervals,
		RateFactor:     o.RateFactor,
		Name:           o.Name,
		CacheMiB:       o.CacheMiB,
		CacheWays:      o.CacheWays,
		Replacement:    o.Replacement,
		DiskElevator:   o.DiskElevator,
		DisablePrewarm: o.DisablePrewarm,
		Volumes:        o.Volumes,
		RoutePolicy:    o.RoutePolicy,
		RouteSkew:      o.RouteSkew,
		RouteVariant:   o.RouteVariant,
		ShardWorkers:   o.ShardWorkers,
	}
	if o.Thresholds != (Thresholds{}) {
		j.Thresholds = &thresholdsJSON{
			DominantPair: o.Thresholds.DominantPair,
			MemberMin:    o.Thresholds.MemberMin,
			PromoteAlone: o.Thresholds.PromoteAlone,
			ReadAlone:    o.Thresholds.ReadAlone,
			MinQueued:    o.Thresholds.MinQueued,
		}
	}
	if o.IntervalLength > 0 {
		j.IntervalLength = o.IntervalLength.String()
	}
	for _, p := range o.Phases {
		pj := phaseJSON{
			Name:                  p.Name,
			Duration:              p.Duration.String(),
			BaseIOPS:              p.BaseIOPS,
			BurstIOPS:             p.BurstIOPS,
			ReadRatio:             p.ReadRatio,
			Sequential:            p.Sequential,
			WorkingSetBlocks:      p.WorkingSetBlocks,
			BaseBlock:             p.BaseBlock,
			ZipfExponent:          p.ZipfExponent,
			SizesSectors:          p.SizesSectors,
			WriteWorkingSetBlocks: p.WriteWorkingSetBlocks,
			WriteBaseBlock:        p.WriteBaseBlock,
			WriteZipfExponent:     p.WriteZipfExponent,
		}
		if p.BurstOn > 0 {
			pj.BurstOn = p.BurstOn.String()
		}
		if p.BurstOff > 0 {
			pj.BurstOff = p.BurstOff.String()
		}
		j.Phases = append(j.Phases, pj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(j)
}

func parseDur(s, field string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("lbica: %s: %w", field, err)
	}
	return d, nil
}
