package lbica_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lbica"
)

// ckptOpts is a small single-stack run the checkpoint tests share.
func ckptOpts(scheme string) lbica.Options {
	return lbica.Options{Workload: "tpcc", Scheme: scheme, Seed: 3, Intervals: 12}
}

// The public contract: a run that pauses to save a checkpoint, and a run
// resumed from that checkpoint, both report byte-identically to the
// uninterrupted RunContext call — for every scheme kind (no balancer,
// periodic-scan SIB, adaptive LBICA).
func TestRunCheckpointRestoreByteIdentical(t *testing.T) {
	for _, scheme := range []string{"wb", "sib", "lbica"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			o := ckptOpts(scheme)
			baseline, err := lbica.Run(o)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "warm.ckpt")
			saved, err := lbica.RunCheckpoint(context.Background(), o, path, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(baseline, saved) {
				t.Error("checkpointing run diverged from the uninterrupted run")
			}
			if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
				t.Fatalf("checkpoint file not written: %v", err)
			}
			restored, err := lbica.RunRestore(context.Background(), o, path)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(baseline, restored) {
				t.Error("restored run diverged from the uninterrupted run")
			}
		})
	}
}

// A checkpoint is a hard contract when named explicitly: options that
// describe a different run, and a corrupted file, are errors — never a
// silent divergent resume.
func TestRunRestoreRejectsMismatchAndCorruption(t *testing.T) {
	o := ckptOpts("lbica")
	path := filepath.Join(t.TempDir(), "warm.ckpt")
	if _, err := lbica.RunCheckpoint(context.Background(), o, path, 4); err != nil {
		t.Fatal(err)
	}

	other := o
	other.Seed = 99
	if _, err := lbica.RunRestore(context.Background(), other, path); err == nil {
		t.Error("restore with a different seed did not error")
	}
	wl := o
	wl.Workload = "mail"
	if _, err := lbica.RunRestore(context.Background(), wl, path); err == nil {
		t.Error("restore with a different workload did not error")
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lbica.RunRestore(context.Background(), o, path); err == nil {
		t.Error("bit-flipped checkpoint did not error")
	}
	if _, err := lbica.RunRestore(context.Background(), o, path+".missing"); err == nil {
		t.Error("missing checkpoint file did not error")
	}
}

func TestRunCheckpointValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "warm.ckpt")
	cases := []struct {
		name   string
		o      lbica.Options
		saveAt int
	}{
		{"negative saveAt", ckptOpts("lbica"), -1},
		{"saveAt at run end", ckptOpts("lbica"), 12},
		{"saveAt past run end", ckptOpts("lbica"), 99},
		{"multi-volume", lbica.Options{Workload: "tpcc", Volumes: 3, Intervals: 12}, 4},
	}
	for _, tc := range cases {
		if _, err := lbica.RunCheckpoint(context.Background(), tc.o, path, tc.saveAt); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	if _, err := lbica.RunRestore(context.Background(), lbica.Options{Workload: "tpcc", Volumes: 3}, path); err == nil {
		t.Error("multi-volume restore: no error")
	}
	// saveAt 0 defaults to half the run and must succeed.
	o := ckptOpts("wb")
	if _, err := lbica.RunCheckpoint(context.Background(), o, path, 0); err != nil {
		t.Errorf("saveAt 0 (half the run): %v", err)
	}
	if _, err := lbica.RunRestore(context.Background(), o, path); err != nil {
		t.Errorf("restore of defaulted-barrier checkpoint: %v", err)
	}
}
