package lbica

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestOptionsJSONRoundTrip(t *testing.T) {
	orig := Options{
		Workload:       "mail",
		Scheme:         "array-lb",
		Seed:           7,
		Intervals:      50,
		IntervalLength: 150 * time.Millisecond,
		RateFactor:     0.8,
		Name:           "custom-mail",
		CacheMiB:       128,
		CacheWays:      4,
		Replacement:    "fifo",
		DiskElevator:   true,
		DisablePrewarm: true,
		Volumes:        3,
		RouteSkew:      1.2,
		RouteVariant:   "p2c",
		ShardWorkers:   2,
		Phases: []Phase{
			{
				Name: "p1", Duration: time.Second, BaseIOPS: 1000, BurstIOPS: 5000,
				BurstOn: 50 * time.Millisecond, BurstOff: 100 * time.Millisecond,
				ReadRatio: 0.7, Sequential: 0.1, WorkingSetBlocks: 1024,
				BaseBlock: 99, ZipfExponent: 1.1, SizesSectors: []int64{8, 16},
				WriteWorkingSetBlocks: 64, WriteBaseBlock: 4096, WriteZipfExponent: 0.5,
			},
		},
	}
	var buf bytes.Buffer
	if err := SaveOptions(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := LoadOptions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, orig)
	}
}

func TestLoadOptionsRejectsUnknownFields(t *testing.T) {
	_, err := LoadOptions(strings.NewReader(`{"workload":"tpcc","typo_field":1}`))
	if err == nil {
		t.Error("unknown field must error")
	}
}

func TestLoadOptionsRejectsBadDurations(t *testing.T) {
	_, err := LoadOptions(strings.NewReader(`{"interval_length":"fast"}`))
	if err == nil || !strings.Contains(err.Error(), "interval_length") {
		t.Errorf("bad duration error = %v", err)
	}
	_, err = LoadOptions(strings.NewReader(`{"phases":[{"duration":"soon","base_iops":1,"read_ratio":1,"working_set_blocks":1}]}`))
	if err == nil || !strings.Contains(err.Error(), "phases[0].duration") {
		t.Errorf("bad phase duration error = %v", err)
	}
}

func TestLoadedOptionsRun(t *testing.T) {
	js := `{
		"workload": "mixed",
		"scheme": "wb",
		"intervals": 6,
		"interval_length": "100ms",
		"rate_factor": 0.4,
		"replacement": "rand"
	}`
	o, err := LoadOptions(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary.Requests == 0 {
		t.Error("config-driven run produced nothing")
	}
}

func TestRunRejectsBadReplacement(t *testing.T) {
	o := quick(WorkloadMixed, SchemeWB)
	o.Replacement = "mru"
	if _, err := Run(o); err == nil {
		t.Error("bad replacement policy must error")
	}
}

func TestDiskElevatorOptionRuns(t *testing.T) {
	o := quick(WorkloadTPCC, SchemeLBICA)
	o.DiskElevator = true
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary.Requests == 0 {
		t.Error("elevator run produced nothing")
	}
}
