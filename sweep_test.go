package lbica_test

import (
	"context"
	"strings"
	"testing"

	"lbica"
)

func quickGrid() lbica.GridSpec {
	return lbica.GridSpec{
		Workloads:      []string{"tpcc"},
		Schemes:        []string{"wb", "sib", "lbica"},
		CacheMults:     []float64{0.5, 1},
		SeedReplicates: 2,
		Seed:           3,
		Intervals:      4,
	}
}

// TestSweepFacade exercises the public Sweep path end to end: grid
// expansion, execution, aggregation, and all three emitters.
func TestSweepFacade(t *testing.T) {
	var progress int
	res, err := lbica.Sweep(t.Context(), quickGrid(), lbica.SweepOptions{
		OnProgress: func(done, total int) { progress = done },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 12 || res.Completed != 12 || len(res.Runs) != 12 {
		t.Fatalf("total %d, completed %d, runs %d; want 12 each", res.Total, res.Completed, len(res.Runs))
	}
	if progress != 12 {
		t.Errorf("OnProgress last reported %d, want 12", progress)
	}
	if len(res.Cells) != 6 { // 1 workload × 3 schemes × 2 cache sizes
		t.Fatalf("got %d cells, want 6", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Replicates != 2 {
			t.Errorf("cell %s/%s@%g aggregated %d replicates, want 2", c.Workload, c.Scheme, c.CacheMult, c.Replicates)
		}
		if c.QMinUS > c.QMeanUS || c.QMeanUS > c.QMaxUS {
			t.Errorf("cell %s/%s@%g: min/mean/max out of order: %v/%v/%v",
				c.Workload, c.Scheme, c.CacheMult, c.QMinUS, c.QMeanUS, c.QMaxUS)
		}
		if c.Scheme == "LBICA" && c.SpeedupVsWB == 0 {
			t.Errorf("LBICA cell @%g missing its vs-WB speedup", c.CacheMult)
		}
	}
	for _, emit := range []struct {
		name string
		fn   func(*lbica.SweepResult) error
		want string
	}{
		{"csv", func(r *lbica.SweepResult) error { return r.WriteCSV(discardCheck(t, "workload,scheme")) }, ""},
		{"json", func(r *lbica.SweepResult) error { return r.WriteJSON(discardCheck(t, `"cells"`)) }, ""},
		{"report", func(r *lbica.SweepResult) error { return r.WriteReport(discardCheck(t, "sweep:")) }, ""},
	} {
		if err := emit.fn(res); err != nil {
			t.Errorf("%s emitter: %v", emit.name, err)
		}
	}
}

// discardCheck returns a writer that asserts the emitted stream contains
// the marker once the test ends.
func discardCheck(t *testing.T, marker string) *markerWriter {
	t.Helper()
	w := &markerWriter{}
	t.Cleanup(func() {
		if !strings.Contains(w.b.String(), marker) {
			t.Errorf("emitted stream missing %q:\n%s", marker, w.b.String())
		}
	})
	return w
}

type markerWriter struct{ b strings.Builder }

func (w *markerWriter) Write(p []byte) (int, error) { return w.b.Write(p) }

// TestSweepPartialOnCancel: cancelling mid-sweep returns the context
// error together with a result aggregating only the completed runs.
func TestSweepPartialOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(t.Context())
	defer cancel()
	g := quickGrid()
	g.SeedReplicates = 4 // enough work that cancellation lands mid-sweep
	res, err := lbica.Sweep(ctx, g, lbica.SweepOptions{
		Workers:    1,
		OnProgress: func(done, total int) { cancel() },
	})
	if err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
	if res == nil {
		t.Fatal("cancelled sweep returned no partial result")
	}
	if res.Completed == 0 || res.Completed >= res.Total {
		t.Errorf("completed %d of %d; want a strictly partial sweep", res.Completed, res.Total)
	}
	if len(res.Runs) != res.Completed {
		t.Errorf("partial result carries %d runs but reports %d completed", len(res.Runs), res.Completed)
	}
}

// TestSweepRejectsBadGrid: validation errors surface before any
// simulation runs.
func TestSweepRejectsBadGrid(t *testing.T) {
	_, err := lbica.Sweep(t.Context(), lbica.GridSpec{Workloads: []string{"nope"}}, lbica.SweepOptions{})
	if err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Errorf("got %v, want unknown-workload error", err)
	}
	_, err = lbica.Sweep(t.Context(), lbica.GridSpec{CITolerance: -1}, lbica.SweepOptions{})
	if err == nil || !strings.Contains(err.Error(), "tolerance") {
		t.Errorf("got %v, want ci-tolerance error", err)
	}
}

// TestSweepCITolerance: the early-termination knob reaches the scheduler
// through the facade, and terminated cells surface their replicate count
// and achieved half-width.
func TestSweepCITolerance(t *testing.T) {
	g := quickGrid()
	g.SeedReplicates = 4
	g.CITolerance = 1e3 // loose: terminate at the two-replicate floor
	res, err := lbica.Sweep(t.Context(), g, lbica.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Warm != nil {
		t.Errorf("warmup-off sweep reported warm stats: %+v", res.Warm)
	}
	if res.Completed >= res.Total {
		t.Fatalf("loose tolerance never terminated: %d of %d", res.Completed, res.Total)
	}
	for _, c := range res.Cells {
		if !c.EarlyTerminated || c.Replicates != 2 || c.QCIHalfUS <= 0 {
			t.Errorf("cell %s/%s@%g not annotated as terminated: %+v", c.Workload, c.Scheme, c.CacheMult, c)
		}
	}
}

// TestSweepWarmStats: a warm-fork sweep surfaces its plan outcomes on the
// facade result.
func TestSweepWarmStats(t *testing.T) {
	g := quickGrid()
	g.SeedReplicates = 1
	g.WarmupIntervals = 2
	res, err := lbica.Sweep(t.Context(), g, lbica.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Warm == nil {
		t.Fatal("warm sweep reported no warm stats")
	}
	if res.Warm.Leaders == 0 {
		t.Errorf("no leaders in warm plan: %+v", res.Warm)
	}
	if got := res.Warm.Leaders + res.Warm.Forked + res.Warm.Scratch; got != res.Completed {
		t.Errorf("warm stats cover %d runs, want %d", got, res.Completed)
	}
	if res.Warm.Fallbacks["sib"] == 0 {
		t.Errorf("sib fallback missing: %v", res.Warm.Fallbacks)
	}
}
