package lbica

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestArrayParallelMatchesSerial is the acceptance gate for the array
// layer: a Volumes > 1 run sharded across the worker pool must be
// byte-identical to the ShardWorkers: 1 serial baseline — full report
// structure and rendered CSV alike, for every routing policy.
func TestArrayParallelMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"uniform", Options{Workload: "tpcc", Scheme: "lbica", Intervals: 8, Volumes: 4}},
		{"hash", Options{Workload: "mail", Scheme: "lbica", Intervals: 8, Volumes: 4, RoutePolicy: "hash"}},
		{"zipf", Options{Workload: "web", Scheme: "wb", Intervals: 8, Volumes: 4, RouteSkew: 1.2}},
		{"array-lb", Options{Workload: "tpcc", Scheme: "array-lb", Intervals: 8, Volumes: 4, RouteSkew: 1.2}},
		{"array-lb-p2c", Options{Workload: "tpcc", Scheme: "array-lb", Intervals: 8, Volumes: 4, RouteVariant: "p2c"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serialOpts, parallelOpts := tc.opts, tc.opts
			serialOpts.ShardWorkers = 1
			parallelOpts.ShardWorkers = 4
			serial, err := Run(serialOpts)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := Run(parallelOpts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatal("parallel array report differs from the serial baseline")
			}
			var sb, pb bytes.Buffer
			if err := serial.WriteCSV(&sb); err != nil {
				t.Fatal(err)
			}
			if err := parallel.WriteCSV(&pb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
				t.Fatal("rendered CSV differs between serial and parallel array runs")
			}
			if len(serial.PerVolume) != 4 {
				t.Fatalf("PerVolume has %d entries, want 4", len(serial.PerVolume))
			}
		})
	}
}

// Volumes: 1 must be byte-identical to the pre-refactor single-stack path
// (the flag simply unset) for all three paper workloads: same report
// structure, same rendered CSV, no array surface.
func TestSingleVolumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-length runs are beyond the -short budget")
	}
	for _, wl := range []string{"tpcc", "mail", "web"} {
		base, err := Run(Options{Workload: wl, Scheme: "lbica"})
		if err != nil {
			t.Fatal(err)
		}
		one, err := Run(Options{Workload: wl, Scheme: "lbica", Volumes: 1, ShardWorkers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, one) {
			t.Fatalf("%s: Volumes: 1 report differs from the flag-unset run", wl)
		}
		var bb, ob bytes.Buffer
		if err := base.WriteCSV(&bb); err != nil {
			t.Fatal(err)
		}
		if err := one.WriteCSV(&ob); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bb.Bytes(), ob.Bytes()) {
			t.Fatalf("%s: Volumes: 1 CSV differs from the flag-unset run", wl)
		}
		if one.PerVolume != nil {
			t.Fatalf("%s: single-volume run grew a PerVolume surface", wl)
		}
	}
}

// The merged report must reconcile with its per-volume reports.
func TestArrayReportMergeSemantics(t *testing.T) {
	rep, err := Run(Options{Workload: "tpcc", Scheme: "lbica", Intervals: 10, Volumes: 3, ShardWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var reqs uint64
	var ssdMiB float64
	for v, vr := range rep.PerVolume {
		if vr == nil {
			t.Fatalf("volume %d missing from a completed run", v)
		}
		reqs += vr.Summary.Requests
		ssdMiB += vr.Summary.SSDWrittenMiB
	}
	if rep.Summary.Requests != reqs {
		t.Errorf("merged Requests %d != per-volume sum %d", rep.Summary.Requests, reqs)
	}
	if rep.Summary.SSDWrittenMiB != ssdMiB {
		t.Errorf("merged SSDWrittenMiB %v != per-volume sum %v", rep.Summary.SSDWrittenMiB, ssdMiB)
	}
	if len(rep.Intervals) != 10 {
		t.Fatalf("merged report has %d intervals, want 10", len(rep.Intervals))
	}
	for _, p := range rep.Policies {
		if !strings.HasPrefix(p.Group, "v") {
			t.Fatalf("merged policy event group %q lacks its volume prefix", p.Group)
		}
	}
}

// Record → replay must survive sharding: a stream recorded single-volume
// replays across an array deterministically.
func TestArrayReplaysRecordedStream(t *testing.T) {
	var rec bytes.Buffer
	if _, err := Run(Options{Workload: "tpcc", Scheme: "wb", Intervals: 4, RecordTo: &rec}); err != nil {
		t.Fatal(err)
	}
	run := func() *Report {
		rep, err := Run(Options{Scheme: "lbica", Intervals: 4, Volumes: 2, ShardWorkers: 1,
			ReplayFrom: bytes.NewReader(rec.Bytes())})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("replaying the same recording across an array is not deterministic")
	}
	if a.Summary.Requests == 0 {
		t.Fatal("array replay completed no requests")
	}
}

func TestArrayOptionValidation(t *testing.T) {
	for name, o := range map[string]Options{
		"negative volumes":     {Volumes: -1},
		"oversized volumes":    {Volumes: 1 << 20},
		"skew without array":   {RouteSkew: 1.2},
		"policy without array": {RoutePolicy: "hash"},
		"unknown policy":       {Volumes: 2, RoutePolicy: "robin"},
		"skew under hash":      {Volumes: 2, RoutePolicy: "hash", RouteSkew: 1},
		"negative skew":        {Volumes: 2, RouteSkew: -3},
		"bad thresholds":       {Thresholds: Thresholds{MemberMin: -0.1}},
		"thresholds above one": {Thresholds: Thresholds{ReadAlone: 1.5}},
		"trace under array":    {Volumes: 2, TraceWriter: &bytes.Buffer{}},
		"record under array":   {Volumes: 2, RecordTo: &bytes.Buffer{}},
		"negative min queued":  {Thresholds: Thresholds{MinQueued: -5}},

		"policy under array-lb":    {Scheme: "array-lb", Volumes: 2, RoutePolicy: "zipf", RouteSkew: 1},
		"bad route variant":        {Scheme: "array-lb", Volumes: 2, RouteVariant: "nope"},
		"variant without array-lb": {Scheme: "lbica", Volumes: 2, RouteVariant: "p2c"},
		"trace under array-lb":     {Scheme: "array-lb", Volumes: 2, TraceWriter: &bytes.Buffer{}},
	} {
		if _, err := Run(o); err == nil {
			t.Errorf("%s: Run accepted %+v", name, o)
		}
	}
}

// Scheme "array-lb" at one volume degenerates to the single-stack LBICA
// pipeline, relabeled — the array controller has nothing to balance.
func TestArrayLBSingleVolumeDegenerates(t *testing.T) {
	lb, err := Run(Options{Workload: "tpcc", Scheme: "lbica", Intervals: 6})
	if err != nil {
		t.Fatal(err)
	}
	alb, err := Run(Options{Workload: "tpcc", Scheme: "array-lb", Intervals: 6})
	if err != nil {
		t.Fatal(err)
	}
	if alb.Scheme != "ARRAY-LB" {
		t.Fatalf("degenerate run labeled %q, want ARRAY-LB", alb.Scheme)
	}
	relabel := *lb
	relabel.Scheme = "ARRAY-LB"
	if !reflect.DeepEqual(alb, &relabel) {
		t.Fatal("single-volume array-lb differs from plain LBICA beyond the label")
	}
}

// The Thresholds knob must change behavior through the public API, and
// explicit paper defaults must change nothing.
func TestThresholdsOption(t *testing.T) {
	base := Options{Workload: "mail", Scheme: "lbica", Intervals: 40}
	rep, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Policies) == 0 {
		t.Fatal("baseline made no policy decision; the probe below proves nothing")
	}
	muted := base
	muted.Thresholds = Thresholds{MinQueued: 1 << 20}
	mrep, err := Run(muted)
	if err != nil {
		t.Fatal(err)
	}
	if len(mrep.Policies) != 0 {
		t.Fatalf("unreachable census floor still produced %d decisions", len(mrep.Policies))
	}
}

// Merged interval loads show the bottleneck volume: each merged interval's
// cache load equals the max across the per-volume reports.
func TestArrayIntervalLoadsAreWorstVolume(t *testing.T) {
	rep, err := Run(Options{Workload: "web", Scheme: "wb", Intervals: 6, Volumes: 3,
		RouteSkew: 2, ShardWorkers: 1, Seed: rand.New(rand.NewSource(4)).Int63()})
	if err != nil {
		t.Fatal(err)
	}
	for i, iv := range rep.Intervals {
		var want float64
		for _, vr := range rep.PerVolume {
			if v := vr.Intervals[i].CacheLoadMicros; v > want {
				want = v
			}
		}
		if iv.CacheLoadMicros != want {
			t.Fatalf("interval %d: merged cache load %v, want worst-volume %v", i, iv.CacheLoadMicros, want)
		}
	}
}
