package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	got, err := Map(context.Background(), 64, Options{Workers: 8},
		func(_ context.Context, i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapHonorsWorkerCap(t *testing.T) {
	var cur, peak atomic.Int32
	_, err := Map(context.Background(), 32, Options{Workers: 3},
		func(_ context.Context, i int) (struct{}, error) {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("observed %d concurrent jobs, cap is 3", p)
	}
}

func TestMapZeroJobs(t *testing.T) {
	got, err := Map(context.Background(), 0, Options{},
		func(_ context.Context, i int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("Map(0 jobs) = %v, %v", got, err)
	}
}

// The first error cancels the pool: jobs still queued never start, and
// running jobs observe the cancellation through their context.
func TestMapErrorCancelsPool(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int32
	_, err := Map(context.Background(), 1000, Options{Workers: 2},
		func(ctx context.Context, i int) (int, error) {
			started.Add(1)
			if i == 3 {
				return 0, boom
			}
			select {
			case <-ctx.Done():
			case <-time.After(5 * time.Millisecond):
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if n := started.Load(); n == 1000 {
		t.Error("error did not stop dispatch: all 1000 jobs started")
	}
}

func TestMapCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	_, err := Map(ctx, 1000, Options{Workers: 2},
		func(ctx context.Context, i int) (int, error) {
			if started.Add(1) == 4 {
				cancel()
			}
			return i, ctx.Err()
		})
	// Caller cancellation must surface as the plain, deterministic
	// context error — not a scheduling-dependent "job N" wrapper.
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled exactly", err)
	}
	if n := started.Load(); n == 1000 {
		t.Error("cancellation did not stop dispatch")
	}
}

func TestMapRepanicsOnCaller(t *testing.T) {
	defer func() {
		if p := recover(); p != "job 7 exploded" {
			t.Fatalf("recovered %v, want job 7's panic", p)
		}
	}()
	Map(context.Background(), 16, Options{Workers: 4},
		func(_ context.Context, i int) (int, error) {
			if i == 7 {
				panic("job 7 exploded")
			}
			return i, nil
		})
	t.Fatal("Map returned instead of panicking")
}

// A panicking progress callback must not deadlock the pool: the lock is
// released on unwind and the panic surfaces on the caller like a job
// panic does.
func TestMapOnDonePanicDoesNotDeadlock(t *testing.T) {
	result := make(chan any, 1)
	go func() {
		defer func() { result <- recover() }()
		Map(context.Background(), 8, Options{
			Workers: 2,
			OnDone:  func(index, done, total int) { panic("callback boom") },
		}, func(_ context.Context, i int) (int, error) { return i, nil })
		result <- nil
	}()
	select {
	case p := <-result:
		if p != "callback boom" {
			t.Fatalf("recovered %v, want the callback's panic", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Map deadlocked on a panicking OnDone callback")
	}
}

func TestMapProgressSerializedAndComplete(t *testing.T) {
	var calls []int // appended under the pool's lock via OnDone
	seen := make(map[int]bool)
	_, err := Map(context.Background(), 50, Options{
		Workers: 8,
		OnDone: func(index, done, total int) {
			calls = append(calls, done)
			seen[index] = true
			if total != 50 {
				panic(fmt.Sprintf("total = %d", total))
			}
		},
	}, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 50 || len(seen) != 50 {
		t.Fatalf("progress calls = %d (distinct %d), want 50", len(calls), len(seen))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("done counter out of order at call %d: %v", i, calls)
		}
	}
}

// Determinism contract: a jittered parallel run must produce results
// byte-identical to the serial baseline, because each job derives its
// output from its index alone. Run with -race this also exercises the
// pool's aggregation for data races.
func TestMapParallelMatchesSerial(t *testing.T) {
	job := func(_ context.Context, i int) (string, error) {
		time.Sleep(time.Duration(i%5) * 100 * time.Microsecond) // scramble completion order
		return fmt.Sprintf("run-%d", i*i), nil
	}
	serial, err := Map(context.Background(), 40, Options{Workers: 1}, job)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		par, err := Map(context.Background(), 40, Options{Workers: workers}, job)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: results[%d] = %q, serial %q", workers, i, par[i], serial[i])
			}
		}
	}
}
