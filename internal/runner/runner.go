// Package runner is the concurrent experiment executor: a bounded worker
// pool that fans a batch of independent jobs out across GOMAXPROCS
// goroutines while keeping results position-stable and bit-deterministic.
//
// The determinism contract is structural, not locked-in: job i writes only
// results[i] (disjoint slice slots, no shared mutable state between
// workers), and every job derives all of its randomness from its own index
// — callers seed job i with sim.Stream(seed, i) or an equivalent
// index-pure derivation. Under that contract the output of Map is
// byte-identical whatever the worker count, interleaving, or scheduling
// order, which is what lets the paper-matrix golden tests compare a
// parallel sweep against a serial one cell by cell.
//
// Cancellation flows through context.Context: the first job error (or a
// caller cancellation) stops the pool from dispatching further jobs and is
// propagated to jobs already running via the derived context. A panicking
// job cancels the pool the same way and the panic is re-raised on the
// caller's goroutine once the pool has drained.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Options tunes a Map call. The zero value is ready to use.
type Options struct {
	// Workers caps pool size; ≤0 means GOMAXPROCS. Workers == 1 is the
	// serial baseline the determinism tests compare against.
	Workers int

	// OnDone, when non-nil, observes progress: it is called once per
	// finished job with the job's index and the running completion count.
	// Calls are serialized by the pool (never concurrent) but arrive in
	// completion order, not index order.
	OnDone func(index, done, total int)
}

// Workers resolves the effective pool size for n jobs.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn(ctx, i) for every i in [0,n), at most Options.Workers at a
// time, and returns the results indexed by i. The returned slice always
// has length n; slots of jobs that never ran (pool stopped early) hold the
// zero value of T.
//
// The first non-nil error cancels the pool's context — running jobs see
// the cancellation, queued jobs are not started — and is returned after
// all workers exit. A cancelled caller context returns ctx.Err(). Panics
// in fn are re-raised on the caller's goroutine after the pool drains.
func Map[T any](parent context.Context, n int, opt Options, fn func(ctx context.Context, index int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, parent.Err()
	}

	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var (
		mu       sync.Mutex // guards firstErr, panicVal, done, OnDone calls
		firstErr error
		panicVal any
		panicked bool
		done     int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opt.workers(n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				func() {
					defer func() {
						if p := recover(); p != nil {
							mu.Lock()
							if !panicked {
								panicked, panicVal = true, p
							}
							mu.Unlock()
							cancel()
						}
					}()
					v, err := fn(ctx, i)
					if err != nil {
						// No package prefix: the wrapper surfaces through
						// public callers (lbica.RunAll) that cannot name
						// this internal package.
						fail(fmt.Errorf("job %d: %w", i, err))
						return
					}
					results[i] = v
					if opt.OnDone != nil {
						mu.Lock()
						// Deferred so a panicking callback releases the
						// lock on unwind instead of deadlocking the pool.
						defer mu.Unlock()
						done++
						opt.OnDone(i, done, n)
					}
				}()
			}
		}()
	}

dispatch:
	for i := 0; i < n; i++ {
		// Checked before the blocking send: when cancellation and a ready
		// worker race, the two-case select below picks arbitrarily and
		// could keep dispatching doomed jobs.
		select {
		case <-ctx.Done():
			break dispatch
		default:
		}
		select {
		case indices <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(indices)
	wg.Wait()

	if panicked {
		panic(panicVal)
	}
	// Caller cancellation wins over whichever in-flight job happened to
	// observe it first: the error is then the deterministic ctx.Err(), not
	// a scheduling-dependent "job N" wrapper.
	if err := parent.Err(); err != nil {
		return results, err
	}
	if firstErr != nil {
		return results, firstErr
	}
	return results, nil
}
