// Package ckpt provides the low-level wire primitives of the checkpoint
// codec: a bounds-checked binary writer/reader pair plus the memoizing
// Encoder/Decoder that serialize the shared request/completer graph a
// warmed stack holds in flight.
//
// The codec mirrors the fork machinery (internal/engine/fork.go) exactly:
// where a fork deep-copies via block.Cloner — memoized requests, completer
// CloneFor dispatch, an Env map from components to their clone-side
// counterparts — the encoder writes memo references, kind-tagged completer
// payloads, and small component ids, and the decoder replays them against
// a freshly built stack. Decoding is strictly two-phase for completers
// (allocate a placeholder, memoize it, then fill), which is what lets the
// request graph's cycles (an in-flight application op is the completer of
// its own legs) round-trip.
//
// Every read is validated against the remaining input before it
// allocates, so a truncated, bit-flipped, or hostile payload surfaces as
// a sticky decode error — never a panic or an unbounded allocation.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"lbica/internal/block"
)

// Writer accumulates a little-endian binary payload. Writes cannot fail.
type Writer struct {
	buf []byte
}

// Data returns the accumulated payload.
func (w *Writer) Data() []byte { return w.buf }

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 writes a fixed 32-bit value.
func (w *Writer) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// U64 writes a fixed 64-bit value.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// I64 writes a signed 64-bit value.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as 64 bits.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// I32 writes a signed 32-bit value.
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// F64 writes a float64 by bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Duration writes a time.Duration as its nanosecond count.
func (w *Writer) Duration(d time.Duration) { w.I64(int64(d)) }

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader consumes a payload written by Writer. The first failed read sets
// a sticky error; every subsequent read returns the zero value, so decode
// paths can read unconditionally and check Err once per section.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a reader over b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

// Failf sets the sticky error (keeping the first one).
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("ckpt: "+format, args...)
	}
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.Remaining() {
		r.Failf("truncated input: need %d bytes, have %d", n, r.Remaining())
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 reads a fixed 32-bit value.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed 64-bit value.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a signed 64-bit value.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// I32 reads a signed 32-bit value.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// F64 reads a float64 by bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Duration reads a time.Duration.
func (r *Reader) Duration() time.Duration { return time.Duration(r.I64()) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.U32()
	b := r.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// Count reads a u32 element count and validates it against the remaining
// input assuming each element occupies at least elemSize bytes — the
// guard that keeps a hostile length prefix from driving an unbounded
// allocation. elemSize must be ≥ 1.
func (r *Reader) Count(elemSize int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > r.Remaining() {
		r.Failf("corrupt element count %d (elem size %d, %d bytes remain)", n, elemSize, r.Remaining())
		return 0
	}
	return n
}

// Encoder serializes a stack's state: wire primitives via the embedded
// Writer plus the memo tables for the shared request/completer graph and
// the component-reference map. Encoding cannot fail structurally; the
// sticky error only reports state the codec does not know how to encode
// (a non-encodable completer or generator), which callers surface as a
// scratch fallback.
type Encoder struct {
	*Writer
	err     error
	reqIDs  map[*block.Request]uint32
	compIDs map[block.Completer]uint32
	envIDs  map[any]uint32
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder {
	return &Encoder{
		Writer:  &Writer{},
		reqIDs:  make(map[*block.Request]uint32),
		compIDs: make(map[block.Completer]uint32),
		envIDs:  make(map[any]uint32),
	}
}

// Err returns the sticky encode error, if any.
func (e *Encoder) Err() error { return e.err }

// Failf sets the sticky encode error (keeping the first one).
func (e *Encoder) Failf(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf("ckpt: "+format, args...)
	}
}

// Section writes a named marker delimiting a state section, so a decoder
// that drifts out of alignment fails fast at the next boundary instead of
// misinterpreting the rest of the payload.
func (e *Encoder) Section(tag string) { e.String(tag) }

// RegisterComponent assigns the next component id to c. Both sides must
// register the same components in the same order; ComponentRef then
// resolves cross-component pointers (a chain's owning queue, an op's
// owning stack) by id.
func (e *Encoder) RegisterComponent(c any) {
	if _, ok := e.envIDs[c]; ok {
		return
	}
	e.envIDs[c] = uint32(len(e.envIDs))
}

// ComponentRef writes the id of a registered component.
func (e *Encoder) ComponentRef(c any) {
	id, ok := e.envIDs[c]
	if !ok {
		e.Failf("component %T not registered", c)
	}
	e.U32(id)
}

// StateCodec is any stack component that can round-trip its mutable
// state through a checkpoint: encode onto an Encoder, restore in place
// from a Decoder. Wrapper components (rate limiters, tees) assert it on
// what they wrap to decide checkpointability dynamically.
type StateCodec interface {
	EncodeState(*Encoder)
	DecodeState(*Decoder)
}

// EncodableCompleter is a completion callback the codec can serialize:
// it names its registered kind and writes its payload. Every completer
// the engine or queue layer installs implements it, mirroring
// block.ForkableCompleter.
type EncodableCompleter interface {
	block.Completer
	CkptKind() string
	EncodeCkpt(*Encoder)
}

// Request encodes a request reference: nil, a memo back-reference, or —
// on first encounter — the request's fields followed by its completion
// callback. Shared requests (a queue node and a server's in-flight op
// pointing at the same request) round-trip to a single shared clone.
func (e *Encoder) Request(r *block.Request) {
	if r == nil {
		e.U32(0)
		return
	}
	if id, ok := e.reqIDs[r]; ok {
		e.U32(id)
		return
	}
	id := uint32(len(e.reqIDs) + 1)
	e.reqIDs[r] = id
	e.U32(id)
	e.U64(r.ID)
	e.U8(uint8(r.Origin))
	e.I64(r.Extent.LBA)
	e.I64(r.Extent.Sectors)
	e.U64(r.ParentID)
	e.Duration(r.Submit)
	e.Duration(r.Dispatch)
	e.Duration(r.Complete)
	e.Int(r.Merged)
	e.Bool(r.Shadowed)
	e.Bool(r.Recycle)
	e.Completer(r.OnComplete)
}

// Completer encodes a completion-callback reference: nil, a memo
// back-reference, or — on first encounter — the completer's kind tag and
// payload. A completer that does not implement EncodableCompleter sets
// the sticky error (the state cannot be checkpointed).
func (e *Encoder) Completer(c block.Completer) {
	if c == nil {
		e.U32(0)
		return
	}
	if id, ok := e.compIDs[c]; ok {
		e.U32(id)
		return
	}
	id := uint32(len(e.compIDs) + 1)
	e.compIDs[c] = id
	e.U32(id)
	ec, ok := c.(EncodableCompleter)
	if !ok {
		e.Failf("completer %T is not checkpointable", c)
		e.String("")
		return
	}
	e.String(ec.CkptKind())
	ec.EncodeCkpt(e)
}

// completerCodec is one registered completer kind: alloc returns an empty
// placeholder (memoized before the payload is read, so cyclic references
// resolve), fill decodes the payload into it.
type completerCodec struct {
	alloc func(d *Decoder) block.Completer
	fill  func(d *Decoder, c block.Completer)
}

var completerCodecs = map[string]completerCodec{}

// RegisterCompleter registers the decode pair for a completer kind.
// Called from package init by every package that installs completers
// (engine, ioqueue). Registering a kind twice panics: it would silently
// shadow the first codec.
func RegisterCompleter(kind string, alloc func(d *Decoder) block.Completer, fill func(d *Decoder, c block.Completer)) {
	if _, dup := completerCodecs[kind]; dup {
		panic(fmt.Sprintf("ckpt: completer kind %q registered twice", kind))
	}
	completerCodecs[kind] = completerCodec{alloc: alloc, fill: fill}
}

// Decoder deserializes a payload written by Encoder against a freshly
// built stack: the embedded Reader supplies the bounds-checked
// primitives, and the memo tables replay the encoder's id assignment in
// lockstep (ids are assigned in encounter order on both sides).
type Decoder struct {
	*Reader
	reqs  []*block.Request
	comps []block.Completer
	envs  []any
}

// NewDecoder returns a decoder over payload b.
func NewDecoder(b []byte) *Decoder {
	return &Decoder{Reader: NewReader(b)}
}

// Section reads a marker written by Encoder.Section and fails if it does
// not match.
func (d *Decoder) Section(tag string) {
	if got := d.String(); d.err == nil && got != tag {
		d.Failf("section marker mismatch: want %q, got %q", tag, got)
	}
}

// RegisterComponent records the next component id as c, mirroring the
// encoder-side registration order.
func (d *Decoder) RegisterComponent(c any) {
	d.envs = append(d.envs, c)
}

// ComponentRef resolves a component id written by Encoder.ComponentRef.
func (d *Decoder) ComponentRef() any {
	id := d.U32()
	if d.err != nil {
		return nil
	}
	if int(id) >= len(d.envs) {
		d.Failf("component id %d out of range (%d registered)", id, len(d.envs))
		return nil
	}
	return d.envs[id]
}

// Request decodes a request reference written by Encoder.Request.
func (d *Decoder) Request() *block.Request {
	id := d.U32()
	if d.err != nil || id == 0 {
		return nil
	}
	if int(id) <= len(d.reqs) {
		return d.reqs[id-1]
	}
	if int(id) != len(d.reqs)+1 {
		d.Failf("request id %d out of sequence (%d seen)", id, len(d.reqs))
		return nil
	}
	r := &block.Request{}
	// Memoized before the completer payload is read: a completer that
	// references this request back-references the memo entry.
	d.reqs = append(d.reqs, r)
	r.ID = d.U64()
	r.Origin = block.Origin(d.U8())
	r.Extent.LBA = d.I64()
	r.Extent.Sectors = d.I64()
	r.ParentID = d.U64()
	r.Submit = d.Duration()
	r.Dispatch = d.Duration()
	r.Complete = d.Duration()
	r.Merged = d.Int()
	r.Shadowed = d.Bool()
	r.Recycle = d.Bool()
	r.OnComplete = d.Completer()
	return r
}

// Completer decodes a completer reference written by Encoder.Completer,
// dispatching first-encounter payloads through the registered kind codec
// in two phases (allocate + memoize, then fill) so cyclic request graphs
// resolve.
func (d *Decoder) Completer() block.Completer {
	id := d.U32()
	if d.err != nil || id == 0 {
		return nil
	}
	if int(id) <= len(d.comps) {
		return d.comps[id-1]
	}
	if int(id) != len(d.comps)+1 {
		d.Failf("completer id %d out of sequence (%d seen)", id, len(d.comps))
		return nil
	}
	kind := d.String()
	if d.err != nil {
		return nil
	}
	codec, ok := completerCodecs[kind]
	if !ok {
		d.Failf("unknown completer kind %q", kind)
		return nil
	}
	c := codec.alloc(d)
	if d.err != nil {
		return nil
	}
	if c == nil {
		d.Failf("completer kind %q allocated nil", kind)
		return nil
	}
	d.comps = append(d.comps, c)
	codec.fill(d, c)
	return c
}
