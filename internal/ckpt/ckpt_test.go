package ckpt

import "testing"

// The encoder error is sticky-first: a failure during a deep state walk
// must surface the root cause, not whatever later write happened to
// trip over the broken stream.
func TestEncoderFailfSticky(t *testing.T) {
	e := NewEncoder()
	if e.Err() != nil {
		t.Fatalf("fresh encoder carries error %v", e.Err())
	}
	e.Failf("root cause: %d", 1)
	e.Failf("later symptom")
	if e.Err() == nil || e.Err().Error() != "ckpt: root cause: 1" {
		t.Errorf("sticky error = %v, want the first failure", e.Err())
	}
}
