// Package ioqueue implements the per-device request queue of the simulated
// block layer: FIFO dispatch order with Linux-elevator-style back/front
// merging of contiguous requests, incremental census by request origin, and
// tail extraction for load-balancer bypass decisions.
//
// Merging matters to LBICA twice over: sequential streams collapse into few
// large requests (so a "sequential write" burst shows a short queue of big
// W/E requests), and the paper's stated bypass rule targets exactly the
// requests that cannot merge with anything already queued.
package ioqueue

import (
	"time"

	"lbica/internal/block"
)

// node is a doubly-linked queue entry. Nodes are recycled through a
// per-queue free-list (chained on next), so steady-state Push/Pop
// allocates nothing.
type node struct {
	req        *block.Request
	prev, next *node
}

// chain is one pooled merge-completion link: when a merged head finishes,
// Complete propagates the completion to the absorbed request. Pooling the
// links keeps merge-heavy workloads from allocating per absorbed request;
// the chain itself is the head request's Completer, so installing it is
// interface boxing of an existing pointer — no allocation.
type chain struct {
	q        *Queue
	prev     block.Completer
	absorbed *block.Request
}

// Complete implements block.Completer for the merged head.
func (c *chain) Complete(head *block.Request) {
	prev, absorbed := c.prev, c.absorbed
	c.prev, c.absorbed = nil, nil
	q := c.q
	if prev != nil {
		prev.Complete(head)
	}
	absorbed.Dispatch = head.Dispatch
	absorbed.Complete = head.Complete
	absorbed.Merged = head.Merged
	if absorbed.OnComplete != nil {
		absorbed.OnComplete.Complete(absorbed)
	}
	if q.recycle != nil {
		// Absorbed requests never reach a device server, so the server-side
		// release hook cannot recycle them; this is their pool return.
		q.recycle(absorbed)
	}
	q.freeChains = append(q.freeChains, c)
}

// CloneFor implements block.ForkableCompleter: the cloned chain targets
// the forked queue (via the cloner's environment) and the cloned absorbed
// request, recursing into any earlier link of the merge chain.
func (c *chain) CloneFor(cl block.Cloner) block.Completer {
	return &chain{
		q:        cl.Env(c.q).(*Queue),
		prev:     cl.CloneCompleter(c.prev),
		absorbed: cl.CloneRequest(c.absorbed),
	}
}

// Queue is a single device's pending-request queue. The zero value is not
// usable; call New.
type Queue struct {
	name string

	head, tail *node
	size       int

	// Recycling pools: spent list nodes (chained on next) and merge-chain
	// links. recycle, when set, receives requests the queue finished with
	// internally (merged-away requests after their completion ran).
	freeNodes  *node
	freeChains []*chain
	recycle    func(*block.Request)

	census block.Census

	// Elevator hashes: boundary sector → most recent queued node with that
	// boundary, per origin. backHash keys on Extent.End() (back-merge
	// candidates); frontHash keys on Extent.LBA (front-merge candidates).
	backHash  map[int64]*node
	frontHash map[int64]*node

	// maxMergeSectors caps a merged request's size, mirroring the block
	// layer's max_sectors_kb. 0 disables merging.
	maxMergeSectors int64

	// Dispatch discipline state (LOOK).
	discipline Discipline
	headPos    int64
	sweepUp    bool

	// Cumulative accounting.
	pushed    uint64
	popped    uint64
	merges    uint64
	bypassed  uint64
	depthPeak int
	arrivals  block.Census
}

// Discipline selects the dispatch order.
type Discipline uint8

// Dispatch disciplines.
const (
	// FIFODispatch serves requests in arrival order (the default; queue
	// positions are meaningful to Eq. 1 and tail bypassing).
	FIFODispatch Discipline = iota
	// LookDispatch serves requests in elevator (LOOK) order: continue in
	// the current LBA direction, reverse when nothing remains ahead.
	// Starvation-free (every request is served within two sweeps) and
	// seek-friendly on rotational devices.
	LookDispatch
)

// Option configures a Queue.
type Option func(*Queue)

// WithMaxMergeSectors caps merged request size in sectors; 0 disables
// merging entirely.
func WithMaxMergeSectors(n int64) Option {
	return func(q *Queue) { q.maxMergeSectors = n }
}

// WithDiscipline selects the dispatch order (default FIFODispatch).
func WithDiscipline(d Discipline) Option {
	return func(q *Queue) { q.discipline = d }
}

// DefaultMaxMergeSectors mirrors a 512 KiB max_sectors_kb.
const DefaultMaxMergeSectors = 1024

// New returns an empty queue.
func New(name string, opts ...Option) *Queue {
	q := &Queue{
		name:            name,
		backHash:        make(map[int64]*node),
		frontHash:       make(map[int64]*node),
		maxMergeSectors: DefaultMaxMergeSectors,
		sweepUp:         true,
	}
	for _, o := range opts {
		o(q)
	}
	return q
}

// Name returns the queue's name.
func (q *Queue) Name() string { return q.name }

// OnRecycle registers a hook receiving requests the queue is finished with
// internally — an absorbed (merged-away) request after its chained
// completion has run. Request pools use it to reclaim requests that never
// reach a device server.
func (q *Queue) OnRecycle(fn func(*block.Request)) { q.recycle = fn }

// Depth returns the number of pending requests.
func (q *Queue) Depth() int { return q.size }

// DepthPeak returns the highest depth observed since creation.
func (q *Queue) DepthPeak() int { return q.depthPeak }

// Pushed returns the cumulative number of Push calls (merged or not).
func (q *Queue) Pushed() uint64 { return q.pushed }

// Popped returns the cumulative number of requests dispatched.
func (q *Queue) Popped() uint64 { return q.popped }

// Merges returns the cumulative number of successful merges.
func (q *Queue) Merges() uint64 { return q.merges }

// Extracted returns the cumulative number of requests removed by Extract.
func (q *Queue) Extracted() uint64 { return q.bypassed }

// Census returns the in-queue census by origin.
func (q *Queue) Census() block.Census { return q.census }

// Arrivals returns the cumulative census of every request ever pushed
// (merged arrivals included). Interval deltas of this census are the
// workload-characterization signal: they describe what entered the queue,
// independent of how fast it drained.
func (q *Queue) Arrivals() block.Census { return q.arrivals }

// Push enqueues r at the tail, first attempting a back merge (r extends a
// queued request) then a front merge (r prepends one). Merge candidates
// must share r's origin and stay within the size cap. It reports whether r
// was absorbed into an existing request.
func (q *Queue) Push(r *block.Request, now time.Duration) (merged bool) {
	q.pushed++
	q.arrivals[r.Origin]++
	r.Submit = now
	if q.maxMergeSectors > 0 {
		if n, ok := q.backHash[r.Extent.LBA]; ok && q.canMerge(n.req, r) {
			q.absorb(n, r, true)
			return true
		}
		if n, ok := q.frontHash[r.Extent.End()]; ok && q.canMerge(n.req, r) {
			q.absorb(n, r, false)
			return true
		}
	}
	n := q.getNode(r)
	if q.tail == nil {
		q.head, q.tail = n, n
	} else {
		n.prev = q.tail
		q.tail.next = n
		q.tail = n
	}
	q.size++
	if q.size > q.depthPeak {
		q.depthPeak = q.size
	}
	q.census[r.Origin]++
	q.index(n)
	return false
}

func (q *Queue) canMerge(a, b *block.Request) bool {
	if a.Origin != b.Origin {
		return false
	}
	// Shadowed and unshadowed writes must not merge: cancelling a shadowed
	// head would silently drop an absorbed unshadowed write's only copy.
	if a.Shadowed != b.Shadowed {
		return false
	}
	if !a.Extent.Adjacent(b.Extent) {
		return false
	}
	return a.Extent.Sectors+b.Extent.Sectors <= q.maxMergeSectors
}

// absorb folds r into queued node n. back=true means r extends n's end.
func (q *Queue) absorb(n *node, r *block.Request, back bool) {
	q.merges++
	q.unindex(n)
	n.req.Extent = n.req.Extent.Union(r.Extent)
	n.req.Merged += r.Merged + 1
	// Chain completion: when the merged head finishes, the absorbed request
	// finishes too, with its own Submit preserved for latency accounting.
	c := q.getChain()
	c.prev = n.req.OnComplete
	c.absorbed = r
	n.req.OnComplete = c
	q.index(n)
	_ = back
}

// getChain pops a pooled merge-chain link, allocating on pool miss.
func (q *Queue) getChain() *chain {
	if n := len(q.freeChains); n > 0 {
		c := q.freeChains[n-1]
		q.freeChains = q.freeChains[:n-1]
		return c
	}
	return &chain{q: q}
}

// getNode pops a pooled list node, allocating on pool miss.
func (q *Queue) getNode(r *block.Request) *node {
	n := q.freeNodes
	if n == nil {
		return &node{req: r}
	}
	q.freeNodes = n.next
	n.req = r
	n.prev, n.next = nil, nil
	return n
}

// putNode returns a detached node to the free-list, dropping its request
// reference.
func (q *Queue) putNode(n *node) {
	n.req = nil
	n.prev = nil
	n.next = q.freeNodes
	q.freeNodes = n
}

func (q *Queue) index(n *node) {
	q.backHash[n.req.Extent.End()] = n
	q.frontHash[n.req.Extent.LBA] = n
}

func (q *Queue) unindex(n *node) {
	if q.backHash[n.req.Extent.End()] == n {
		delete(q.backHash, n.req.Extent.End())
	}
	if q.frontHash[n.req.Extent.LBA] == n {
		delete(q.frontHash, n.req.Extent.LBA)
	}
}

// Pop removes and returns the next request per the dispatch discipline,
// or nil when empty.
func (q *Queue) Pop() *block.Request {
	if q.head == nil {
		return nil
	}
	n := q.head
	if q.discipline == LookDispatch {
		n = q.lookNext()
	}
	r := n.req
	q.remove(n)
	q.putNode(n)
	q.popped++
	if q.discipline == LookDispatch {
		q.headPos = r.Extent.End()
	}
	return r
}

// lookNext implements LOOK: the nearest request at or past the head
// position in the current sweep direction; reverse when the direction is
// exhausted. The queue is non-empty when called.
func (q *Queue) lookNext() *node {
	pick := func(up bool) *node {
		var best *node
		for n := q.head; n != nil; n = n.next {
			lba := n.req.Extent.LBA
			if up && lba < q.headPos {
				continue
			}
			if !up && lba > q.headPos {
				continue
			}
			if best == nil {
				best = n
				continue
			}
			if up && lba < best.req.Extent.LBA {
				best = n
			}
			if !up && lba > best.req.Extent.LBA {
				best = n
			}
		}
		return best
	}
	if n := pick(q.sweepUp); n != nil {
		return n
	}
	q.sweepUp = !q.sweepUp
	if n := pick(q.sweepUp); n != nil {
		return n
	}
	return q.head // unreachable for a non-empty queue, but stay safe
}

// Peek returns the head request without removing it, or nil when empty.
func (q *Queue) Peek() *block.Request {
	if q.head == nil {
		return nil
	}
	return q.head.req
}

func (q *Queue) remove(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		q.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		q.tail = n.prev
	}
	n.prev, n.next = nil, nil
	q.size--
	q.census[n.req.Origin]--
	q.unindex(n)
}

// Snapshot returns the pending requests in dispatch order. The slice is
// fresh; the requests are shared.
func (q *Queue) Snapshot() []*block.Request {
	out := make([]*block.Request, 0, q.size)
	for n := q.head; n != nil; n = n.next {
		out = append(out, n.req)
	}
	return out
}

// Extract removes and returns every pending request for which pred returns
// true. pos is the request's current dispatch position (0 = next to go).
// Extracted requests keep their Submit stamps; the caller re-routes them.
func (q *Queue) Extract(pred func(pos int, r *block.Request) bool) []*block.Request {
	var out []*block.Request
	pos := 0
	for n := q.head; n != nil; {
		next := n.next
		if pred(pos, n.req) {
			r := n.req
			q.remove(n)
			q.putNode(n)
			q.bypassed++
			out = append(out, r)
		}
		pos++
		n = next
	}
	return out
}

// ExtractTail removes and returns all requests at dispatch position >= keep,
// i.e. everything past the bottleneck threshold — LBICA's Group-3 rule.
func (q *Queue) ExtractTail(keep int) []*block.Request {
	return q.Extract(func(pos int, _ *block.Request) bool { return pos >= keep })
}

// EstimatedWait returns the naive wait estimate for the request at dispatch
// position pos given a calibrated mean service latency: pos × svc. This is
// Eq. 1 applied to a single queue position, the quantity SIB ranks by.
func EstimatedWait(pos int, svc time.Duration) time.Duration {
	return time.Duration(pos) * svc
}

// Clone returns a deep copy of the queue for a stack fork: counters,
// census and discipline state copied, every pending request cloned
// through cl in list order, and the elevator hashes rebuilt against the
// cloned nodes — so the clone's merge candidates and overwrite history
// match the original's exactly (every hash value always references a
// currently-queued node, which is what makes the map copy sufficient).
// The node/chain pools start empty (pooled objects are fully reset on
// reuse, so pool population is invisible to behavior) and the recycle
// hook is not copied: the forked stack re-registers its own.
func (q *Queue) Clone(cl block.Cloner) *Queue {
	q2 := &Queue{
		name:            q.name,
		size:            q.size,
		census:          q.census,
		backHash:        make(map[int64]*node, len(q.backHash)),
		frontHash:       make(map[int64]*node, len(q.frontHash)),
		maxMergeSectors: q.maxMergeSectors,
		discipline:      q.discipline,
		headPos:         q.headPos,
		sweepUp:         q.sweepUp,
		pushed:          q.pushed,
		popped:          q.popped,
		merges:          q.merges,
		bypassed:        q.bypassed,
		depthPeak:       q.depthPeak,
		arrivals:        q.arrivals,
	}
	// Register the shell before walking pending requests: their chain
	// completers resolve this queue through cl.Env.
	cl.Register(q, q2)
	nodes := make(map[*node]*node, q.size)
	for n := q.head; n != nil; n = n.next {
		n2 := &node{req: cl.CloneRequest(n.req)}
		nodes[n] = n2
		if q2.tail == nil {
			q2.head, q2.tail = n2, n2
		} else {
			n2.prev = q2.tail
			q2.tail.next = n2
			q2.tail = n2
		}
	}
	for k, n := range q.backHash {
		q2.backHash[k] = nodes[n]
	}
	for k, n := range q.frontHash {
		q2.frontHash[k] = nodes[n]
	}
	return q2
}
