package ioqueue

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"lbica/internal/block"
)

func req(id uint64, o block.Origin, lba, sectors int64) *block.Request {
	return &block.Request{ID: id, Origin: o, Extent: block.Extent{LBA: lba, Sectors: sectors}}
}

func TestFIFOOrder(t *testing.T) {
	q := New("ssd", WithMaxMergeSectors(0))
	for i := 0; i < 5; i++ {
		q.Push(req(uint64(i), block.AppRead, int64(i*1000), 8), 0)
	}
	for i := 0; i < 5; i++ {
		r := q.Pop()
		if r == nil || r.ID != uint64(i) {
			t.Fatalf("pop %d returned %v", i, r)
		}
	}
	if q.Pop() != nil {
		t.Fatal("pop on empty queue must return nil")
	}
}

func TestBackMerge(t *testing.T) {
	q := New("ssd")
	a := req(1, block.AppWrite, 100, 8)
	b := req(2, block.AppWrite, 108, 8)
	if q.Push(a, 0) {
		t.Fatal("first push must not merge")
	}
	if !q.Push(b, 10) {
		t.Fatal("contiguous same-origin push must back-merge")
	}
	if q.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", q.Depth())
	}
	h := q.Peek()
	if h.Extent.LBA != 100 || h.Extent.Sectors != 16 {
		t.Errorf("merged extent = %v", h.Extent)
	}
	if h.Merged != 1 {
		t.Errorf("merged count = %d", h.Merged)
	}
	if q.Merges() != 1 {
		t.Errorf("Merges() = %d", q.Merges())
	}
}

func TestFrontMerge(t *testing.T) {
	q := New("ssd")
	a := req(1, block.AppWrite, 108, 8)
	b := req(2, block.AppWrite, 100, 8)
	q.Push(a, 0)
	if !q.Push(b, 0) {
		t.Fatal("front merge failed")
	}
	h := q.Peek()
	if h.Extent.LBA != 100 || h.Extent.Sectors != 16 {
		t.Errorf("merged extent = %v", h.Extent)
	}
}

func TestNoMergeAcrossShadowFlags(t *testing.T) {
	q := New("ssd")
	a := req(1, block.AppWrite, 100, 8)
	a.Shadowed = true
	b := req(2, block.AppWrite, 108, 8)
	q.Push(a, 0)
	if q.Push(b, 0) {
		t.Fatal("shadowed and unshadowed writes must not merge")
	}
	// Two shadowed writes do merge.
	c := req(3, block.AppWrite, 92, 8)
	c.Shadowed = true
	if !q.Push(c, 0) {
		t.Fatal("two shadowed writes should merge")
	}
}

func TestArrivalsCensusAccumulates(t *testing.T) {
	q := New("ssd", WithMaxMergeSectors(0))
	q.Push(req(1, block.AppRead, 0, 8), 0)
	q.Push(req(2, block.Promote, 100, 8), 0)
	q.Pop()
	q.Pop()
	// Arrivals never decrease on pop.
	a := q.Arrivals()
	if a[block.AppRead] != 1 || a[block.Promote] != 1 {
		t.Fatalf("arrivals = %v", a)
	}
	// Merged arrivals still count.
	q2 := New("ssd")
	q2.Push(req(3, block.AppWrite, 0, 8), 0)
	q2.Push(req(4, block.AppWrite, 8, 8), 0) // merges
	if got := q2.Arrivals()[block.AppWrite]; got != 2 {
		t.Fatalf("merged arrival not counted: %d", got)
	}
}

func TestNoMergeAcrossOrigins(t *testing.T) {
	q := New("ssd")
	q.Push(req(1, block.AppWrite, 100, 8), 0)
	if q.Push(req(2, block.Promote, 108, 8), 0) {
		t.Fatal("requests of different origins must not merge")
	}
	if q.Depth() != 2 {
		t.Fatalf("depth = %d", q.Depth())
	}
}

func TestMergeSizeCap(t *testing.T) {
	q := New("ssd", WithMaxMergeSectors(12))
	q.Push(req(1, block.AppWrite, 100, 8), 0)
	if q.Push(req(2, block.AppWrite, 108, 8), 0) {
		t.Fatal("merge beyond size cap must be refused")
	}
	if !q.Push(req(3, block.AppWrite, 96, 4), 0) {
		t.Fatal("merge within cap must succeed")
	}
}

func TestMergeDisabled(t *testing.T) {
	q := New("ssd", WithMaxMergeSectors(0))
	q.Push(req(1, block.AppWrite, 100, 8), 0)
	if q.Push(req(2, block.AppWrite, 108, 8), 0) {
		t.Fatal("merging disabled but merge happened")
	}
}

func TestMergedCompletionChains(t *testing.T) {
	q := New("ssd")
	var done []uint64
	a := req(1, block.AppWrite, 100, 8)
	a.OnComplete = block.CompleterFunc(func(r *block.Request) { done = append(done, 1) })
	b := req(2, block.AppWrite, 108, 8)
	b.OnComplete = block.CompleterFunc(func(r *block.Request) {
		done = append(done, 2)
		if r.Complete != 500 {
			t.Errorf("absorbed request Complete = %v, want 500", r.Complete)
		}
		if r.Submit != 10 {
			t.Errorf("absorbed request Submit = %v, want its own 10", r.Submit)
		}
	})
	q.Push(a, 0)
	q.Push(b, 10)
	h := q.Pop()
	h.Dispatch = 100
	h.Complete = 500
	if h.OnComplete != nil {
		h.OnComplete.Complete(h)
	}
	if len(done) != 2 || done[0] != 1 || done[1] != 2 {
		t.Fatalf("completion chain = %v, want [1 2]", done)
	}
}

func TestCensusTracksPushPop(t *testing.T) {
	q := New("ssd", WithMaxMergeSectors(0))
	q.Push(req(1, block.AppRead, 0, 8), 0)
	q.Push(req(2, block.AppRead, 100, 8), 0)
	q.Push(req(3, block.Promote, 200, 8), 0)
	c := q.Census()
	if c[block.AppRead] != 2 || c[block.Promote] != 1 {
		t.Fatalf("census = %v", c)
	}
	q.Pop()
	c = q.Census()
	if c[block.AppRead] != 1 {
		t.Fatalf("census after pop = %v", c)
	}
}

func TestSnapshotOrder(t *testing.T) {
	q := New("ssd", WithMaxMergeSectors(0))
	for i := 0; i < 4; i++ {
		q.Push(req(uint64(i), block.AppWrite, int64(i)*100, 8), 0)
	}
	snap := q.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for i, r := range snap {
		if r.ID != uint64(i) {
			t.Fatalf("snapshot order wrong: %v", snap)
		}
	}
}

func TestExtractTail(t *testing.T) {
	q := New("ssd", WithMaxMergeSectors(0))
	for i := 0; i < 6; i++ {
		q.Push(req(uint64(i), block.AppWrite, int64(i)*100, 8), 0)
	}
	out := q.ExtractTail(2)
	if len(out) != 4 {
		t.Fatalf("extracted %d, want 4", len(out))
	}
	if out[0].ID != 2 || out[3].ID != 5 {
		t.Errorf("extracted wrong requests: %v", out)
	}
	if q.Depth() != 2 {
		t.Errorf("depth after extract = %d", q.Depth())
	}
	if q.Extracted() != 4 {
		t.Errorf("Extracted() = %d", q.Extracted())
	}
	// Remaining queue still dispatches in order.
	if q.Pop().ID != 0 || q.Pop().ID != 1 {
		t.Error("remaining order broken")
	}
}

func TestExtractPredicate(t *testing.T) {
	q := New("ssd", WithMaxMergeSectors(0))
	q.Push(req(1, block.AppRead, 0, 8), 0)
	q.Push(req(2, block.AppWrite, 100, 8), 0)
	q.Push(req(3, block.AppRead, 200, 8), 0)
	out := q.Extract(func(_ int, r *block.Request) bool { return r.Origin == block.AppWrite })
	if len(out) != 1 || out[0].ID != 2 {
		t.Fatalf("extract by origin = %v", out)
	}
	if q.Census()[block.AppWrite] != 0 {
		t.Error("census not updated by extract")
	}
}

func TestExtractedRequestCannotMergeAnymore(t *testing.T) {
	q := New("ssd")
	q.Push(req(1, block.AppWrite, 100, 8), 0)
	out := q.ExtractTail(0)
	if len(out) != 1 {
		t.Fatal("extract failed")
	}
	// A new contiguous request must NOT merge into the extracted one.
	if q.Push(req(2, block.AppWrite, 108, 8), 0) {
		t.Fatal("merged into an extracted (gone) request")
	}
}

func TestEstimatedWait(t *testing.T) {
	if EstimatedWait(5, 100*time.Microsecond) != 500*time.Microsecond {
		t.Error("estimated wait arithmetic wrong")
	}
	if EstimatedWait(0, time.Second) != 0 {
		t.Error("head of queue must have zero estimated wait")
	}
}

// Property: depth always equals pushes − merges − pops − extractions, the
// census total always equals depth, and snapshot length matches.
func TestAccountingInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := New("x")
		ops := 200 + r.Intn(200)
		for i := 0; i < ops; i++ {
			switch r.Intn(10) {
			case 0:
				q.Pop()
			case 1:
				q.ExtractTail(r.Intn(8))
			default:
				o := block.Origin(r.Intn(4))
				lba := int64(r.Intn(64)) * 8
				q.Push(req(uint64(i), o, lba, 8), time.Duration(i))
			}
			want := int(q.Pushed()) - int(q.Merges()) - int(q.Popped()) - int(q.Extracted())
			if q.Depth() != want {
				return false
			}
			if q.Census().Total() != q.Depth() {
				return false
			}
			if len(q.Snapshot()) != q.Depth() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: a merged head's extent always covers every absorbed request's
// extent exactly (no gaps or spill past the union).
func TestMergeExtentProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := New("x")
		base := int64(r.Intn(1000)) * 8
		// Sequential stream of same-origin requests: all should chain-merge
		// until the size cap interferes.
		total := int64(0)
		for i := 0; i < 20; i++ {
			n := int64(1 + r.Intn(16))
			q.Push(req(uint64(i), block.AppWrite, base+total, n), 0)
			total += n
		}
		covered := int64(0)
		for {
			h := q.Pop()
			if h == nil {
				break
			}
			if h.Extent.LBA != base+covered {
				return false // gap or overlap
			}
			if h.Extent.Sectors > DefaultMaxMergeSectors {
				return false
			}
			covered += h.Extent.Sectors
		}
		return covered == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	q := New("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(req(uint64(i), block.AppWrite, int64(i%4096)*16, 8), time.Duration(i))
		if q.Depth() > 256 {
			for q.Pop() != nil {
			}
		}
	}
}
