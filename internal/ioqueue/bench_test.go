package ioqueue_test

import (
	"testing"

	"lbica/internal/block"
	"lbica/internal/ioqueue"
	"lbica/internal/perf"
)

// The push/pop and merge benchmarks delegate to internal/perf so `go test
// -bench` and `lbicabench -perf` measure the exact same bodies.

func BenchmarkQueuePushPop(b *testing.B) { perf.BenchQueuePushPop(b) }
func BenchmarkQueueMerge(b *testing.B)   { perf.BenchQueueMerge(b) }

// BenchmarkQueueCensusSnapshot measures the monitor-side reads.
func BenchmarkQueueCensusSnapshot(b *testing.B) {
	q := ioqueue.New("bench")
	for i := 0; i < 32; i++ {
		q.Push(&block.Request{ID: uint64(i), Origin: block.Origin(i % block.NumOrigins),
			Extent: block.Extent{LBA: int64(i) * 4096, Sectors: 8}}, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := q.Census()
		if c.Total() != 32 {
			b.Fatal("census lost requests")
		}
	}
}
