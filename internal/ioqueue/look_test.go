package ioqueue

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lbica/internal/block"
)

func TestLookDispatchOrdersBySweep(t *testing.T) {
	q := New("hdd", WithDiscipline(LookDispatch), WithMaxMergeSectors(0))
	// Arrival order deliberately scrambled.
	for _, lba := range []int64{5000, 100, 9000, 4000, 200} {
		q.Push(req(uint64(lba), block.ReadMiss, lba, 8), 0)
	}
	var got []int64
	for {
		r := q.Pop()
		if r == nil {
			break
		}
		got = append(got, r.Extent.LBA)
	}
	// Head starts at 0 sweeping up: strictly ascending.
	want := []int64{100, 200, 4000, 5000, 9000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", got, want)
		}
	}
}

func TestLookReversesWhenDirectionExhausted(t *testing.T) {
	q := New("hdd", WithDiscipline(LookDispatch), WithMaxMergeSectors(0))
	q.Push(req(1, block.ReadMiss, 1000, 8), 0)
	if r := q.Pop(); r.Extent.LBA != 1000 {
		t.Fatal("setup")
	}
	// Head is now at 1008 sweeping up; only lower requests remain.
	q.Push(req(2, block.ReadMiss, 100, 8), 0)
	q.Push(req(3, block.ReadMiss, 500, 8), 0)
	if r := q.Pop(); r.Extent.LBA != 500 {
		t.Fatalf("after reversal got %d, want nearest-below 500", r.Extent.LBA)
	}
	if r := q.Pop(); r.Extent.LBA != 100 {
		t.Fatal("downward sweep out of order")
	}
}

// Property: LOOK serves every request exactly once (no loss, no
// duplication) and is starvation-free within two direction changes of the
// request's arrival sweep.
func TestLookConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := New("hdd", WithDiscipline(LookDispatch), WithMaxMergeSectors(0))
		want := map[uint64]bool{}
		id := uint64(0)
		popped := 0
		for step := 0; step < 300; step++ {
			if r.Intn(3) > 0 {
				id++
				q.Push(req(id, block.ReadMiss, int64(r.Intn(1<<20))*8, 8), 0)
				want[id] = true
			} else if rr := q.Pop(); rr != nil {
				if !want[rr.ID] {
					return false // duplicate or unknown
				}
				delete(want, rr.ID)
				popped++
			}
		}
		for {
			rr := q.Pop()
			if rr == nil {
				break
			}
			if !want[rr.ID] {
				return false
			}
			delete(want, rr.ID)
		}
		return len(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// LOOK dispatch must produce monotone runs: direction changes are rare
// relative to pops on a static queue.
func TestLookMinimizesDirectionChanges(t *testing.T) {
	q := New("hdd", WithDiscipline(LookDispatch), WithMaxMergeSectors(0))
	r := rand.New(rand.NewSource(5))
	n := 200
	for i := 0; i < n; i++ {
		q.Push(req(uint64(i), block.ReadMiss, int64(r.Intn(1<<20))*8, 8), 0)
	}
	var lbas []int64
	for {
		rr := q.Pop()
		if rr == nil {
			break
		}
		lbas = append(lbas, rr.Extent.LBA)
	}
	changes := 0
	for i := 2; i < len(lbas); i++ {
		up1 := lbas[i-1] >= lbas[i-2]
		up2 := lbas[i] >= lbas[i-1]
		if up1 != up2 {
			changes++
		}
	}
	if changes > 2 {
		t.Errorf("%d direction changes draining a static queue, want ≤2 (one sweep each way)", changes)
	}
}

func TestFIFOIsDefault(t *testing.T) {
	q := New("x", WithMaxMergeSectors(0))
	q.Push(req(1, block.ReadMiss, 9000, 8), 0)
	q.Push(req(2, block.ReadMiss, 100, 8), 0)
	if q.Pop().ID != 1 {
		t.Fatal("default discipline must be FIFO")
	}
}
