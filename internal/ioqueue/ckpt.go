package ioqueue

import (
	"sort"

	"lbica/internal/block"
	"lbica/internal/ckpt"
)

func init() {
	// The merge-chain completer: its payload is (owning queue, earlier
	// chain link, absorbed request). The queue resolves through the
	// component map at alloc time so the two-phase fill only walks the
	// request graph.
	ckpt.RegisterCompleter("ioqueue.chain",
		func(d *ckpt.Decoder) block.Completer {
			q, ok := d.ComponentRef().(*Queue)
			if !ok {
				d.Failf("chain completer references a non-queue component")
				return nil
			}
			return &chain{q: q}
		},
		func(d *ckpt.Decoder, c block.Completer) {
			ch := c.(*chain)
			ch.prev = d.Completer()
			ch.absorbed = d.Request()
			if ch.absorbed == nil && d.Err() == nil {
				d.Failf("chain completer without an absorbed request")
			}
		})
}

// CkptKind implements ckpt.EncodableCompleter.
func (c *chain) CkptKind() string { return "ioqueue.chain" }

// EncodeCkpt implements ckpt.EncodableCompleter.
func (c *chain) EncodeCkpt(e *ckpt.Encoder) {
	e.ComponentRef(c.q)
	e.Completer(c.prev)
	e.Request(c.absorbed)
}

// encodeHash writes an elevator hash as sorted (boundary key, node list
// position) pairs. The maps cannot be rebuilt from the node list alone:
// an entry overwritten by a later arrival and then vacated stays absent
// even though a queued node carries that boundary, and merge-candidate
// lookups observe the difference.
func encodeHash(enc *ckpt.Encoder, h map[int64]*node, pos map[*node]int) {
	keys := make([]int64, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	enc.U32(uint32(len(keys)))
	for _, k := range keys {
		enc.I64(k)
		enc.Int(pos[h[k]])
	}
}

// decodeHash reads a hash written by encodeHash against the decoded node
// list.
func decodeHash(d *ckpt.Decoder, nodes []*node) map[int64]*node {
	n := d.Count(16)
	h := make(map[int64]*node, n)
	for i := 0; i < n; i++ {
		k := d.I64()
		p := d.Int()
		if d.Err() != nil {
			return h
		}
		if p < 0 || p >= len(nodes) {
			d.Failf("hash entry %d references node position %d (queue depth %d)", i, p, len(nodes))
			return h
		}
		h[k] = nodes[p]
	}
	return h
}

// EncodeState serializes the queue: pending requests in list order (via
// the shared request-graph encoder, so a request also held by a server op
// round-trips to one clone), the census and cumulative counters, the
// dispatch-discipline state, and both elevator hashes. The node/chain
// pools are behavior-invisible (pooled objects fully reset on reuse) and
// excluded, exactly as Clone excludes them.
func (q *Queue) EncodeState(enc *ckpt.Encoder) {
	enc.Section("ioqueue.Queue")
	enc.String(q.name)
	enc.U32(uint32(q.size))
	pos := make(map[*node]int, q.size)
	i := 0
	for n := q.head; n != nil; n = n.next {
		enc.Request(n.req)
		pos[n] = i
		i++
	}
	for _, c := range q.census {
		enc.Int(c)
	}
	encodeHash(enc, q.backHash, pos)
	encodeHash(enc, q.frontHash, pos)
	enc.I64(q.maxMergeSectors)
	enc.U8(uint8(q.discipline))
	enc.I64(q.headPos)
	enc.Bool(q.sweepUp)
	enc.U64(q.pushed)
	enc.U64(q.popped)
	enc.U64(q.merges)
	enc.U64(q.bypassed)
	enc.Int(q.depthPeak)
	for _, c := range q.arrivals {
		enc.Int(c)
	}
}

// DecodeState restores the queue in place. The queue must already be
// registered on the decoder's component map (chain completers inside the
// request graph resolve their owning queue through it), and its recycle
// hook — wired by the freshly built stack — is left untouched.
func (q *Queue) DecodeState(d *ckpt.Decoder) {
	d.Section("ioqueue.Queue")
	name := d.String()
	if d.Err() != nil {
		return
	}
	if name != q.name {
		d.Failf("queue name mismatch: checkpoint has %q, stack has %q", name, q.name)
		return
	}
	size := d.Count(4)
	nodes := make([]*node, size)
	var head, tail *node
	for i := range nodes {
		r := d.Request()
		if d.Err() != nil {
			return
		}
		if r == nil {
			d.Failf("queue %q node %d has no request", name, i)
			return
		}
		n := &node{req: r}
		nodes[i] = n
		if tail == nil {
			head, tail = n, n
		} else {
			n.prev = tail
			tail.next = n
			tail = n
		}
	}
	var census block.Census
	for i := range census {
		census[i] = d.Int()
	}
	backHash := decodeHash(d, nodes)
	frontHash := decodeHash(d, nodes)
	maxMergeSectors := d.I64()
	discipline := Discipline(d.U8())
	headPos := d.I64()
	sweepUp := d.Bool()
	pushed := d.U64()
	popped := d.U64()
	merges := d.U64()
	bypassed := d.U64()
	depthPeak := d.Int()
	var arrivals block.Census
	for i := range arrivals {
		arrivals[i] = d.Int()
	}
	if d.Err() != nil {
		return
	}
	if discipline > LookDispatch {
		d.Failf("queue %q has invalid discipline %d", name, discipline)
		return
	}
	q.head, q.tail = head, tail
	q.size = size
	q.freeNodes = nil
	q.freeChains = nil
	q.census = census
	q.backHash = backHash
	q.frontHash = frontHash
	q.maxMergeSectors = maxMergeSectors
	q.discipline = discipline
	q.headPos = headPos
	q.sweepUp = sweepUp
	q.pushed = pushed
	q.popped = popped
	q.merges = merges
	q.bypassed = bypassed
	q.depthPeak = depthPeak
	q.arrivals = arrivals
}
