package engine

import (
	"testing"
	"time"

	"lbica/internal/block"
	"lbica/internal/cache"
	"lbica/internal/device"
	"lbica/internal/sim"
	"lbica/internal/trace"
	"lbica/internal/workload"
)

// testConfig shrinks the default stack for fast unit runs.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Cache.Sets = 512
	cfg.Cache.Ways = 4
	cfg.PrewarmBlocks = 1024
	cfg.MonitorEvery = 50 * time.Millisecond
	return cfg
}

func TestConservationAllRequestsComplete(t *testing.T) {
	cfg := testConfig()
	gen := workload.MixedRW(500*time.Millisecond, 4000, 4096, sim.NewRNG(1, "wl"))
	st := New(cfg, gen, nil)
	res := st.Run(10)

	if res.AppSubmitted == 0 {
		t.Fatal("no requests submitted")
	}
	if res.AppCompleted != res.AppSubmitted {
		t.Fatalf("completed %d of %d submitted", res.AppCompleted, res.AppSubmitted)
	}
	if uint64(res.AppLatency.Count()) != res.AppCompleted {
		t.Fatalf("latency histogram count %d != completed %d", res.AppLatency.Count(), res.AppCompleted)
	}
	if st.SSDQueue().Depth() != 0 || st.HDDQueue().Depth() != 0 {
		t.Fatal("queues not drained at idle")
	}
	if err := st.Cache().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSamplesCoverRun(t *testing.T) {
	cfg := testConfig()
	gen := workload.RandomRead(500*time.Millisecond, 2000, 2048, sim.NewRNG(2, "wl"))
	res := New(cfg, gen, nil).Run(10)
	if len(res.Samples) != 10 {
		t.Fatalf("samples = %d, want 10", len(res.Samples))
	}
	for i, s := range res.Samples {
		if s.Interval != i {
			t.Fatalf("sample %d has interval %d", i, s.Interval)
		}
	}
}

func TestLatencyNeverBelowServiceFloor(t *testing.T) {
	cfg := testConfig()
	gen := workload.RandomRead(200*time.Millisecond, 1000, 512, sim.NewRNG(3, "wl"))
	res := New(cfg, gen, nil).Run(4)
	// No application request can finish faster than the fastest SSD
	// service time; use a conservative floor well under the 90µs base.
	if res.AppLatency.Min() < 20*time.Microsecond {
		t.Errorf("min latency %v below any plausible service floor", res.AppLatency.Min())
	}
}

func TestPrewarmedReadsMostlyHit(t *testing.T) {
	cfg := testConfig()
	// Working set equals the prewarm budget: everything should hit.
	gen := workload.RandomRead(200*time.Millisecond, 2000, 1024, sim.NewRNG(4, "wl"))
	res := New(cfg, gen, nil).Run(4)
	if hr := res.CacheStats.HitRatio(); hr < 0.98 {
		t.Errorf("hit ratio = %.3f, want ≈1 for a fully prewarmed set", hr)
	}
	if res.CacheStats.Promotes > res.CacheStats.ReadMisses {
		t.Errorf("promotes %d exceed misses %d", res.CacheStats.Promotes, res.CacheStats.ReadMisses)
	}
}

func TestMissesGenerateDiskAndPromoteTraffic(t *testing.T) {
	cfg := testConfig()
	cfg.PrewarmBlocks = 0
	var buf trace.Buffer
	cfg.Trace = &buf
	gen := workload.RandomRead(100*time.Millisecond, 500, 65536, sim.NewRNG(5, "wl"))
	res := New(cfg, gen, nil).Run(2)
	if res.CacheStats.ReadMisses == 0 {
		t.Fatal("cold large-working-set run produced no misses")
	}
	var sawMiss, sawPromote bool
	for _, e := range buf.Events {
		if e.Kind == trace.Queued && e.Dev == trace.HDD && e.Origin == block.ReadMiss {
			sawMiss = true
		}
		if e.Kind == trace.Queued && e.Dev == trace.SSD && e.Origin == block.Promote {
			sawPromote = true
		}
	}
	if !sawMiss || !sawPromote {
		t.Errorf("trace lacks miss/promote evidence: miss=%v promote=%v", sawMiss, sawPromote)
	}
}

func TestWriteBackBuffersAndFlusherDrains(t *testing.T) {
	cfg := testConfig()
	cfg.Cache.DirtyHighWatermark = 0.05
	cfg.Cache.DirtyLowWatermark = 0.02
	gen := workload.RandomWrite(300*time.Millisecond, 3000, 1024, sim.NewRNG(6, "wl"))
	st := New(cfg, gen, nil)
	res := st.Run(6)
	if res.CacheStats.Flushed == 0 {
		t.Error("flusher never cleaned a block despite low watermarks")
	}
	if res.CacheStats.FlushesStarted < res.CacheStats.Flushed {
		t.Error("flush accounting inconsistent")
	}
}

func TestWTFanOutCompletesBothLegs(t *testing.T) {
	cfg := testConfig()
	cfg.Cache.InitialPolicy = cache.WT
	var buf trace.Buffer
	cfg.Trace = &buf
	gen := workload.RandomWrite(100*time.Millisecond, 1000, 512, sim.NewRNG(7, "wl"))
	res := New(cfg, gen, nil).Run(2)
	if res.AppCompleted != res.AppSubmitted {
		t.Fatalf("WT fan-out wedged: %d of %d", res.AppCompleted, res.AppSubmitted)
	}
	// Every write must appear on both tiers.
	ssdW, hddW := 0, 0
	for _, e := range buf.Events {
		if e.Kind != trace.Queued && e.Kind != trace.Merged {
			continue
		}
		if e.Dev == trace.SSD && e.Origin == block.AppWrite {
			ssdW++
		}
		if e.Dev == trace.HDD && e.Origin == block.BypassWrite {
			hddW++
		}
	}
	if ssdW == 0 || hddW == 0 || ssdW != hddW {
		t.Errorf("WT legs: ssd=%d hdd=%d, want equal and nonzero", ssdW, hddW)
	}
}

func TestROWritesGoToDisk(t *testing.T) {
	cfg := testConfig()
	cfg.Cache.InitialPolicy = cache.RO
	gen := workload.RandomWrite(100*time.Millisecond, 1000, 512, sim.NewRNG(8, "wl"))
	res := New(cfg, gen, nil).Run(2)
	if res.AppCompleted != res.AppSubmitted {
		t.Fatal("RO run wedged")
	}
	if res.CacheStats.DirtyEvicts != 0 || res.CacheStats.Flushed != 0 {
		t.Error("RO cache must never hold dirty data")
	}
}

func TestDirtyEvictionsProduceWritebacks(t *testing.T) {
	cfg := testConfig()
	cfg.Cache.Sets = 16
	cfg.Cache.Ways = 2
	cfg.Cache.DirtyHighWatermark = 0.99 // flusher out of the picture
	cfg.Cache.DirtyLowWatermark = 0.98
	cfg.PrewarmBlocks = 0
	var buf trace.Buffer
	cfg.Trace = &buf
	gen := workload.RandomWrite(100*time.Millisecond, 2000, 4096, sim.NewRNG(9, "wl"))
	res := New(cfg, gen, nil).Run(2)
	if res.CacheStats.DirtyEvicts == 0 {
		t.Fatal("tiny cache under random writes must evict dirty victims")
	}
	evictReads, writebacks := 0, 0
	for _, e := range buf.Events {
		if e.Kind != trace.Queued && e.Kind != trace.Merged {
			continue
		}
		if e.Dev == trace.SSD && e.Origin == block.Evict {
			evictReads++
		}
		if e.Dev == trace.HDD && e.Origin == block.Writeback {
			writebacks++
		}
	}
	if evictReads == 0 || writebacks == 0 {
		t.Errorf("eviction traffic missing: E=%d WB=%d", evictReads, writebacks)
	}
}

// admitNone is a balancer that bypasses every request.
type admitNone struct{ st *Stack }

func (a *admitNone) Name() string     { return "bypass-all" }
func (a *admitNone) Attach(st *Stack) { a.st = st }
func (a *admitNone) Admit(op block.Op, e block.Extent) bool {
	return op == block.Read && a.st.Cache().DirtyIn(e)
}

func TestBalancerAdmissionBypass(t *testing.T) {
	cfg := testConfig()
	gen := workload.MixedRW(100*time.Millisecond, 1000, 512, sim.NewRNG(10, "wl"))
	res := New(cfg, gen, &admitNone{}).Run(2)
	if res.AppCompleted != res.AppSubmitted {
		t.Fatal("bypass-all run wedged")
	}
	if res.BypassedToDisk == 0 {
		t.Fatal("nothing bypassed")
	}
	if res.Scheme != "bypass-all" {
		t.Errorf("scheme = %q", res.Scheme)
	}
	// SSD saw (almost) no traffic.
	if res.SSDPeakDepth > 2 {
		t.Errorf("ssd peak depth = %d under full bypass", res.SSDPeakDepth)
	}
}

func TestRedirectTailMovesSafeRequestsOnly(t *testing.T) {
	cfg := testConfig()
	gen := workload.RandomRead(time.Millisecond, 10, 16, sim.NewRNG(11, "wl"))
	st := New(cfg, gen, nil)

	// Hand-plant a queue: a dirty-read hit, a clean-read hit, a plain
	// write, and an evict read. Addresses are far apart so queue merging
	// stays out of the picture.
	st.Cache().Access(block.Write, block.Extent{LBA: 0, Sectors: 8}, 0) // block 0 dirty
	st.Cache().Prewarm([]int64{128})                                    // block 128 clean

	mkreq := func(o block.Origin, lba int64) *block.Request {
		return &block.Request{ID: 1000 + uint64(lba), Origin: o, Extent: block.Extent{LBA: lba, Sectors: 8}}
	}
	// Occupy the single SSD slot so nothing dispatches during the test.
	st.StallSSD(time.Hour)
	st.SSDQueue().Push(mkreq(block.AppRead, 0), 0)     // dirty → must stay
	st.SSDQueue().Push(mkreq(block.AppRead, 1024), 0)  // clean → moves
	st.SSDQueue().Push(mkreq(block.AppWrite, 2048), 0) // moves (invalidate+redirect)
	st.SSDQueue().Push(mkreq(block.Evict, 4096), 0)    // must stay

	moved := st.RedirectTail(0)
	if moved != 2 {
		t.Fatalf("moved %d, want 2", moved)
	}
	if st.SSDQueue().Depth() != 2 {
		t.Fatalf("ssd depth = %d, want 2 (dirty read + evict)", st.SSDQueue().Depth())
	}
	if st.HDDQueue().Pushed() != 2 {
		t.Fatalf("disk queue saw %d pushes, want the 2 redirected requests", st.HDDQueue().Pushed())
	}
	c := st.SSDQueue().Census()
	if c[block.AppRead] != 1 || c[block.Evict] != 1 {
		t.Errorf("remaining census = %v", c)
	}
}

func TestRedirectTailCancelsShadowedWrites(t *testing.T) {
	cfg := testConfig()
	gen := workload.RandomRead(time.Millisecond, 10, 16, sim.NewRNG(12, "wl"))
	st := New(cfg, gen, nil)
	st.StallSSD(time.Hour)

	completed := false
	r := &block.Request{ID: 1, Origin: block.AppWrite, Extent: block.Extent{LBA: 0, Sectors: 8}, Shadowed: true}
	r.OnComplete = block.CompleterFunc(func(*block.Request) { completed = true })
	st.SSDQueue().Push(r, 0)
	if st.RedirectTail(0) != 1 {
		t.Fatal("shadowed write not extracted")
	}
	if !completed {
		t.Fatal("cancelled shadow leg must complete as a no-op")
	}
	if st.HDDQueue().Depth() != 0 {
		t.Fatal("cancelled shadow must not be re-queued on disk")
	}
}

func TestRedirectTailKeepsHead(t *testing.T) {
	cfg := testConfig()
	gen := workload.RandomRead(time.Millisecond, 10, 16, sim.NewRNG(13, "wl"))
	st := New(cfg, gen, nil)
	st.StallSSD(time.Hour)
	for i := int64(0); i < 6; i++ {
		st.SSDQueue().Push(&block.Request{ID: uint64(i), Origin: block.AppWrite,
			Extent: block.Extent{LBA: i * 1024, Sectors: 8}}, 0)
	}
	st.RedirectTail(4)
	if st.SSDQueue().Depth() != 4 {
		t.Fatalf("depth = %d, want 4 kept", st.SSDQueue().Depth())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() *Results {
		cfg := testConfig()
		gen := workload.MixedRW(300*time.Millisecond, 3000, 2048, sim.NewRNG(14, "wl"))
		return New(cfg, gen, nil).Run(6)
	}
	a, b := run(), run()
	if a.AppSubmitted != b.AppSubmitted || a.AppCompleted != b.AppCompleted {
		t.Fatal("request counts differ across identical runs")
	}
	if a.AppLatency.Mean() != b.AppLatency.Mean() {
		t.Fatal("latency differs across identical runs")
	}
	for i := range a.Samples {
		if a.Samples[i].CacheLoad != b.Samples[i].CacheLoad {
			t.Fatalf("interval %d cache load differs", i)
		}
	}
}

func TestPolicyTimelineRecorded(t *testing.T) {
	cfg := testConfig()
	gen := workload.RandomRead(50*time.Millisecond, 100, 64, sim.NewRNG(15, "wl"))
	st := New(cfg, gen, nil)
	st.NotePolicy(cache.WO, "G1")
	res := st.Run(1)
	if len(res.Timeline) != 1 || res.Timeline[0].Policy != cache.WO || res.Timeline[0].Group != "G1" {
		t.Fatalf("timeline = %+v", res.Timeline)
	}
}

func TestEq1CalibrationExposed(t *testing.T) {
	cfg := testConfig()
	gen := workload.RandomRead(time.Millisecond, 10, 16, sim.NewRNG(16, "wl"))
	st := New(cfg, gen, nil)
	if st.SSDLatency() <= 0 || st.HDDLatency() <= 0 {
		t.Fatal("calibration constants missing")
	}
	if st.HDDLatency() < 10*st.SSDLatency() {
		t.Errorf("tier gap too small: ssd=%v hdd=%v", st.SSDLatency(), st.HDDLatency())
	}
}

func TestWriteCacheAbsorbsBypassedWrites(t *testing.T) {
	cfg := testConfig()
	cfg.Cache.InitialPolicy = cache.RO // all writes go to disk
	gen := workload.RandomWrite(200*time.Millisecond, 4000, 2048, sim.NewRNG(17, "wl"))
	res := New(cfg, gen, nil).Run(4)
	if res.AppCompleted != res.AppSubmitted {
		t.Fatal("run wedged")
	}
	// With the controller write cache, 4k wIOPS must be absorbed at µs
	// latency — mean app latency well under a spindle seek.
	if res.AppLatency.Mean() > 2*time.Millisecond {
		t.Errorf("bypassed writes mean latency %v — controller cache not absorbing", res.AppLatency.Mean())
	}
}

func TestHDDWriteCacheOverflowDegrades(t *testing.T) {
	hddCfg := DefaultConfig().HDD
	hddCfg.WriteCacheDepth = 8
	hddCfg.DrainIOPS = 10
	eng := sim.NewEngine()
	m := device.NewHDD(hddCfg, sim.NewRNG(1, "h"))
	m.SetClock(eng.Now)
	fast, slow := 0, 0
	for i := 0; i < 100; i++ {
		svc := m.Service(&block.Request{Origin: block.AppWrite,
			Extent: block.Extent{LBA: int64(i) * 1024, Sectors: 8}})
		if svc <= hddCfg.WriteCacheLatency {
			fast++
		} else {
			slow++
		}
	}
	if fast == 0 || slow == 0 {
		t.Errorf("write cache overflow not exercised: fast=%d slow=%d", fast, slow)
	}
	if m.WriteCacheRejects() == 0 {
		t.Error("rejects counter not advanced")
	}
}
