// Stack checkpointing: serialize a mid-run stack to bytes and restore it
// onto a freshly built stack of the same configuration. The codec is the
// persistent twin of Fork (fork.go): where Fork deep-copies live state
// into a sibling process-local stack, EncodeState writes the exact same
// state set to the wire — engine arena, cache, queues with their
// in-flight request graphs, device servers, monitor, balancer, generator
// — and DecodeState replays it in place, rebinding the event chains the
// way Fork does. The determinism contract carries over verbatim: a
// restored stack, run to completion, produces byte-identical Results to
// the stack that was checkpointed (and therefore to an uninterrupted
// from-scratch run).
package engine

import (
	"context"

	"lbica/internal/block"
	"lbica/internal/cache"
	"lbica/internal/ckpt"
	"lbica/internal/sim"
	"lbica/internal/trace"
)

func init() {
	// The three completer kinds the stack installs on requests. Each
	// payload leads with the owning-stack component ref so alloc can
	// build the placeholder before fill walks the rest (two-phase decode
	// resolves the request graph's cycles).
	ckpt.RegisterCompleter("engine.appOp",
		func(d *ckpt.Decoder) block.Completer {
			st, ok := d.ComponentRef().(*Stack)
			if !ok {
				d.Failf("app op references a non-stack component")
				return nil
			}
			return &appOp{st: st}
		},
		func(d *ckpt.Decoder, c block.Completer) {
			op := c.(*appOp)
			op.arrival = d.Duration()
			op.legs = d.Int()
			op.promote = d.Bool()
			op.promoteExt.LBA = d.I64()
			op.promoteExt.Sectors = d.I64()
			if d.Err() == nil && (op.legs < 1 || op.legs > 2) {
				d.Failf("app op with %d legs", op.legs)
			}
		})
	ckpt.RegisterCompleter("engine.evictOp",
		func(d *ckpt.Decoder) block.Completer {
			st, ok := d.ComponentRef().(*Stack)
			if !ok {
				d.Failf("evict op references a non-stack component")
				return nil
			}
			return &evictOp{st: st}
		},
		func(d *ckpt.Decoder, c block.Completer) { c.(*evictOp).decodePayload(d) })
	ckpt.RegisterCompleter("engine.wbCompleter",
		func(d *ckpt.Decoder) block.Completer {
			st, ok := d.ComponentRef().(*Stack)
			if !ok {
				d.Failf("writeback completer references a non-stack component")
				return nil
			}
			return (*wbCompleter)(&evictOp{st: st})
		},
		func(d *ckpt.Decoder, c block.Completer) { (*evictOp)(c.(*wbCompleter)).decodePayload(d) })
}

// CkptKind implements ckpt.EncodableCompleter.
func (op *appOp) CkptKind() string { return "engine.appOp" }

// EncodeCkpt implements ckpt.EncodableCompleter.
func (op *appOp) EncodeCkpt(e *ckpt.Encoder) {
	e.ComponentRef(op.st)
	e.Duration(op.arrival)
	e.Int(op.legs)
	e.Bool(op.promote)
	e.I64(op.promoteExt.LBA)
	e.I64(op.promoteExt.Sectors)
}

func (op *evictOp) encodePayload(e *ckpt.Encoder) {
	e.ComponentRef(op.st)
	e.I64(op.ext.LBA)
	e.I64(op.ext.Sectors)
	e.I64(op.blockNum)
	e.U64(op.epoch)
	e.Bool(op.markClean)
}

func (op *evictOp) decodePayload(d *ckpt.Decoder) {
	op.ext.LBA = d.I64()
	op.ext.Sectors = d.I64()
	op.blockNum = d.I64()
	op.epoch = d.U64()
	op.markClean = d.Bool()
}

// CkptKind implements ckpt.EncodableCompleter.
func (op *evictOp) CkptKind() string { return "engine.evictOp" }

// EncodeCkpt implements ckpt.EncodableCompleter.
func (op *evictOp) EncodeCkpt(e *ckpt.Encoder) { op.encodePayload(e) }

// CkptKind implements ckpt.EncodableCompleter.
func (op *wbCompleter) CkptKind() string { return "engine.wbCompleter" }

// EncodeCkpt implements ckpt.EncodableCompleter.
func (op *wbCompleter) EncodeCkpt(e *ckpt.Encoder) { (*evictOp)(op).encodePayload(e) }

// EncodeState serializes the complete stack. It fails (sticky encoder
// error, stack untouched) in exactly the cases Fork refuses: a traced
// run, a generator or balancer without checkpoint support, or an
// in-flight completer the codec does not know.
func (st *Stack) EncodeState(enc *ckpt.Encoder) {
	enc.Section("engine.Stack")
	if st.rec != trace.Discard {
		enc.Failf("engine: cannot checkpoint a traced stack")
		return
	}
	gen, ok := st.gen.(ckpt.StateCodec)
	if !ok {
		enc.Failf("engine: generator %q is not checkpointable", st.gen.Name())
		return
	}
	// Component ids, in the fixed order DecodeState mirrors. Registered
	// before any request graph is walked: completers inside the queues
	// and servers resolve their owners through these ids.
	enc.RegisterComponent(st)
	enc.RegisterComponent(st.ssdQ)
	enc.RegisterComponent(st.hddQ)

	st.eng.EncodeState(enc)

	enc.U64(st.ids)
	enc.U64(st.appSubmitted)
	enc.U64(st.appCompleted)
	enc.U64(st.bypassed)
	enc.U64(st.cancelled)
	enc.I64(st.ssdWrSectors)
	enc.I64(st.hddWrSectors)
	st.appLat.EncodeState(enc)

	enc.U32(uint32(len(st.timeline)))
	for _, pc := range st.timeline {
		enc.Int(pc.Interval)
		enc.Duration(pc.At)
		enc.U8(uint8(pc.Policy))
		enc.String(pc.Group)
	}
	enc.U32(uint32(len(st.cacheStatsAt)))
	for i := range st.cacheStatsAt {
		st.cacheStatsAt[i].EncodeState(enc)
	}

	enc.Bool(st.flushing)
	enc.Int(st.ticks)
	enc.Int(st.maxTicks)

	enc.Duration(st.pumpReq.At)
	enc.U8(uint8(st.pumpReq.Op))
	enc.I64(st.pumpReq.Extent.LBA)
	enc.I64(st.pumpReq.Extent.Sectors)
	enc.Bool(st.pumpStopped)
	sim.EncodeEvent(enc, st.pumpEv)
	sim.EncodeEvent(enc, st.tickEv)
	sim.EncodeEvent(enc, st.flushEv)

	st.cch.EncodeState(enc)
	st.ssdQ.EncodeState(enc)
	st.hddQ.EncodeState(enc)
	st.mon.EncodeState(enc)
	st.ssd.EncodeState(enc)
	st.hdd.EncodeState(enc)

	enc.Section("engine.balancer")
	enc.String(st.schemeName())
	enc.Bool(st.bal != nil)
	if st.bal != nil {
		bc, ok := st.bal.(ckpt.StateCodec)
		if !ok {
			enc.Failf("engine: balancer %q is not checkpointable", st.bal.Name())
			return
		}
		bc.EncodeState(enc)
	}
	enc.U32(uint32(len(st.periodics)))
	for i := range st.periodics {
		enc.Duration(st.periodics[i].every)
		sim.EncodeEvent(enc, st.periodics[i].ev)
	}

	enc.Section("engine.generator")
	gen.EncodeState(enc)
	enc.Section("engine.end")
}

// DecodeState restores a checkpoint onto this freshly built stack —
// same Config, same generator construction, same balancer scheme; New
// must have run but not Start. On success the stack is mid-run exactly
// where the checkpointed one was: StepTo/Drain/Collect/Fork all continue
// from the restored state. On failure the decoder carries the error and
// the stack must be discarded (it may be partially overwritten).
//
// ctx provides the cooperative-cancellation channel Start would have
// installed; nil means background.
func (st *Stack) DecodeState(ctx context.Context, d *ckpt.Decoder) {
	d.Section("engine.Stack")
	if st.rec != trace.Discard {
		d.Failf("engine: cannot restore onto a traced stack")
		return
	}
	gen, ok := st.gen.(ckpt.StateCodec)
	if !ok {
		d.Failf("engine: generator %q is not checkpointable", st.gen.Name())
		return
	}
	if ctx == nil {
		ctx = context.Background()
	}
	d.RegisterComponent(st)
	d.RegisterComponent(st.ssdQ)
	d.RegisterComponent(st.hddQ)

	st.eng.DecodeState(d)
	if d.Err() != nil {
		return
	}

	st.ids = d.U64()
	st.appSubmitted = d.U64()
	st.appCompleted = d.U64()
	st.bypassed = d.U64()
	st.cancelled = d.U64()
	st.ssdWrSectors = d.I64()
	st.hddWrSectors = d.I64()
	st.appLat.DecodeState(d)

	nTL := d.Count(14)
	if d.Err() != nil {
		return
	}
	// nil when empty, as on a fresh stack: Results equality is byte-level.
	st.timeline = nil
	if nTL > 0 {
		st.timeline = make([]PolicyChange, 0, nTL)
	}
	for i := 0; i < nTL; i++ {
		pc := PolicyChange{
			Interval: d.Int(),
			At:       d.Duration(),
			Policy:   cache.Policy(d.U8()),
			Group:    d.String(),
		}
		if d.Err() != nil {
			return
		}
		st.timeline = append(st.timeline, pc)
	}
	nCS := d.Count(8)
	if d.Err() != nil {
		return
	}
	st.cacheStatsAt = nil
	if nCS > 0 {
		st.cacheStatsAt = make([]cache.Stats, 0, nCS)
	}
	for i := 0; i < nCS; i++ {
		var cs cache.Stats
		cs.DecodeState(d)
		if d.Err() != nil {
			return
		}
		st.cacheStatsAt = append(st.cacheStatsAt, cs)
	}

	st.flushing = d.Bool()
	st.ticks = d.Int()
	st.maxTicks = d.Int()

	st.pumpReq.At = d.Duration()
	st.pumpReq.Op = block.Op(d.U8())
	st.pumpReq.Extent.LBA = d.I64()
	st.pumpReq.Extent.Sectors = d.I64()
	st.pumpStopped = d.Bool()

	// Rebind the self-rescheduling chains onto the restored arena, the
	// same claim pass Fork runs on a clone.
	st.ctxDone = ctx.Done()
	st.bindChainFns()
	rebind := func(fn func(), what string) sim.Event {
		ref, pending := st.eng.DecodeEvent(d)
		if d.Err() != nil || !pending {
			return sim.Event{}
		}
		ev, ok := st.eng.Rebind(ref, fn)
		if !ok {
			d.Failf("engine: %s event failed to rebind", what)
			return sim.Event{}
		}
		return ev
	}
	st.pumpEv = rebind(st.pumpFn, "arrival pump")
	st.tickEv = rebind(st.tickFn, "monitor tick")
	st.flushEv = rebind(st.flushFn, "flusher")
	if d.Err() != nil {
		return
	}

	st.cch.DecodeState(d)
	st.ssdQ.DecodeState(d)
	st.hddQ.DecodeState(d)
	st.mon.DecodeState(d)
	st.ssd.DecodeState(d)
	st.hdd.DecodeState(d)
	if d.Err() != nil {
		return
	}

	d.Section("engine.balancer")
	scheme := d.String()
	hasBal := d.Bool()
	if d.Err() != nil {
		return
	}
	if scheme != st.schemeName() || hasBal != (st.bal != nil) {
		d.Failf("engine: checkpoint is for scheme %q, stack runs %q", scheme, st.schemeName())
		return
	}
	if st.bal != nil {
		bc, ok := st.bal.(ckpt.StateCodec)
		if !ok {
			d.Failf("engine: balancer %q is not checkpointable", st.bal.Name())
			return
		}
		bc.DecodeState(d)
	}
	nPer := d.Count(9)
	if d.Err() != nil {
		return
	}
	if nPer != len(st.periodics) {
		d.Failf("engine: checkpoint has %d balancer periodics, stack registered %d", nPer, len(st.periodics))
		return
	}
	for i := 0; i < nPer; i++ {
		every := d.Duration()
		if d.Err() == nil && every != st.periodics[i].every {
			d.Failf("engine: periodic %d fires every %v in the checkpoint, %v on the stack", i, every, st.periodics[i].every)
			return
		}
		st.bindPeriodic(i)
		st.periodics[i].ev = rebind(st.periodics[i].runFn, "balancer periodic")
		if d.Err() != nil {
			return
		}
	}

	d.Section("engine.generator")
	gen.DecodeState(d)
	d.Section("engine.end")
	if d.Err() != nil {
		return
	}

	// The restored pools start empty; recycling refills them.
	st.freeReqs = nil
	st.freeAppOps = nil
	st.freeEvictOps = nil

	// Every pending event must have found its owner above — the same
	// closing invariant Fork enforces on a clone.
	if n := st.eng.UnboundEvents(); n > 0 {
		d.Failf("engine: %d pending events were not rebound after restore", n)
	}
}
