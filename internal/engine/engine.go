// Package engine composes the simulated storage stack of the paper's
// Fig. 1/2: application workload → cache module → SSD queue + disk-
// subsystem queue, with the full request lifecycle (hit service, miss +
// promote, dirty eviction + writeback, write-through fan-out, background
// dirty flushing) and the hook points a load balancer needs (per-interval
// monitor callbacks, per-request admission, queue-tail redirection).
package engine

import (
	"context"
	"fmt"
	"time"

	"lbica/internal/block"
	"lbica/internal/cache"
	"lbica/internal/device"
	"lbica/internal/ioqueue"
	"lbica/internal/iostat"
	"lbica/internal/sim"
	"lbica/internal/stats"
	"lbica/internal/trace"
	"lbica/internal/workload"
)

// Balancer is a load-balancing scheme plugged into the stack. The WB
// baseline is a nil Balancer.
type Balancer interface {
	// Name identifies the scheme in results.
	Name() string
	// Attach is called once before the run; the balancer typically sets
	// the initial cache policy and registers an OnSample hook.
	Attach(st *Stack)
	// Admit decides whether an application request goes through the cache
	// (true) or is bypassed straight to the disk tier (false). Bypassing
	// a read is only sound when no covered block is dirty; implementations
	// must check via Stack.Cache().DirtyIn.
	Admit(op block.Op, e block.Extent) bool
}

// Config assembles a stack.
type Config struct {
	Seed int64

	// Volume addresses this stack within a multi-volume array (0 for a
	// standalone stack). It only labels the stack and its Results — each
	// volume is a fully independent cache+queues+disk stack; the array
	// layer (internal/array) owns routing and result merging.
	Volume int

	Cache cache.Config
	SSD   device.SSDConfig
	HDD   device.HDDConfig

	// MonitorEvery is the iostat sampling interval (one x-axis unit of the
	// figures).
	MonitorEvery time.Duration

	// Background dirty flusher: every FlushEvery, if the dirty ratio is
	// above the cache's high watermark, flush up to FlushBatch blocks;
	// keep going each tick until below the low watermark. Zero disables.
	FlushEvery time.Duration
	FlushBatch int

	// PrewarmBlocks preloads this many of the workload's hottest blocks
	// (clean) before the run, honoring the paper's warm-cache assumption.
	PrewarmBlocks int

	// DetectOnPeak makes the monitor compare Eq. 1 on within-interval
	// peak depths instead of time averages (ablation knob).
	DetectOnPeak bool

	// HDDDiscipline selects the disk-queue dispatch order (default FIFO;
	// LookDispatch pairs with HDD.DistanceSeek). The SSD queue is always
	// FIFO: queue positions there feed Eq. 1 and the tail-bypass rules.
	HDDDiscipline ioqueue.Discipline

	// Trace, when non-nil, receives every block-layer event.
	Trace trace.Recorder
}

// DefaultConfig returns the calibrated experiment configuration used by the
// figure harness: 256 MiB 8-way cache, one-channel SATA-class SSD, a
// 24-spindle 15K-RPM disk subsystem with a controller write-back cache,
// 200 ms monitor intervals.
func DefaultConfig() Config {
	ssd := device.DefaultSSDConfig()
	ssd.Channels = 1
	hdd := device.HDDConfig{
		Name:              "disk-subsystem",
		RPM:               15000,
		SeekAvg:           2500 * time.Microsecond,
		PerSector:         1200 * time.Nanosecond,
		Spindles:          24,
		SeqThreshold:      64,
		WriteCacheLatency: 150 * time.Microsecond,
		WriteCacheDepth:   16384,
		DrainIOPS:         8000,
	}
	cc := cache.DefaultConfig()
	cc.DirtyHighWatermark = 0.20
	cc.DirtyLowWatermark = 0.15
	return Config{
		Seed:          1,
		Cache:         cc,
		SSD:           ssd,
		HDD:           hdd,
		MonitorEvery:  200 * time.Millisecond,
		FlushEvery:    10 * time.Millisecond,
		FlushBatch:    16,
		PrewarmBlocks: cc.Sets * cc.Ways,
	}
}

// PolicyChange is one balancer decision, for the Fig. 6 timeline.
type PolicyChange struct {
	Interval int
	At       time.Duration
	Policy   cache.Policy
	// Group is the balancer's workload classification label ("G1" … "G4",
	// "revert", or scheme-specific).
	Group string
}

// Results summarizes a finished run.
type Results struct {
	Workload string
	Scheme   string

	// Volume is the array address of the stack that produced these results
	// (Config.Volume; 0 for standalone runs). The array layer's merge
	// sorts per-volume results by this field, which is what makes the
	// merged output independent of shard completion order.
	Volume int

	Samples  []iostat.Sample
	Timeline []PolicyChange

	// CacheStatsAt holds a cumulative cache.Stats snapshot taken as each
	// monitor interval closed, parallel to Samples; per-interval deltas
	// (e.g. the series exporter's per-interval hit ratio) come from
	// adjacent snapshots. Taken before any balancer reacts to the same
	// interval close, so the snapshot reflects the interval exactly.
	CacheStatsAt []cache.Stats

	// End-to-end application latency across the whole run.
	AppLatency *stats.Histogram

	AppSubmitted uint64
	AppCompleted uint64

	CacheStats cache.Stats

	SSDPeakDepth, HDDPeakDepth int
	SSDUtilization             float64
	HDDUtilization             float64
	SSDMerges, HDDMerges       uint64
	BypassedToDisk             uint64
	CancelledShadows           uint64
	Elapsed                    time.Duration

	// Endurance accounting: sectors written to each tier. SSD lifetime is
	// proportional to SSDWrittenSectors; the paper's related work
	// motivates write-reduction, and LBICA's WO/RO assignments cut SSD
	// writes as a side effect (measured by BenchmarkEnduranceExtension).
	SSDWrittenSectors int64
	HDDWrittenSectors int64
}

// SSDWrittenMiB returns the SSD write volume in MiB.
func (r *Results) SSDWrittenMiB() float64 {
	return float64(r.SSDWrittenSectors) * block.SectorSize / (1 << 20)
}

// HDDWrittenMiB returns the disk-tier write volume in MiB.
func (r *Results) HDDWrittenMiB() float64 {
	return float64(r.HDDWrittenSectors) * block.SectorSize / (1 << 20)
}

// CacheLoadMean returns the mean of the per-interval cache-load series,
// the Fig. 4 headline aggregate.
func (r *Results) CacheLoadMean() float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.Samples {
		sum += float64(s.CacheLoad)
	}
	return sum / float64(len(r.Samples))
}

// DiskLoadMean returns the mean of the per-interval disk-load series.
func (r *Results) DiskLoadMean() float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.Samples {
		sum += float64(s.DiskLoad)
	}
	return sum / float64(len(r.Samples))
}

// Stack is the live storage stack.
type Stack struct {
	cfg Config
	eng *sim.Engine

	cch  *cache.Cache
	ssdQ *ioqueue.Queue
	hddQ *ioqueue.Queue
	ssd  *device.Server
	hdd  *device.Server
	hddM *device.HDD
	mon  *iostat.Monitor

	bal Balancer
	gen workload.Generator
	rec trace.Recorder

	ids          uint64
	appSubmitted uint64
	appCompleted uint64
	bypassed     uint64
	cancelled    uint64
	ssdWrSectors int64
	hddWrSectors int64
	appLat       *stats.Histogram
	timeline     []PolicyChange
	cacheStatsAt []cache.Stats

	ssdLatency time.Duration
	hddLatency time.Duration

	flushing  bool
	ticks     int
	maxTicks  int
	periodics []periodicTask

	// Recycling pools. Requests flow queue → device → completion and are
	// returned by the servers' OnRelease hook; the op structs carry the
	// per-request lifecycle state that used to live in closures, with
	// their callback method values bound once at allocation. At steady
	// state the whole request lifecycle allocates nothing.
	freeReqs     []*block.Request
	freeAppOps   []*appOp
	freeEvictOps []*evictOp

	// Arrival pump state: one closure per run, the next arrival parked in
	// pumpReq (only one arrival event is ever outstanding). pumpStopped
	// records that the pump found the generator exhausted, so a stepped run
	// whose generator is refilled between steps (the array controller's
	// per-interval feeds) can restart it via ResumeArrivals.
	pumpReq     workload.Request
	pumpFn      func()
	pumpStopped bool

	// Pending event handles for the self-rescheduling chains (arrival
	// pump, monitor tick, flusher). Each chain stores the handle of its
	// next scheduled link so Fork can locate and rebind it on the cloned
	// engine; a handle whose event already fired is simply stale and
	// ignored. The chain step bodies live in named methods, with the
	// method values bound once (tickFn/flushFn) so rescheduling does not
	// allocate.
	pumpEv  sim.Event
	tickEv  sim.Event
	flushEv sim.Event
	tickFn  func()
	flushFn func()

	// ctxDone, when non-nil, lets RunContext stop the run cooperatively:
	// once it is closed no new arrivals or periodic ticks are scheduled
	// and the event loop drains what is already in flight. The channel is
	// polled (not ctx.Err()) because the check sits on the per-event hot
	// path and a context shared across pool workers serializes Err()
	// calls on one mutex.
	ctxDone <-chan struct{}
}

type periodicTask struct {
	every time.Duration
	fn    func()
	runFn func()    // chain step closure, created once when armed
	ev    sim.Event // handle of the next scheduled link, for Fork rebinding
}

// appOp tracks one application request from admission to completion: the
// arrival stamp for latency accounting, the outstanding device legs
// (write-through fans out to two), and a pending promote. The op itself
// is the request's OnComplete completer for every leg (interface boxing
// of an existing pointer — no allocation).
type appOp struct {
	st         *Stack
	arrival    time.Duration
	legs       int
	promote    bool
	promoteExt block.Extent
}

// Complete implements block.Completer.
func (op *appOp) Complete(r *block.Request) {
	op.legs--
	if op.legs > 0 {
		return
	}
	st := op.st
	promote, ext := op.promote, op.promoteExt
	st.appCompleted++
	lat := st.eng.Now() - op.arrival
	st.appLat.Record(lat)
	st.mon.NoteAppDone(lat)
	st.releaseAppOp(op)
	if promote {
		p := st.newReq(block.Promote, ext)
		p.ParentID = r.ID
		st.pushSSD(p)
	}
}

// CloneFor implements block.ForkableCompleter. The memoizing cloner
// guarantees a write-through fan-out's two legs resolve to one cloned op,
// preserving the legs countdown.
func (op *appOp) CloneFor(cl block.Cloner) block.Completer {
	op2 := *op
	op2.st = cl.Env(op.st).(*Stack)
	return &op2
}

func (st *Stack) newAppOp(arrival time.Duration) *appOp {
	var op *appOp
	if n := len(st.freeAppOps); n > 0 {
		op = st.freeAppOps[n-1]
		st.freeAppOps = st.freeAppOps[:n-1]
	} else {
		op = &appOp{st: st}
	}
	op.arrival = arrival
	op.legs = 1
	op.promote = false
	op.promoteExt = block.Extent{}
	return op
}

func (st *Stack) releaseAppOp(op *appOp) {
	st.freeAppOps = append(st.freeAppOps, op)
}

// evictOp tracks one dirty-block eviction: the SSD read (Evict) whose
// completion issues the HDD writeback, and — for background flushes — the
// writeback completion that cleans the line. The op is the Evict leg's
// completer directly; the writeback leg installs the same allocation
// viewed through the wbCompleter type, which dispatches to the
// mark-clean path.
type evictOp struct {
	st        *Stack
	ext       block.Extent
	blockNum  int64
	epoch     uint64
	markClean bool // background flush: clean the line when the writeback lands
}

// Complete implements block.Completer for the Evict (SSD read) leg.
func (op *evictOp) Complete(r *block.Request) {
	st := op.st
	wb := st.newReq(block.Writeback, op.ext)
	wb.ParentID = r.ID
	if op.markClean {
		wb.OnComplete = (*wbCompleter)(op)
		st.pushHDD(wb)
		return // released when the writeback completes
	}
	st.releaseEvictOp(op)
	st.pushHDD(wb)
}

// CloneFor implements block.ForkableCompleter.
func (op *evictOp) CloneFor(cl block.Cloner) block.Completer {
	op2 := *op
	op2.st = cl.Env(op.st).(*Stack)
	return &op2
}

// wbCompleter is the writeback-leg view of an evictOp: the same
// allocation under a second type, so both legs stay pooled together while
// dispatching to different completion paths. Only one leg is ever in
// flight at a time (the writeback is issued by the evict leg's
// completion).
type wbCompleter evictOp

// Complete implements block.Completer for the Writeback (HDD write) leg.
func (op *wbCompleter) Complete(*block.Request) {
	e := (*evictOp)(op)
	st := e.st
	st.cch.MarkClean(e.blockNum, e.epoch)
	st.releaseEvictOp(e)
}

// CloneFor implements block.ForkableCompleter.
func (op *wbCompleter) CloneFor(cl block.Cloner) block.Completer {
	e2 := *(*evictOp)(op)
	e2.st = cl.Env(e2.st).(*Stack)
	return (*wbCompleter)(&e2)
}

func (st *Stack) newEvictOp(ext block.Extent) *evictOp {
	var op *evictOp
	if n := len(st.freeEvictOps); n > 0 {
		op = st.freeEvictOps[n-1]
		st.freeEvictOps = st.freeEvictOps[:n-1]
	} else {
		op = &evictOp{st: st}
	}
	op.ext = ext
	op.blockNum = 0
	op.epoch = 0
	op.markClean = false
	return op
}

func (st *Stack) releaseEvictOp(op *evictOp) {
	st.freeEvictOps = append(st.freeEvictOps, op)
}

// newReq builds a pooled request. Recycled requests return through the
// device servers' OnRelease hook (recycleReq) after their completion
// callbacks have run.
func (st *Stack) newReq(origin block.Origin, ext block.Extent) *block.Request {
	var r *block.Request
	if n := len(st.freeReqs); n > 0 {
		r = st.freeReqs[n-1]
		st.freeReqs = st.freeReqs[:n-1]
	} else {
		r = &block.Request{}
	}
	*r = block.Request{ID: st.nextID(), Origin: origin, Extent: ext, Recycle: true}
	return r
}

// recycleReq returns a pool-owned request to the free-list. Requests not
// created by newReq (tests pushing raw requests) are left alone.
func (st *Stack) recycleReq(r *block.Request) {
	if !r.Recycle {
		return
	}
	r.Recycle = false
	r.OnComplete = nil
	st.freeReqs = append(st.freeReqs, r)
}

// New assembles a stack for one workload × scheme run. bal may be nil (the
// WB baseline).
func New(cfg Config, gen workload.Generator, bal Balancer) *Stack {
	if cfg.MonitorEvery <= 0 {
		cfg.MonitorEvery = 200 * time.Millisecond
	}
	eng := sim.NewEngine()
	rec := cfg.Trace
	if rec == nil {
		rec = trace.Discard
	}

	ssdModel := device.NewSSD(cfg.SSD, sim.NewRNG(cfg.Seed, "ssd"))
	hddModel := device.NewHDD(cfg.HDD, sim.NewRNG(cfg.Seed, "hdd"))
	hddModel.SetClock(eng.Now)

	st := &Stack{
		cfg:    cfg,
		eng:    eng,
		cch:    cache.New(cfg.Cache),
		ssdQ:   ioqueue.New("ssd"),
		hddQ:   ioqueue.New("hdd", ioqueue.WithDiscipline(cfg.HDDDiscipline)),
		hddM:   hddModel,
		bal:    bal,
		gen:    gen,
		rec:    rec,
		appLat: stats.NewHistogram(),
	}

	// Eq. 1 calibration constants: the devices' average read/write service
	// latency, as the paper specifies.
	st.ssdLatency = (ssdModel.AvgLatency(block.Read) + ssdModel.AvgLatency(block.Write)) / 2
	st.hddLatency = (hddModel.AvgLatency(block.Read) + hddModel.AvgLatency(block.Write)) / 2

	st.mon = iostat.New(iostat.Config{
		Every:         cfg.MonitorEvery,
		SSDLatency:    st.ssdLatency,
		HDDLatency:    st.hddLatency,
		CompareOnPeak: cfg.DetectOnPeak,
	}, st.ssdQ, st.hddQ)

	st.ssd = device.NewServer(eng, ssdModel, st.ssdQ, func(r *block.Request) {
		st.mon.NoteCompletion(iostat.SSD, r)
		st.rec.Record(trace.Event{At: eng.Now(), Kind: trace.Completed, Dev: trace.SSD,
			ID: r.ID, Origin: r.Origin, LBA: r.Extent.LBA, Sector: r.Extent.Sectors})
	})
	st.hdd = device.NewServer(eng, hddModel, st.hddQ, func(r *block.Request) {
		st.mon.NoteCompletion(iostat.HDD, r)
		st.rec.Record(trace.Event{At: eng.Now(), Kind: trace.Completed, Dev: trace.HDD,
			ID: r.ID, Origin: r.Origin, LBA: r.Extent.LBA, Sector: r.Extent.Sectors})
	})
	st.ssd.OnDispatch(func(r *block.Request) {
		st.mon.NoteDepth(iostat.SSD, eng.Now())
		st.rec.Record(trace.Event{At: eng.Now(), Kind: trace.Dispatched, Dev: trace.SSD,
			ID: r.ID, Origin: r.Origin, LBA: r.Extent.LBA, Sector: r.Extent.Sectors})
	})
	st.hdd.OnDispatch(func(r *block.Request) {
		st.mon.NoteDepth(iostat.HDD, eng.Now())
		st.rec.Record(trace.Event{At: eng.Now(), Kind: trace.Dispatched, Dev: trace.HDD,
			ID: r.ID, Origin: r.Origin, LBA: r.Extent.LBA, Sector: r.Extent.Sectors})
	})
	st.ssd.OnRelease(st.recycleReq)
	st.hdd.OnRelease(st.recycleReq)
	st.ssdQ.OnRecycle(st.recycleReq)
	st.hddQ.OnRecycle(st.recycleReq)

	// Snapshot cumulative cache stats at every interval close, before any
	// balancer (attached below, so registered after) reacts to the same
	// close — per-interval deltas between snapshots are what the sweep's
	// series exporter turns into a hit-ratio timeline.
	st.mon.OnClose(func(iostat.Sample) {
		st.cacheStatsAt = append(st.cacheStatsAt, st.cch.Stats())
	})

	if hot, ok := gen.(interface{ HotBlocks(int) []int64 }); ok && cfg.PrewarmBlocks > 0 {
		st.cch.Prewarm(hot.HotBlocks(cfg.PrewarmBlocks))
	}
	if bal != nil {
		bal.Attach(st)
	}
	return st
}

// Accessors for balancers and tests.

// Engine returns the simulation executive.
func (st *Stack) Engine() *sim.Engine { return st.eng }

// Volume returns the stack's array address (0 for standalone stacks).
func (st *Stack) Volume() int { return st.cfg.Volume }

// Now returns the current virtual time.
func (st *Stack) Now() time.Duration { return st.eng.Now() }

// Cache returns the cache module.
func (st *Stack) Cache() *cache.Cache { return st.cch }

// SSDQueue returns the SSD request queue.
func (st *Stack) SSDQueue() *ioqueue.Queue { return st.ssdQ }

// HDDQueue returns the disk-subsystem request queue.
func (st *Stack) HDDQueue() *ioqueue.Queue { return st.hddQ }

// Monitor returns the iostat monitor.
func (st *Stack) Monitor() *iostat.Monitor { return st.mon }

// Generator returns the stack's workload generator — after a Fork, the
// handle an array-level controller needs to re-own the cloned stack's
// per-volume feed.
func (st *Stack) Generator() workload.Generator { return st.gen }

// SSDLatency returns the Eq. 1 SSD service-latency constant.
func (st *Stack) SSDLatency() time.Duration { return st.ssdLatency }

// HDDLatency returns the Eq. 1 disk service-latency constant.
func (st *Stack) HDDLatency() time.Duration { return st.hddLatency }

// StallSSD charges queue-scan overhead against the SSD's service capacity
// (SIB's per-request selection cost).
func (st *Stack) StallSSD(d time.Duration) { st.ssd.Stall(d) }

// Bypassed returns the cumulative count of requests routed to the disk
// tier by balancer action (admission bypasses plus redirected queue
// tails).
func (st *Stack) Bypassed() uint64 { return st.bypassed }

// Periodic registers fn to run every d of virtual time for the duration of
// the run; the chain ends when the final monitor interval closes. Balancers
// call this from Attach for sub-interval work (e.g. SIB's queue scans).
func (st *Stack) Periodic(d time.Duration, fn func()) {
	if d > 0 {
		st.periodics = append(st.periodics, periodicTask{every: d, fn: fn})
	}
}

// NotePolicy records a balancer decision in the Fig. 6 timeline and trace.
// A decision made while interval i's sample is being closed is annotated
// at interval i, matching the paper's "at interval 23, LBICA sets RO"
// convention.
func (st *Stack) NotePolicy(p cache.Policy, group string) {
	iv := len(st.mon.Samples()) - 1
	if iv < 0 {
		iv = 0
	}
	st.timeline = append(st.timeline, PolicyChange{
		Interval: iv,
		At:       st.eng.Now(),
		Policy:   p,
		Group:    group,
	})
	st.rec.Record(trace.Event{At: st.eng.Now(), Kind: trace.PolicySet, Aux: int64(p)})
}

func (st *Stack) nextID() uint64 {
	st.ids++
	return st.ids
}

// pushSSD enqueues a device request on the SSD tier and kicks the server.
func (st *Stack) pushSSD(r *block.Request) {
	if r.Op() == block.Write {
		st.ssdWrSectors += r.Extent.Sectors
	}
	merged := st.ssdQ.Push(r, st.eng.Now())
	kind := trace.Queued
	if merged {
		kind = trace.Merged
	}
	st.rec.Record(trace.Event{At: st.eng.Now(), Kind: kind, Dev: trace.SSD,
		ID: r.ID, Origin: r.Origin, LBA: r.Extent.LBA, Sector: r.Extent.Sectors})
	if !merged {
		st.mon.NoteDepth(iostat.SSD, st.eng.Now())
	}
	st.ssd.Kick()
}

// pushHDD enqueues a device request on the disk tier and kicks the server.
func (st *Stack) pushHDD(r *block.Request) {
	if r.Op() == block.Write {
		st.hddWrSectors += r.Extent.Sectors
	}
	merged := st.hddQ.Push(r, st.eng.Now())
	kind := trace.Queued
	if merged {
		kind = trace.Merged
	}
	st.rec.Record(trace.Event{At: st.eng.Now(), Kind: kind, Dev: trace.HDD,
		ID: r.ID, Origin: r.Origin, LBA: r.Extent.LBA, Sector: r.Extent.Sectors})
	if !merged {
		st.mon.NoteDepth(iostat.HDD, st.eng.Now())
	}
	st.hdd.Kick()
}

// issueVictims turns cache eviction victims into device traffic: a dirty
// victim costs an SSD read (E) whose completion issues the HDD writeback.
func (st *Stack) issueVictims(victims []cache.Victim) {
	for _, v := range victims {
		if !v.Dirty {
			continue
		}
		// The op carries the victim's own extent: queue merging may widen
		// the head request, and the absorbed requests writeback their own
		// ranges themselves.
		op := st.newEvictOp(st.cch.BlockExtent(v.Block))
		ev := st.newReq(block.Evict, op.ext)
		ev.OnComplete = op
		st.pushSSD(ev)
	}
}

// submit runs one application request through admission, the cache
// decision, and leg issue.
func (st *Stack) submit(wr workload.Request) {
	st.appSubmitted++
	arrival := st.eng.Now()
	op := st.newAppOp(arrival)

	if st.bal != nil && !st.bal.Admit(wr.Op, wr.Extent) {
		st.bypassAppRequest(wr, op)
		return
	}

	d := st.cch.Access(wr.Op, wr.Extent, arrival)
	st.issueVictims(d.Victims)

	switch {
	case d.CacheRead:
		r := st.newReq(block.AppRead, wr.Extent)
		r.OnComplete = op
		st.pushSSD(r)

	case d.DiskRead:
		r := st.newReq(block.ReadMiss, wr.Extent)
		op.promote = d.Promote
		op.promoteExt = wr.Extent // merging may widen r.Extent; promote only our range
		r.OnComplete = op
		st.pushHDD(r)

	case d.CacheWrite && d.DiskWrite:
		// Write-through fan-out: the request completes when both legs do.
		op.legs = 2
		cw := st.newReq(block.AppWrite, wr.Extent)
		cw.Shadowed = true
		cw.OnComplete = op
		dw := st.newReq(block.BypassWrite, wr.Extent)
		dw.ParentID = cw.ID
		dw.OnComplete = op
		st.pushSSD(cw)
		st.pushHDD(dw)

	case d.CacheWrite:
		r := st.newReq(block.AppWrite, wr.Extent)
		r.OnComplete = op
		st.pushSSD(r)

	case d.DiskWrite:
		r := st.newReq(block.BypassWrite, wr.Extent)
		r.OnComplete = op
		st.pushHDD(r)

	default:
		// A decision with no transfer cannot happen; complete immediately
		// so accounting never wedges if a future policy introduces one.
		op.Complete(nil)
	}
}

// bypassAppRequest routes a request around the cache entirely (balancer
// admission said no).
func (st *Stack) bypassAppRequest(wr workload.Request, op *appOp) {
	st.bypassed++
	st.cch.NoteBypass(wr.Op)
	origin := block.BypassRead
	if wr.Op == block.Write {
		origin = block.BypassWrite
		// The disk copy becomes the newest data; drop any cached copy.
		st.cch.Invalidate(wr.Extent)
	}
	r := st.newReq(origin, wr.Extent)
	r.OnComplete = op
	st.rec.Record(trace.Event{At: st.eng.Now(), Kind: trace.Bypassed, Dev: trace.HDD,
		ID: r.ID, Origin: r.Origin, LBA: r.Extent.LBA, Sector: r.Extent.Sectors})
	st.pushHDD(r)
}

// RedirectTail extracts every bypassable request at SSD-queue position ≥
// keep and re-routes it to the disk tier:
//
//   - application writes with a through-write shadow leg are cancelled
//     outright (the disk leg persists the data);
//   - other application writes are invalidated in the cache and re-queued
//     on the disk;
//   - promotes are dropped (the miss was already served; the fill is
//     cancelled and the allocated line invalidated);
//   - application reads move only if no covered block is dirty;
//   - evict reads never move (dirty data exists only on the SSD).
//
// It returns the number of requests removed from the SSD queue.
func (st *Stack) RedirectTail(keep int) int {
	if keep < 0 {
		keep = 0
	}
	moved := st.ssdQ.Extract(func(pos int, r *block.Request) bool {
		if pos < keep {
			return false
		}
		switch r.Origin {
		case block.AppWrite, block.Promote:
			return true
		case block.AppRead:
			return !st.cch.DirtyIn(r.Extent)
		default:
			return false
		}
	})
	if len(moved) == 0 {
		return 0
	}
	st.mon.NoteDepth(iostat.SSD, st.eng.Now())
	now := st.eng.Now()
	for _, r := range moved {
		st.rec.Record(trace.Event{At: now, Kind: trace.Bypassed, Dev: trace.SSD,
			ID: r.ID, Origin: r.Origin, LBA: r.Extent.LBA, Sector: r.Extent.Sectors})
		switch r.Origin {
		case block.AppWrite:
			st.cch.NoteBypass(block.Write)
			if r.Shadowed {
				// The disk leg already carries the data; complete this leg
				// as a no-op.
				st.cancelled++
				r.Dispatch, r.Complete = now, now
				if r.OnComplete != nil {
					r.OnComplete.Complete(r)
				}
				st.recycleReq(r)
				continue
			}
			st.cch.Invalidate(r.Extent)
			st.bypassed++
			r.Origin = block.BypassWrite
			st.pushHDD(r)
		case block.Promote:
			// Cancel the fill; nothing to transfer anywhere.
			st.cch.Invalidate(r.Extent)
			st.cancelled++
			st.recycleReq(r)
		case block.AppRead:
			st.cch.NoteBypass(block.Read)
			st.bypassed++
			r.Origin = block.BypassRead
			st.pushHDD(r)
		}
	}
	st.ssd.Kick()
	return len(moved)
}

// flushTick runs the background dirty flusher state machine.
func (st *Stack) flushTick() {
	if st.flushing {
		if st.cch.FlushSatisfied() {
			st.flushing = false
		}
	} else if st.cch.NeedsFlush() {
		st.flushing = true
	}
	if !st.flushing {
		return
	}
	for _, db := range st.cch.CollectDirty(st.cfg.FlushBatch) {
		op := st.newEvictOp(st.cch.BlockExtent(db.Block))
		op.blockNum, op.epoch = db.Block, db.Epoch
		op.markClean = true
		ev := st.newReq(block.Evict, op.ext)
		ev.OnComplete = op
		st.pushSSD(ev)
	}
}

// Run executes the workload for intervals monitor intervals (at least 1),
// drains in-flight requests, and returns the results. Requests the
// generator emits beyond the last interval still execute but land in no
// sample.
func (st *Stack) Run(intervals int) *Results {
	return st.RunContext(context.Background(), intervals)
}

// pump parks the generator's next request in pumpReq and schedules the
// shared arrival closure for it.
func (st *Stack) pump() {
	if st.halted() {
		return
	}
	wr, ok := st.gen.Next()
	if !ok {
		st.pumpStopped = true
		return
	}
	st.pumpStopped = false
	at := wr.At
	if at < st.eng.Now() {
		at = st.eng.Now()
	}
	st.pumpReq = wr
	st.pumpEv = st.eng.At(at, st.pumpFn)
}

// halted reports whether the run's context has been cancelled. The event
// chains consult it before scheduling their next link, so cancellation
// stops the simulation at the next event boundary.
func (st *Stack) halted() bool {
	select {
	case <-st.ctxDone:
		return true
	default:
		return false
	}
}

// RunContext is Run with cooperative cancellation. When ctx is cancelled
// mid-run, the stack stops admitting new arrivals and scheduling monitor,
// flusher and balancer ticks, drains the requests already in flight, and
// returns the partial Results accumulated so far (fewer Samples than
// requested). The virtual clock is unaffected by wall-clock timing of the
// cancellation beyond which event boundary it lands on.
func (st *Stack) RunContext(ctx context.Context, intervals int) *Results {
	st.Start(ctx, intervals)
	st.Drain()
	return st.Collect()
}

// Start arms the run — the arrival pump and the monitor, flusher and
// balancer tick chains — without executing any events. It is the first
// half of RunContext, split out so a stepped run (StepTo/ResumeArrivals/
// Drain/Collect) can interleave outside work at interval boundaries: the
// array controller steps every volume to the same virtual deadline, reads
// their census at the barrier, and resumes them. Start must be called
// exactly once, before the first StepTo or Drain.
func (st *Stack) Start(ctx context.Context, intervals int) {
	if intervals < 1 {
		intervals = 1
	}
	st.maxTicks = intervals
	st.ctxDone = ctx.Done() // nil for Background: halted() then never fires

	// Arrival pump: schedule one arrival ahead. A single reused closure
	// fires every arrival; the next request parks in pumpReq (only one
	// arrival event is ever outstanding, so the slot cannot be clobbered).
	st.bindChainFns()
	st.pump()

	// Monitor tick chain.
	st.tickEv = st.eng.After(st.cfg.MonitorEvery, st.tickFn)

	// Flusher chain.
	if st.cfg.FlushEvery > 0 && st.cfg.FlushBatch > 0 {
		st.flushEv = st.eng.After(st.cfg.FlushEvery, st.flushFn)
	}

	// Balancer periodic chains.
	for i := range st.periodics {
		p := &st.periodics[i]
		st.bindPeriodic(i)
		p.ev = st.eng.After(p.every, p.runFn)
	}
}

// bindChainFns creates the pump/tick/flush chain closures once per stack.
// Fork calls it on the clone before rebinding the pending chain events.
func (st *Stack) bindChainFns() {
	if st.pumpFn == nil {
		st.pumpFn = func() {
			wr := st.pumpReq
			st.submit(wr)
			st.pump()
		}
	}
	if st.tickFn == nil {
		st.tickFn = st.tickStep
	}
	if st.flushFn == nil {
		st.flushFn = st.flushStep
	}
}

// bindPeriodic creates the chain closure for periodic task i. The index is
// captured (not a task pointer) because the periodics slice may grow.
func (st *Stack) bindPeriodic(i int) {
	if st.periodics[i].runFn == nil {
		st.periodics[i].runFn = func() { st.periodicStep(i) }
	}
}

// tickStep is one link of the monitor tick chain: close the interval and
// schedule the next link unless the run is over.
func (st *Stack) tickStep() {
	if st.halted() {
		return
	}
	st.mon.Tick(st.eng.Now())
	st.ticks++
	if st.maxTicks > 0 && st.ticks >= st.maxTicks {
		return
	}
	st.tickEv = st.eng.After(st.cfg.MonitorEvery, st.tickFn)
}

// flushStep is one link of the background flusher chain.
func (st *Stack) flushStep() {
	if st.halted() {
		return
	}
	st.flushTick()
	if st.maxTicks > 0 && st.ticks >= st.maxTicks {
		return
	}
	st.flushEv = st.eng.After(st.cfg.FlushEvery, st.flushFn)
}

// periodicStep is one link of balancer periodic chain i.
func (st *Stack) periodicStep(i int) {
	if st.halted() {
		return
	}
	p := &st.periodics[i]
	p.fn()
	if st.maxTicks > 0 && st.ticks >= st.maxTicks {
		return
	}
	p.ev = st.eng.After(p.every, p.runFn)
}

// StepTo executes events up to and including virtual time t, then parks
// the clock exactly at t (events scheduled for later stay pending). The
// monitor tick at t fires before StepTo returns — stepping to a multiple
// of MonitorEvery leaves the interval's Sample closed and readable.
func (st *Stack) StepTo(t time.Duration) { st.eng.Run(t) }

// ResumeArrivals restarts the arrival pump after the generator reported
// exhaustion. A stepped run's generator may be a refillable feed (the
// array controller queues each interval's routed slice before stepping);
// once refilled, the feed has new requests but the pump — which stopped
// silently when Next returned false — must be rearmed. No-op while the
// pump is live.
func (st *Stack) ResumeArrivals() {
	if st.pumpStopped {
		st.pump()
	}
}

// Drain runs the event loop until no events remain — the in-flight
// requests complete and, unless the generator is exhausted or the run was
// cancelled, remaining arrivals execute.
func (st *Stack) Drain() { st.eng.RunUntilIdle() }

// MigrateOut extracts blockNum's clean cache line for migration to
// another volume, returning false (and doing nothing) when the block is
// not resident clean. Dirty or mid-flush lines never migrate: the array's
// volumes are independent failure domains and migration copies no data,
// so only lines whose backing store already holds the newest bytes leave.
func (st *Stack) MigrateOut(blockNum int64) bool {
	return st.cch.ExtractClean(blockNum)
}

// MigrateIn inserts blockNum as a clean resident line (a no-op when
// already resident). Victims evicted to make room become ordinary device
// traffic — a dirty victim costs an SSD read plus an HDD writeback, so a
// migration into a full dirty set is not free.
func (st *Stack) MigrateIn(blockNum int64) {
	st.issueVictims(st.cch.InsertClean(blockNum))
}

// Collect assembles the run's Results. Call once, after Drain.
func (st *Stack) Collect() *Results {
	return &Results{
		Workload:          st.gen.Name(),
		Scheme:            st.schemeName(),
		Volume:            st.cfg.Volume,
		Samples:           st.mon.Samples(),
		Timeline:          st.timeline,
		CacheStatsAt:      st.cacheStatsAt,
		AppLatency:        st.appLat,
		AppSubmitted:      st.appSubmitted,
		AppCompleted:      st.appCompleted,
		CacheStats:        st.cch.Stats(),
		SSDPeakDepth:      st.ssdQ.DepthPeak(),
		HDDPeakDepth:      st.hddQ.DepthPeak(),
		SSDUtilization:    st.ssd.Utilization(st.eng.Now()),
		HDDUtilization:    st.hdd.Utilization(st.eng.Now()),
		SSDMerges:         st.ssdQ.Merges(),
		HDDMerges:         st.hddQ.Merges(),
		BypassedToDisk:    st.bypassed,
		CancelledShadows:  st.cancelled,
		Elapsed:           st.eng.Now(),
		SSDWrittenSectors: st.ssdWrSectors,
		HDDWrittenSectors: st.hddWrSectors,
	}
}

func (st *Stack) schemeName() string {
	if st.bal == nil {
		return "WB"
	}
	return st.bal.Name()
}

func (st *Stack) String() string {
	return fmt.Sprintf("stack(%s/%s ssdQ=%d hddQ=%d)", st.gen.Name(), st.schemeName(), st.ssdQ.Depth(), st.hddQ.Depth())
}
