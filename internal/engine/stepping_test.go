package engine

import (
	"context"
	"reflect"
	"testing"
	"time"

	"lbica/internal/block"
	"lbica/internal/sim"
	"lbica/internal/workload"
)

// The stepping API (Start / StepTo / Drain / Collect) is the run loop the
// array controller drives one interval at a time; splitting a run at
// interval boundaries must not change a single byte of the results, or
// the controlled path's "byte-identical to serial" guarantee is void
// before the controller even acts.
func TestSteppedRunMatchesRunContext(t *testing.T) {
	cfg := testConfig()
	mk := func() *Stack {
		gen := workload.TPCC(workload.Scale{Intervals: 6, Interval: cfg.MonitorEvery},
			sim.NewRNG(3, "workload:tpcc"))
		return New(cfg, gen, nil)
	}
	const intervals = 6

	want := mk().RunContext(context.Background(), intervals)

	st := mk()
	st.Start(context.Background(), intervals)
	for iv := 1; iv <= intervals; iv++ {
		st.ResumeArrivals() // no-op while the pump is alive
		st.StepTo(time.Duration(iv) * cfg.MonitorEvery)
	}
	st.Drain()
	got := st.Collect()

	if !reflect.DeepEqual(got, want) {
		t.Fatal("stepped run differs from RunContext")
	}
	if got.AppCompleted == 0 || len(got.Samples) != intervals {
		t.Fatalf("stepped run incomplete: %d requests, %d samples", got.AppCompleted, len(got.Samples))
	}
}

// A stack fed by an exhaustible generator parks its arrival pump when the
// feed runs dry; ResumeArrivals restarts it after a refill, and requests
// pushed between steps execute. This is the controller's feed contract.
func TestResumeArrivalsAfterFeedExhaustion(t *testing.T) {
	cfg := testConfig()
	feed := &sliceGen{}
	for i := 0; i < 50; i++ {
		feed.reqs = append(feed.reqs, workload.Request{
			At:     time.Duration(i) * time.Millisecond,
			Extent: block.Extent{LBA: int64(i) * workload.BlockSectors, Sectors: workload.BlockSectors},
		})
	}
	st := New(cfg, feed, nil)
	st.Start(context.Background(), 2)
	st.StepTo(cfg.MonitorEvery)
	if got := st.Collect().AppSubmitted; got != 50 {
		t.Fatalf("first round submitted %d, want 50", got)
	}

	// Refill past the deadline and resume: the parked pump must restart.
	for i := 50; i < 80; i++ {
		feed.reqs = append(feed.reqs, workload.Request{
			At:     cfg.MonitorEvery + time.Duration(i)*time.Millisecond,
			Extent: block.Extent{LBA: int64(i) * workload.BlockSectors, Sectors: workload.BlockSectors},
		})
	}
	st.ResumeArrivals()
	st.StepTo(2 * cfg.MonitorEvery)
	st.Drain()
	res := st.Collect()
	if res.AppSubmitted != 80 {
		t.Fatalf("after refill submitted %d, want 80", res.AppSubmitted)
	}
	if res.AppCompleted != 80 {
		t.Fatalf("completed %d of 80", res.AppCompleted)
	}
}

// sliceGen is a refillable test generator (the controller's feed shape).
type sliceGen struct {
	reqs []workload.Request
	pos  int
}

func (g *sliceGen) Name() string { return "slice" }

func (g *sliceGen) Next() (workload.Request, bool) {
	if g.pos >= len(g.reqs) {
		return workload.Request{}, false
	}
	r := g.reqs[g.pos]
	g.pos++
	return r, true
}
