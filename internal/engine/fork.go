// Stack forking: deep-copy a mid-run stack — engine, cache, queues,
// device servers, monitor, balancer, generator — so several scheme
// variants can share one warm-up prefix.
//
// Determinism contract: a forked stack, run to completion, produces
// byte-identical Results to a stack built fresh and run uninterrupted
// with the same configuration. The guarantee is structural, not
// statistical: the cloned event heap is a verbatim copy of the
// original's (same slots, sequence numbers and generation counters, so
// the firing order is identical by construction), every RNG clone
// replays its source to the exact draw position, and every in-flight
// request graph is deep-copied with its completion callbacks re-bound to
// the clone. Anything that breaks this equivalence — a non-cloneable
// generator or device model, an in-flight completer without fork
// support, a pending event the clone cannot account for — fails the
// fork with an error rather than producing a silently divergent copy.
package engine

import (
	"context"
	"fmt"

	"lbica/internal/block"
	"lbica/internal/cache"
	"lbica/internal/device"
	"lbica/internal/iostat"
	"lbica/internal/sim"
	"lbica/internal/trace"
	"lbica/internal/workload"
)

// ForkableBalancer is a Balancer whose mid-run state can be carried into
// a forked stack. ForkFor returns a balancer continuing this one's
// decision state on the clone, registering its monitor hooks and
// periodic tasks on st directly — it must NOT re-run Attach side effects
// (initial SetPolicy, NotePolicy) that already happened on the original.
type ForkableBalancer interface {
	Balancer
	ForkFor(st *Stack) Balancer
}

// DropBalancer is the balFor argument that gives the fork no balancer —
// the WB baseline. Only sound when the original's balancer has not yet
// influenced the run (no policy changes, no bypasses); callers guard
// that, the fork itself cannot tell.
func DropBalancer(*Stack) Balancer { return nil }

// forkPanic carries a fork failure out of the Cloner callbacks (which
// have no error returns) up to Fork's recover.
type forkPanic struct{ err error }

// forkCtx implements block.Cloner: the memoizing deep-copy context for
// one fork. Requests and completers referenced from several places (a
// write-through fan-out's two legs, a merge chain's absorbed request)
// resolve to a single clone.
type forkCtx struct {
	reqs  map[*block.Request]*block.Request
	comps map[block.Completer]block.Completer
	env   map[any]any
}

func newForkCtx() *forkCtx {
	return &forkCtx{
		reqs:  make(map[*block.Request]*block.Request),
		comps: make(map[block.Completer]block.Completer),
		env:   make(map[any]any),
	}
}

// CloneRequest implements block.Cloner.
func (f *forkCtx) CloneRequest(r *block.Request) *block.Request {
	if r == nil {
		return nil
	}
	if r2, ok := f.reqs[r]; ok {
		return r2
	}
	r2 := new(block.Request)
	*r2 = *r
	// Register before recursing into the completer so any back-reference
	// to this request resolves to the clone instead of looping.
	f.reqs[r] = r2
	r2.OnComplete = f.CloneCompleter(r.OnComplete)
	return r2
}

// CloneCompleter implements block.Cloner.
func (f *forkCtx) CloneCompleter(c block.Completer) block.Completer {
	if c == nil {
		return nil
	}
	if c2, ok := f.comps[c]; ok {
		return c2
	}
	fc, ok := c.(block.ForkableCompleter)
	if !ok {
		panic(forkPanic{fmt.Errorf("engine: in-flight completer %T is not forkable", c)})
	}
	c2 := fc.CloneFor(f)
	f.comps[c] = c2
	return c2
}

// Env implements block.Cloner.
func (f *forkCtx) Env(old any) any {
	v, ok := f.env[old]
	if !ok {
		panic(forkPanic{fmt.Errorf("engine: fork references unregistered component %T", old)})
	}
	return v
}

// Register implements block.Cloner.
func (f *forkCtx) Register(old, clone any) { f.env[old] = clone }

// Fork deep-copies the running stack. The clone continues from the
// original's exact state — virtual clock, pending events, queued and
// in-flight requests, cache contents, RNG positions, accumulated
// statistics — and running it to completion yields byte-identical
// Results to an uninterrupted from-scratch run (see the package comment
// above for what enforces this).
//
// balFor selects the clone's balancer, called with the clone after its
// monitor is wired so hook registration order matches New's: nil keeps
// the original's scheme (via ForkableBalancer; an error if the balancer
// does not support forking), DropBalancer installs none (the WB
// baseline), and any other function receives the clone and returns the
// balancer to install. The original stack is not modified and remains
// runnable; Fork may be called repeatedly at different points.
//
// Forking fails (with the original untouched) when the generator or a
// device model is not cloneable, a non-forkable completer is in flight,
// or the run is traced — a trace recorder is an external sink the clone
// cannot share without interleaving two runs' events.
func (st *Stack) Fork(ctx context.Context, balFor func(*Stack) Balancer) (fst *Stack, err error) {
	if st.rec != trace.Discard {
		return nil, fmt.Errorf("engine: cannot fork a traced stack")
	}
	cg, ok := st.gen.(workload.CloneableGenerator)
	if !ok {
		return nil, fmt.Errorf("engine: generator %q is not cloneable", st.gen.Name())
	}
	gen2 := cg.CloneGenerator()
	if gen2 == nil {
		return nil, fmt.Errorf("engine: generator %q failed to clone", st.gen.Name())
	}
	if balFor == nil {
		if st.bal == nil {
			balFor = DropBalancer
		} else {
			fb, ok := st.bal.(ForkableBalancer)
			if !ok {
				return nil, fmt.Errorf("engine: balancer %q is not forkable", st.bal.Name())
			}
			balFor = func(c *Stack) Balancer { return fb.ForkFor(c) }
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}

	defer func() {
		if r := recover(); r != nil {
			fp, ok := r.(forkPanic)
			if !ok {
				panic(r)
			}
			fst, err = nil, fp.err
		}
	}()

	eng2 := st.eng.CloneCore()
	c := &Stack{
		cfg:          st.cfg,
		eng:          eng2,
		cch:          st.cch.Clone(),
		gen:          gen2,
		rec:          trace.Discard,
		ids:          st.ids,
		appSubmitted: st.appSubmitted,
		appCompleted: st.appCompleted,
		bypassed:     st.bypassed,
		cancelled:    st.cancelled,
		ssdWrSectors: st.ssdWrSectors,
		hddWrSectors: st.hddWrSectors,
		appLat:       st.appLat.Clone(),
		timeline:     append([]PolicyChange(nil), st.timeline...),
		cacheStatsAt: append([]cache.Stats(nil), st.cacheStatsAt...),
		ssdLatency:   st.ssdLatency,
		hddLatency:   st.hddLatency,
		flushing:     st.flushing,
		ticks:        st.ticks,
		maxTicks:     st.maxTicks,
		pumpReq:      st.pumpReq,
		pumpStopped:  st.pumpStopped,
		ctxDone:      ctx.Done(),
	}

	fc := newForkCtx()
	fc.Register(st, c)

	// Queues first: they register themselves in the fork env before
	// walking pending requests, whose merge-chain completers resolve
	// their queue through it.
	c.ssdQ = st.ssdQ.Clone(fc)
	c.hddQ = st.hddQ.Clone(fc)
	c.mon = st.mon.Clone(c.ssdQ, c.hddQ)

	// Servers, with the same hook bodies New installs — over the clone.
	c.ssd, err = st.ssd.Clone(eng2, c.ssdQ, fc, func(r *block.Request) {
		c.mon.NoteCompletion(iostat.SSD, r)
		c.rec.Record(trace.Event{At: eng2.Now(), Kind: trace.Completed, Dev: trace.SSD,
			ID: r.ID, Origin: r.Origin, LBA: r.Extent.LBA, Sector: r.Extent.Sectors})
	})
	if err != nil {
		return nil, err
	}
	c.hdd, err = st.hdd.Clone(eng2, c.hddQ, fc, func(r *block.Request) {
		c.mon.NoteCompletion(iostat.HDD, r)
		c.rec.Record(trace.Event{At: eng2.Now(), Kind: trace.Completed, Dev: trace.HDD,
			ID: r.ID, Origin: r.Origin, LBA: r.Extent.LBA, Sector: r.Extent.Sectors})
	})
	if err != nil {
		return nil, err
	}
	c.hddM = c.hdd.Model().(*device.HDD)
	c.hddM.SetClock(eng2.Now)
	c.ssd.OnDispatch(func(r *block.Request) {
		c.mon.NoteDepth(iostat.SSD, eng2.Now())
		c.rec.Record(trace.Event{At: eng2.Now(), Kind: trace.Dispatched, Dev: trace.SSD,
			ID: r.ID, Origin: r.Origin, LBA: r.Extent.LBA, Sector: r.Extent.Sectors})
	})
	c.hdd.OnDispatch(func(r *block.Request) {
		c.mon.NoteDepth(iostat.HDD, eng2.Now())
		c.rec.Record(trace.Event{At: eng2.Now(), Kind: trace.Dispatched, Dev: trace.HDD,
			ID: r.ID, Origin: r.Origin, LBA: r.Extent.LBA, Sector: r.Extent.Sectors})
	})
	c.ssd.OnRelease(c.recycleReq)
	c.hdd.OnRelease(c.recycleReq)
	c.ssdQ.OnRecycle(c.recycleReq)
	c.hddQ.OnRecycle(c.recycleReq)

	// Monitor close hooks, in New's registration order: the stack's
	// cache-stats snapshot first, the balancer's (below) second.
	c.mon.OnClose(func(iostat.Sample) {
		c.cacheStatsAt = append(c.cacheStatsAt, c.cch.Stats())
	})

	// Rebind the self-rescheduling chains' pending links. A handle that
	// is no longer pending belongs to a chain that legitimately ended
	// (or was never armed) and needs nothing.
	c.bindChainFns()
	rebind := func(ev sim.Event, fn func(), what string) (sim.Event, error) {
		ev2, ok := eng2.Rebind(ev, fn)
		if !ok {
			return sim.Event{}, fmt.Errorf("engine: fork: %s event failed to rebind", what)
		}
		return ev2, nil
	}
	if st.pumpEv.Pending() {
		if c.pumpEv, err = rebind(st.pumpEv, c.pumpFn, "arrival pump"); err != nil {
			return nil, err
		}
	}
	if st.tickEv.Pending() {
		if c.tickEv, err = rebind(st.tickEv, c.tickFn, "monitor tick"); err != nil {
			return nil, err
		}
	}
	if st.flushEv.Pending() {
		if c.flushEv, err = rebind(st.flushEv, c.flushFn, "flusher"); err != nil {
			return nil, err
		}
	}

	// Balancer last, as in New. ForkFor registers the clone balancer's
	// monitor hooks and periodic tasks on c; then each original periodic
	// chain's pending link is rebound to the clone's same-index task.
	c.bal = balFor(c)
	for i := range st.periodics {
		if !st.periodics[i].ev.Pending() {
			continue
		}
		if i >= len(c.periodics) {
			return nil, fmt.Errorf("engine: fork: original periodic task %d has a pending event but the clone's balancer registered only %d tasks", i, len(c.periodics))
		}
		c.bindPeriodic(i)
		if c.periodics[i].ev, err = rebind(st.periodics[i].ev, c.periodics[i].runFn, "balancer periodic"); err != nil {
			return nil, err
		}
	}

	// Every pending event in the clone must have been claimed by exactly
	// one owner above; an unbound remainder means a pending callback the
	// fork does not know about, which would silently vanish from the
	// clone's future.
	if n := eng2.UnboundEvents(); n > 0 {
		return nil, fmt.Errorf("engine: fork: %d pending events were not rebound", n)
	}
	return c, nil
}

// BalancerActed reports whether the attached balancer has observably
// influenced the run so far: any policy-timeline entry, balancer-routed
// bypass, shadow cancellation, cache policy switch, or recorded bypass
// counter. While it returns false, the run's state is bit-identical to
// what a balancer-less (WB) run would have produced, so a fork taken
// with DropBalancer is a valid shared-warmup WB baseline; once it
// returns true the schemes have diverged and a WB variant must run from
// scratch. Always false when no balancer is attached.
func (st *Stack) BalancerActed() bool {
	if st.bal == nil {
		return false
	}
	if len(st.timeline) > 0 || st.bypassed > 0 || st.cancelled > 0 {
		return true
	}
	cs := st.cch.Stats()
	return cs.PolicySwitches > 0 || cs.BypassedReads > 0 || cs.BypassedWr > 0
}

// Snapshot captures the stack's complete state as an inert deep copy
// that later forks branch from, leaving the original free to continue.
// Each Fork from the snapshot is independent; the snapshot itself is
// never run. The snapshot keeps the original's balancer state (cloned
// via ForkableBalancer), so forks that keep the scheme need no special
// handling and forks that drop it pass DropBalancer as usual.
type Snapshot struct {
	st *Stack
}

// Snapshot clones the current state for later forking. It is Fork with
// the same balancer, held instead of run.
func (st *Stack) Snapshot(ctx context.Context) (*Snapshot, error) {
	c, err := st.Fork(ctx, nil)
	if err != nil {
		return nil, err
	}
	return &Snapshot{st: c}, nil
}

// Fork branches a runnable stack off the snapshot; see Stack.Fork for
// the balFor contract.
func (s *Snapshot) Fork(ctx context.Context, balFor func(*Stack) Balancer) (*Stack, error) {
	return s.st.Fork(ctx, balFor)
}
