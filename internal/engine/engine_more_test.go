package engine

import (
	"bytes"
	"testing"
	"time"

	"lbica/internal/block"
	"lbica/internal/cache"
	"lbica/internal/sim"
	"lbica/internal/trace"
	"lbica/internal/workload"
)

// TestTraceCompleteness checks the per-request lifecycle in the trace:
// every non-merged queue insertion is eventually dispatched and completed,
// exactly once each.
func TestTraceCompleteness(t *testing.T) {
	cfg := testConfig()
	var buf trace.Buffer
	cfg.Trace = &buf
	gen := workload.MixedRW(200*time.Millisecond, 3000, 4096, sim.NewRNG(21, "wl"))
	New(cfg, gen, nil).Run(4)

	type key struct {
		dev trace.Device
		id  uint64
	}
	queued := map[key]int{}
	dispatched := map[key]int{}
	completed := map[key]int{}
	for _, e := range buf.Events {
		k := key{e.Dev, e.ID}
		switch e.Kind {
		case trace.Queued:
			queued[k]++
		case trace.Dispatched:
			dispatched[k]++
		case trace.Completed:
			completed[k]++
		}
	}
	if len(queued) == 0 {
		t.Fatal("no queue events traced")
	}
	for k, n := range queued {
		if n != 1 {
			t.Fatalf("request %v queued %d times", k, n)
		}
		if dispatched[k] != 1 {
			t.Fatalf("request %v dispatched %d times", k, dispatched[k])
		}
		if completed[k] != 1 {
			t.Fatalf("request %v completed %d times", k, completed[k])
		}
	}
	// No phantom completions either.
	for k := range completed {
		if queued[k] == 0 {
			t.Fatalf("request %v completed but never queued", k)
		}
	}
}

// TestTraceDeterminism: two identical runs produce byte-identical traces.
func TestTraceDeterminism(t *testing.T) {
	run := func() []byte {
		cfg := testConfig()
		var raw bytes.Buffer
		bw := trace.NewBinaryWriter(&raw)
		cfg.Trace = bw
		gen := workload.MixedRW(150*time.Millisecond, 3000, 2048, sim.NewRNG(22, "wl"))
		New(cfg, gen, nil).Run(3)
		if err := bw.Close(); err != nil {
			t.Fatal(err)
		}
		return raw.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs produced different traces")
	}
}

// TestEvictionWritebackPairing: every dirty eviction's SSD read is paired
// with a disk writeback covering the same extent.
func TestEvictionWritebackPairing(t *testing.T) {
	cfg := testConfig()
	cfg.Cache.Sets = 16
	cfg.Cache.Ways = 2
	cfg.Cache.DirtyHighWatermark = 0.99
	cfg.Cache.DirtyLowWatermark = 0.98
	cfg.PrewarmBlocks = 0
	var buf trace.Buffer
	cfg.Trace = &buf
	gen := workload.RandomWrite(150*time.Millisecond, 2000, 4096, sim.NewRNG(23, "wl"))
	res := New(cfg, gen, nil).Run(3)
	if res.CacheStats.DirtyEvicts == 0 {
		t.Skip("no dirty evictions this run")
	}
	evicts := map[int64]int{}
	writebacks := map[int64]int{}
	for _, e := range buf.Events {
		if e.Kind != trace.Queued && e.Kind != trace.Merged {
			continue
		}
		if e.Dev == trace.SSD && e.Origin == block.Evict {
			evicts[e.LBA]++
		}
		if e.Dev == trace.HDD && e.Origin == block.Writeback {
			writebacks[e.LBA]++
		}
	}
	for lba, n := range evicts {
		if writebacks[lba] < n {
			t.Fatalf("LBA %d: %d evict reads but %d writebacks", lba, n, writebacks[lba])
		}
	}
}

// TestSequentialWorkloadMerges: a sequential stream must exercise the
// elevator (merges on at least one tier).
func TestSequentialWorkloadMerges(t *testing.T) {
	cfg := testConfig()
	cfg.PrewarmBlocks = 0
	gen := workload.SequentialWrite(200*time.Millisecond, 6000, 1<<20, sim.NewRNG(24, "wl"))
	res := New(cfg, gen, nil).Run(4)
	if res.SSDMerges == 0 {
		t.Errorf("sequential write stream produced no SSD merges")
	}
	if res.AppCompleted != res.AppSubmitted {
		t.Fatal("merged run wedged")
	}
}

// TestMonitorCompletionConservation: device completions recorded by the
// samples must equal the servers' totals.
func TestMonitorCompletionConservation(t *testing.T) {
	cfg := testConfig()
	gen := workload.MixedRW(250*time.Millisecond, 3000, 2048, sim.NewRNG(25, "wl"))
	st := New(cfg, gen, nil)
	res := st.Run(5)
	var ssd, hdd, app uint64
	for _, s := range res.Samples {
		ssd += s.SSDCompleted
		hdd += s.HDDCompleted
		app += s.AppCompleted
	}
	// Completions after the final tick are not sampled, so the sample sums
	// are a lower bound — but they must be close (≥95%) and never exceed.
	if app > res.AppCompleted {
		t.Fatalf("samples count more app completions (%d) than the run (%d)", app, res.AppCompleted)
	}
	if float64(app) < 0.95*float64(res.AppCompleted) {
		t.Errorf("samples captured only %d of %d app completions", app, res.AppCompleted)
	}
	if ssd == 0 || hdd == 0 {
		t.Error("sampled device completions missing")
	}
}

// TestPolicyChurnKeepsInvariants flips the cache policy every 50 ms of
// virtual time under a mixed workload — a stress for metadata consistency
// and request-lifecycle accounting across policy transitions.
func TestPolicyChurnKeepsInvariants(t *testing.T) {
	cfg := testConfig()
	gen := workload.MixedRW(400*time.Millisecond, 4000, 2048, sim.NewRNG(26, "wl"))
	st := New(cfg, gen, nil)
	seq := []cache.Policy{cache.WT, cache.RO, cache.WO, cache.WTWO, cache.WB}
	i := 0
	st.Periodic(50*time.Millisecond, func() {
		st.Cache().SetPolicy(seq[i%len(seq)])
		i++
	})
	res := st.Run(8)
	if res.AppCompleted != res.AppSubmitted {
		t.Fatalf("policy churn wedged the stack: %d of %d", res.AppCompleted, res.AppSubmitted)
	}
	if err := st.Cache().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if res.CacheStats.PolicySwitches == 0 {
		t.Error("no switches recorded")
	}
}

// TestEnduranceCounters: SSD write volume responds to policy as expected.
func TestEnduranceCounters(t *testing.T) {
	base := testConfig()
	gen := func(seed int64) workload.Generator {
		return workload.RandomWrite(200*time.Millisecond, 3000, 2048, sim.NewRNG(27, "wl"))
	}
	wbCfg := base
	wb := New(wbCfg, gen(1), nil).Run(4)
	roCfg := base
	roCfg.Cache.InitialPolicy = cache.RO
	ro := New(roCfg, gen(1), nil).Run(4)
	if wb.SSDWrittenSectors == 0 {
		t.Fatal("WB recorded no SSD writes")
	}
	if ro.SSDWrittenSectors >= wb.SSDWrittenSectors {
		t.Errorf("RO SSD writes (%d sectors) not below WB (%d)", ro.SSDWrittenSectors, wb.SSDWrittenSectors)
	}
	if ro.HDDWrittenSectors <= wb.HDDWrittenSectors {
		t.Errorf("RO disk writes (%d) not above WB (%d)", ro.HDDWrittenSectors, wb.HDDWrittenSectors)
	}
	if wb.SSDWrittenMiB() <= 0 {
		t.Error("MiB conversion broken")
	}
}

// TestRunMinimumIntervals: Run clamps a non-positive interval count.
func TestRunMinimumIntervals(t *testing.T) {
	cfg := testConfig()
	gen := workload.RandomRead(10*time.Millisecond, 100, 64, sim.NewRNG(28, "wl"))
	res := New(cfg, gen, nil).Run(0)
	if len(res.Samples) != 1 {
		t.Fatalf("samples = %d, want clamped 1", len(res.Samples))
	}
}

// TestStallDelaysService: a stalled SSD defers queued work.
func TestStallDelaysService(t *testing.T) {
	cfg := testConfig()
	gen := workload.RandomRead(time.Millisecond, 10, 16, sim.NewRNG(29, "wl"))
	st := New(cfg, gen, nil)
	st.StallSSD(10 * time.Millisecond)
	done := false
	r := &block.Request{ID: 1, Origin: block.AppRead, Extent: block.Extent{LBA: 0, Sectors: 8}}
	r.OnComplete = block.CompleterFunc(func(*block.Request) { done = true })
	st.SSDQueue().Push(r, 0)
	st.Engine().Run(5 * time.Millisecond)
	if done {
		t.Fatal("request served while the device was stalled")
	}
	st.Engine().RunUntilIdle()
	if !done {
		t.Fatal("request never served after the stall")
	}
}
