package block

import (
	"testing"
	"testing/quick"
)

func TestOriginOp(t *testing.T) {
	cases := []struct {
		o    Origin
		want Op
	}{
		{AppRead, Read},
		{AppWrite, Write},
		{Promote, Write},
		{Evict, Read},
		{ReadMiss, Read},
		{Writeback, Write},
		{BypassRead, Read},
		{BypassWrite, Write},
	}
	for _, c := range cases {
		if got := c.o.Op(); got != c.want {
			t.Errorf("%v.Op() = %v, want %v", c.o, got, c.want)
		}
	}
}

func TestOriginStrings(t *testing.T) {
	want := map[Origin]string{
		AppRead: "R", AppWrite: "W", Promote: "P", Evict: "E",
		ReadMiss: "Rm", Writeback: "WB", BypassRead: "BR", BypassWrite: "BW",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), s)
		}
	}
}

func TestExtentGeometry(t *testing.T) {
	a := Extent{LBA: 100, Sectors: 8}
	if a.End() != 108 {
		t.Errorf("End = %d", a.End())
	}
	if a.Bytes() != 8*SectorSize {
		t.Errorf("Bytes = %d", a.Bytes())
	}
	b := Extent{LBA: 108, Sectors: 4}
	if a.Overlaps(b) {
		t.Error("adjacent extents must not overlap")
	}
	if !a.Adjacent(b) || !b.Adjacent(a) {
		t.Error("adjacency must be symmetric")
	}
	c := Extent{LBA: 104, Sectors: 8}
	if !a.Overlaps(c) || !c.Overlaps(a) {
		t.Error("overlap must be symmetric")
	}
	u := a.Union(b)
	if u.LBA != 100 || u.Sectors != 12 {
		t.Errorf("union = %v", u)
	}
}

// Property: the union of overlapping-or-adjacent extents covers exactly
// both inputs and nothing before/after them.
func TestExtentUnionProperty(t *testing.T) {
	f := func(lba uint16, n1, gap, n2 uint8) bool {
		a := Extent{LBA: int64(lba), Sectors: int64(n1%32) + 1}
		b := Extent{LBA: a.End() - int64(gap%2), Sectors: int64(n2%32) + 1} // overlap or adjacency
		if !a.Overlaps(b) && !a.Adjacent(b) {
			return true // vacuous
		}
		u := a.Union(b)
		if u.LBA > a.LBA || u.LBA > b.LBA {
			return false
		}
		if u.End() < a.End() || u.End() < b.End() {
			return false
		}
		lo := a.LBA
		if b.LBA < lo {
			lo = b.LBA
		}
		hi := a.End()
		if b.End() > hi {
			hi = b.End()
		}
		return u.LBA == lo && u.End() == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRequestTimings(t *testing.T) {
	r := Request{Submit: 100, Dispatch: 150, Complete: 400}
	if r.QueueTime() != 50 {
		t.Errorf("queue time = %v", r.QueueTime())
	}
	if r.ServiceTime() != 250 {
		t.Errorf("service time = %v", r.ServiceTime())
	}
	if r.Latency() != 300 {
		t.Errorf("latency = %v", r.Latency())
	}
}

func TestStringRenderings(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("op strings wrong")
	}
	if Origin(200).String() == "" {
		t.Error("out-of-range origin must render")
	}
	e := Extent{LBA: 8, Sectors: 4}
	if e.String() != "[8,+4)" {
		t.Errorf("extent string = %q", e.String())
	}
	r := Request{ID: 7, Origin: Promote, Extent: e}
	if s := r.String(); s != "req#7 P write [8,+4)" {
		t.Errorf("request string = %q", s)
	}
	var c Census
	if c.String() != "census(empty)" {
		t.Errorf("empty census string = %q", c.String())
	}
	c[AppRead] = 3
	c[Promote] = 1
	if got := c.String(); got == "" || got == "census(empty)" {
		t.Errorf("census string = %q", got)
	}
}

func TestCensus(t *testing.T) {
	var c Census
	if c.Total() != 0 || c.Ratio(AppRead) != 0 {
		t.Error("empty census must read zero")
	}
	c[AppRead] = 44
	c[AppWrite] = 2
	c[Promote] = 51
	c[Evict] = 3
	if c.Total() != 100 {
		t.Fatalf("total = %d", c.Total())
	}
	if c.Ratio(Promote) != 0.51 {
		t.Errorf("P ratio = %v", c.Ratio(Promote))
	}
	if c.Ratio(AppRead) != 0.44 {
		t.Errorf("R ratio = %v", c.Ratio(AppRead))
	}
}
