// Package block defines the block-layer request model shared by every tier
// of the simulated storage stack.
//
// The load-bearing concept is the Origin tag. LBICA characterizes workloads
// by the *type* of requests sitting in the SSD queue — application reads
// (R), application writes (W), cache promotions (P) and cache evictions (E)
// — plus the two disk-side types of the paper's Fig. 1: read misses (Rm)
// and dirty-eviction writebacks. Queues expose a census over these tags and
// the characterizer consumes it.
package block

import (
	"fmt"
	"time"
)

// SectorSize is the unit of addressing, in bytes (512B, matching the Linux
// block layer).
const SectorSize = 512

// Op is the transfer direction at the device.
type Op uint8

// Transfer directions.
const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Origin tags why a device-level request exists. The first four are the
// paper's R/W/P/E taxonomy (SSD-queue residents); ReadMiss and Writeback
// are the HDD-side shadows of a miss and a dirty eviction.
type Origin uint8

// Request origins.
const (
	// AppRead is an application read served by the cache (a hit) — "R".
	AppRead Origin = iota
	// AppWrite is an application write buffered in the cache — "W".
	AppWrite
	// Promote is the cache-fill write issued to the SSD after a read miss — "P".
	Promote
	// Evict is the SSD read of a dirty victim being evicted — "E".
	Evict
	// ReadMiss is the HDD read serving an application read that missed — "Rm".
	ReadMiss
	// Writeback is the HDD write of an evicted dirty block.
	Writeback
	// BypassRead is an application read routed directly to the HDD by a
	// load balancer (not a miss: the balancer chose not to consult the cache).
	BypassRead
	// BypassWrite is an application write routed directly to the HDD by a
	// load balancer or by a non-write-allocate policy (RO/WT bypass path).
	BypassWrite
	numOrigins
)

// NumOrigins is the number of distinct origin tags.
const NumOrigins = int(numOrigins)

var originNames = [...]string{"R", "W", "P", "E", "Rm", "WB", "BR", "BW"}

func (o Origin) String() string {
	if int(o) < len(originNames) {
		return originNames[o]
	}
	return fmt.Sprintf("Origin(%d)", uint8(o))
}

// Op returns the transfer direction implied by the origin at its device.
func (o Origin) Op() Op {
	switch o {
	case AppRead, Evict, ReadMiss, BypassRead:
		return Read
	default:
		return Write
	}
}

// Extent is a contiguous run of sectors.
type Extent struct {
	LBA     int64 // first sector
	Sectors int64 // length in sectors, > 0
}

// End returns the first sector past the extent.
func (e Extent) End() int64 { return e.LBA + e.Sectors }

// Bytes returns the extent size in bytes.
func (e Extent) Bytes() int64 { return e.Sectors * SectorSize }

// Overlaps reports whether two extents share any sector.
func (e Extent) Overlaps(o Extent) bool {
	return e.LBA < o.End() && o.LBA < e.End()
}

// Adjacent reports whether o starts exactly where e ends or vice versa.
func (e Extent) Adjacent(o Extent) bool {
	return e.End() == o.LBA || o.End() == e.LBA
}

// Union returns the smallest extent covering both. It is only meaningful
// for overlapping or adjacent extents; Merge in ioqueue enforces that.
func (e Extent) Union(o Extent) Extent {
	lo := e.LBA
	if o.LBA < lo {
		lo = o.LBA
	}
	hi := e.End()
	if o.End() > hi {
		hi = o.End()
	}
	return Extent{LBA: lo, Sectors: hi - lo}
}

func (e Extent) String() string { return fmt.Sprintf("[%d,+%d)", e.LBA, e.Sectors) }

// Request is one block-layer request flowing through a device queue.
// Lifecycle timestamps are virtual times stamped by the engine:
// Submit (enters a queue) → Dispatch (reaches the device) → Complete.
type Request struct {
	ID     uint64
	Origin Origin
	Extent Extent

	// ParentID links side-traffic (promote, writeback, WT shadow writes)
	// to the application request that caused it; 0 for application
	// requests themselves.
	ParentID uint64

	Submit   time.Duration
	Dispatch time.Duration
	Complete time.Duration

	// Merged counts how many requests were folded into this one by queue
	// merging (0 for an unmerged request).
	Merged int

	// Shadowed marks a cache-write leg whose data is also being written to
	// the disk tier by a parallel through-write leg (WT/WTWO policies). A
	// load balancer may cancel a shadowed SSD leg outright instead of
	// re-routing it: the disk leg already persists the data.
	Shadowed bool

	// OnComplete, when non-nil, runs when the device finishes the request
	// (after timestamps are stamped). The engine uses it to chain the
	// request lifecycle: miss fill → promote, eviction → writeback, etc.
	// It is an interface rather than a bare func so that fork machinery
	// can identify and re-create the callback against a cloned stack (see
	// Cloner); ad-hoc callers adapt plain functions with CompleterFunc.
	OnComplete Completer

	// Recycle marks a request owned by a request pool: after every
	// completion callback has run, the owner returns it to its free-list
	// and may reuse it for a later request. Externally created requests
	// (tests, tools) leave it false and are never recycled.
	Recycle bool
}

// Completer receives a request's completion. Completion callbacks are
// typed values instead of bare funcs so a fork can recognize each one and
// rebuild it against the cloned stack: every completer the engine or
// queue layer installs also implements ForkableCompleter.
type Completer interface {
	Complete(*Request)
}

// CompleterFunc adapts a plain function as a Completer — the convenience
// for tests and tools. A CompleterFunc is not forkable: a stack holding
// one in flight cannot be forked.
type CompleterFunc func(*Request)

// Complete calls f.
func (f CompleterFunc) Complete(r *Request) { f(r) }

// Cloner is the fork context handed to ForkableCompleter.CloneFor: it
// deep-copies request-graph state, memoizing so that a request (or
// completer) referenced from several places maps to a single clone.
type Cloner interface {
	// CloneRequest returns the clone of r, creating it on first use.
	CloneRequest(r *Request) *Request
	// CloneCompleter returns the clone of c (nil for nil), dispatching to
	// c's CloneFor on first use.
	CloneCompleter(c Completer) Completer
	// Env maps a component of the original stack (a queue, a server, the
	// stack itself) to its clone-side counterpart; it panics on a
	// component the fork did not register.
	Env(old any) any
	// Register records old → clone in the Env map. Components whose
	// Clone method both builds the clone and walks state referencing the
	// component itself (a queue cloning its pending chains) register the
	// shell before the walk.
	Register(old, clone any)
}

// ForkableCompleter is a Completer that can re-create itself against a
// forked stack. CloneFor must return a completer whose behavior on the
// cloned request graph matches the original's on the original graph.
type ForkableCompleter interface {
	Completer
	CloneFor(Cloner) Completer
}

// Op returns the transfer direction of the request.
func (r *Request) Op() Op { return r.Origin.Op() }

// QueueTime returns time spent waiting in queue (Dispatch − Submit).
func (r *Request) QueueTime() time.Duration { return r.Dispatch - r.Submit }

// ServiceTime returns time at the device (Complete − Dispatch).
func (r *Request) ServiceTime() time.Duration { return r.Complete - r.Dispatch }

// Latency returns total time in the tier (Complete − Submit).
func (r *Request) Latency() time.Duration { return r.Complete - r.Submit }

func (r *Request) String() string {
	return fmt.Sprintf("req#%d %s %s %s", r.ID, r.Origin, r.Op(), r.Extent)
}

// Census counts in-queue requests by origin — the R/W/P/E snapshot the
// characterizer consumes (Fig. 3 of the paper).
type Census [NumOrigins]int

// Total returns the number of counted requests.
func (c Census) Total() int {
	n := 0
	for _, v := range c {
		n += v
	}
	return n
}

// Ratio returns origin o's share of the census in [0,1]; 0 when empty.
func (c Census) Ratio(o Origin) float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c[o]) / float64(t)
}

func (c Census) String() string {
	t := c.Total()
	if t == 0 {
		return "census(empty)"
	}
	return fmt.Sprintf("census(R:%.1f%% W:%.1f%% P:%.1f%% E:%.1f%% n=%d)",
		100*c.Ratio(AppRead), 100*c.Ratio(AppWrite), 100*c.Ratio(Promote), 100*c.Ratio(Evict), t)
}
