// Package cache implements the SSD I/O cache of the paper's stack — the
// role EnhanceIO plays on the physical testbed: a set-associative,
// LRU-per-set block cache with runtime-switchable write policies and the
// promote/evict side-traffic that LBICA's characterizer observes.
//
// The cache is a pure metadata machine: it never performs I/O itself.
// Access returns a Decision describing which device transfers the engine
// must issue (SSD read/write, HDD read/write, deferred promote, victim
// writebacks); the engine turns those into queued block requests.
package cache

import (
	"fmt"
	"time"

	"lbica/internal/block"
)

// Policy is a cache write policy. LBICA's whole contribution is switching
// this at runtime per Eq. 1 + workload characterization.
type Policy uint8

// Write policies.
const (
	// WB (write-back): read and write allocate; writes buffered dirty in
	// the SSD; dirty victims are written back on eviction. The enterprise
	// default and the paper's baseline.
	WB Policy = iota
	// WT (write-through): read and write allocate; writes go to SSD and
	// HDD simultaneously and lines stay clean.
	WT
	// RO (read-only): read allocate; writes bypass to the HDD and
	// invalidate any cached copy. LBICA assigns this for Group 2 (mixed
	// read/write) bursts.
	RO
	// WO (write-only-allocate): read hits are served but read misses do
	// not promote; writes are buffered dirty as in WB. LBICA assigns this
	// for Group 1 (random read) bursts to kill promote traffic.
	WO
	// WTWO combines WT's through-writes with WO's no-read-allocate — the
	// configuration the SIB baseline is designed around.
	WTWO
	numPolicies
)

// NumPolicies is the number of distinct policies.
const NumPolicies = int(numPolicies)

var policyNames = [...]string{"WB", "WT", "RO", "WO", "WTWO"}

func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// ParsePolicy converts a name ("WB", "wt", ...) to a Policy.
func ParsePolicy(s string) (Policy, error) {
	for i, n := range policyNames {
		if equalFold(s, n) {
			return Policy(i), nil
		}
	}
	return 0, fmt.Errorf("cache: unknown policy %q", s)
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'a' <= ca && ca <= 'z' {
			ca -= 'a' - 'A'
		}
		if 'a' <= cb && cb <= 'z' {
			cb -= 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// The cache stores line state in structure-of-arrays layout: a compact
// tag array (8 bytes per way — a whole 8-way set probes in one or two
// cache lines) with the colder metadata alongside in a parallel slice.
// find touches only the tag array; metadata is loaded just for the way
// that hits.

// lineMeta is the non-tag state of one way of one set.
type lineMeta struct {
	epoch    uint64 // bumped on every dirtying write; guards MarkClean
	lastUse  uint64 // global LRU tick
	loadedAt uint64 // tick at allocation (FIFO replacement)
	dirty    bool
	flushing bool
}

// Victim identifies an evicted block. Dirty victims cost an SSD read (E)
// plus an HDD write (writeback); clean victims are metadata-only.
type Victim struct {
	Block int64
	Dirty bool
	Epoch uint64
}

// Decision tells the engine which transfers to issue for one application
// request.
type Decision struct {
	// Hit reports whether every covered block was valid (read) / present
	// (write) in the cache.
	Hit bool
	// CacheRead: serve the read from the SSD (origin AppRead).
	CacheRead bool
	// DiskRead: read from the HDD (origin ReadMiss).
	DiskRead bool
	// CacheWrite: buffer the write in the SSD (origin AppWrite).
	CacheWrite bool
	// DiskWrite: write to the HDD (origin BypassWrite) — RO bypass or the
	// through-leg of WT/WTWO.
	DiskWrite bool
	// Promote: after the disk read completes, fill the SSD (origin
	// Promote).
	Promote bool
	// Victims evicted to make room; issue their writebacks. The slice
	// aliases a scratch buffer owned by the Cache and is valid only until
	// the next Access/Prewarm call — consume (or copy) it immediately.
	Victims []Victim
}

// Stats is the cache's cumulative accounting.
type Stats struct {
	Reads, Writes             uint64
	ReadHits, ReadMisses      uint64
	WriteHits, WriteMisses    uint64
	Promotes                  uint64
	CleanEvicts, DirtyEvicts  uint64
	Invalidations             uint64
	FlushesStarted, Flushed   uint64
	PolicySwitches            uint64
	BypassedReads, BypassedWr uint64 // balancer-initiated bypasses, recorded via NoteBypass
	MigratedOut, MigratedIn   uint64 // array-controller line migrations (ExtractClean / InsertClean)
}

// HitRatio returns overall hit ratio in [0,1].
func (s Stats) HitRatio() float64 {
	total := s.Reads + s.Writes
	if total == 0 {
		return 0
	}
	return float64(s.ReadHits+s.WriteHits) / float64(total)
}

// Replacement selects the victim within a set, mirroring EnhanceIO's
// replacement-policy module parameter (lru, fifo, rand).
type Replacement uint8

// Replacement policies.
const (
	// LRU evicts the least recently used way (EnhanceIO's default).
	LRU Replacement = iota
	// FIFO evicts the way resident longest, regardless of use.
	FIFO
	// Random evicts a pseudo-random way (cheap, no metadata updates on
	// hits; EnhanceIO offers it for metadata-bandwidth-constrained
	// setups).
	Random
)

var replacementNames = [...]string{"lru", "fifo", "rand"}

func (r Replacement) String() string {
	if int(r) < len(replacementNames) {
		return replacementNames[r]
	}
	return fmt.Sprintf("Replacement(%d)", uint8(r))
}

// ParseReplacement converts a name ("lru", "fifo", "rand") to a
// Replacement.
func ParseReplacement(s string) (Replacement, error) {
	for i, n := range replacementNames {
		if equalFold(s, n) {
			return Replacement(i), nil
		}
	}
	return 0, fmt.Errorf("cache: unknown replacement policy %q", s)
}

// Config sizes the cache.
type Config struct {
	// BlockSectors is the cache block size in sectors (default 8 = 4 KiB).
	BlockSectors int64
	// Sets × Ways = capacity in blocks.
	Sets int
	Ways int
	// InitialPolicy is the starting write policy (default WB).
	InitialPolicy Policy
	// Replacement selects the in-set victim policy (default LRU).
	Replacement Replacement
	// ReplacementSeed seeds the Random replacement's generator.
	ReplacementSeed int64
	// DirtyHighWatermark / DirtyLowWatermark bound the background flusher:
	// it starts above high and stops below low (fractions of capacity).
	DirtyHighWatermark float64
	DirtyLowWatermark  float64
}

// DefaultConfig returns a 64Ki-block (256 MiB at 4 KiB blocks), 8-way
// configuration with EnhanceIO-like flush watermarks.
func DefaultConfig() Config {
	return Config{
		BlockSectors:       8,
		Sets:               8192,
		Ways:               8,
		InitialPolicy:      WB,
		DirtyHighWatermark: 0.7,
		DirtyLowWatermark:  0.5,
	}
}

// Cache is the set-associative cache metadata machine.
type Cache struct {
	cfg     Config
	policy  Policy
	tags    []int64    // Sets×Ways block numbers; -1 when invalid
	meta    []lineMeta // parallel to tags
	ways    int
	setMask int64 // Sets-1 when Sets is a power of two, else -1
	tick    uint64
	dirty   int
	valid   int
	stats   Stats
	rndSt   uint64 // xorshift state for Random replacement
	// victims is the scratch buffer Decision.Victims aliases; it is valid
	// until the next Access/Prewarm call and reused to keep the hot path
	// allocation-free.
	victims []Victim
}

// New builds a cache. Invalid geometry panics: the caller controls config.
func New(cfg Config) *Cache {
	if cfg.BlockSectors <= 0 {
		cfg.BlockSectors = 8
	}
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic("cache: Sets and Ways must be positive")
	}
	if cfg.DirtyHighWatermark == 0 {
		cfg.DirtyHighWatermark = 0.7
	}
	if cfg.DirtyLowWatermark == 0 {
		cfg.DirtyLowWatermark = 0.5
	}
	c := &Cache{cfg: cfg, policy: cfg.InitialPolicy, ways: cfg.Ways, rndSt: uint64(cfg.ReplacementSeed)*2654435761 + 0x9e3779b97f4a7c15}
	c.tags = make([]int64, cfg.Sets*cfg.Ways)
	c.meta = make([]lineMeta, cfg.Sets*cfg.Ways)
	for i := range c.tags {
		c.tags[i] = -1
	}
	c.setMask = -1
	if n := int64(cfg.Sets); n&(n-1) == 0 {
		c.setMask = n - 1
	}
	return c
}

// Policy returns the current write policy.
func (c *Cache) Policy() Policy { return c.policy }

// SetPolicy switches the write policy at runtime (LBICA's actuator).
func (c *Cache) SetPolicy(p Policy) {
	if p != c.policy {
		c.stats.PolicySwitches++
	}
	c.policy = p
}

// Stats returns a copy of the cumulative statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Capacity returns total capacity in blocks.
func (c *Cache) Capacity() int { return c.cfg.Sets * c.cfg.Ways }

// ValidCount returns the number of valid blocks.
func (c *Cache) ValidCount() int { return c.valid }

// DirtyCount returns the number of dirty blocks.
func (c *Cache) DirtyCount() int { return c.dirty }

// DirtyRatio returns dirty blocks over capacity.
func (c *Cache) DirtyRatio() float64 {
	return float64(c.dirty) / float64(c.Capacity())
}

// BlockSectors returns the cache block size in sectors.
func (c *Cache) BlockSectors() int64 { return c.cfg.BlockSectors }

// BlockOf returns the block number containing the given LBA.
func (c *Cache) BlockOf(lba int64) int64 { return lba / c.cfg.BlockSectors }

// BlockExtent returns the device extent of a cache block.
func (c *Cache) BlockExtent(blockNum int64) block.Extent {
	return block.Extent{LBA: blockNum * c.cfg.BlockSectors, Sectors: c.cfg.BlockSectors}
}

// blocksOf enumerates the block numbers an extent covers.
func (c *Cache) blocksOf(e block.Extent) (first, last int64) {
	return e.LBA / c.cfg.BlockSectors, (e.End() - 1) / c.cfg.BlockSectors
}

// setBase returns the tag/meta index of blockNum's set's first way.
func (c *Cache) setBase(blockNum int64) int {
	var s int64
	if c.setMask >= 0 {
		s = blockNum & c.setMask
		if blockNum < 0 {
			s = -blockNum & c.setMask
		}
	} else {
		s = blockNum % int64(c.cfg.Sets)
		if s < 0 {
			s = -s
		}
	}
	return int(s) * c.ways
}

// find returns the tag/meta index of the way holding blockNum, or -1. It
// probes only the compact tag array — the common miss scans Ways
// contiguous int64s and never loads line metadata.
func (c *Cache) find(blockNum int64) int {
	base := c.setBase(blockNum)
	tags := c.tags[base : base+c.ways]
	for i, t := range tags {
		if t == blockNum {
			return base + i
		}
	}
	return -1
}

// Contains reports whether blockNum is cached (valid).
func (c *Cache) Contains(blockNum int64) bool { return c.find(blockNum) >= 0 }

// DirtyIn reports whether any block covered by e is dirty — the safety
// check before a balancer re-routes a queued read to the disk tier (dirty
// data exists only on the SSD).
func (c *Cache) DirtyIn(e block.Extent) bool {
	first, last := c.blocksOf(e)
	for b := first; b <= last; b++ {
		if i := c.find(b); i >= 0 && c.meta[i].dirty {
			return true
		}
	}
	return false
}

// touch refreshes LRU state.
func (c *Cache) touch(i int) {
	c.tick++
	c.meta[i].lastUse = c.tick
}

// allocate installs blockNum in its set, evicting the LRU victim if the set
// is full. It returns the line index and, when an eviction occurred,
// appends the victim to the cache's scratch victim buffer (the evicted
// return reports it). Lines already present are returned as-is.
func (c *Cache) allocate(blockNum int64) (idx int, evicted bool) {
	if i := c.find(blockNum); i >= 0 {
		c.touch(i)
		return i, false
	}
	base := c.setBase(blockNum)
	// Prefer an invalid way.
	choice := -1
	tags := c.tags[base : base+c.ways]
	for i, t := range tags {
		if t == -1 {
			choice = base + i
			break
		}
	}
	if choice < 0 {
		choice = c.pickVictim(base)
		m := &c.meta[choice]
		v := Victim{Block: c.tags[choice], Dirty: m.dirty && !m.flushing, Epoch: m.epoch}
		c.victims = append(c.victims, v)
		evicted = true
		if m.dirty {
			c.dirty--
			if v.Dirty {
				c.stats.DirtyEvicts++
			} else {
				c.stats.CleanEvicts++ // flush in flight covers persistence
			}
		} else {
			c.stats.CleanEvicts++
		}
		c.valid--
	}
	c.tags[choice] = blockNum
	m := &c.meta[choice]
	m.dirty = false
	m.flushing = false
	m.epoch = 0
	c.valid++
	c.touch(choice)
	m.loadedAt = c.tick
	return choice, evicted
}

// pickVictim selects the way to evict per the configured replacement
// policy, preferring lines not mid-flush (their writeback is already in
// flight; evicting them as clean is safe but avoided when any alternative
// exists). base indexes the set's first way.
func (c *Cache) pickVictim(base int) int {
	score := func(m *lineMeta) uint64 {
		switch c.cfg.Replacement {
		case FIFO:
			return m.loadedAt
		case Random:
			// xorshift64*: cheap deterministic pseudo-randomness.
			c.rndSt ^= c.rndSt << 13
			c.rndSt ^= c.rndSt >> 7
			c.rndSt ^= c.rndSt << 17
			return c.rndSt
		default:
			return m.lastUse
		}
	}
	best, bestAny := -1, -1
	var bestScore, bestAnyScore uint64
	for i := base; i < base+c.ways; i++ {
		m := &c.meta[i]
		s := score(m)
		if bestAny < 0 || s < bestAnyScore {
			bestAny, bestAnyScore = i, s
		}
		if !m.flushing && (best < 0 || s < bestScore) {
			best, bestScore = i, s
		}
	}
	if best < 0 {
		return bestAny
	}
	return best
}

// markDirty transitions a line to dirty.
func (c *Cache) markDirty(i int) {
	m := &c.meta[i]
	if !m.dirty {
		m.dirty = true
		c.dirty++
	}
	m.flushing = false
	m.epoch++
}

// Access applies the current policy to one application request and returns
// the transfers the engine must issue. now is unused for decisions but
// stamped into nothing here — timing lives in the engine; it is accepted so
// future replacement policies can be recency-in-time based.
func (c *Cache) Access(op block.Op, e block.Extent, now time.Duration) Decision {
	if op == block.Read {
		return c.read(e)
	}
	return c.write(e)
}

func (c *Cache) read(e block.Extent) Decision {
	c.stats.Reads++
	first, last := c.blocksOf(e)
	allHit := true
	for b := first; b <= last; b++ {
		if i := c.find(b); i >= 0 {
			c.touch(i)
		} else {
			allHit = false
		}
	}
	if allHit {
		c.stats.ReadHits++
		return Decision{Hit: true, CacheRead: true}
	}
	c.stats.ReadMisses++
	d := Decision{DiskRead: true}
	// Promote on miss unless the policy forbids read allocation.
	if c.policy == WO || c.policy == WTWO {
		return d
	}
	d.Promote = true
	c.victims = c.victims[:0]
	anyVictim := false
	for b := first; b <= last; b++ {
		if c.find(b) >= 0 {
			continue
		}
		if _, ev := c.allocate(b); ev {
			anyVictim = true
		}
	}
	if anyVictim {
		d.Victims = c.victims
	}
	c.stats.Promotes++
	return d
}

func (c *Cache) write(e block.Extent) Decision {
	c.stats.Writes++
	first, last := c.blocksOf(e)
	present := true
	for b := first; b <= last; b++ {
		if c.find(b) < 0 {
			present = false
			break
		}
	}
	if present {
		c.stats.WriteHits++
	} else {
		c.stats.WriteMisses++
	}

	switch c.policy {
	case RO:
		// Writes bypass; drop any stale cached copy.
		for b := first; b <= last; b++ {
			c.invalidate(b)
		}
		return Decision{Hit: present, DiskWrite: true}
	case WB, WO:
		d := Decision{Hit: present, CacheWrite: true}
		c.victims = c.victims[:0]
		anyVictim := false
		for b := first; b <= last; b++ {
			i, ev := c.allocate(b)
			c.markDirty(i)
			anyVictim = anyVictim || ev
		}
		if anyVictim {
			d.Victims = c.victims
		}
		return d
	default: // WT, WTWO — through-write, clean allocate
		d := Decision{Hit: present, CacheWrite: true, DiskWrite: true}
		c.victims = c.victims[:0]
		anyVictim := false
		for b := first; b <= last; b++ {
			i, ev := c.allocate(b)
			m := &c.meta[i]
			if m.dirty {
				// A through-write over a previously dirty line cleans it:
				// the disk leg persists the latest data.
				m.dirty = false
				m.flushing = false
				c.dirty--
			}
			m.epoch++
			anyVictim = anyVictim || ev
		}
		if anyVictim {
			d.Victims = c.victims
		}
		return d
	}
}

// invalidate drops blockNum if cached. Dirty data is dropped too — callers
// only invalidate when the up-to-date data is on its way to the disk.
func (c *Cache) invalidate(blockNum int64) {
	i := c.find(blockNum)
	if i < 0 {
		return
	}
	m := &c.meta[i]
	if m.dirty {
		c.dirty--
	}
	c.tags[i] = -1
	m.dirty = false
	m.flushing = false
	c.valid--
	c.stats.Invalidations++
}

// Invalidate drops every cached block covered by e.
func (c *Cache) Invalidate(e block.Extent) {
	first, last := c.blocksOf(e)
	for b := first; b <= last; b++ {
		c.invalidate(b)
	}
}

// NoteBypass records a balancer-initiated bypass for accounting.
func (c *Cache) NoteBypass(op block.Op) {
	if op == block.Read {
		c.stats.BypassedReads++
	} else {
		c.stats.BypassedWr++
	}
}

// DirtyBlock identifies a dirty line picked for background flushing.
type DirtyBlock struct {
	Block int64
	Epoch uint64
}

// CollectDirty picks up to max dirty, non-flushing lines (oldest first
// within each set scan) and marks them flushing. The engine issues an SSD
// read (Evict) + HDD write (Writeback) per block and calls MarkClean when
// the writeback completes.
func (c *Cache) CollectDirty(max int) []DirtyBlock {
	if max <= 0 {
		return nil
	}
	if c.dirty == 0 {
		return nil
	}
	out := make([]DirtyBlock, 0, max)
	for i, tag := range c.tags {
		m := &c.meta[i]
		if tag >= 0 && m.dirty && !m.flushing {
			m.flushing = true
			c.stats.FlushesStarted++
			out = append(out, DirtyBlock{Block: tag, Epoch: m.epoch})
			if len(out) == max {
				return out
			}
		}
	}
	return out
}

// MarkClean completes a flush: the line becomes clean unless it was
// rewritten (epoch advanced) or replaced since CollectDirty.
func (c *Cache) MarkClean(blockNum int64, epoch uint64) {
	i := c.find(blockNum)
	if i < 0 || c.meta[i].epoch != epoch {
		return
	}
	m := &c.meta[i]
	if m.dirty {
		m.dirty = false
		c.dirty--
		c.stats.Flushed++
	}
	m.flushing = false
}

// NeedsFlush reports whether the dirty ratio exceeds the high watermark.
func (c *Cache) NeedsFlush() bool {
	return c.DirtyRatio() > c.cfg.DirtyHighWatermark
}

// FlushSatisfied reports whether the dirty ratio is below the low
// watermark (the flusher's stop condition).
func (c *Cache) FlushSatisfied() bool {
	return c.DirtyRatio() < c.cfg.DirtyLowWatermark
}

// ExtractClean removes blockNum's line for migration to another cache,
// reporting whether a line actually left. Only resident, clean,
// non-flushing lines are extractable: dirty (or mid-flush) lines hold the
// newest copy of their data, and migration moves metadata only, so they
// must stay until written back. Unlike invalidation this is not an
// accounting event on the Invalidations counter — migrations have their
// own MigratedOut stat.
func (c *Cache) ExtractClean(blockNum int64) bool {
	i := c.find(blockNum)
	if i < 0 {
		return false
	}
	m := &c.meta[i]
	if m.dirty || m.flushing {
		return false
	}
	c.tags[i] = -1
	m.epoch = 0
	c.valid--
	c.stats.MigratedOut++
	return true
}

// InsertClean installs blockNum as a valid clean line — the receiving end
// of a migration — and returns the victims evicted to make room (dirty
// victims need their writebacks issued, exactly as for Access). Inserting
// an already-resident block changes nothing and evicts nobody, but still
// counts on MigratedIn: the arrival happened, so summed MigratedIn always
// reconciles with the senders' summed MigratedOut. The returned slice
// aliases the cache's scratch buffer and is valid only until the next
// Access/Prewarm/InsertClean call.
func (c *Cache) InsertClean(blockNum int64) []Victim {
	if c.find(blockNum) >= 0 {
		c.stats.MigratedIn++
		return nil
	}
	c.victims = c.victims[:0]
	_, evicted := c.allocate(blockNum)
	c.stats.MigratedIn++
	if !evicted {
		return nil
	}
	return c.victims
}

// Prewarm installs the given blocks as valid and clean without generating
// I/O — the paper's "workload has passed its warm-up interval" assumption.
func (c *Cache) Prewarm(blocks []int64) {
	c.victims = c.victims[:0]
	for _, b := range blocks {
		c.allocate(b)
	}
}

// Clone returns an independent deep copy of the cache: tags, line
// metadata, statistics, tick counter and the Random-replacement xorshift
// state all copied, so the clone's future decisions are identical to the
// original's draw for draw. The victims scratch buffer starts fresh (it
// is only valid between calls anyway). Part of the stack-fork machinery.
func (c *Cache) Clone() *Cache {
	c2 := *c
	c2.tags = append([]int64(nil), c.tags...)
	c2.meta = append([]lineMeta(nil), c.meta...)
	c2.victims = nil
	return &c2
}

// CheckInvariants validates internal consistency; tests call it after
// random operation sequences. It returns nil when consistent.
func (c *Cache) CheckInvariants() error {
	valid, dirty := 0, 0
	seen := make(map[int64]bool)
	for i, tag := range c.tags {
		s := i / c.ways
		m := &c.meta[i]
		if tag == -1 {
			if m.dirty || m.flushing {
				return fmt.Errorf("invalid line with dirty/flushing state in set %d", s)
			}
			continue
		}
		if seen[tag] {
			return fmt.Errorf("block %d cached twice", tag)
		}
		seen[tag] = true
		if want := tag % int64(c.cfg.Sets); want != int64(s) {
			return fmt.Errorf("block %d in wrong set %d (want %d)", tag, s, want)
		}
		valid++
		if m.dirty {
			dirty++
		}
	}
	if valid != c.valid {
		return fmt.Errorf("valid count %d != tracked %d", valid, c.valid)
	}
	if dirty != c.dirty {
		return fmt.Errorf("dirty count %d != tracked %d", dirty, c.dirty)
	}
	if dirty > valid {
		return fmt.Errorf("dirty %d exceeds valid %d", dirty, valid)
	}
	return nil
}
