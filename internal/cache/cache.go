// Package cache implements the SSD I/O cache of the paper's stack — the
// role EnhanceIO plays on the physical testbed: a set-associative,
// LRU-per-set block cache with runtime-switchable write policies and the
// promote/evict side-traffic that LBICA's characterizer observes.
//
// The cache is a pure metadata machine: it never performs I/O itself.
// Access returns a Decision describing which device transfers the engine
// must issue (SSD read/write, HDD read/write, deferred promote, victim
// writebacks); the engine turns those into queued block requests.
package cache

import (
	"fmt"
	"time"

	"lbica/internal/block"
)

// Policy is a cache write policy. LBICA's whole contribution is switching
// this at runtime per Eq. 1 + workload characterization.
type Policy uint8

// Write policies.
const (
	// WB (write-back): read and write allocate; writes buffered dirty in
	// the SSD; dirty victims are written back on eviction. The enterprise
	// default and the paper's baseline.
	WB Policy = iota
	// WT (write-through): read and write allocate; writes go to SSD and
	// HDD simultaneously and lines stay clean.
	WT
	// RO (read-only): read allocate; writes bypass to the HDD and
	// invalidate any cached copy. LBICA assigns this for Group 2 (mixed
	// read/write) bursts.
	RO
	// WO (write-only-allocate): read hits are served but read misses do
	// not promote; writes are buffered dirty as in WB. LBICA assigns this
	// for Group 1 (random read) bursts to kill promote traffic.
	WO
	// WTWO combines WT's through-writes with WO's no-read-allocate — the
	// configuration the SIB baseline is designed around.
	WTWO
	numPolicies
)

// NumPolicies is the number of distinct policies.
const NumPolicies = int(numPolicies)

var policyNames = [...]string{"WB", "WT", "RO", "WO", "WTWO"}

func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// ParsePolicy converts a name ("WB", "wt", ...) to a Policy.
func ParsePolicy(s string) (Policy, error) {
	for i, n := range policyNames {
		if equalFold(s, n) {
			return Policy(i), nil
		}
	}
	return 0, fmt.Errorf("cache: unknown policy %q", s)
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'a' <= ca && ca <= 'z' {
			ca -= 'a' - 'A'
		}
		if 'a' <= cb && cb <= 'z' {
			cb -= 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// line is one way of one set.
type line struct {
	tag      int64 // block number; -1 when invalid
	dirty    bool
	flushing bool
	epoch    uint64 // bumped on every dirtying write; guards MarkClean
	lastUse  uint64 // global LRU tick
	loadedAt uint64 // tick at allocation (FIFO replacement)
}

// Victim identifies an evicted block. Dirty victims cost an SSD read (E)
// plus an HDD write (writeback); clean victims are metadata-only.
type Victim struct {
	Block int64
	Dirty bool
	Epoch uint64
}

// Decision tells the engine which transfers to issue for one application
// request.
type Decision struct {
	// Hit reports whether every covered block was valid (read) / present
	// (write) in the cache.
	Hit bool
	// CacheRead: serve the read from the SSD (origin AppRead).
	CacheRead bool
	// DiskRead: read from the HDD (origin ReadMiss).
	DiskRead bool
	// CacheWrite: buffer the write in the SSD (origin AppWrite).
	CacheWrite bool
	// DiskWrite: write to the HDD (origin BypassWrite) — RO bypass or the
	// through-leg of WT/WTWO.
	DiskWrite bool
	// Promote: after the disk read completes, fill the SSD (origin
	// Promote).
	Promote bool
	// Victims evicted to make room; issue their writebacks.
	Victims []Victim
}

// Stats is the cache's cumulative accounting.
type Stats struct {
	Reads, Writes             uint64
	ReadHits, ReadMisses      uint64
	WriteHits, WriteMisses    uint64
	Promotes                  uint64
	CleanEvicts, DirtyEvicts  uint64
	Invalidations             uint64
	FlushesStarted, Flushed   uint64
	PolicySwitches            uint64
	BypassedReads, BypassedWr uint64 // balancer-initiated bypasses, recorded via NoteBypass
}

// HitRatio returns overall hit ratio in [0,1].
func (s Stats) HitRatio() float64 {
	total := s.Reads + s.Writes
	if total == 0 {
		return 0
	}
	return float64(s.ReadHits+s.WriteHits) / float64(total)
}

// Replacement selects the victim within a set, mirroring EnhanceIO's
// replacement-policy module parameter (lru, fifo, rand).
type Replacement uint8

// Replacement policies.
const (
	// LRU evicts the least recently used way (EnhanceIO's default).
	LRU Replacement = iota
	// FIFO evicts the way resident longest, regardless of use.
	FIFO
	// Random evicts a pseudo-random way (cheap, no metadata updates on
	// hits; EnhanceIO offers it for metadata-bandwidth-constrained
	// setups).
	Random
)

var replacementNames = [...]string{"lru", "fifo", "rand"}

func (r Replacement) String() string {
	if int(r) < len(replacementNames) {
		return replacementNames[r]
	}
	return fmt.Sprintf("Replacement(%d)", uint8(r))
}

// ParseReplacement converts a name ("lru", "fifo", "rand") to a
// Replacement.
func ParseReplacement(s string) (Replacement, error) {
	for i, n := range replacementNames {
		if equalFold(s, n) {
			return Replacement(i), nil
		}
	}
	return 0, fmt.Errorf("cache: unknown replacement policy %q", s)
}

// Config sizes the cache.
type Config struct {
	// BlockSectors is the cache block size in sectors (default 8 = 4 KiB).
	BlockSectors int64
	// Sets × Ways = capacity in blocks.
	Sets int
	Ways int
	// InitialPolicy is the starting write policy (default WB).
	InitialPolicy Policy
	// Replacement selects the in-set victim policy (default LRU).
	Replacement Replacement
	// ReplacementSeed seeds the Random replacement's generator.
	ReplacementSeed int64
	// DirtyHighWatermark / DirtyLowWatermark bound the background flusher:
	// it starts above high and stops below low (fractions of capacity).
	DirtyHighWatermark float64
	DirtyLowWatermark  float64
}

// DefaultConfig returns a 64Ki-block (256 MiB at 4 KiB blocks), 8-way
// configuration with EnhanceIO-like flush watermarks.
func DefaultConfig() Config {
	return Config{
		BlockSectors:       8,
		Sets:               8192,
		Ways:               8,
		InitialPolicy:      WB,
		DirtyHighWatermark: 0.7,
		DirtyLowWatermark:  0.5,
	}
}

// Cache is the set-associative cache metadata machine.
type Cache struct {
	cfg    Config
	policy Policy
	sets   [][]line
	tick   uint64
	dirty  int
	valid  int
	stats  Stats
	rndSt  uint64 // xorshift state for Random replacement
}

// New builds a cache. Invalid geometry panics: the caller controls config.
func New(cfg Config) *Cache {
	if cfg.BlockSectors <= 0 {
		cfg.BlockSectors = 8
	}
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic("cache: Sets and Ways must be positive")
	}
	if cfg.DirtyHighWatermark == 0 {
		cfg.DirtyHighWatermark = 0.7
	}
	if cfg.DirtyLowWatermark == 0 {
		cfg.DirtyLowWatermark = 0.5
	}
	c := &Cache{cfg: cfg, policy: cfg.InitialPolicy, rndSt: uint64(cfg.ReplacementSeed)*2654435761 + 0x9e3779b97f4a7c15}
	c.sets = make([][]line, cfg.Sets)
	backing := make([]line, cfg.Sets*cfg.Ways)
	for i := range backing {
		backing[i].tag = -1
	}
	for s := 0; s < cfg.Sets; s++ {
		c.sets[s], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return c
}

// Policy returns the current write policy.
func (c *Cache) Policy() Policy { return c.policy }

// SetPolicy switches the write policy at runtime (LBICA's actuator).
func (c *Cache) SetPolicy(p Policy) {
	if p != c.policy {
		c.stats.PolicySwitches++
	}
	c.policy = p
}

// Stats returns a copy of the cumulative statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Capacity returns total capacity in blocks.
func (c *Cache) Capacity() int { return c.cfg.Sets * c.cfg.Ways }

// ValidCount returns the number of valid blocks.
func (c *Cache) ValidCount() int { return c.valid }

// DirtyCount returns the number of dirty blocks.
func (c *Cache) DirtyCount() int { return c.dirty }

// DirtyRatio returns dirty blocks over capacity.
func (c *Cache) DirtyRatio() float64 {
	return float64(c.dirty) / float64(c.Capacity())
}

// BlockSectors returns the cache block size in sectors.
func (c *Cache) BlockSectors() int64 { return c.cfg.BlockSectors }

// BlockOf returns the block number containing the given LBA.
func (c *Cache) BlockOf(lba int64) int64 { return lba / c.cfg.BlockSectors }

// BlockExtent returns the device extent of a cache block.
func (c *Cache) BlockExtent(blockNum int64) block.Extent {
	return block.Extent{LBA: blockNum * c.cfg.BlockSectors, Sectors: c.cfg.BlockSectors}
}

// blocksOf enumerates the block numbers an extent covers.
func (c *Cache) blocksOf(e block.Extent) (first, last int64) {
	return e.LBA / c.cfg.BlockSectors, (e.End() - 1) / c.cfg.BlockSectors
}

func (c *Cache) setOf(blockNum int64) []line {
	s := blockNum % int64(c.cfg.Sets)
	if s < 0 {
		s = -s
	}
	return c.sets[s]
}

// find returns the way holding blockNum, or nil.
func (c *Cache) find(blockNum int64) *line {
	set := c.setOf(blockNum)
	for i := range set {
		if set[i].tag == blockNum {
			return &set[i]
		}
	}
	return nil
}

// Contains reports whether blockNum is cached (valid).
func (c *Cache) Contains(blockNum int64) bool { return c.find(blockNum) != nil }

// DirtyIn reports whether any block covered by e is dirty — the safety
// check before a balancer re-routes a queued read to the disk tier (dirty
// data exists only on the SSD).
func (c *Cache) DirtyIn(e block.Extent) bool {
	first, last := c.blocksOf(e)
	for b := first; b <= last; b++ {
		if l := c.find(b); l != nil && l.dirty {
			return true
		}
	}
	return false
}

// touch refreshes LRU state.
func (c *Cache) touch(l *line) {
	c.tick++
	l.lastUse = c.tick
}

// allocate installs blockNum in its set, evicting the LRU victim if the set
// is full. Returns the line and, if an eviction occurred, the victim.
// Lines already present are returned as-is.
func (c *Cache) allocate(blockNum int64) (*line, *Victim) {
	if l := c.find(blockNum); l != nil {
		c.touch(l)
		return l, nil
	}
	set := c.setOf(blockNum)
	// Prefer an invalid way.
	var choice *line
	for i := range set {
		if set[i].tag == -1 {
			choice = &set[i]
			break
		}
	}
	var victim *Victim
	if choice == nil {
		choice = c.pickVictim(set)
		v := Victim{Block: choice.tag, Dirty: choice.dirty && !choice.flushing, Epoch: choice.epoch}
		victim = &v
		if choice.dirty {
			c.dirty--
			if v.Dirty {
				c.stats.DirtyEvicts++
			} else {
				c.stats.CleanEvicts++ // flush in flight covers persistence
			}
		} else {
			c.stats.CleanEvicts++
		}
		c.valid--
	}
	choice.tag = blockNum
	choice.dirty = false
	choice.flushing = false
	choice.epoch = 0
	c.valid++
	c.touch(choice)
	choice.loadedAt = c.tick
	return choice, victim
}

// pickVictim selects the way to evict per the configured replacement
// policy, preferring lines not mid-flush (their writeback is already in
// flight; evicting them as clean is safe but avoided when any alternative
// exists).
func (c *Cache) pickVictim(set []line) *line {
	score := func(l *line) uint64 {
		switch c.cfg.Replacement {
		case FIFO:
			return l.loadedAt
		case Random:
			// xorshift64*: cheap deterministic pseudo-randomness.
			c.rndSt ^= c.rndSt << 13
			c.rndSt ^= c.rndSt >> 7
			c.rndSt ^= c.rndSt << 17
			return c.rndSt
		default:
			return l.lastUse
		}
	}
	var best, bestAny *line
	var bestScore, bestAnyScore uint64
	for i := range set {
		l := &set[i]
		s := score(l)
		if bestAny == nil || s < bestAnyScore {
			bestAny, bestAnyScore = l, s
		}
		if !l.flushing && (best == nil || s < bestScore) {
			best, bestScore = l, s
		}
	}
	if best == nil {
		return bestAny
	}
	return best
}

// markDirty transitions a line to dirty.
func (c *Cache) markDirty(l *line) {
	if !l.dirty {
		l.dirty = true
		c.dirty++
	}
	l.flushing = false
	l.epoch++
}

// Access applies the current policy to one application request and returns
// the transfers the engine must issue. now is unused for decisions but
// stamped into nothing here — timing lives in the engine; it is accepted so
// future replacement policies can be recency-in-time based.
func (c *Cache) Access(op block.Op, e block.Extent, now time.Duration) Decision {
	if op == block.Read {
		return c.read(e)
	}
	return c.write(e)
}

func (c *Cache) read(e block.Extent) Decision {
	c.stats.Reads++
	first, last := c.blocksOf(e)
	allHit := true
	for b := first; b <= last; b++ {
		if l := c.find(b); l != nil {
			c.touch(l)
		} else {
			allHit = false
		}
	}
	if allHit {
		c.stats.ReadHits++
		return Decision{Hit: true, CacheRead: true}
	}
	c.stats.ReadMisses++
	d := Decision{DiskRead: true}
	// Promote on miss unless the policy forbids read allocation.
	if c.policy == WO || c.policy == WTWO {
		return d
	}
	d.Promote = true
	for b := first; b <= last; b++ {
		if c.find(b) != nil {
			continue
		}
		_, v := c.allocate(b)
		if v != nil {
			d.Victims = append(d.Victims, *v)
		}
	}
	c.stats.Promotes++
	return d
}

func (c *Cache) write(e block.Extent) Decision {
	c.stats.Writes++
	first, last := c.blocksOf(e)
	present := true
	for b := first; b <= last; b++ {
		if c.find(b) == nil {
			present = false
			break
		}
	}
	if present {
		c.stats.WriteHits++
	} else {
		c.stats.WriteMisses++
	}

	switch c.policy {
	case RO:
		// Writes bypass; drop any stale cached copy.
		for b := first; b <= last; b++ {
			c.invalidate(b)
		}
		return Decision{Hit: present, DiskWrite: true}
	case WB, WO:
		d := Decision{Hit: present, CacheWrite: true}
		for b := first; b <= last; b++ {
			l, v := c.allocate(b)
			c.markDirty(l)
			if v != nil {
				d.Victims = append(d.Victims, *v)
			}
		}
		return d
	default: // WT, WTWO — through-write, clean allocate
		d := Decision{Hit: present, CacheWrite: true, DiskWrite: true}
		for b := first; b <= last; b++ {
			l, v := c.allocate(b)
			if l.dirty {
				// A through-write over a previously dirty line cleans it:
				// the disk leg persists the latest data.
				l.dirty = false
				l.flushing = false
				c.dirty--
			}
			l.epoch++
			if v != nil {
				d.Victims = append(d.Victims, *v)
			}
		}
		return d
	}
}

// invalidate drops blockNum if cached. Dirty data is dropped too — callers
// only invalidate when the up-to-date data is on its way to the disk.
func (c *Cache) invalidate(blockNum int64) {
	l := c.find(blockNum)
	if l == nil {
		return
	}
	if l.dirty {
		c.dirty--
	}
	l.tag = -1
	l.dirty = false
	l.flushing = false
	c.valid--
	c.stats.Invalidations++
}

// Invalidate drops every cached block covered by e.
func (c *Cache) Invalidate(e block.Extent) {
	first, last := c.blocksOf(e)
	for b := first; b <= last; b++ {
		c.invalidate(b)
	}
}

// NoteBypass records a balancer-initiated bypass for accounting.
func (c *Cache) NoteBypass(op block.Op) {
	if op == block.Read {
		c.stats.BypassedReads++
	} else {
		c.stats.BypassedWr++
	}
}

// DirtyBlock identifies a dirty line picked for background flushing.
type DirtyBlock struct {
	Block int64
	Epoch uint64
}

// CollectDirty picks up to max dirty, non-flushing lines (oldest first
// within each set scan) and marks them flushing. The engine issues an SSD
// read (Evict) + HDD write (Writeback) per block and calls MarkClean when
// the writeback completes.
func (c *Cache) CollectDirty(max int) []DirtyBlock {
	if max <= 0 {
		return nil
	}
	out := make([]DirtyBlock, 0, max)
	for s := range c.sets {
		set := c.sets[s]
		for i := range set {
			l := &set[i]
			if l.tag >= 0 && l.dirty && !l.flushing {
				l.flushing = true
				c.stats.FlushesStarted++
				out = append(out, DirtyBlock{Block: l.tag, Epoch: l.epoch})
				if len(out) == max {
					return out
				}
			}
		}
	}
	return out
}

// MarkClean completes a flush: the line becomes clean unless it was
// rewritten (epoch advanced) or replaced since CollectDirty.
func (c *Cache) MarkClean(blockNum int64, epoch uint64) {
	l := c.find(blockNum)
	if l == nil || l.epoch != epoch {
		return
	}
	if l.dirty {
		l.dirty = false
		c.dirty--
		c.stats.Flushed++
	}
	l.flushing = false
}

// NeedsFlush reports whether the dirty ratio exceeds the high watermark.
func (c *Cache) NeedsFlush() bool {
	return c.DirtyRatio() > c.cfg.DirtyHighWatermark
}

// FlushSatisfied reports whether the dirty ratio is below the low
// watermark (the flusher's stop condition).
func (c *Cache) FlushSatisfied() bool {
	return c.DirtyRatio() < c.cfg.DirtyLowWatermark
}

// Prewarm installs the given blocks as valid and clean without generating
// I/O — the paper's "workload has passed its warm-up interval" assumption.
func (c *Cache) Prewarm(blocks []int64) {
	for _, b := range blocks {
		l, _ := c.allocate(b)
		_ = l
	}
}

// CheckInvariants validates internal consistency; tests call it after
// random operation sequences. It returns nil when consistent.
func (c *Cache) CheckInvariants() error {
	valid, dirty := 0, 0
	seen := make(map[int64]bool)
	for s := range c.sets {
		for i := range c.sets[s] {
			l := &c.sets[s][i]
			if l.tag == -1 {
				if l.dirty || l.flushing {
					return fmt.Errorf("invalid line with dirty/flushing state in set %d", s)
				}
				continue
			}
			if seen[l.tag] {
				return fmt.Errorf("block %d cached twice", l.tag)
			}
			seen[l.tag] = true
			if want := l.tag % int64(c.cfg.Sets); want != int64(s) {
				return fmt.Errorf("block %d in wrong set %d (want %d)", l.tag, s, want)
			}
			valid++
			if l.dirty {
				dirty++
			}
		}
	}
	if valid != c.valid {
		return fmt.Errorf("valid count %d != tracked %d", valid, c.valid)
	}
	if dirty != c.dirty {
		return fmt.Errorf("dirty count %d != tracked %d", dirty, c.dirty)
	}
	if dirty > valid {
		return fmt.Errorf("dirty %d exceeds valid %d", dirty, valid)
	}
	return nil
}
