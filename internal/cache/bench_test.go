package cache_test

import (
	"testing"
	"time"

	"lbica/internal/block"
	"lbica/internal/cache"
	"lbica/internal/perf"
)

// The hit and miss/evict benchmarks delegate to internal/perf so `go test
// -bench` and `lbicabench -perf` measure the exact same bodies.

func BenchmarkCacheReadHit(b *testing.B)       { perf.BenchCacheReadHit(b) }
func BenchmarkCacheReadMissEvict(b *testing.B) { perf.BenchCacheMissEvict(b) }

// BenchmarkCacheWriteDirtyEvict measures dirtying writes with dirty-victim
// eviction — the write-back worst case.
func BenchmarkCacheWriteDirtyEvict(b *testing.B) {
	c := cache.New(cache.Config{BlockSectors: 8, Sets: 1024, Ways: 8})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(block.Write, block.Extent{LBA: int64(i) * 8, Sectors: 8}, time.Duration(i))
	}
}

// BenchmarkCacheDirtyIn measures the balancer's re-route safety check.
func BenchmarkCacheDirtyIn(b *testing.B) {
	c := cache.New(cache.Config{BlockSectors: 8, Sets: 1024, Ways: 8})
	for i := int64(0); i < 8192; i++ {
		c.Access(block.Write, block.Extent{LBA: i * 8, Sectors: 8}, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := int64(i) % 16384
		c.DirtyIn(block.Extent{LBA: n * 8, Sectors: 8})
	}
}
