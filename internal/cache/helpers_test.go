package cache

import (
	"testing"

	"lbica/internal/block"
)

func TestBlockGeometryHelpers(t *testing.T) {
	c := New(Config{BlockSectors: 8, Sets: 4, Ways: 2})
	if c.BlockSectors() != 8 {
		t.Errorf("BlockSectors = %d", c.BlockSectors())
	}
	if c.BlockOf(17) != 2 {
		t.Errorf("BlockOf(17) = %d, want 2", c.BlockOf(17))
	}
	e := c.BlockExtent(3)
	if e.LBA != 24 || e.Sectors != 8 {
		t.Errorf("BlockExtent(3) = %v", e)
	}
	if c.Capacity() != 8 {
		t.Errorf("Capacity = %d", c.Capacity())
	}
}

func TestValidCountTracksContents(t *testing.T) {
	c := New(Config{BlockSectors: 8, Sets: 4, Ways: 2})
	if c.ValidCount() != 0 {
		t.Fatal("fresh cache not empty")
	}
	c.Prewarm([]int64{0, 1, 2})
	if c.ValidCount() != 3 {
		t.Errorf("valid = %d", c.ValidCount())
	}
	c.Invalidate(block.Extent{LBA: 0, Sectors: 8})
	if c.ValidCount() != 2 {
		t.Errorf("valid after invalidate = %d", c.ValidCount())
	}
}

func TestDirtyInHelper(t *testing.T) {
	c := New(Config{BlockSectors: 8, Sets: 4, Ways: 2})
	c.Access(block.Write, ext(0, 8), 0)
	c.Prewarm([]int64{1})
	if !c.DirtyIn(ext(0, 16)) {
		t.Error("extent covering a dirty block must report dirty")
	}
	if c.DirtyIn(ext(8, 8)) {
		t.Error("clean block reported dirty")
	}
	if c.DirtyIn(ext(64, 8)) {
		t.Error("uncached block reported dirty")
	}
}

func TestCollectDirtyZeroMax(t *testing.T) {
	c := New(Config{BlockSectors: 8, Sets: 4, Ways: 2})
	c.Access(block.Write, ext(0, 8), 0)
	if got := c.CollectDirty(0); got != nil {
		t.Errorf("CollectDirty(0) = %v", got)
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-set cache must panic")
		}
	}()
	New(Config{BlockSectors: 8, Sets: 0, Ways: 2})
}

func TestPolicyStringUnknown(t *testing.T) {
	if Policy(99).String() == "" {
		t.Error("unknown policy must still render")
	}
	if Replacement(99).String() == "" {
		t.Error("unknown replacement must still render")
	}
}

func TestNegativeLBAHandled(t *testing.T) {
	// Negative addresses never occur in the stack, but the set index must
	// not panic if one sneaks in via a hand-built request.
	c := New(Config{BlockSectors: 8, Sets: 4, Ways: 2})
	d := c.Access(block.Read, block.Extent{LBA: -8, Sectors: 8}, 0)
	if d.Hit {
		t.Error("negative-address read cannot hit")
	}
	if err := c.CheckInvariants(); err == nil {
		// A negative block lands in a set by absolute value; invariants
		// may flag the set mismatch — either way, no panic is the contract.
		_ = err
	}
}
