package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lbica/internal/block"
)

func small() *Cache {
	return New(Config{BlockSectors: 8, Sets: 16, Ways: 4})
}

func ext(lba, sectors int64) block.Extent { return block.Extent{LBA: lba, Sectors: sectors} }

func TestPolicyParseAndString(t *testing.T) {
	for _, p := range []Policy{WB, WT, RO, WO, WTWO} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round-trip %v failed: %v %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("unknown policy must error")
	}
	if p, err := ParsePolicy("wb"); err != nil || p != WB {
		t.Error("parse must be case-insensitive")
	}
}

func TestReadMissPromotesUnderWB(t *testing.T) {
	c := small()
	d := c.Access(block.Read, ext(0, 8), 0)
	if d.Hit || !d.DiskRead || !d.Promote || d.CacheRead {
		t.Fatalf("first read decision = %+v", d)
	}
	// Second read of the same block is a hit served from cache.
	d = c.Access(block.Read, ext(0, 8), 0)
	if !d.Hit || !d.CacheRead || d.DiskRead || d.Promote {
		t.Fatalf("re-read decision = %+v", d)
	}
	st := c.Stats()
	if st.ReadMisses != 1 || st.ReadHits != 1 || st.Promotes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWOSuppressesPromote(t *testing.T) {
	c := small()
	c.SetPolicy(WO)
	d := c.Access(block.Read, ext(0, 8), 0)
	if d.Promote || !d.DiskRead {
		t.Fatalf("WO read-miss decision = %+v", d)
	}
	if c.Contains(0) {
		t.Error("WO must not allocate on read miss")
	}
	// But a cached block still hits.
	c.Access(block.Write, ext(0, 8), 0) // WO writes allocate dirty
	d = c.Access(block.Read, ext(0, 8), 0)
	if !d.Hit || !d.CacheRead {
		t.Fatalf("WO hit decision = %+v", d)
	}
}

func TestWBWriteBuffersDirty(t *testing.T) {
	c := small()
	d := c.Access(block.Write, ext(0, 8), 0)
	if !d.CacheWrite || d.DiskWrite {
		t.Fatalf("WB write decision = %+v", d)
	}
	if c.DirtyCount() != 1 {
		t.Errorf("dirty = %d", c.DirtyCount())
	}
}

func TestWTWritesThroughClean(t *testing.T) {
	c := small()
	c.SetPolicy(WT)
	d := c.Access(block.Write, ext(0, 8), 0)
	if !d.CacheWrite || !d.DiskWrite {
		t.Fatalf("WT write decision = %+v", d)
	}
	if c.DirtyCount() != 0 {
		t.Errorf("WT left dirty blocks: %d", c.DirtyCount())
	}
	if !c.Contains(0) {
		t.Error("WT write must allocate")
	}
}

func TestWTCleansPreviouslyDirtyLine(t *testing.T) {
	c := small()
	c.Access(block.Write, ext(0, 8), 0) // WB dirty
	if c.DirtyCount() != 1 {
		t.Fatal("setup failed")
	}
	c.SetPolicy(WT)
	c.Access(block.Write, ext(0, 8), 0)
	if c.DirtyCount() != 0 {
		t.Errorf("through-write did not clean the line: dirty=%d", c.DirtyCount())
	}
}

func TestROWriteBypassesAndInvalidates(t *testing.T) {
	c := small()
	c.Access(block.Read, ext(0, 8), 0) // promote block 0
	if !c.Contains(0) {
		t.Fatal("setup failed")
	}
	c.SetPolicy(RO)
	d := c.Access(block.Write, ext(0, 8), 0)
	if d.CacheWrite || !d.DiskWrite {
		t.Fatalf("RO write decision = %+v", d)
	}
	if c.Contains(0) {
		t.Error("RO write must invalidate the cached copy")
	}
	if c.Stats().Invalidations != 1 {
		t.Errorf("invalidations = %d", c.Stats().Invalidations)
	}
	// RO read misses still promote.
	d = c.Access(block.Read, ext(64, 8), 0)
	if !d.Promote {
		t.Error("RO read miss must promote")
	}
}

func TestWTWOSemantics(t *testing.T) {
	c := small()
	c.SetPolicy(WTWO)
	// Reads never allocate.
	d := c.Access(block.Read, ext(0, 8), 0)
	if d.Promote || c.Contains(0) {
		t.Fatal("WTWO read miss must not promote")
	}
	// Writes allocate clean and write through.
	d = c.Access(block.Write, ext(0, 8), 0)
	if !d.CacheWrite || !d.DiskWrite {
		t.Fatalf("WTWO write decision = %+v", d)
	}
	if c.DirtyCount() != 0 {
		t.Error("WTWO writes must stay clean")
	}
	// Read-after-write hits in cache (SIB's one performance win).
	d = c.Access(block.Read, ext(0, 8), 0)
	if !d.Hit || !d.CacheRead {
		t.Fatalf("WTWO read-after-write = %+v", d)
	}
}

func TestEvictionLRUAndDirtyVictim(t *testing.T) {
	c := New(Config{BlockSectors: 8, Sets: 1, Ways: 2})
	c.Access(block.Write, ext(0, 8), 0)       // block 0 dirty
	c.Access(block.Write, ext(8, 8), 0)       // block 1 dirty
	c.Access(block.Read, ext(0, 8), 0)        // touch block 0 → block 1 is LRU
	d := c.Access(block.Write, ext(16, 8), 0) // block 2 → evict block 1
	if len(d.Victims) != 1 {
		t.Fatalf("victims = %v", d.Victims)
	}
	v := d.Victims[0]
	if v.Block != 1 || !v.Dirty {
		t.Errorf("victim = %+v, want dirty block 1", v)
	}
	if c.Contains(1) {
		t.Error("evicted block still cached")
	}
	if c.Stats().DirtyEvicts != 1 {
		t.Errorf("dirty evicts = %d", c.Stats().DirtyEvicts)
	}
}

func TestCleanEvictionCostsNoWriteback(t *testing.T) {
	c := New(Config{BlockSectors: 8, Sets: 1, Ways: 1})
	c.Access(block.Read, ext(0, 8), 0) // clean promote
	d := c.Access(block.Read, ext(8, 8), 0)
	if len(d.Victims) != 1 || d.Victims[0].Dirty {
		t.Fatalf("victims = %v, want one clean victim", d.Victims)
	}
}

func TestMultiBlockRequest(t *testing.T) {
	c := small()
	// 32 KiB request covers 8 cache blocks.
	d := c.Access(block.Write, ext(0, 64), 0)
	if !d.CacheWrite {
		t.Fatal("multi-block write not buffered")
	}
	if c.DirtyCount() != 8 {
		t.Errorf("dirty = %d, want 8", c.DirtyCount())
	}
	// Partially cached read is a miss.
	c2 := small()
	c2.Access(block.Read, ext(0, 8), 0)
	d = c2.Access(block.Read, ext(0, 16), 0)
	if d.Hit {
		t.Error("partially cached read must miss")
	}
}

func TestFlusherLifecycle(t *testing.T) {
	c := New(Config{BlockSectors: 8, Sets: 4, Ways: 4, DirtyHighWatermark: 0.3, DirtyLowWatermark: 0.1})
	for i := int64(0); i < 8; i++ {
		c.Access(block.Write, ext(i*8, 8), 0)
	}
	if !c.NeedsFlush() {
		t.Fatalf("dirty ratio %.2f should exceed high watermark", c.DirtyRatio())
	}
	batch := c.CollectDirty(4)
	if len(batch) != 4 {
		t.Fatalf("collected %d, want 4", len(batch))
	}
	// Collecting again must not return the same (now flushing) blocks.
	again := c.CollectDirty(100)
	for _, a := range again {
		for _, b := range batch {
			if a.Block == b.Block {
				t.Fatalf("block %d collected twice", a.Block)
			}
		}
	}
	for _, b := range batch {
		c.MarkClean(b.Block, b.Epoch)
	}
	if c.DirtyCount() != 4 {
		t.Errorf("dirty after flush = %d, want 4", c.DirtyCount())
	}
	if got := c.Stats().Flushed; got != 4 {
		t.Errorf("flushed = %d", got)
	}
}

func TestMarkCleanRespectsRewriteEpoch(t *testing.T) {
	c := small()
	c.Access(block.Write, ext(0, 8), 0)
	batch := c.CollectDirty(1)
	if len(batch) != 1 {
		t.Fatal("collect failed")
	}
	// Rewrite while flush is in flight: the line must stay dirty.
	c.Access(block.Write, ext(0, 8), 0)
	c.MarkClean(batch[0].Block, batch[0].Epoch)
	if c.DirtyCount() != 1 {
		t.Error("stale MarkClean cleaned a rewritten line")
	}
}

func TestMarkCleanOnEvictedLineIsNoop(t *testing.T) {
	c := New(Config{BlockSectors: 8, Sets: 1, Ways: 1})
	c.Access(block.Write, ext(0, 8), 0)
	batch := c.CollectDirty(1)
	c.Access(block.Write, ext(8, 8), 0) // evicts block 0
	c.MarkClean(batch[0].Block, batch[0].Epoch)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPrewarm(t *testing.T) {
	c := small()
	c.Prewarm([]int64{0, 1, 2, 3})
	if c.ValidCount() != 4 || c.DirtyCount() != 0 {
		t.Fatalf("prewarm valid=%d dirty=%d", c.ValidCount(), c.DirtyCount())
	}
	d := c.Access(block.Read, ext(0, 8), 0)
	if !d.Hit {
		t.Error("prewarmed block must hit")
	}
}

func TestInvalidateExtent(t *testing.T) {
	c := small()
	c.Prewarm([]int64{0, 1, 2})
	c.Invalidate(ext(0, 16)) // blocks 0 and 1
	if c.Contains(0) || c.Contains(1) || !c.Contains(2) {
		t.Error("extent invalidation wrong")
	}
}

func TestHitRatio(t *testing.T) {
	c := small()
	c.Access(block.Read, ext(0, 8), 0)   // miss
	c.Access(block.Read, ext(0, 8), 0)   // hit
	c.Access(block.Write, ext(0, 8), 0)  // write hit
	c.Access(block.Write, ext(64, 8), 0) // write miss
	if got := c.Stats().HitRatio(); got != 0.5 {
		t.Errorf("hit ratio = %v, want 0.5", got)
	}
}

func TestPolicySwitchCounting(t *testing.T) {
	c := small()
	c.SetPolicy(WO)
	c.SetPolicy(WO) // no-op
	c.SetPolicy(WB)
	if got := c.Stats().PolicySwitches; got != 2 {
		t.Errorf("policy switches = %d, want 2", got)
	}
}

// Property: after any random op sequence across policies, metadata
// invariants hold (no duplicate tags, dirty ⊆ valid, counters exact).
func TestInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(Config{BlockSectors: 8, Sets: 8, Ways: 2})
		policies := []Policy{WB, WT, RO, WO, WTWO}
		var inflight []DirtyBlock
		for i := 0; i < 500; i++ {
			switch r.Intn(12) {
			case 0:
				c.SetPolicy(policies[r.Intn(len(policies))])
			case 1:
				inflight = append(inflight, c.CollectDirty(1+r.Intn(3))...)
			case 2:
				if len(inflight) > 0 {
					b := inflight[0]
					inflight = inflight[1:]
					c.MarkClean(b.Block, b.Epoch)
				}
			case 3:
				c.Invalidate(ext(int64(r.Intn(64))*8, 8))
			default:
				op := block.Read
				if r.Intn(2) == 0 {
					op = block.Write
				}
				c.Access(op, ext(int64(r.Intn(64))*8, 8*int64(1+r.Intn(3))), 0)
			}
			if err := c.CheckInvariants(); err != nil {
				t.Logf("seed %d step %d: %v", seed, i, err)
				return false
			}
			if c.ValidCount() > c.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: a victim returned by Access is never still cached, and the
// evicting block is.
func TestEvictionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(Config{BlockSectors: 8, Sets: 2, Ways: 2})
		for i := 0; i < 200; i++ {
			blk := int64(r.Intn(32))
			d := c.Access(block.Write, ext(blk*8, 8), 0)
			for _, v := range d.Victims {
				if c.Contains(v.Block) {
					return false
				}
			}
			if !c.Contains(blk) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c := New(DefaultConfig())
	c.Prewarm([]int64{42})
	e := ext(42*8, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(block.Read, e, 0)
	}
}
