package cache

import (
	"testing"

	"lbica/internal/block"
)

// ExtractClean moves only resident clean lines: misses, dirty lines and
// mid-flush lines refuse, and a successful extraction is counted on its
// own MigratedOut stat — not as an invalidation.
func TestExtractCleanSemantics(t *testing.T) {
	c := New(Config{BlockSectors: 8, Sets: 4, Ways: 2})
	c.Prewarm([]int64{1, 2})
	c.Access(block.Write, ext(3*8, 8), 0) // block 3: dirty under WB

	if c.ExtractClean(99) {
		t.Error("extracted a non-resident block")
	}
	if c.ExtractClean(3) {
		t.Error("extracted a dirty block; its newest data lives only here")
	}
	before := c.Stats()
	if !c.ExtractClean(1) {
		t.Fatal("clean resident block refused extraction")
	}
	after := c.Stats()
	if after.MigratedOut != before.MigratedOut+1 {
		t.Errorf("MigratedOut %d, want %d", after.MigratedOut, before.MigratedOut+1)
	}
	if after.Invalidations != before.Invalidations {
		t.Error("migration counted as an invalidation")
	}
	if c.ExtractClean(1) {
		t.Error("extracted the same block twice")
	}
	if d := c.Access(block.Read, ext(1*8, 8), 0); d.Hit {
		t.Error("extracted block still hits")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A flushing line is pinned until its writeback lands: extraction must
// refuse mid-flight, then succeed once MarkClean retires the flush.
func TestExtractCleanRefusesFlushing(t *testing.T) {
	c := New(Config{BlockSectors: 8, Sets: 4, Ways: 2})
	c.Access(block.Write, ext(0, 8), 0)
	flush := c.CollectDirty(1)
	if len(flush) != 1 {
		t.Fatalf("CollectDirty = %v, want one block", flush)
	}
	if c.ExtractClean(flush[0].Block) {
		t.Fatal("extracted a line with an in-flight flush")
	}
	c.MarkClean(flush[0].Block, flush[0].Epoch)
	if !c.ExtractClean(flush[0].Block) {
		t.Fatal("flushed clean line refused extraction")
	}
}

// InsertClean installs a clean line, reports evicted victims so their
// writebacks can be issued, and no-ops on an already-resident block.
func TestInsertCleanSemantics(t *testing.T) {
	c := New(Config{BlockSectors: 8, Sets: 1, Ways: 2})
	if v := c.InsertClean(1); v != nil {
		t.Errorf("insert into empty set evicted %v", v)
	}
	if got := c.Stats().MigratedIn; got != 1 {
		t.Errorf("MigratedIn = %d, want 1", got)
	}
	if v := c.InsertClean(1); v != nil {
		t.Errorf("re-inserting a resident block evicted %v", v)
	}
	if got := c.Stats().MigratedIn; got != 2 {
		t.Errorf("MigratedIn = %d after resident re-insert, want 2 (arrivals reconcile with MigratedOut)", got)
	}
	if d := c.Access(block.Read, ext(1*8, 8), 0); !d.Hit {
		t.Error("inserted block does not hit")
	}

	// Fill the set, dirty one line, and insert over it: the dirty victim
	// must surface so the engine can issue its writeback.
	c.Access(block.Write, ext(2*8, 8), 0)
	c.Access(block.Read, ext(1*8, 8), 0) // block 2 is now LRU... after touching 1
	victims := c.InsertClean(3)
	if len(victims) != 1 || !victims[0].Dirty || victims[0].Block != 2 {
		t.Fatalf("InsertClean victims = %+v, want the dirty block 2", victims)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A full migration round-trips: extract from one cache, insert into
// another, and the line serves hits only at its new home.
func TestMigrationRoundTrip(t *testing.T) {
	src := New(Config{BlockSectors: 8, Sets: 4, Ways: 2})
	dst := New(Config{BlockSectors: 8, Sets: 4, Ways: 2})
	src.Prewarm([]int64{7})
	if !src.ExtractClean(7) {
		t.Fatal("extract failed")
	}
	dst.InsertClean(7)
	if d := src.Access(block.Read, ext(7*8, 8), 0); d.Hit {
		t.Error("source still hits after migration")
	}
	if d := dst.Access(block.Read, ext(7*8, 8), 0); !d.Hit {
		t.Error("destination misses after migration")
	}
	if src.Stats().MigratedOut != 1 || dst.Stats().MigratedIn != 1 {
		t.Errorf("stats: out %d in %d, want 1/1", src.Stats().MigratedOut, dst.Stats().MigratedIn)
	}
}
