package cache

import (
	"math/rand"
	"testing"

	"lbica/internal/block"
)

func TestParseReplacement(t *testing.T) {
	for _, r := range []Replacement{LRU, FIFO, Random} {
		got, err := ParseReplacement(r.String())
		if err != nil || got != r {
			t.Errorf("round trip %v: %v %v", r, got, err)
		}
	}
	if _, err := ParseReplacement("mru"); err == nil {
		t.Error("unknown replacement must error")
	}
}

func TestFIFOEvictsOldestResident(t *testing.T) {
	c := New(Config{BlockSectors: 8, Sets: 1, Ways: 2, Replacement: FIFO})
	c.Access(block.Write, ext(0, 8), 0) // block 0 resident first
	c.Access(block.Write, ext(8, 8), 0) // block 1
	// Re-touch block 0 repeatedly: FIFO must ignore recency.
	for i := 0; i < 5; i++ {
		c.Access(block.Read, ext(0, 8), 0)
	}
	d := c.Access(block.Write, ext(16, 8), 0)
	if len(d.Victims) != 1 || d.Victims[0].Block != 0 {
		t.Fatalf("FIFO victims = %v, want oldest-resident block 0", d.Victims)
	}
}

func TestLRUEvictsColdestUse(t *testing.T) {
	c := New(Config{BlockSectors: 8, Sets: 1, Ways: 2, Replacement: LRU})
	c.Access(block.Write, ext(0, 8), 0)
	c.Access(block.Write, ext(8, 8), 0)
	for i := 0; i < 5; i++ {
		c.Access(block.Read, ext(0, 8), 0)
	}
	d := c.Access(block.Write, ext(16, 8), 0)
	if len(d.Victims) != 1 || d.Victims[0].Block != 1 {
		t.Fatalf("LRU victims = %v, want cold block 1", d.Victims)
	}
}

func TestRandomReplacementIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []int64 {
		c := New(Config{BlockSectors: 8, Sets: 1, Ways: 4, Replacement: Random, ReplacementSeed: seed})
		var victims []int64
		for i := int64(0); i < 64; i++ {
			d := c.Access(block.Write, ext(i*8, 8), 0)
			for _, v := range d.Victims {
				victims = append(victims, v.Block)
			}
		}
		return victims
	}
	a, b := run(7), run(7)
	if len(a) == 0 {
		t.Fatal("no evictions")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different eviction sequences")
		}
	}
	cSeq := run(8)
	same := len(cSeq) == len(a)
	if same {
		for i := range a {
			if a[i] != cSeq[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical eviction sequences")
	}
}

// All replacement policies must uphold the metadata invariants under
// random operation mixes.
func TestReplacementInvariants(t *testing.T) {
	for _, repl := range []Replacement{LRU, FIFO, Random} {
		r := rand.New(rand.NewSource(int64(repl) + 100))
		c := New(Config{BlockSectors: 8, Sets: 4, Ways: 2, Replacement: repl})
		for i := 0; i < 1000; i++ {
			op := block.Read
			if r.Intn(2) == 0 {
				op = block.Write
			}
			c.Access(op, ext(int64(r.Intn(64))*8, 8), 0)
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("%v: step %d: %v", repl, i, err)
			}
		}
	}
}

// LRU should beat FIFO and Random on a skewed reuse pattern — the reason
// it is the default.
func TestLRUHitRatioAdvantage(t *testing.T) {
	hitRatio := func(repl Replacement) float64 {
		c := New(Config{BlockSectors: 8, Sets: 16, Ways: 4, Replacement: repl, ReplacementSeed: 1})
		r := rand.New(rand.NewSource(42))
		for i := 0; i < 20000; i++ {
			// 80% of accesses to a hot eighth of a working set 2× capacity.
			var blk int64
			if r.Intn(10) < 8 {
				blk = int64(r.Intn(16))
			} else {
				blk = int64(16 + r.Intn(112))
			}
			c.Access(block.Read, ext(blk*8, 8), 0)
		}
		return c.Stats().HitRatio()
	}
	lru, fifo, rnd := hitRatio(LRU), hitRatio(FIFO), hitRatio(Random)
	if lru <= fifo || lru <= rnd {
		t.Errorf("LRU %.3f not above FIFO %.3f and Random %.3f on a skewed pattern", lru, fifo, rnd)
	}
}
