package cache

import "lbica/internal/ckpt"

// EncodeState serializes the cache's mutable state: write policy, the
// tag/metadata arrays, the LRU tick, occupancy counters, statistics and
// the Random-replacement xorshift state. Geometry (cfg, ways, setMask)
// is excluded — it is a pure function of the configuration the restoring
// side rebuilds from, and the array lengths cross-check it on decode.
// The victims scratch buffer is transient per Access call and skipped,
// exactly as Clone drops it.
func (c *Cache) EncodeState(enc *ckpt.Encoder) {
	enc.Section("cache.Cache")
	enc.U8(uint8(c.policy))
	enc.U32(uint32(len(c.tags)))
	for _, t := range c.tags {
		enc.I64(t)
	}
	for _, m := range c.meta {
		enc.U64(m.epoch)
		enc.U64(m.lastUse)
		enc.U64(m.loadedAt)
		enc.Bool(m.dirty)
		enc.Bool(m.flushing)
	}
	enc.U64(c.tick)
	enc.Int(c.dirty)
	enc.Int(c.valid)
	enc.U64(c.rndSt)
	c.stats.EncodeState(enc)
}

// DecodeState restores the cache in place. The line count must match the
// freshly built geometry: a checkpoint for a different cache size is
// corrupt relative to this configuration.
func (c *Cache) DecodeState(d *ckpt.Decoder) {
	d.Section("cache.Cache")
	policy := Policy(d.U8())
	n := d.Count(8)
	if d.Err() != nil {
		return
	}
	if n != len(c.tags) {
		d.Failf("cache line count %d differs from geometry %d", n, len(c.tags))
		return
	}
	tags := make([]int64, n)
	for i := range tags {
		tags[i] = d.I64()
	}
	meta := make([]lineMeta, n)
	for i := range meta {
		meta[i] = lineMeta{
			epoch:    d.U64(),
			lastUse:  d.U64(),
			loadedAt: d.U64(),
			dirty:    d.Bool(),
			flushing: d.Bool(),
		}
	}
	tick := d.U64()
	dirty := d.Int()
	valid := d.Int()
	rndSt := d.U64()
	var stats Stats
	stats.DecodeState(d)
	if d.Err() != nil {
		return
	}
	if dirty < 0 || dirty > n || valid < 0 || valid > n {
		d.Failf("corrupt cache occupancy (dirty %d, valid %d, lines %d)", dirty, valid, n)
		return
	}
	c.policy = policy
	c.tags = tags
	c.meta = meta
	c.tick = tick
	c.dirty = dirty
	c.valid = valid
	c.rndSt = rndSt
	c.stats = stats
	c.victims = nil
}

// EncodeState serializes the counter block.
func (s *Stats) EncodeState(enc *ckpt.Encoder) {
	for _, v := range s.fields() {
		enc.U64(*v)
	}
}

// DecodeState restores the counter block.
func (s *Stats) DecodeState(d *ckpt.Decoder) {
	for _, v := range s.fields() {
		*v = d.U64()
	}
}

// fields enumerates the counters in wire order. New counters append here
// (and bump the checkpoint format version).
func (s *Stats) fields() []*uint64 {
	return []*uint64{
		&s.Reads, &s.Writes,
		&s.ReadHits, &s.ReadMisses,
		&s.WriteHits, &s.WriteMisses,
		&s.Promotes,
		&s.CleanEvicts, &s.DirtyEvicts,
		&s.Invalidations,
		&s.FlushesStarted, &s.Flushed,
		&s.PolicySwitches,
		&s.BypassedReads, &s.BypassedWr,
		&s.MigratedOut, &s.MigratedIn,
	}
}
