package stats

import "time"

// Merge/reduce primitives for combining per-shard statistics into
// array-level aggregates. Every reducer here folds in the order its input
// slice presents — callers that need permutation-invariant output (the
// array layer's per-volume merge) sort their inputs by a stable key first,
// which turns "deterministic for one order" into "identical bytes for any
// order".

// WeightedMean accumulates value×weight pairs — the reducer behind
// array-level latency averages, where each volume's per-interval mean must
// count in proportion to how many requests it served. The zero value is an
// empty accumulator ready to use.
type WeightedMean struct {
	sum    float64
	weight float64
}

// Add folds in one value with the given non-negative weight. Zero-weight
// observations contribute nothing (an idle volume's "mean of no requests"
// must not drag the array mean toward zero).
func (m *WeightedMean) Add(v, weight float64) {
	if weight <= 0 {
		return
	}
	m.sum += v * weight
	m.weight += weight
}

// AddDuration folds a duration in as nanoseconds.
func (m *WeightedMean) AddDuration(d time.Duration, weight float64) {
	m.Add(float64(d), weight)
}

// Weight returns the total weight folded in.
func (m *WeightedMean) Weight() float64 { return m.weight }

// Mean returns the weighted mean (0 when no weight has been added).
func (m *WeightedMean) Mean() float64 {
	if m.weight == 0 {
		return 0
	}
	return m.sum / m.weight
}

// Duration returns the weighted mean as a duration.
func (m *WeightedMean) Duration() time.Duration { return time.Duration(m.Mean()) }

// MergeHistograms folds a set of histograms into a fresh one, skipping nil
// entries. The fold runs in slice order; histogram merging sums counts and
// float totals, so for inputs pre-sorted by a stable key the result is
// identical whatever order the histograms were produced in.
func MergeHistograms(hs []*Histogram) *Histogram {
	out := NewHistogram()
	for _, h := range hs {
		out.Merge(h)
	}
	return out
}

// SumSeries reduces same-shaped series point-wise: the result has one
// point per interval present in any input, valued at the sum of the
// inputs' values there. Interval axes are merged as a union, so shards
// that stopped early (a cancelled volume) still contribute the intervals
// they finished. At/timestamps take the maximum across inputs (the
// interval is closed when its last shard closes it).
func SumSeries(name string, in []*Series) *Series {
	return reduceSeries(name, in, func(acc, v float64) float64 { return acc + v })
}

// MaxSeries reduces same-shaped series point-wise to the per-interval
// maximum — the "worst volume" view an array-level load curve wants.
func MaxSeries(name string, in []*Series) *Series {
	return reduceSeries(name, in, func(acc, v float64) float64 {
		if v > acc {
			return v
		}
		return acc
	})
}

func reduceSeries(name string, in []*Series, fold func(acc, v float64) float64) *Series {
	type slot struct {
		at    time.Duration
		value float64
		seen  bool
	}
	slots := map[int]*slot{}
	maxIv := -1
	for _, s := range in {
		if s == nil {
			continue
		}
		for _, p := range s.Points {
			sl := slots[p.Interval]
			if sl == nil {
				sl = &slot{}
				slots[p.Interval] = sl
				if p.Interval > maxIv {
					maxIv = p.Interval
				}
			}
			if p.At > sl.at {
				sl.at = p.At
			}
			if !sl.seen {
				sl.value, sl.seen = p.Value, true
			} else {
				sl.value = fold(sl.value, p.Value)
			}
		}
	}
	out := &Series{Name: name}
	for iv := 0; iv <= maxIv; iv++ {
		if sl, ok := slots[iv]; ok {
			out.Append(iv, sl.at, sl.value)
		}
	}
	return out
}
