package stats

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func TestWeightedMean(t *testing.T) {
	var m WeightedMean
	if m.Mean() != 0 || m.Duration() != 0 {
		t.Fatal("zero accumulator should report 0")
	}
	m.Add(10, 1)
	m.Add(20, 3)
	if got, want := m.Mean(), 17.5; got != want {
		t.Errorf("Mean() = %v, want %v", got, want)
	}
	if got, want := m.Weight(), 4.0; got != want {
		t.Errorf("Weight() = %v, want %v", got, want)
	}
	// Zero and negative weights contribute nothing.
	m.Add(1e9, 0)
	m.Add(1e9, -2)
	if got := m.Mean(); got != 17.5 {
		t.Errorf("zero-weight Add changed the mean: %v", got)
	}
	var d WeightedMean
	d.AddDuration(100*time.Microsecond, 1)
	d.AddDuration(300*time.Microsecond, 1)
	if got, want := d.Duration(), 200*time.Microsecond; got != want {
		t.Errorf("Duration() = %v, want %v", got, want)
	}
}

func TestMergeHistograms(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 100; i++ {
		a.Record(time.Duration(i) * time.Microsecond)
		b.Record(time.Duration(i) * time.Millisecond)
	}
	merged := MergeHistograms([]*Histogram{a, nil, b})
	if got, want := merged.Count(), a.Count()+b.Count(); got != want {
		t.Fatalf("merged count %d, want %d", got, want)
	}
	if merged.Min() != a.Min() || merged.Max() != b.Max() {
		t.Errorf("merged min/max %v/%v, want %v/%v", merged.Min(), merged.Max(), a.Min(), b.Max())
	}
	if got, want := merged.Mean(), (a.Mean()+b.Mean())/2; got != want {
		t.Errorf("merged mean %v, want %v", got, want)
	}
	// Merging an empty set yields a usable empty histogram, not nil.
	empty := MergeHistograms(nil)
	if empty == nil || empty.Count() != 0 {
		t.Fatalf("MergeHistograms(nil) = %v", empty)
	}
	empty.Record(time.Second) // must not panic: counts must be allocated
}

func TestSumAndMaxSeries(t *testing.T) {
	mk := func(vals ...float64) *Series {
		s := &Series{Name: "in"}
		for i, v := range vals {
			s.Append(i, time.Duration(i+1)*time.Second, v)
		}
		return s
	}
	a := mk(1, 2, 3)
	b := mk(10, 20) // shorter: a cancelled shard's partial series

	sum := SumSeries("sum", []*Series{a, nil, b})
	if got, want := sum.Points, []Point{
		{0, time.Second, 11}, {1, 2 * time.Second, 22}, {2, 3 * time.Second, 3},
	}; !reflect.DeepEqual(got, want) {
		t.Errorf("SumSeries = %+v, want %+v", got, want)
	}
	max := MaxSeries("max", []*Series{a, b})
	if got, want := max.Points, []Point{
		{0, time.Second, 10}, {1, 2 * time.Second, 20}, {2, 3 * time.Second, 3},
	}; !reflect.DeepEqual(got, want) {
		t.Errorf("MaxSeries = %+v, want %+v", got, want)
	}
}

// Reducing pre-sorted inputs must not depend on which shard produced which
// series: summing permutations of integer-valued series yields identical
// points (the array merge sorts by volume before folding, so this is the
// exact contract it relies on).
func TestReduceSeriesPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := make([]*Series, 5)
	for v := range base {
		s := &Series{Name: "shard"}
		for i := 0; i < 20; i++ {
			s.Append(i, time.Duration(i)*time.Second, float64(rng.Intn(1000)))
		}
		base[v] = s
	}
	want := SumSeries("sum", base)
	for trial := 0; trial < 10; trial++ {
		perm := append([]*Series(nil), base...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got := SumSeries("sum", perm)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: permuted sum differs:\n got %+v\nwant %+v", trial, got, want)
		}
	}
}
