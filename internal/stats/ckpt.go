package stats

import "lbica/internal/ckpt"

// EncodeState serializes the accumulator.
func (w *Welford) EncodeState(enc *ckpt.Encoder) {
	enc.U64(w.n)
	enc.F64(w.mean)
	enc.F64(w.m2)
	enc.F64(w.min)
	enc.F64(w.max)
}

// DecodeState restores the accumulator in place.
func (w *Welford) DecodeState(d *ckpt.Decoder) {
	w.n = d.U64()
	w.mean = d.F64()
	w.m2 = d.F64()
	w.min = d.F64()
	w.max = d.F64()
}

// EncodeState serializes the filter (Alpha included: it is part of the
// filter's identity and round-tripping it keeps the codec self-contained).
func (e *EWMA) EncodeState(enc *ckpt.Encoder) {
	enc.F64(e.Alpha)
	enc.F64(e.level)
	enc.Bool(e.seen)
}

// DecodeState restores the filter in place.
func (e *EWMA) DecodeState(d *ckpt.Decoder) {
	e.Alpha = d.F64()
	e.level = d.F64()
	e.seen = d.Bool()
}

// EncodeState serializes the histogram.
func (h *Histogram) EncodeState(enc *ckpt.Encoder) {
	enc.U32(uint32(len(h.counts)))
	for _, c := range h.counts {
		enc.U64(c)
	}
	enc.U64(h.total)
	enc.F64(h.sum)
	enc.Duration(h.max)
	enc.Duration(h.min)
}

// DecodeState restores the histogram in place. The bucket count is fixed
// by the layout, so a checkpoint with a different count is corrupt.
func (h *Histogram) DecodeState(d *ckpt.Decoder) {
	n := d.Count(8)
	if d.Err() != nil {
		return
	}
	if n != len(h.counts) {
		d.Failf("histogram bucket count %d differs from layout %d", n, len(h.counts))
		return
	}
	for i := range h.counts {
		h.counts[i] = d.U64()
	}
	h.total = d.U64()
	h.sum = d.F64()
	h.max = d.Duration()
	h.min = d.Duration()
}
