package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Point is one interval sample in a time series.
type Point struct {
	Interval int           // interval index, 0-based
	At       time.Duration // virtual time of the sample (interval end)
	Value    float64
}

// Series is an append-only per-interval series of one metric.
type Series struct {
	Name   string
	Points []Point
}

// Append adds a point. Interval indexes are expected to be nondecreasing.
func (s *Series) Append(interval int, at time.Duration, v float64) {
	s.Points = append(s.Points, Point{Interval: interval, At: at, Value: v})
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Value returns the value at interval i, or 0 if absent.
func (s *Series) Value(i int) float64 {
	for _, p := range s.Points {
		if p.Interval == i {
			return p.Value
		}
	}
	return 0
}

// Mean returns the mean of all point values (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.Value
	}
	return sum / float64(len(s.Points))
}

// Max returns the largest point value (0 when empty).
func (s *Series) Max() float64 {
	var m float64
	for i, p := range s.Points {
		if i == 0 || p.Value > m {
			m = p.Value
		}
	}
	return m
}

// SeriesSet is a named collection of series sharing the interval axis —
// one figure's worth of curves.
type SeriesSet struct {
	Title  string
	series map[string]*Series
	order  []string
}

// NewSeriesSet returns an empty set.
func NewSeriesSet(title string) *SeriesSet {
	return &SeriesSet{Title: title, series: make(map[string]*Series)}
}

// Get returns the named series, creating it on first use.
func (ss *SeriesSet) Get(name string) *Series {
	if s, ok := ss.series[name]; ok {
		return s
	}
	s := &Series{Name: name}
	ss.series[name] = s
	ss.order = append(ss.order, name)
	return s
}

// Names returns series names in creation order.
func (ss *SeriesSet) Names() []string {
	out := make([]string, len(ss.order))
	copy(out, ss.order)
	return out
}

// WriteCSV emits "interval,<name1>,<name2>,..." rows. Intervals are the
// union across series; missing values render empty.
func (ss *SeriesSet) WriteCSV(w io.Writer) error {
	return ss.WriteCSVWith(w, nil, nil)
}

// WriteCSVWith is WriteCSV with extra trailing columns: extraCols names
// them and extra(interval) supplies their values per row — the hook that
// lets callers interleave categorical columns (a balancer's group/policy
// timeline, say) with the numeric series without reimplementing the
// writer. Both may be nil. Extra values are emitted verbatim, so they
// must not contain CSV metacharacters.
func (ss *SeriesSet) WriteCSVWith(w io.Writer, extraCols []string, extra func(interval int) []string) error {
	intervals := map[int]bool{}
	for _, name := range ss.order {
		for _, p := range ss.series[name].Points {
			intervals[p.Interval] = true
		}
	}
	keys := make([]int, 0, len(intervals))
	for k := range intervals {
		keys = append(keys, k)
	}
	sort.Ints(keys)

	header := append([]string{"interval"}, ss.order...)
	header = append(header, extraCols...)
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	// Index points per series for O(1) row assembly.
	idx := make(map[string]map[int]float64, len(ss.order))
	for _, name := range ss.order {
		m := make(map[int]float64)
		for _, p := range ss.series[name].Points {
			m[p.Interval] = p.Value
		}
		idx[name] = m
	}
	for _, iv := range keys {
		row := make([]string, 0, len(header))
		row = append(row, fmt.Sprintf("%d", iv))
		for _, name := range ss.order {
			if v, ok := idx[name][iv]; ok {
				row = append(row, fmt.Sprintf("%.3f", v))
			} else {
				row = append(row, "")
			}
		}
		if extra != nil {
			row = append(row, extra(iv)...)
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// PercentChange returns 100*(from-to)/from — the "reduction" convention the
// paper uses (positive = to is lower/better). Returns 0 when from is 0.
func PercentChange(from, to float64) float64 {
	if from == 0 {
		return 0
	}
	return 100 * (from - to) / from
}
