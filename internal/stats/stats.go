// Package stats provides the metric primitives the monitors and experiment
// harness build on: running mean/variance (Welford), exponentially weighted
// moving averages, log-bucketed latency histograms with quantiles, and
// per-interval time series.
package stats

import (
	"fmt"
	"math"
	"time"
)

// Welford accumulates a running mean and variance in one pass. The zero
// value is an empty accumulator ready to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// AddDuration folds a duration in as nanoseconds.
func (w *Welford) AddDuration(d time.Duration) { w.Add(float64(d)) }

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// MeanDuration returns the mean as a duration.
func (w *Welford) MeanDuration() time.Duration { return time.Duration(w.mean) }

// Var returns the unbiased sample variance (0 for fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max
}

// MaxDuration returns Max as a duration.
func (w *Welford) MaxDuration() time.Duration { return time.Duration(w.Max()) }

// Reset empties the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// EWMA is an exponentially weighted moving average. Alpha in (0,1] is the
// weight of each new sample; the first sample initializes the level.
type EWMA struct {
	Alpha float64
	level float64
	seen  bool
}

// Add folds one observation in.
func (e *EWMA) Add(x float64) {
	if !e.seen {
		e.level = x
		e.seen = true
		return
	}
	e.level = e.Alpha*x + (1-e.Alpha)*e.level
}

// AddDuration folds a duration in as nanoseconds.
func (e *EWMA) AddDuration(d time.Duration) { e.Add(float64(d)) }

// Value returns the current level (0 before any sample).
func (e *EWMA) Value() float64 { return e.level }

// Duration returns the level as a duration.
func (e *EWMA) Duration() time.Duration { return time.Duration(e.level) }

// Initialized reports whether at least one sample has been folded in.
func (e *EWMA) Initialized() bool { return e.seen }

// Reset clears the level.
func (e *EWMA) Reset() { e.level, e.seen = 0, false }

// Histogram is a log-bucketed latency histogram covering [1ns, ~18h] with
// a fixed number of sub-buckets per power of two, HDR-histogram style. It
// trades a bounded relative error (~1/subBuckets) for O(1) record and
// O(buckets) quantile.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    float64
	max    time.Duration
	min    time.Duration
}

const histSubBuckets = 32 // per power of two; ~3% relative error

func histBucketCount() int { return 64 * histSubBuckets }

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, histBucketCount())}
}

// Clone returns an independent deep copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	h2 := *h
	h2.counts = append([]uint64(nil), h.counts...)
	return &h2
}

func histIndex(d time.Duration) int {
	if d < 1 {
		d = 1
	}
	v := uint64(d)
	exp := 63 - leadingZeros64(v)
	var sub uint64
	if exp > 5 {
		sub = (v >> (uint(exp) - 5)) & (histSubBuckets - 1)
	} else {
		sub = v & (histSubBuckets - 1)
	}
	idx := exp*histSubBuckets + int(sub)
	if idx >= histBucketCount() {
		idx = histBucketCount() - 1
	}
	return idx
}

func leadingZeros64(v uint64) int {
	n := 0
	if v == 0 {
		return 64
	}
	for v&(1<<63) == 0 {
		v <<= 1
		n++
	}
	return n
}

// bucketLow returns the smallest duration that maps to bucket idx.
func bucketLow(idx int) time.Duration {
	exp := idx / histSubBuckets
	sub := idx % histSubBuckets
	if exp <= 5 {
		// Degenerate small range where values map near-directly.
		return time.Duration(uint64(exp)<<5 | uint64(sub))
	}
	base := uint64(1) << uint(exp)
	return time.Duration(base | uint64(sub)<<(uint(exp)-5))
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if h.total == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.counts[histIndex(d)]++
	h.total++
	h.sum += float64(d)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the exact mean of recorded values (not bucket-quantized).
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.total))
}

// Max returns the largest recorded value, exact.
func (h *Histogram) Max() time.Duration { return h.max }

// Min returns the smallest recorded value, exact.
func (h *Histogram) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Quantile returns an approximation of the q-quantile (q in [0,1]). The
// result carries the bucket's lower-bound resolution (~3% relative error).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			lo := bucketLow(i)
			if lo < h.min {
				lo = h.min
			}
			if lo > h.max {
				lo = h.max
			}
			return lo
		}
	}
	return h.max
}

// Merge folds another histogram into this one.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
}

// Reset empties the histogram.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum, h.max, h.min = 0, 0, 0, 0
}

func (h *Histogram) String() string {
	return fmt.Sprintf("hist(n=%d mean=%v p50=%v p99=%v max=%v)",
		h.total, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.max)
}

// tTable95 holds the two-sided 95% Student-t critical values for 1..30
// degrees of freedom; past the table the normal-approximation 1.96 is
// close enough (the n=31 value is 2.040).
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// HalfWidth95 returns the half-width of the two-sided 95% Student-t
// confidence interval for the mean of vals: t(n−1) · s/√n with s the
// sample standard deviation. Fewer than two values carry no interval —
// the half-width is +Inf, so a "tight enough?" comparison against any
// finite tolerance is false.
func HalfWidth95(vals []float64) float64 {
	n := len(vals)
	if n < 2 {
		return math.Inf(1)
	}
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(n)
	ss := 0.0
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	t := 1.96
	if df := n - 1; df <= len(tTable95) {
		t = tTable95[df-1]
	}
	return t * math.Sqrt(ss/float64(n-1)) / math.Sqrt(float64(n))
}
