package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestWelfordAgainstClosedForm(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("count = %d", w.Count())
	}
	if w.Mean() != 5 {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if got, want := w.Var(), 32.0/7.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("var = %v, want %v", got, want)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Error("empty welford must read as zeros")
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Add(10)
	w.Reset()
	if w.Count() != 0 || w.Mean() != 0 {
		t.Error("reset did not clear state")
	}
}

func TestEWMAConverges(t *testing.T) {
	e := EWMA{Alpha: 0.3}
	for i := 0; i < 100; i++ {
		e.Add(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Errorf("EWMA of constant = %v, want 42", e.Value())
	}
}

func TestEWMAFirstSampleInitializes(t *testing.T) {
	e := EWMA{Alpha: 0.1}
	e.Add(100)
	if e.Value() != 100 {
		t.Errorf("first sample level = %v, want 100", e.Value())
	}
	if !e.Initialized() {
		t.Error("Initialized() false after Add")
	}
}

func TestEWMATracksShift(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	e.Add(0)
	for i := 0; i < 20; i++ {
		e.Add(100)
	}
	if e.Value() < 99 {
		t.Errorf("EWMA slow to track: %v", e.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != time.Microsecond || h.Max() != time.Millisecond {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	wantMean := 500500 * time.Nanosecond
	if got := h.Mean(); got != time.Duration(wantMean) {
		t.Errorf("mean = %v, want %v", got, wantMean)
	}
	p50 := h.Quantile(0.5)
	if p50 < 450*time.Microsecond || p50 > 550*time.Microsecond {
		t.Errorf("p50 = %v, want ~500µs", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900*time.Microsecond || p99 > time.Millisecond {
		t.Errorf("p99 = %v, want ~990µs", p99)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	h.Record(time.Second)
	if h.Quantile(0) != time.Second || h.Quantile(1) != time.Second {
		t.Error("single-sample quantiles must equal the sample")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(time.Millisecond)
	b.Record(3 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 2 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 3*time.Millisecond || a.Min() != time.Millisecond {
		t.Errorf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	if a.Mean() != 2*time.Millisecond {
		t.Errorf("merged mean = %v", a.Mean())
	}
	a.Merge(nil) // must not panic
}

// Property: quantiles are monotone in q and always within [min, max].
func TestHistogramQuantileProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		n := 100 + r.Intn(400)
		for i := 0; i < n; i++ {
			h.Record(time.Duration(1 + r.Int63n(int64(10*time.Second))))
		}
		last := time.Duration(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < h.Min() || v > h.Max() || v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: bucket relative error stays within ~2/subBuckets for values
// across the full range.
func TestHistogramResolutionProperty(t *testing.T) {
	f := func(v uint32) bool {
		d := time.Duration(v) + 1
		h := NewHistogram()
		h.Record(d)
		got := h.Quantile(0.5)
		// Quantile clamps to [min,max]; with one sample it must be exact.
		return got == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSeriesBasics(t *testing.T) {
	var s Series
	s.Append(0, 0, 10)
	s.Append(1, time.Second, 20)
	s.Append(2, 2*time.Second, 30)
	if s.Mean() != 20 {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Max() != 30 {
		t.Errorf("max = %v", s.Max())
	}
	if s.Value(1) != 20 || s.Value(99) != 0 {
		t.Error("Value lookup wrong")
	}
}

func TestSeriesSetCSV(t *testing.T) {
	ss := NewSeriesSet("fig")
	ss.Get("WB").Append(0, 0, 1.5)
	ss.Get("WB").Append(1, 0, 2.5)
	ss.Get("LBICA").Append(0, 0, 0.5)
	var sb strings.Builder
	if err := ss.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if lines[0] != "interval,WB,LBICA" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("rows = %d, want 3:\n%s", len(lines), got)
	}
	if !strings.HasPrefix(lines[1], "0,1.500,0.500") {
		t.Errorf("row 0 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "1,2.500,") {
		t.Errorf("row 1 = %q", lines[2])
	}
}

func TestPercentChange(t *testing.T) {
	if got := PercentChange(200, 100); got != 50 {
		t.Errorf("PercentChange(200,100) = %v", got)
	}
	if got := PercentChange(0, 100); got != 0 {
		t.Errorf("PercentChange(0,100) = %v", got)
	}
	if got := PercentChange(100, 130); got != -30 {
		t.Errorf("PercentChange(100,130) = %v", got)
	}
}

func TestWelfordDurationHelpers(t *testing.T) {
	var w Welford
	w.AddDuration(time.Millisecond)
	w.AddDuration(3 * time.Millisecond)
	if w.MeanDuration() != 2*time.Millisecond {
		t.Errorf("mean duration = %v", w.MeanDuration())
	}
	if w.MaxDuration() != 3*time.Millisecond {
		t.Errorf("max duration = %v", w.MaxDuration())
	}
	if w.Stddev() <= 0 {
		t.Error("stddev missing")
	}
}

func TestEWMADurationHelpers(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	e.AddDuration(time.Second)
	if e.Duration() != time.Second {
		t.Errorf("duration = %v", e.Duration())
	}
	e.Reset()
	if e.Initialized() || e.Value() != 0 {
		t.Error("reset failed")
	}
}

func TestHistogramResetAndString(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Second)
	if h.String() == "" {
		t.Error("String empty")
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Error("reset incomplete")
	}
	// Reuse after reset works.
	h.Record(time.Millisecond)
	if h.Count() != 1 || h.Mean() != time.Millisecond {
		t.Error("histogram unusable after reset")
	}
}

func TestHistogramMergeIntoEmpty(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	b.Record(5 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 1 || a.Min() != 5*time.Millisecond {
		t.Errorf("merge into empty: n=%d min=%v", a.Count(), a.Min())
	}
}

func TestSeriesSetNames(t *testing.T) {
	ss := NewSeriesSet("t")
	ss.Get("b")
	ss.Get("a")
	ss.Get("b") // repeat must not duplicate
	names := ss.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Errorf("names = %v, want creation order [b a]", names)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i%1000000 + 1))
	}
}
