package sim

import (
	"math/rand"

	"lbica/internal/ckpt"
)

// maxRNGReplay caps the draw count a checkpoint may ask a stream to
// replay. Restoring an RNG is O(draws so far), so a hostile count would
// turn decode into a CPU sink; 1<<27 raw draws (well past any real
// warmup prefix) decode in under a second.
const maxRNGReplay = 1 << 27

// EncodeState serializes the kernel: clock, sequence counter, firing
// count, the slot arena (generations and lifecycle states — callbacks
// are closures and never serialized; owners re-install them through
// Rebind after decode, exactly as after CloneCore), the free-list, and
// the heap entries byte for byte. Because the heap's (time, seq, slot,
// generation) tuples round-trip exactly, the restored engine's firing
// order is identical by construction.
func (e *Engine) EncodeState(enc *ckpt.Encoder) {
	enc.Section("sim.Engine")
	enc.Duration(e.now)
	enc.U64(e.seq)
	enc.U64(e.fired)
	enc.Int(e.dead)
	enc.U32(uint32(len(e.slots)))
	for i := range e.slots {
		enc.U32(e.slots[i].gen)
		enc.U8(uint8(e.slots[i].state))
	}
	enc.U32(uint32(len(e.free)))
	for _, idx := range e.free {
		enc.I32(idx)
	}
	enc.U32(uint32(len(e.heap)))
	for _, ent := range e.heap {
		enc.Duration(ent.at)
		enc.U64(ent.seq)
		enc.I32(ent.slot)
		enc.U32(ent.gen)
	}
}

// DecodeState restores the kernel in place, overwriting the engine's
// arena, free-list and heap wholesale. The engine pointer itself is
// untouched, so closures a freshly built stack captured over it stay
// valid — every pending slot's callback is nil afterwards, awaiting its
// owner's Rebind (UnboundEvents counts the stragglers).
func (e *Engine) DecodeState(d *ckpt.Decoder) {
	d.Section("sim.Engine")
	now := d.Duration()
	seq := d.U64()
	fired := d.U64()
	dead := d.Int()
	nSlots := d.Count(5)
	slots := make([]slot, nSlots)
	for i := range slots {
		slots[i] = slot{gen: d.U32(), state: slotState(d.U8())}
		if slots[i].state > slotDead {
			d.Failf("slot %d has invalid state %d", i, slots[i].state)
			return
		}
	}
	nFree := d.Count(4)
	free := make([]int32, nFree)
	for i := range free {
		free[i] = d.I32()
		if free[i] < 0 || int(free[i]) >= nSlots {
			d.Failf("free-list slot %d out of range (arena %d)", free[i], nSlots)
			return
		}
	}
	nHeap := d.Count(24)
	heap := make([]heapEnt, nHeap)
	for i := range heap {
		heap[i] = heapEnt{at: d.Duration(), seq: d.U64(), slot: d.I32(), gen: d.U32()}
		if heap[i].slot < 0 || int(heap[i].slot) >= nSlots {
			d.Failf("heap entry %d references slot %d (arena %d)", i, heap[i].slot, nSlots)
			return
		}
	}
	if d.Err() != nil {
		return
	}
	if now < 0 || dead < 0 || dead > nHeap {
		d.Failf("corrupt engine scalars (now %v, dead %d, heap %d)", now, dead, nHeap)
		return
	}
	e.now = now
	e.seq = seq
	e.fired = fired
	e.dead = dead
	e.slots = slots
	e.free = free
	e.heap = heap
	e.stopped = false
}

// EncodeEvent serializes an event handle as a (pending, at, slot, gen)
// reference. A non-pending handle (zero, fired, or cancelled) encodes as
// a single absent flag.
func EncodeEvent(enc *ckpt.Encoder, ev Event) {
	if !ev.Pending() {
		enc.Bool(false)
		return
	}
	enc.Bool(true)
	enc.Duration(ev.at)
	enc.I32(ev.slot)
	enc.U32(ev.gen)
}

// DecodeEvent reads a reference written by EncodeEvent and returns the
// handle bound to e. The second result is false for an absent reference.
// The handle is only usable through Rebind, which validates the slot's
// generation and state.
func (e *Engine) DecodeEvent(d *ckpt.Decoder) (Event, bool) {
	if !d.Bool() {
		return Event{}, false
	}
	at := d.Duration()
	slot := d.I32()
	gen := d.U32()
	if d.Err() != nil {
		return Event{}, false
	}
	if slot < 0 || int(slot) >= len(e.slots) {
		d.Failf("event reference slot %d out of range (arena %d)", slot, len(e.slots))
		return Event{}, false
	}
	return Event{eng: e, at: at, slot: slot, gen: gen}, true
}

// EncodeState serializes the stream's identity and position: name,
// derived seed, and raw draw count.
func (g *RNG) EncodeState(enc *ckpt.Encoder) {
	enc.String(g.name)
	enc.I64(g.seed)
	enc.U64(g.src.n)
}

// DecodeState restores the stream in place by reseeding a fresh source
// and replaying the recorded draw count — the serialization twin of
// Clone. The checkpoint must name the same stream with the same derived
// seed as the freshly built instance; a mismatch means the checkpoint
// was written for a different configuration and fails the decode.
func (g *RNG) DecodeState(d *ckpt.Decoder) {
	name := d.String()
	seed := d.I64()
	n := d.U64()
	if d.Err() != nil {
		return
	}
	if name != g.name || seed != g.seed {
		d.Failf("rng stream mismatch: checkpoint has %q/%d, stack has %q/%d", name, seed, g.name, g.seed)
		return
	}
	if n > maxRNGReplay {
		d.Failf("rng stream %q replay count %d exceeds cap %d", name, n, uint64(maxRNGReplay))
		return
	}
	src := &countingSource{src: rand.NewSource(g.seed)}
	for i := uint64(0); i < n; i++ {
		src.src.Int63()
	}
	src.n = n
	g.src = src
	g.r = rand.New(src)
}
