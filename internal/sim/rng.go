package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG is a named, seeded random stream. Every stochastic component owns its
// own stream so that changing one component's draw count never perturbs
// another's sequence — the property that lets WB, SIB and LBICA runs see an
// identical workload.
type RNG struct {
	name string
	r    *rand.Rand
}

// NewRNG derives a stream from a run seed and a component name. The same
// (seed, name) pair always yields the same sequence.
func NewRNG(seed int64, name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	return &RNG{name: name, r: rand.New(rand.NewSource(seed ^ int64(h.Sum64())))}
}

// Stream splits a base seed into the seed for run runIndex of a batch.
// The result depends only on (seed, runIndex) — never on scheduling
// order — so a parallel sweep that seeds run i with Stream(seed, i)
// produces runs byte-identical to the same sweep executed serially.
//
// The split is a SplitMix64-style finalizer over both inputs, so nearby
// (seed, runIndex) pairs land far apart: Stream(s, 0), Stream(s, 1), …
// share no statistical structure the way s, s+1, … would.
func Stream(seed int64, runIndex int) int64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(runIndex) + 1
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// Name returns the stream name.
func (g *RNG) Name() string { return g.name }

// Float64 returns a uniform draw in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0,n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform draw in [0,n). It panics if n <= 0.
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// NormFloat64 returns a standard normal draw.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential draw with rate 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Zipf draws from a Zipf-like distribution over [0,n) with exponent s>1
// using inverse-CDF sampling over the harmonic weights. Used for cache-
// friendly locality in workload address streams. The generator precomputes
// nothing; for hot paths prefer NewZipf.
func (g *RNG) Zipf(n int, s float64) int {
	z := NewZipf(g, n, s)
	return z.Next()
}

// Zipfian samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s. Rank 0 is the hottest.
type Zipfian struct {
	g   *RNG
	cdf []float64
}

// NewZipf precomputes the CDF for n ranks with exponent s (s may be any
// positive value; s≈0 degenerates to uniform). It panics if n <= 0.
func NewZipf(g *RNG, n int, s float64) *Zipfian {
	if n <= 0 {
		panic("sim: NewZipf with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipfian{g: g, cdf: cdf}
}

// Next draws a rank.
func (z *Zipfian) Next() int {
	u := z.g.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
