package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG is a named, seeded random stream. Every stochastic component owns its
// own stream so that changing one component's draw count never perturbs
// another's sequence — the property that lets WB, SIB and LBICA runs see an
// identical workload.
type RNG struct {
	name string
	seed int64 // the derived (seed ^ name-hash) source seed
	src  *countingSource
	r    *rand.Rand
}

// countingSource wraps a rand.Source and counts raw Int63 draws, which is
// what makes RNG.Clone possible: a clone reseeds a fresh source and
// fast-forwards it by replaying the recorded draw count. The wrapper
// deliberately does NOT implement rand.Source64 — rand.Rand routes every
// method this package uses (Float64, Intn, Int63n, NormFloat64,
// ExpFloat64, Perm) through src.Int63() alone, and keeping Uint64 off the
// interface guarantees the draw counter sees every consumed value.
type countingSource struct {
	src rand.Source
	n   uint64
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Seed(seed int64) {
	c.n = 0
	c.src.Seed(seed)
}

// NewRNG derives a stream from a run seed and a component name. The same
// (seed, name) pair always yields the same sequence.
func NewRNG(seed int64, name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	derived := seed ^ int64(h.Sum64())
	src := &countingSource{src: rand.NewSource(derived)}
	return &RNG{name: name, seed: derived, src: src, r: rand.New(src)}
}

// Clone returns an independent RNG positioned at exactly this stream's
// current point: the clone's future draws match the original's draw for
// draw, and advancing either side never perturbs the other. It works by
// reseeding a fresh source with the stream's derived seed and replaying
// the recorded raw draw count, so cloning is O(draws so far) but needs no
// access to math/rand internals.
func (g *RNG) Clone() *RNG {
	src := &countingSource{src: rand.NewSource(g.seed)}
	for i := uint64(0); i < g.src.n; i++ {
		src.src.Int63()
	}
	src.n = g.src.n
	return &RNG{name: g.name, seed: g.seed, src: src, r: rand.New(src)}
}

// Stream splits a base seed into the seed for run runIndex of a batch.
// The result depends only on (seed, runIndex) — never on scheduling
// order — so a parallel sweep that seeds run i with Stream(seed, i)
// produces runs byte-identical to the same sweep executed serially.
//
// The split is a SplitMix64-style finalizer over both inputs, so nearby
// (seed, runIndex) pairs land far apart: Stream(s, 0), Stream(s, 1), …
// share no statistical structure the way s, s+1, … would.
func Stream(seed int64, runIndex int) int64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(runIndex) + 1
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// Name returns the stream name.
func (g *RNG) Name() string { return g.name }

// Float64 returns a uniform draw in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0,n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform draw in [0,n). It panics if n <= 0.
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// NormFloat64 returns a standard normal draw.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns an exponential draw with rate 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Zipf draws from a Zipf-like distribution over [0,n) with exponent s>1
// using inverse-CDF sampling over the harmonic weights. Used for cache-
// friendly locality in workload address streams. The generator precomputes
// nothing; for hot paths prefer NewZipf.
func (g *RNG) Zipf(n int, s float64) int {
	z := NewZipf(g, n, s)
	return z.Next()
}

// Zipfian samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s. Rank 0 is the hottest.
type Zipfian struct {
	g   *RNG
	cdf []float64
}

// NewZipf precomputes the CDF for n ranks with exponent s (s may be any
// positive value; s≈0 degenerates to uniform). It panics if n <= 0.
func NewZipf(g *RNG, n int, s float64) *Zipfian {
	if n <= 0 {
		panic("sim: NewZipf with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipfian{g: g, cdf: cdf}
}

// WithRNG returns a Zipfian over the same precomputed CDF drawing from g —
// the cloning hook: the CDF is immutable and safely shared, so cloning a
// generator that owns a Zipfian is WithRNG(clonedRNG).
func (z *Zipfian) WithRNG(g *RNG) *Zipfian { return &Zipfian{g: g, cdf: z.cdf} }

// Next draws a rank.
func (z *Zipfian) Next() int {
	u := z.g.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
