// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is a virtual clock plus a priority queue of events ordered by
// firing time. Components schedule callbacks at absolute or relative virtual
// times; Run drains the queue, advancing the clock to each event's time in
// order. Nothing ever sleeps: a multi-minute storage experiment executes in
// milliseconds of wall time.
//
// Determinism: two events at the same virtual time fire in scheduling order
// (a monotonically increasing sequence number breaks ties), so a run with a
// fixed seed reproduces bit-for-bit.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a callback scheduled to fire at a virtual time.
type Event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	idx  int // heap index; -1 once removed
	dead bool
}

// Time returns the virtual time at which the event fires (or fired).
func (e *Event) Time() time.Duration { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op.
func (e *Event) Cancel() { e.dead = true }

// eventHeap orders events by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is the simulation executive. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but not yet fired
// (including cancelled events that have not been reaped).
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d after the current virtual time. Negative d is
// clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop halts Run after the currently firing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the queue empties, Stop is called,
// or the clock would pass horizon (exclusive). A zero horizon means no limit.
// It returns the number of events fired during this call.
func (e *Engine) Run(horizon time.Duration) uint64 {
	e.stopped = false
	start := e.fired
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if horizon > 0 && next.at > horizon {
			// Leave future events pending; park the clock at the horizon so
			// a subsequent Run(h2) with h2 > horizon resumes seamlessly.
			e.now = horizon
			break
		}
		heap.Pop(&e.events)
		if next.dead {
			continue
		}
		e.now = next.at
		e.fired++
		next.fn()
	}
	if horizon > 0 && e.now < horizon && len(e.events) == 0 {
		e.now = horizon
	}
	return e.fired - start
}

// RunUntilIdle executes all pending events with no horizon.
func (e *Engine) RunUntilIdle() uint64 { return e.Run(0) }
