// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is a virtual clock plus a priority queue of events ordered by
// firing time. Components schedule callbacks at absolute or relative virtual
// times; Run drains the queue, advancing the clock to each event's time in
// order. Nothing ever sleeps: a multi-minute storage experiment executes in
// milliseconds of wall time.
//
// # Determinism contract
//
// Two events at the same virtual time fire in scheduling order (a
// monotonically increasing sequence number breaks ties), so a run with a
// fixed seed reproduces bit-for-bit. The (time, seq) pair totally orders
// every event, which makes the firing order independent of the priority
// queue's internal layout — the kernel is free to reorganize (or compact)
// its heap without changing observable behavior.
//
// # Arena design
//
// The kernel is allocation-free at steady state. Event state lives in an
// index-stable arena (a slice of slots addressed by index, never by
// pointer, so growth relocations are harmless) recycled through a
// free-list; the priority queue is a hand-rolled 4-ary min-heap of compact
// (time, seq, slot) entries — no interface boxing, no per-event heap
// object, and the shallower tree halves the sift depth of a binary heap.
// At/After pop a slot from the free-list and push one heap entry; firing
// or cancelling returns the slot. Once the arena has grown to the
// high-water mark of concurrently pending events, scheduling allocates
// nothing.
//
// Handles returned by At/After are value types carrying (slot, generation);
// a generation check makes Cancel on an already-fired (and possibly
// recycled) event a safe no-op.
//
// Cancellation is lazy — a cancelled event stays in the heap until popped —
// but bounded: when dead events exceed half the heap, the kernel reaps them
// in place and re-heapifies, so a cancel-heavy workload cannot grow the
// heap without bound. Pending reports live (uncancelled, unfired) events
// only.
package sim

import (
	"fmt"
	"time"
)

// slotState tracks an arena slot's lifecycle.
type slotState uint8

const (
	slotFree slotState = iota
	slotPending
	slotDead // cancelled, awaiting pop or reap
)

// slot is one arena entry: the callback plus bookkeeping. Slots are
// addressed by index; the arena slice may relocate on growth.
type slot struct {
	fn    func()
	gen   uint32 // bumped on every release; stale handles no-op
	state slotState
}

// heapEnt is one compact priority-queue entry: the (time, seq) ordering key
// plus the arena slot it refers to. Comparisons never touch the arena.
type heapEnt struct {
	at   time.Duration
	seq  uint64
	slot int32
	gen  uint32
}

func entLess(a, b heapEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Event is a handle to a scheduled callback. It is a small value (not a
// pointer): copying it is cheap and the zero value is inert. Cancelling or
// inspecting an event that has already fired is a safe no-op — the handle's
// generation no longer matches the recycled arena slot.
type Event struct {
	eng  *Engine
	at   time.Duration
	slot int32
	gen  uint32
}

// Time returns the virtual time at which the event fires (or fired).
func (e Event) Time() time.Duration { return e.at }

// Pending reports whether the event is still scheduled on its engine —
// false for the zero Event and for events that already fired or were
// cancelled. Fork uses it to decide which chain handles need rebinding.
func (e Event) Pending() bool {
	if e.eng == nil || e.slot < 0 || int(e.slot) >= len(e.eng.slots) {
		return false
	}
	s := &e.eng.slots[e.slot]
	return s.gen == e.gen && s.state == slotPending
}

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op.
func (e Event) Cancel() {
	if e.eng != nil {
		e.eng.cancel(e.slot, e.gen)
	}
}

// Engine is the simulation executive. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     time.Duration
	seq     uint64
	slots   []slot
	free    []int32 // free arena slots
	heap    []heapEnt
	dead    int // cancelled events still occupying heap entries
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many live events are scheduled but not yet fired.
// Cancelled events are excluded even while they still occupy heap entries
// awaiting reap (this changed when the arena kernel landed: the old kernel
// counted cancelled-but-unpopped events).
func (e *Engine) Pending() int { return len(e.heap) - e.dead }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t time.Duration, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, slot{})
		idx = int32(len(e.slots) - 1)
	}
	s := &e.slots[idx]
	s.fn = fn
	s.state = slotPending
	seq := e.seq
	e.seq++
	e.push(heapEnt{at: t, seq: seq, slot: idx, gen: s.gen})
	return Event{eng: e, at: t, slot: idx, gen: s.gen}
}

// After schedules fn to run d after the current virtual time. Negative d is
// clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop halts Run after the currently firing event returns.
func (e *Engine) Stop() { e.stopped = true }

// release returns a slot to the free-list, dropping its callback reference
// and invalidating outstanding handles.
func (e *Engine) release(idx int32) {
	s := &e.slots[idx]
	s.fn = nil
	s.state = slotFree
	s.gen++
	e.free = append(e.free, idx)
}

// cancel marks the slot dead if the handle generation still matches. Dead
// events are skipped at pop time; when they exceed half the heap they are
// reaped eagerly so cancel-heavy workloads cannot bloat the queue.
func (e *Engine) cancel(idx int32, gen uint32) {
	if int(idx) >= len(e.slots) {
		return
	}
	s := &e.slots[idx]
	if s.gen != gen || s.state != slotPending {
		return
	}
	s.state = slotDead
	s.fn = nil // release the closure immediately
	e.dead++
	if e.dead > len(e.heap)/2 && e.dead >= 32 {
		e.reap()
	}
}

// reap removes every dead entry from the heap in place and re-heapifies.
// The (time, seq) total order makes the rebuild invisible to firing order.
func (e *Engine) reap() {
	h := e.heap[:0]
	for _, ent := range e.heap {
		s := &e.slots[ent.slot]
		if s.state == slotPending && s.gen == ent.gen {
			h = append(h, ent)
		} else {
			e.release(ent.slot)
		}
	}
	// Zero the tail so released slots' entries don't pin anything.
	for i := len(h); i < len(e.heap); i++ {
		e.heap[i] = heapEnt{}
	}
	e.heap = h
	e.dead = 0
	// Floyd heapify, bottom-up.
	for i := (len(h) - 2) / 4; i >= 0; i-- {
		e.siftDown(i)
	}
}

// push appends an entry and sifts it up the 4-ary heap.
func (e *Engine) push(ent heapEnt) {
	e.heap = append(e.heap, ent)
	h := e.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !entLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// popTop removes the minimum entry.
func (e *Engine) popTop() {
	h := e.heap
	n := len(h) - 1
	h[0] = h[n]
	h[n] = heapEnt{}
	e.heap = h[:n]
	if n > 0 {
		e.siftDown(0)
	}
}

// siftDown restores heap order below i in the 4-ary layout.
func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	for {
		c := i<<2 + 1
		if c >= n {
			return
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entLess(h[j], h[m]) {
				m = j
			}
		}
		if !entLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// Run executes events in time order until the queue empties, Stop is called,
// or the clock would pass horizon (exclusive). A zero horizon means no limit.
// It returns the number of events fired during this call.
func (e *Engine) Run(horizon time.Duration) uint64 {
	e.stopped = false
	start := e.fired
	for len(e.heap) > 0 && !e.stopped {
		top := e.heap[0]
		s := &e.slots[top.slot]
		if s.state != slotPending || s.gen != top.gen {
			// Cancelled (or reaped-and-recycled) entry: drop it.
			e.popTop()
			if s.state == slotDead && s.gen == top.gen {
				e.dead--
				e.release(top.slot)
			}
			continue
		}
		if horizon > 0 && top.at > horizon {
			// Leave future events pending; park the clock at the horizon so
			// a subsequent Run(h2) with h2 > horizon resumes seamlessly.
			e.now = horizon
			break
		}
		e.popTop()
		fn := s.fn
		e.release(top.slot)
		e.now = top.at
		e.fired++
		fn()
	}
	if horizon > 0 && e.now < horizon && len(e.heap) == 0 {
		e.now = horizon
	}
	return e.fired - start
}

// RunUntilIdle executes all pending events with no horizon.
func (e *Engine) RunUntilIdle() uint64 { return e.Run(0) }

// CloneCore returns a structural copy of the engine: clock, sequence
// counter, free-list, heap and arena copied entry for entry — except that
// every pending slot's callback is nil. Callbacks are closures over the
// owning components and cannot be copied mechanically; each owner of a
// pending event must re-install a clone-local callback through Rebind.
// Because the heap bytes (time, seq, slot, generation) are identical to
// the original's, the clone's firing order is identical by construction —
// the foundation of the fork determinism contract. UnboundEvents reports
// how many pending slots still await their Rebind; a fork is valid only
// when it returns zero.
func (e *Engine) CloneCore() *Engine {
	c := &Engine{
		now:   e.now,
		seq:   e.seq,
		dead:  e.dead,
		fired: e.fired,
		slots: make([]slot, len(e.slots)),
		free:  append([]int32(nil), e.free...),
		heap:  append([]heapEnt(nil), e.heap...),
	}
	for i := range e.slots {
		c.slots[i] = slot{gen: e.slots[i].gen, state: e.slots[i].state}
	}
	return c
}

// Rebind installs fn as the callback of the clone-local slot matching ev,
// an Event handle that was issued by the engine this clone was copied
// from, and returns the clone-local handle. It reports false — installing
// nothing — if the slot is not pending under ev's generation or already
// has a callback (a double rebind).
func (e *Engine) Rebind(ev Event, fn func()) (Event, bool) {
	if ev.slot < 0 || int(ev.slot) >= len(e.slots) || fn == nil {
		return Event{}, false
	}
	s := &e.slots[ev.slot]
	if s.gen != ev.gen || s.state != slotPending || s.fn != nil {
		return Event{}, false
	}
	s.fn = fn
	return Event{eng: e, at: ev.at, slot: ev.slot, gen: ev.gen}, true
}

// UnboundEvents counts pending slots with no callback — on a clone, the
// events whose owners have not yet called Rebind. A completed fork must
// report zero; a non-zero count means some component scheduled an event
// the fork machinery does not know how to re-bind.
func (e *Engine) UnboundEvents() int {
	n := 0
	for i := range e.slots {
		if e.slots[i].state == slotPending && e.slots[i].fn == nil {
			n++
		}
	}
	return n
}
