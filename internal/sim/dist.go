package sim

import (
	"fmt"
	"math"
	"time"
)

// Dist is a distribution over durations, used for device service times and
// arrival gaps. Implementations must be safe to share across components only
// if the underlying RNG is not shared; in practice each component owns its
// distribution and stream.
type Dist interface {
	// Sample draws one duration. Results are always >= 0.
	Sample() time.Duration
	// Mean returns the distribution mean; monitors use it as the calibrated
	// per-request service latency in Eq. 1.
	Mean() time.Duration
	// String describes the distribution for logs and configs.
	String() string
}

// Deterministic always returns a constant value.
type Deterministic struct{ V time.Duration }

// Sample implements Dist.
func (d Deterministic) Sample() time.Duration { return d.V }

// Mean implements Dist.
func (d Deterministic) Mean() time.Duration { return d.V }

func (d Deterministic) String() string { return fmt.Sprintf("det(%v)", d.V) }

// Uniform draws uniformly in [Lo, Hi].
type Uniform struct {
	Lo, Hi time.Duration
	G      *RNG
}

// Sample implements Dist.
func (u Uniform) Sample() time.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + time.Duration(u.G.Int63n(int64(u.Hi-u.Lo)+1))
}

// Mean implements Dist.
func (u Uniform) Mean() time.Duration { return (u.Lo + u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("uniform(%v,%v)", u.Lo, u.Hi) }

// Exponential draws exponentially with the given mean.
type Exponential struct {
	M time.Duration
	G *RNG
}

// Sample implements Dist.
func (e Exponential) Sample() time.Duration {
	return time.Duration(float64(e.M) * e.G.ExpFloat64())
}

// Mean implements Dist.
func (e Exponential) Mean() time.Duration { return e.M }

func (e Exponential) String() string { return fmt.Sprintf("exp(%v)", e.M) }

// LogNormal draws log-normally, parameterized by the desired mean and a
// shape sigma (sigma of the underlying normal). Real device latencies are
// right-skewed; lognormal is the conventional stand-in.
type LogNormal struct {
	M     time.Duration
	Sigma float64
	G     *RNG
}

// Sample implements Dist.
func (l LogNormal) Sample() time.Duration {
	// E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); solve mu for mean M.
	mu := math.Log(float64(l.M)) - l.Sigma*l.Sigma/2
	v := math.Exp(mu + l.Sigma*l.G.NormFloat64())
	if v < 0 {
		v = 0
	}
	return time.Duration(v)
}

// Mean implements Dist.
func (l LogNormal) Mean() time.Duration { return l.M }

func (l LogNormal) String() string { return fmt.Sprintf("lognormal(%v,σ=%.2f)", l.M, l.Sigma) }

// BoundedPareto draws from a Pareto tail truncated to [Lo, Hi], exponent
// Alpha. Used for heavy-tailed burst gaps.
type BoundedPareto struct {
	Lo, Hi time.Duration
	Alpha  float64
	G      *RNG
}

// Sample implements Dist.
func (p BoundedPareto) Sample() time.Duration {
	if p.Hi <= p.Lo {
		return p.Lo
	}
	l, h, a := float64(p.Lo), float64(p.Hi), p.Alpha
	u := p.G.Float64()
	la, ha := math.Pow(l, a), math.Pow(h, a)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/a)
	if x < l {
		x = l
	}
	if x > h {
		x = h
	}
	return time.Duration(x)
}

// Mean implements Dist.
func (p BoundedPareto) Mean() time.Duration {
	if p.Hi <= p.Lo {
		return p.Lo
	}
	l, h, a := float64(p.Lo), float64(p.Hi), p.Alpha
	if a == 1 {
		return time.Duration((h * l / (h - l)) * math.Log(h/l))
	}
	num := math.Pow(l, a) / (1 - math.Pow(l/h, a)) * a / (a - 1) * (1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
	return time.Duration(num)
}

func (p BoundedPareto) String() string {
	return fmt.Sprintf("pareto(%v,%v,α=%.2f)", p.Lo, p.Hi, p.Alpha)
}
