package sim

import "testing"

func TestStreamDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 1, -7, 1 << 40} {
		for _, idx := range []int{0, 1, 2, 1000} {
			a, b := Stream(seed, idx), Stream(seed, idx)
			if a != b {
				t.Errorf("Stream(%d,%d) not stable: %d != %d", seed, idx, a, b)
			}
		}
	}
}

func TestStreamSplitsAreDistinct(t *testing.T) {
	seen := map[int64][2]int{}
	for _, seed := range []int64{1, 2, 3} {
		for idx := 0; idx < 1000; idx++ {
			s := Stream(seed, idx)
			if prev, dup := seen[s]; dup {
				t.Fatalf("Stream(%d,%d) collides with Stream(%d,%d): %d",
					seed, idx, prev[0], prev[1], s)
			}
			seen[s] = [2]int{int(seed), idx}
		}
	}
}

// Adjacent run indices must yield unrelated RNG sequences, not shifted
// copies of each other: consume a few draws from each split stream and
// check they differ pairwise.
func TestStreamSequencesIndependent(t *testing.T) {
	const runs, draws = 8, 16
	seqs := make([][draws]float64, runs)
	for i := 0; i < runs; i++ {
		g := NewRNG(Stream(42, i), "workload:test")
		for d := 0; d < draws; d++ {
			seqs[i][d] = g.Float64()
		}
	}
	for i := 0; i < runs; i++ {
		for j := i + 1; j < runs; j++ {
			if seqs[i] == seqs[j] {
				t.Errorf("runs %d and %d drew identical sequences", i, j)
			}
		}
	}
}
