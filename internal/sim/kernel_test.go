package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// refEvent / refHeap are a reference kernel built on container/heap with the
// pre-arena semantics: (time, seq) ordering, lazy cancellation. The property
// tests below drive it in lockstep with the arena kernel and require the
// fire order to match exactly.
type refEvent struct {
	at   time.Duration
	seq  uint64
	id   int
	dead bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)     { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any       { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h refHeap) peek() *refEvent { return h[0] }
func (h refHeap) empty() bool     { return len(h) == 0 }

// refKernel mirrors Engine's observable behavior.
type refKernel struct {
	now   time.Duration
	seq   uint64
	queue refHeap
	fired []int
}

func (k *refKernel) at(t time.Duration, id int) *refEvent {
	e := &refEvent{at: t, seq: k.seq, id: id}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

func (k *refKernel) run(horizon time.Duration) {
	for !k.queue.empty() {
		next := k.queue.peek()
		if next.dead {
			heap.Pop(&k.queue)
			continue
		}
		if horizon > 0 && next.at > horizon {
			k.now = horizon
			return
		}
		heap.Pop(&k.queue)
		k.now = next.at
		k.fired = append(k.fired, next.id)
	}
	if horizon > 0 && k.now < horizon {
		k.now = horizon
	}
}

// TestKernelMatchesReferenceModel drives randomized schedule / cancel /
// partial-run sequences (fixed seeds) through the arena kernel and the
// container/heap reference in lockstep, and requires identical fire order,
// identical clocks, and identical live-event counts throughout. This is the
// guard that arena slot reuse and dead-event reaping never change the
// (time, seq) determinism contract.
func TestKernelMatchesReferenceModel(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		eng := NewEngine()
		ref := &refKernel{}
		var engFired []int

		type livePair struct {
			ev  Event
			ref *refEvent
		}
		var live []livePair
		nextID := 0

		for step := 0; step < 4000; step++ {
			switch r := rng.Float64(); {
			case r < 0.55: // schedule
				d := time.Duration(rng.Intn(1000))
				id := nextID
				nextID++
				ev := eng.At(eng.Now()+d, func() { engFired = append(engFired, id) })
				re := ref.at(ref.now+d, id)
				if ev.Time() != re.at {
					t.Fatalf("seed %d: handle time %v != ref %v", seed, ev.Time(), re.at)
				}
				live = append(live, livePair{ev, re})
			case r < 0.80: // cancel a random outstanding handle (maybe stale)
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				live[i].ev.Cancel()
				live[i].ref.dead = true
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			default: // partial run to a random horizon
				h := eng.Now() + time.Duration(rng.Intn(500))
				eng.Run(h)
				ref.run(h)
				if eng.Now() != ref.now {
					t.Fatalf("seed %d step %d: clock %v != ref %v", seed, step, eng.Now(), ref.now)
				}
			}
		}
		eng.RunUntilIdle()
		ref.run(0)

		if eng.Now() != ref.now {
			t.Fatalf("seed %d: final clock %v != ref %v", seed, eng.Now(), ref.now)
		}
		if len(engFired) != len(ref.fired) {
			t.Fatalf("seed %d: fired %d events, ref fired %d", seed, len(engFired), len(ref.fired))
		}
		for i := range engFired {
			if engFired[i] != ref.fired[i] {
				t.Fatalf("seed %d: fire order diverges at %d: got id %d, ref id %d",
					seed, i, engFired[i], ref.fired[i])
			}
		}
		if eng.Pending() != 0 {
			t.Fatalf("seed %d: %d events still pending after drain", seed, eng.Pending())
		}
	}
}

// TestKernelReuseUnderChurn hammers the free-list: interleaved bursts of
// scheduling and draining must recycle slots without ever firing out of
// order or firing a cancelled event.
func TestKernelReuseUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	eng := NewEngine()
	var lastAt time.Duration
	cancelled := make(map[int]bool)
	fired := 0
	for round := 0; round < 200; round++ {
		var evs []Event
		ids := make([]int, 0, 32)
		for i := 0; i < 32; i++ {
			id := round*32 + i
			at := eng.Now() + time.Duration(rng.Intn(100))
			evs = append(evs, eng.At(at, func() {
				if cancelled[id] {
					t.Errorf("cancelled event %d fired", id)
				}
				if eng.Now() < lastAt {
					t.Errorf("clock ran backwards: %v after %v", eng.Now(), lastAt)
				}
				lastAt = eng.Now()
				fired++
			}))
			ids = append(ids, id)
		}
		for i, ev := range evs {
			if rng.Intn(3) == 0 {
				ev.Cancel()
				cancelled[ids[i]] = true
			}
		}
		if round%4 == 3 {
			eng.RunUntilIdle()
		}
	}
	eng.RunUntilIdle()
	if fired == 0 || eng.Pending() != 0 {
		t.Fatalf("fired=%d pending=%d", fired, eng.Pending())
	}
	if uint64(fired) != eng.Fired() {
		t.Fatalf("fired %d != engine count %d", fired, eng.Fired())
	}
}
