package sim_test

import (
	"testing"

	"lbica/internal/perf"
)

// The kernel benchmarks delegate to internal/perf so `go test -bench` and
// `lbicabench -perf` measure the exact same bodies.

func BenchmarkEngineScheduleFire(b *testing.B)   { perf.BenchKernelScheduleFire(b) }
func BenchmarkEngineScheduleCancel(b *testing.B) { perf.BenchKernelScheduleCancel(b) }
