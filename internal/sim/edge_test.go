package sim

import (
	"testing"
	"time"
)

func TestEventExactlyAtHorizonFires(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(100, func() { fired = true })
	e.Run(100)
	if !fired {
		t.Error("event at the horizon boundary must fire (horizon is inclusive)")
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(time.Duration(i), func() {})
	}
	ev := e.At(10, func() {})
	ev.Cancel()
	e.RunUntilIdle()
	if e.Fired() != 5 {
		t.Errorf("fired = %d, want 5 (cancelled events do not count)", e.Fired())
	}
}

func TestPendingExcludesCancelled(t *testing.T) {
	// Cancellation is still lazy inside the heap, but Pending reports live
	// events only (the arena kernel changed this: the old kernel counted
	// cancelled-but-unpopped events).
	e := NewEngine()
	live := e.At(5, func() {})
	ev := e.At(10, func() {})
	ev.Cancel()
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1 live (cancelled excluded)", e.Pending())
	}
	_ = live
	e.RunUntilIdle()
	if e.Pending() != 0 {
		t.Errorf("pending = %d after drain", e.Pending())
	}
}

func TestCancelledEventsAreReaped(t *testing.T) {
	// Cancelling more than half the heap must compact it eagerly instead of
	// leaving dead events queued until pop — the cancelled-event leak fix.
	e := NewEngine()
	events := make([]Event, 0, 1000)
	for i := 0; i < 1000; i++ {
		events = append(events, e.At(time.Duration(i+1), func() {}))
	}
	for _, ev := range events[:900] {
		ev.Cancel()
	}
	if e.Pending() != 100 {
		t.Fatalf("pending = %d, want 100 live", e.Pending())
	}
	if n := len(e.heap); n >= 500 {
		t.Errorf("heap still holds %d entries after cancelling 900/1000; reap did not run", n)
	}
	if n := e.RunUntilIdle(); n != 100 {
		t.Errorf("fired %d, want the 100 live events", n)
	}
}

func TestCancelAfterFireIsNoOp(t *testing.T) {
	// The arena recycles slots; a stale handle must not cancel the slot's
	// new occupant.
	e := NewEngine()
	var stale Event
	stale = e.At(1, func() {})
	e.RunUntilIdle()
	fired := false
	e.At(2, func() { fired = true }) // likely reuses the freed slot
	stale.Cancel()
	e.RunUntilIdle()
	if !fired {
		t.Fatal("stale Cancel killed an unrelated recycled event")
	}
}

func TestScheduleSteadyStateAllocFree(t *testing.T) {
	e := NewEngine()
	// Warm the arena and heap to their high-water marks.
	for i := 0; i < 128; i++ {
		e.After(time.Duration(i), func() {})
	}
	e.RunUntilIdle()
	fn := func() {}
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			e.After(time.Duration(i), fn)
		}
		e.RunUntilIdle()
	})
	if allocs > 0 {
		t.Errorf("steady-state schedule/fire allocates %.1f objects per cycle, want 0", allocs)
	}
}

func TestEventTimeAccessor(t *testing.T) {
	e := NewEngine()
	ev := e.At(42, func() {})
	if ev.Time() != 42 {
		t.Errorf("Time() = %v", ev.Time())
	}
}

func TestRNGHelpers(t *testing.T) {
	g := NewRNG(5, "helpers")
	if n := g.Intn(10); n < 0 || n >= 10 {
		t.Errorf("Intn out of range: %d", n)
	}
	if n := g.Int63n(100); n < 0 || n >= 100 {
		t.Errorf("Int63n out of range: %d", n)
	}
	p := g.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("Perm missing %d", i)
		}
	}
	if g.Name() != "helpers" {
		t.Errorf("Name() = %q", g.Name())
	}
	if z := g.Zipf(100, 1.1); z < 0 || z >= 100 {
		t.Errorf("Zipf out of range: %d", z)
	}
}

func TestNewZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(0) must panic")
		}
	}()
	NewZipf(NewRNG(1, "z"), 0, 1)
}

func TestDistStrings(t *testing.T) {
	g := NewRNG(1, "s")
	for _, d := range []Dist{
		Deterministic{V: time.Second},
		Uniform{Lo: 1, Hi: 2, G: g},
		Exponential{M: time.Millisecond, G: g},
		LogNormal{M: time.Millisecond, Sigma: 0.3, G: g},
		BoundedPareto{Lo: 1, Hi: 10, Alpha: 1.5, G: g},
	} {
		if d.String() == "" {
			t.Errorf("%T has empty String()", d)
		}
	}
}

func TestBoundedParetoDegenerate(t *testing.T) {
	g := NewRNG(2, "p")
	p := BoundedPareto{Lo: 5, Hi: 5, Alpha: 2, G: g}
	if p.Sample() != 5 || p.Mean() != 5 {
		t.Error("degenerate pareto must return Lo")
	}
}
