package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []time.Duration
	for _, d := range []time.Duration{30, 10, 20, 10, 5} {
		d := d
		e.At(d, func() { got = append(got, d) })
	}
	e.RunUntilIdle()
	want := []time.Duration{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	e.RunUntilIdle()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: got %v", got)
		}
	}
}

func TestEngineClockAdvances(t *testing.T) {
	e := NewEngine()
	e.At(50*time.Millisecond, func() {
		if e.Now() != 50*time.Millisecond {
			t.Errorf("Now() = %v inside event at 50ms", e.Now())
		}
		e.After(10*time.Millisecond, func() {
			if e.Now() != 60*time.Millisecond {
				t.Errorf("Now() = %v, want 60ms", e.Now())
			}
		})
	})
	e.RunUntilIdle()
	if e.Now() != 60*time.Millisecond {
		t.Errorf("final Now() = %v, want 60ms", e.Now())
	}
}

func TestEngineHorizonPausesAndResumes(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(30, func() { fired++ })
	n := e.Run(20)
	if n != 1 || fired != 1 {
		t.Fatalf("Run(20) fired %d (%d), want 1", n, fired)
	}
	if e.Now() != 20 {
		t.Fatalf("clock parked at %v, want horizon 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run(40)
	if fired != 2 {
		t.Fatalf("after resume fired = %d, want 2", fired)
	}
}

func TestEngineHorizonIdleAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.Run(time.Second)
	if e.Now() != time.Second {
		t.Fatalf("idle Run(1s) left clock at %v", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	e.RunUntilIdle()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1, func() { fired++; e.Stop() })
	e.At(2, func() { fired++ })
	e.RunUntilIdle()
	if fired != 1 {
		t.Fatalf("Stop did not halt run: fired = %d", fired)
	}
	// A fresh Run picks the remaining event up.
	e.RunUntilIdle()
	if fired != 2 {
		t.Fatalf("resume after Stop fired = %d, want 2", fired)
	}
}

func TestEnginePanicsOnPastSchedule(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.RunUntilIdle()
}

func TestEngineNegativeAfterClamped(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		ev := e.After(-5, func() {})
		if ev.Time() != 10 {
			t.Errorf("After(-5) scheduled at %v, want now (10ns)", ev.Time())
		}
	})
	e.RunUntilIdle()
}

// Property: however events are scheduled, they fire in nondecreasing time
// order and the engine's clock never runs backwards.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine()
		var last time.Duration = -1
		ok := true
		for _, o := range offsets {
			d := time.Duration(o)
			e.At(d, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.RunUntilIdle()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42, "dev")
	b := NewRNG(42, "dev")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("identical (seed,name) streams diverged")
		}
	}
	c := NewRNG(42, "other")
	same := true
	a2 := NewRNG(42, "dev")
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("differently named streams produced identical sequences")
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewRNG(1, "zipf")
	z := NewZipf(g, 1000, 1.1)
	counts := make([]int, 1000)
	n := 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[500] {
		t.Errorf("rank 0 (%d) not hotter than rank 500 (%d)", counts[0], counts[500])
	}
	top10 := 0
	for i := 0; i < 10; i++ {
		top10 += counts[i]
	}
	if frac := float64(top10) / float64(n); frac < 0.20 {
		t.Errorf("top-10 ranks got %.2f of draws, want skewed (>0.20)", frac)
	}
}

func TestZipfUniformDegenerate(t *testing.T) {
	g := NewRNG(2, "zipf0")
	z := NewZipf(g, 100, 0.0001)
	counts := make([]int, 100)
	n := 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("rank %d never drawn under near-uniform zipf", i)
		}
	}
}

func TestDistMeans(t *testing.T) {
	g := NewRNG(7, "dist")
	cases := []struct {
		d   Dist
		tol float64
	}{
		{Deterministic{V: time.Millisecond}, 0},
		{Uniform{Lo: time.Millisecond, Hi: 3 * time.Millisecond, G: g}, 0.05},
		{Exponential{M: 2 * time.Millisecond, G: g}, 0.05},
		{LogNormal{M: time.Millisecond, Sigma: 0.5, G: g}, 0.05},
	}
	const n = 100000
	for _, c := range cases {
		var sum float64
		for i := 0; i < n; i++ {
			s := c.d.Sample()
			if s < 0 {
				t.Fatalf("%s produced negative sample", c.d)
			}
			sum += float64(s)
		}
		got := sum / n
		want := float64(c.d.Mean())
		if c.tol == 0 {
			if got != want {
				t.Errorf("%s empirical mean %v != %v", c.d, got, want)
			}
			continue
		}
		if math.Abs(got-want)/want > c.tol {
			t.Errorf("%s empirical mean %.0f, want %.0f (±%.0f%%)", c.d, got, want, c.tol*100)
		}
	}
}

func TestBoundedParetoWithinBounds(t *testing.T) {
	g := NewRNG(9, "pareto")
	p := BoundedPareto{Lo: time.Millisecond, Hi: 100 * time.Millisecond, Alpha: 1.5, G: g}
	for i := 0; i < 10000; i++ {
		s := p.Sample()
		if s < p.Lo || s > p.Hi {
			t.Fatalf("sample %v outside [%v,%v]", s, p.Lo, p.Hi)
		}
	}
	if m := p.Mean(); m < p.Lo || m > p.Hi {
		t.Fatalf("mean %v outside bounds", m)
	}
}

func TestUniformDegenerate(t *testing.T) {
	g := NewRNG(3, "u")
	u := Uniform{Lo: 5, Hi: 5, G: g}
	if u.Sample() != 5 {
		t.Error("degenerate uniform must return Lo")
	}
}
