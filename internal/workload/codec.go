package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"lbica/internal/block"
)

// Binary request-stream codec: lets a generated workload be captured once
// and replayed against any scheme or configuration later (trace-driven
// evaluation). The format is a magic header followed by fixed 25-byte
// little-endian records:
//
//	offset size field
//	0      8    At (ns)
//	8      1    Op (0 read, 1 write)
//	9      8    LBA
//	17     8    Sectors
const (
	reqMagic      = "LBICAWL1"
	reqRecordSize = 8 + 1 + 8 + 8
)

// ErrBadWorkloadMagic marks a stream that is not a recorded workload.
var ErrBadWorkloadMagic = errors.New("workload: bad magic (not a recorded request stream)")

// SaveRequests writes a request stream in the binary format.
func SaveRequests(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(reqMagic); err != nil {
		return err
	}
	var buf [reqRecordSize]byte
	for _, r := range reqs {
		binary.LittleEndian.PutUint64(buf[0:], uint64(r.At))
		buf[8] = byte(r.Op)
		binary.LittleEndian.PutUint64(buf[9:], uint64(r.Extent.LBA))
		binary.LittleEndian.PutUint64(buf[17:], uint64(r.Extent.Sectors))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadRequests reads a request stream written by SaveRequests.
func LoadRequests(r io.Reader) ([]Request, error) {
	br := bufio.NewReader(r)
	var m [len(reqMagic)]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		if err == io.EOF {
			return nil, nil
		}
		return nil, fmt.Errorf("workload: reading magic: %w", err)
	}
	if string(m[:]) != reqMagic {
		return nil, ErrBadWorkloadMagic
	}
	var out []Request
	var buf [reqRecordSize]byte
	for {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("workload: reading record: %w", err)
		}
		out = append(out, Request{
			At: time.Duration(binary.LittleEndian.Uint64(buf[0:])),
			Op: block.Op(buf[8]),
			Extent: block.Extent{
				LBA:     int64(binary.LittleEndian.Uint64(buf[9:])),
				Sectors: int64(binary.LittleEndian.Uint64(buf[17:])),
			},
		})
	}
}

// Drain pulls every request out of a generator (convenience for recording
// a workload without running a simulation).
func Drain(g Generator) []Request {
	var out []Request
	for {
		r, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}
