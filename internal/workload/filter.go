package workload

// Filter wraps a generator, emitting only the requests a predicate keeps —
// the stream-splitting primitive under the multi-volume array router. Each
// volume of an array replays the *same* base stream (same seed, same RNG
// stream name, so the copies are bit-identical) through its own Filter,
// and the predicate — a pure function of the request sequence — decides
// which subsequence this volume owns. Because every copy sees every
// request in arrival order, per-volume arrival order is preserved and a
// stateful predicate (e.g. a router drawing one RNG value per request)
// advances identically on every volume.
type Filter struct {
	inner Generator
	keep  func(Request) bool

	hot      func(block int64) bool
	hotScale int
}

// NewFilter wraps inner so only requests keep accepts are emitted. keep is
// called exactly once per inner request, in stream order — including the
// requests it rejects — so stateful predicates stay in lockstep across the
// array's volume copies.
func NewFilter(inner Generator, keep func(Request) bool) *Filter {
	return &Filter{inner: inner, keep: keep}
}

// WithHotFilter restricts HotBlocks to blocks the hot predicate accepts —
// for affine routing policies, a volume only prewarms blocks that can ever
// be routed to it. scale (≥1) is the overfetch factor: the filter requests
// scale×n candidates from the inner generator before filtering, so a
// volume owning ~1/scale of the address space still fills its prewarm
// quota. It returns the filter for chaining.
func (f *Filter) WithHotFilter(hot func(block int64) bool, scale int) *Filter {
	if scale < 1 {
		scale = 1
	}
	f.hot, f.hotScale = hot, scale
	return f
}

// Name implements Generator.
func (f *Filter) Name() string { return f.inner.Name() }

// Next implements Generator: it pulls from the inner stream until a
// request passes the predicate or the stream ends.
func (f *Filter) Next() (Request, bool) {
	for {
		r, ok := f.inner.Next()
		if !ok {
			return Request{}, false
		}
		if f.keep(r) {
			return r, true
		}
	}
}

// HotBlocks forwards the inner generator's prewarm set (nil when the inner
// generator has none), filtered when a hot predicate is installed.
func (f *Filter) HotBlocks(n int) []int64 {
	h, ok := f.inner.(interface{ HotBlocks(int) []int64 })
	if !ok {
		return nil
	}
	if f.hot == nil {
		return h.HotBlocks(n)
	}
	out := make([]int64, 0, n)
	for _, b := range h.HotBlocks(n * f.hotScale) {
		if !f.hot(b) {
			continue
		}
		out = append(out, b)
		if len(out) == n {
			break
		}
	}
	return out
}
