package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"lbica/internal/sim"
)

// Builder constructs a workload generator at a given scale. Builders are
// the registry's currency: a name resolves to a Builder, and the caller
// supplies the Scale (monitor interval, run length, rate/burst multipliers)
// and the RNG stream, so one registration serves every grid cell.
type Builder func(Scale, *sim.RNG) Generator

// family is a parameterized workload entry: every name starting with
// prefix is handed to parse, which decodes the parameters encoded in the
// suffix (e.g. "synth-randread-zipf1.2" → Zipf exponent 1.2).
type family struct {
	prefix  string
	pattern string // human-readable shape, for error messages and help text
	parse   func(name string) (Builder, error)
}

// Registry maps workload names to Builders. It holds two kinds of entry:
// exact names ("tpcc", "synth-randread", "burst-mix-hi") and parameterized
// families whose parameters are encoded in the name itself
// ("synth-randread-zipf<e>", "burst-mix-on<m>x-duty<d>-read<r>"), so a
// sweep axis can name arbitrary points of a family without a registration
// per point. Resolution order is exact-first, then the longest matching
// family prefix. The zero Registry is not usable; call NewRegistry.
type Registry struct {
	names    []string // exact names in registration order
	exact    map[string]Builder
	families []family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{exact: make(map[string]Builder)}
}

// Register adds an exact-name entry. Names are free-form non-empty strings
// (the emitters quote hostile characters and the series exporter sanitizes
// file names), but a duplicate registration is an error: the second entry
// would silently shadow the first.
func (r *Registry) Register(name string, b Builder) error {
	if name == "" {
		return fmt.Errorf("workload: empty registry name")
	}
	if b == nil {
		return fmt.Errorf("workload: nil builder for %q", name)
	}
	if _, dup := r.exact[name]; dup {
		return fmt.Errorf("workload: duplicate registry name %q", name)
	}
	r.exact[name] = b
	r.names = append(r.names, name)
	return nil
}

// RegisterFamily adds a parameterized entry covering every name with the
// given prefix. pattern documents the expected shape for error messages
// (e.g. "synth-randread-zipf<exp>").
func (r *Registry) RegisterFamily(prefix, pattern string, parse func(name string) (Builder, error)) error {
	if prefix == "" || parse == nil {
		return fmt.Errorf("workload: family needs a prefix and a parser")
	}
	for _, f := range r.families {
		if f.prefix == prefix {
			return fmt.Errorf("workload: duplicate family prefix %q", prefix)
		}
	}
	r.families = append(r.families, family{prefix: prefix, pattern: pattern, parse: parse})
	return nil
}

// Resolve returns the Builder for a name: an exact entry if one exists,
// otherwise the longest-prefix family match (longest wins so
// "synth-randread-zipf1.2" reaches the zipf family even though
// "synth-randread" is also registered as an exact name).
func (r *Registry) Resolve(name string) (Builder, error) {
	if b, ok := r.exact[name]; ok {
		return b, nil
	}
	best := -1
	for i, f := range r.families {
		if strings.HasPrefix(name, f.prefix) && (best < 0 || len(f.prefix) > len(r.families[best].prefix)) {
			best = i
		}
	}
	if best >= 0 {
		b, err := r.families[best].parse(name)
		if err != nil {
			return nil, fmt.Errorf("workload: %q does not parse as %s: %w", name, r.families[best].pattern, err)
		}
		return b, nil
	}
	return nil, fmt.Errorf("workload: unknown workload %q (want one of %s, or a family %s)",
		name, strings.Join(r.Names(), "|"), strings.Join(r.Patterns(), "|"))
}

// Names returns the exact entry names, sorted for stable error messages
// and help text.
func (r *Registry) Names() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	sort.Strings(out)
	return out
}

// Patterns returns the family name shapes in registration order.
func (r *Registry) Patterns() []string {
	out := make([]string, len(r.families))
	for i, f := range r.families {
		out[i] = f.pattern
	}
	return out
}

// Default is the built-in catalog: the paper's three applications, the
// synthetic primitives promoted to named entries, and the parameterized
// synth/burst-mix families. Experiment specs and sweep grids resolve
// workload names through it.
var Default = buildDefaultRegistry()

func buildDefaultRegistry() *Registry {
	r := NewRegistry()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	// The paper trio. The Builder signature hands the Scale straight
	// through, so these are byte-identical to calling TPCC/MailServer/
	// WebServer directly.
	must(r.Register("tpcc", func(s Scale, g *sim.RNG) Generator { return TPCC(s, g) }))
	must(r.Register("mail", func(s Scale, g *sim.RNG) Generator { return MailServer(s, g) }))
	must(r.Register("web", func(s Scale, g *sim.RNG) Generator { return WebServer(s, g) }))

	// Synthetic primitives as catalog entries. synthIOPS matches the
	// public lbica.Options synthetic default so both front doors describe
	// the same stream.
	must(r.Register("synth-randread", synthRand("synth-randread", 1, defaultZipf)))
	must(r.Register("synth-randwrite", synthRand("synth-randwrite", 0, defaultZipf)))
	must(r.Register("synth-mixed", synthRand("synth-mixed", 0.5, 0.9)))
	must(r.Register("synth-seqread", synthSeq("synth-seqread", 1)))
	must(r.Register("synth-seqwrite", synthSeq("synth-seqwrite", 0)))

	// Zipf-parameterized random families: synth-randread-zipf1.2 etc.
	must(r.RegisterFamily("synth-randread-zipf", "synth-randread-zipf<exp>", zipfFamily("synth-randread-zipf", 1)))
	must(r.RegisterFamily("synth-randwrite-zipf", "synth-randwrite-zipf<exp>", zipfFamily("synth-randwrite-zipf", 0)))

	// The burst-mix catalog: ON/OFF-modulated mixed streams whose ON-rate
	// multiple, duty cycle and read ratio are encoded in the name, plus
	// three presets spanning mild to adversarial burst pressure.
	must(r.Register("burst-mix-lo", burstMix("burst-mix-lo", 2, 0.2, 0.7)))
	must(r.Register("burst-mix-mid", burstMix("burst-mix-mid", 4, 0.3, 0.5)))
	must(r.Register("burst-mix-hi", burstMix("burst-mix-hi", 6, 0.45, 0.35)))
	must(r.RegisterFamily("burst-mix-on", "burst-mix-on<mult>x-duty<frac>-read<ratio>", parseBurstMix))
	return r
}

// Synthetic catalog constants: one 4 KiB-block working set roughly 1.5×
// the default cache for the random streams (so misses stay alive past
// prewarm), the sequential streams over a large span, and the lbica
// front-door's synthetic arrival rate.
const (
	synthIOPS      = 8000
	synthRandomWS  = 96 * 1024
	synthSeqWS     = 1 << 20
	defaultZipf    = 0.8
	burstMixBase   = 3000
	burstMixPeriod = 200 * time.Millisecond
)

// synthRand builds a single-phase random stream entry.
func synthRand(name string, readRatio, zipf float64) Builder {
	return func(s Scale, g *sim.RNG) Generator {
		s = s.normalize()
		return NewPhaseGen(name, []Phase{{
			Name:             "synth",
			Duration:         s.span(s.Intervals),
			BaseIOPS:         synthIOPS * s.RateFactor,
			ReadRatio:        readRatio,
			WorkingSetBlocks: synthRandomWS,
			ZipfExponent:     zipf,
		}}, g)
	}
}

// synthSeq builds a single-phase sequential stream entry (95% run
// continuation, large transfers).
func synthSeq(name string, readRatio float64) Builder {
	return func(s Scale, g *sim.RNG) Generator {
		s = s.normalize()
		return NewPhaseGen(name, []Phase{{
			Name:             "synth",
			Duration:         s.span(s.Intervals),
			BaseIOPS:         synthIOPS * s.RateFactor,
			ReadRatio:        readRatio,
			WorkingSetBlocks: synthSeqWS,
			Sequential:       0.95,
			SizesSectors:     []int64{64, 128},
		}}, g)
	}
}

// zipfFamily parses "<prefix><exp>" names into Zipf-skewed random streams.
func zipfFamily(prefix string, readRatio float64) func(string) (Builder, error) {
	return func(name string) (Builder, error) {
		exp, err := strconv.ParseFloat(strings.TrimPrefix(name, prefix), 64)
		if err != nil {
			return nil, fmt.Errorf("bad exponent: %w", err)
		}
		if !(exp >= 0 && exp <= 4) {
			return nil, fmt.Errorf("exponent %v outside [0, 4]", exp)
		}
		return synthRand(name, readRatio, exp), nil
	}
}

// burstMix builds an ON/OFF-modulated mixed stream: the OFF rate is
// burstMixBase, the ON rate onMult× that, with the given duty cycle over a
// fixed 200 ms period and the given read ratio. Scale.BurstMult composes
// on top (it scales the encoded ON rate and duty further), so the
// burst-intensity sweep axis applies to the family exactly as it does to
// the paper trio.
func burstMix(name string, onMult, duty, readRatio float64) Builder {
	return func(s Scale, g *sim.RNG) Generator {
		s = s.normalize()
		on := time.Duration(duty * float64(burstMixPeriod))
		phases := []Phase{{
			Name:             "burst-mix",
			Duration:         s.span(s.Intervals),
			BaseIOPS:         burstMixBase * s.RateFactor,
			BurstIOPS:        onMult * burstMixBase * s.RateFactor,
			BurstOn:          on,
			BurstOff:         burstMixPeriod - on,
			ReadRatio:        readRatio,
			WorkingSetBlocks: synthRandomWS,
			ZipfExponent:     1.0,
		}}
		return NewPhaseGen(name, s.applyBurst(phases), g)
	}
}

// parseBurstMix decodes "burst-mix-on<m>x-duty<d>-read<r>" names.
func parseBurstMix(name string) (Builder, error) {
	rest, ok := strings.CutPrefix(name, "burst-mix-on")
	if !ok {
		return nil, fmt.Errorf("missing burst-mix-on prefix")
	}
	onStr, rest, ok := strings.Cut(rest, "x-duty")
	if !ok {
		return nil, fmt.Errorf("missing x-duty segment")
	}
	dutyStr, readStr, ok := strings.Cut(rest, "-read")
	if !ok {
		return nil, fmt.Errorf("missing -read segment")
	}
	onMult, err := strconv.ParseFloat(onStr, 64)
	if err != nil {
		return nil, fmt.Errorf("bad ON-rate multiple: %w", err)
	}
	duty, err := strconv.ParseFloat(dutyStr, 64)
	if err != nil {
		return nil, fmt.Errorf("bad duty cycle: %w", err)
	}
	read, err := strconv.ParseFloat(readStr, 64)
	if err != nil {
		return nil, fmt.Errorf("bad read ratio: %w", err)
	}
	if !(onMult > 0 && onMult <= 100) {
		return nil, fmt.Errorf("ON-rate multiple %v outside (0, 100]", onMult)
	}
	if !(duty > 0 && duty <= maxDuty) {
		return nil, fmt.Errorf("duty cycle %v outside (0, %v]", duty, maxDuty)
	}
	if !(read >= 0 && read <= 1) {
		return nil, fmt.Errorf("read ratio %v outside [0, 1]", read)
	}
	return burstMix(name, onMult, duty, read), nil
}
