package workload

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
	"time"

	"lbica/internal/block"
)

// requestsFromBytes deterministically decodes a fuzz input into a request
// list: each 25-byte chunk becomes one request, exactly the codec's record
// layout, so every bit pattern the wire format can carry gets exercised.
func requestsFromBytes(data []byte) []Request {
	var reqs []Request
	for len(data) >= reqRecordSize {
		rec := data[:reqRecordSize]
		data = data[reqRecordSize:]
		reqs = append(reqs, Request{
			At: time.Duration(binary.LittleEndian.Uint64(rec[0:])),
			Op: block.Op(rec[8]),
			Extent: block.Extent{
				LBA:     int64(binary.LittleEndian.Uint64(rec[9:])),
				Sectors: int64(binary.LittleEndian.Uint64(rec[17:])),
			},
		})
	}
	return reqs
}

// FuzzRequestCodecRoundTrip: any request list — including ones with
// negative times, out-of-range ops, and extreme extents — must survive
// SaveRequests → LoadRequests bit for bit.
func FuzzRequestCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, reqRecordSize))
	f.Add(bytes.Repeat([]byte{0xff}, 3*reqRecordSize))
	f.Add([]byte("twenty-five bytes of text")) // exactly one record
	f.Fuzz(func(t *testing.T, data []byte) {
		reqs := requestsFromBytes(data)
		var buf bytes.Buffer
		if err := SaveRequests(&buf, reqs); err != nil {
			t.Fatalf("save: %v", err)
		}
		back, err := LoadRequests(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("load-back: %v", err)
		}
		if !reflect.DeepEqual(reqs, back) {
			t.Fatalf("round trip diverged: saved %d requests, loaded %d\n  saved  %+v\n  loaded %+v",
				len(reqs), len(back), reqs, back)
		}
	})
}

// FuzzLoadRequests hardens the decoder against arbitrary streams: it may
// reject (bad magic, torn record), but must never panic, and any stream
// it accepts must re-save and re-load to the same requests.
func FuzzLoadRequests(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(reqMagic))
	f.Add([]byte("LBICAWL1 then a torn record"))
	f.Add([]byte("not a workload stream at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		reqs, err := LoadRequests(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := SaveRequests(&buf, reqs); err != nil {
			t.Fatalf("re-save of accepted stream failed: %v", err)
		}
		back, err := LoadRequests(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-load of re-saved stream failed: %v", err)
		}
		if !reflect.DeepEqual(reqs, back) {
			t.Fatalf("load∘save∘load diverged from load:\n  first  %+v\n  second %+v", reqs, back)
		}
	})
}
