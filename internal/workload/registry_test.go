package workload

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"lbica/internal/sim"
)

func testScale() Scale {
	return Scale{Interval: 50 * time.Millisecond, Intervals: 8, RateFactor: 1, BurstMult: 1}
}

func TestRegistryRegisterRejectsBadEntries(t *testing.T) {
	r := NewRegistry()
	b := func(Scale, *sim.RNG) Generator { return nil }
	if err := r.Register("", b); err == nil {
		t.Error("empty name accepted")
	}
	if err := r.Register("x", nil); err == nil {
		t.Error("nil builder accepted")
	}
	if err := r.Register("x", b); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("x", b); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := r.RegisterFamily("fam-", "fam-<n>", func(string) (Builder, error) { return b, nil }); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterFamily("fam-", "fam-<n>", func(string) (Builder, error) { return b, nil }); err == nil {
		t.Error("duplicate family prefix accepted")
	}
	if err := r.RegisterFamily("", "", nil); err == nil {
		t.Error("empty family accepted")
	}
}

// TestRegistryResolveExactBeforeFamily: an exact entry wins over a family
// whose prefix also matches, and among families the longest prefix wins.
func TestRegistryResolveExactBeforeFamily(t *testing.T) {
	r := NewRegistry()
	mark := ""
	mk := func(tag string) Builder {
		return func(Scale, *sim.RNG) Generator { mark = tag; return nil }
	}
	if err := r.Register("a-b", mk("exact")); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterFamily("a-", "a-<x>", func(string) (Builder, error) { return mk("short"), nil }); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterFamily("a-b-", "a-b-<x>", func(string) (Builder, error) { return mk("long"), nil }); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]string{"a-b": "exact", "a-zzz": "short", "a-b-1": "long"} {
		b, err := r.Resolve(name)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", name, err)
		}
		b(Scale{}, nil)
		if mark != want {
			t.Errorf("Resolve(%q) hit %q entry, want %q", name, mark, want)
		}
	}
	if _, err := r.Resolve("zzz"); err == nil {
		t.Error("unknown name resolved")
	}
}

// TestDefaultCatalog: every advertised exact name builds a generator that
// emits requests, and its Name() matches the catalog name (so run results
// label themselves consistently).
func TestDefaultCatalog(t *testing.T) {
	names := Default.Names()
	if len(names) < 11 {
		t.Fatalf("catalog has %d names, want the trio + synth + burst-mix presets: %v", len(names), names)
	}
	for _, name := range names {
		b, err := Default.Resolve(name)
		if err != nil {
			t.Fatalf("catalog name %q does not resolve: %v", name, err)
		}
		g := b(testScale(), sim.NewRNG(1, "wl:"+name))
		if g.Name() != name {
			t.Errorf("catalog %q builds generator named %q", name, g.Name())
		}
		n := 0
		for {
			if _, ok := g.Next(); !ok {
				break
			}
			n++
		}
		if n == 0 {
			t.Errorf("catalog %q generated no requests", name)
		}
	}
}

// TestFamilyNamesRoundTrip pins the parameterized name grammar.
func TestFamilyNamesRoundTrip(t *testing.T) {
	for _, name := range []string{
		"synth-randread-zipf1.2",
		"synth-randread-zipf0",
		"synth-randwrite-zipf0.5",
		"burst-mix-on6x-duty0.45-read0.35",
		"burst-mix-on2x-duty0.1-read1",
	} {
		b, err := Default.Resolve(name)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", name, err)
		}
		g := b(testScale(), sim.NewRNG(1, "wl"))
		if g.Name() != name {
			t.Errorf("%q builds generator named %q", name, g.Name())
		}
	}
	for _, name := range []string{
		"synth-randread-zipfX",
		"synth-randread-zipf9",
		"synth-randread-zipf-1",
		"burst-mix-on0x-duty0.3-read0.5",
		"burst-mix-on4x-duty0-read0.5",
		"burst-mix-on4x-duty0.99-read0.5",
		"burst-mix-on4x-duty0.3-read1.5",
		"burst-mix-on4x-duty0.3",
		"burst-mix-nonsense",
	} {
		if _, err := Default.Resolve(name); err == nil {
			t.Errorf("bad family name %q resolved", name)
		}
	}
}

// TestZipfFamilySkewsLocality: a higher encoded Zipf exponent concentrates
// references onto fewer distinct blocks — the parameter in the name has to
// actually reach the generator.
func TestZipfFamilySkewsLocality(t *testing.T) {
	distinct := func(name string) int {
		b, err := Default.Resolve(name)
		if err != nil {
			t.Fatal(err)
		}
		g := b(testScale(), sim.NewRNG(7, "wl"))
		seen := map[int64]bool{}
		for i := 0; i < 3000; i++ {
			r, ok := g.Next()
			if !ok {
				break
			}
			seen[r.Extent.LBA] = true
		}
		return len(seen)
	}
	lo, hi := distinct("synth-randread-zipf0.2"), distinct("synth-randread-zipf1.4")
	if hi >= lo {
		t.Errorf("zipf1.4 touched %d distinct blocks, zipf0.2 %d — exponent did not skew locality", hi, lo)
	}
}

// TestApplyBurstScalesShape pins the burst-multiplier semantics: ON-rate
// and duty cycle scale together, the ON+OFF period is preserved, the duty
// cycle caps at maxDuty, and a multiplier of exactly 1 is the identity.
func TestApplyBurstScalesShape(t *testing.T) {
	base := []Phase{
		{Name: "steady", Duration: time.Second, BaseIOPS: 100},
		{Name: "burst", Duration: time.Second, BaseIOPS: 100, BurstIOPS: 1000,
			BurstOn: 60 * time.Millisecond, BurstOff: 140 * time.Millisecond},
	}
	s := Scale{BurstMult: 2}
	out := s.applyBurst(base)
	if !reflect.DeepEqual(out[0], base[0]) {
		t.Errorf("non-bursting phase changed: %+v", out[0])
	}
	b := out[1]
	if b.BurstIOPS != 2000 {
		t.Errorf("BurstIOPS = %v, want 2000", b.BurstIOPS)
	}
	if period := b.BurstOn + b.BurstOff; period != 200*time.Millisecond {
		t.Errorf("ON+OFF period = %v, want preserved 200ms", period)
	}
	if b.BurstOn != 120*time.Millisecond {
		t.Errorf("BurstOn = %v, want 120ms (duty 0.3 → 0.6)", b.BurstOn)
	}
	// Cap: duty 0.3 × 4 = 1.2 clamps to maxDuty.
	capd := Scale{BurstMult: 4}.applyBurst(base)[1]
	if got := float64(capd.BurstOn) / float64(capd.BurstOn+capd.BurstOff); got > maxDuty+1e-9 {
		t.Errorf("duty cycle %v exceeds cap %v", got, maxDuty)
	}
	// Identity must be exact — pre-existing goldens depend on it.
	id := Scale{BurstMult: 1}.applyBurst(base)
	for i := range base {
		if !reflect.DeepEqual(id[i], base[i]) {
			t.Errorf("BurstMult 1 changed phase %d: %+v != %+v", i, id[i], base[i])
		}
	}
}

// TestScaleNormalizePanicsOnNegative: zero means default; a negative field
// is a caller bug and must not be silently rewritten.
func TestScaleNormalizePanicsOnNegative(t *testing.T) {
	for _, s := range []Scale{
		{RateFactor: -1},
		{Intervals: -3},
		{Interval: -time.Second},
		{BurstMult: -0.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Scale %+v normalized without panic", s)
				}
			}()
			s.normalize()
		}()
	}
	n := Scale{}.normalize()
	if n.Interval != 200*time.Millisecond || n.Intervals != 200 || n.RateFactor != 1 || n.BurstMult != 1 {
		t.Errorf("zero Scale normalized to %+v, want the documented defaults", n)
	}
}

// TestBurstMixIntensity: scaling the burst multiplier up makes the
// burst-mix stream arrive faster (more requests in the same virtual
// span) — the axis has to change the generated workload, not just its
// label.
func TestBurstMixIntensity(t *testing.T) {
	count := func(bm float64) int {
		b, err := Default.Resolve("burst-mix-hi")
		if err != nil {
			t.Fatal(err)
		}
		s := testScale()
		s.BurstMult = bm
		g := b(s, sim.NewRNG(11, "wl"))
		n := 0
		for {
			if _, ok := g.Next(); !ok {
				break
			}
			n++
		}
		return n
	}
	soft, published, sharp := count(0.5), count(1), count(2)
	if !(soft < published && published < sharp) {
		t.Errorf("request counts not ordered by burst intensity: 0.5× %d, 1× %d, 2× %d", soft, published, sharp)
	}
}

// TestHostileRegistryNames: the registry itself accepts any non-empty
// name — quoting and sanitizing are the emitters' job — so a name full of
// CSV metacharacters must register and resolve.
func TestHostileRegistryNames(t *testing.T) {
	r := NewRegistry()
	hostile := `wl,"quoted"` + "\nnewline"
	if err := r.Register(hostile, func(s Scale, g *sim.RNG) Generator {
		return NewPhaseGen(hostile, []Phase{{Name: "p", Duration: time.Second, BaseIOPS: 10, WorkingSetBlocks: 64}}, g)
	}); err != nil {
		t.Fatal(err)
	}
	b, err := r.Resolve(hostile)
	if err != nil {
		t.Fatal(err)
	}
	if g := b(testScale(), sim.NewRNG(1, "wl")); !strings.Contains(g.Name(), "quoted") {
		t.Errorf("hostile name mangled: %q", g.Name())
	}
}
