package workload

import (
	"lbica/internal/ckpt"
	"lbica/internal/sim"
)

// EncodeState serializes the generator's mid-stream position: RNG, phase
// cursor, ON/OFF burst state, and sequential-run registers. The phase
// schedule itself is immutable configuration the restoring side rebuilds
// from, and the lazily built Zipf distributions are pure draw-free
// functions of (phase, index) reconstructed on decode.
func (p *PhaseGen) EncodeState(enc *ckpt.Encoder) {
	enc.Section("workload.PhaseGen")
	enc.String(p.name)
	p.g.EncodeState(enc)
	enc.Duration(p.cursor)
	enc.Int(p.phaseIdx)
	enc.Duration(p.phaseTop)
	enc.Int(p.zipfIdx)
	enc.Int(p.wzipfIdx)
	enc.Bool(p.burstOn)
	enc.Duration(p.burstTop)
	enc.I64(p.seqNext)
	enc.Bool(p.seqRun)
	enc.I64(p.wseqNext)
	enc.Bool(p.wseqRun)
}

// DecodeState restores the generator in place. The checkpoint must have
// been written by a generator over the same schedule; the name and index
// ranges cross-check that, and the Zipf distributions are rebuilt from
// the recorded phase indices (CDF construction consumes no RNG draws, so
// the rebuild is invisible to the stream).
func (p *PhaseGen) DecodeState(d *ckpt.Decoder) {
	d.Section("workload.PhaseGen")
	name := d.String()
	if d.Err() != nil {
		return
	}
	if name != p.name {
		d.Failf("workload: generator name mismatch: checkpoint has %q, stack has %q", name, p.name)
		return
	}
	p.g.DecodeState(d)
	cursor := d.Duration()
	phaseIdx := d.Int()
	phaseTop := d.Duration()
	zipfIdx := d.Int()
	wzipfIdx := d.Int()
	burstOn := d.Bool()
	burstTop := d.Duration()
	seqNext := d.I64()
	seqRun := d.Bool()
	wseqNext := d.I64()
	wseqRun := d.Bool()
	if d.Err() != nil {
		return
	}
	if phaseIdx < 0 || phaseIdx > len(p.phases) {
		d.Failf("workload: phase index %d outside schedule of %d phases", phaseIdx, len(p.phases))
		return
	}
	if zipfIdx < -1 || zipfIdx >= len(p.phases) ||
		(zipfIdx >= 0 && p.phases[zipfIdx].WorkingSetBlocks <= 0) {
		d.Failf("workload: zipf index %d invalid for schedule of %d phases", zipfIdx, len(p.phases))
		return
	}
	if wzipfIdx < -1 || wzipfIdx >= len(p.phases) ||
		(wzipfIdx >= 0 && p.phases[wzipfIdx].WriteWorkingSetBlocks <= 0) {
		d.Failf("workload: write-zipf index %d invalid for schedule of %d phases", wzipfIdx, len(p.phases))
		return
	}
	p.cursor = cursor
	p.phaseIdx = phaseIdx
	p.phaseTop = phaseTop
	p.zipfIdx = zipfIdx
	p.wzipfIdx = wzipfIdx
	p.burstOn = burstOn
	p.burstTop = burstTop
	p.seqNext = seqNext
	p.seqRun = seqRun
	p.wseqNext = wseqNext
	p.wseqRun = wseqRun
	p.zipf, p.wzipf = nil, nil
	if zipfIdx >= 0 {
		ph := &p.phases[zipfIdx]
		p.zipf = sim.NewZipf(p.g, int(ph.WorkingSetBlocks), zipfExp(ph.ZipfExponent))
	}
	if wzipfIdx >= 0 {
		ph := &p.phases[wzipfIdx]
		p.wzipf = sim.NewZipf(p.g, int(ph.WriteWorkingSetBlocks), zipfExp(ph.WriteZipfExponent))
	}
}

// EncodeState serializes the replay position; the recorded stream is
// shared configuration.
func (r *Replay) EncodeState(enc *ckpt.Encoder) {
	enc.Section("workload.Replay")
	enc.String(r.name)
	enc.Int(r.pos)
}

// DecodeState restores the replay position in place.
func (r *Replay) DecodeState(d *ckpt.Decoder) {
	d.Section("workload.Replay")
	name := d.String()
	pos := d.Int()
	if d.Err() != nil {
		return
	}
	if name != r.name {
		d.Failf("workload: replay name mismatch: checkpoint has %q, stack has %q", name, r.name)
		return
	}
	if pos < 0 || pos > len(r.reqs) {
		d.Failf("workload: replay position %d outside stream of %d requests", pos, len(r.reqs))
		return
	}
	r.pos = pos
}

// EncodeState serializes the remaining budget plus the wrapped
// generator's state; a non-checkpointable inner generator fails the
// encode (callers fall back to scratch).
func (l *Limit) EncodeState(enc *ckpt.Encoder) {
	enc.Section("workload.Limit")
	enc.Int(l.left)
	sc, ok := l.inner.(ckpt.StateCodec)
	if !ok {
		enc.Failf("workload: limit wraps non-checkpointable generator %T", l.inner)
		return
	}
	sc.EncodeState(enc)
}

// DecodeState restores the budget and the wrapped generator in place.
func (l *Limit) DecodeState(d *ckpt.Decoder) {
	d.Section("workload.Limit")
	left := d.Int()
	sc, ok := l.inner.(ckpt.StateCodec)
	if !ok {
		d.Failf("workload: limit wraps non-checkpointable generator %T", l.inner)
		return
	}
	sc.DecodeState(d)
	if d.Err() != nil {
		return
	}
	l.left = left
}
