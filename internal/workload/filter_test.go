package workload

import (
	"reflect"
	"testing"

	"lbica/internal/sim"
)

// Two filters with complementary predicates over bit-identical copies of
// the same stream must partition it: every request lands in exactly one
// sub-stream, in arrival order.
func TestFilterPartitionsStream(t *testing.T) {
	build := func() Generator {
		return TPCC(Scale{Intervals: 4}, sim.NewRNG(3, "workload:tpcc"))
	}
	full := drain(build(), 1<<30)
	if len(full) < 100 {
		t.Fatalf("base stream too short to test: %d requests", len(full))
	}
	even := drain(NewFilter(build(), func(r Request) bool { return r.Extent.LBA%16 == 0 }), 1<<30)
	odd := drain(NewFilter(build(), func(r Request) bool { return r.Extent.LBA%16 != 0 }), 1<<30)
	if len(even)+len(odd) != len(full) {
		t.Fatalf("partition lost requests: %d + %d != %d", len(even), len(odd), len(full))
	}
	if len(even) == 0 || len(odd) == 0 {
		t.Fatalf("degenerate partition: %d / %d", len(even), len(odd))
	}
	// Interleave check: merging the two sub-streams by arrival time (they
	// are subsequences of one stream, so stable order is preserved) must
	// reproduce the full stream exactly.
	merged := make([]Request, 0, len(full))
	i, j := 0, 0
	for _, r := range full {
		switch {
		case i < len(even) && even[i] == r:
			merged = append(merged, even[i])
			i++
		case j < len(odd) && odd[j] == r:
			merged = append(merged, odd[j])
			j++
		default:
			t.Fatalf("request %+v in neither sub-stream at its position", r)
		}
	}
	if !reflect.DeepEqual(merged, full) {
		t.Fatal("merged sub-streams differ from the base stream")
	}
}

// A stateful predicate must see every request, including rejected ones, so
// its state advances in lockstep with a sibling filter over a stream copy.
func TestFilterPredicateSeesRejectedRequests(t *testing.T) {
	base := TPCC(Scale{Intervals: 2}, sim.NewRNG(1, "workload:tpcc"))
	n := 0
	f := NewFilter(base, func(Request) bool { n++; return n%3 == 0 })
	kept := drain(f, 1<<30)
	if n < len(kept)*3-2 || len(kept) == 0 {
		t.Fatalf("predicate saw %d requests for %d kept — rejected requests skipped?", n, len(kept))
	}
}

func TestFilterName(t *testing.T) {
	f := NewFilter(TPCC(Scale{Intervals: 1}, sim.NewRNG(1, "workload:tpcc")), func(Request) bool { return true })
	if f.Name() != "tpcc" {
		t.Errorf("Name() = %q, want tpcc", f.Name())
	}
}

func TestFilterHotBlocks(t *testing.T) {
	mk := func() Generator { return TPCC(Scale{Intervals: 2}, sim.NewRNG(1, "workload:tpcc")) }
	inner := mk()
	want := inner.(interface{ HotBlocks(int) []int64 }).HotBlocks(64)

	// No hot predicate: forwarded verbatim.
	got := NewFilter(mk(), func(Request) bool { return true }).HotBlocks(64)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("HotBlocks without predicate not forwarded: %v vs %v", got, want)
	}

	// Predicate keeps only even blocks: result is filtered, capped at n,
	// and drawn from an overfetched candidate set.
	f := NewFilter(mk(), func(Request) bool { return true }).
		WithHotFilter(func(b int64) bool { return b%2 == 0 }, 2)
	hot := f.HotBlocks(16)
	if len(hot) == 0 || len(hot) > 16 {
		t.Fatalf("filtered HotBlocks returned %d blocks", len(hot))
	}
	for _, b := range hot {
		if b%2 != 0 {
			t.Errorf("hot block %d fails the predicate", b)
		}
	}

	// A generator without HotBlocks yields nil.
	re := NewReplay("r", []Request{{}})
	if got := NewFilter(re, func(Request) bool { return true }).HotBlocks(8); got != nil {
		t.Errorf("HotBlocks over a Replay = %v, want nil", got)
	}
}
