package workload

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"lbica/internal/block"
	"lbica/internal/sim"
)

func TestCodecRoundTrip(t *testing.T) {
	orig := Drain(NewLimit(MixedRW(100*time.Millisecond, 5000, 1024, sim.NewRNG(1, "c")), 500))
	if len(orig) == 0 {
		t.Fatal("no requests to record")
	}
	var buf bytes.Buffer
	if err := SaveRequests(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRequests(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("loaded %d of %d", len(got), len(orig))
	}
	for i := range got {
		if got[i] != orig[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, got[i], orig[i])
		}
	}
}

func TestCodecEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveRequests(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRequests(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v %v", got, err)
	}
	// A totally empty reader yields an empty stream, not an error.
	got, err = LoadRequests(bytes.NewReader(nil))
	if err != nil || got != nil {
		t.Fatalf("empty reader: %v %v", got, err)
	}
}

func TestCodecBadMagic(t *testing.T) {
	if _, err := LoadRequests(strings.NewReader("NOTAWORKLOAD....")); err != ErrBadWorkloadMagic {
		t.Fatalf("err = %v, want ErrBadWorkloadMagic", err)
	}
}

func TestCodecTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveRequests(&buf, []Request{{At: 1, Op: block.Read, Extent: block.Extent{LBA: 1, Sectors: 8}}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := LoadRequests(bytes.NewReader(raw[:len(raw)-2])); err == nil || err == io.EOF {
		t.Fatalf("truncated stream must error, got %v", err)
	}
}

// Property: any request slice round-trips exactly.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(ats []int64, ops []bool, lbas []int64) bool {
		n := len(ats)
		if len(ops) < n {
			n = len(ops)
		}
		if len(lbas) < n {
			n = len(lbas)
		}
		reqs := make([]Request, n)
		for i := 0; i < n; i++ {
			op := block.Read
			if ops[i] {
				op = block.Write
			}
			reqs[i] = Request{
				At:     time.Duration(ats[i]),
				Op:     op,
				Extent: block.Extent{LBA: lbas[i], Sectors: int64(i%64) + 1},
			}
		}
		var buf bytes.Buffer
		if SaveRequests(&buf, reqs) != nil {
			return false
		}
		got, err := LoadRequests(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != reqs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDrainMatchesTee(t *testing.T) {
	mk := func() Generator { return RandomRead(50*time.Millisecond, 2000, 256, sim.NewRNG(9, "d")) }
	direct := Drain(mk())
	var captured []Request
	teed := NewTee(mk(), &captured)
	for {
		if _, ok := teed.Next(); !ok {
			break
		}
	}
	if len(direct) != len(captured) {
		t.Fatalf("drain %d vs tee %d", len(direct), len(captured))
	}
}
