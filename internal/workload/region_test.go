package workload

import (
	"testing"
	"time"

	"lbica/internal/block"
	"lbica/internal/sim"
)

func splitPhase() Phase {
	return Phase{
		Name: "split", Duration: 500 * time.Millisecond,
		BaseIOPS: 8000, ReadRatio: 0.5,
		WorkingSetBlocks: 4096, ZipfExponent: 1.0,
		WriteWorkingSetBlocks: 512, WriteBaseBlock: 1 << 20, WriteZipfExponent: 0.2,
	}
}

func TestSplitRegionsSeparateReadsAndWrites(t *testing.T) {
	g := NewPhaseGen("split", []Phase{splitPhase()}, sim.NewRNG(31, "w"))
	reqs := drain(g, 100000)
	if len(reqs) == 0 {
		t.Fatal("no requests")
	}
	reads, writes := 0, 0
	for _, r := range reqs {
		blockNum := r.Extent.LBA / BlockSectors
		if r.Op == block.Read {
			reads++
			if blockNum < 0 || blockNum >= 4096 {
				t.Fatalf("read at block %d outside the read region", blockNum)
			}
		} else {
			writes++
			if blockNum < 1<<20 || blockNum >= (1<<20)+512 {
				t.Fatalf("write at block %d outside the write region", blockNum)
			}
		}
	}
	if reads == 0 || writes == 0 {
		t.Fatal("one op type missing")
	}
}

func TestSharedRegionWhenWriteRegionUnset(t *testing.T) {
	p := splitPhase()
	p.WriteWorkingSetBlocks = 0
	g := NewPhaseGen("shared", []Phase{p}, sim.NewRNG(32, "w"))
	for _, r := range drain(g, 20000) {
		blockNum := r.Extent.LBA / BlockSectors
		if blockNum < 0 || blockNum >= 4096 {
			t.Fatalf("%v at block %d outside the shared region", r.Op, blockNum)
		}
	}
}

func TestWebServerRegionsDisjoint(t *testing.T) {
	s := Scale{Interval: 20 * time.Millisecond, Intervals: 50, RateFactor: 0.3}
	g := WebServer(s, sim.NewRNG(33, "w"))
	reqs := drain(g, 200000)
	for _, r := range reqs {
		blockNum := r.Extent.LBA / BlockSectors
		if r.Op == block.Write && blockNum < 1<<22 {
			t.Fatalf("web write at block %d inside the content region", blockNum)
		}
		if r.Op == block.Read && blockNum >= 1<<22 {
			t.Fatalf("web read at block %d inside the log region", blockNum)
		}
	}
}

func TestHotBlocksUseReadRegion(t *testing.T) {
	g := NewPhaseGen("split", []Phase{splitPhase()}, sim.NewRNG(34, "w"))
	for _, b := range g.HotBlocks(100) {
		if b < 0 || b >= 4096 {
			t.Fatalf("hot block %d outside the read region", b)
		}
	}
}

// Sequential runs must not leak across regions: a write run stays in the
// write region even when interleaved with reads.
func TestSequentialRunsPerRegion(t *testing.T) {
	p := splitPhase()
	p.Sequential = 0.9
	g := NewPhaseGen("seq-split", []Phase{p}, sim.NewRNG(35, "w"))
	for _, r := range drain(g, 50000) {
		blockNum := r.Extent.LBA / BlockSectors
		inWrite := blockNum >= 1<<20
		if r.Op == block.Write && !inWrite {
			t.Fatal("sequential write escaped its region")
		}
		if r.Op == block.Read && inWrite {
			t.Fatal("sequential read escaped its region")
		}
	}
}
