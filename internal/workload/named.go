package workload

import (
	"fmt"
	"time"

	"lbica/internal/sim"
)

// Scale anchors workload schedules to the experiment's monitor interval so
// that phase boundaries land on the interval indexes quoted in the paper
// (e.g. the mail server's policy flips at intervals 23, 128 and 134).
type Scale struct {
	// Interval is the monitor's sampling interval (one x-axis unit in
	// Figs. 4–6).
	Interval time.Duration
	// Intervals is the experiment length in intervals (200 for TPC-C and
	// mail, 175 for web in the paper).
	Intervals int
	// RateFactor scales every phase's IOPS; 1.0 is the calibrated default.
	RateFactor float64
	// BurstMult scales every bursting phase's ON-period arrival rate and
	// ON/OFF duty cycle (the ON+OFF period is preserved); 1.0 is the
	// workload's published burst shape, < 1 softens bursts, > 1 sharpens
	// them. Phases without ON/OFF modulation are unaffected.
	BurstMult float64
}

// DefaultScale matches the experiment harness defaults: 200 ms intervals,
// 200 of them.
func DefaultScale() Scale {
	return Scale{Interval: 200 * time.Millisecond, Intervals: 200, RateFactor: 1, BurstMult: 1}
}

// normalize fills zero fields with their defaults. Only the zero value
// means "use the default": a negative field is a caller bug (schedules are
// code — user input is validated upstream by the sweep grid and CLIs), and
// silently clamping it would run a different experiment than the one the
// caller labeled, so it panics instead.
func (s Scale) normalize() Scale {
	if s.Interval < 0 || s.Intervals < 0 || s.RateFactor < 0 || s.BurstMult < 0 {
		panic(fmt.Sprintf("workload: negative Scale field (%+v); zero means default, negatives are invalid", s))
	}
	if s.Interval == 0 {
		s.Interval = 200 * time.Millisecond
	}
	if s.Intervals == 0 {
		s.Intervals = 200
	}
	if s.RateFactor == 0 {
		s.RateFactor = 1
	}
	if s.BurstMult == 0 {
		s.BurstMult = 1
	}
	return s
}

// span converts an interval count to a duration.
func (s Scale) span(intervals int) time.Duration {
	return time.Duration(intervals) * s.Interval
}

// maxDuty caps the scaled ON/OFF duty cycle: an ON fraction of 1 would
// degenerate the modulation into a flat (non-burst) stream and starve the
// OFF-period recovery the detector's comparison depends on.
const maxDuty = 0.95

// applyBurst returns phases with s.BurstMult applied: each bursting
// phase's BurstIOPS and ON/OFF duty cycle scale by the multiplier while
// the ON+OFF period stays fixed, so burst *intensity* changes without
// moving phase boundaries off their published interval indexes. A
// multiplier of exactly 1 returns phases untouched — the identity is
// exact, not within float rounding, which is what keeps pre-existing
// goldens byte-identical.
func (s Scale) applyBurst(phases []Phase) []Phase {
	if s.BurstMult == 1 {
		return phases
	}
	out := make([]Phase, len(phases))
	copy(out, phases)
	for i := range out {
		ph := &out[i]
		if ph.BurstIOPS <= 0 || ph.BurstOn <= 0 {
			continue
		}
		ph.BurstIOPS *= s.BurstMult
		period := ph.BurstOn + ph.BurstOff
		duty := float64(ph.BurstOn) / float64(period) * s.BurstMult
		if duty > maxDuty {
			duty = maxDuty
		}
		ph.BurstOn = time.Duration(duty * float64(period))
		ph.BurstOff = period - ph.BurstOn
	}
	return out
}

// Burst periods used across the named workloads: bursts are ON/OFF flurries
// well inside one interval, so the per-interval maximum queue time (what
// Figs. 4–6 plot) reflects the ON peaks while the time-average load stays
// within the disk subsystem's drain capability.
const (
	burstOn  = 60 * time.Millisecond
	burstOff = 140 * time.Millisecond
)

// TPCC models the paper's TPC-C run: a short warm lead-in, then sustained
// random-read-dominant bursts over a working set about twice the cache, so
// the SSD queue fills with application reads (R) and promotes (P) — the
// paper's Group 1 signature (measured there as R 44%, W 2.2%, P 51%,
// E 2.8% at interval 3).
func TPCC(s Scale, g *sim.RNG) *PhaseGen {
	s = s.normalize()
	warm := 3
	rest := s.Intervals - warm
	phases := []Phase{
		{
			Name:             "warm",
			Duration:         s.span(warm),
			BaseIOPS:         4000 * s.RateFactor,
			ReadRatio:        0.95,
			WorkingSetBlocks: 144 * 1024,
			ZipfExponent:     0.85,
			SizesSectors:     []int64{8, 8, 8, 16},
		},
		{
			Name:             "oltp-burst",
			Duration:         s.span(rest),
			BaseIOPS:         3000 * s.RateFactor,
			BurstIOPS:        13000 * s.RateFactor,
			BurstOn:          burstOn,
			BurstOff:         burstOff,
			ReadRatio:        0.95,
			WorkingSetBlocks: 144 * 1024,
			ZipfExponent:     0.85,
			SizesSectors:     []int64{8, 8, 8, 16},
		},
	}
	return NewPhaseGen("tpcc", s.applyBurst(phases), g)
}

// MailServer models the paper's mail run, whose published decision
// timeline is the richest: mixed read/write bursts from interval 23
// (R 13.9%, W 70.4% → Group 2 → RO), a random-read burst at 128 (→ Group 1
// → WO), then a write-intensive tail from 134 (W+E ≈ 90% → Group 3 → WB
// with tail bypass).
func MailServer(s Scale, g *sim.RNG) *PhaseGen {
	s = s.normalize()
	warm := 23
	mixed := 105 // intervals 23..127
	rr := 6      // intervals 128..133
	tail := s.Intervals - warm - mixed - rr
	if tail < 0 {
		tail = 0
	}
	phases := []Phase{
		{
			Name:             "inbox-steady",
			Duration:         s.span(warm),
			BaseIOPS:         5000 * s.RateFactor,
			ReadRatio:        0.45,
			WorkingSetBlocks: 48 * 1024,
			ZipfExponent:     1.0,
			Sequential:       0.2,
			SizesSectors:     []int64{8, 8, 16, 32},
		},
		{
			Name:             "delivery-burst",
			Duration:         s.span(mixed),
			BaseIOPS:         3000 * s.RateFactor,
			BurstIOPS:        17000 * s.RateFactor,
			BurstOn:          burstOn,
			BurstOff:         burstOff,
			ReadRatio:        0.30,
			WorkingSetBlocks: 48 * 1024,
			ZipfExponent:     1.0,
			Sequential:       0.2,
			SizesSectors:     []int64{8, 8, 16, 32},
		},
		{
			Name:             "mailbox-scan",
			Duration:         s.span(rr),
			BaseIOPS:         3000 * s.RateFactor,
			BurstIOPS:        13000 * s.RateFactor,
			BurstOn:          burstOn,
			BurstOff:         burstOff,
			ReadRatio:        0.97,
			WorkingSetBlocks: 48 * 1024,
			BaseBlock:        1 << 21, // a region the warm cache has not seen
			ZipfExponent:     1.3,
			SizesSectors:     []int64{8, 8, 8, 16},
		},
		{
			Name:             "journal-flush",
			Duration:         s.span(tail),
			BaseIOPS:         3000 * s.RateFactor,
			BurstIOPS:        22000 * s.RateFactor,
			BurstOn:          burstOn,
			BurstOff:         burstOff,
			ReadRatio:        0.05,
			WorkingSetBlocks: 16 * 1024,
			ZipfExponent:     0.9,
			Sequential:       0.3,
			SizesSectors:     []int64{8, 16},
		},
	}
	return NewPhaseGen("mail", s.applyBurst(phases), g)
}

// WebServer models the paper's web run: a heavy mixed read/write burst
// right from the first interval (R 17.9%, W 63.8% → Group 2 → RO), easing
// into a moderate steady state with occasional flurries.
func WebServer(s Scale, g *sim.RNG) *PhaseGen {
	s = s.normalize()
	heavy := 25
	rest := s.Intervals - heavy
	// Reads serve site content; writes append to logs and session state in
	// their own region, so an RO assignment costs no content hits.
	const logBase = 1 << 22
	phases := []Phase{
		{
			Name:                  "peak-traffic",
			Duration:              s.span(heavy),
			BaseIOPS:              4000 * s.RateFactor,
			BurstIOPS:             17000 * s.RateFactor,
			BurstOn:               burstOn,
			BurstOff:              burstOff,
			ReadRatio:             0.34,
			WorkingSetBlocks:      48 * 1024,
			ZipfExponent:          1.1,
			Sequential:            0.15,
			SizesSectors:          []int64{8, 8, 16},
			WriteWorkingSetBlocks: 8 * 1024,
			WriteBaseBlock:        logBase,
			WriteZipfExponent:     0.3,
		},
		{
			Name:                  "steady-traffic",
			Duration:              s.span(rest),
			BaseIOPS:              3500 * s.RateFactor,
			BurstIOPS:             8000 * s.RateFactor,
			BurstOn:               burstOn,
			BurstOff:              400 * time.Millisecond,
			ReadRatio:             0.34,
			WorkingSetBlocks:      48 * 1024,
			ZipfExponent:          1.1,
			Sequential:            0.15,
			SizesSectors:          []int64{8, 8, 16},
			WriteWorkingSetBlocks: 8 * 1024,
			WriteBaseBlock:        logBase,
			WriteZipfExponent:     0.3,
		},
	}
	return NewPhaseGen("web", s.applyBurst(phases), g)
}

// Primitive single-phase workloads for unit tests, examples and ablations.

// RandomRead is a pure random-read stream.
func RandomRead(d time.Duration, iops float64, ws int64, g *sim.RNG) *PhaseGen {
	return NewPhaseGen("random-read", []Phase{{
		Name: "rr", Duration: d, BaseIOPS: iops, ReadRatio: 1,
		WorkingSetBlocks: ws, ZipfExponent: 0.8,
	}}, g)
}

// RandomWrite is a pure random-write stream.
func RandomWrite(d time.Duration, iops float64, ws int64, g *sim.RNG) *PhaseGen {
	return NewPhaseGen("random-write", []Phase{{
		Name: "rw", Duration: d, BaseIOPS: iops, ReadRatio: 0,
		WorkingSetBlocks: ws, ZipfExponent: 0.8,
	}}, g)
}

// SequentialRead streams reads with 95% run continuation.
func SequentialRead(d time.Duration, iops float64, ws int64, g *sim.RNG) *PhaseGen {
	return NewPhaseGen("seq-read", []Phase{{
		Name: "sr", Duration: d, BaseIOPS: iops, ReadRatio: 1,
		WorkingSetBlocks: ws, Sequential: 0.95, SizesSectors: []int64{64, 128},
	}}, g)
}

// SequentialWrite streams writes with 95% run continuation.
func SequentialWrite(d time.Duration, iops float64, ws int64, g *sim.RNG) *PhaseGen {
	return NewPhaseGen("seq-write", []Phase{{
		Name: "sw", Duration: d, BaseIOPS: iops, ReadRatio: 0,
		WorkingSetBlocks: ws, Sequential: 0.95, SizesSectors: []int64{64, 128},
	}}, g)
}

// MixedRW is an even read/write random mix.
func MixedRW(d time.Duration, iops float64, ws int64, g *sim.RNG) *PhaseGen {
	return NewPhaseGen("mixed-rw", []Phase{{
		Name: "mix", Duration: d, BaseIOPS: iops, ReadRatio: 0.5,
		WorkingSetBlocks: ws, ZipfExponent: 0.9,
	}}, g)
}
