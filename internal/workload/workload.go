// Package workload generates the application I/O streams of the paper's
// evaluation: TPC-C, a mail server and a web server, all with burst
// behavior, plus a catalog of synthetic workloads (random/sequential
// read/write, mixed, and the parameterized burst-mix family) registered
// in Registry/Default so experiments and sweeps can name them.
//
// The physical evaluation replays real applications; here each workload is
// a schedule of phases, each phase an ON/OFF modulated Poisson arrival
// process over a Zipf-skewed working set with a tunable read ratio and
// sequentiality. Phase timelines are expressed in monitor intervals so the
// published decision timeline (e.g. mail server: mixed-RW burst at interval
// 23, random-read burst at 128, write burst at 134) can be laid out
// directly. Scale carries the experiment's interval geometry plus the
// rate and burst-intensity multipliers every schedule honors.
package workload

import (
	"fmt"
	"time"

	"lbica/internal/block"
	"lbica/internal/sim"
)

// Request is one application-level I/O.
type Request struct {
	At     time.Duration
	Op     block.Op
	Extent block.Extent
}

// Generator produces a time-ordered request stream.
type Generator interface {
	// Name identifies the workload.
	Name() string
	// Next returns the next request; ok=false ends the stream.
	Next() (r Request, ok bool)
}

// CloneableGenerator is a Generator whose mid-stream state can be
// deep-copied for a forked run. CloneGenerator must return a generator
// that emits exactly the sequence the original would emit from this point
// on, without disturbing the original.
type CloneableGenerator interface {
	Generator
	CloneGenerator() Generator
}

// Phase is one segment of a workload schedule.
type Phase struct {
	// Name labels the phase in traces and logs.
	Name string
	// Duration of the phase in virtual time.
	Duration time.Duration
	// BaseIOPS is the arrival rate outside bursts.
	BaseIOPS float64
	// BurstIOPS, when > 0, turns on ON/OFF modulation: ON periods arrive
	// at BurstIOPS, OFF periods at BaseIOPS.
	BurstIOPS float64
	// BurstOn/BurstOff are the mean ON and OFF period lengths
	// (exponentially distributed).
	BurstOn, BurstOff time.Duration
	// ReadRatio is the fraction of reads in [0,1].
	ReadRatio float64
	// Sequential is the probability a request continues the current
	// sequential run instead of jumping.
	Sequential float64
	// WorkingSetBlocks is the number of distinct 4 KiB-block-sized slots
	// addressed; BaseBlock offsets the set in the address space.
	WorkingSetBlocks int64
	BaseBlock        int64
	// ZipfExponent skews references toward hot blocks (0 = uniform).
	ZipfExponent float64
	// SizesSectors are the request sizes drawn uniformly (default {8}).
	SizesSectors []int64

	// Optional separate write region. When WriteWorkingSetBlocks > 0,
	// writes address their own region (WriteBaseBlock, WriteZipfExponent)
	// instead of the shared one — a web server writing logs while serving
	// content, for instance. Reads never touch the write region, so an RO
	// cache's write-path invalidations cost no read hits.
	WriteWorkingSetBlocks int64
	WriteBaseBlock        int64
	WriteZipfExponent     float64
}

// writeRegion reports whether writes use a separate address region.
func (p *Phase) writeRegion() bool { return p.WriteWorkingSetBlocks > 0 }

// BlockSectors is the addressing granularity phases are defined in
// (8 sectors = 4 KiB). Exported because the array router's block-affine
// hash policy must agree with it: a volume's prewarm filter routes the
// same block numbers the generated LBAs decompose back into.
const BlockSectors = 8

// scramblePrime spreads Zipf ranks across the working set so hot blocks are
// not physically clustered.
const scramblePrime = 920419823

// PhaseGen is a phase-scheduled generator.
type PhaseGen struct {
	name   string
	phases []Phase
	g      *sim.RNG

	cursor   time.Duration
	phaseIdx int
	phaseTop time.Duration

	zipf     *sim.Zipfian
	zipfIdx  int
	wzipf    *sim.Zipfian
	wzipfIdx int
	burstOn  bool
	burstTop time.Duration
	seqNext  int64
	seqRun   bool
	wseqNext int64
	wseqRun  bool
}

// NewPhaseGen builds a generator from a schedule. Phases with zero
// duration are skipped.
func NewPhaseGen(name string, phases []Phase, g *sim.RNG) *PhaseGen {
	pg := &PhaseGen{name: name, phases: phases, g: g, phaseIdx: -1, zipfIdx: -1, wzipfIdx: -1}
	pg.advancePhase()
	return pg
}

// Name implements Generator.
func (p *PhaseGen) Name() string { return p.name }

// Phase returns the currently active phase, or nil when exhausted.
func (p *PhaseGen) Phase() *Phase {
	if p.phaseIdx < 0 || p.phaseIdx >= len(p.phases) {
		return nil
	}
	return &p.phases[p.phaseIdx]
}

func (p *PhaseGen) advancePhase() {
	for {
		p.phaseIdx++
		if p.phaseIdx >= len(p.phases) {
			return
		}
		ph := &p.phases[p.phaseIdx]
		if ph.Duration <= 0 {
			continue
		}
		p.phaseTop += ph.Duration
		p.burstOn = false
		p.burstTop = p.cursor
		p.seqRun = false
		return
	}
}

// zipfFor lazily builds the rank distribution for the current phase.
func (p *PhaseGen) zipfFor(ph *Phase) *sim.Zipfian {
	if p.zipfIdx != p.phaseIdx {
		p.zipf = sim.NewZipf(p.g, int(ph.WorkingSetBlocks), zipfExp(ph.ZipfExponent))
		p.zipfIdx = p.phaseIdx
	}
	return p.zipf
}

// wzipfFor lazily builds the write-region rank distribution.
func (p *PhaseGen) wzipfFor(ph *Phase) *sim.Zipfian {
	if p.wzipfIdx != p.phaseIdx {
		p.wzipf = sim.NewZipf(p.g, int(ph.WriteWorkingSetBlocks), zipfExp(ph.WriteZipfExponent))
		p.wzipfIdx = p.phaseIdx
	}
	return p.wzipf
}

func zipfExp(e float64) float64 {
	if e <= 0 {
		return 0.0001 // near-uniform
	}
	return e
}

// rankToBlock scrambles a Zipf rank into a block inside a working set.
func rankToBlock(base, ws int64, rank int) int64 {
	idx := (int64(rank) * scramblePrime) % ws
	if idx < 0 {
		idx += ws
	}
	return base + idx
}

// HotBlocks returns the n hottest block numbers of the first phase — the
// set the engine prewarms, honoring the paper's "past its warm-up
// interval" assumption.
func (p *PhaseGen) HotBlocks(n int) []int64 {
	if len(p.phases) == 0 {
		return nil
	}
	ph := &p.phases[0]
	if int64(n) > ph.WorkingSetBlocks {
		n = int(ph.WorkingSetBlocks)
	}
	out := make([]int64, n)
	for r := 0; r < n; r++ {
		out[r] = rankToBlock(ph.BaseBlock, ph.WorkingSetBlocks, r)
	}
	return out
}

// CloneGenerator implements CloneableGenerator. The phase schedule is
// shared (immutable after construction); the RNG and the lazily built
// Zipf distributions are re-bound to a cloned RNG so the copy's draw
// stream continues exactly where the original's stands.
func (p *PhaseGen) CloneGenerator() Generator {
	p2 := *p
	p2.g = p.g.Clone()
	if p.zipf != nil {
		p2.zipf = p.zipf.WithRNG(p2.g)
	}
	if p.wzipf != nil {
		p2.wzipf = p.wzipf.WithRNG(p2.g)
	}
	return &p2
}

// rate returns the arrival rate in effect at the cursor, advancing the
// ON/OFF state machine as needed.
func (p *PhaseGen) rate(ph *Phase) float64 {
	if ph.BurstIOPS <= 0 || ph.BurstOn <= 0 {
		return ph.BaseIOPS
	}
	for p.cursor >= p.burstTop {
		p.burstOn = !p.burstOn
		var mean time.Duration
		if p.burstOn {
			mean = ph.BurstOn
		} else {
			mean = ph.BurstOff
		}
		p.burstTop += sim.Exponential{M: mean, G: p.g}.Sample() + 1
	}
	if p.burstOn {
		return ph.BurstIOPS
	}
	return ph.BaseIOPS
}

// Next implements Generator.
func (p *PhaseGen) Next() (Request, bool) {
	for {
		ph := p.Phase()
		if ph == nil {
			return Request{}, false
		}
		rate := p.rate(ph)
		if rate <= 0 {
			// Idle phase: jump to its end.
			p.cursor = p.phaseTop
			p.advancePhase()
			continue
		}
		gap := sim.Exponential{M: time.Duration(float64(time.Second) / rate), G: p.g}.Sample() + 1
		p.cursor += gap
		if p.cursor >= p.phaseTop {
			p.advancePhase()
			continue
		}

		op := block.Write
		if p.g.Float64() < ph.ReadRatio {
			op = block.Read
		}

		size := int64(BlockSectors)
		if len(ph.SizesSectors) > 0 {
			size = ph.SizesSectors[p.g.Intn(len(ph.SizesSectors))]
		}
		sizeBlocks := (size + BlockSectors - 1) / BlockSectors

		// Pick the address region: writes may own a separate one.
		base, ws := ph.BaseBlock, ph.WorkingSetBlocks
		zipfGen := p.zipfFor(ph)
		seqNext, seqRun := &p.seqNext, &p.seqRun
		if op == block.Write && ph.writeRegion() {
			base, ws = ph.WriteBaseBlock, ph.WriteWorkingSetBlocks
			zipfGen = p.wzipfFor(ph)
			seqNext, seqRun = &p.wseqNext, &p.wseqRun
		}

		var startBlock int64
		if *seqRun && ph.Sequential > 0 && p.g.Float64() < ph.Sequential {
			startBlock = *seqNext
			if startBlock+sizeBlocks >= base+ws {
				startBlock = base
			}
		} else {
			startBlock = rankToBlock(base, ws, zipfGen.Next())
			if startBlock+sizeBlocks > base+ws {
				startBlock = base + ws - sizeBlocks
			}
		}
		*seqNext = startBlock + sizeBlocks
		*seqRun = true

		return Request{
			At:     p.cursor,
			Op:     op,
			Extent: block.Extent{LBA: startBlock * BlockSectors, Sectors: size},
		}, true
	}
}

// Replay plays back a recorded request stream.
type Replay struct {
	name string
	reqs []Request
	pos  int
}

// NewReplay builds a replay generator over reqs (assumed time-ordered).
func NewReplay(name string, reqs []Request) *Replay {
	return &Replay{name: name, reqs: reqs}
}

// Name implements Generator.
func (r *Replay) Name() string { return r.name }

// CloneGenerator implements CloneableGenerator; the recorded stream is
// shared read-only, only the position is per-copy.
func (r *Replay) CloneGenerator() Generator {
	r2 := *r
	return &r2
}

// Next implements Generator.
func (r *Replay) Next() (Request, bool) {
	if r.pos >= len(r.reqs) {
		return Request{}, false
	}
	req := r.reqs[r.pos]
	r.pos++
	return req, true
}

// Tee wraps a generator, appending every emitted request to sink.
type Tee struct {
	inner Generator
	sink  *[]Request
}

// NewTee wraps inner so the emitted stream is captured into sink.
func NewTee(inner Generator, sink *[]Request) *Tee {
	return &Tee{inner: inner, sink: sink}
}

// Name implements Generator.
func (t *Tee) Name() string { return t.inner.Name() }

// Next implements Generator.
func (t *Tee) Next() (Request, bool) {
	r, ok := t.inner.Next()
	if ok {
		*t.sink = append(*t.sink, r)
	}
	return r, ok
}

// Limit truncates a generator after n requests.
type Limit struct {
	inner Generator
	left  int
}

// NewLimit wraps inner, ending the stream after n requests.
func NewLimit(inner Generator, n int) *Limit { return &Limit{inner: inner, left: n} }

// Name implements Generator.
func (l *Limit) Name() string { return l.inner.Name() }

// CloneGenerator implements CloneableGenerator when the inner generator
// is itself cloneable; it returns nil otherwise (callers treat nil as
// "cannot fork").
func (l *Limit) CloneGenerator() Generator {
	cg, ok := l.inner.(CloneableGenerator)
	if !ok {
		return nil
	}
	inner2 := cg.CloneGenerator()
	if inner2 == nil {
		return nil
	}
	return &Limit{inner: inner2, left: l.left}
}

// Next implements Generator.
func (l *Limit) Next() (Request, bool) {
	if l.left <= 0 {
		return Request{}, false
	}
	l.left--
	return l.inner.Next()
}

func (p *PhaseGen) String() string {
	return fmt.Sprintf("workload(%s, %d phases)", p.name, len(p.phases))
}
