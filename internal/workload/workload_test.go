package workload

import (
	"testing"
	"time"

	"lbica/internal/block"
	"lbica/internal/sim"
)

func drain(g Generator, max int) []Request {
	var out []Request
	for i := 0; i < max; i++ {
		r, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

func TestArrivalsAreTimeOrderedAndBounded(t *testing.T) {
	g := RandomRead(time.Second, 5000, 1024, sim.NewRNG(1, "w"))
	reqs := drain(g, 100000)
	if len(reqs) == 0 {
		t.Fatal("no requests generated")
	}
	var last time.Duration
	for i, r := range reqs {
		if r.At < last {
			t.Fatalf("request %d out of order: %v < %v", i, r.At, last)
		}
		last = r.At
		if r.At >= time.Second {
			t.Fatalf("request beyond phase end: %v", r.At)
		}
		if r.Extent.Sectors <= 0 {
			t.Fatal("non-positive request size")
		}
		lo, hi := int64(0), int64(1024*BlockSectors)
		if r.Extent.LBA < lo || r.Extent.End() > hi {
			t.Fatalf("address %v outside working set [%d,%d)", r.Extent, lo, hi)
		}
	}
}

func TestRateApproximation(t *testing.T) {
	g := RandomRead(2*time.Second, 5000, 4096, sim.NewRNG(2, "w"))
	reqs := drain(g, 1000000)
	got := float64(len(reqs)) / 2.0
	if got < 4000 || got > 6000 {
		t.Errorf("achieved %.0f IOPS, want ≈5000", got)
	}
}

func TestReadRatio(t *testing.T) {
	g := MixedRW(time.Second, 10000, 4096, sim.NewRNG(3, "w"))
	reqs := drain(g, 100000)
	reads := 0
	for _, r := range reqs {
		if r.Op == block.Read {
			reads++
		}
	}
	frac := float64(reads) / float64(len(reqs))
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("read fraction = %.3f, want ≈0.5", frac)
	}
}

func TestPureStreamsHaveSingleOp(t *testing.T) {
	for _, r := range drain(RandomRead(100*time.Millisecond, 5000, 1024, sim.NewRNG(4, "w")), 10000) {
		if r.Op != block.Read {
			t.Fatal("random-read emitted a write")
		}
	}
	for _, r := range drain(RandomWrite(100*time.Millisecond, 5000, 1024, sim.NewRNG(5, "w")), 10000) {
		if r.Op != block.Write {
			t.Fatal("random-write emitted a read")
		}
	}
}

func TestSequentialRuns(t *testing.T) {
	g := SequentialRead(500*time.Millisecond, 4000, 1<<20, sim.NewRNG(6, "w"))
	reqs := drain(g, 10000)
	contiguous := 0
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Extent.LBA == reqs[i-1].Extent.End() {
			contiguous++
		}
	}
	frac := float64(contiguous) / float64(len(reqs)-1)
	if frac < 0.8 {
		t.Errorf("contiguous fraction = %.2f, want sequential-dominated", frac)
	}
}

func TestZipfLocalitySkew(t *testing.T) {
	g := RandomRead(time.Second, 20000, 8192, sim.NewRNG(7, "w"))
	reqs := drain(g, 100000)
	counts := map[int64]int{}
	for _, r := range reqs {
		counts[r.Extent.LBA/BlockSectors]++
	}
	// With Zipf 0.8 the most popular block must be far above the uniform
	// expectation.
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	uniform := float64(len(reqs)) / 8192
	if float64(maxCount) < 4*uniform {
		t.Errorf("hottest block %d draws, uniform expectation %.1f — locality too weak", maxCount, uniform)
	}
}

func TestDeterminism(t *testing.T) {
	a := drain(TPCC(Scale{Interval: 50 * time.Millisecond, Intervals: 4, RateFactor: 1}, sim.NewRNG(42, "w")), 50000)
	b := drain(TPCC(Scale{Interval: 50 * time.Millisecond, Intervals: 4, RateFactor: 1}, sim.NewRNG(42, "w")), 50000)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestPhaseTransitions(t *testing.T) {
	g := NewPhaseGen("two", []Phase{
		{Name: "a", Duration: 100 * time.Millisecond, BaseIOPS: 1000, ReadRatio: 1, WorkingSetBlocks: 64},
		{Name: "b", Duration: 100 * time.Millisecond, BaseIOPS: 1000, ReadRatio: 0, WorkingSetBlocks: 64, BaseBlock: 1 << 20},
	}, sim.NewRNG(8, "w"))
	reqs := drain(g, 10000)
	sawSecond := false
	for _, r := range reqs {
		if r.At < 100*time.Millisecond {
			if r.Op != block.Read {
				t.Fatal("phase-a request has phase-b op")
			}
		} else {
			sawSecond = true
			if r.Op != block.Write || r.Extent.LBA < (1<<20)*BlockSectors {
				t.Fatalf("phase-b request wrong: %+v", r)
			}
		}
	}
	if !sawSecond {
		t.Fatal("second phase never reached")
	}
}

func TestZeroDurationPhaseSkipped(t *testing.T) {
	g := NewPhaseGen("skip", []Phase{
		{Name: "empty", Duration: 0},
		{Name: "real", Duration: 50 * time.Millisecond, BaseIOPS: 1000, ReadRatio: 1, WorkingSetBlocks: 64},
	}, sim.NewRNG(9, "w"))
	if reqs := drain(g, 1000); len(reqs) == 0 {
		t.Fatal("generator with a zero-duration lead phase produced nothing")
	}
}

func TestBurstModulation(t *testing.T) {
	g := NewPhaseGen("burst", []Phase{{
		Name: "b", Duration: 2 * time.Second, BaseIOPS: 1000, BurstIOPS: 20000,
		BurstOn: 50 * time.Millisecond, BurstOff: 150 * time.Millisecond,
		ReadRatio: 1, WorkingSetBlocks: 4096,
	}}, sim.NewRNG(10, "w"))
	reqs := drain(g, 1000000)
	// Bucket arrivals into 10ms bins; burst bins should be ~20× base bins.
	bins := make([]int, 200)
	for _, r := range reqs {
		bins[int(r.At/(10*time.Millisecond))]++
	}
	lo, hi := 0, 0
	for _, c := range bins {
		if c > 120 { // > 12k IOPS
			hi++
		}
		if c < 40 { // < 4k IOPS
			lo++
		}
	}
	if hi == 0 || lo == 0 {
		t.Errorf("no ON/OFF contrast: hi=%d lo=%d", hi, lo)
	}
	// Duty cycle ≈ 25% → total ≈ (0.25×20k + 0.75×1k) × 2s ≈ 11.5k
	if len(reqs) < 5000 || len(reqs) > 20000 {
		t.Errorf("total arrivals %d outside plausible burst-modulated band", len(reqs))
	}
}

func TestHotBlocksPrefixAndDeterminism(t *testing.T) {
	g := TPCC(DefaultScale(), sim.NewRNG(11, "w"))
	hot := g.HotBlocks(100)
	if len(hot) != 100 {
		t.Fatalf("hot blocks = %d", len(hot))
	}
	seen := map[int64]bool{}
	for _, b := range hot {
		if seen[b] {
			t.Fatal("duplicate hot block")
		}
		seen[b] = true
	}
	again := TPCC(DefaultScale(), sim.NewRNG(99, "w")).HotBlocks(100)
	for i := range hot {
		if hot[i] != again[i] {
			t.Fatal("hot block set must not depend on the RNG")
		}
	}
}

func TestHotBlocksClampedToWorkingSet(t *testing.T) {
	g := RandomRead(time.Second, 100, 16, sim.NewRNG(12, "w"))
	if got := len(g.HotBlocks(1000)); got != 16 {
		t.Errorf("hot blocks = %d, want clamped 16", got)
	}
}

func TestNamedWorkloadTimelines(t *testing.T) {
	s := Scale{Interval: 20 * time.Millisecond, Intervals: 200, RateFactor: 0.1}
	for _, tc := range []struct {
		g    *PhaseGen
		want int // expected phase count
	}{
		{TPCC(s, sim.NewRNG(1, "w")), 2},
		{MailServer(s, sim.NewRNG(1, "w")), 4},
		{WebServer(s, sim.NewRNG(1, "w")), 2},
	} {
		if len(tc.g.phases) != tc.want {
			t.Errorf("%s phases = %d, want %d", tc.g.Name(), len(tc.g.phases), tc.want)
		}
		var total time.Duration
		for _, p := range tc.g.phases {
			total += p.Duration
		}
		if want := 200 * 20 * time.Millisecond; total != want {
			t.Errorf("%s total duration = %v, want %v", tc.g.Name(), total, want)
		}
	}
}

func TestMailServerPhaseCharacters(t *testing.T) {
	s := Scale{Interval: 20 * time.Millisecond, Intervals: 200, RateFactor: 0.25}
	g := MailServer(s, sim.NewRNG(13, "w"))
	reqs := drain(g, 2000000)
	phaseReads := map[string][2]int{} // phase name → [reads, total]
	for _, r := range reqs {
		iv := int(r.At / (20 * time.Millisecond))
		var name string
		switch {
		case iv < 23:
			name = "steady"
		case iv < 128:
			name = "mixed"
		case iv < 134:
			name = "scan"
		default:
			name = "journal"
		}
		c := phaseReads[name]
		c[1]++
		if r.Op == block.Read {
			c[0]++
		}
		phaseReads[name] = c
	}
	frac := func(n string) float64 {
		c := phaseReads[n]
		if c[1] == 0 {
			return -1
		}
		return float64(c[0]) / float64(c[1])
	}
	if f := frac("mixed"); f < 0.2 || f > 0.4 {
		t.Errorf("mixed-phase read fraction = %.2f, want ≈0.30", f)
	}
	if f := frac("scan"); f < 0.9 {
		t.Errorf("scan-phase read fraction = %.2f, want ≥0.9", f)
	}
	if f := frac("journal"); f > 0.15 {
		t.Errorf("journal-phase read fraction = %.2f, want ≤0.15", f)
	}
}

func TestReplayAndTee(t *testing.T) {
	var captured []Request
	g := NewTee(RandomRead(50*time.Millisecond, 2000, 256, sim.NewRNG(14, "w")), &captured)
	orig := drain(g, 10000)
	if len(orig) != len(captured) {
		t.Fatalf("tee captured %d of %d", len(captured), len(orig))
	}
	rep := NewReplay("again", captured)
	got := drain(rep, 10000)
	if len(got) != len(orig) {
		t.Fatalf("replay emitted %d of %d", len(got), len(orig))
	}
	for i := range got {
		if got[i] != orig[i] {
			t.Fatal("replay diverged")
		}
	}
}

func TestLimit(t *testing.T) {
	g := NewLimit(RandomRead(time.Second, 10000, 256, sim.NewRNG(15, "w")), 10)
	if got := len(drain(g, 1000)); got != 10 {
		t.Errorf("limit yielded %d, want 10", got)
	}
}
