package perf

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunFiltered(t *testing.T) {
	// "cache/" pins the cache microbenchmarks alone — the bare substring
	// would also catch the sweep/warm-cache-* end-to-end entries.
	rep := Run("cache/", 2)
	if len(rep.Results) != 2 {
		t.Fatalf("filter \"cache/\" matched %d benchmarks, want 2", len(rep.Results))
	}
	for _, r := range rep.Results {
		if !strings.Contains(r.Name, "cache/") {
			t.Errorf("filter leaked %q", r.Name)
		}
		if r.Iterations <= 0 || r.NsPerOp <= 0 {
			t.Errorf("%s: degenerate measurement %+v", r.Name, r)
		}
	}
	if rep.GOOS == "" || rep.GoVersion == "" {
		t.Errorf("environment not recorded: %+v", rep)
	}
}

// RunExact runs exactly the named entries — no substring surprises —
// and silently drops unknown names (Check flags those as missing).
func TestRunExact(t *testing.T) {
	rep := RunExact([]string{"kernel/schedule-cancel", "no/such-bench"}, 1)
	if len(rep.Results) != 1 || rep.Results[0].Name != "kernel/schedule-cancel" {
		t.Fatalf("RunExact results = %+v, want exactly kernel/schedule-cancel", rep.Results)
	}
}

// Check's tolerance band: allocs gate tight, ns gate loose, missing
// entries always breach, extra current entries ignored.
func TestCheckToleranceBand(t *testing.T) {
	base := Report{Results: []Result{
		{Name: "a", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "gone", NsPerOp: 1, AllocsPerOp: 1},
	}}
	cur := Report{Results: []Result{
		{Name: "a", NsPerOp: 1000 * NsTolerance * 0.99, AllocsPerOp: 100*AllocsTolerance + allocsSlack},
		{Name: "extra", NsPerOp: 1e12, AllocsPerOp: 1 << 30},
	}}
	breaches := Check(base, cur)
	if len(breaches) != 1 || !strings.Contains(breaches[0], "gone") {
		t.Fatalf("at the band edge want only the missing-entry breach, got %v", breaches)
	}

	cur.Results[0].NsPerOp = 1000*NsTolerance + 1
	cur.Results[0].AllocsPerOp = 100*AllocsTolerance + allocsSlack + 1
	breaches = Check(base, cur)
	if len(breaches) != 3 {
		t.Fatalf("past the band want ns + allocs + missing breaches, got %v", breaches)
	}
	for _, b := range breaches[:2] {
		if !strings.Contains(b, "a:") {
			t.Errorf("breach %q does not name its benchmark", b)
		}
	}

	if got := Check(base, Report{Results: base.Results}); got != nil {
		t.Errorf("identical reports breach: %v", got)
	}
}

func TestSuiteNamesUniqueAndReportSerializes(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Suite(0) {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
		if b.Fn == nil {
			t.Errorf("%s has nil Fn", b.Name)
		}
	}
	rep := Run("schedule-cancel", 1)
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatal("report does not round-trip")
	}
}
