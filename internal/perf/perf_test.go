package perf

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunFiltered(t *testing.T) {
	rep := Run("cache", 2)
	if len(rep.Results) != 2 {
		t.Fatalf("filter \"cache\" matched %d benchmarks, want 2", len(rep.Results))
	}
	for _, r := range rep.Results {
		if !strings.Contains(r.Name, "cache") {
			t.Errorf("filter leaked %q", r.Name)
		}
		if r.Iterations <= 0 || r.NsPerOp <= 0 {
			t.Errorf("%s: degenerate measurement %+v", r.Name, r)
		}
	}
	if rep.GOOS == "" || rep.GoVersion == "" {
		t.Errorf("environment not recorded: %+v", rep)
	}
}

func TestSuiteNamesUniqueAndReportSerializes(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Suite(0) {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
		if b.Fn == nil {
			t.Errorf("%s has nil Fn", b.Name)
		}
	}
	rep := Run("schedule-cancel", 1)
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatal("report does not round-trip")
	}
}
