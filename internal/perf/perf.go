// Package perf defines the hot-path benchmark suite behind `lbicabench
// -perf`: the same microbenchmarks the per-package Benchmark* functions
// run, packaged as a programmatic suite with machine-readable results, so
// before/after artifacts (BENCH_hotpath.json) can be regenerated with one
// command instead of scraping `go test -bench` output.
package perf

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"lbica/internal/block"
	"lbica/internal/cache"
	"lbica/internal/experiments"
	"lbica/internal/ioqueue"
	"lbica/internal/sim"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the full machine-readable artifact.
type Report struct {
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	GoVersion string   `json:"go_version"`
	Intervals int      `json:"matrix_intervals"` // 0 = paper scale
	Results   []Result `json:"results"`
}

// Bench is one named suite entry.
type Bench struct {
	Name string
	Fn   func(b *testing.B)
}

// Suite returns the hot-path benchmarks. intervals overrides the
// end-to-end matrix scale (0 = paper scale). The Bench* functions are
// exported so the per-package Benchmark* wrappers (`go test -bench`) run
// the exact same bodies as `lbicabench -perf` — one implementation, two
// entry points.
func Suite(intervals int) []Bench {
	return []Bench{
		{"kernel/schedule-fire", BenchKernelScheduleFire},
		{"kernel/schedule-cancel", BenchKernelScheduleCancel},
		{"cache/read-hit", BenchCacheReadHit},
		{"cache/miss-evict", BenchCacheMissEvict},
		{"queue/push-pop", BenchQueuePushPop},
		{"queue/merge", BenchQueueMerge},
		{"matrix/serial", func(b *testing.B) { BenchMatrixSerial(b, intervals) }},
		{"shard/volumes4-serial", func(b *testing.B) { BenchShard(b, intervals, 4, 1) }},
		{"shard/volumes4-parallel", func(b *testing.B) { BenchShard(b, intervals, 4, 0) }},
	}
}

// Run executes every suite benchmark whose name contains filter (empty =
// all) and returns the report.
func Run(filter string, intervals int) Report {
	rep := Report{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Intervals: intervals,
	}
	for _, bm := range Suite(intervals) {
		if filter != "" && !strings.Contains(bm.Name, filter) {
			continue
		}
		r := testing.Benchmark(bm.Fn)
		rep.Results = append(rep.Results, Result{
			Name:        bm.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return rep
}

// BenchKernelScheduleFire measures steady-state schedule+fire.
func BenchKernelScheduleFire(b *testing.B) {
	e := sim.NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i%100), func() {})
		if e.Pending() > 1024 {
			e.RunUntilIdle()
		}
	}
	e.RunUntilIdle()
}

// BenchKernelScheduleCancel measures the cancel-heavy path.
func BenchKernelScheduleCancel(b *testing.B) {
	e := sim.NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := e.After(time.Duration(i%100), func() {})
		ev.Cancel()
		if i%1024 == 1023 {
			e.RunUntilIdle()
		}
	}
	e.RunUntilIdle()
}

// BenchCacheReadHit measures the hot all-hit probe.
func BenchCacheReadHit(b *testing.B) {
	c := cache.New(cache.Config{BlockSectors: 8, Sets: 1024, Ways: 8})
	for i := int64(0); i < 1024; i++ {
		c.Prewarm([]int64{i})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := int64(i) % 1024
		c.Access(block.Read, block.Extent{LBA: n * 8, Sectors: 8}, time.Duration(i))
	}
}

// BenchCacheMissEvict measures the miss+allocate+evict worst path.
func BenchCacheMissEvict(b *testing.B) {
	c := cache.New(cache.Config{BlockSectors: 8, Sets: 1024, Ways: 8})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(block.Read, block.Extent{LBA: int64(i) * 8, Sectors: 8}, time.Duration(i))
	}
}

// BenchQueuePushPop measures unmergeable push/pop churn.
func BenchQueuePushPop(b *testing.B) {
	q := ioqueue.New("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &block.Request{ID: uint64(i), Origin: block.AppRead,
			Extent: block.Extent{LBA: int64(i) * 4096, Sectors: 8}}
		q.Push(r, 0)
		if q.Depth() >= 64 {
			for q.Pop() != nil {
			}
		}
	}
}

// BenchQueueMerge measures sequential-stream back-merging.
func BenchQueueMerge(b *testing.B) {
	q := ioqueue.New("bench", ioqueue.WithMaxMergeSectors(64*8))
	var next int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			for q.Pop() != nil {
			}
			next = int64(i) * 1024
		}
		r := &block.Request{ID: uint64(i), Origin: block.AppWrite,
			Extent: block.Extent{LBA: next, Sectors: 8}}
		next += 8
		q.Push(r, 0)
	}
}

// BenchShard runs one tpcc/LBICA array of the given width end to end
// (0 = paper scale): the shard-scaling measurement behind
// BENCH_shard.json — the serial/parallel pair isolates the speedup of
// sharding one simulation's volumes across cores (workers 0 =
// GOMAXPROCS).
func BenchShard(b *testing.B, intervals, volumes, workers int) {
	for i := 0; i < b.N; i++ {
		res := experiments.Run(experiments.Spec{
			Workload:     experiments.WorkloadTPCC,
			Scheme:       experiments.SchemeLBICA,
			Intervals:    intervals,
			Volumes:      volumes,
			ShardWorkers: workers,
		})
		if res.AppCompleted == 0 {
			b.Fatal("shard run completed no requests")
		}
	}
}

// BenchMatrixSerial runs the full paper matrix serially (0 = paper scale).
func BenchMatrixSerial(b *testing.B, intervals int) {
	for i := 0; i < b.N; i++ {
		specs := experiments.MatrixSpecs(1, 1)
		for j := range specs {
			specs[j].Intervals = intervals
		}
		if _, err := experiments.RunSpecs(context.Background(), specs, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}
