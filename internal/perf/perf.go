// Package perf defines the hot-path benchmark suite behind `lbicabench
// -perf`: the same microbenchmarks the per-package Benchmark* functions
// run, packaged as a programmatic suite with machine-readable results, so
// before/after artifacts (BENCH_hotpath.json) can be regenerated with one
// command instead of scraping `go test -bench` output.
package perf

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"lbica/internal/block"
	"lbica/internal/cache"
	"lbica/internal/experiments"
	"lbica/internal/ioqueue"
	"lbica/internal/sim"
	"lbica/internal/sweep"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the full machine-readable artifact.
type Report struct {
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	GoVersion string   `json:"go_version"`
	Intervals int      `json:"matrix_intervals"` // 0 = paper scale
	Results   []Result `json:"results"`
}

// Bench is one named suite entry.
type Bench struct {
	Name string
	Fn   func(b *testing.B)
}

// Suite returns the hot-path benchmarks. intervals overrides the
// end-to-end matrix scale (0 = paper scale). The Bench* functions are
// exported so the per-package Benchmark* wrappers (`go test -bench`) run
// the exact same bodies as `lbicabench -perf` — one implementation, two
// entry points.
func Suite(intervals int) []Bench {
	return []Bench{
		{"kernel/schedule-fire", BenchKernelScheduleFire},
		{"kernel/schedule-cancel", BenchKernelScheduleCancel},
		{"cache/read-hit", BenchCacheReadHit},
		{"cache/miss-evict", BenchCacheMissEvict},
		{"queue/push-pop", BenchQueuePushPop},
		{"queue/merge", BenchQueueMerge},
		{"matrix/serial", func(b *testing.B) { BenchMatrixSerial(b, intervals) }},
		{"shard/volumes4-serial", func(b *testing.B) { BenchShard(b, intervals, 4, 1) }},
		{"shard/volumes4-parallel", func(b *testing.B) { BenchShard(b, intervals, 4, 0) }},
		{"array/volumes3-static", func(b *testing.B) { BenchArray(b, intervals, experiments.SchemeLBICA) }},
		{"array/volumes3-controller", func(b *testing.B) { BenchArray(b, intervals, experiments.SchemeArrayLB) }},
		{"sweep/scratch", func(b *testing.B) { BenchSweep(b, intervals, false) }},
		{"sweep/warm-fork", func(b *testing.B) { BenchSweep(b, intervals, true) }},
		{"sweep/array-scratch", func(b *testing.B) { BenchSweepArray(b, intervals, false) }},
		{"sweep/array-warm-fork", func(b *testing.B) { BenchSweepArray(b, intervals, true) }},
		{"sweep/early-term", func(b *testing.B) { BenchSweepEarlyTerm(b, intervals) }},
		{"sweep/warm-cache-cold", func(b *testing.B) { BenchSweepWarmCache(b, intervals, false) }},
		{"sweep/warm-cache-hit", func(b *testing.B) { BenchSweepWarmCache(b, intervals, true) }},
	}
}

// Run executes every suite benchmark whose name contains filter (empty =
// all) and returns the report.
func Run(filter string, intervals int) Report {
	return run(intervals, func(name string) bool {
		return filter == "" || strings.Contains(name, filter)
	})
}

// RunExact executes exactly the named suite entries; names that match no
// entry are simply absent from the report, which Check then flags. This
// is the `-perf-check` driver: a committed baseline names its
// benchmarks, and only those rerun.
func RunExact(names []string, intervals int) Report {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	return run(intervals, func(name string) bool { return want[name] })
}

func run(intervals int, want func(string) bool) Report {
	rep := Report{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Intervals: intervals,
	}
	for _, bm := range Suite(intervals) {
		if !want(bm.Name) {
			continue
		}
		r := testing.Benchmark(bm.Fn)
		rep.Results = append(rep.Results, Result{
			Name:        bm.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return rep
}

// Tolerance band for Check. Alloc counts are deterministic for a fixed
// Go version, so the gate is tight — 1.5× plus a small absolute slack
// for toolchain drift. Wall time varies with the host (CI machines are
// noisy, throttled and shared), so the ns gate is a loose 4× backstop
// that only catches order-of-magnitude regressions.
const (
	NsTolerance     = 4.0
	AllocsTolerance = 1.5
	allocsSlack     = 8
)

// Check compares a fresh report against a committed baseline and returns
// one message per breach (nil = the gate passes). Every baseline entry
// must be present in the current report and inside the tolerance band;
// extra current entries are ignored.
func Check(baseline, current Report) []string {
	cur := make(map[string]Result, len(current.Results))
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	var breaches []string
	for _, b := range baseline.Results {
		c, ok := cur[b.Name]
		if !ok {
			breaches = append(breaches, fmt.Sprintf("%s: in the baseline but not the current suite", b.Name))
			continue
		}
		if limit := float64(b.AllocsPerOp)*AllocsTolerance + allocsSlack; float64(c.AllocsPerOp) > limit {
			breaches = append(breaches, fmt.Sprintf("%s: %d allocs/op, baseline %d (limit %.0f)",
				b.Name, c.AllocsPerOp, b.AllocsPerOp, limit))
		}
		if limit := b.NsPerOp * NsTolerance; c.NsPerOp > limit {
			breaches = append(breaches, fmt.Sprintf("%s: %.0f ns/op, baseline %.0f (limit %.0f)",
				b.Name, c.NsPerOp, b.NsPerOp, limit))
		}
	}
	return breaches
}

// BenchKernelScheduleFire measures steady-state schedule+fire.
func BenchKernelScheduleFire(b *testing.B) {
	e := sim.NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i%100), func() {})
		if e.Pending() > 1024 {
			e.RunUntilIdle()
		}
	}
	e.RunUntilIdle()
}

// BenchKernelScheduleCancel measures the cancel-heavy path.
func BenchKernelScheduleCancel(b *testing.B) {
	e := sim.NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := e.After(time.Duration(i%100), func() {})
		ev.Cancel()
		if i%1024 == 1023 {
			e.RunUntilIdle()
		}
	}
	e.RunUntilIdle()
}

// BenchCacheReadHit measures the hot all-hit probe.
func BenchCacheReadHit(b *testing.B) {
	c := cache.New(cache.Config{BlockSectors: 8, Sets: 1024, Ways: 8})
	for i := int64(0); i < 1024; i++ {
		c.Prewarm([]int64{i})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := int64(i) % 1024
		c.Access(block.Read, block.Extent{LBA: n * 8, Sectors: 8}, time.Duration(i))
	}
}

// BenchCacheMissEvict measures the miss+allocate+evict worst path.
func BenchCacheMissEvict(b *testing.B) {
	c := cache.New(cache.Config{BlockSectors: 8, Sets: 1024, Ways: 8})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(block.Read, block.Extent{LBA: int64(i) * 8, Sectors: 8}, time.Duration(i))
	}
}

// BenchQueuePushPop measures unmergeable push/pop churn.
func BenchQueuePushPop(b *testing.B) {
	q := ioqueue.New("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &block.Request{ID: uint64(i), Origin: block.AppRead,
			Extent: block.Extent{LBA: int64(i) * 4096, Sectors: 8}}
		q.Push(r, 0)
		if q.Depth() >= 64 {
			for q.Pop() != nil {
			}
		}
	}
}

// BenchQueueMerge measures sequential-stream back-merging.
func BenchQueueMerge(b *testing.B) {
	q := ioqueue.New("bench", ioqueue.WithMaxMergeSectors(64*8))
	var next int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			for q.Pop() != nil {
			}
			next = int64(i) * 1024
		}
		r := &block.Request{ID: uint64(i), Origin: block.AppWrite,
			Extent: block.Extent{LBA: next, Sectors: 8}}
		next += 8
		q.Push(r, 0)
	}
}

// BenchShard runs one tpcc/LBICA array of the given width end to end
// (0 = paper scale): the shard-scaling measurement behind
// BENCH_shard.json — the serial/parallel pair isolates the speedup of
// sharding one simulation's volumes across cores (workers 0 =
// GOMAXPROCS).
func BenchShard(b *testing.B, intervals, volumes, workers int) {
	for i := 0; i < b.N; i++ {
		res := experiments.Run(experiments.Spec{
			Workload:     experiments.WorkloadTPCC,
			Scheme:       experiments.SchemeLBICA,
			Intervals:    intervals,
			Volumes:      volumes,
			ShardWorkers: workers,
		})
		if res.AppCompleted == 0 {
			b.Fatal("shard run completed no requests")
		}
	}
}

// BenchArray runs the pinned hot-shard regime (tpcc, 3 volumes, route
// skew 1.2) end to end under the given scheme (0 intervals = paper
// scale). The static/controller pair behind BENCH_array.json isolates
// the array-lb controller's overhead: both run per-volume LBICA over the
// identical stream, so any gap is the barrier, reweighting and
// migration machinery.
func BenchArray(b *testing.B, intervals int, scheme string) {
	for i := 0; i < b.N; i++ {
		res := experiments.Run(experiments.Spec{
			Workload:  experiments.WorkloadTPCC,
			Scheme:    scheme,
			Intervals: intervals,
			Volumes:   3,
			RouteSkew: 1.2,
		})
		if res.AppCompleted == 0 {
			b.Fatal("array run completed no requests")
		}
	}
}

// BenchSweep runs a one-coordinate, three-scheme comparison grid (tpcc ×
// {wb, lbica, array-lb}) through the sweep executor with one worker
// (0 = paper scale). The scratch/warm-fork pair behind BENCH_sweep.json
// isolates the shared-warmup win: with warmFork the group's common
// prefix — three quarters of the run — is simulated once and each
// sibling scheme is forked from the warm state, while the emitted
// results stay byte-identical to scratch (the sweep package's warm-fork
// identity test), so the whole delta is simulation work saved.
func BenchSweep(b *testing.B, intervals int, warmFork bool) {
	iv := intervals
	if iv == 0 {
		iv = experiments.PaperIntervals(experiments.WorkloadTPCC)
	}
	g := sweep.Grid{
		Workloads: []string{experiments.WorkloadTPCC},
		Schemes:   []string{experiments.SchemeWB, experiments.SchemeLBICA, experiments.SchemeArrayLB},
		Seed:      1,
		Intervals: iv,
	}
	if warmFork {
		g.WarmupIntervals = iv * 3 / 4
	}
	for i := 0; i < b.N; i++ {
		res, err := sweep.Execute(context.Background(), g, sweep.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != res.Total || res.Completed == 0 {
			b.Fatalf("sweep completed %d of %d runs", res.Completed, res.Total)
		}
	}
}

// BenchSweepArray is BenchSweep's multi-volume counterpart: the same
// three-scheme comparison grid on the pinned hot-shard regime (tpcc, 3
// volumes, route skew 1.2). With warmFork the statically routed LBICA
// array leads the shared warmup — all three volume stacks step to the
// barrier and are forked together — while the adaptive ARRAY-LB member
// runs scratch by design (its controller diverges from the static
// prefix), so the scratch/warm-fork delta behind BENCH_sweep.json is the
// array-fork win alone. At paper scale the WB member must actually fork;
// a silent fallback to scratch would turn this benchmark into a no-op
// comparison, so it fails instead.
func BenchSweepArray(b *testing.B, intervals int, warmFork bool) {
	iv := intervals
	if iv == 0 {
		iv = experiments.PaperIntervals(experiments.WorkloadTPCC)
	}
	g := sweep.Grid{
		Workloads:  []string{experiments.WorkloadTPCC},
		Schemes:    []string{experiments.SchemeWB, experiments.SchemeLBICA, experiments.SchemeArrayLB},
		Volumes:    []int{3},
		RouteSkews: []float64{1.2},
		Seed:       1,
		Intervals:  iv,
	}
	if warmFork {
		g.WarmupIntervals = iv * 3 / 4
	}
	for i := 0; i < b.N; i++ {
		res, err := sweep.Execute(context.Background(), g, sweep.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != res.Total || res.Completed == 0 {
			b.Fatalf("sweep completed %d of %d runs", res.Completed, res.Total)
		}
		if warmFork && intervals == 0 && (res.Warm == nil || res.Warm.Forked == 0) {
			b.Fatalf("array warm plan forked nothing: %+v", res.Warm)
		}
	}
}

// BenchSweepWarmCache runs BenchSweep's warm-fork grid against a
// persistent warm-state store (Grid.WarmCacheDir). The cold/hit pair
// behind BENCH_sweep.json isolates the cross-invocation win: cold runs
// against an empty store every iteration — the leader's warm prefix is
// simulated, encoded and published — while hit runs against a store
// primed once before the timer, so every iteration restores the prefix
// from disk instead of simulating it. Emitted results are byte-identical
// either way (the sweep package's cache identity test), so the whole
// delta is warmup simulation traded for a checkpoint decode. Both
// variants fail rather than silently measure the wrong path: cold must
// store and never hit, hit must hit and never store.
func BenchSweepWarmCache(b *testing.B, intervals int, primed bool) {
	iv := intervals
	if iv == 0 {
		iv = experiments.PaperIntervals(experiments.WorkloadTPCC)
	}
	run := func(dir string) *sweep.Result {
		g := sweep.Grid{
			Workloads:       []string{experiments.WorkloadTPCC},
			Schemes:         []string{experiments.SchemeWB, experiments.SchemeLBICA, experiments.SchemeArrayLB},
			Seed:            1,
			Intervals:       iv,
			WarmupIntervals: iv * 3 / 4,
			WarmCacheDir:    dir,
		}
		res, err := sweep.Execute(context.Background(), g, sweep.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed != res.Total || res.Completed == 0 {
			b.Fatalf("sweep completed %d of %d runs", res.Completed, res.Total)
		}
		return res
	}
	if primed {
		dir := b.TempDir()
		run(dir) // prime the store (untimed): simulates and publishes the prefix
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := run(dir)
			if res.Warm == nil || res.Warm.CacheHits == 0 || res.Warm.CacheStores != 0 {
				b.Fatalf("primed store did not serve the warm prefix: %+v", res.Warm)
			}
		}
		return
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		res := run(dir)
		if res.Warm == nil || res.Warm.CacheStores == 0 || res.Warm.CacheHits != 0 {
			b.Fatalf("empty store did not trigger a cold store: %+v", res.Warm)
		}
	}
}

// BenchSweepEarlyTerm measures the adaptive scheduler: a four-replicate
// tpcc × {wb, lbica} grid under a CI tolerance chosen so the coordinate
// terminates after three replicates at paper scale — the measured time
// includes the replicates early termination never launched, which is the
// win. At paper scale the benchmark fails if termination does not
// trigger (the measurement would silently degrade into a full sweep).
func BenchSweepEarlyTerm(b *testing.B, intervals int) {
	g := sweep.Grid{
		Workloads:   []string{experiments.WorkloadTPCC},
		Schemes:     []string{experiments.SchemeWB, experiments.SchemeLBICA},
		Replicates:  4,
		Seed:        1,
		Intervals:   intervals,
		CITolerance: 0.3,
	}
	for i := 0; i < b.N; i++ {
		res, err := sweep.Execute(context.Background(), g, sweep.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed == 0 {
			b.Fatal("sweep completed no runs")
		}
		if intervals == 0 && res.Completed >= res.Total {
			b.Fatalf("early termination never triggered: %d of %d runs executed", res.Completed, res.Total)
		}
	}
}

// BenchMatrixSerial runs the full paper matrix serially (0 = paper scale).
func BenchMatrixSerial(b *testing.B, intervals int) {
	for i := 0; i < b.N; i++ {
		specs := experiments.MatrixSpecs(1, 1)
		for j := range specs {
			specs[j].Intervals = intervals
		}
		if _, err := experiments.RunSpecs(context.Background(), specs, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}
