package sib

import "lbica/internal/ckpt"

// EncodeState serializes the scan counters — the plain values ForkFor
// struct-copies. The scan periodic itself lives in the engine arena and
// rides with the engine section.
func (s *SIB) EncodeState(enc *ckpt.Encoder) {
	enc.Section("sib.SIB")
	enc.Int(s.scans)
	enc.Int(s.scanned)
	enc.Int(s.bypassed)
}

// DecodeState restores the counters in place on an attached balancer.
func (s *SIB) DecodeState(d *ckpt.Decoder) {
	d.Section("sib.SIB")
	scans := d.Int()
	scanned := d.Int()
	bypassed := d.Int()
	if d.Err() != nil {
		return
	}
	s.scans = scans
	s.scanned = scanned
	s.bypassed = bypassed
}
