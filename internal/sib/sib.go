// Package sib re-implements Selective I/O Bypass (Kim, Roh, Park — IEEE
// TC 2018), the state-of-the-art load balancer the paper compares against,
// from its description in LBICA §II:
//
//   - the cache runs a fixed WT+WO configuration (writes go to SSD and
//     disk simultaneously and stay clean; read misses never promote), so
//     only read-after-write hits benefit from the cache;
//   - a monitor estimates the wait time of every in-queue SSD request and,
//     when the SSD queue time exceeds the disk's, selectively bypasses the
//     requests with the highest estimates (the queue tail, under FIFO
//     dispatch) to the disk subsystem;
//   - the selection scan costs CPU time on the I/O path — LBICA's stated
//     second objection — charged here as a per-scanned-request stall of
//     the SSD's service capacity.
package sib

import (
	"time"

	"lbica/internal/block"
	"lbica/internal/cache"
	"lbica/internal/engine"
)

// Config parameterizes SIB.
type Config struct {
	// ScanEvery is the monitoring cadence. SIB's estimator runs much finer
	// than LBICA's interval sampling — that is where its overhead
	// comes from.
	ScanEvery time.Duration
	// ScanOverheadPerRequest is the CPU cost of estimating one in-queue
	// request's wait time, charged against the SSD while the queue lock is
	// held.
	ScanOverheadPerRequest time.Duration
}

// DefaultConfig returns calibrated defaults: scan every 20 ms, 2 µs of
// estimation per queued request (calibrated so the selection cost is
// "considerable" at burst-time queue depths, as the paper asserts).
func DefaultConfig() Config {
	return Config{
		ScanEvery:              20 * time.Millisecond,
		ScanOverheadPerRequest: 2 * time.Microsecond,
	}
}

// SIB is the baseline balancer. It implements engine.Balancer.
type SIB struct {
	cfg Config
	st  *engine.Stack

	scans    int
	scanned  int
	bypassed int
}

// New builds a SIB balancer.
func New(cfg Config) *SIB {
	if cfg.ScanEvery <= 0 {
		cfg.ScanEvery = 20 * time.Millisecond
	}
	return &SIB{cfg: cfg}
}

// Name implements engine.Balancer.
func (s *SIB) Name() string { return "SIB" }

// Scans returns how many scan passes ran.
func (s *SIB) Scans() int { return s.scans }

// Scanned returns how many in-queue requests were cost-estimated in total.
func (s *SIB) Scanned() int { return s.scanned }

// Bypassed returns how many requests the scans moved to the disk tier.
func (s *SIB) Bypassed() int { return s.bypassed }

// Attach implements engine.Balancer: pin the WT+WO policy and start the
// scan loop.
func (s *SIB) Attach(st *engine.Stack) {
	s.st = st
	st.Cache().SetPolicy(cache.WTWO)
	st.NotePolicy(cache.WTWO, "SIB/fixed")
	st.Periodic(s.cfg.ScanEvery, s.scan)
}

// ForkFor implements engine.ForkableBalancer: counters are plain values,
// so the clone is a struct copy re-pointed at the forked stack. The scan
// periodic is re-registered (the fork rebinds its pending chain event);
// no policy is set — the forked cache already carries WT+WO.
func (s *SIB) ForkFor(st *engine.Stack) engine.Balancer {
	s2 := *s
	s2.st = st
	st.Periodic(s2.cfg.ScanEvery, s2.scan)
	return &s2
}

// scan is one estimation pass: if the SSD queue time exceeds the disk's,
// move the over-threshold tail to the disk subsystem.
func (s *SIB) scan() {
	depth := s.st.SSDQueue().Depth()
	if depth == 0 {
		return
	}
	s.scans++
	s.scanned += depth
	// The estimator walks the whole queue computing per-request waits;
	// the walk holds the queue lock.
	if s.cfg.ScanOverheadPerRequest > 0 {
		s.st.StallSSD(time.Duration(depth) * s.cfg.ScanOverheadPerRequest)
	}

	cacheQ := time.Duration(depth) * s.st.SSDLatency()
	diskQ := time.Duration(s.st.HDDQueue().Depth()) * s.st.HDDLatency()
	if cacheQ <= diskQ {
		return
	}
	// Move tail requests while their estimated SSD wait exceeds the disk
	// wait *as it will be once they land there*: every moved request
	// lengthens the disk queue by one disk service time, so the transfer
	// count m solves
	//
	//	(depth−m)·ssdLat > (diskDepth+m+1)·hddLat.
	//
	// Moving past that point would re-create the congestion on the slower
	// tier — the failure mode LBICA §II attributes to naive bypassing.
	ratio := float64(s.st.HDDLatency()) / float64(s.st.SSDLatency())
	m := (float64(depth) - float64(s.st.HDDQueue().Depth()+1)*ratio) / (1 + ratio)
	if m < 1 {
		return
	}
	keep := depth - int(m)
	if keep < 1 {
		keep = 1
	}
	s.bypassed += s.st.RedirectTail(keep)
}

// Admit implements engine.Balancer: SIB bypasses from the queue, not at
// admission.
func (s *SIB) Admit(block.Op, block.Extent) bool { return true }
