package sib

import (
	"testing"
	"time"

	"lbica/internal/block"
	"lbica/internal/cache"
	"lbica/internal/engine"
	"lbica/internal/sim"
	"lbica/internal/workload"
)

func smallStack(s *SIB, gen workload.Generator) *engine.Stack {
	cfg := engine.DefaultConfig()
	cfg.Cache.Sets = 256
	cfg.Cache.Ways = 4
	cfg.PrewarmBlocks = 512
	cfg.MonitorEvery = 50 * time.Millisecond
	return engine.New(cfg, gen, s)
}

func TestSIBPinsWTWO(t *testing.T) {
	s := New(DefaultConfig())
	st := smallStack(s, workload.RandomRead(10*time.Millisecond, 100, 64, sim.NewRNG(1, "wl")))
	if st.Cache().Policy() != cache.WTWO {
		t.Fatalf("policy = %v, want WTWO", st.Cache().Policy())
	}
}

func TestSIBScanMovesTailWhenCacheBottlenecked(t *testing.T) {
	s := New(Config{ScanEvery: 10 * time.Millisecond, ScanOverheadPerRequest: 0})
	st := smallStack(s, workload.RandomRead(10*time.Millisecond, 100, 64, sim.NewRNG(2, "wl")))

	// Deep SSD queue of shadowed writes, idle disk.
	lba := int64(1 << 30)
	for i := 0; i < 2000; i++ {
		r := &block.Request{Origin: block.AppWrite, Shadowed: true,
			Extent: block.Extent{LBA: lba, Sectors: 8}}
		st.SSDQueue().Push(r, 0)
		lba += 1024
	}
	s.scan()
	if s.Bypassed() == 0 {
		t.Fatal("bottlenecked queue: nothing bypassed")
	}
	if s.Scanned() < 2000 {
		t.Errorf("scanned = %d, want full queue walk", s.Scanned())
	}
	// Equilibrium: after the move, the remaining tail's SSD wait must not
	// exceed the projected disk wait by more than one request's worth in
	// either direction — SIB must neither under- nor over-shift.
	moved := s.Bypassed()
	ssdWait := float64(st.SSDQueue().Depth()) * float64(st.SSDLatency())
	diskWait := float64(moved+1) * float64(st.HDDLatency())
	if ssdWait > diskWait+float64(st.HDDLatency()) {
		t.Errorf("under-shifted: ssd wait %.0fus vs projected disk wait %.0fus", ssdWait/1e3, diskWait/1e3)
	}
	if diskWait > ssdWait+2*float64(st.HDDLatency()) {
		t.Errorf("over-shifted: disk wait %.0fus vs ssd wait %.0fus", diskWait/1e3, ssdWait/1e3)
	}
}

func TestSIBScanIdleWhenBalanced(t *testing.T) {
	s := New(Config{ScanEvery: 10 * time.Millisecond})
	st := smallStack(s, workload.RandomRead(10*time.Millisecond, 100, 64, sim.NewRNG(3, "wl")))
	// Small SSD queue, loaded disk queue: no bypassing.
	st.SSDQueue().Push(&block.Request{Origin: block.AppRead, Extent: block.Extent{LBA: 0, Sectors: 8}}, 0)
	for i := 0; i < 64; i++ {
		st.HDDQueue().Push(&block.Request{Origin: block.ReadMiss,
			Extent: block.Extent{LBA: int64(1+i) * 4096, Sectors: 8}}, 0)
	}
	s.scan()
	if s.Bypassed() != 0 {
		t.Error("balanced system must not bypass")
	}
}

func TestSIBChargesScanOverhead(t *testing.T) {
	s := New(Config{ScanEvery: 10 * time.Millisecond, ScanOverheadPerRequest: time.Microsecond})
	st := smallStack(s, workload.RandomRead(10*time.Millisecond, 100, 64, sim.NewRNG(4, "wl")))
	for i := 0; i < 100; i++ {
		st.SSDQueue().Push(&block.Request{Origin: block.AppRead,
			Extent: block.Extent{LBA: int64(i) * 4096, Sectors: 8}}, 0)
	}
	before := st.Engine().Pending()
	s.scan()
	// The stall schedules a completion event on the engine.
	if st.Engine().Pending() <= before {
		t.Error("scan overhead did not occupy the SSD")
	}
}

func TestSIBEndToEndRunCompletes(t *testing.T) {
	s := New(DefaultConfig())
	gen := workload.MixedRW(200*time.Millisecond, 4000, 2048, sim.NewRNG(5, "wl"))
	st := smallStack(s, gen)
	res := st.Run(4)
	if res.AppCompleted != res.AppSubmitted {
		t.Fatalf("SIB run wedged: %d of %d", res.AppCompleted, res.AppSubmitted)
	}
	if res.Scheme != "SIB" {
		t.Errorf("scheme = %q", res.Scheme)
	}
	// WTWO keeps the cache clean throughout.
	if res.CacheStats.DirtyEvicts != 0 {
		t.Error("SIB cache must stay clean")
	}
}
