package sib

import (
	"testing"
	"testing/quick"
	"time"

	"lbica/internal/block"
	"lbica/internal/engine"
	"lbica/internal/sim"
	"lbica/internal/workload"
)

// Property: whatever the initial queue depths, a SIB scan never leaves the
// system in a state where moving one more request (or one fewer) would
// have been clearly better — the transfer count lands within one disk
// service of the equilibrium.
func TestScanEquilibriumProperty(t *testing.T) {
	f := func(ssdDepth16, hddDepth8 uint16) bool {
		ssdDepth := int(ssdDepth16%4000) + 1
		hddDepth := int(hddDepth8 % 64)

		s := New(Config{ScanEvery: 10 * time.Millisecond})
		cfg := engine.DefaultConfig()
		cfg.Cache.Sets = 64
		cfg.Cache.Ways = 2
		cfg.PrewarmBlocks = 0
		gen := workload.RandomRead(time.Millisecond, 10, 16, sim.NewRNG(7, "wl"))
		st := engine.New(cfg, gen, s)

		lba := int64(1 << 30)
		for i := 0; i < ssdDepth; i++ {
			st.SSDQueue().Push(&block.Request{Origin: block.AppWrite, Shadowed: true,
				Extent: block.Extent{LBA: lba, Sectors: 8}}, 0)
			lba += 1024
		}
		for i := 0; i < hddDepth; i++ {
			st.HDDQueue().Push(&block.Request{Origin: block.ReadMiss,
				Extent: block.Extent{LBA: lba, Sectors: 8}}, 0)
			lba += 1024
		}

		s.scan()

		moved := s.Bypassed()
		after := st.SSDQueue().Depth()
		ssdWait := float64(after) * float64(st.SSDLatency())
		diskWait := float64(hddDepth+moved+1) * float64(st.HDDLatency())
		hdd := float64(st.HDDLatency())

		if moved == 0 {
			// Not moving must have been (near) right: the tail's wait must
			// not exceed the disk alternative by more than one disk service.
			return ssdWait <= diskWait+hdd
		}
		// Moved: neither over- nor under-shot by more than one service.
		return ssdWait <= diskWait+hdd && diskWait <= ssdWait+2*hdd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// A scan on an empty queue is free: no stall, no counters.
func TestScanEmptyQueueNoop(t *testing.T) {
	s := New(DefaultConfig())
	gen := workload.RandomRead(time.Millisecond, 10, 16, sim.NewRNG(8, "wl"))
	st := smallStack(s, gen)
	pending := st.Engine().Pending()
	s.scan()
	if s.Scans() != 0 || st.Engine().Pending() != pending {
		t.Error("empty-queue scan did work")
	}
}

// WTWO read-after-write: data written through SIB's cache is served from
// the SSD on the next read — the one hit class SIB preserves.
func TestReadAfterWriteHitsEndToEnd(t *testing.T) {
	s := New(DefaultConfig())
	gen := workload.NewReplay("raw", []workload.Request{
		{At: 0, Op: block.Write, Extent: block.Extent{LBA: 0, Sectors: 8}},
		{At: 50 * time.Millisecond, Op: block.Read, Extent: block.Extent{LBA: 0, Sectors: 8}},
	})
	cfg := engine.DefaultConfig()
	cfg.Cache.Sets = 64
	cfg.Cache.Ways = 2
	cfg.PrewarmBlocks = 0
	cfg.MonitorEvery = 50 * time.Millisecond
	st := engine.New(cfg, gen, s)
	res := st.Run(2)
	if res.AppCompleted != 2 {
		t.Fatalf("completed %d of 2", res.AppCompleted)
	}
	if res.CacheStats.ReadHits != 1 {
		t.Errorf("read after write missed: %+v", res.CacheStats)
	}
}
