// Package iostat is the simulation's sysstat: a periodic sampler that
// watches both device queues and publishes per-interval statistics,
// including the Eq. 1 queue-time estimates LBICA's detector consumes.
//
//	cacheQtime = ssdQSize × ssdLatency
//	diskQtime  = hddQSize × hddLatency
//
// The paper samples every 10 wall-clock minutes; the interval here is
// configurable virtual time. "Load" in Figs. 4–6 is the per-interval
// maximum of the queue-time estimate, which is what Sample.CacheLoad and
// Sample.DiskLoad carry.
package iostat

import (
	"fmt"
	"io"
	"strings"
	"time"

	"lbica/internal/block"
	"lbica/internal/stats"
)

// Tier identifies a device tier to the monitor.
type Tier int

// Tiers.
const (
	SSD Tier = iota
	HDD
	numTiers
)

// Sample is one closed interval's statistics.
type Sample struct {
	Interval int
	Start    time.Duration
	End      time.Duration

	// Queue depths: at interval end, the max seen within the interval, and
	// the time-weighted average over the interval (iostat's avgqu-sz).
	SSDDepth, HDDDepth       int
	SSDDepthMax, HDDDepthMax int
	SSDDepthAvg, HDDDepthAvg float64

	// Eq. 1 queue-time estimates at the within-interval depth maxima —
	// the per-interval "load" (max latency) of Figs. 4 and 5.
	CacheLoad time.Duration
	DiskLoad  time.Duration

	// Eq. 1 queue-time estimates on the time-averaged depths — what the
	// burst detector compares. Using averages rather than peaks keeps one
	// transient disk-queue spike inside an interval from masking a
	// sustained SSD backlog.
	CacheQTime time.Duration
	DiskQTime  time.Duration

	// Bottleneck is the Eq. 1 comparison on averages: CacheQTime > DiskQTime.
	Bottleneck bool

	// Census is the SSD in-queue census at the within-interval depth peak.
	Census block.Census

	// Arrivals is the census of requests that entered the SSD queue during
	// the interval — the R/W/P/E mix the characterizer consumes (a FIFO
	// queue's resident mix equals its arrival mix, and arrivals are what a
	// blktrace pass over the interval yields).
	Arrivals block.Census

	// Completion statistics for requests finished within the interval.
	SSDCompleted, HDDCompleted uint64
	SSDAwait, HDDAwait         time.Duration
	SSDMaxLatency, HDDMaxLat   time.Duration

	// AppCompleted/AppAwait cover application requests end-to-end
	// (including cache-miss chains), the quantity of Fig. 7.
	AppCompleted uint64
	AppAwait     time.Duration
	AppMaxLat    time.Duration
}

// QueueReader exposes what the monitor needs from a device queue.
type QueueReader interface {
	Depth() int
	Census() block.Census
	// Arrivals is the cumulative arrival census (see ioqueue.Arrivals).
	Arrivals() block.Census
}

// Config parameterizes a Monitor.
type Config struct {
	// Every is the sampling interval in virtual time.
	Every time.Duration
	// SSDLatency and HDDLatency are the calibrated per-request service
	// latencies of Eq. 1 (the paper uses the devices' average read/write
	// latency).
	SSDLatency time.Duration
	HDDLatency time.Duration
	// CompareOnPeak switches the bottleneck comparison from time-averaged
	// depths to within-interval peaks. Peaks are what the figures plot,
	// but as a detector input one transient disk spike can mask a
	// sustained SSD backlog — kept as an ablation knob (DESIGN.md §5.1).
	CompareOnPeak bool
}

// Monitor accumulates statistics and closes a Sample every interval.
// The engine drives it: NoteDepth on queue changes, NoteCompletion on
// device completions, NoteAppDone on application-request completions, and
// Tick at each interval boundary.
type Monitor struct {
	cfg  Config
	ssdQ QueueReader
	hddQ QueueReader

	samples []Sample
	onClose []func(Sample)

	// accumulators for the open interval
	idx         int
	start       time.Duration
	depthMax    [numTiers]int
	censusAtMax block.Census
	completed   [numTiers]uint64
	await       [numTiers]stats.Welford
	appDone     uint64
	appLat      stats.Welford

	// time-weighted depth integration
	lastDepth   [numTiers]int
	lastChange  [numTiers]time.Duration
	depthWeight [numTiers]float64 // ∫ depth dt, in depth×ns

	// arrival-census snapshot at the previous tick
	prevArrivals block.Census
}

// New builds a monitor over the two queues.
func New(cfg Config, ssdQ, hddQ QueueReader) *Monitor {
	if cfg.Every <= 0 {
		cfg.Every = time.Second
	}
	return &Monitor{cfg: cfg, ssdQ: ssdQ, hddQ: hddQ}
}

// OnClose registers a callback invoked with each closed Sample — the hook
// point for load balancers.
func (m *Monitor) OnClose(fn func(Sample)) { m.onClose = append(m.onClose, fn) }

// Every returns the sampling interval.
func (m *Monitor) Every() time.Duration { return m.cfg.Every }

// NoteDepth records a queue-depth change on a tier at virtual time now.
// The SSD depth peak also snapshots the census: the characterizer reasons
// about the queue at its worst moment, not at the (often drained) interval
// end.
func (m *Monitor) NoteDepth(t Tier, now time.Duration) {
	var d int
	if t == SSD {
		d = m.ssdQ.Depth()
	} else {
		d = m.hddQ.Depth()
	}
	m.depthWeight[t] += float64(m.lastDepth[t]) * float64(now-m.lastChange[t])
	m.lastDepth[t] = d
	m.lastChange[t] = now
	if d > m.depthMax[t] {
		m.depthMax[t] = d
		if t == SSD {
			m.censusAtMax = m.ssdQ.Census()
		}
	}
}

// NoteCompletion records a finished device request.
func (m *Monitor) NoteCompletion(t Tier, r *block.Request) {
	m.completed[t]++
	m.await[t].AddDuration(r.Latency())
}

// NoteAppDone records an application request's end-to-end latency.
func (m *Monitor) NoteAppDone(latency time.Duration) {
	m.appDone++
	m.appLat.AddDuration(latency)
}

// Tick closes the open interval at virtual time now, appends the Sample,
// and fires OnClose callbacks.
func (m *Monitor) Tick(now time.Duration) Sample {
	// Close the depth integrals at the boundary.
	for t := Tier(0); t < numTiers; t++ {
		m.depthWeight[t] += float64(m.lastDepth[t]) * float64(now-m.lastChange[t])
		m.lastChange[t] = now
	}
	span := float64(now - m.start)
	arr := m.ssdQ.Arrivals()
	var delta block.Census
	for i := range arr {
		delta[i] = arr[i] - m.prevArrivals[i]
	}
	m.prevArrivals = arr
	s := Sample{
		Interval:      m.idx,
		Start:         m.start,
		End:           now,
		SSDDepth:      m.ssdQ.Depth(),
		HDDDepth:      m.hddQ.Depth(),
		SSDDepthMax:   m.depthMax[SSD],
		HDDDepthMax:   m.depthMax[HDD],
		Census:        m.censusAtMax,
		Arrivals:      delta,
		SSDCompleted:  m.completed[SSD],
		HDDCompleted:  m.completed[HDD],
		SSDAwait:      m.await[SSD].MeanDuration(),
		HDDAwait:      m.await[HDD].MeanDuration(),
		SSDMaxLatency: m.await[SSD].MaxDuration(),
		HDDMaxLat:     m.await[HDD].MaxDuration(),
		AppCompleted:  m.appDone,
		AppAwait:      m.appLat.MeanDuration(),
		AppMaxLat:     m.appLat.MaxDuration(),
	}
	if span > 0 {
		s.SSDDepthAvg = m.depthWeight[SSD] / span
		s.HDDDepthAvg = m.depthWeight[HDD] / span
	}
	s.CacheLoad = QueueTime(s.SSDDepthMax, m.cfg.SSDLatency)
	s.DiskLoad = QueueTime(s.HDDDepthMax, m.cfg.HDDLatency)
	s.CacheQTime = time.Duration(s.SSDDepthAvg * float64(m.cfg.SSDLatency))
	s.DiskQTime = time.Duration(s.HDDDepthAvg * float64(m.cfg.HDDLatency))
	// A near-idle SSD queue cannot be a bottleneck no matter how idle the
	// disk is; require at least one request continuously pending.
	if m.cfg.CompareOnPeak {
		s.Bottleneck = s.CacheLoad > s.DiskLoad && s.SSDDepthMax >= 1
	} else {
		s.Bottleneck = s.CacheQTime > s.DiskQTime && s.SSDDepthAvg >= 1
	}
	m.samples = append(m.samples, s)

	// reset accumulators
	m.idx++
	m.start = now
	m.depthMax = [numTiers]int{}
	m.censusAtMax = block.Census{}
	m.completed = [numTiers]uint64{}
	m.await[SSD].Reset()
	m.await[HDD].Reset()
	m.appDone = 0
	m.appLat.Reset()
	m.depthWeight = [numTiers]float64{}

	for _, fn := range m.onClose {
		fn(s)
	}
	return s
}

// Samples returns all closed samples.
func (m *Monitor) Samples() []Sample { return m.samples }

// Clone returns a deep copy of the monitor bound to the clone-side queue
// readers: closed samples (deep-copied — Results aliases the slice),
// every open-interval accumulator, and the arrival snapshot. OnClose
// hooks are closures over the original stack and are NOT carried over;
// the fork re-registers clone-side hooks in the original registration
// order, which is what keeps the per-tick callback order identical.
func (m *Monitor) Clone(ssdQ, hddQ QueueReader) *Monitor {
	m2 := *m
	m2.ssdQ, m2.hddQ = ssdQ, hddQ
	m2.samples = append([]Sample(nil), m.samples...)
	m2.onClose = nil
	return &m2
}

// QueueTime is Eq. 1: pending requests × calibrated service latency.
func QueueTime(depth int, svc time.Duration) time.Duration {
	return time.Duration(depth) * svc
}

// WriteCSV renders samples as CSV with a fixed column set. Durations are
// microseconds to match the paper's axes.
func WriteCSV(w io.Writer, samples []Sample) error {
	if _, err := fmt.Fprintln(w, "interval,cache_load_us,disk_load_us,bottleneck,"+
		"ssd_depth_max,hdd_depth_max,ssd_await_us,hdd_await_us,app_await_us,"+
		"r_pct,w_pct,p_pct,e_pct"); err != nil {
		return err
	}
	for _, s := range samples {
		_, err := fmt.Fprintf(w, "%d,%.1f,%.1f,%t,%d,%d,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f\n",
			s.Interval, us(s.CacheLoad), us(s.DiskLoad), s.Bottleneck,
			s.SSDDepthMax, s.HDDDepthMax,
			us(s.SSDAwait), us(s.HDDAwait), us(s.AppAwait),
			100*s.Census.Ratio(block.AppRead), 100*s.Census.Ratio(block.AppWrite),
			100*s.Census.Ratio(block.Promote), 100*s.Census.Ratio(block.Evict))
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteTable renders samples as an aligned human-readable table, iostat
// style.
func WriteTable(w io.Writer, samples []Sample) error {
	const hdr = "%8s %14s %14s %6s %8s %8s %12s %12s %12s\n"
	const row = "%8d %14.1f %14.1f %6v %8d %8d %12.1f %12.1f %12.1f\n"
	if _, err := fmt.Fprintf(w, hdr, "interval", "cacheQ(us)", "diskQ(us)", "burst",
		"ssdQmax", "hddQmax", "ssd_await", "hdd_await", "app_await"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", 100)); err != nil {
		return err
	}
	for _, s := range samples {
		_, err := fmt.Fprintf(w, row, s.Interval, us(s.CacheLoad), us(s.DiskLoad),
			s.Bottleneck, s.SSDDepthMax, s.HDDDepthMax,
			us(s.SSDAwait), us(s.HDDAwait), us(s.AppAwait))
		if err != nil {
			return err
		}
	}
	return nil
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
