package iostat

import (
	"lbica/internal/block"
	"lbica/internal/ckpt"
)

// encodeSample serializes one closed sample, field for field in
// declaration order.
func encodeSample(enc *ckpt.Encoder, s Sample) {
	enc.Int(s.Interval)
	enc.Duration(s.Start)
	enc.Duration(s.End)
	enc.Int(s.SSDDepth)
	enc.Int(s.HDDDepth)
	enc.Int(s.SSDDepthMax)
	enc.Int(s.HDDDepthMax)
	enc.F64(s.SSDDepthAvg)
	enc.F64(s.HDDDepthAvg)
	enc.Duration(s.CacheLoad)
	enc.Duration(s.DiskLoad)
	enc.Duration(s.CacheQTime)
	enc.Duration(s.DiskQTime)
	enc.Bool(s.Bottleneck)
	encodeCensus(enc, s.Census)
	encodeCensus(enc, s.Arrivals)
	enc.U64(s.SSDCompleted)
	enc.U64(s.HDDCompleted)
	enc.Duration(s.SSDAwait)
	enc.Duration(s.HDDAwait)
	enc.Duration(s.SSDMaxLatency)
	enc.Duration(s.HDDMaxLat)
	enc.U64(s.AppCompleted)
	enc.Duration(s.AppAwait)
	enc.Duration(s.AppMaxLat)
}

func decodeSample(d *ckpt.Decoder) Sample {
	var s Sample
	s.Interval = d.Int()
	s.Start = d.Duration()
	s.End = d.Duration()
	s.SSDDepth = d.Int()
	s.HDDDepth = d.Int()
	s.SSDDepthMax = d.Int()
	s.HDDDepthMax = d.Int()
	s.SSDDepthAvg = d.F64()
	s.HDDDepthAvg = d.F64()
	s.CacheLoad = d.Duration()
	s.DiskLoad = d.Duration()
	s.CacheQTime = d.Duration()
	s.DiskQTime = d.Duration()
	s.Bottleneck = d.Bool()
	s.Census = decodeCensus(d)
	s.Arrivals = decodeCensus(d)
	s.SSDCompleted = d.U64()
	s.HDDCompleted = d.U64()
	s.SSDAwait = d.Duration()
	s.HDDAwait = d.Duration()
	s.SSDMaxLatency = d.Duration()
	s.HDDMaxLat = d.Duration()
	s.AppCompleted = d.U64()
	s.AppAwait = d.Duration()
	s.AppMaxLat = d.Duration()
	return s
}

func encodeCensus(enc *ckpt.Encoder, c block.Census) {
	for _, v := range c {
		enc.Int(v)
	}
}

func decodeCensus(d *ckpt.Decoder) block.Census {
	var c block.Census
	for i := range c {
		c[i] = d.Int()
	}
	return c
}

// EncodeState serializes the monitor: every closed sample plus the full
// open-interval accumulator set — the same state Clone deep-copies. The
// queue readers and OnClose hooks are wiring the restoring stack already
// has.
func (m *Monitor) EncodeState(enc *ckpt.Encoder) {
	enc.Section("iostat.Monitor")
	enc.U32(uint32(len(m.samples)))
	for _, s := range m.samples {
		encodeSample(enc, s)
	}
	enc.Int(m.idx)
	enc.Duration(m.start)
	for t := 0; t < int(numTiers); t++ {
		enc.Int(m.depthMax[t])
		enc.U64(m.completed[t])
		m.await[t].EncodeState(enc)
		enc.Int(m.lastDepth[t])
		enc.Duration(m.lastChange[t])
		enc.F64(m.depthWeight[t])
	}
	encodeCensus(enc, m.censusAtMax)
	enc.U64(m.appDone)
	m.appLat.EncodeState(enc)
	encodeCensus(enc, m.prevArrivals)
}

// DecodeState restores the monitor in place.
func (m *Monitor) DecodeState(d *ckpt.Decoder) {
	d.Section("iostat.Monitor")
	n := d.Count(8)
	if d.Err() != nil {
		return
	}
	var samples []Sample
	if n > 0 {
		samples = make([]Sample, 0, n)
	}
	for i := 0; i < n; i++ {
		samples = append(samples, decodeSample(d))
		if d.Err() != nil {
			return
		}
	}
	m2 := *m
	m2.samples = samples
	m2.idx = d.Int()
	m2.start = d.Duration()
	for t := 0; t < int(numTiers); t++ {
		m2.depthMax[t] = d.Int()
		m2.completed[t] = d.U64()
		m2.await[t].DecodeState(d)
		m2.lastDepth[t] = d.Int()
		m2.lastChange[t] = d.Duration()
		m2.depthWeight[t] = d.F64()
	}
	m2.censusAtMax = decodeCensus(d)
	m2.appDone = d.U64()
	m2.appLat.DecodeState(d)
	m2.prevArrivals = decodeCensus(d)
	if d.Err() != nil {
		return
	}
	*m = m2
}
