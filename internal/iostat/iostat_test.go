package iostat

import (
	"strings"
	"testing"
	"time"

	"lbica/internal/block"
)

// fakeQueue is a scriptable QueueReader.
type fakeQueue struct {
	depth    int
	census   block.Census
	arrivals block.Census
}

func (f *fakeQueue) Depth() int             { return f.depth }
func (f *fakeQueue) Census() block.Census   { return f.census }
func (f *fakeQueue) Arrivals() block.Census { return f.arrivals }

func newMon() (*Monitor, *fakeQueue, *fakeQueue) {
	ssd, hdd := &fakeQueue{}, &fakeQueue{}
	m := New(Config{
		Every:      time.Second,
		SSDLatency: 100 * time.Microsecond,
		HDDLatency: 10 * time.Millisecond,
	}, ssd, hdd)
	return m, ssd, hdd
}

func TestQueueTimeEq1(t *testing.T) {
	if got := QueueTime(50, 100*time.Microsecond); got != 5*time.Millisecond {
		t.Errorf("QueueTime = %v", got)
	}
	if QueueTime(0, time.Second) != 0 {
		t.Error("empty queue must have zero queue time")
	}
}

func TestTickComputesLoadAndBottleneck(t *testing.T) {
	m, ssd, hdd := newMon()
	// SSD queue sits at 200 for the whole interval; HDD briefly touches 1.
	ssd.depth = 200
	ssd.census[block.AppRead] = 150
	ssd.census[block.Promote] = 50
	m.NoteDepth(SSD, 0)
	hdd.depth = 1
	m.NoteDepth(HDD, 0)
	hdd.depth = 0
	m.NoteDepth(HDD, 100*time.Millisecond) // HDD busy only 10% of the interval
	s := m.Tick(time.Second)

	if s.SSDDepthMax != 200 || s.SSDDepth != 200 {
		t.Errorf("depths = max %d end %d", s.SSDDepthMax, s.SSDDepth)
	}
	// Max-based load (the figures): 200 × 100µs and 1 × 10ms.
	if s.CacheLoad != 20*time.Millisecond {
		t.Errorf("cache load = %v", s.CacheLoad)
	}
	if s.DiskLoad != 10*time.Millisecond {
		t.Errorf("disk load = %v", s.DiskLoad)
	}
	// Average-based detector input: SSD avg 200 → 20ms; HDD avg 0.1 → 1ms.
	if s.SSDDepthAvg < 199 || s.SSDDepthAvg > 200 {
		t.Errorf("ssd depth avg = %v", s.SSDDepthAvg)
	}
	if s.HDDDepthAvg < 0.09 || s.HDDDepthAvg > 0.11 {
		t.Errorf("hdd depth avg = %v", s.HDDDepthAvg)
	}
	if !s.Bottleneck {
		t.Error("bottleneck not flagged (20ms avg cache vs 1ms avg disk)")
	}
	if s.Census[block.AppRead] != 150 {
		t.Errorf("census not captured at peak: %v", s.Census)
	}
}

func TestBottleneckUsesAveragesNotPeaks(t *testing.T) {
	m, ssd, hdd := newMon()
	// A single instantaneous HDD spike to 500 (5s max estimate) but only
	// for 1µs of the interval; the SSD holds 100 throughout.
	ssd.depth = 100
	m.NoteDepth(SSD, 0)
	hdd.depth = 500
	m.NoteDepth(HDD, 0)
	hdd.depth = 0
	m.NoteDepth(HDD, time.Microsecond)
	s := m.Tick(time.Second)
	if s.DiskLoad <= s.CacheLoad {
		t.Fatalf("peak-based loads should favor the disk spike: %v vs %v", s.DiskLoad, s.CacheLoad)
	}
	if !s.Bottleneck {
		t.Error("transient disk spike masked the sustained SSD backlog")
	}
}

func TestCensusSnapshotAtPeakNotEnd(t *testing.T) {
	m, ssd, _ := newMon()
	ssd.depth = 100
	ssd.census[block.AppWrite] = 100
	m.NoteDepth(SSD, 0)
	// Queue drains and refills lower with a different mix.
	ssd.depth = 10
	ssd.census = block.Census{}
	ssd.census[block.Promote] = 10
	m.NoteDepth(SSD, 500*time.Millisecond)
	s := m.Tick(time.Second)
	if s.Census[block.AppWrite] != 100 || s.Census[block.Promote] != 0 {
		t.Errorf("census = %v, want the peak-time mix", s.Census)
	}
}

func TestIntervalRollover(t *testing.T) {
	m, ssd, _ := newMon()
	ssd.depth = 10
	m.NoteDepth(SSD, 0)
	s0 := m.Tick(time.Second)
	if s0.Interval != 0 {
		t.Errorf("first interval = %d", s0.Interval)
	}
	// Next interval: the queue is still at 10 (no depth change events),
	// so the average must carry over even with no NoteDepth calls.
	s1 := m.Tick(2 * time.Second)
	if s1.Interval != 1 {
		t.Errorf("second interval = %d", s1.Interval)
	}
	if s1.SSDDepthMax != 0 {
		t.Errorf("depth max leaked across intervals: %d", s1.SSDDepthMax)
	}
	if s1.SSDDepthAvg < 9.99 || s1.SSDDepthAvg > 10.01 {
		t.Errorf("steady queue average lost at rollover: %v", s1.SSDDepthAvg)
	}
	if s1.Start != time.Second || s1.End != 2*time.Second {
		t.Errorf("interval bounds = [%v,%v]", s1.Start, s1.End)
	}
	if len(m.Samples()) != 2 {
		t.Errorf("samples = %d", len(m.Samples()))
	}
}

func TestCompletionAccounting(t *testing.T) {
	m, _, _ := newMon()
	m.NoteCompletion(SSD, &block.Request{Submit: 0, Dispatch: 10, Complete: 100})
	m.NoteCompletion(SSD, &block.Request{Submit: 0, Dispatch: 10, Complete: 300})
	m.NoteCompletion(HDD, &block.Request{Submit: 0, Dispatch: 0, Complete: 1000})
	m.NoteAppDone(500)
	s := m.Tick(time.Second)
	if s.SSDCompleted != 2 || s.HDDCompleted != 1 {
		t.Errorf("completed = %d/%d", s.SSDCompleted, s.HDDCompleted)
	}
	if s.SSDAwait != 200 {
		t.Errorf("ssd await = %v", s.SSDAwait)
	}
	if s.SSDMaxLatency != 300 {
		t.Errorf("ssd max = %v", s.SSDMaxLatency)
	}
	if s.AppCompleted != 1 || s.AppAwait != 500 {
		t.Errorf("app = %d %v", s.AppCompleted, s.AppAwait)
	}
}

func TestOnCloseCallback(t *testing.T) {
	m, _, _ := newMon()
	var got []Sample
	m.OnClose(func(s Sample) { got = append(got, s) })
	m.Tick(time.Second)
	m.Tick(2 * time.Second)
	if len(got) != 2 || got[1].Interval != 1 {
		t.Fatalf("callbacks = %v", got)
	}
}

func TestWriteCSVAndTable(t *testing.T) {
	m, ssd, _ := newMon()
	ssd.depth = 4
	ssd.census[block.AppRead] = 3
	ssd.census[block.Promote] = 1
	m.NoteDepth(SSD, 0)
	m.Tick(time.Second)

	var csv strings.Builder
	if err := WriteCSV(&csv, m.Samples()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "0,400.0,0.0,true,4,0") {
		t.Errorf("csv row = %q", lines[1])
	}
	if !strings.Contains(lines[1], "75.0,0.0,25.0,0.0") {
		t.Errorf("csv census percentages wrong: %q", lines[1])
	}

	var tbl strings.Builder
	if err := WriteTable(&tbl, m.Samples()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "cacheQ(us)") {
		t.Error("table header missing")
	}
}

func TestDefaultInterval(t *testing.T) {
	m := New(Config{}, &fakeQueue{}, &fakeQueue{})
	if m.Every() != time.Second {
		t.Errorf("default interval = %v", m.Every())
	}
}
