package device

import (
	"lbica/internal/ckpt"
	"lbica/internal/sim"
)

// EncodableModel is a device model whose internal state (RNG position,
// locality, write-cache occupancy) can round-trip through a checkpoint.
// Both shipped models implement it; the decode side restores state onto
// the freshly built model of the same configuration.
type EncodableModel interface {
	Model
	EncodeModelState(*ckpt.Encoder)
	DecodeModelState(*ckpt.Decoder)
}

// EncodeModelState serializes the SSD's mutable state: the jitter stream
// position and the GC-backlog counter. The dists are pure functions of
// the configuration over the stream and are rebuilt by NewSSD.
func (s *SSD) EncodeModelState(enc *ckpt.Encoder) {
	enc.Section("device.SSD")
	s.g.EncodeState(enc)
	enc.Int(s.recentWrites)
}

// DecodeModelState restores the SSD in place. The RNG is restored
// through the same pointer the dists hold, so they stay wired.
func (s *SSD) DecodeModelState(d *ckpt.Decoder) {
	d.Section("device.SSD")
	s.g.DecodeState(d)
	s.recentWrites = d.Int()
}

// EncodeModelState serializes the HDD's mutable state: stream position,
// head locality, and the controller write-cache drain model. The clock
// is a closure over the owning engine and is never serialized; the
// freshly built stack has already re-attached it.
func (h *HDD) EncodeModelState(enc *ckpt.Encoder) {
	enc.Section("device.HDD")
	h.g.EncodeState(enc)
	enc.I64(h.lastEnd)
	enc.F64(h.wcOccupancy)
	enc.Duration(h.wcLastDrain)
	enc.U64(h.wcRejects)
}

// DecodeModelState restores the HDD in place.
func (h *HDD) DecodeModelState(d *ckpt.Decoder) {
	d.Section("device.HDD")
	h.g.DecodeState(d)
	h.lastEnd = d.I64()
	h.wcOccupancy = d.F64()
	h.wcLastDrain = d.Duration()
	h.wcRejects = d.U64()
}

// EncodeState serializes the server: model state, service accounting,
// every in-flight request with its pending completion event, and every
// pending stall slot — the same working set Clone deep-copies. The op
// pools are behavior-invisible and excluded; the hooks are closures the
// restoring stack already wired.
func (s *Server) EncodeState(enc *ckpt.Encoder) {
	enc.Section("device.Server")
	m, ok := s.model.(EncodableModel)
	if !ok {
		enc.Failf("device: model %s is not checkpointable", s.model.Name())
		return
	}
	m.EncodeModelState(enc)
	enc.Int(s.inflight)
	enc.Duration(s.busy)
	enc.U64(s.completed)
	enc.U32(uint32(len(s.live)))
	for _, op := range s.live {
		enc.Request(op.r)
		sim.EncodeEvent(enc, op.ev)
	}
	enc.U32(uint32(len(s.stalls)))
	for _, op := range s.stalls {
		sim.EncodeEvent(enc, op.ev)
	}
}

// DecodeState restores the server in place against its engine (already
// restored, so every recorded completion event has a pending slot
// awaiting rebind). Mirrors Clone: each live op is rebuilt with a fresh
// bound callback and its event rebound by (slot, generation).
func (s *Server) DecodeState(d *ckpt.Decoder) {
	d.Section("device.Server")
	m, ok := s.model.(EncodableModel)
	if !ok {
		d.Failf("device: model %s is not checkpointable", s.model.Name())
		return
	}
	m.DecodeModelState(d)
	inflight := d.Int()
	busy := d.Duration()
	completed := d.U64()
	nLive := d.Count(1)
	if d.Err() != nil {
		return
	}
	live := make([]*inflightOp, 0, nLive)
	for i := 0; i < nLive; i++ {
		r := d.Request()
		ref, pending := s.eng.DecodeEvent(d)
		if d.Err() != nil {
			return
		}
		if r == nil || !pending {
			d.Failf("device: %s: in-flight op %d lacks a request or pending event", s.model.Name(), i)
			return
		}
		op := &inflightOp{s: s, r: r, idx: i}
		op.fn = op.complete
		ev, ok := s.eng.Rebind(ref, op.fn)
		if !ok {
			d.Failf("device: %s: in-flight completion event failed to rebind", s.model.Name())
			return
		}
		op.ev = ev
		live = append(live, op)
	}
	nStalls := d.Count(1)
	if d.Err() != nil {
		return
	}
	stalls := make([]*stallOp, 0, nStalls)
	for i := 0; i < nStalls; i++ {
		ref, pending := s.eng.DecodeEvent(d)
		if d.Err() != nil {
			return
		}
		if !pending {
			d.Failf("device: %s: stall op %d lacks a pending event", s.model.Name(), i)
			return
		}
		op := &stallOp{s: s, idx: i}
		op.fn = op.fire
		ev, ok := s.eng.Rebind(ref, op.fn)
		if !ok {
			d.Failf("device: %s: stall event failed to rebind", s.model.Name())
			return
		}
		op.ev = ev
		stalls = append(stalls, op)
	}
	if inflight < 0 {
		d.Failf("device: %s: negative inflight %d", s.model.Name(), inflight)
		return
	}
	s.inflight = inflight
	s.busy = busy
	s.completed = completed
	s.live = live
	s.stalls = stalls
	s.freeOps = nil
	s.freeStalls = nil
}
