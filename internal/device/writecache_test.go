package device

import (
	"testing"
	"time"

	"lbica/internal/block"
	"lbica/internal/sim"
)

func wcConfig() HDDConfig {
	cfg := DefaultHDDConfig()
	cfg.WriteCacheLatency = 150 * time.Microsecond
	cfg.WriteCacheDepth = 10
	cfg.DrainIOPS = 1000
	return cfg
}

func TestWriteCacheAcksFast(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHDD(wcConfig(), sim.NewRNG(1, "h"))
	h.SetClock(eng.Now)
	for i := 0; i < 10; i++ {
		svc := h.Service(wr(int64(i) * 4096))
		if svc != 150*time.Microsecond {
			t.Fatalf("cached write %d serviced in %v, want 150µs", i, svc)
		}
	}
}

func TestWriteCacheDrainRestoresCapacity(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHDD(wcConfig(), sim.NewRNG(1, "h"))
	h.SetClock(eng.Now)
	// Fill the cache.
	for i := 0; i < 10; i++ {
		h.Service(wr(int64(i) * 4096))
	}
	// The 11th write overflows to spindle latency.
	if svc := h.Service(wr(11 * 4096)); svc <= time.Millisecond {
		t.Fatalf("overflow write serviced in %v, want spindle-scale", svc)
	}
	if h.WriteCacheRejects() != 1 {
		t.Fatalf("rejects = %d", h.WriteCacheRejects())
	}
	// Advance virtual time: 1000 IOPS drain clears ~5 slots in 5 ms.
	eng.At(5*time.Millisecond, func() {})
	eng.RunUntilIdle()
	if svc := h.Service(wr(12 * 4096)); svc != 150*time.Microsecond {
		t.Fatalf("post-drain write serviced in %v, want 150µs", svc)
	}
}

func TestWriteCacheDisabledWithoutClock(t *testing.T) {
	h := NewHDD(wcConfig(), sim.NewRNG(1, "h"))
	// No SetClock: every write costs spindle time.
	if svc := h.Service(wr(0)); svc <= time.Millisecond {
		t.Fatalf("write without clock serviced in %v, want spindle-scale", svc)
	}
}

func TestWriteCacheNeverServesReads(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHDD(wcConfig(), sim.NewRNG(1, "h"))
	h.SetClock(eng.Now)
	if svc := h.Service(rd(1 << 20)); svc <= time.Millisecond {
		t.Fatalf("random read serviced in %v, want spindle-scale", svc)
	}
}

func TestSeqThresholdBoundary(t *testing.T) {
	cfg := DefaultHDDConfig()
	cfg.SeqThreshold = 64
	h := NewHDD(cfg, sim.NewRNG(1, "h"))
	h.Service(rd(0)) // position the head; rd() covers sectors [0,8)
	// Gap of exactly 64 sectors is still sequential.
	if svc := h.Service(rd(8 + 64)); svc > time.Millisecond {
		t.Errorf("gap == threshold treated as random (%v)", svc)
	}
	// One past is random.
	h2 := NewHDD(cfg, sim.NewRNG(2, "h"))
	h2.Service(rd(0))
	if svc := h2.Service(rd(8 + 65)); svc < time.Millisecond {
		t.Errorf("gap > threshold treated as sequential (%v)", svc)
	}
}

func TestSSDTransferScalesWithSize(t *testing.T) {
	cfg := DefaultSSDConfig()
	cfg.Sigma = 0.0001
	s := NewSSD(cfg, sim.NewRNG(3, "s"))
	small := s.Service(&block.Request{Origin: block.AppRead, Extent: block.Extent{LBA: 0, Sectors: 8}})
	large := s.Service(&block.Request{Origin: block.AppRead, Extent: block.Extent{LBA: 1 << 20, Sectors: 1024}})
	wantDelta := time.Duration(1024-8) * cfg.PerSector
	gotDelta := large - small
	if gotDelta < wantDelta/2 || gotDelta > wantDelta*2 {
		t.Errorf("size scaling delta = %v, want ≈%v", gotDelta, wantDelta)
	}
}

func TestHDDAvgLatencySymmetric(t *testing.T) {
	h := NewHDD(DefaultHDDConfig(), sim.NewRNG(4, "h"))
	if h.AvgLatency(block.Read) != h.AvgLatency(block.Write) {
		t.Error("rotational model calibrates reads and writes identically at this altitude")
	}
}

func TestServerStallBlocksDispatch(t *testing.T) {
	eng := sim.NewEngine()
	q := newStubSource()
	cfg := DefaultSSDConfig()
	cfg.Channels = 1
	s := NewSSD(cfg, sim.NewRNG(5, "s"))
	srv := NewServer(eng, s, q, nil)
	srv.Stall(time.Second)
	q.push(rd(0))
	srv.Kick()
	if srv.Inflight() != 1 { // only the stall occupies the slot
		t.Fatalf("inflight = %d during stall", srv.Inflight())
	}
	if q.depth() != 1 {
		t.Fatal("request dispatched during stall")
	}
	eng.RunUntilIdle()
	if srv.Completed() != 1 {
		t.Fatalf("completed = %d after stall ends", srv.Completed())
	}
}

// stubSource is a minimal Source for server tests.
type stubSource struct{ reqs []*block.Request }

func newStubSource() *stubSource { return &stubSource{} }

func (s *stubSource) push(r *block.Request) { s.reqs = append(s.reqs, r) }

func (s *stubSource) Pop() *block.Request {
	if len(s.reqs) == 0 {
		return nil
	}
	r := s.reqs[0]
	s.reqs = s.reqs[1:]
	return r
}

func (s *stubSource) Depth() int { return len(s.reqs) }

func (s *stubSource) depth() int { return len(s.reqs) }
