package device

import (
	"testing"
	"time"

	"lbica/internal/block"
	"lbica/internal/ioqueue"
	"lbica/internal/sim"
)

func rd(lba int64) *block.Request {
	return &block.Request{Origin: block.AppRead, Extent: block.Extent{LBA: lba, Sectors: 8}}
}

func wr(lba int64) *block.Request {
	return &block.Request{Origin: block.AppWrite, Extent: block.Extent{LBA: lba, Sectors: 8}}
}

func TestSSDReadWriteAsymmetry(t *testing.T) {
	s := NewSSD(DefaultSSDConfig(), sim.NewRNG(1, "ssd"))
	var rsum, wsum time.Duration
	n := 2000
	for i := 0; i < n; i++ {
		rsum += s.Service(rd(int64(i) * 1000))
		wsum += s.Service(wr(int64(i) * 1000))
	}
	if wsum >= rsum {
		t.Errorf("SSD writes (%v avg) not faster than reads (%v avg)", wsum/time.Duration(n), rsum/time.Duration(n))
	}
	ravg := rsum / time.Duration(n)
	want := DefaultSSDConfig().ReadBase
	if ravg < want/2 || ravg > want*2 {
		t.Errorf("SSD read avg %v too far from base %v", ravg, want)
	}
}

func TestSSDAvgLatencyCalibration(t *testing.T) {
	s := NewSSD(DefaultSSDConfig(), sim.NewRNG(1, "ssd"))
	if s.AvgLatency(block.Read) <= s.AvgLatency(block.Write) {
		t.Error("calibrated read latency should exceed write latency for this class")
	}
	if s.AvgLatency(block.Read) < 90*time.Microsecond {
		t.Error("calibrated read latency must include base flash latency")
	}
}

func TestSSDWriteCliff(t *testing.T) {
	cfg := DefaultSSDConfig()
	cfg.WriteCliffThreshold = 10
	cfg.WriteCliffFactor = 5
	cfg.Sigma = 0.001
	s := NewSSD(cfg, sim.NewRNG(1, "ssd"))
	var before, after time.Duration
	for i := 0; i < 10; i++ {
		before += s.Service(wr(int64(i) * 1000))
	}
	for i := 0; i < 10; i++ {
		after += s.Service(wr(int64(100+i) * 1000))
	}
	if float64(after) < 3*float64(before) {
		t.Errorf("write cliff not engaged: before=%v after=%v", before, after)
	}
}

func TestHDDRandomVsSequential(t *testing.T) {
	h := NewHDD(DefaultHDDConfig(), sim.NewRNG(1, "hdd"))
	// Sequential stream after the first (positioning) access.
	var seq time.Duration
	h.Service(rd(0))
	for i := 1; i <= 100; i++ {
		seq += h.Service(rd(int64(i) * 8))
	}
	h2 := NewHDD(DefaultHDDConfig(), sim.NewRNG(2, "hdd"))
	var rnd time.Duration
	for i := 0; i < 100; i++ {
		rnd += h2.Service(rd(int64((i*7919)%100000) * 1024))
	}
	if rnd < 20*seq {
		t.Errorf("random (%v) should dwarf sequential (%v)", rnd, seq)
	}
	// Sequential throughput ballpark: 8 sectors at PerSector each.
	wantSeq := 100 * 8 * DefaultHDDConfig().PerSector
	if seq != wantSeq {
		t.Errorf("sequential service = %v, want exactly transfer time %v", seq, wantSeq)
	}
}

func TestHDDAvgLatencyMsScale(t *testing.T) {
	h := NewHDD(DefaultHDDConfig(), sim.NewRNG(1, "hdd"))
	avg := h.AvgLatency(block.Read)
	if avg < 5*time.Millisecond || avg > 30*time.Millisecond {
		t.Errorf("HDD calibrated latency %v outside rotational-disk range", avg)
	}
}

func TestTierLatencyGap(t *testing.T) {
	// The premise of the whole paper: SSD service is orders of magnitude
	// faster than HDD random service.
	s := NewSSD(DefaultSSDConfig(), sim.NewRNG(1, "s"))
	h := NewHDD(DefaultHDDConfig(), sim.NewRNG(1, "h"))
	ratio := float64(h.AvgLatency(block.Read)) / float64(s.AvgLatency(block.Read))
	if ratio < 30 {
		t.Errorf("HDD/SSD latency ratio %.1f too small to reproduce the bottleneck dynamics", ratio)
	}
}

func TestServerServesQueue(t *testing.T) {
	eng := sim.NewEngine()
	q := ioqueue.New("ssd")
	s := NewSSD(DefaultSSDConfig(), sim.NewRNG(1, "ssd"))
	var done []*block.Request
	srv := NewServer(eng, s, q, func(r *block.Request) { done = append(done, r) })
	for i := 0; i < 50; i++ {
		q.Push(rd(int64(i)*1000), eng.Now())
	}
	srv.Kick()
	eng.RunUntilIdle()
	if len(done) != 50 {
		t.Fatalf("completed %d, want 50", len(done))
	}
	for _, r := range done {
		if r.Complete < r.Dispatch || r.Dispatch < r.Submit {
			t.Fatalf("timestamps out of order: %+v", r)
		}
		if r.ServiceTime() <= 0 {
			t.Fatalf("service time %v not positive", r.ServiceTime())
		}
	}
	if srv.Completed() != 50 {
		t.Errorf("Completed() = %d", srv.Completed())
	}
	if q.Depth() != 0 {
		t.Errorf("queue not drained: %d", q.Depth())
	}
	if srv.Inflight() != 0 {
		t.Errorf("inflight not zero at idle: %d", srv.Inflight())
	}
}

func TestServerWidthLimitsConcurrency(t *testing.T) {
	eng := sim.NewEngine()
	q := ioqueue.New("ssd", ioqueue.WithMaxMergeSectors(0))
	cfg := DefaultSSDConfig()
	cfg.Channels = 2
	s := NewSSD(cfg, sim.NewRNG(1, "ssd"))
	srv := NewServer(eng, s, q, nil)
	for i := 0; i < 10; i++ {
		q.Push(rd(int64(i)*1000), 0)
	}
	srv.Kick()
	if srv.Inflight() != 2 {
		t.Fatalf("inflight = %d, want width 2", srv.Inflight())
	}
	if q.Depth() != 8 {
		t.Fatalf("queue depth = %d, want 8", q.Depth())
	}
	eng.RunUntilIdle()
	if srv.Completed() != 10 {
		t.Fatalf("completed = %d", srv.Completed())
	}
}

func TestServerUtilization(t *testing.T) {
	eng := sim.NewEngine()
	q := ioqueue.New("hdd", ioqueue.WithMaxMergeSectors(0))
	cfg := DefaultHDDConfig()
	cfg.Spindles = 1
	h := NewHDD(cfg, sim.NewRNG(1, "hdd"))
	srv := NewServer(eng, h, q, nil)
	for i := 0; i < 20; i++ {
		q.Push(rd(int64((i*7919)%100000)*1024), 0)
	}
	srv.Kick()
	eng.RunUntilIdle()
	// Saturated single spindle: utilization ≈ 1 over the busy period.
	u := srv.Utilization(eng.Now())
	if u < 0.95 || u > 1.05 {
		t.Errorf("utilization = %.3f, want ≈1 for a saturated run", u)
	}
}

func TestServerCompletionChain(t *testing.T) {
	eng := sim.NewEngine()
	q := ioqueue.New("ssd")
	s := NewSSD(DefaultSSDConfig(), sim.NewRNG(1, "ssd"))
	srv := NewServer(eng, s, q, nil)
	chained := false
	r := rd(0)
	r.OnComplete = block.CompleterFunc(func(req *block.Request) {
		chained = true
		if req.Complete == 0 {
			t.Error("OnComplete ran before completion timestamp")
		}
	})
	q.Push(r, 0)
	srv.Kick()
	eng.RunUntilIdle()
	if !chained {
		t.Fatal("OnComplete never ran")
	}
}
