package device

import (
	"testing"
	"time"

	"lbica/internal/block"
	"lbica/internal/ioqueue"
	"lbica/internal/sim"
)

func distCfg() HDDConfig {
	cfg := DefaultHDDConfig()
	cfg.Spindles = 1
	cfg.DistanceSeek = true
	cfg.StrokeSectors = 1 << 24
	return cfg
}

func TestDistanceSeekScalesWithTravel(t *testing.T) {
	h := NewHDD(distCfg(), sim.NewRNG(1, "h"))
	h.Service(rd(0)) // park the head
	var shortSum time.Duration
	for i := 0; i < 50; i++ {
		h.lastEnd = 0
		shortSum += h.Service(rd(4096)) // ~4k sectors of travel
	}
	h2 := NewHDD(distCfg(), sim.NewRNG(1, "h"))
	h2.Service(rd(0))
	var longSum time.Duration
	for i := 0; i < 50; i++ {
		h2.lastEnd = 0
		longSum += h2.Service(rd(1 << 23)) // half-stroke travel
	}
	if longSum < shortSum*2 {
		t.Errorf("long seeks (%v) not clearly above short seeks (%v)", longSum/50, shortSum/50)
	}
}

// The feature pairing that motivates both options: under the distance-seek
// model, LOOK dispatch must beat FIFO on a random read backlog.
func TestElevatorBeatsFIFOUnderDistanceSeek(t *testing.T) {
	run := func(d ioqueue.Discipline) time.Duration {
		eng := sim.NewEngine()
		q := ioqueue.New("hdd", ioqueue.WithDiscipline(d), ioqueue.WithMaxMergeSectors(0))
		h := NewHDD(distCfg(), sim.NewRNG(2, "h"))
		srv := NewServer(eng, h, q, nil)
		// A scrambled backlog across the stroke.
		for i := 0; i < 200; i++ {
			lba := int64((i*579917)%(1<<21)) * 8
			q.Push(&block.Request{ID: uint64(i), Origin: block.ReadMiss,
				Extent: block.Extent{LBA: lba, Sectors: 8}}, 0)
		}
		srv.Kick()
		eng.RunUntilIdle()
		return eng.Now()
	}
	fifo := run(ioqueue.FIFODispatch)
	look := run(ioqueue.LookDispatch)
	if float64(look) > 0.7*float64(fifo) {
		t.Errorf("LOOK drain %v not clearly faster than FIFO %v", look, fifo)
	}
}

// With the default average-seek model the disciplines must perform about
// the same — confirming the calibrated experiments are insensitive to the
// opt-in features.
func TestDisciplinesEquivalentUnderAverageSeek(t *testing.T) {
	run := func(d ioqueue.Discipline) time.Duration {
		eng := sim.NewEngine()
		q := ioqueue.New("hdd", ioqueue.WithDiscipline(d), ioqueue.WithMaxMergeSectors(0))
		cfg := DefaultHDDConfig()
		cfg.Spindles = 1
		h := NewHDD(cfg, sim.NewRNG(3, "h"))
		srv := NewServer(eng, h, q, nil)
		for i := 0; i < 200; i++ {
			lba := int64((i*579917)%(1<<21)) * 8
			q.Push(&block.Request{ID: uint64(i), Origin: block.ReadMiss,
				Extent: block.Extent{LBA: lba, Sectors: 8}}, 0)
		}
		srv.Kick()
		eng.RunUntilIdle()
		return eng.Now()
	}
	fifo := run(ioqueue.FIFODispatch)
	look := run(ioqueue.LookDispatch)
	ratio := float64(look) / float64(fifo)
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("disciplines diverge under average-seek model: LOOK/FIFO = %.2f", ratio)
	}
}
