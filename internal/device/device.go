// Package device models the two storage tiers of the paper's testbed — a
// Samsung SM863a-class SATA SSD and a Seagate 7.2K-RPM SAS disk subsystem —
// as service-time processes, plus the Server that pulls requests from an
// ioqueue into the simulation.
//
// The models are deliberately first-order: what LBICA consumes is the
// *ratio* of the two tiers' queue times (Eq. 1), which depends on each
// tier's service rate versus the arrival rate, not on FTL- or servo-level
// detail. Each model also publishes its calibrated mean read/write latency,
// the ssdLatency/hddLatency constants of Eq. 1.
package device

import (
	"fmt"
	"time"

	"lbica/internal/block"
	"lbica/internal/sim"
)

// Model converts a request into a service time at the device. Models keep
// internal head/locality state, so one Model instance serves one device.
type Model interface {
	// Service returns the time the device needs to execute r once it is
	// dispatched (queueing excluded).
	Service(r *block.Request) time.Duration
	// AvgLatency returns the calibrated mean service latency for an
	// operation — the per-device constant in Eq. 1.
	AvgLatency(op block.Op) time.Duration
	// Width is the number of requests the device services concurrently
	// (channel/spindle parallelism).
	Width() int
	// Name identifies the device in logs and traces.
	Name() string
}

// SSDConfig parameterizes a flash device. Defaults (DefaultSSDConfig)
// approximate a SATA enterprise SSD of the SM863a class.
type SSDConfig struct {
	Name string
	// ReadBase / WriteBase are mean per-command flash latencies.
	ReadBase  time.Duration
	WriteBase time.Duration
	// Sigma is the lognormal shape of latency jitter.
	Sigma float64
	// PerSector is the bus/NAND transfer time per 512-byte sector.
	PerSector time.Duration
	// Channels is the internal parallelism (concurrent in-flight commands).
	Channels int
	// WriteCliffThreshold, if > 0, is a dirty-page backlog (in requests)
	// beyond which writes slow by WriteCliffFactor — a first-order garbage
	// collection cliff. Zero disables it.
	WriteCliffThreshold int
	WriteCliffFactor    float64
}

// DefaultSSDConfig returns the SM863a-class defaults.
func DefaultSSDConfig() SSDConfig {
	return SSDConfig{
		Name:      "ssd",
		ReadBase:  90 * time.Microsecond,
		WriteBase: 45 * time.Microsecond,
		Sigma:     0.25,
		PerSector: 900 * time.Nanosecond, // ≈ 550 MB/s streaming
		Channels:  2,
	}
}

// SSD is a flash-device model.
type SSD struct {
	cfg   SSDConfig
	g     *sim.RNG
	read  sim.Dist
	write sim.Dist
	// inflightWrites approximates the GC backlog for the write cliff.
	recentWrites int
}

// NewSSD builds an SSD model drawing jitter from the given RNG stream.
func NewSSD(cfg SSDConfig, g *sim.RNG) *SSD {
	if cfg.Channels <= 0 {
		cfg.Channels = 1
	}
	return &SSD{
		cfg:   cfg,
		g:     g,
		read:  sim.LogNormal{M: cfg.ReadBase, Sigma: cfg.Sigma, G: g},
		write: sim.LogNormal{M: cfg.WriteBase, Sigma: cfg.Sigma, G: g},
	}
}

// CloneModel implements CloneableModel: the clone owns an RNG positioned
// at the original's current draw point — both dists share the one cloned
// stream, preserving the read/write draw interleaving.
func (s *SSD) CloneModel() Model {
	g := s.g.Clone()
	return &SSD{
		cfg:          s.cfg,
		g:            g,
		read:         sim.LogNormal{M: s.cfg.ReadBase, Sigma: s.cfg.Sigma, G: g},
		write:        sim.LogNormal{M: s.cfg.WriteBase, Sigma: s.cfg.Sigma, G: g},
		recentWrites: s.recentWrites,
	}
}

// Service implements Model.
func (s *SSD) Service(r *block.Request) time.Duration {
	var base time.Duration
	if r.Op() == block.Read {
		base = s.read.Sample()
	} else {
		base = s.write.Sample()
		s.recentWrites++
		if s.cfg.WriteCliffThreshold > 0 && s.recentWrites > s.cfg.WriteCliffThreshold {
			base = time.Duration(float64(base) * s.cfg.WriteCliffFactor)
		}
	}
	if r.Op() == block.Read {
		s.recentWrites = 0
	}
	return base + time.Duration(r.Extent.Sectors)*s.cfg.PerSector
}

// AvgLatency implements Model.
func (s *SSD) AvgLatency(op block.Op) time.Duration {
	// Calibrated for a typical 4 KiB (8-sector) request.
	xfer := 8 * s.cfg.PerSector
	if op == block.Read {
		return s.cfg.ReadBase + xfer
	}
	return s.cfg.WriteBase + xfer
}

// Width implements Model.
func (s *SSD) Width() int { return s.cfg.Channels }

// Name implements Model.
func (s *SSD) Name() string { return s.cfg.Name }

// HDDConfig parameterizes a rotational disk subsystem. Defaults
// (DefaultHDDConfig) approximate a 7.2K-RPM SAS drive; Spindles > 1 models
// the striped multi-drive "disk subsystem" of an enterprise array.
type HDDConfig struct {
	Name string
	// RPM sets rotational latency (half a revolution on average).
	RPM int
	// SeekAvg is the mean seek; actual seeks draw uniformly in
	// [0.25,1.75]×SeekAvg scaled by how far the head must travel.
	SeekAvg time.Duration
	// PerSector is the media transfer time per 512-byte sector.
	PerSector time.Duration
	// Spindles is the number of drives the subsystem stripes across; it
	// becomes the service width.
	Spindles int
	// SeqThreshold is the max gap (sectors) still treated as sequential —
	// a near hit skips the seek and most of the rotation.
	SeqThreshold int64

	// DistanceSeek, when set, scales seek time with the head travel
	// distance (gap/StrokeSectors of the full stroke) instead of drawing
	// around the average — the model under which elevator scheduling pays
	// off. StrokeSectors defaults to 2^28 (128 GiB span) when zero.
	DistanceSeek  bool
	StrokeSectors int64

	// Controller write-back cache (enterprise arrays ack writes from
	// controller DRAM long before the spindles see them — the reason the
	// paper's disk-subsystem load stays on a µs axis even while absorbing
	// bypassed write bursts). Writes are acked at WriteCacheLatency while
	// the controller's dirty backlog is below WriteCacheDepth; the backlog
	// drains at DrainIOPS (coalesced spindle writes). A zero depth
	// disables the controller cache (bare-drive behavior). The drain model
	// needs a clock: call SetClock, or the cache is treated as disabled.
	WriteCacheLatency time.Duration
	WriteCacheDepth   int
	DrainIOPS         float64
}

// DefaultHDDConfig returns 7.2K SAS defaults with a 4-spindle subsystem.
func DefaultHDDConfig() HDDConfig {
	return HDDConfig{
		Name:         "hdd",
		RPM:          7200,
		SeekAvg:      8500 * time.Microsecond,
		PerSector:    2500 * time.Nanosecond, // ≈ 200 MB/s streaming
		Spindles:     4,
		SeqThreshold: 64,
	}
}

// HDD is a rotational disk-subsystem model with sequential-locality
// detection per spindle (approximated with a single shared head position,
// which is pessimistic for interleaved streams — acceptable at this
// altitude).
type HDD struct {
	cfg     HDDConfig
	g       *sim.RNG
	lastEnd int64
	rotHalf time.Duration

	clock       func() time.Duration
	wcOccupancy float64
	wcLastDrain time.Duration
	wcRejects   uint64
}

// NewHDD builds an HDD model drawing seek/rotation draws from g.
func NewHDD(cfg HDDConfig, g *sim.RNG) *HDD {
	if cfg.Spindles <= 0 {
		cfg.Spindles = 1
	}
	if cfg.RPM <= 0 {
		cfg.RPM = 7200
	}
	rev := time.Duration(60e9 / float64(cfg.RPM))
	return &HDD{cfg: cfg, g: g, lastEnd: -1, rotHalf: rev / 2}
}

// SetClock supplies virtual time, enabling the controller write cache's
// drain model. The engine passes its sim clock.
func (h *HDD) SetClock(fn func() time.Duration) { h.clock = fn }

// CloneModel implements CloneableModel. The clock is a closure over the
// original engine and is NOT carried over — the forked stack must call
// SetClock with its own engine's clock before running.
func (h *HDD) CloneModel() Model {
	h2 := *h
	h2.g = h.g.Clone()
	h2.clock = nil
	return &h2
}

// WriteCacheRejects reports how many writes overflowed the controller
// cache and fell through to spindle latency.
func (h *HDD) WriteCacheRejects() uint64 { return h.wcRejects }

// Service implements Model.
func (h *HDD) Service(r *block.Request) time.Duration {
	if r.Op() == block.Write && h.cfg.WriteCacheDepth > 0 && h.clock != nil {
		now := h.clock()
		if h.cfg.DrainIOPS > 0 {
			drained := float64(now-h.wcLastDrain) / float64(time.Second) * h.cfg.DrainIOPS
			h.wcOccupancy -= drained
			if h.wcOccupancy < 0 {
				h.wcOccupancy = 0
			}
		}
		h.wcLastDrain = now
		if h.wcOccupancy < float64(h.cfg.WriteCacheDepth) {
			h.wcOccupancy++
			return h.cfg.WriteCacheLatency
		}
		h.wcRejects++
		// fall through to spindle latency: the cache is full
	}
	xfer := time.Duration(r.Extent.Sectors) * h.cfg.PerSector
	gap := r.Extent.LBA - h.lastEnd
	if gap < 0 {
		gap = -gap
	}
	sequential := h.lastEnd >= 0 && gap <= h.cfg.SeqThreshold
	h.lastEnd = r.Extent.End()
	if sequential {
		return xfer
	}
	var seek time.Duration
	if h.cfg.DistanceSeek {
		// Seek proportional to head travel: short hops cost a fraction of
		// the average seek, full-stroke moves up to ~2×.
		stroke := h.cfg.StrokeSectors
		if stroke <= 0 {
			stroke = 1 << 28
		}
		frac := float64(gap) / float64(stroke)
		if frac > 1 {
			frac = 1
		}
		seek = time.Duration(float64(h.cfg.SeekAvg) * (0.2 + 1.8*frac))
	} else {
		// Average-seek model: uniform around the configured mean,
		// independent of distance (the calibrated default).
		seek = time.Duration(float64(h.cfg.SeekAvg) * (0.25 + 1.5*h.g.Float64()))
	}
	rot := time.Duration(h.g.Float64() * float64(2*h.rotHalf))
	return seek + rot + xfer
}

// AvgLatency implements Model.
func (h *HDD) AvgLatency(op block.Op) time.Duration {
	// Mean seek + half-revolution + 4 KiB transfer; same for reads and
	// writes at this altitude.
	return h.cfg.SeekAvg + h.rotHalf + 8*h.cfg.PerSector
}

// Width implements Model.
func (h *HDD) Width() int { return h.cfg.Spindles }

// Name implements Model.
func (h *HDD) Name() string { return h.cfg.Name }

// Server couples a Model to an ioqueue-like source and the DES engine: it
// keeps up to Width() requests in flight, sampling a service time for each
// and completing it on the virtual clock.
type Server struct {
	eng      *sim.Engine
	model    Model
	source   Source
	inflight int

	busy       time.Duration // cumulative service time (utilization numerator)
	completed  uint64
	onDone     func(*block.Request)
	onDispatch func(*block.Request)
	onRelease  func(*block.Request)
	freeOps    []*inflightOp
	// live tracks dispatched-but-uncompleted ops and stalls the pending
	// stall slots: the working set a fork must clone and rebind. Each op
	// carries its pending event handle for exactly that purpose.
	live       []*inflightOp
	stalls     []*stallOp
	freeStalls []*stallOp
}

// inflightOp carries one dispatched request to its completion event. Ops
// are pooled (the pool's high-water mark is the device width plus pending
// completions) and their completion callback is bound once at allocation,
// so steady-state dispatch allocates nothing.
type inflightOp struct {
	s   *Server
	r   *block.Request
	idx int       // position in s.live, for swap-remove
	ev  sim.Event // the pending completion event, for fork rebinding
	fn  func()    // bound to complete once, at allocation
}

func (op *inflightOp) complete() {
	s, r := op.s, op.r
	s.dropLive(op)
	op.r = nil
	s.freeOps = append(s.freeOps, op)
	r.Complete = s.eng.Now()
	s.inflight--
	s.completed++
	if r.OnComplete != nil {
		r.OnComplete.Complete(r)
	}
	if s.onDone != nil {
		s.onDone(r)
	}
	if s.onRelease != nil {
		s.onRelease(r)
	}
	s.Kick()
}

// dropLive swap-removes op from the live set. Live order is bookkeeping
// only (each op carries its own event handle), so the swap is invisible
// to simulation behavior.
func (s *Server) dropLive(op *inflightOp) {
	last := len(s.live) - 1
	s.live[op.idx] = s.live[last]
	s.live[op.idx].idx = op.idx
	s.live[last] = nil
	s.live = s.live[:last]
}

// getOp pops a pooled inflight op, allocating on pool miss.
func (s *Server) getOp(r *block.Request) *inflightOp {
	if n := len(s.freeOps); n > 0 {
		op := s.freeOps[n-1]
		s.freeOps = s.freeOps[:n-1]
		op.r = r
		return op
	}
	op := &inflightOp{s: s, r: r}
	op.fn = op.complete
	return op
}

// stallOp is one pending Stall slot occupation, tracked like an inflight
// op so forks can rebind its wakeup event.
type stallOp struct {
	s   *Server
	idx int
	ev  sim.Event
	fn  func()
}

func (op *stallOp) fire() {
	s := op.s
	last := len(s.stalls) - 1
	s.stalls[op.idx] = s.stalls[last]
	s.stalls[op.idx].idx = op.idx
	s.stalls[last] = nil
	s.stalls = s.stalls[:last]
	s.freeStalls = append(s.freeStalls, op)
	s.inflight--
	s.Kick()
}

// getStall pops a pooled stall op, allocating on pool miss.
func (s *Server) getStall() *stallOp {
	if n := len(s.freeStalls); n > 0 {
		op := s.freeStalls[n-1]
		s.freeStalls = s.freeStalls[:n-1]
		return op
	}
	op := &stallOp{s: s}
	op.fn = op.fire
	return op
}

// Source supplies dispatchable requests — satisfied by *ioqueue.Queue.
type Source interface {
	Pop() *block.Request
	Depth() int
}

// NewServer builds a server. onDone (optional) observes every completion
// after timestamps are stamped and the request's own OnComplete has run.
func NewServer(eng *sim.Engine, model Model, source Source, onDone func(*block.Request)) *Server {
	return &Server{eng: eng, model: model, source: source, onDone: onDone}
}

// Kick starts dispatching if capacity is free. Call after pushing to the
// source queue.
func (s *Server) Kick() {
	for s.inflight < s.model.Width() {
		r := s.source.Pop()
		if r == nil {
			return
		}
		s.dispatch(r)
	}
}

// OnDispatch registers a hook observing every dispatch, after the
// timestamp is stamped and before service begins.
func (s *Server) OnDispatch(fn func(*block.Request)) { s.onDispatch = fn }

// OnRelease registers a hook that runs after a completed request's every
// other callback (OnComplete, then the onDone observer) has returned — the
// point at which the request owner may safely recycle it.
func (s *Server) OnRelease(fn func(*block.Request)) { s.onRelease = fn }

// Stall occupies one service slot for d — how the simulation charges a
// balancer's queue-scan overhead (the queue lock is held while in-queue
// requests are being cost-ranked, as the paper criticizes in SIB).
func (s *Server) Stall(d time.Duration) {
	if d <= 0 {
		return
	}
	s.inflight++
	op := s.getStall()
	op.idx = len(s.stalls)
	s.stalls = append(s.stalls, op)
	op.ev = s.eng.After(d, op.fn)
}

func (s *Server) dispatch(r *block.Request) {
	s.inflight++
	r.Dispatch = s.eng.Now()
	if s.onDispatch != nil {
		s.onDispatch(r)
	}
	svc := s.model.Service(r)
	s.busy += svc
	op := s.getOp(r)
	op.idx = len(s.live)
	s.live = append(s.live, op)
	op.ev = s.eng.After(svc, op.fn)
}

// Inflight returns the number of requests currently being serviced.
func (s *Server) Inflight() int { return s.inflight }

// Completed returns the cumulative number of completed requests.
func (s *Server) Completed() uint64 { return s.completed }

// BusyTime returns cumulative device busy time across all slots.
func (s *Server) BusyTime() time.Duration { return s.busy }

// Utilization returns busy time divided by (elapsed × width), in [0,1+].
func (s *Server) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(s.busy) / (float64(elapsed) * float64(s.model.Width()))
}

func (s *Server) String() string {
	return fmt.Sprintf("server(%s inflight=%d done=%d)", s.model.Name(), s.inflight, s.completed)
}

// CloneableModel is a Model that can be deep-copied for a stack fork,
// cloning any internal RNG and locality state.
type CloneableModel interface {
	Model
	CloneModel() Model
}

// Model returns the server's device model (the fork machinery uses it to
// re-attach an HDD clone's clock).
func (s *Server) Model() Model { return s.model }

// Clone deep-copies the server against a forked engine: the model's RNG
// and locality state, every in-flight request (cloned through cl, its
// pending completion event rebound into eng), and every pending stall
// slot. The dispatch/done/release hooks are closures over the original
// stack and are NOT carried over; the caller installs clone-side hooks
// (onDone here, OnDispatch/OnRelease after). It fails if the model is not
// cloneable or any pending event fails to rebind.
func (s *Server) Clone(eng *sim.Engine, source Source, cl block.Cloner, onDone func(*block.Request)) (*Server, error) {
	cm, ok := s.model.(CloneableModel)
	if !ok {
		return nil, fmt.Errorf("device: model %s is not cloneable", s.model.Name())
	}
	s2 := &Server{
		eng:       eng,
		model:     cm.CloneModel(),
		source:    source,
		inflight:  s.inflight,
		busy:      s.busy,
		completed: s.completed,
		onDone:    onDone,
	}
	for _, op := range s.live {
		op2 := &inflightOp{s: s2, r: cl.CloneRequest(op.r), idx: len(s2.live)}
		op2.fn = op2.complete
		ev, ok := eng.Rebind(op.ev, op2.fn)
		if !ok {
			return nil, fmt.Errorf("device: %s: in-flight completion event failed to rebind", s.model.Name())
		}
		op2.ev = ev
		s2.live = append(s2.live, op2)
	}
	for _, op := range s.stalls {
		op2 := &stallOp{s: s2, idx: len(s2.stalls)}
		op2.fn = op2.fire
		ev, ok := eng.Rebind(op.ev, op2.fn)
		if !ok {
			return nil, fmt.Errorf("device: %s: stall event failed to rebind", s.model.Name())
		}
		op2.ev = ev
		s2.stalls = append(s2.stalls, op2)
	}
	return s2, nil
}
