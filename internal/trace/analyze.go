package trace

import (
	"fmt"
	"io"
	"time"

	"lbica/internal/block"
	"lbica/internal/stats"
)

// Window is one aggregation window of a trace analysis: the census of
// requests that entered a device queue during [Start, End).
type Window struct {
	Index  int
	Start  time.Duration
	End    time.Duration
	Census block.Census
}

// WindowCensus streams a binary trace and aggregates queue-insertion
// events (Queued and Merged) on one device into fixed windows — the
// offline equivalent of the monitor's per-interval arrival census, and
// what the physical LBICA prototype computes from blktrace output.
func WindowCensus(r io.Reader, dev Device, win time.Duration) ([]Window, error) {
	if win <= 0 {
		return nil, fmt.Errorf("trace: window must be positive, got %v", win)
	}
	tr := NewReader(r)
	var out []Window
	cur := Window{End: win}
	flush := func() {
		out = append(out, cur)
		cur = Window{Index: cur.Index + 1, Start: cur.End, End: cur.End + win}
	}
	any := false
	for {
		e, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return out, err
		}
		any = true
		for e.At >= cur.End {
			flush()
		}
		if e.Dev != dev {
			continue
		}
		if e.Kind == Queued || e.Kind == Merged {
			cur.Census[e.Origin]++
		}
	}
	if any {
		flush()
	}
	return out, nil
}

// OriginStats aggregates per-origin performance out of a trace: counts,
// queue-time and service-time means, and total sectors moved.
type OriginStats struct {
	Count      uint64
	Merged     uint64
	Bypassed   uint64
	Sectors    int64
	QueueTime  stats.Welford
	ServiceLat stats.Welford
}

// Analysis is a whole-trace summary per device per origin.
type Analysis struct {
	PerOrigin [2][block.NumOrigins]OriginStats // indexed [Device][Origin]
	Events    uint64
	Span      time.Duration
}

// Analyze streams a binary trace and computes per-origin statistics. The
// queue/service decomposition pairs each Dispatched and Completed event
// with its Queued record by (device, id).
func Analyze(r io.Reader) (*Analysis, error) {
	tr := NewReader(r)
	a := &Analysis{}
	type key struct {
		dev Device
		id  uint64
	}
	queuedAt := make(map[key]time.Duration)
	dispatchedAt := make(map[key]time.Duration)
	for {
		e, err := tr.Next()
		if err == io.EOF {
			return a, nil
		}
		if err != nil {
			return a, err
		}
		a.Events++
		if e.At > a.Span {
			a.Span = e.At
		}
		if e.Kind == PolicySet {
			continue
		}
		os := &a.PerOrigin[e.Dev][e.Origin]
		k := key{e.Dev, e.ID}
		switch e.Kind {
		case Queued:
			os.Count++
			os.Sectors += e.Sector
			queuedAt[k] = e.At
		case Merged:
			os.Merged++
			os.Sectors += e.Sector
		case Bypassed:
			os.Bypassed++
			delete(queuedAt, k)
		case Dispatched:
			if q, ok := queuedAt[k]; ok {
				os.QueueTime.AddDuration(e.At - q)
				dispatchedAt[k] = e.At
				delete(queuedAt, k)
			}
		case Completed:
			if d, ok := dispatchedAt[k]; ok {
				os.ServiceLat.AddDuration(e.At - d)
				delete(dispatchedAt, k)
			}
		}
	}
}

// WriteAnalysis renders an Analysis as an aligned table.
func WriteAnalysis(w io.Writer, a *Analysis) error {
	if _, err := fmt.Fprintf(w, "trace: %d events over %v\n\n", a.Events, a.Span.Round(time.Millisecond)); err != nil {
		return err
	}
	const row = "%4s %6s %10d %8d %8d %12.0f %14v %14v\n"
	if _, err := fmt.Fprintf(w, "%4s %6s %10s %8s %8s %12s %14s %14s\n",
		"dev", "origin", "count", "merged", "bypassed", "MiB", "avg queue", "avg service"); err != nil {
		return err
	}
	for dev := Device(0); dev < 2; dev++ {
		for o := 0; o < block.NumOrigins; o++ {
			os := &a.PerOrigin[dev][o]
			if os.Count == 0 && os.Merged == 0 && os.Bypassed == 0 {
				continue
			}
			_, err := fmt.Fprintf(w, row, dev, block.Origin(o), os.Count, os.Merged, os.Bypassed,
				float64(os.Sectors)*block.SectorSize/(1<<20),
				os.QueueTime.MeanDuration().Round(time.Microsecond),
				os.ServiceLat.MeanDuration().Round(time.Microsecond))
			if err != nil {
				return err
			}
		}
	}
	return nil
}
