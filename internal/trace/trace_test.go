package trace

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"lbica/internal/block"
)

func TestBinaryRoundTrip(t *testing.T) {
	events := []Event{
		{At: 0, Kind: Queued, Dev: SSD, ID: 1, Origin: block.AppRead, LBA: 100, Sector: 8},
		{At: time.Millisecond, Kind: Dispatched, Dev: SSD, ID: 1, Origin: block.AppRead, LBA: 100, Sector: 8},
		{At: 2 * time.Millisecond, Kind: Completed, Dev: SSD, ID: 1, Origin: block.AppRead, LBA: 100, Sector: 8},
		{At: 3 * time.Millisecond, Kind: PolicySet, Aux: 3},
		{At: 4 * time.Millisecond, Kind: Bypassed, Dev: HDD, ID: 2, Origin: block.BypassWrite, LBA: -512, Sector: 16},
	}
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, e := range events {
		w.Record(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, events)
	}
}

func TestBadMagic(t *testing.T) {
	_, err := ReadAll(strings.NewReader("NOTATRACE_______"))
	if err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestEmptyStream(t *testing.T) {
	got, err := ReadAll(bytes.NewReader(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: %v %v", got, err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	w.Record(Event{Kind: Queued, ID: 1})
	w.Close()
	full := buf.Bytes()
	_, err := ReadAll(bytes.NewReader(full[:len(full)-3]))
	if err == nil || err == io.EOF {
		t.Fatalf("truncated stream must error, got %v", err)
	}
}

// Property: any event round-trips through the binary codec bit-for-bit.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(at int64, kind, dev, origin uint8, id uint64, lba, sector, aux int64) bool {
		e := Event{
			At:     time.Duration(at),
			Kind:   Kind(kind % uint8(numKinds)),
			Dev:    Device(dev % 2),
			ID:     id,
			Origin: block.Origin(origin % uint8(block.NumOrigins)),
			LBA:    lba,
			Sector: sector,
			Aux:    aux,
		}
		var buf bytes.Buffer
		w := NewBinaryWriter(&buf)
		w.Record(e)
		if w.Close() != nil {
			return false
		}
		got, err := ReadAll(&buf)
		return err == nil && len(got) == 1 && got[0] == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBufferFilter(t *testing.T) {
	var b Buffer
	b.Record(Event{Kind: Queued, Dev: SSD, ID: 1})
	b.Record(Event{Kind: Queued, Dev: HDD, ID: 2})
	b.Record(Event{Kind: Completed, Dev: SSD, ID: 1})
	ssd := b.Filter(func(e Event) bool { return e.Dev == SSD })
	if len(ssd) != 2 {
		t.Fatalf("filtered %d, want 2", len(ssd))
	}
}

func TestCensusAtReconstruction(t *testing.T) {
	var b Buffer
	// Two requests queued on SSD; one dispatched before the probe time.
	b.Record(Event{At: 10, Kind: Queued, Dev: SSD, ID: 1, Origin: block.AppRead})
	b.Record(Event{At: 20, Kind: Queued, Dev: SSD, ID: 2, Origin: block.Promote})
	b.Record(Event{At: 30, Kind: Queued, Dev: HDD, ID: 3, Origin: block.ReadMiss})
	b.Record(Event{At: 40, Kind: Dispatched, Dev: SSD, ID: 1, Origin: block.AppRead})
	c := b.CensusAt(SSD, 35)
	if c[block.AppRead] != 1 || c[block.Promote] != 1 {
		t.Fatalf("census at 35 = %v", c)
	}
	c = b.CensusAt(SSD, 45)
	if c[block.AppRead] != 0 || c[block.Promote] != 1 {
		t.Fatalf("census at 45 = %v", c)
	}
	if got := b.CensusAt(HDD, 45); got[block.ReadMiss] != 1 {
		t.Fatalf("hdd census = %v", got)
	}
}

func TestMultiRecorder(t *testing.T) {
	var a, b Buffer
	m := MultiRecorder(&a, &b)
	m.Record(Event{ID: 7})
	if len(a.Events) != 1 || len(b.Events) != 1 {
		t.Fatal("fan-out failed")
	}
}

func TestDiscard(t *testing.T) {
	Discard.Record(Event{ID: 1}) // must not panic
}

func TestWriteText(t *testing.T) {
	var sb strings.Builder
	err := WriteText(&sb, []Event{
		{At: time.Millisecond, Kind: Queued, Dev: SSD, ID: 1, Origin: block.AppRead, LBA: 100, Sector: 8},
		{At: 2 * time.Millisecond, Kind: PolicySet, Aux: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Q ssd #1 R") {
		t.Errorf("text output missing queue line: %q", out)
	}
	if !strings.Contains(out, "policy=2") {
		t.Errorf("text output missing policy line: %q", out)
	}
}

func TestRecordAfterCloseIgnored(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	w.Record(Event{ID: 1})
	w.Close()
	n := buf.Len()
	w.Record(Event{ID: 2})
	if buf.Len() != n {
		t.Error("record after close wrote bytes")
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	w := NewBinaryWriter(io.Discard)
	e := Event{At: 123456, Kind: Queued, Dev: SSD, ID: 42, Origin: block.AppWrite, LBA: 4096, Sector: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Record(e)
	}
	w.Close()
}
