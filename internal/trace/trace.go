// Package trace is the simulation's blktrace: a typed, per-request event
// log with binary and text codecs.
//
// The physical LBICA prototype shells out to blktrace to learn what kinds
// of requests are sitting in the SSD queue; here the same information flows
// through an in-process event stream. The package also supports writing a
// captured trace to disk and replaying it later (cmd/traceinspect,
// examples/tracereplay).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"lbica/internal/block"
)

// Kind is the lifecycle stage an event records, mirroring blktrace's
// Q/D/C actions plus the balancer-specific ones.
type Kind uint8

// Event kinds.
const (
	// Queued: the request entered a device queue.
	Queued Kind = iota
	// Merged: the request was absorbed into an already-queued request.
	Merged
	// Dispatched: the device began servicing the request.
	Dispatched
	// Completed: the device finished the request.
	Completed
	// Bypassed: a load balancer re-routed the request to the disk tier.
	Bypassed
	// PolicySet: the balancer changed the cache write policy. Device is
	// the new policy's numeric value; the request fields are zero.
	PolicySet
	numKinds
)

var kindNames = [...]string{"Q", "M", "D", "C", "B", "P"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Device identifies which tier an event happened on.
type Device uint8

// Devices.
const (
	SSD Device = iota
	HDD
)

func (d Device) String() string {
	if d == SSD {
		return "ssd"
	}
	return "hdd"
}

// Event is one trace record.
type Event struct {
	At     time.Duration
	Kind   Kind
	Dev    Device
	ID     uint64
	Origin block.Origin
	LBA    int64
	Sector int64 // length in sectors
	Aux    int64 // kind-specific: PolicySet → policy value
}

func (e Event) String() string {
	if e.Kind == PolicySet {
		return fmt.Sprintf("%12v %s policy=%d", e.At, e.Kind, e.Aux)
	}
	return fmt.Sprintf("%12v %s %s #%d %s [%d,+%d)", e.At, e.Kind, e.Dev, e.ID, e.Origin, e.LBA, e.Sector)
}

// Recorder receives events. Implementations: *Buffer, *BinaryWriter,
// MultiRecorder, and the engine's census maintenance.
type Recorder interface {
	Record(Event)
}

// RecorderFunc adapts a function to the Recorder interface.
type RecorderFunc func(Event)

// Record implements Recorder.
func (f RecorderFunc) Record(e Event) { f(e) }

// discard is Discard's comparable concrete type: the engine's fork path
// tests rec == Discard to refuse forking a traced stack, which panics on
// interfaces holding func values.
type discard struct{}

// Record implements Recorder by dropping the event.
func (discard) Record(Event) {}

// Discard drops every event.
var Discard Recorder = discard{}

// MultiRecorder fans events out to several recorders.
func MultiRecorder(rs ...Recorder) Recorder {
	return RecorderFunc(func(e Event) {
		for _, r := range rs {
			r.Record(e)
		}
	})
}

// Buffer is an in-memory event sink.
type Buffer struct {
	Events []Event
}

// Record implements Recorder.
func (b *Buffer) Record(e Event) { b.Events = append(b.Events, e) }

// Filter returns the events matching pred, in order.
func (b *Buffer) Filter(pred func(Event) bool) []Event {
	var out []Event
	for _, e := range b.Events {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// CensusAt reconstructs the in-queue census of a device at time t by
// replaying queued/merged/dispatched events — what blktrace post-processing
// does offline.
func (b *Buffer) CensusAt(dev Device, t time.Duration) block.Census {
	var c block.Census
	inQueue := make(map[uint64]block.Origin)
	for _, e := range b.Events {
		if e.At > t {
			break
		}
		if e.Dev != dev {
			continue
		}
		switch e.Kind {
		case Queued:
			inQueue[e.ID] = e.Origin
		case Merged, Dispatched, Bypassed:
			delete(inQueue, e.ID)
		}
	}
	for _, o := range inQueue {
		c[o]++
	}
	return c
}

// Binary codec.
//
// Each record is a fixed 42-byte little-endian frame:
//
//	offset size field
//	0      8    At (ns)
//	8      1    Kind
//	9      1    Dev
//	10     8    ID
//	18     1    Origin
//	19     8    LBA
//	27     8    Sectors
//	35     8    Aux (unused except PolicySet; marshalled for fixed size)
//
// preceded once by a 8-byte magic header.
const (
	magic      = "LBICATR1"
	recordSize = 8 + 1 + 1 + 8 + 1 + 8 + 8 + 8
)

// BinaryWriter streams events to w in the binary format.
type BinaryWriter struct {
	w      *bufio.Writer
	wrote  bool
	closed bool
}

// NewBinaryWriter wraps w.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriter(w)}
}

// Record implements Recorder. Encoding errors surface at Close (events are
// fire-and-forget on the hot path, matching blktrace's relayfs behavior).
func (bw *BinaryWriter) Record(e Event) {
	if bw.closed {
		return
	}
	if !bw.wrote {
		bw.w.WriteString(magic)
		bw.wrote = true
	}
	var buf [recordSize]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(e.At))
	buf[8] = byte(e.Kind)
	buf[9] = byte(e.Dev)
	binary.LittleEndian.PutUint64(buf[10:], e.ID)
	buf[18] = byte(e.Origin)
	binary.LittleEndian.PutUint64(buf[19:], uint64(e.LBA))
	binary.LittleEndian.PutUint64(buf[27:], uint64(e.Sector))
	binary.LittleEndian.PutUint64(buf[35:], uint64(e.Aux))
	bw.w.Write(buf[:])
}

// Close flushes buffered records and reports any deferred write error.
func (bw *BinaryWriter) Close() error {
	bw.closed = true
	return bw.w.Flush()
}

// ErrBadMagic marks a stream that is not an LBICA trace.
var ErrBadMagic = errors.New("trace: bad magic (not an LBICA binary trace)")

// Reader decodes a binary trace stream.
type Reader struct {
	r       *bufio.Reader
	started bool
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Next returns the next event, or io.EOF at end of stream.
func (tr *Reader) Next() (Event, error) {
	if !tr.started {
		var m [len(magic)]byte
		if _, err := io.ReadFull(tr.r, m[:]); err != nil {
			if err == io.EOF {
				return Event{}, io.EOF
			}
			return Event{}, fmt.Errorf("trace: reading magic: %w", err)
		}
		if string(m[:]) != magic {
			return Event{}, ErrBadMagic
		}
		tr.started = true
	}
	var buf [recordSize]byte
	if _, err := io.ReadFull(tr.r, buf[:]); err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, fmt.Errorf("trace: reading record: %w", err)
	}
	return Event{
		At:     time.Duration(binary.LittleEndian.Uint64(buf[0:])),
		Kind:   Kind(buf[8]),
		Dev:    Device(buf[9]),
		ID:     binary.LittleEndian.Uint64(buf[10:]),
		Origin: block.Origin(buf[18]),
		LBA:    int64(binary.LittleEndian.Uint64(buf[19:])),
		Sector: int64(binary.LittleEndian.Uint64(buf[27:])),
		Aux:    int64(binary.LittleEndian.Uint64(buf[35:])),
	}, nil
}

// ReadAll decodes the whole stream.
func ReadAll(r io.Reader) ([]Event, error) {
	tr := NewReader(r)
	var out []Event
	for {
		e, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// WriteText renders events in the human-readable one-per-line format.
func WriteText(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if _, err := fmt.Fprintln(bw, e.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}
