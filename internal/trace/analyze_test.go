package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"lbica/internal/block"
)

// record builds a binary trace from events.
func record(t *testing.T, events []Event) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, e := range events {
		w.Record(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestWindowCensus(t *testing.T) {
	buf := record(t, []Event{
		{At: 10 * time.Millisecond, Kind: Queued, Dev: SSD, ID: 1, Origin: block.AppRead},
		{At: 20 * time.Millisecond, Kind: Queued, Dev: SSD, ID: 2, Origin: block.Promote},
		{At: 30 * time.Millisecond, Kind: Queued, Dev: HDD, ID: 3, Origin: block.ReadMiss},
		{At: 120 * time.Millisecond, Kind: Merged, Dev: SSD, ID: 4, Origin: block.AppWrite},
		{At: 130 * time.Millisecond, Kind: Dispatched, Dev: SSD, ID: 1, Origin: block.AppRead},
	})
	wins, err := WindowCensus(buf, SSD, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 2 {
		t.Fatalf("windows = %d, want 2", len(wins))
	}
	if wins[0].Census[block.AppRead] != 1 || wins[0].Census[block.Promote] != 1 {
		t.Errorf("window 0 census = %v", wins[0].Census)
	}
	if wins[0].Census[block.ReadMiss] != 0 {
		t.Error("HDD event leaked into SSD census")
	}
	// Merged arrivals count; Dispatched does not.
	if wins[1].Census[block.AppWrite] != 1 || wins[1].Census.Total() != 1 {
		t.Errorf("window 1 census = %v", wins[1].Census)
	}
	if wins[1].Start != 100*time.Millisecond {
		t.Errorf("window 1 start = %v", wins[1].Start)
	}
}

func TestWindowCensusValidation(t *testing.T) {
	if _, err := WindowCensus(bytes.NewReader(nil), SSD, 0); err == nil {
		t.Error("zero window must error")
	}
	wins, err := WindowCensus(bytes.NewReader(nil), SSD, time.Second)
	if err != nil || len(wins) != 0 {
		t.Errorf("empty trace: %v %v", wins, err)
	}
}

func TestAnalyzeQueueAndServiceDecomposition(t *testing.T) {
	buf := record(t, []Event{
		{At: 0, Kind: Queued, Dev: SSD, ID: 1, Origin: block.AppRead, Sector: 8},
		{At: 100 * time.Microsecond, Kind: Dispatched, Dev: SSD, ID: 1, Origin: block.AppRead},
		{At: 250 * time.Microsecond, Kind: Completed, Dev: SSD, ID: 1, Origin: block.AppRead},
		{At: 0, Kind: Queued, Dev: HDD, ID: 2, Origin: block.Writeback, Sector: 16},
		{At: time.Millisecond, Kind: Dispatched, Dev: HDD, ID: 2, Origin: block.Writeback},
		{At: 5 * time.Millisecond, Kind: Completed, Dev: HDD, ID: 2, Origin: block.Writeback},
	})
	a, err := Analyze(buf)
	if err != nil {
		t.Fatal(err)
	}
	r := a.PerOrigin[SSD][block.AppRead]
	if r.Count != 1 {
		t.Fatalf("count = %d", r.Count)
	}
	if got := r.QueueTime.MeanDuration(); got != 100*time.Microsecond {
		t.Errorf("queue time = %v", got)
	}
	if got := r.ServiceLat.MeanDuration(); got != 150*time.Microsecond {
		t.Errorf("service = %v", got)
	}
	wb := a.PerOrigin[HDD][block.Writeback]
	if wb.Sectors != 16 {
		t.Errorf("sectors = %d", wb.Sectors)
	}
	if a.Events != 6 {
		t.Errorf("events = %d", a.Events)
	}
	if a.Span != 5*time.Millisecond {
		t.Errorf("span = %v", a.Span)
	}
}

func TestAnalyzeBypassedAndMerged(t *testing.T) {
	buf := record(t, []Event{
		{At: 0, Kind: Queued, Dev: SSD, ID: 1, Origin: block.AppWrite, Sector: 8},
		{At: 1000, Kind: Merged, Dev: SSD, ID: 2, Origin: block.AppWrite, Sector: 8},
		{At: 2000, Kind: Bypassed, Dev: SSD, ID: 1, Origin: block.AppWrite},
		{At: 3000, Kind: PolicySet, Aux: 2},
	})
	a, err := Analyze(buf)
	if err != nil {
		t.Fatal(err)
	}
	w := a.PerOrigin[SSD][block.AppWrite]
	if w.Count != 1 || w.Merged != 1 || w.Bypassed != 1 {
		t.Errorf("stats = %+v", w)
	}
	// A bypassed request has no dispatch pair; queue-time stats are empty.
	if w.QueueTime.Count() != 0 {
		t.Error("bypassed request contributed a queue time")
	}
}

func TestWriteAnalysis(t *testing.T) {
	buf := record(t, []Event{
		{At: 0, Kind: Queued, Dev: SSD, ID: 1, Origin: block.AppRead, Sector: 2048},
		{At: 100 * time.Microsecond, Kind: Dispatched, Dev: SSD, ID: 1, Origin: block.AppRead},
		{At: 300 * time.Microsecond, Kind: Completed, Dev: SSD, ID: 1, Origin: block.AppRead},
	})
	a, err := Analyze(buf)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteAnalysis(&sb, a); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "ssd") || !strings.Contains(out, "R") {
		t.Errorf("analysis table missing rows:\n%s", out)
	}
	if !strings.Contains(out, "100µs") || !strings.Contains(out, "200µs") {
		t.Errorf("queue/service decomposition missing:\n%s", out)
	}
}

// End-to-end: WindowCensus of a real engine trace should mirror the
// monitor's arrival census (same definition, offline vs online).
func TestWindowCensusMatchesClassifierInput(t *testing.T) {
	// Covered end-to-end in the engine package; here just ensure windows
	// over a synthetic interleaving stay aligned with window boundaries.
	var events []Event
	for i := 0; i < 10; i++ {
		events = append(events, Event{
			At:   time.Duration(i) * 30 * time.Millisecond,
			Kind: Queued, Dev: SSD, ID: uint64(i), Origin: block.AppRead,
		})
	}
	buf := record(t, events)
	wins, err := WindowCensus(buf, SSD, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, w := range wins {
		total += w.Census.Total()
	}
	if total != 10 {
		t.Fatalf("windows lost events: %d of 10", total)
	}
}
