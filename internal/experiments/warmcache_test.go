package experiments

import (
	"context"
	"os"
	"testing"

	"lbica/internal/checkpoint"
)

func openStore(t *testing.T) *checkpoint.Store {
	t.Helper()
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func leaderOf(t *testing.T, specs []Spec, warmup int) int {
	t.Helper()
	idx := warmLeaderIndex(specs, warmup)
	if idx < 0 {
		t.Fatal("group unexpectedly unshareable")
	}
	return idx
}

// TestRunWarmSharedCachedRoundTrip is the tentpole's persistence
// contract: the first invocation over an empty store simulates each
// warmup prefix and publishes it (Cache annotation cache-store), the
// second restores it (cache-hit), and both invocations — single-volume
// and multi-volume — return results byte-identical to the uncached
// planner, which is itself pinned byte-identical to scratch runs. At one
// volume the scratch members (here SIB, whose prefix can never fork from
// the leader's) go through the store with their own private prefixes; at
// more than one the scratch members are multi-volume runs the cache does
// not cover, so their annotation stays empty.
func TestRunWarmSharedCachedRoundTrip(t *testing.T) {
	ctx := context.Background()
	const warmup, intervals = 10, 40
	for _, volumes := range []int{1, 2} {
		skew := 0.0
		if volumes > 1 {
			skew = 1.2
		}
		specs := warmGroup("tpcc", volumes, skew, intervals)
		leaderIdx := leaderOf(t, specs, warmup)
		want, _ := RunWarmShared(ctx, specs, warmup)
		store := openStore(t)

		first, plan1 := RunWarmSharedCached(ctx, specs, warmup, store)
		if got := plan1[leaderIdx]; got != (WarmOutcome{Kind: WarmLeader, Cache: WarmCacheStore}) {
			t.Errorf("%d volumes, first run leader outcome %+v, want leader/cache-store", volumes, got)
		}
		second, plan2 := RunWarmSharedCached(ctx, specs, warmup, store)
		if got := plan2[leaderIdx]; got != (WarmOutcome{Kind: WarmLeader, Cache: WarmCacheHit}) {
			t.Errorf("%d volumes, second run leader outcome %+v, want leader/cache-hit", volumes, got)
		}
		for i, s := range specs {
			mustEqual(t, first[i], want[i], s.Scheme+" (store pass)")
			mustEqual(t, second[i], want[i], s.Scheme+" (hit pass)")
			if s.Scheme != SchemeSIB {
				continue
			}
			wantCache := ""
			if volumes == 1 {
				wantCache = WarmCacheStore
			}
			if got := plan1[i]; got != (WarmOutcome{Kind: WarmScratch, Reason: WarmReasonSIB, Cache: wantCache}) {
				t.Errorf("%d volumes, first run SIB outcome %+v", volumes, got)
			}
			if volumes == 1 {
				wantCache = WarmCacheHit
			}
			if got := plan2[i]; got != (WarmOutcome{Kind: WarmScratch, Reason: WarmReasonSIB, Cache: wantCache}) {
				t.Errorf("%d volumes, second run SIB outcome %+v", volumes, got)
			}
		}
	}
}

// A corrupt store entry must degrade to simulation — Cache annotation
// cache-corrupt, results untouched — and the rewritten entry must serve
// the next invocation as a clean hit.
func TestRunWarmSharedCachedCorruptFallback(t *testing.T) {
	ctx := context.Background()
	const warmup, intervals = 10, 40
	specs := warmGroup("tpcc", 1, 0, intervals)
	leaderIdx := leaderOf(t, specs, warmup)
	want, _ := RunWarmShared(ctx, specs, warmup)
	store := openStore(t)

	if _, plan := RunWarmSharedCached(ctx, specs, warmup, store); plan[leaderIdx].Cache != WarmCacheStore {
		t.Fatalf("seed run leader outcome %+v", plan[leaderIdx])
	}
	key := warmCacheKey(specs[leaderIdx].Normalize(), SchemeLBICA, warmup)
	path := store.Path(key)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	got, plan := RunWarmSharedCached(ctx, specs, warmup, store)
	if wantOut := (WarmOutcome{Kind: WarmLeader, Cache: WarmCacheCorrupt}); plan[leaderIdx] != wantOut {
		t.Errorf("corrupt-entry leader outcome %+v, want %+v", plan[leaderIdx], wantOut)
	}
	for i, s := range specs {
		mustEqual(t, got[i], want[i], s.Scheme+" (corrupt fallback)")
	}

	// The fallback overwrote the bad entry: next invocation hits clean.
	if _, plan := RunWarmSharedCached(ctx, specs, warmup, store); plan[leaderIdx] != (WarmOutcome{Kind: WarmLeader, Cache: WarmCacheHit}) {
		t.Errorf("post-overwrite leader outcome %+v, want leader/cache-hit", plan[leaderIdx])
	}
}

// A truncated payload inside a structurally valid container (checksum
// recomputed) must be rejected by the stack decoder and degrade the same
// way.
func TestRunWarmSharedCachedDecodeFailureFallback(t *testing.T) {
	ctx := context.Background()
	const warmup, intervals = 10, 40
	specs := warmGroup("tpcc", 1, 0, intervals)
	leaderIdx := leaderOf(t, specs, warmup)
	store := openStore(t)

	if _, plan := RunWarmSharedCached(ctx, specs, warmup, store); plan[leaderIdx].Cache != WarmCacheStore {
		t.Fatalf("seed run leader outcome %+v", plan[leaderIdx])
	}
	key := warmCacheKey(specs[leaderIdx].Normalize(), SchemeLBICA, warmup)
	_, payloads, err := checkpoint.ReadFile(store.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the entry with the payload cut in half: the container is
	// self-consistent, so only DecodeStack can notice.
	short := payloads[0][:len(payloads[0])/2]
	if err := checkpoint.WriteFile(store.Path(key), key, [][]byte{short}); err != nil {
		t.Fatal(err)
	}

	want, _ := RunWarmShared(ctx, specs, warmup)
	got, plan := RunWarmSharedCached(ctx, specs, warmup, store)
	if wantOut := (WarmOutcome{Kind: WarmLeader, Cache: WarmCacheCorrupt}); plan[leaderIdx] != wantOut {
		t.Errorf("short-payload leader outcome %+v, want %+v", plan[leaderIdx], wantOut)
	}
	for i, s := range specs {
		mustEqual(t, got[i], want[i], s.Scheme+" (decode fallback)")
	}
}

// The cache key must separate every spec axis that shapes the prefix: a
// store seeded for one spec must miss for a neighbouring one.
func TestWarmCacheKeySeparatesSpecs(t *testing.T) {
	base := Spec{Workload: "tpcc", Scheme: SchemeLBICA, Seed: 11, Intervals: 40}.Normalize()
	vary := []Spec{
		{Workload: "mail", Scheme: SchemeLBICA, Seed: 11, Intervals: 40},
		{Workload: "tpcc", Scheme: SchemeLBICA, Seed: 12, Intervals: 40},
		{Workload: "tpcc", Scheme: SchemeLBICA, Seed: 11, Intervals: 41},
		{Workload: "tpcc", Scheme: SchemeLBICA, Seed: 11, Intervals: 40, RateFactor: 1.5},
		{Workload: "tpcc", Scheme: SchemeLBICA, Seed: 11, Intervals: 40, Volumes: 2},
	}
	baseKey := warmCacheKey(base, SchemeLBICA, 10)
	if k2 := warmCacheKey(base, SchemeLBICA, 11); k2 == baseKey {
		t.Error("warmup length not part of the cache key")
	}
	for _, s := range vary {
		if k := warmCacheKey(s.Normalize(), SchemeLBICA, 10); k == baseKey {
			t.Errorf("spec %+v shares cache key with base", s)
		}
	}
	// The driving scheme keys the prefix: a scratch member's private
	// prefix (its own balancer) must never collide with the shared
	// leader prefix (always the LBICA balancer) for the same spec.
	if k := warmCacheKey(base, SchemeSIB, 10); k == baseKey {
		t.Error("driving scheme not part of the cache key")
	}
	// The nominal member scheme is NOT the discriminator — a one-volume
	// ARRAY-LB leader runs the same LBICA balancer and shares the entry.
	arr := base
	arr.Scheme = SchemeArrayLB
	if k := warmCacheKey(arr, SchemeLBICA, 10); k != baseKey {
		t.Error("spec scheme leaked into the cache key")
	}
}
