package experiments

import (
	"testing"

	"lbica/internal/cache"
)

// The paper-shape conclusions must not be an artifact of the default seed:
// a different seed changes every arrival time and device-latency draw, and
// the orderings still have to hold.
func TestShapeHoldsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	for _, seed := range []int64{7, 1234} {
		m := RunMatrix(seed, 1)
		for _, wl := range Workloads {
			wb := m[wl][SchemeWB]
			lb := m[wl][SchemeLBICA]
			if lb.CacheLoadMean() >= wb.CacheLoadMean() {
				t.Errorf("seed %d, %s: LBICA cache load %.0f ≥ WB %.0f",
					seed, wl, lb.CacheLoadMean(), wb.CacheLoadMean())
			}
			if lb.AppLatency.Mean() >= wb.AppLatency.Mean() {
				t.Errorf("seed %d, %s: LBICA latency %v ≥ WB %v",
					seed, wl, lb.AppLatency.Mean(), wb.AppLatency.Mean())
			}
		}
		// The mail decision sequence (RO → WO → WB) survives reseeding.
		tl := m[WorkloadMail][SchemeLBICA].Timeline
		var seq []cache.Policy
		for _, pc := range tl {
			if pc.Group != "revert" {
				seq = append(seq, pc.Policy)
			}
		}
		if len(seq) < 3 {
			t.Fatalf("seed %d: mail timeline too short: %+v", seed, tl)
		}
		wantOrder := []cache.Policy{cache.RO, cache.WO, cache.WB}
		wi := 0
		for _, p := range seq {
			if wi < len(wantOrder) && p == wantOrder[wi] {
				wi++
			}
		}
		if wi != len(wantOrder) {
			t.Errorf("seed %d: mail sequence %v missing RO→WO→WB", seed, seq)
		}
	}
}

// The endurance side effect (fewer SSD writes under LBICA) must hold for
// the write-heavy workloads.
func TestEnduranceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	m := sharedMatrix(t)
	for _, wl := range []string{WorkloadMail, WorkloadWeb} {
		wb := m[wl][SchemeWB].SSDWrittenSectors
		lb := m[wl][SchemeLBICA].SSDWrittenSectors
		if lb >= wb {
			t.Errorf("%s: LBICA SSD writes %d ≥ WB %d", wl, lb, wb)
		}
	}
}
