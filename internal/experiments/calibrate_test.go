package experiments

import (
	"fmt"
	"os"
	"testing"
)

// TestCalibrationReport is a diagnostic, enabled with LBICA_CALIBRATE=1:
// it prints per-interval detail for each workload under each scheme so the
// workload parameters can be tuned against the paper's expected decision
// timeline. It never fails.
func TestCalibrationReport(t *testing.T) {
	if os.Getenv("LBICA_CALIBRATE") == "" {
		t.Skip("set LBICA_CALIBRATE=1 for the calibration dump")
	}
	for _, wl := range Workloads {
		for _, sc := range Schemes {
			res := Run(Spec{Workload: wl, Scheme: sc, Seed: 1})
			fmt.Printf("\n===== %s / %s =====\n", wl, sc)
			fmt.Printf("requests=%d hit=%.3f cacheLoadMean=%.0fus diskLoadMean=%.0fus avgLat=%v bypassed=%d\n",
				res.AppCompleted, res.CacheStats.HitRatio(),
				res.CacheLoadMean()/1000, res.DiskLoadMean()/1000,
				res.AppLatency.Mean(), res.BypassedToDisk)
			if sc == SchemeLBICA {
				for _, pc := range res.Timeline {
					fmt.Printf("  policy @ interval %3d: %-4s (%s)\n", pc.Interval, pc.Policy, pc.Group)
				}
				rows := Fig6(res)
				step := len(rows) / 40
				if step == 0 {
					step = 1
				}
				for i := 0; i < len(rows); i += step {
					r := rows[i]
					fmt.Printf("  iv %3d cache=%8.0fus disk=%8.0fus burst=%-5v R=%4.1f W=%4.1f P=%4.1f E=%4.1f %s\n",
						r.Interval, r.CacheLoad, r.DiskLoad, r.Burst, r.R, r.W, r.P, r.E, r.Policy)
				}
			}
		}
	}
}
