package experiments

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"lbica/internal/runner"
)

// quickSpecs is the evaluation matrix at reduced scale: same 9 cells,
// fewer intervals, so the determinism golden test (and the -short quick
// path) stays under a second per sweep.
func quickSpecs(seed int64) []Spec {
	specs := MatrixSpecs(seed, 1)
	for i := range specs {
		specs[i].Intervals = 20
	}
	return specs
}

// TestMatrixParallelMatchesSerial is the determinism golden test: the
// matrix executed across the full worker pool must be byte-identical,
// cell by cell, to the workers == 1 serial baseline — latency histograms,
// per-interval samples, policy timelines, endurance counters, everything.
// It runs in -short mode too (it is the quick-path matrix check) and is
// meaningful under -race: the parallel sweep aggregates into shared
// slices through the runner.
func TestMatrixParallelMatchesSerial(t *testing.T) {
	specs := quickSpecs(7)
	serial, err := runSpecs(t.Context(), specs, runner.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runSpecs(t.Context(), specs, runner.Options{Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range Workloads {
		for _, sc := range Schemes {
			s, p := serial[wl][sc], parallel[wl][sc]
			if s.AppCompleted == 0 {
				t.Fatalf("%s/%s: serial run completed nothing", wl, sc)
			}
			if !reflect.DeepEqual(s, p) {
				t.Errorf("%s/%s: parallel results diverge from serial baseline "+
					"(completed %d vs %d, cache load %.1f vs %.1f, %d vs %d policy decisions)",
					wl, sc, s.AppCompleted, p.AppCompleted,
					s.CacheLoadMean(), p.CacheLoadMean(), len(s.Timeline), len(p.Timeline))
			}
		}
	}

	// The rendered figures must match byte for byte, not just value for
	// value.
	for _, render := range []struct {
		name string
		fn   func(Matrix) []byte
	}{
		{"fig6", func(m Matrix) []byte {
			var b bytes.Buffer
			for _, wl := range Workloads {
				WriteFig6CSV(&b, Fig6(m[wl][SchemeLBICA]))
			}
			return b.Bytes()
		}},
		{"fig7", func(m Matrix) []byte {
			var b bytes.Buffer
			WriteFig7CSV(&b, Fig7(m))
			return b.Bytes()
		}},
		{"headlines", func(m Matrix) []byte {
			var b bytes.Buffer
			WriteHeadlines(&b, ComputeHeadlines(m))
			return b.Bytes()
		}},
	} {
		if s, p := render.fn(serial), render.fn(parallel); !bytes.Equal(s, p) {
			t.Errorf("%s CSV differs between serial and parallel sweeps", render.name)
		}
	}
}

// TestMatrixQuick is the -short stand-in for the paper-scale matrix
// tests: a reduced sweep still has to conserve requests, sample the right
// interval count, and keep the workload identical across schemes.
func TestMatrixQuick(t *testing.T) {
	specs := quickSpecs(1)
	m, err := runSpecs(t.Context(), specs, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range Workloads {
		base := m[wl][SchemeWB].AppSubmitted
		for _, sc := range Schemes {
			res := m[wl][sc]
			if res.AppCompleted == 0 || res.AppCompleted != res.AppSubmitted {
				t.Errorf("%s/%s: completed %d of %d", wl, sc, res.AppCompleted, res.AppSubmitted)
			}
			if len(res.Samples) != 20 {
				t.Errorf("%s/%s: %d samples, want 20", wl, sc, len(res.Samples))
			}
			if res.AppSubmitted != base {
				t.Errorf("%s/%s submitted %d, WB %d — workloads diverged", wl, sc, res.AppSubmitted, base)
			}
		}
	}
}

// Two specs targeting the same (workload, scheme) cell cannot be
// represented in a Matrix; RunSpecs must reject the batch instead of
// silently overwriting one run with the other.
func TestRunSpecsRejectsDuplicateCells(t *testing.T) {
	specs := []Spec{
		{Workload: WorkloadTPCC, Scheme: SchemeWB, Seed: 1, Intervals: 2},
		{Workload: WorkloadTPCC, Scheme: SchemeWB, Seed: 2, Intervals: 2},
	}
	if _, err := RunSpecs(t.Context(), specs, 1, nil); err == nil {
		t.Error("duplicate (workload, scheme) cells returned nil error")
	}
}

// Cancelling the sweep mid-flight must stop the remaining cells and
// surface the cancellation, not hang or return a full matrix.
func TestMatrixCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(t.Context())
	done := 0
	_, err := runSpecs(ctx, quickSpecs(1), runner.Options{
		Workers: 1,
		OnDone: func(_, _, _ int) {
			done++
			if done == 2 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
	if done >= len(Workloads)*len(Schemes) {
		t.Errorf("cancellation did not stop the sweep: %d cells completed", done)
	}
}
