package experiments

import (
	"context"
	"reflect"
	"testing"
	"time"

	"lbica/internal/engine"
)

// forkSpec is the shortened matrix cell the fork-equivalence property
// runs over: long enough for bursts and balancer decisions to happen
// after the fork point, short enough to keep the full schemes ×
// workloads product fast.
func forkSpec(wl, scheme string) Spec {
	return Spec{Workload: wl, Scheme: scheme, Seed: 7, Intervals: 60}.Normalize()
}

// buildStack constructs the single-volume stack exactly as RunContext's
// Volumes==1 path does.
func buildStack(spec Spec) *engine.Stack {
	cfg := engine.DefaultConfig()
	cfg.Seed = spec.Seed
	cfg.MonitorEvery = spec.Interval
	return engine.New(cfg, NewGenerator(spec), NewBalancerWithThresholds(spec.Scheme, spec.Thresholds))
}

// runScratch is the uninterrupted baseline run.
func runScratch(spec Spec) *engine.Results {
	st := buildStack(spec)
	return st.RunContext(context.Background(), spec.Intervals)
}

func mustEqual(t *testing.T, got, want *engine.Results, what string) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: results diverge from uninterrupted run\ngot:  %+v\nwant: %+v", what, got, want)
	}
}

// TestForkEquivalence is the tentpole's determinism property: a stack
// forked mid-run and drained produces results identical to a stack that
// ran start-to-finish, for every scheme × paper workload — including a
// fork taken off another fork, and the original (leader) run staying
// unperturbed by having been forked.
func TestForkEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, wl := range Workloads {
		for _, sc := range Schemes {
			wl, sc := wl, sc
			t.Run(wl+"/"+sc, func(t *testing.T) {
				t.Parallel()
				spec := forkSpec(wl, sc)
				want := runScratch(spec)

				// Fork at an interval barrier one third in.
				barrier := time.Duration(spec.Intervals/3) * spec.Interval
				leader := buildStack(spec)
				leader.Start(ctx, spec.Intervals)
				leader.StepTo(barrier)
				f1, err := leader.Fork(ctx, nil)
				if err != nil {
					t.Fatalf("Fork at %v: %v", barrier, err)
				}

				// Fork-of-fork: step the first fork to a later barrier and
				// branch again before draining anything.
				barrier2 := time.Duration(spec.Intervals/2) * spec.Interval
				f1.StepTo(barrier2)
				f2, err := f1.Fork(ctx, nil)
				if err != nil {
					t.Fatalf("Fork of fork at %v: %v", barrier2, err)
				}

				f1.Drain()
				mustEqual(t, f1.Collect(), want, "fork at barrier")
				f2.Drain()
				mustEqual(t, f2.Collect(), want, "fork of fork")
				leader.Drain()
				mustEqual(t, leader.Collect(), want, "leader after forking")
			})
		}
	}
}

// TestForkDropBalancerIsWBBaseline is the planner's warmup-sharing trick:
// while an LBICA leader's balancer has not acted, a fork taken with
// DropBalancer and drained is byte-identical to a from-scratch WB run.
func TestForkDropBalancerIsWBBaseline(t *testing.T) {
	ctx := context.Background()
	for _, wl := range Workloads {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			t.Parallel()
			lbSpec := forkSpec(wl, SchemeLBICA)
			wbSpec := forkSpec(wl, SchemeWB)
			want := runScratch(wbSpec)

			leader := buildStack(lbSpec)
			leader.Start(ctx, lbSpec.Intervals)
			barrier := 2 * lbSpec.Interval
			leader.StepTo(barrier)
			if leader.BalancerActed() {
				t.Skipf("balancer already acted by %v; no shared-warmup window on this workload", barrier)
			}
			f, err := leader.Fork(ctx, engine.DropBalancer)
			if err != nil {
				t.Fatalf("Fork: %v", err)
			}
			f.Drain()
			mustEqual(t, f.Collect(), want, "WB fork off LBICA leader")

			// The leader still finishes as a faithful LBICA run.
			leader.Drain()
			mustEqual(t, leader.Collect(), runScratch(lbSpec), "LBICA leader")
		})
	}
}

// TestForkSnapshot drives the Snapshot wrapper: branch twice off one
// inert snapshot, each branch equal to the uninterrupted run.
func TestForkSnapshot(t *testing.T) {
	ctx := context.Background()
	spec := forkSpec(WorkloadTPCC, SchemeLBICA)
	want := runScratch(spec)

	leader := buildStack(spec)
	leader.Start(ctx, spec.Intervals)
	leader.StepTo(10 * spec.Interval)
	snap, err := leader.Snapshot(ctx)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	// The leader drains first: the snapshot must be unaffected.
	leader.Drain()
	mustEqual(t, leader.Collect(), want, "leader")
	for i := 0; i < 2; i++ {
		f, err := snap.Fork(ctx, nil)
		if err != nil {
			t.Fatalf("snapshot fork %d: %v", i, err)
		}
		f.Drain()
		mustEqual(t, f.Collect(), want, "snapshot fork")
	}
}
