package experiments

import (
	"context"

	"lbica/internal/array"
	"lbica/internal/checkpoint"
	"lbica/internal/engine"
)

// Warm-plan outcome kinds: how one member of a warm-shared scheme group
// actually ran (WarmOutcome.Kind).
const (
	// WarmLeader simulated the shared warmup prefix itself and then ran
	// to completion.
	WarmLeader = "leader"
	// WarmForked was deep-copied from the leader at the warmup barrier
	// and ran only the remainder.
	WarmForked = "forked"
	// WarmScratch ran from scratch; WarmOutcome.Reason says why.
	WarmScratch = "scratch"
)

// Scratch fallback reasons (WarmOutcome.Reason; empty for leader/forked
// members).
const (
	// WarmReasonNoLeader: the group has no forkable leader scheme, the
	// warmup is zero or not shorter than the run, or the group is a
	// single spec — nothing to share.
	WarmReasonNoLeader = "no-leader"
	// WarmReasonSIB: SIB diverges from every other scheme at t=0 (WT+WO
	// policy pin plus periodic queue scans that stall the SSD), so there
	// is no common prefix to reuse.
	WarmReasonSIB = "sib"
	// WarmReasonBalancerActed: a WB member can only reuse the leader's
	// prefix while the leader's balancer has not observably acted; it
	// had, so the prefixes diverged.
	WarmReasonBalancerActed = "balancer-acted"
	// WarmReasonMultiVolume: a multi-volume ARRAY-LB member adapts its
	// routing at every interval barrier, so its prefix diverges from the
	// statically routed leader's from the first barrier on.
	WarmReasonMultiVolume = "multi-volume"
	// WarmReasonForkError: the fork itself failed (non-cloneable
	// generator); the member ran from scratch instead.
	WarmReasonForkError = "fork-error"
)

// WarmOutcome records how one member of a warm-shared group ran: its
// Kind (leader, forked, scratch) and, for scratch members, the Reason
// sharing was impossible. RunWarmShared returns one per spec, so sweeps
// can report their warm-plan hit rate instead of falling back silently.
type WarmOutcome struct {
	Kind   string
	Reason string
	// Cache is the run's persistent-store traffic ("" without a store,
	// and for forked members, which copy in-memory state): WarmCacheHit,
	// WarmCacheStore, or WarmCacheCorrupt. Orthogonal to Kind — both the
	// group leader's shared prefix and a scratch member's private one go
	// through the store.
	Cache string
}

// warmLeaderIndex picks the group's warmup leader, or -1 when the group
// cannot share: sharing needs at least two specs, a warmup strictly
// shorter than the run, and a forkable leader scheme. A plain LBICA
// member is preferred — at one volume ARRAY-LB runs as LBICA relabeled
// and may lead too, but then the relabel stays the special case rather
// than the leader's. A multi-volume ARRAY-LB cannot lead (or share): its
// controller reweights routing at every interval barrier, so its prefix
// diverges from every statically routed scheme's.
func warmLeaderIndex(specs []Spec, warmupIntervals int) int {
	if warmupIntervals <= 0 || len(specs) < 2 {
		return -1
	}
	if ns := specs[0].Normalize(); warmupIntervals >= ns.Intervals {
		return -1
	}
	arrayLB := -1
	for i, s := range specs {
		if s.Scheme == SchemeLBICA {
			return i
		}
		if arrayLB < 0 && s.Scheme == SchemeArrayLB && s.Normalize().Volumes == 1 {
			arrayLB = i
		}
	}
	return arrayLB
}

// CanShareWarmup reports whether a group of specs differing only by
// scheme can share one simulated warmup prefix of warmupIntervals via
// stack forking (see RunWarmShared).
func CanShareWarmup(specs []Spec, warmupIntervals int) bool {
	return warmLeaderIndex(specs, warmupIntervals) >= 0
}

// RunWarmShared executes a group of specs that differ only by scheme,
// simulating their common warmup prefix once: a leader (LBICA — or
// ARRAY-LB, which at one volume is LBICA relabeled) runs to the warmup
// barrier, each other scheme's run is forked from it there, and every
// branch then runs to completion independently. At Volumes > 1 the
// leader is the full statically routed array — all N volume stacks step
// to the barrier and are forked together, atomically from the sibling's
// point of view (no stack advances between the per-volume forks).
// Results are returned in spec order and are byte-identical to running
// each spec from scratch:
//
//   - An LBICA member (or at one volume an ARRAY-LB member) forks the
//     leader's balancer state — identical by construction, since the
//     schemes share the same per-volume balancer and the whole prefix.
//   - A WB member forks with the balancer dropped, valid only while no
//     leader balancer has observably acted (engine.BalancerActed); a
//     balancer that already bypassed or switched policy means the
//     prefixes diverged, and the WB cell falls back to a scratch run.
//   - SIB members, multi-volume ARRAY-LB members (the adaptive
//     controller diverges from static routing at the first barrier),
//     and any fork failure fall back to a scratch run.
//
// When the group cannot share at all (CanShareWarmup false) every member
// runs from scratch, making RunWarmShared a drop-in replacement for
// per-spec RunContext calls. The returned outcomes record, per spec, how
// it ran and why a scratch member could not share.
func RunWarmShared(ctx context.Context, specs []Spec, warmupIntervals int) ([]*engine.Results, []WarmOutcome) {
	return RunWarmSharedCached(ctx, specs, warmupIntervals, nil)
}

// runWarmSingle is the single-stack warm plan: one leader stack (from
// the checkpoint store when possible), one fork per sharing sibling, and
// a store-backed private prefix for every member the fork planner must
// exclude (runMemberCached).
func runWarmSingle(ctx context.Context, specs []Spec, spec Spec, leaderIdx, warmupIntervals int, store *checkpoint.Store, out []*engine.Results, plan []WarmOutcome) {
	cfg := spec.engineConfig()
	leaders, lcache := prepareWarmStacks(ctx, spec, SchemeLBICA, warmupIntervals, store, func() []*engine.Stack {
		return []*engine.Stack{engine.New(cfg, NewGenerator(spec), NewBalancerWithThresholds(SchemeLBICA, spec.Thresholds))}
	})
	leader := leaders[0]

	finish := func(st *engine.Stack, s Spec) *engine.Results {
		st.Drain()
		res := st.Collect()
		res.Workload = s.Workload
		if s.Scheme == SchemeArrayLB {
			res.Scheme = SchemeArrayLB
		}
		return res
	}

	for i, s := range specs {
		if i == leaderIdx {
			continue
		}
		switch s.Scheme {
		case SchemeWB:
			if leader.BalancerActed() {
				out[i], plan[i] = runMemberCached(ctx, s, warmupIntervals, store, WarmReasonBalancerActed)
				continue
			}
			if f, err := leader.Fork(ctx, engine.DropBalancer); err == nil {
				out[i] = finish(f, s)
				plan[i] = WarmOutcome{Kind: WarmForked}
				continue
			}
			out[i], plan[i] = runMemberCached(ctx, s, warmupIntervals, store, WarmReasonForkError)
		case SchemeLBICA, SchemeArrayLB:
			if f, err := leader.Fork(ctx, nil); err == nil {
				out[i] = finish(f, s)
				plan[i] = WarmOutcome{Kind: WarmForked}
				continue
			}
			out[i], plan[i] = runMemberCached(ctx, s, warmupIntervals, store, WarmReasonForkError)
		default:
			out[i], plan[i] = runMemberCached(ctx, s, warmupIntervals, store, WarmReasonSIB)
		}
	}
	out[leaderIdx] = finish(leader, specs[leaderIdx])
	plan[leaderIdx] = WarmOutcome{Kind: WarmLeader, Cache: lcache}
}

// runWarmArray is the multi-volume warm plan: the leader is the full
// statically routed LBICA array. All N volume stacks (wired exactly as
// RunContext wires them, via newVolumeStack, or restored together from
// one store entry) step to the warmup barrier; a sharing sibling forks
// every volume there before any stack advances further, so the sibling
// sees one atomic array-wide snapshot.
func runWarmArray(ctx context.Context, specs []Spec, spec Spec, leaderIdx, warmupIntervals int, store *checkpoint.Store, out []*engine.Results, plan []WarmOutcome) {
	cfg := spec.engineConfig()
	acfg := spec.arrayConfig()
	stacks, lcache := prepareWarmStacks(ctx, spec, SchemeLBICA, warmupIntervals, store, func() []*engine.Stack {
		sts := make([]*engine.Stack, spec.Volumes)
		for v := range sts {
			sts[v] = spec.newVolumeStack(cfg, acfg, v)
		}
		return sts
	})
	acted := false
	for _, st := range stacks {
		if st.BalancerActed() {
			acted = true
			break
		}
	}

	finish := func(sts []*engine.Stack, s Spec) *engine.Results {
		per := make([]*engine.Results, len(sts))
		for v, st := range sts {
			st.Drain()
			res := st.Collect()
			res.Volume = v
			// Same partial rule as array.Run: a cancellation that still let
			// the volume close every interval changed nothing; volumes
			// stopped short are dropped.
			if ctx.Err() != nil && len(res.Samples) < spec.Intervals {
				continue
			}
			per[v] = res
		}
		merged := array.Merge(per)
		merged.Workload = s.Workload
		return merged
	}

	forkAll := func(balFor func(*engine.Stack) engine.Balancer) ([]*engine.Stack, error) {
		forked := make([]*engine.Stack, len(stacks))
		for v, st := range stacks {
			f, err := st.Fork(ctx, balFor)
			if err != nil {
				return nil, err
			}
			forked[v] = f
		}
		return forked, nil
	}

	for i, s := range specs {
		if i == leaderIdx {
			continue
		}
		switch s.Scheme {
		case SchemeWB:
			if acted {
				out[i] = RunContext(ctx, s)
				plan[i] = WarmOutcome{Kind: WarmScratch, Reason: WarmReasonBalancerActed}
				continue
			}
			if forked, err := forkAll(engine.DropBalancer); err == nil {
				out[i] = finish(forked, s)
				plan[i] = WarmOutcome{Kind: WarmForked}
				continue
			}
			out[i] = RunContext(ctx, s)
			plan[i] = WarmOutcome{Kind: WarmScratch, Reason: WarmReasonForkError}
		case SchemeLBICA:
			if forked, err := forkAll(nil); err == nil {
				out[i] = finish(forked, s)
				plan[i] = WarmOutcome{Kind: WarmForked}
				continue
			}
			out[i] = RunContext(ctx, s)
			plan[i] = WarmOutcome{Kind: WarmScratch, Reason: WarmReasonForkError}
		case SchemeArrayLB:
			out[i] = RunContext(ctx, s)
			plan[i] = WarmOutcome{Kind: WarmScratch, Reason: WarmReasonMultiVolume}
		default:
			out[i] = RunContext(ctx, s)
			plan[i] = WarmOutcome{Kind: WarmScratch, Reason: WarmReasonSIB}
		}
	}
	out[leaderIdx] = finish(stacks, specs[leaderIdx])
	plan[leaderIdx] = WarmOutcome{Kind: WarmLeader, Cache: lcache}
}
