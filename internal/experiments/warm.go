package experiments

import (
	"context"
	"time"

	"lbica/internal/engine"
)

// CanShareWarmup reports whether a group of specs differing only by
// scheme can share one simulated warmup prefix of warmupIntervals via
// stack forking (see RunWarmShared). Sharing needs a forkable leader
// scheme in the group (LBICA, or ARRAY-LB which at one volume runs as
// plain LBICA), a single-volume configuration (a multi-volume array's
// per-volume generators are router closures the fork cannot copy), and
// a warmup strictly shorter than the run. SIB never shares: it diverges
// from every other scheme at t=0 (WT+WO policy pin plus periodic queue
// scans that stall the SSD), so there is no common prefix to reuse.
func CanShareWarmup(specs []Spec, warmupIntervals int) bool {
	if warmupIntervals <= 0 || len(specs) < 2 {
		return false
	}
	leader := -1
	for i, s := range specs {
		if s.Scheme == SchemeLBICA || s.Scheme == SchemeArrayLB {
			leader = i
			break
		}
	}
	if leader < 0 {
		return false
	}
	ls := specs[leader].Normalize()
	return ls.Volumes == 1 && warmupIntervals < ls.Intervals
}

// RunWarmShared executes a group of specs that differ only by scheme,
// simulating their common warmup prefix once: a leader stack (LBICA — or
// ARRAY-LB, which at one volume is LBICA relabeled) runs to the warmup
// barrier, each other scheme's run is forked from it there, and every
// branch then runs to completion independently. Results are returned in
// spec order and are byte-identical to running each spec from scratch:
//
//   - An LBICA or ARRAY-LB member forks the leader's balancer state
//     (identical by construction — the schemes share the same balancer
//     at one volume and the whole prefix).
//   - A WB member forks with the balancer dropped, valid only while the
//     leader's balancer has not observably acted (engine.BalancerActed);
//     a balancer that already bypassed or switched policy means the
//     prefixes diverged, and the WB cell falls back to a scratch run.
//   - SIB members and any fork failure fall back to a scratch run.
//
// When the group cannot share at all (CanShareWarmup false) every member
// runs from scratch, making RunWarmShared a drop-in replacement for
// per-spec RunContext calls.
func RunWarmShared(ctx context.Context, specs []Spec, warmupIntervals int) []*engine.Results {
	out := make([]*engine.Results, len(specs))
	if !CanShareWarmup(specs, warmupIntervals) {
		for i, s := range specs {
			out[i] = RunContext(ctx, s)
		}
		return out
	}
	leaderIdx := -1
	for i, s := range specs {
		// Prefer a plain LBICA leader so the ARRAY-LB relabel stays the
		// special case rather than the leader's.
		if s.Scheme == SchemeLBICA {
			leaderIdx = i
			break
		}
	}
	if leaderIdx < 0 {
		for i, s := range specs {
			if s.Scheme == SchemeArrayLB {
				leaderIdx = i
				break
			}
		}
	}

	spec := specs[leaderIdx].Normalize()
	cfg := spec.engineConfig()
	leader := engine.New(cfg, NewGenerator(spec), NewBalancerWithThresholds(SchemeLBICA, spec.Thresholds))
	leader.Start(ctx, spec.Intervals)
	leader.StepTo(time.Duration(warmupIntervals) * spec.Interval)

	finish := func(st *engine.Stack, s Spec) *engine.Results {
		st.Drain()
		res := st.Collect()
		res.Workload = s.Workload
		if s.Scheme == SchemeArrayLB {
			res.Scheme = SchemeArrayLB
		}
		return res
	}

	for i, s := range specs {
		if i == leaderIdx {
			continue
		}
		switch s.Scheme {
		case SchemeWB:
			if !leader.BalancerActed() {
				if f, err := leader.Fork(ctx, engine.DropBalancer); err == nil {
					out[i] = finish(f, s)
					continue
				}
			}
			out[i] = RunContext(ctx, s)
		case SchemeLBICA, SchemeArrayLB:
			if f, err := leader.Fork(ctx, nil); err == nil {
				out[i] = finish(f, s)
				continue
			}
			out[i] = RunContext(ctx, s)
		default:
			out[i] = RunContext(ctx, s)
		}
	}
	out[leaderIdx] = finish(leader, specs[leaderIdx])
	return out
}
