package experiments

import (
	"strings"
	"sync"
	"testing"

	"lbica/internal/cache"
)

// The full 3×3 matrix takes a few seconds; share one across all tests.
var (
	matrixOnce sync.Once
	matrix     Matrix
)

func sharedMatrix(t *testing.T) Matrix {
	if testing.Short() {
		t.Skip("matrix runs skipped in -short mode")
	}
	matrixOnce.Do(func() { matrix = RunMatrix(1, 1) })
	return matrix
}

func TestMatrixConservation(t *testing.T) {
	m := sharedMatrix(t)
	for _, wl := range Workloads {
		for _, sc := range Schemes {
			res := m[wl][sc]
			if res.AppSubmitted == 0 {
				t.Fatalf("%s/%s: no requests", wl, sc)
			}
			if res.AppCompleted != res.AppSubmitted {
				t.Errorf("%s/%s: completed %d of %d", wl, sc, res.AppCompleted, res.AppSubmitted)
			}
			if len(res.Samples) != PaperIntervals(wl) {
				t.Errorf("%s/%s: %d samples, want %d", wl, sc, len(res.Samples), PaperIntervals(wl))
			}
		}
	}
}

func TestSchemesSeeIdenticalWorkload(t *testing.T) {
	m := sharedMatrix(t)
	for _, wl := range Workloads {
		base := m[wl][SchemeWB].AppSubmitted
		for _, sc := range Schemes {
			if got := m[wl][sc].AppSubmitted; got != base {
				t.Errorf("%s/%s submitted %d, WB submitted %d — workloads diverged", wl, sc, got, base)
			}
		}
	}
}

// Fig. 6a: TPC-C is detected as a random-read burst early (paper: WO at
// interval 3) and WO dominates the run.
func TestPaperTimelineTPCC(t *testing.T) {
	m := sharedMatrix(t)
	res := m[WorkloadTPCC][SchemeLBICA]
	if len(res.Timeline) == 0 {
		t.Fatal("no policy decisions")
	}
	first := res.Timeline[0]
	if first.Policy != cache.WO || first.Interval > 5 {
		t.Fatalf("first decision = %v@%d (%s), want WO within interval 5", first.Policy, first.Interval, first.Group)
	}
	rows := Fig6(res)
	wo := 0
	for _, r := range rows[5:] {
		if r.Policy == "WO" {
			wo++
		}
	}
	if frac := float64(wo) / float64(len(rows)-5); frac < 0.6 {
		t.Errorf("WO in force %.0f%% of post-detection intervals, want ≥60%%", 100*frac)
	}
}

// Fig. 6b: the mail server's published decision sequence — RO at ~23, WO
// at ~128, WB (Group 3) at ~134 — must appear in order at the right
// places.
func TestPaperTimelineMail(t *testing.T) {
	m := sharedMatrix(t)
	res := m[WorkloadMail][SchemeLBICA]
	type want struct {
		policy cache.Policy
		lo, hi int
	}
	wants := []want{
		{cache.RO, 21, 26},
		{cache.WO, 126, 132},
		{cache.WB, 132, 139},
	}
	wi := 0
	for _, pc := range res.Timeline {
		if wi >= len(wants) {
			break
		}
		w := wants[wi]
		if pc.Policy == w.policy && pc.Interval >= w.lo && pc.Interval <= w.hi {
			wi++
		}
	}
	if wi != len(wants) {
		t.Fatalf("mail timeline missing stage %d of RO@23/WO@128/WB@134; got %+v", wi, res.Timeline)
	}
}

// Fig. 6c: the web server is classified mixed-RW and set to RO right at
// the start (paper: interval 1).
func TestPaperTimelineWeb(t *testing.T) {
	m := sharedMatrix(t)
	res := m[WorkloadWeb][SchemeLBICA]
	if len(res.Timeline) == 0 {
		t.Fatal("no policy decisions")
	}
	first := res.Timeline[0]
	if first.Policy != cache.RO || first.Interval > 3 {
		t.Fatalf("first decision = %v@%d, want RO within interval 3", first.Policy, first.Interval)
	}
}

// Fig. 4: per-interval cache load ordering — LBICA lowest everywhere; SIB
// beats WB on the two workloads whose bursts overload the cache tier.
func TestFig4CacheLoadOrdering(t *testing.T) {
	m := sharedMatrix(t)
	for _, wl := range Workloads {
		wb := m[wl][SchemeWB].CacheLoadMean()
		sib := m[wl][SchemeSIB].CacheLoadMean()
		lb := m[wl][SchemeLBICA].CacheLoadMean()
		if lb >= wb {
			t.Errorf("%s: LBICA cache load %.0f ≥ WB %.0f", wl, lb, wb)
		}
		if lb >= sib {
			t.Errorf("%s: LBICA cache load %.0f ≥ SIB %.0f", wl, lb, sib)
		}
		if wl != WorkloadWeb && sib >= wb {
			t.Errorf("%s: SIB cache load %.0f ≥ WB %.0f", wl, sib, wb)
		}
	}
}

// Fig. 5: the load LBICA sheds lands on the disk subsystem — its disk load
// is at least WB's — without melting it (latency stays the best, checked
// by Fig. 7 below).
func TestFig5DiskLoadShift(t *testing.T) {
	m := sharedMatrix(t)
	for _, wl := range Workloads {
		wb := m[wl][SchemeWB].DiskLoadMean()
		lb := m[wl][SchemeLBICA].DiskLoadMean()
		if lb < wb*0.8 {
			t.Errorf("%s: LBICA disk load %.0f below WB %.0f — nothing was shifted", wl, lb, wb)
		}
	}
	// The shift is strongest for mail (RO diverts the write burst).
	if lbMail, wbMail := m[WorkloadMail][SchemeLBICA].DiskLoadMean(), m[WorkloadMail][SchemeWB].DiskLoadMean(); lbMail <= wbMail {
		t.Errorf("mail: LBICA disk load %.0f not above WB %.0f", lbMail, wbMail)
	}
}

// Fig. 7: average end-to-end latency — LBICA best on every workload; SIB
// between WB and LBICA where the cache tier is the bottleneck.
func TestFig7LatencyOrdering(t *testing.T) {
	m := sharedMatrix(t)
	for _, wl := range Workloads {
		wb := m[wl][SchemeWB].AppLatency.Mean()
		sib := m[wl][SchemeSIB].AppLatency.Mean()
		lb := m[wl][SchemeLBICA].AppLatency.Mean()
		if lb >= wb {
			t.Errorf("%s: LBICA latency %v ≥ WB %v", wl, lb, wb)
		}
		if lb >= sib {
			t.Errorf("%s: LBICA latency %v ≥ SIB %v", wl, lb, sib)
		}
		if wl != WorkloadWeb && sib >= wb {
			t.Errorf("%s: SIB latency %v ≥ WB %v", wl, sib, wb)
		}
	}
}

// Headline claims (abstract, §IV-B/C/D): LBICA cuts cache load versus both
// baselines and improves latency. Exact percentages depend on the physical
// testbed; the reproduction asserts direction and rough magnitude.
func TestHeadlineClaims(t *testing.T) {
	m := sharedMatrix(t)
	h := ComputeHeadlines(m)
	if h.AvgCacheLoadReductionVsWB < 30 {
		t.Errorf("avg cache-load reduction vs WB = %.1f%%, want ≥30%% (paper: 48%%)", h.AvgCacheLoadReductionVsWB)
	}
	if h.MaxCacheLoadReductionVsWB < 50 {
		t.Errorf("max cache-load reduction vs WB = %.1f%%, want ≥50%% (paper: up to 70%%)", h.MaxCacheLoadReductionVsWB)
	}
	if h.AvgCacheLoadReductionVsSIB < 15 {
		t.Errorf("avg cache-load reduction vs SIB = %.1f%%, want ≥15%% (paper: 30%%)", h.AvgCacheLoadReductionVsSIB)
	}
	if h.AvgLatencyImprovementVsWB < 10 {
		t.Errorf("avg latency improvement vs WB = %.1f%%, want ≥10%% (paper: 14%%)", h.AvgLatencyImprovementVsWB)
	}
	if h.AvgLatencyImprovementVsSIB < 5 {
		t.Errorf("avg latency improvement vs SIB = %.1f%%, want ≥5%% (paper: 7%%)", h.AvgLatencyImprovementVsSIB)
	}
}

func TestMailBurstCensusMatchesGroup2(t *testing.T) {
	m := sharedMatrix(t)
	rows := Fig6(m[WorkloadMail][SchemeLBICA])
	// Around interval 23 the arrival mix must be write-dominated mixed RW
	// (paper quotes R 13.9%, W 70.4%).
	r := rows[23]
	if r.W < 50 {
		t.Errorf("mail interval 23 W%% = %.1f, want write-dominated", r.W)
	}
	if r.R < 5 {
		t.Errorf("mail interval 23 R%% = %.1f, want visible read share", r.R)
	}
}

func TestFigureWriters(t *testing.T) {
	m := sharedMatrix(t)
	var sb strings.Builder
	if err := Fig4(m, WorkloadTPCC).WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "interval,WB,SIB,LBICA") {
		t.Errorf("fig4 header = %q", strings.SplitN(sb.String(), "\n", 2)[0])
	}
	sb.Reset()
	if err := WriteFig6CSV(&sb, Fig6(m[WorkloadMail][SchemeLBICA])); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\n"); got != PaperIntervals(WorkloadMail)+1 {
		t.Errorf("fig6 rows = %d", got)
	}
	sb.Reset()
	if err := WriteFig7CSV(&sb, Fig7(m)); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\n"); got != len(Workloads)+1 {
		t.Errorf("fig7 rows = %d", got)
	}
	sb.Reset()
	if err := WriteHeadlines(&sb, ComputeHeadlines(m)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "average") {
		t.Error("headline table missing average row")
	}
}

func TestPaperIntervals(t *testing.T) {
	if PaperIntervals(WorkloadTPCC) != 200 || PaperIntervals(WorkloadWeb) != 175 {
		t.Error("paper interval counts wrong")
	}
}
