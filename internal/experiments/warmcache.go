package experiments

import (
	"context"
	"fmt"
	"time"

	"lbica/internal/checkpoint"
	"lbica/internal/engine"
)

// Persistent warm-cache traffic annotations (WarmOutcome.Cache): how one
// run's warmup prefix interacted with an on-disk checkpoint store. They
// are orthogonal to the plan-structure kinds — a leader and a scratch
// member can each hit or store, without changing how the group shared.
const (
	// WarmCacheHit: the warmup prefix was restored from an on-disk
	// checkpoint instead of being simulated.
	WarmCacheHit = "cache-hit"
	// WarmCacheStore: the warmup prefix was simulated and the checkpoint
	// published for future invocations.
	WarmCacheStore = "cache-store"
	// WarmCacheCorrupt: a WarmCacheStore whose store entry existed but
	// was unusable (truncated, checksum mismatch, format skew, or a
	// failed restore): the prefix was simulated and the bad entry
	// overwritten — the sweep degrades, it never fails.
	WarmCacheCorrupt = "cache-corrupt"
)

// warmCacheKey is the canonical content address of a warmup prefix: every
// normalized spec field that shapes the first warmupIntervals intervals,
// plus the checkpoint format version. scheme names the balancer that
// drives the prefix — SchemeLBICA for a group's shared leader prefix (the
// leader always runs the LBICA balancer, even when the nominal leader
// member is a one-volume ARRAY-LB), a scratch member's own scheme for its
// private prefix. Execution-only fields (ShardWorkers, RouteVariant) are
// absent: they never shape simulated state.
//
// Intervals is part of the key even though the prefix stops at the warmup
// barrier: the stack is armed for the full run, so the total tick budget
// is serialized state.
func warmCacheKey(spec Spec, scheme string, warmupIntervals int) string {
	s := spec.Normalize()
	t := s.Thresholds.Normalize()
	return fmt.Sprintf(
		"v%d|wl=%s|scheme=%s|seed=%d|iv=%d|step=%d|rate=%g|cache=%g|burst=%g|vol=%d|rp=%s|rs=%g|th=%g,%g,%g,%g,%d|warm=%d",
		checkpoint.FormatVersion, s.Workload, scheme, s.Seed, s.Intervals, int64(s.Interval),
		s.RateFactor, s.CacheMult, s.BurstMult,
		s.Volumes, s.RoutePolicy, s.RouteSkew,
		t.DominantPair, t.MemberMin, t.PromoteAlone, t.ReadAlone, t.MinQueued,
		warmupIntervals)
}

// prepareWarmStacks produces stacks standing at the warmup barrier,
// consulting the store first when one is given. build must return freshly
// constructed, not-yet-started stacks (one per volume); the scratch path
// starts them and steps them to the barrier, the hit path restores them
// in place. Restore failures of any kind fall back to the scratch path
// and overwrite the entry. The returned annotation is the run's cache
// traffic (WarmOutcome.Cache): WarmCacheHit, WarmCacheStore,
// WarmCacheCorrupt, or "" when the store held nothing usable and the
// publish failed too (or there is no store at all).
func prepareWarmStacks(ctx context.Context, spec Spec, scheme string, warmupIntervals int, store *checkpoint.Store, build func() []*engine.Stack) ([]*engine.Stack, string) {
	corrupt := false
	var key string
	if store != nil {
		key = warmCacheKey(spec, scheme, warmupIntervals)
		payloads, err := store.Load(key)
		switch {
		case err != nil:
			corrupt = true
		case payloads != nil:
			stacks := build()
			if len(payloads) != len(stacks) {
				corrupt = true
				break
			}
			ok := true
			for v, st := range stacks {
				if err := checkpoint.DecodeStack(ctx, st, payloads[v]); err != nil {
					corrupt = true
					ok = false
					break
				}
			}
			if ok {
				return stacks, WarmCacheHit
			}
		}
	}

	// Scratch: simulate the prefix, then publish it for the next
	// invocation. A failed encode or write leaves the run untouched —
	// the cache is strictly an accelerator.
	stacks := build()
	barrier := time.Duration(warmupIntervals) * spec.Interval
	for _, st := range stacks {
		st.Start(ctx, spec.Intervals)
	}
	for _, st := range stacks {
		st.StepTo(barrier)
	}
	if store != nil {
		payloads := make([][]byte, len(stacks))
		ok := true
		for v, st := range stacks {
			p, err := checkpoint.EncodeStack(st)
			if err != nil {
				ok = false
				break
			}
			payloads[v] = p
		}
		if ok && store.Save(key, payloads) == nil {
			if corrupt {
				return stacks, WarmCacheCorrupt
			}
			return stacks, WarmCacheStore
		}
	}
	return stacks, ""
}

// runMemberCached runs one scratch member — a run that cannot reuse its
// group leader's prefix — backed by the same persistent store: the
// member's own warmup prefix, under its own scheme, is restored when a
// checkpoint exists and simulated-then-published when not. Sharing
// within an invocation needs cross-scheme prefix equality, but sharing
// across invocations only needs same-spec determinism, so even the
// schemes the fork planner must exclude (an acted balancer, SIB's
// scans, a group with no forkable leader) amortize their prefixes over
// repeated sweeps. Falls back to plain RunContext — outcome unchanged —
// when there is no store, the warmup is not strictly inside the run, or
// the member is multi-volume (the adaptive controller's wiring has no
// checkpoint codec, and static arrays fork from the leader instead).
func runMemberCached(ctx context.Context, s Spec, warmupIntervals int, store *checkpoint.Store, reason string) (*engine.Results, WarmOutcome) {
	o := WarmOutcome{Kind: WarmScratch, Reason: reason}
	ns := s.Normalize()
	if store == nil || ns.Volumes > 1 || warmupIntervals <= 0 || warmupIntervals >= ns.Intervals {
		return RunContext(ctx, s), o
	}
	cfg := ns.engineConfig()
	stacks, cache := prepareWarmStacks(ctx, ns, ns.Scheme, warmupIntervals, store, func() []*engine.Stack {
		return []*engine.Stack{engine.New(cfg, NewGenerator(ns), NewBalancerWithThresholds(ns.Scheme, ns.Thresholds))}
	})
	o.Cache = cache
	st := stacks[0]
	st.Drain()
	res := st.Collect()
	res.Workload = ns.Workload
	if ns.Scheme == SchemeArrayLB {
		res.Scheme = SchemeArrayLB
	}
	return res, o
}

// RunWarmSharedCached is RunWarmShared backed by a persistent checkpoint
// store: before simulating a warmup prefix — the group leader's shared
// one, or a scratch member's private one — the run checks the store for
// a checkpoint of that exact prefix (keyed by the normalized spec,
// driving scheme and warmup length) and restores it instead; after
// simulating a prefix no cache held, it writes the checkpoint through
// for future invocations. Results remain byte-identical to scratch runs
// — the restore property is pinned by the checkpoint package's
// equivalence tests — and a store entry that is missing, corrupt,
// truncated, or version-skewed silently degrades to simulation
// (surfaced in the member's WarmOutcome.Cache, never as an error). A
// nil store is exactly RunWarmShared.
func RunWarmSharedCached(ctx context.Context, specs []Spec, warmupIntervals int, store *checkpoint.Store) ([]*engine.Results, []WarmOutcome) {
	out := make([]*engine.Results, len(specs))
	plan := make([]WarmOutcome, len(specs))
	leaderIdx := warmLeaderIndex(specs, warmupIntervals)
	if leaderIdx < 0 {
		for i, s := range specs {
			out[i], plan[i] = runMemberCached(ctx, s, warmupIntervals, store, WarmReasonNoLeader)
		}
		return out, plan
	}
	spec := specs[leaderIdx].Normalize()
	if spec.Volumes <= 1 {
		runWarmSingle(ctx, specs, spec, leaderIdx, warmupIntervals, store, out, plan)
	} else {
		runWarmArray(ctx, specs, spec, leaderIdx, warmupIntervals, store, out, plan)
	}
	return out, plan
}
