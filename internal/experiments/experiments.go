// Package experiments regenerates the paper's evaluation section: every
// figure (Figs. 4–7) plus the headline aggregates quoted in the abstract
// and §IV, from full simulation runs of the 3 workloads × 3 schemes
// matrix.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"lbica/internal/array"
	"lbica/internal/block"
	"lbica/internal/core"
	"lbica/internal/engine"
	"lbica/internal/runner"
	"lbica/internal/sib"
	"lbica/internal/sim"
	"lbica/internal/stats"
	"lbica/internal/workload"
)

// Schemes under comparison.
const (
	SchemeWB    = "WB"
	SchemeSIB   = "SIB"
	SchemeLBICA = "LBICA"
	// SchemeArrayLB runs per-volume LBICA plus the array-level controller
	// (internal/array.RunControlled): adaptive weighted routing and hot-
	// block migration, re-decided at every monitor-interval barrier. At
	// Volumes == 1 there is nothing to balance across and the scheme
	// degenerates to plain LBICA (relabeled in the results).
	SchemeArrayLB = "ARRAY-LB"
)

// Workloads of the evaluation.
const (
	WorkloadTPCC = "tpcc"
	WorkloadMail = "mail"
	WorkloadWeb  = "web"
)

// Workloads lists the evaluation workloads in paper order.
var Workloads = []string{WorkloadTPCC, WorkloadMail, WorkloadWeb}

// Schemes lists the schemes in paper order.
var Schemes = []string{SchemeWB, SchemeSIB, SchemeLBICA}

// Spec describes one run.
type Spec struct {
	Workload string
	Scheme   string
	Seed     int64
	// Intervals defaults to the paper's length for the workload (200;
	// 175 for web). Interval defaults to 200 ms. RateFactor defaults to 1.
	Intervals  int
	Interval   time.Duration
	RateFactor float64
	// CacheMult scales the SSD cache capacity relative to the paper's
	// 256 MiB configuration by multiplying the set count (associativity is
	// untouched, so Eq. 1 queue dynamics per set are preserved). Defaults
	// to 1; the prewarm volume tracks the scaled capacity.
	CacheMult float64
	// BurstMult scales every bursting phase's ON-rate and ON/OFF duty
	// cycle (workload.Scale.BurstMult). Defaults to 1, the workload's
	// published burst shape.
	BurstMult float64
	// Volumes is the array width: how many independent cache+disk stacks
	// the run shards the workload across (internal/array). Defaults to 1,
	// the paper's single-stack configuration, which bypasses the array
	// layer entirely.
	Volumes int
	// RoutePolicy selects how the array router splits the stream across
	// volumes: "uniform", "hash" or "zipf". Empty means "zipf" when
	// RouteSkew > 0 and "uniform" otherwise. Meaningful only when
	// Volumes > 1.
	RoutePolicy string
	// RouteSkew is the Zipf exponent of the router's volume-popularity
	// distribution (0 = uniform routing weights) — the skewed-routing
	// axis. Requires Volumes > 1 when non-zero. Under ARRAY-LB it sets
	// the controller's *initial* weights only; measurements take over
	// from the first interval barrier.
	RouteSkew float64
	// RouteVariant selects the ARRAY-LB controller's adaptation
	// mechanism: "weighted" (inverse-load weights, the default) or "p2c"
	// (power-of-two-choices). Meaningful only under SchemeArrayLB.
	RouteVariant string
	// ShardWorkers caps the array's volume-per-core fan-out (≤0 =
	// GOMAXPROCS; 1 = the serial baseline the determinism tests compare
	// against). Output is byte-identical for every value.
	ShardWorkers int
	// Thresholds overrides LBICA's census-classifier calibration
	// (core.Thresholds). The zero value is the paper's calibrated
	// defaults; zero fields inherit their default individually.
	Thresholds core.Thresholds
}

// Normalize fills defaulted fields in place and returns the result. Only
// the zero value of a field means "use the default": negative scalars are
// a caller bug (specs are code — user-supplied values are validated by the
// sweep grid and the CLIs before a Spec is built), and silently clamping
// them to the default would run a different experiment than the one the
// spec labels, so Normalize panics on them instead.
func (s Spec) Normalize() Spec {
	if s.Intervals < 0 || s.Interval < 0 || s.RateFactor < 0 || s.CacheMult < 0 || s.BurstMult < 0 || s.Volumes < 0 {
		panic(fmt.Sprintf("experiments: negative Spec field (%+v); zero means default, negatives are invalid", s))
	}
	if s.Volumes == 0 {
		s.Volumes = 1
	}
	if s.Volumes == 1 && (s.RouteSkew != 0 || s.RoutePolicy != "") {
		panic(fmt.Sprintf("experiments: Spec routes a single-volume run (policy %q, skew %v); routing needs Volumes > 1", s.RoutePolicy, s.RouteSkew))
	}
	if s.Scheme == SchemeArrayLB {
		if s.RoutePolicy != "" {
			panic(fmt.Sprintf("experiments: Spec sets RoutePolicy %q under ARRAY-LB; the controller owns routing (RouteSkew seeds its initial weights)", s.RoutePolicy))
		}
		if _, err := array.ParseVariant(s.RouteVariant); err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
	} else if s.RouteVariant != "" {
		panic(fmt.Sprintf("experiments: Spec sets RouteVariant %q under scheme %q; variants apply to ARRAY-LB only", s.RouteVariant, s.Scheme))
	}
	if err := s.arrayConfig().Validate(); err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	if err := s.Thresholds.Validate(); err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	s.Thresholds = s.Thresholds.Normalize()
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Intervals == 0 {
		s.Intervals = PaperIntervals(s.Workload)
	}
	if s.Interval == 0 {
		s.Interval = 200 * time.Millisecond
	}
	if s.RateFactor == 0 {
		s.RateFactor = 1
	}
	if s.CacheMult == 0 {
		s.CacheMult = 1
	}
	if s.BurstMult == 0 {
		s.BurstMult = 1
	}
	return s
}

// ValidateWorkload reports whether name resolves in the workload catalog
// (the paper trio plus the synthetic and burst-mix families) — the
// non-panicking twin of NewGenerator's lookup, for validating user input
// such as sweep axes and CLI flags.
func ValidateWorkload(name string) error {
	_, err := workload.Default.Resolve(name)
	return err
}

// WorkloadCatalog returns the exact catalog names and the parameterized
// family patterns, for CLI help text.
func WorkloadCatalog() (names, patterns []string) {
	return workload.Default.Names(), workload.Default.Patterns()
}

// PaperIntervals returns the interval count the paper plots for a
// workload.
func PaperIntervals(wl string) int {
	if wl == WorkloadWeb {
		return 175
	}
	return 200
}

// NewGenerator builds the named workload generator by resolving
// spec.Workload through the catalog (workload.Default): the paper trio,
// the synthetic entries, and the parameterized synth/burst-mix families
// all come through here. It panics on unknown names: specs are code, not
// user input — validate names from users with ValidateWorkload first.
func NewGenerator(spec Spec) workload.Generator {
	scale := workload.Scale{
		Interval:   spec.Interval,
		Intervals:  spec.Intervals,
		RateFactor: spec.RateFactor,
		BurstMult:  spec.BurstMult,
	}
	g := sim.NewRNG(spec.Seed, "workload:"+spec.Workload)
	b, err := workload.Default.Resolve(spec.Workload)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return b(scale, g)
}

// NewBalancer builds the scheme's balancer (nil for the WB baseline) with
// the paper's calibrated thresholds.
func NewBalancer(scheme string) engine.Balancer {
	return NewBalancerWithThresholds(scheme, core.DefaultThresholds())
}

// NewBalancerWithThresholds is NewBalancer with an explicit LBICA
// classifier calibration (zero fields inherit the paper defaults). The
// thresholds only affect the LBICA scheme; WB has no balancer and SIB no
// census classifier.
func NewBalancerWithThresholds(scheme string, th core.Thresholds) engine.Balancer {
	switch scheme {
	case SchemeWB:
		return nil
	case SchemeSIB:
		return sib.New(sib.DefaultConfig())
	case SchemeLBICA, SchemeArrayLB:
		// ARRAY-LB keeps the intra-volume balancer: each volume still runs
		// LBICA; the array controller adds the cross-volume layer on top.
		cfg := core.DefaultConfig()
		cfg.Thresholds = th.Normalize()
		return core.New(cfg)
	default:
		panic(fmt.Sprintf("experiments: unknown scheme %q", scheme))
	}
}

// arrayConfig resolves the spec's array fields. RoutePolicy defaults to
// "zipf" when a skew is set and "uniform" otherwise; an unparseable name
// panics (specs are code — user input is validated by the sweep grid and
// the CLIs before a Spec is built).
func (s Spec) arrayConfig() array.Config {
	pol := array.Uniform
	if s.RoutePolicy != "" {
		p, err := array.ParsePolicy(s.RoutePolicy)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		pol = p
	} else if s.RouteSkew > 0 {
		pol = array.Zipf
	}
	return array.Config{Volumes: s.Volumes, Policy: pol, Skew: s.RouteSkew, Workers: s.ShardWorkers}
}

// Run executes one workload × scheme simulation.
func Run(spec Spec) *engine.Results {
	return RunContext(context.Background(), spec)
}

// engineConfig builds the per-stack engine configuration for a
// normalized spec — the single place the sweep axes (seed, interval,
// cache geometry) become engine knobs, shared by the scratch and
// warm-fork run paths.
func (s Spec) engineConfig() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.Seed = s.Seed
	cfg.MonitorEvery = s.Interval
	if s.CacheMult != 1 {
		// Clamped in float space before the int conversion: an absurd
		// multiplier would otherwise overflow to min-int and silently
		// become the smallest possible cache. 1<<22 sets is a 128 GiB
		// cache at the default geometry — past any meaningful sweep.
		f := math.Round(float64(cfg.Cache.Sets) * s.CacheMult)
		if f < 1 {
			f = 1
		}
		if f > 1<<22 {
			f = 1 << 22
		}
		cfg.Cache.Sets = int(f)
		cfg.PrewarmBlocks = cfg.Cache.Sets * cfg.Cache.Ways
	}
	return cfg
}

// RunContext is Run with cooperative cancellation: a cancelled ctx stops
// the simulation at the next event boundary and returns the partial
// results accumulated so far.
//
// When spec.Volumes > 1 the run is a multi-volume array: each volume is a
// full stack with its own balancer instance, fed its routed sub-stream,
// sharded volume-per-core through the runner pool (spec.ShardWorkers) and
// merged order-independently — the returned Results are the array-level
// reduction (see array.Merge), byte-identical for every worker count. A
// cancellation drops volumes that had not completed; the merged partial
// covers the volumes that finished.
func RunContext(ctx context.Context, spec Spec) *engine.Results {
	spec = spec.Normalize()
	cfg := spec.engineConfig()
	if spec.Volumes <= 1 {
		// The single-stack path is exactly the pre-array pipeline — no
		// router, no filter, the run seed untouched — so Volumes: 1 output
		// stays byte-identical to the paper harness's goldens. ARRAY-LB
		// with one volume has nothing to balance across: it runs as plain
		// LBICA and is relabeled.
		gen := NewGenerator(spec)
		st := engine.New(cfg, gen, NewBalancerWithThresholds(spec.Scheme, spec.Thresholds))
		res := st.RunContext(ctx, spec.Intervals)
		res.Workload = spec.Workload
		if spec.Scheme == SchemeArrayLB {
			res.Scheme = SchemeArrayLB
		}
		return res
	}

	if spec.Scheme == SchemeArrayLB {
		// One base stream, routed by the controller itself; per-volume
		// hardware still draws from its own volume seed.
		c, err := newControlled(ctx, spec, cfg)
		if err != nil {
			// Cannot happen: the config was validated in Normalize and the
			// build function never fails.
			panic(fmt.Sprintf("experiments: %v", err))
		}
		ares, _ := c.Finish(ctx)
		merged := ares.Merged
		merged.Workload = spec.Workload
		// The per-volume balancer names itself LBICA; the array-level
		// scheme is what this run compares as.
		merged.Scheme = SchemeArrayLB
		return merged
	}

	acfg := spec.arrayConfig()
	ares, _ := array.Run(ctx, acfg, spec.Intervals, func(vol int) (*engine.Stack, error) {
		return spec.newVolumeStack(cfg, acfg, vol), nil
	})
	// The only possible error is a context cancellation (builds cannot
	// fail, the config was validated in Normalize), and the contract here
	// matches the single-stack path: a cancelled run returns the partial
	// results that exist.
	merged := ares.Merged
	merged.Workload = spec.Workload
	return merged
}

// newVolumeStack builds volume vol's stack for the statically routed
// multi-volume path — the single assembly both RunContext and the
// warm-fork planner (RunWarmShared) use, so a warm-forked array is wired
// byte-identically to a scratch one. Each volume is distinct hardware:
// its devices draw from their own (Stream(seed, vol), component) streams.
// The workload copy deliberately does NOT use the volume seed — every
// volume must replay the bit-identical base stream for the routers to
// agree.
func (s Spec) newVolumeStack(cfg engine.Config, acfg array.Config, vol int) *engine.Stack {
	vcfg := cfg
	vcfg.Seed = sim.Stream(s.Seed, vol)
	vcfg.Volume = vol
	gen := NewGenerator(s)
	vg := array.VolumeGen(gen, acfg.NewRouter(s.Seed), vol)
	return engine.New(vcfg, vg, NewBalancerWithThresholds(s.Scheme, s.Thresholds))
}

// newControlled assembles the ARRAY-LB controlled array for a normalized
// spec — shared by RunContext and the fork property tests, so a forked
// controller faces exactly the volumes a scratch run builds.
func newControlled(ctx context.Context, spec Spec, cfg engine.Config) (*array.Controlled, error) {
	variant, _ := array.ParseVariant(spec.RouteVariant) // validated in Normalize
	ccfg := array.ControllerConfig{
		Volumes: spec.Volumes,
		Skew:    spec.RouteSkew,
		Seed:    spec.Seed,
		Variant: variant,
		Workers: spec.ShardWorkers,
	}
	return array.NewControlled(ctx, ccfg, spec.Intervals, spec.Interval, NewGenerator(spec),
		func(vol int, gen workload.Generator) (*engine.Stack, error) {
			vcfg := cfg
			vcfg.Seed = sim.Stream(spec.Seed, vol)
			vcfg.Volume = vol
			return engine.New(vcfg, gen, NewBalancerWithThresholds(spec.Scheme, spec.Thresholds)), nil
		})
}

// Matrix holds the 3×3 evaluation results indexed [workload][scheme].
type Matrix map[string]map[string]*engine.Results

// MatrixSpecs enumerates the evaluation matrix in paper order (workload-
// major) — the fixed job order the runner fans out over. Every cell uses
// the same run seed: the per-component stream names inside a run already
// isolate the cells, and a shared seed is what lets the three schemes see
// an identical workload (the paper's controlled comparison).
func MatrixSpecs(seed int64, rateFactor float64) []Spec {
	specs := make([]Spec, 0, len(Workloads)*len(Schemes))
	for _, wl := range Workloads {
		for _, sc := range Schemes {
			specs = append(specs, Spec{Workload: wl, Scheme: sc, Seed: seed, RateFactor: rateFactor})
		}
	}
	return specs
}

// runSpecs fans specs out across the runner pool and assembles the matrix
// once every cell has finished. Each job writes only its own result slot,
// and each cell's randomness derives from its spec alone, so the matrix is
// bit-identical for any worker count.
func runSpecs(ctx context.Context, specs []Spec, opt runner.Options) (Matrix, error) {
	// The matrix is keyed by (workload, scheme) only; a second run of the
	// same cell (e.g. a seed sweep) would silently overwrite the first.
	// Rejected before any simulation runs — seed sweeps belong in
	// lbica.RunAll, which returns results by spec index.
	seen := make(map[[2]string]bool, len(specs))
	for _, spec := range specs {
		cell := [2]string{spec.Workload, spec.Scheme}
		if seen[cell] {
			return nil, fmt.Errorf("experiments: duplicate cell %s/%s in spec batch", spec.Workload, spec.Scheme)
		}
		seen[cell] = true
	}
	cells, err := runner.Map(ctx, len(specs), opt,
		func(ctx context.Context, i int) (*engine.Results, error) {
			return RunContext(ctx, specs[i]), ctx.Err()
		})
	if err != nil {
		return nil, err
	}
	m := make(Matrix, len(Workloads))
	for i, spec := range specs {
		if m[spec.Workload] == nil {
			m[spec.Workload] = make(map[string]*engine.Results, len(Schemes))
		}
		m[spec.Workload][spec.Scheme] = cells[i]
	}
	return m, nil
}

// RunSpecs executes an explicit batch of specs through the runner pool
// (workers ≤ 0 = GOMAXPROCS) and assembles the Matrix, calling onDone
// (serialized; may be nil) after each cell. Results are bit-identical for
// every worker count, including the workers == 1 serial baseline.
func RunSpecs(ctx context.Context, specs []Spec, workers int, onDone func(done, total int)) (Matrix, error) {
	opt := runner.Options{Workers: workers}
	if onDone != nil {
		opt.OnDone = func(_, done, total int) { onDone(done, total) }
	}
	return runSpecs(ctx, specs, opt)
}

// RunMatrix executes the full evaluation across GOMAXPROCS workers.
func RunMatrix(seed int64, rateFactor float64) Matrix {
	m, err := RunMatrixContext(context.Background(), seed, rateFactor, 0)
	if err != nil {
		// Only reachable via ctx cancellation, impossible with Background.
		panic(fmt.Sprintf("experiments: matrix failed: %v", err))
	}
	return m
}

// RunMatrixContext executes the paper's evaluation matrix through the
// runner pool with an explicit worker cap and cancellation.
func RunMatrixContext(ctx context.Context, seed int64, rateFactor float64, workers int) (Matrix, error) {
	return RunSpecs(ctx, MatrixSpecs(seed, rateFactor), workers, nil)
}

// Fig4 returns the Fig. 4 series for one workload: per-interval I/O cache
// load (max latency, µs) under each scheme.
func Fig4(m Matrix, wl string) *stats.SeriesSet {
	ss := stats.NewSeriesSet("fig4-" + wl + "-cache-load")
	for _, sc := range Schemes {
		res := m[wl][sc]
		s := ss.Get(sc)
		for _, smp := range res.Samples {
			s.Append(smp.Interval, smp.End, us(smp.CacheLoad))
		}
	}
	return ss
}

// Fig5 returns the Fig. 5 series for one workload: per-interval disk-
// subsystem load (max latency, µs) under each scheme.
func Fig5(m Matrix, wl string) *stats.SeriesSet {
	ss := stats.NewSeriesSet("fig5-" + wl + "-disk-load")
	for _, sc := range Schemes {
		res := m[wl][sc]
		s := ss.Get(sc)
		for _, smp := range res.Samples {
			s.Append(smp.Interval, smp.End, us(smp.DiskLoad))
		}
	}
	return ss
}

// Fig6Row is one interval of the LBICA decision timeline (Fig. 6): both
// loads plus the burst flag, census mix, and the policy in force.
type Fig6Row struct {
	Interval   int
	CacheLoad  float64 // µs
	DiskLoad   float64 // µs
	Burst      bool
	R, W, P, E float64 // census percentages at the interval's queue peak
	Group      string
	Policy     string
}

// Fig6 reconstructs the decision timeline from an LBICA run.
func Fig6(res *engine.Results) []Fig6Row {
	policyAt := make([]string, len(res.Samples))
	groupAt := make([]string, len(res.Samples))
	cur, curGroup := "WB", ""
	ti := 0
	for i := range res.Samples {
		for ti < len(res.Timeline) && res.Timeline[ti].Interval <= i {
			cur = res.Timeline[ti].Policy.String()
			curGroup = res.Timeline[ti].Group
			ti++
		}
		policyAt[i] = cur
		groupAt[i] = curGroup
	}
	rows := make([]Fig6Row, len(res.Samples))
	for i, smp := range res.Samples {
		total := float64(smp.Arrivals.Total())
		pct := func(n int) float64 {
			if total == 0 {
				return 0
			}
			return 100 * float64(n) / total
		}
		rows[i] = Fig6Row{
			Interval:  smp.Interval,
			CacheLoad: us(smp.CacheLoad),
			DiskLoad:  us(smp.DiskLoad),
			Burst:     smp.Bottleneck,
			R:         pct(smp.Arrivals[block.AppRead]),
			W:         pct(smp.Arrivals[block.AppWrite]),
			P:         pct(smp.Arrivals[block.Promote]),
			E:         pct(smp.Arrivals[block.Evict]),
			Group:     groupAt[i],
			Policy:    policyAt[i],
		}
	}
	return rows
}

// WriteFig6CSV renders the timeline.
func WriteFig6CSV(w io.Writer, rows []Fig6Row) error {
	if _, err := fmt.Fprintln(w, "interval,cache_load_us,disk_load_us,burst,r_pct,w_pct,p_pct,e_pct,group,policy"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%d,%.1f,%.1f,%t,%.1f,%.1f,%.1f,%.1f,%s,%s\n",
			r.Interval, r.CacheLoad, r.DiskLoad, r.Burst, r.R, r.W, r.P, r.E, r.Group, r.Policy); err != nil {
			return err
		}
	}
	return nil
}

// Fig7Row is one bar group of Fig. 7: average end-to-end latency per
// workload per scheme.
type Fig7Row struct {
	Workload string
	AvgUS    map[string]float64
}

// Fig7 computes the average-latency comparison.
func Fig7(m Matrix) []Fig7Row {
	rows := make([]Fig7Row, 0, len(Workloads))
	for _, wl := range Workloads {
		row := Fig7Row{Workload: wl, AvgUS: map[string]float64{}}
		for _, sc := range Schemes {
			row.AvgUS[sc] = us(m[wl][sc].AppLatency.Mean())
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteFig7CSV renders the bars.
func WriteFig7CSV(w io.Writer, rows []Fig7Row) error {
	if _, err := fmt.Fprintln(w, "workload,wb_avg_us,sib_avg_us,lbica_avg_us"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%.1f,%.1f,%.1f\n",
			r.Workload, r.AvgUS[SchemeWB], r.AvgUS[SchemeSIB], r.AvgUS[SchemeLBICA]); err != nil {
			return err
		}
	}
	return nil
}

// Headlines are the paper's quoted aggregates.
type Headlines struct {
	// Per-workload cache-load reduction (mean of per-interval cache load),
	// percent, LBICA vs each baseline. Positive = LBICA lower.
	CacheLoadReductionVsWB  map[string]float64
	CacheLoadReductionVsSIB map[string]float64
	// Per-workload average-latency improvement, percent.
	LatencyImprovementVsWB  map[string]float64
	LatencyImprovementVsSIB map[string]float64
	// Averages across workloads.
	AvgCacheLoadReductionVsWB  float64
	AvgCacheLoadReductionVsSIB float64
	AvgLatencyImprovementVsWB  float64
	AvgLatencyImprovementVsSIB float64
	// Peak (best single workload) values.
	MaxCacheLoadReductionVsWB float64
	MaxLatencyImprovementVsWB float64
}

// ComputeHeadlines aggregates the matrix into the paper's headline
// numbers.
func ComputeHeadlines(m Matrix) Headlines {
	h := Headlines{
		CacheLoadReductionVsWB:  map[string]float64{},
		CacheLoadReductionVsSIB: map[string]float64{},
		LatencyImprovementVsWB:  map[string]float64{},
		LatencyImprovementVsSIB: map[string]float64{},
	}
	for _, wl := range Workloads {
		wb, sb, lb := m[wl][SchemeWB], m[wl][SchemeSIB], m[wl][SchemeLBICA]
		h.CacheLoadReductionVsWB[wl] = stats.PercentChange(wb.CacheLoadMean(), lb.CacheLoadMean())
		h.CacheLoadReductionVsSIB[wl] = stats.PercentChange(sb.CacheLoadMean(), lb.CacheLoadMean())
		h.LatencyImprovementVsWB[wl] = stats.PercentChange(float64(wb.AppLatency.Mean()), float64(lb.AppLatency.Mean()))
		h.LatencyImprovementVsSIB[wl] = stats.PercentChange(float64(sb.AppLatency.Mean()), float64(lb.AppLatency.Mean()))
	}
	n := float64(len(Workloads))
	for _, wl := range Workloads {
		h.AvgCacheLoadReductionVsWB += h.CacheLoadReductionVsWB[wl] / n
		h.AvgCacheLoadReductionVsSIB += h.CacheLoadReductionVsSIB[wl] / n
		h.AvgLatencyImprovementVsWB += h.LatencyImprovementVsWB[wl] / n
		h.AvgLatencyImprovementVsSIB += h.LatencyImprovementVsSIB[wl] / n
		if v := h.CacheLoadReductionVsWB[wl]; v > h.MaxCacheLoadReductionVsWB {
			h.MaxCacheLoadReductionVsWB = v
		}
		if v := h.LatencyImprovementVsWB[wl]; v > h.MaxLatencyImprovementVsWB {
			h.MaxLatencyImprovementVsWB = v
		}
	}
	return h
}

// WriteHeadlines renders the aggregates as a markdown-ish table.
func WriteHeadlines(w io.Writer, h Headlines) error {
	var sb strings.Builder
	sb.WriteString("| workload | cache-load vs WB | cache-load vs SIB | latency vs WB | latency vs SIB |\n")
	sb.WriteString("|----------|-----------------:|------------------:|--------------:|---------------:|\n")
	wls := make([]string, len(Workloads))
	copy(wls, Workloads)
	sort.Strings(wls)
	for _, wl := range Workloads {
		fmt.Fprintf(&sb, "| %-8s | %15.1f%% | %16.1f%% | %12.1f%% | %13.1f%% |\n",
			wl, h.CacheLoadReductionVsWB[wl], h.CacheLoadReductionVsSIB[wl],
			h.LatencyImprovementVsWB[wl], h.LatencyImprovementVsSIB[wl])
	}
	fmt.Fprintf(&sb, "| %-8s | %15.1f%% | %16.1f%% | %12.1f%% | %13.1f%% |\n",
		"average", h.AvgCacheLoadReductionVsWB, h.AvgCacheLoadReductionVsSIB,
		h.AvgLatencyImprovementVsWB, h.AvgLatencyImprovementVsSIB)
	_, err := io.WriteString(w, sb.String())
	return err
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
