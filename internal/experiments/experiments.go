// Package experiments regenerates the paper's evaluation section: every
// figure (Figs. 4–7) plus the headline aggregates quoted in the abstract
// and §IV, from full simulation runs of the 3 workloads × 3 schemes
// matrix.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"lbica/internal/block"
	"lbica/internal/core"
	"lbica/internal/engine"
	"lbica/internal/sib"
	"lbica/internal/sim"
	"lbica/internal/stats"
	"lbica/internal/workload"
)

// Schemes under comparison.
const (
	SchemeWB    = "WB"
	SchemeSIB   = "SIB"
	SchemeLBICA = "LBICA"
)

// Workloads of the evaluation.
const (
	WorkloadTPCC = "tpcc"
	WorkloadMail = "mail"
	WorkloadWeb  = "web"
)

// Workloads lists the evaluation workloads in paper order.
var Workloads = []string{WorkloadTPCC, WorkloadMail, WorkloadWeb}

// Schemes lists the schemes in paper order.
var Schemes = []string{SchemeWB, SchemeSIB, SchemeLBICA}

// Spec describes one run.
type Spec struct {
	Workload string
	Scheme   string
	Seed     int64
	// Intervals defaults to the paper's length for the workload (200;
	// 175 for web). Interval defaults to 200 ms. RateFactor defaults to 1.
	Intervals  int
	Interval   time.Duration
	RateFactor float64
}

// Normalize fills defaulted fields in place and returns the result.
func (s Spec) Normalize() Spec {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Intervals == 0 {
		s.Intervals = PaperIntervals(s.Workload)
	}
	if s.Interval == 0 {
		s.Interval = 200 * time.Millisecond
	}
	if s.RateFactor == 0 {
		s.RateFactor = 1
	}
	return s
}

// PaperIntervals returns the interval count the paper plots for a
// workload.
func PaperIntervals(wl string) int {
	if wl == WorkloadWeb {
		return 175
	}
	return 200
}

// NewGenerator builds the named workload generator. It panics on unknown
// names: specs are code, not user input.
func NewGenerator(spec Spec) *workload.PhaseGen {
	scale := workload.Scale{Interval: spec.Interval, Intervals: spec.Intervals, RateFactor: spec.RateFactor}
	g := sim.NewRNG(spec.Seed, "workload:"+spec.Workload)
	switch spec.Workload {
	case WorkloadTPCC:
		return workload.TPCC(scale, g)
	case WorkloadMail:
		return workload.MailServer(scale, g)
	case WorkloadWeb:
		return workload.WebServer(scale, g)
	default:
		panic(fmt.Sprintf("experiments: unknown workload %q", spec.Workload))
	}
}

// NewBalancer builds the scheme's balancer (nil for the WB baseline).
func NewBalancer(scheme string) engine.Balancer {
	switch scheme {
	case SchemeWB:
		return nil
	case SchemeSIB:
		return sib.New(sib.DefaultConfig())
	case SchemeLBICA:
		return core.New(core.DefaultConfig())
	default:
		panic(fmt.Sprintf("experiments: unknown scheme %q", scheme))
	}
}

// Run executes one workload × scheme simulation.
func Run(spec Spec) *engine.Results {
	spec = spec.Normalize()
	cfg := engine.DefaultConfig()
	cfg.Seed = spec.Seed
	cfg.MonitorEvery = spec.Interval
	gen := NewGenerator(spec)
	st := engine.New(cfg, gen, NewBalancer(spec.Scheme))
	res := st.Run(spec.Intervals)
	res.Workload = spec.Workload
	return res
}

// Matrix holds the 3×3 evaluation results indexed [workload][scheme].
type Matrix map[string]map[string]*engine.Results

// RunMatrix executes the full evaluation concurrently (each run is an
// independent simulation).
func RunMatrix(seed int64, rateFactor float64) Matrix {
	m := make(Matrix, len(Workloads))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, wl := range Workloads {
		m[wl] = make(map[string]*engine.Results, len(Schemes))
		for _, sc := range Schemes {
			wl, sc := wl, sc
			wg.Add(1)
			go func() {
				defer wg.Done()
				res := Run(Spec{Workload: wl, Scheme: sc, Seed: seed, RateFactor: rateFactor})
				mu.Lock()
				m[wl][sc] = res
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	return m
}

// Fig4 returns the Fig. 4 series for one workload: per-interval I/O cache
// load (max latency, µs) under each scheme.
func Fig4(m Matrix, wl string) *stats.SeriesSet {
	ss := stats.NewSeriesSet("fig4-" + wl + "-cache-load")
	for _, sc := range Schemes {
		res := m[wl][sc]
		s := ss.Get(sc)
		for _, smp := range res.Samples {
			s.Append(smp.Interval, smp.End, us(smp.CacheLoad))
		}
	}
	return ss
}

// Fig5 returns the Fig. 5 series for one workload: per-interval disk-
// subsystem load (max latency, µs) under each scheme.
func Fig5(m Matrix, wl string) *stats.SeriesSet {
	ss := stats.NewSeriesSet("fig5-" + wl + "-disk-load")
	for _, sc := range Schemes {
		res := m[wl][sc]
		s := ss.Get(sc)
		for _, smp := range res.Samples {
			s.Append(smp.Interval, smp.End, us(smp.DiskLoad))
		}
	}
	return ss
}

// Fig6Row is one interval of the LBICA decision timeline (Fig. 6): both
// loads plus the burst flag, census mix, and the policy in force.
type Fig6Row struct {
	Interval   int
	CacheLoad  float64 // µs
	DiskLoad   float64 // µs
	Burst      bool
	R, W, P, E float64 // census percentages at the interval's queue peak
	Group      string
	Policy     string
}

// Fig6 reconstructs the decision timeline from an LBICA run.
func Fig6(res *engine.Results) []Fig6Row {
	policyAt := make([]string, len(res.Samples))
	groupAt := make([]string, len(res.Samples))
	cur, curGroup := "WB", ""
	ti := 0
	for i := range res.Samples {
		for ti < len(res.Timeline) && res.Timeline[ti].Interval <= i {
			cur = res.Timeline[ti].Policy.String()
			curGroup = res.Timeline[ti].Group
			ti++
		}
		policyAt[i] = cur
		groupAt[i] = curGroup
	}
	rows := make([]Fig6Row, len(res.Samples))
	for i, smp := range res.Samples {
		total := float64(smp.Arrivals.Total())
		pct := func(n int) float64 {
			if total == 0 {
				return 0
			}
			return 100 * float64(n) / total
		}
		rows[i] = Fig6Row{
			Interval:  smp.Interval,
			CacheLoad: us(smp.CacheLoad),
			DiskLoad:  us(smp.DiskLoad),
			Burst:     smp.Bottleneck,
			R:         pct(smp.Arrivals[block.AppRead]),
			W:         pct(smp.Arrivals[block.AppWrite]),
			P:         pct(smp.Arrivals[block.Promote]),
			E:         pct(smp.Arrivals[block.Evict]),
			Group:     groupAt[i],
			Policy:    policyAt[i],
		}
	}
	return rows
}

// WriteFig6CSV renders the timeline.
func WriteFig6CSV(w io.Writer, rows []Fig6Row) error {
	if _, err := fmt.Fprintln(w, "interval,cache_load_us,disk_load_us,burst,r_pct,w_pct,p_pct,e_pct,group,policy"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%d,%.1f,%.1f,%t,%.1f,%.1f,%.1f,%.1f,%s,%s\n",
			r.Interval, r.CacheLoad, r.DiskLoad, r.Burst, r.R, r.W, r.P, r.E, r.Group, r.Policy); err != nil {
			return err
		}
	}
	return nil
}

// Fig7Row is one bar group of Fig. 7: average end-to-end latency per
// workload per scheme.
type Fig7Row struct {
	Workload string
	AvgUS    map[string]float64
}

// Fig7 computes the average-latency comparison.
func Fig7(m Matrix) []Fig7Row {
	rows := make([]Fig7Row, 0, len(Workloads))
	for _, wl := range Workloads {
		row := Fig7Row{Workload: wl, AvgUS: map[string]float64{}}
		for _, sc := range Schemes {
			row.AvgUS[sc] = us(m[wl][sc].AppLatency.Mean())
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteFig7CSV renders the bars.
func WriteFig7CSV(w io.Writer, rows []Fig7Row) error {
	if _, err := fmt.Fprintln(w, "workload,wb_avg_us,sib_avg_us,lbica_avg_us"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%.1f,%.1f,%.1f\n",
			r.Workload, r.AvgUS[SchemeWB], r.AvgUS[SchemeSIB], r.AvgUS[SchemeLBICA]); err != nil {
			return err
		}
	}
	return nil
}

// Headlines are the paper's quoted aggregates.
type Headlines struct {
	// Per-workload cache-load reduction (mean of per-interval cache load),
	// percent, LBICA vs each baseline. Positive = LBICA lower.
	CacheLoadReductionVsWB  map[string]float64
	CacheLoadReductionVsSIB map[string]float64
	// Per-workload average-latency improvement, percent.
	LatencyImprovementVsWB  map[string]float64
	LatencyImprovementVsSIB map[string]float64
	// Averages across workloads.
	AvgCacheLoadReductionVsWB  float64
	AvgCacheLoadReductionVsSIB float64
	AvgLatencyImprovementVsWB  float64
	AvgLatencyImprovementVsSIB float64
	// Peak (best single workload) values.
	MaxCacheLoadReductionVsWB float64
	MaxLatencyImprovementVsWB float64
}

// ComputeHeadlines aggregates the matrix into the paper's headline
// numbers.
func ComputeHeadlines(m Matrix) Headlines {
	h := Headlines{
		CacheLoadReductionVsWB:  map[string]float64{},
		CacheLoadReductionVsSIB: map[string]float64{},
		LatencyImprovementVsWB:  map[string]float64{},
		LatencyImprovementVsSIB: map[string]float64{},
	}
	for _, wl := range Workloads {
		wb, sb, lb := m[wl][SchemeWB], m[wl][SchemeSIB], m[wl][SchemeLBICA]
		h.CacheLoadReductionVsWB[wl] = stats.PercentChange(wb.CacheLoadMean(), lb.CacheLoadMean())
		h.CacheLoadReductionVsSIB[wl] = stats.PercentChange(sb.CacheLoadMean(), lb.CacheLoadMean())
		h.LatencyImprovementVsWB[wl] = stats.PercentChange(float64(wb.AppLatency.Mean()), float64(lb.AppLatency.Mean()))
		h.LatencyImprovementVsSIB[wl] = stats.PercentChange(float64(sb.AppLatency.Mean()), float64(lb.AppLatency.Mean()))
	}
	n := float64(len(Workloads))
	for _, wl := range Workloads {
		h.AvgCacheLoadReductionVsWB += h.CacheLoadReductionVsWB[wl] / n
		h.AvgCacheLoadReductionVsSIB += h.CacheLoadReductionVsSIB[wl] / n
		h.AvgLatencyImprovementVsWB += h.LatencyImprovementVsWB[wl] / n
		h.AvgLatencyImprovementVsSIB += h.LatencyImprovementVsSIB[wl] / n
		if v := h.CacheLoadReductionVsWB[wl]; v > h.MaxCacheLoadReductionVsWB {
			h.MaxCacheLoadReductionVsWB = v
		}
		if v := h.LatencyImprovementVsWB[wl]; v > h.MaxLatencyImprovementVsWB {
			h.MaxLatencyImprovementVsWB = v
		}
	}
	return h
}

// WriteHeadlines renders the aggregates as a markdown-ish table.
func WriteHeadlines(w io.Writer, h Headlines) error {
	var sb strings.Builder
	sb.WriteString("| workload | cache-load vs WB | cache-load vs SIB | latency vs WB | latency vs SIB |\n")
	sb.WriteString("|----------|-----------------:|------------------:|--------------:|---------------:|\n")
	wls := make([]string, len(Workloads))
	copy(wls, Workloads)
	sort.Strings(wls)
	for _, wl := range Workloads {
		fmt.Fprintf(&sb, "| %-8s | %15.1f%% | %16.1f%% | %12.1f%% | %13.1f%% |\n",
			wl, h.CacheLoadReductionVsWB[wl], h.CacheLoadReductionVsSIB[wl],
			h.LatencyImprovementVsWB[wl], h.LatencyImprovementVsSIB[wl])
	}
	fmt.Fprintf(&sb, "| %-8s | %15.1f%% | %16.1f%% | %12.1f%% | %13.1f%% |\n",
		"average", h.AvgCacheLoadReductionVsWB, h.AvgCacheLoadReductionVsSIB,
		h.AvgLatencyImprovementVsWB, h.AvgLatencyImprovementVsSIB)
	_, err := io.WriteString(w, sb.String())
	return err
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
