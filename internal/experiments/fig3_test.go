package experiments

import (
	"testing"
	"time"

	"lbica/internal/block"
	"lbica/internal/core"
	"lbica/internal/engine"
	"lbica/internal/sim"
	"lbica/internal/workload"
)

// Fig. 3 of the paper sketches the SSD-queue signature of four canonical
// workloads. These tests drive each primitive through the full stack (no
// balancer, WB policy) and check that the queue-arrival census carries the
// published signature and classifies into the intended group — the
// end-to-end validation of the characterization pipeline.

// runPrimitive executes gen for a few intervals and returns the aggregate
// SSD arrival census.
func runPrimitive(t *testing.T, gen workload.Generator, prewarm bool) block.Census {
	t.Helper()
	cfg := engine.DefaultConfig()
	cfg.Cache.Sets = 4096 // 32 Ki blocks = 128 MiB
	cfg.Cache.Ways = 8
	// Low watermarks so even a short write test exercises the flusher.
	cfg.Cache.DirtyHighWatermark = 0.05
	cfg.Cache.DirtyLowWatermark = 0.03
	cfg.MonitorEvery = 100 * time.Millisecond
	if prewarm {
		cfg.PrewarmBlocks = cfg.Cache.Sets * cfg.Cache.Ways
	} else {
		cfg.PrewarmBlocks = 0
	}
	res := engine.New(cfg, gen, nil).Run(10)
	if res.AppCompleted != res.AppSubmitted {
		t.Fatalf("run wedged: %d of %d", res.AppCompleted, res.AppSubmitted)
	}
	var agg block.Census
	for _, s := range res.Samples {
		for i, v := range s.Arrivals {
			agg[i] += v
		}
	}
	return agg
}

func TestFig3aRandomReadSignature(t *testing.T) {
	// Working set 3× the cache: hits serve from SSD (R), misses promote
	// (P) — Fig. 3a, Group 1.
	g := workload.RandomRead(time.Second, 6000, 96*1024, sim.NewRNG(41, "wl"))
	c := runPrimitive(t, g, true)
	if got := core.Classify(c, core.DefaultThresholds()); got != core.Group1RandomRead {
		t.Fatalf("census %v classified %v, want Group 1", c, got)
	}
	if c.Ratio(block.AppRead) < 0.3 || c.Ratio(block.Promote) < 0.1 {
		t.Errorf("R/P signature weak: %v", c)
	}
}

func TestFig3bMixedReadWriteSignature(t *testing.T) {
	// Cache-resident mixed load: reads hit (R), writes buffer (W) —
	// Fig. 3b, Group 2.
	g := workload.MixedRW(time.Second, 6000, 16*1024, sim.NewRNG(42, "wl"))
	c := runPrimitive(t, g, true)
	if got := core.Classify(c, core.DefaultThresholds()); got != core.Group2MixedRW {
		t.Fatalf("census %v classified %v, want Group 2", c, got)
	}
}

func TestFig3cWriteIntensiveSignature(t *testing.T) {
	// Write-intensive over a small set: buffered writes (W) plus flusher
	// evict-reads (E) — Fig. 3c, Group 3.
	g := workload.RandomWrite(time.Second, 6000, 16*1024, sim.NewRNG(43, "wl"))
	c := runPrimitive(t, g, true)
	got := core.Classify(c, core.DefaultThresholds())
	if got != core.Group3RandomWrite && got != core.Group3SeqWrite {
		t.Fatalf("census %v classified %v, want Group 3", c, got)
	}
	if c[block.Evict] == 0 {
		t.Error("no evict traffic in a sustained write burst (flusher idle?)")
	}
}

func TestFig3dSequentialReadSignature(t *testing.T) {
	// Cold streaming reads: every access misses and promotes — the queue
	// is essentially all P (Fig. 3d, Group 4), and LBICA's assignment for
	// it is WB because the disk serves the stream anyway.
	g := workload.SequentialRead(time.Second, 4000, 1<<21, sim.NewRNG(44, "wl"))
	c := runPrimitive(t, g, false)
	if got := core.Classify(c, core.DefaultThresholds()); got != core.Group4SeqRead {
		t.Fatalf("census %v classified %v, want Group 4", c, got)
	}
	if c.Ratio(block.Promote) < 0.6 {
		t.Errorf("P share %.2f, want promote-dominated", c.Ratio(block.Promote))
	}
}
