package experiments

import (
	"context"
	"testing"
)

// warmGroup is one grid coordinate's scheme group, the unit RunWarmShared
// plans over.
func warmGroup(wl string, volumes int, skew float64, intervals int) []Spec {
	specs := make([]Spec, len(Schemes)+1)
	for i, sc := range append(append([]string(nil), Schemes...), SchemeArrayLB) {
		specs[i] = Spec{Workload: wl, Scheme: sc, Seed: 11, Intervals: intervals,
			Volumes: volumes, RouteSkew: skew}
	}
	return specs
}

// TestRunWarmSharedMultiVolume is the tentpole's array extension of the
// warm-sharing contract: a multi-volume scheme group run through the
// shared-warmup planner is byte-identical to per-spec scratch runs, and
// the plan's outcomes say exactly how each member ran — the LBICA array
// leads, WB forks the whole array (the quiet-balancer window), SIB and
// the adaptive multi-volume ARRAY-LB fall back to scratch with their
// reasons recorded.
func TestRunWarmSharedMultiVolume(t *testing.T) {
	ctx := context.Background()
	const warmup, intervals = 10, 40
	for _, volumes := range []int{2, 3} {
		specs := warmGroup("mail", volumes, 1.2, intervals)
		if !CanShareWarmup(specs, warmup) {
			t.Fatalf("%d volumes: group unexpectedly unshareable", volumes)
		}
		got, plan := RunWarmShared(ctx, specs, warmup)
		wantKind := map[string]WarmOutcome{
			SchemeWB:      {Kind: WarmForked},
			SchemeSIB:     {Kind: WarmScratch, Reason: WarmReasonSIB},
			SchemeLBICA:   {Kind: WarmLeader},
			SchemeArrayLB: {Kind: WarmScratch, Reason: WarmReasonMultiVolume},
		}
		for i, s := range specs {
			if plan[i] != wantKind[s.Scheme] {
				t.Errorf("%d volumes, %s: outcome %+v, want %+v", volumes, s.Scheme, plan[i], wantKind[s.Scheme])
			}
			mustEqual(t, got[i], RunContext(ctx, s), s.Scheme)
		}
	}
}

// A warm group whose WB window has closed — the leader's balancer acted
// before the barrier — must fall back to a scratch WB run and say so.
func TestRunWarmSharedBalancerActedFallback(t *testing.T) {
	ctx := context.Background()
	const intervals = 40
	specs := warmGroup("mail", 2, 1.2, intervals)
	// A barrier deep into the run: by then the LBICA balancer has
	// bypassed or switched policy on the bursty mail mix.
	warmup := intervals - 1
	got, plan := RunWarmShared(ctx, specs, warmup)
	for i, s := range specs {
		if s.Scheme == SchemeWB {
			if plan[i].Kind != WarmScratch {
				t.Skipf("balancer quiet through %d intervals; no fallback to exercise", warmup)
			}
			if plan[i].Reason != WarmReasonBalancerActed {
				t.Errorf("WB fallback reason %q, want %q", plan[i].Reason, WarmReasonBalancerActed)
			}
		}
		mustEqual(t, got[i], RunContext(ctx, s), s.Scheme)
	}
}

// A group that cannot share at all (single member) still runs and
// reports the no-leader reason for every member.
func TestRunWarmSharedNoLeader(t *testing.T) {
	ctx := context.Background()
	specs := []Spec{{Workload: "mail", Scheme: SchemeLBICA, Seed: 11, Intervals: 20, Volumes: 2, RouteSkew: 1.2}}
	got, plan := RunWarmShared(ctx, specs, 5)
	if plan[0] != (WarmOutcome{Kind: WarmScratch, Reason: WarmReasonNoLeader}) {
		t.Errorf("singleton outcome %+v, want scratch/no-leader", plan[0])
	}
	mustEqual(t, got[0], RunContext(ctx, specs[0]), "singleton")
}
