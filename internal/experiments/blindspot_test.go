package experiments

import (
	"math"
	"testing"

	"lbica/internal/sim"
)

// TestDetectorBlindSpotShortTPCCHalfCache pins a known calibration blind
// spot recorded with the first sweep figures (CHANGES.md, PR 2): TPC-C at
// half the paper's cache size and only 50 intervals never trips the burst
// detector, so LBICA makes no policy decision and tracks the WB baseline
// at 1.00×. The paper-length run (200 intervals) does trigger. This test
// exists so any future change to core.Thresholds (or the detector's
// comparison) that opens or widens the blind spot surfaces visibly — if
// it starts triggering, the test fails and the CHANGES.md narrative (and
// any calibration notes built on it) must be updated deliberately.
// The blind spot is seed-sensitive (raw seed 1 happens to trip the
// detector once), so the test pins the exact seeds the recorded sweep
// used: the replicate streams sim.Stream(1, 0) and sim.Stream(1, 1) of
// `lbicasweep -seeds 2`.
func TestDetectorBlindSpotShortTPCCHalfCache(t *testing.T) {
	if testing.Short() {
		t.Skip("four 50-interval runs are beyond the -short budget")
	}
	for rep := 0; rep < 2; rep++ {
		seed := sim.Stream(1, rep)
		spec := Spec{Workload: WorkloadTPCC, Scheme: SchemeLBICA, CacheMult: 0.5, Intervals: 50, Seed: seed}
		lb := Run(spec)
		if flips := len(lb.Timeline); flips != 0 {
			t.Fatalf("replicate %d: LBICA made %d policy decisions at 50 intervals / 0.5× cache; the blind spot has closed — update CHANGES.md and this regression", rep, flips)
		}
		spec.Scheme = SchemeWB
		wb := Run(spec)
		lbLat, wbLat := float64(lb.AppLatency.Mean()), float64(wb.AppLatency.Mean())
		if wbLat == 0 {
			t.Fatal("WB baseline completed no requests")
		}
		if ratio := wbLat / lbLat; math.Abs(ratio-1) > 0.01 {
			t.Errorf("replicate %d: latency speedup vs WB = %.3f×, want 1.00× (no decision → identical behavior)", rep, ratio)
		}
	}
}
