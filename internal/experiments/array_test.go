package experiments

import (
	"reflect"
	"testing"

	"lbica/internal/core"
)

// Sharded parallel array runs must be byte-identical to the serial
// baseline at the spec level, for every routing policy.
func TestSpecArrayParallelMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"uniform", Spec{Workload: WorkloadTPCC, Scheme: SchemeLBICA, Intervals: 6, Volumes: 3}},
		{"hash", Spec{Workload: WorkloadMail, Scheme: SchemeLBICA, Intervals: 6, Volumes: 3, RoutePolicy: "hash"}},
		{"zipf", Spec{Workload: WorkloadWeb, Scheme: SchemeSIB, Intervals: 6, Volumes: 3, RouteSkew: 1.2}},
		{"array-lb", Spec{Workload: WorkloadTPCC, Scheme: SchemeArrayLB, Intervals: 6, Volumes: 3, RouteSkew: 1.2}},
		{"array-lb-p2c", Spec{Workload: WorkloadTPCC, Scheme: SchemeArrayLB, Intervals: 6, Volumes: 3, RouteVariant: "p2c"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial, parallel := tc.spec, tc.spec
			serial.ShardWorkers = 1
			parallel.ShardWorkers = 4
			a, b := Run(serial), Run(parallel)
			if !reflect.DeepEqual(a, b) {
				t.Fatal("parallel array run differs from serial baseline")
			}
			if a.AppCompleted == 0 {
				t.Fatal("array run completed no requests")
			}
			if len(a.Samples) != 6 {
				t.Fatalf("merged run has %d samples, want 6", len(a.Samples))
			}
		})
	}
}

// Volumes: 1 must take the exact single-stack path: identical results to a
// spec that never mentions the array fields.
func TestSpecSingleVolumeIdentity(t *testing.T) {
	base := Spec{Workload: WorkloadTPCC, Scheme: SchemeLBICA, Intervals: 8}
	one := base
	one.Volumes = 1
	one.ShardWorkers = 4 // must be inert at one volume
	if !reflect.DeepEqual(Run(base), Run(one)) {
		t.Fatal("Volumes: 1 results differ from the implicit single-stack run")
	}
}

// ARRAY-LB at one volume has nothing to balance across: it must run the
// exact single-stack LBICA pipeline, relabeled.
func TestSpecArrayLBSingleVolumeDegenerates(t *testing.T) {
	lb := Run(Spec{Workload: WorkloadTPCC, Scheme: SchemeLBICA, Intervals: 6})
	alb := Run(Spec{Workload: WorkloadTPCC, Scheme: SchemeArrayLB, Intervals: 6, Volumes: 1})
	if alb.Scheme != SchemeArrayLB {
		t.Fatalf("degenerate run labeled %q, want %q", alb.Scheme, SchemeArrayLB)
	}
	relabel := *lb
	relabel.Scheme = SchemeArrayLB
	if !reflect.DeepEqual(alb, &relabel) {
		t.Fatal("single-volume ARRAY-LB differs from plain LBICA beyond the label")
	}
}

func TestSpecNormalizePanicsOnBadArrayFields(t *testing.T) {
	for name, spec := range map[string]Spec{
		"negative volumes":         {Workload: WorkloadTPCC, Volumes: -1},
		"skew without array":       {Workload: WorkloadTPCC, RouteSkew: 1.2},
		"policy without array":     {Workload: WorkloadTPCC, RoutePolicy: "hash"},
		"unknown policy":           {Workload: WorkloadTPCC, Volumes: 2, RoutePolicy: "robin"},
		"skew under hash":          {Workload: WorkloadTPCC, Volumes: 2, RoutePolicy: "hash", RouteSkew: 1},
		"negative skew":            {Workload: WorkloadTPCC, Volumes: 2, RouteSkew: -0.5},
		"absurd width":             {Workload: WorkloadTPCC, Volumes: 100000},
		"bad thresholds":           {Workload: WorkloadTPCC, Thresholds: core.Thresholds{DominantPair: 1.5}},
		"policy under array-lb":    {Workload: WorkloadTPCC, Scheme: SchemeArrayLB, Volumes: 2, RoutePolicy: "zipf", RouteSkew: 1},
		"bad route variant":        {Workload: WorkloadTPCC, Scheme: SchemeArrayLB, Volumes: 2, RouteVariant: "nope"},
		"variant without array-lb": {Workload: WorkloadTPCC, Scheme: SchemeLBICA, Volumes: 2, RouteVariant: "p2c"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Normalize did not panic", name)
				}
			}()
			spec.Normalize()
		}()
	}
}

// The Thresholds knob must reach LBICA's classifier: with an unreachable
// census floor the classifier can never assign a group, so a run that
// flips policies under the paper calibration makes no decision at all.
func TestThresholdsKnobReachesClassifier(t *testing.T) {
	if testing.Short() {
		t.Skip("two 60-interval runs are beyond the -short budget")
	}
	base := Spec{Workload: WorkloadMail, Scheme: SchemeLBICA, Intervals: 60}
	if flips := len(Run(base).Timeline); flips == 0 {
		t.Fatal("baseline mail run made no policy decision; the probe below proves nothing")
	}
	muted := base
	muted.Thresholds = core.Thresholds{MinQueued: 1 << 20}
	if flips := len(Run(muted).Timeline); flips != 0 {
		t.Fatalf("MinQueued=2^20 still produced %d policy decisions — thresholds not plumbed through", flips)
	}
	// Zero fields inherit the paper defaults individually: overriding one
	// field must reproduce the default behavior when set to its default.
	pinned := base
	pinned.Thresholds = core.Thresholds{MinQueued: core.DefaultThresholds().MinQueued}
	if !reflect.DeepEqual(Run(pinned), Run(base)) {
		t.Fatal("explicitly setting the default MinQueued changed the run")
	}
}
