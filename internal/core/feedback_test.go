package core

import (
	"testing"
	"time"

	"lbica/internal/block"
	"lbica/internal/cache"
	"lbica/internal/engine"
	"lbica/internal/iostat"
)

// feedSampleWithDemand is feedSample plus a synthetic per-interval
// application-completion count, which drives the demand-hold logic.
func feedSampleWithDemand(st *engine.Stack, c block.Census, bottleneck bool, appDone int) {
	prevTick := time.Duration(len(st.Monitor().Samples())) * time.Millisecond
	for i := 0; i < appDone; i++ {
		st.Monitor().NoteAppDone(100 * time.Microsecond)
	}
	feedSampleAt(st, c, bottleneck, prevTick)
}

// feedSampleAt stages the queues and ticks the monitor at prevTick+1ms.
func feedSampleAt(st *engine.Stack, c block.Census, bottleneck bool, prevTick time.Duration) {
	for q := st.SSDQueue(); q.Depth() > 0; {
		q.Pop()
	}
	lba := int64(1 << 30)
	for o := block.Origin(0); int(o) < block.NumOrigins; o++ {
		for i := 0; i < c[o]; i++ {
			st.SSDQueue().Push(&block.Request{Origin: o, Extent: block.Extent{LBA: lba, Sectors: 8}}, prevTick)
			lba += 1024
		}
	}
	st.Monitor().NoteDepth(iostat.SSD, prevTick)
	if !bottleneck {
		for i := 0; i < 2*c.Total()+64; i++ {
			st.HDDQueue().Push(&block.Request{Origin: block.ReadMiss, Extent: block.Extent{LBA: lba, Sectors: 8}}, prevTick)
			lba += 1024
		}
	} else {
		for q := st.HDDQueue(); q.Depth() > 0; {
			q.Pop()
		}
	}
	st.Monitor().NoteDepth(iostat.HDD, prevTick)
	st.Monitor().Tick(prevTick + time.Millisecond)
}

// The demand hold: with the offered load high, clear intervals must not
// revert the policy; with it low, they must.
func TestDemandHoldKeepsPolicyUnderLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BurstOff = 2
	l := New(cfg)
	st := stackForBalancer(l)
	feedSampleWithDemand(st, census(44, 2, 51, 3), true, 0)
	if st.Cache().Policy() != cache.WO {
		t.Fatal("setup: WO not armed")
	}
	// The interval is 1 ms of virtual time; 14 completions at ~75 µs of
	// SSD service each ≈ utilization 1.05 ≫ the 0.4 hold threshold.
	for i := 0; i < 6; i++ {
		feedSampleWithDemand(st, census(0, 0, 0, 0), false, 14)
	}
	if st.Cache().Policy() != cache.WO {
		t.Fatal("demand hold failed: policy reverted while the offered load was high")
	}
	// Load vanishes → the demand EWMA decays below the hold threshold and
	// the policy reverts after BurstOff further clear intervals.
	for i := 0; i < 10; i++ {
		feedSampleWithDemand(st, census(0, 0, 0, 0), false, 0)
	}
	if st.Cache().Policy() != cache.WB {
		t.Fatalf("policy = %v, want WB after quiet intervals", st.Cache().Policy())
	}
}

func TestHoldDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HoldUtilization = 0
	cfg.BurstOff = 1
	l := New(cfg)
	st := stackForBalancer(l)
	feedSampleWithDemand(st, census(44, 2, 51, 3), true, 0)
	feedSampleWithDemand(st, census(0, 0, 0, 0), false, 1000) // demand high but hold disabled
	if st.Cache().Policy() != cache.WB {
		t.Fatal("hold disabled but policy survived a clear interval")
	}
}

// Census reconstruction: a random-read burst that stays bottlenecked under
// WO presents an R-only queue; the suppressed promotes (read misses) must
// keep the classification at Group 1 rather than flipping it.
func TestReconstructionKeepsG1UnderWO(t *testing.T) {
	l := New(DefaultConfig())
	st := stackForBalancer(l)
	feedSampleWithDemand(st, census(44, 2, 51, 3), true, 0) // arm WO
	if l.Group() != Group1RandomRead {
		t.Fatal("setup failed")
	}
	// Generate read misses through the cache (WO: no promotes appear in
	// the queue census, but the misses are counted in cache stats).
	for i := int64(0); i < 30; i++ {
		st.Cache().Access(block.Read, block.Extent{LBA: (1 << 25) + i*1024, Sectors: 8}, 0)
	}
	// The raw queue census is pure R — without reconstruction this reads
	// "reads only"; with it, P ≈ misses and G1 persists with WO in force.
	feedSampleWithDemand(st, census(40, 0, 0, 0), true, 0)
	if st.Cache().Policy() != cache.WO {
		t.Fatalf("policy = %v, want WO preserved by census reconstruction", st.Cache().Policy())
	}
	if l.Group() != Group1RandomRead {
		t.Fatalf("group = %v", l.Group())
	}
}

// When suppressed promotes dominate the reconstructed census (≥ the
// Group-4 threshold), the workload genuinely looks like streaming misses
// and LBICA hands it back to WB — the paper's Group-4 rule.
func TestReconstructionPromoteFloodBecomesG4(t *testing.T) {
	l := New(DefaultConfig())
	st := stackForBalancer(l)
	feedSampleWithDemand(st, census(44, 2, 51, 3), true, 0) // arm WO
	for i := int64(0); i < 90; i++ {
		st.Cache().Access(block.Read, block.Extent{LBA: (1 << 27) + i*1024, Sectors: 8}, 0)
	}
	feedSampleWithDemand(st, census(30, 0, 0, 0), true, 0) // P share 0.75 → G4
	if l.Group() != Group4SeqRead {
		t.Fatalf("group = %v, want G4", l.Group())
	}
	if st.Cache().Policy() != cache.WB {
		t.Fatalf("policy = %v, want WB for G4", st.Cache().Policy())
	}
}

// Under RO, diverted writes vanish from the queue; the reconstruction must
// re-add them so a mixed workload stays Group 2.
func TestReconstructionKeepsG2UnderRO(t *testing.T) {
	l := New(DefaultConfig())
	st := stackForBalancer(l)
	feedSampleWithDemand(st, census(14, 70, 4, 12), true, 0) // arm RO
	if st.Cache().Policy() != cache.RO {
		t.Fatal("setup failed")
	}
	// Writes under RO: all diverted (counted in cache stats as writes).
	for i := int64(0); i < 70; i++ {
		st.Cache().Access(block.Write, block.Extent{LBA: (1 << 26) + i*1024, Sectors: 8}, 0)
	}
	// Queue shows only reads; reconstruction adds the 70 diverted writes.
	feedSampleWithDemand(st, census(30, 0, 0, 0), true, 0)
	if st.Cache().Policy() != cache.RO {
		t.Fatalf("policy = %v, want RO preserved", st.Cache().Policy())
	}
}

func TestNewClampsConfig(t *testing.T) {
	l := New(Config{BurstOn: 0, BurstOff: -1})
	if l.cfg.BurstOn != 1 || l.cfg.BurstOff != 1 {
		t.Errorf("clamped config = %+v", l.cfg)
	}
}

func TestGroupStringsTotal(t *testing.T) {
	for g := GroupUnknown; g <= Group4SeqRead; g++ {
		if g.String() == "" {
			t.Errorf("group %d has empty name", g)
		}
	}
	if Group(99).String() == "" {
		t.Error("out-of-range group must still render")
	}
}

func TestKeepThresholdRespondsToDiskQueue(t *testing.T) {
	l := New(DefaultConfig())
	st := stackForBalancer(l)
	feedSampleWithDemand(st, census(5, 700, 3, 92), true, 0) // arm G3
	for st.HDDQueue().Depth() > 0 {
		st.HDDQueue().Pop()
	}
	emptyKeep := l.keepThreshold()
	// Load the disk queue: the threshold must rise (bypassing is less
	// attractive when the disk is busy).
	for i := 0; i < 50; i++ {
		st.HDDQueue().Push(&block.Request{Origin: block.ReadMiss,
			Extent: block.Extent{LBA: int64(1+i) * 4096, Sectors: 8}}, 0)
	}
	if loaded := l.keepThreshold(); loaded <= emptyKeep {
		t.Errorf("keep threshold %d with a loaded disk not above %d with an idle one", loaded, emptyKeep)
	}
}

// LBICA's admission path must never bypass while disarmed, whatever the
// queue looks like.
func TestAdmitDisarmed(t *testing.T) {
	l := New(DefaultConfig())
	st := stackForBalancer(l)
	for i := int64(0); i < 1000; i++ {
		st.SSDQueue().Push(&block.Request{Origin: block.AppWrite,
			Extent: block.Extent{LBA: i * 1024, Sectors: 8}}, 0)
	}
	if !l.Admit(block.Write, block.Extent{LBA: 0, Sectors: 8}) {
		t.Error("disarmed balancer must admit everything")
	}
}
