package core

import (
	"testing"
	"testing/quick"
	"time"

	"lbica/internal/block"
	"lbica/internal/cache"
	"lbica/internal/engine"
	"lbica/internal/iostat"
	"lbica/internal/sim"
	"lbica/internal/workload"
)

func census(r, w, p, e int) block.Census {
	var c block.Census
	c[block.AppRead] = r
	c[block.AppWrite] = w
	c[block.Promote] = p
	c[block.Evict] = e
	return c
}

// Every census mix the paper quotes in §IV-C must classify into the group
// the paper assigns.
func TestClassifyPaperMixes(t *testing.T) {
	th := DefaultThresholds()
	cases := []struct {
		name       string
		r, w, p, e int
		want       Group
	}{
		// TPC-C interval 3: R 44%, W 2.2%, P 51%, E 2.8% → random read.
		{"tpcc-iv3", 440, 22, 510, 28, Group1RandomRead},
		// Mail interval 23: R 13.9%, W 70.4%, P 3.9%, E 11.8% → mixed RW.
		{"mail-iv23", 139, 704, 39, 118, Group2MixedRW},
		// Mail interval 128: majority R and P → random read.
		{"mail-iv128", 450, 30, 490, 30, Group1RandomRead},
		// Mail interval 134: W+E about 90% → write intensive.
		{"mail-iv134", 60, 700, 40, 200, Group3RandomWrite},
		// Web interval 1: R 17.9%, W 63.8%, P 7.9%, E 10.4% → mixed RW.
		{"web-iv1", 179, 638, 79, 104, Group2MixedRW},
	}
	for _, c := range cases {
		if got := Classify(census(c.r, c.w, c.p, c.e), th); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassifyGroup4BeatsGroup1(t *testing.T) {
	// A 70% promote queue is a sequential-read signature even though R+P
	// also dominates.
	if got := Classify(census(200, 50, 700, 50), DefaultThresholds()); got != Group4SeqRead {
		t.Errorf("got %v, want Group4SeqRead", got)
	}
}

func TestClassifyGroup3SeqWrite(t *testing.T) {
	// Evicts outnumbering writes → sequential write.
	if got := Classify(census(20, 300, 30, 650), DefaultThresholds()); got != Group3SeqWrite {
		t.Errorf("got %v, want Group3SeqWrite", got)
	}
}

func TestClassifyImpossibleMixesUnknown(t *testing.T) {
	th := DefaultThresholds()
	// R+E dominant and W+P dominant "may not occur" (paper §III-B).
	if got := Classify(census(500, 30, 30, 440), th); got != GroupUnknown {
		t.Errorf("R+E mix classified as %v", got)
	}
	if got := Classify(census(30, 500, 440, 30), th); got != GroupUnknown {
		t.Errorf("W+P mix classified as %v", got)
	}
}

func TestClassifyEmptyAndTinyQueues(t *testing.T) {
	th := DefaultThresholds()
	if got := Classify(block.Census{}, th); got != GroupUnknown {
		t.Errorf("empty census = %v", got)
	}
	if got := Classify(census(3, 0, 3, 0), th); got != GroupUnknown {
		t.Errorf("under-populated census = %v", got)
	}
}

// Property: classification is scale-invariant — multiplying every count by
// a constant never changes the group.
func TestClassifyScaleInvariantProperty(t *testing.T) {
	th := DefaultThresholds()
	f := func(r, w, p, e uint8, k uint8) bool {
		scale := int(k%16) + 2
		base := census(int(r), int(w), int(p), int(e))
		if base.Total() < th.MinQueued {
			return true
		}
		scaled := census(int(r)*scale, int(w)*scale, int(p)*scale, int(e)*scale)
		return Classify(base, th) == Classify(scaled, th)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGroupPolicyTable(t *testing.T) {
	want := map[Group]cache.Policy{
		Group1RandomRead:  cache.WO,
		Group2MixedRW:     cache.RO,
		Group3RandomWrite: cache.WB,
		Group3SeqWrite:    cache.WB,
		Group4SeqRead:     cache.WB,
		GroupUnknown:      cache.WB,
	}
	for g, p := range want {
		if got := g.Policy(); got != p {
			t.Errorf("%v.Policy() = %v, want %v", g, got, p)
		}
	}
}

// stackForBalancer builds a small stack with l attached and returns both.
func stackForBalancer(l *LBICA) *engine.Stack {
	cfg := engine.DefaultConfig()
	cfg.Cache.Sets = 256
	cfg.Cache.Ways = 4
	cfg.PrewarmBlocks = 0
	cfg.MonitorEvery = 50 * time.Millisecond
	gen := workload.RandomRead(10*time.Millisecond, 100, 64, sim.NewRNG(1, "wl"))
	return engine.New(cfg, gen, l)
}

// feedSample pushes a synthetic closed interval into the balancer by
// ticking the monitor with a staged queue census. Building the queue state
// by hand keeps these tests device-independent. Interval boundaries are
// synthesized 1 ms apart so the monitor's time-averaged depths track the
// staged queues.
func feedSample(st *engine.Stack, c block.Census, bottleneck bool) {
	prevTick := time.Duration(len(st.Monitor().Samples())) * time.Millisecond
	// Populate the SSD queue so that the census and depth match c.
	for q := st.SSDQueue(); q.Depth() > 0; {
		q.Pop()
	}
	lba := int64(1 << 30)
	for o := block.Origin(0); int(o) < block.NumOrigins; o++ {
		for i := 0; i < c[o]; i++ {
			st.SSDQueue().Push(&block.Request{Origin: o, Extent: block.Extent{LBA: lba, Sectors: 8}}, prevTick)
			lba += 1024
		}
	}
	st.Monitor().NoteDepth(iostat.SSD, prevTick)
	if !bottleneck {
		// Pile the disk queue high enough that the disk side dominates.
		for i := 0; i < 2*c.Total()+64; i++ {
			st.HDDQueue().Push(&block.Request{Origin: block.ReadMiss, Extent: block.Extent{LBA: lba, Sectors: 8}}, prevTick)
			lba += 1024
		}
	} else {
		for q := st.HDDQueue(); q.Depth() > 0; {
			q.Pop()
		}
	}
	st.Monitor().NoteDepth(iostat.HDD, prevTick)
	st.Monitor().Tick(prevTick + time.Millisecond)
}

func TestLBICAAssignsWOForRandomReadBurst(t *testing.T) {
	l := New(DefaultConfig())
	st := stackForBalancer(l)
	feedSample(st, census(44, 2, 51, 3), true)
	if st.Cache().Policy() != cache.WO {
		t.Fatalf("policy = %v, want WO", st.Cache().Policy())
	}
	if l.Group() != Group1RandomRead {
		t.Errorf("group = %v", l.Group())
	}
}

func TestLBICAAssignsROForMixedBurst(t *testing.T) {
	l := New(DefaultConfig())
	st := stackForBalancer(l)
	feedSample(st, census(14, 70, 4, 12), true)
	if st.Cache().Policy() != cache.RO {
		t.Fatalf("policy = %v, want RO", st.Cache().Policy())
	}
}

func TestLBICAGroup3KeepsWBAndBypassesTail(t *testing.T) {
	l := New(DefaultConfig())
	st := stackForBalancer(l)
	feedSample(st, census(5, 700, 3, 92), true)
	if st.Cache().Policy() != cache.WB {
		t.Fatalf("policy = %v, want WB", st.Cache().Policy())
	}
	if l.Group() != Group3RandomWrite {
		t.Fatalf("group = %v", l.Group())
	}
	if l.TailBypassed() == 0 {
		t.Error("Group-3 burst did not bypass the queue tail")
	}
}

func TestLBICARevertsAfterClearIntervals(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BurstOff = 2
	l := New(cfg)
	st := stackForBalancer(l)
	feedSample(st, census(44, 2, 51, 3), true)
	if st.Cache().Policy() != cache.WO {
		t.Fatal("setup: WO not assigned")
	}
	feedSample(st, census(0, 0, 0, 0), false)
	if st.Cache().Policy() != cache.WO {
		t.Fatal("reverted before hysteresis expired")
	}
	feedSample(st, census(0, 0, 0, 0), false)
	if st.Cache().Policy() != cache.WB {
		t.Fatalf("policy = %v, want WB after %d clear intervals", st.Cache().Policy(), cfg.BurstOff)
	}
	if l.Reverts() == 0 && l.Group() != GroupUnknown {
		t.Error("revert not tracked")
	}
}

func TestLBICABurstOnHysteresis(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BurstOn = 3
	l := New(cfg)
	st := stackForBalancer(l)
	feedSample(st, census(44, 2, 51, 3), true)
	feedSample(st, census(44, 2, 51, 3), true)
	if st.Cache().Policy() != cache.WB {
		t.Fatal("armed before BurstOn consecutive bottleneck intervals")
	}
	feedSample(st, census(44, 2, 51, 3), true)
	if st.Cache().Policy() != cache.WO {
		t.Fatal("not armed after BurstOn intervals")
	}
}

func TestLBICAFollowsPhaseChange(t *testing.T) {
	l := New(DefaultConfig())
	st := stackForBalancer(l)
	feedSample(st, census(44, 2, 51, 3), true)  // G1 → WO
	feedSample(st, census(14, 70, 4, 12), true) // workload morphs → G2 → RO
	if st.Cache().Policy() != cache.RO {
		t.Fatalf("policy = %v, want RO after recharacterization", st.Cache().Policy())
	}
}

func TestLBICAUnknownCensusKeepsPolicy(t *testing.T) {
	l := New(DefaultConfig())
	st := stackForBalancer(l)
	feedSample(st, census(44, 2, 51, 3), true)     // G1 → WO
	feedSample(st, census(500, 30, 30, 440), true) // impossible mix
	if st.Cache().Policy() != cache.WO {
		t.Fatalf("policy churned on unknown census: %v", st.Cache().Policy())
	}
}

func TestLBICAAdmitBypassesG3WritesOverThreshold(t *testing.T) {
	l := New(DefaultConfig())
	st := stackForBalancer(l)
	feedSample(st, census(5, 700, 3, 92), true) // arm G3
	// The arming tail-bypass parked requests on the disk queue; drain it so
	// bypassing is attractive again, then refill the SSD queue deep.
	for st.HDDQueue().Depth() > 0 {
		st.HDDQueue().Pop()
	}
	lba := int64(1 << 31)
	for i := 0; i < 5000; i++ {
		st.SSDQueue().Push(&block.Request{Origin: block.AppWrite, Extent: block.Extent{LBA: lba, Sectors: 8}}, st.Now())
		lba += 1024
	}
	if l.Admit(block.Write, block.Extent{LBA: 0, Sectors: 8}) {
		t.Error("deep-queue G3 write must be bypassed")
	}
	if !l.Admit(block.Read, block.Extent{LBA: 0, Sectors: 8}) {
		t.Error("reads are never admission-bypassed")
	}
	// Drain the queue: writes admitted again.
	for st.SSDQueue().Depth() > 0 {
		st.SSDQueue().Pop()
	}
	if !l.Admit(block.Write, block.Extent{LBA: 0, Sectors: 8}) {
		t.Error("shallow-queue G3 write must be admitted")
	}
}

func TestLBICAAdmitAlwaysTrueOutsideG3(t *testing.T) {
	l := New(DefaultConfig())
	st := stackForBalancer(l)
	feedSample(st, census(44, 2, 51, 3), true) // G1
	_ = st
	if !l.Admit(block.Write, block.Extent{LBA: 0, Sectors: 8}) {
		t.Error("G1 writes must be admitted (WO handles them)")
	}
}
