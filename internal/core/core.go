// Package core implements LBICA — the paper's contribution: an I/O cache
// load balancer that (1) detects burst intervals by comparing the Eq. 1
// queue-time estimates of the SSD cache and the disk subsystem, (2)
// characterizes the running workload from the types of requests sitting in
// the SSD queue (R/W/P/E), and (3) assigns an adaptive cache write policy:
//
//	Group 1 (random read, R+P dominant)      → WO: stop promoting misses
//	Group 2 (mixed read/write, R+W dominant) → RO: bypass writes to disk
//	Group 3 (write intensive, W+E dominant)  → WB + bypass the queue tail
//	Group 4 (sequential read, P dominant)    → WB: the cache is never the
//	                                           bottleneck on streaming misses
//
// When the burst subsides the policy reverts to WB. Unlike SIB, no
// per-request cost estimation runs on the hot path: the policy switch is
// O(1) per interval and the only per-request work is a queue-depth
// comparison for Group 3 tail admission.
package core

import (
	"fmt"

	"lbica/internal/block"
	"lbica/internal/cache"
	"lbica/internal/engine"
	"lbica/internal/iostat"
	"lbica/internal/stats"
)

// Group is LBICA's workload classification (paper §III-B).
type Group int

// Workload groups.
const (
	// GroupUnknown means the census matched no group; LBICA leaves the
	// current policy in place.
	GroupUnknown Group = iota
	// Group1RandomRead: mostly application reads plus promotes.
	Group1RandomRead
	// Group2MixedRW: mostly application reads and writes.
	Group2MixedRW
	// Group3RandomWrite: mostly writes and evicts, writes dominating.
	Group3RandomWrite
	// Group3SeqWrite: mostly writes and evicts, evicts dominating.
	Group3SeqWrite
	// Group4SeqRead: almost all promotes (streaming misses).
	Group4SeqRead
)

var groupNames = map[Group]string{
	GroupUnknown:      "unknown",
	Group1RandomRead:  "G1/random-read",
	Group2MixedRW:     "G2/mixed-rw",
	Group3RandomWrite: "G3/random-write",
	Group3SeqWrite:    "G3/seq-write",
	Group4SeqRead:     "G4/seq-read",
}

func (g Group) String() string {
	if s, ok := groupNames[g]; ok {
		return s
	}
	return fmt.Sprintf("Group(%d)", int(g))
}

// Policy returns the cache write policy LBICA assigns to the group
// (paper §III-C). GroupUnknown maps to WB.
func (g Group) Policy() cache.Policy {
	switch g {
	case Group1RandomRead:
		return cache.WO
	case Group2MixedRW:
		return cache.RO
	default:
		return cache.WB
	}
}

// Thresholds tune the census classifier. The paper says each group
// "mainly includes" its two request types; these defaults make the quoted
// evaluation mixes land in their intended groups and are unit-tested
// against every mix the paper publishes.
type Thresholds struct {
	// DominantPair is the minimum combined share of the group's two
	// request types.
	DominantPair float64
	// MemberMin is the minimum individual share of each member of the
	// pair (except Group 3's E, which may be small when the flusher is
	// idle).
	MemberMin float64
	// PromoteAlone is the promote share that classifies Group 4 on its
	// own.
	PromoteAlone float64
	// ReadAlone is the application-read share that classifies Group 1 on
	// its own. Once WO is in force promotes stop appearing in the queue,
	// so a random-read burst's census degenerates to nearly pure R; this
	// rule keeps the classification stable under LBICA's own feedback.
	ReadAlone float64
	// MinQueued is the minimum census population worth classifying; a
	// near-drained queue's mix is noise, not workload character.
	MinQueued int
}

// DefaultThresholds returns the calibrated defaults.
func DefaultThresholds() Thresholds {
	return Thresholds{
		DominantPair: 0.65,
		MemberMin:    0.12,
		PromoteAlone: 0.60,
		ReadAlone:    0.75,
		MinQueued:    24,
	}
}

// Normalize fills zero fields with the calibrated paper defaults and
// returns the result — the contract behind the public Thresholds knob
// (lbica.Options.Thresholds / experiments.Spec.Thresholds): callers
// override only the fields they set, and the zero value is exactly
// DefaultThresholds. Call Validate first on user-supplied values; negative
// fields pass through Normalize unchanged so validation can reject them.
func (t Thresholds) Normalize() Thresholds {
	d := DefaultThresholds()
	if t.DominantPair == 0 {
		t.DominantPair = d.DominantPair
	}
	if t.MemberMin == 0 {
		t.MemberMin = d.MemberMin
	}
	if t.PromoteAlone == 0 {
		t.PromoteAlone = d.PromoteAlone
	}
	if t.ReadAlone == 0 {
		t.ReadAlone = d.ReadAlone
	}
	if t.MinQueued == 0 {
		t.MinQueued = d.MinQueued
	}
	return t
}

// Validate reports the first invalid field. Zero means "use the paper
// default" (Normalize); the share fields must otherwise be fractions in
// (0, 1], and MinQueued a positive count. Negatives are never clamped —
// a silently rewritten threshold would run a different classifier than
// the one the caller asked for.
func (t Thresholds) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"DominantPair", t.DominantPair},
		{"MemberMin", t.MemberMin},
		{"PromoteAlone", t.PromoteAlone},
		{"ReadAlone", t.ReadAlone},
	} {
		// NaN fails both comparisons' complements: require an explicit
		// in-range check so non-finite garbage cannot reach the classifier.
		if !(f.v >= 0 && f.v <= 1) {
			return fmt.Errorf("core: threshold %s = %v outside [0, 1] (0 means the paper default)", f.name, f.v)
		}
	}
	if t.MinQueued < 0 {
		return fmt.Errorf("core: threshold MinQueued = %d negative (0 means the paper default)", t.MinQueued)
	}
	return nil
}

// Classify buckets an SSD-queue census into a workload group.
func Classify(c block.Census, th Thresholds) Group {
	total := c.Total()
	if total < th.MinQueued {
		return GroupUnknown
	}
	r := c.Ratio(block.AppRead)
	w := c.Ratio(block.AppWrite)
	p := c.Ratio(block.Promote)
	e := c.Ratio(block.Evict)

	// Order matters: a pure-promote queue is Group 4 even though R+P would
	// also clear the pair threshold.
	if p >= th.PromoteAlone {
		return Group4SeqRead
	}
	if r+p >= th.DominantPair && r >= th.MemberMin && p >= th.MemberMin {
		return Group1RandomRead
	}
	if th.ReadAlone > 0 && r >= th.ReadAlone {
		return Group1RandomRead
	}
	if r+w >= th.DominantPair && r >= th.MemberMin && w >= th.MemberMin {
		return Group2MixedRW
	}
	if w+e >= th.DominantPair && w >= th.MemberMin {
		if w >= e {
			return Group3RandomWrite
		}
		return Group3SeqWrite
	}
	// R+E- or W+P-dominant mixes "may not occur during a workload
	// execution" (paper §III-B); everything else is unknown.
	return GroupUnknown
}

// Config parameterizes the balancer.
type Config struct {
	Thresholds Thresholds
	// BurstOn is how many consecutive bottleneck intervals arm the
	// balancer; BurstOff is how many clear intervals revert it to WB.
	// Hysteresis prevents policy thrashing between adjacent intervals.
	BurstOn  int
	BurstOff int
	// TailBypass enables the Group-3 bypass machinery — both the one-shot
	// redirection of the queued tail at detection time and the continuous
	// admission bypass of writes arriving beyond the bottleneck threshold.
	// On by default; the ablation harness turns it off.
	TailBypass bool
	// Recharacterize re-runs classification on every bottleneck interval
	// while armed, letting the policy follow phase changes (on by
	// default).
	Recharacterize bool
	// HoldUtilization keeps the balancer armed, even when Eq. 1 reads
	// clear, while the application's offered load would occupy at least
	// this fraction of the SSD's service capacity. Without a hold the
	// controller oscillates: the assigned policy drains the SSD queue,
	// the burst signal disappears, the policy reverts to WB, and the
	// queue refills. The paper leaves the revert rule unspecified; this
	// demand-based hold is our stabilization, documented in DESIGN.md.
	// Zero disables the hold.
	HoldUtilization float64
}

// DefaultConfig returns the calibrated defaults.
func DefaultConfig() Config {
	return Config{
		Thresholds:      DefaultThresholds(),
		BurstOn:         1,
		BurstOff:        4,
		TailBypass:      true,
		Recharacterize:  true,
		HoldUtilization: 0.40,
	}
}

// LBICA is the load balancer. It implements engine.Balancer.
type LBICA struct {
	cfg Config
	st  *engine.Stack

	burstRun int
	clearRun int
	armed    bool
	group    Group

	// decision counters, exposed for tests and the experiment harness
	bursts      int
	reverts     int
	tailBypass  int
	lastApplied cache.Policy

	// demandEWMA smooths the offered-load estimate across intervals so a
	// single OFF-period-heavy interval cannot trigger a revert.
	demandEWMA stats.EWMA

	// Counter snapshots for census reconstruction: once a policy diverts
	// traffic away from the SSD queue, the diverted requests no longer
	// appear in the queue census, which would make the classifier misread
	// its own feedback as a workload change. The deltas below restore
	// them before classification.
	prevWrites     uint64
	prevReadMisses uint64
	prevBypassed   uint64
}

// New builds an LBICA balancer.
func New(cfg Config) *LBICA {
	if cfg.BurstOn < 1 {
		cfg.BurstOn = 1
	}
	if cfg.BurstOff < 1 {
		cfg.BurstOff = 1
	}
	return &LBICA{
		cfg:         cfg,
		group:       GroupUnknown,
		lastApplied: cache.WB,
		demandEWMA:  stats.EWMA{Alpha: 0.3},
	}
}

// Name implements engine.Balancer.
func (l *LBICA) Name() string { return "LBICA" }

// Group returns the current classification (GroupUnknown when not armed).
func (l *LBICA) Group() Group { return l.group }

// Bursts returns how many burst intervals acted on.
func (l *LBICA) Bursts() int { return l.bursts }

// Reverts returns how many times the policy reverted to WB.
func (l *LBICA) Reverts() int { return l.reverts }

// TailBypassed returns how many queued requests the Group-3 rule moved.
func (l *LBICA) TailBypassed() int { return l.tailBypass }

// Attach implements engine.Balancer.
func (l *LBICA) Attach(st *engine.Stack) {
	l.st = st
	st.Cache().SetPolicy(cache.WB)
	st.Monitor().OnClose(l.onSample)
}

// ForkFor implements engine.ForkableBalancer: the classifier state
// (burst runs, arming, group, EWMA, counter snapshots) is all plain
// values, so the clone is a struct copy re-pointed at the forked stack.
// Unlike Attach it sets no policy — the forked cache already carries
// whatever policy this balancer last applied.
func (l *LBICA) ForkFor(st *engine.Stack) engine.Balancer {
	l2 := *l
	l2.st = st
	st.Monitor().OnClose(l2.onSample)
	return &l2
}

func (l *LBICA) onSample(s iostat.Sample) {
	l.demandEWMA.Add(l.demandUtil(s))
	adjusted := l.reconstructCensus(s)
	if !s.Bottleneck {
		l.burstRun = 0
		if l.armed && l.cfg.HoldUtilization > 0 && l.demandEWMA.Value() >= l.cfg.HoldUtilization {
			// The queue reads clear only because the assigned policy keeps
			// shedding load; the offered load would re-congest a WB cache,
			// so the burst itself is still live.
			l.clearRun = 0
			return
		}
		l.clearRun++
		if l.armed && l.clearRun >= l.cfg.BurstOff {
			l.disarm()
		}
		return
	}
	l.clearRun = 0
	l.burstRun++
	if l.burstRun < l.cfg.BurstOn {
		return
	}
	if l.armed && !l.cfg.Recharacterize {
		return
	}
	l.bursts++
	g := Classify(adjusted, l.cfg.Thresholds)
	l.apply(g, s)
}

// demandUtil estimates the fraction of the SSD's service capacity the
// interval's application demand would occupy if it all flowed through the
// cache — the projection behind the revert decision.
func (l *LBICA) demandUtil(s iostat.Sample) float64 {
	span := s.End - s.Start
	if span <= 0 {
		return 0
	}
	return float64(s.AppCompleted) * float64(l.st.SSDLatency()) / float64(span)
}

// reconstructCensus restores the requests the active policy diverted away
// from the SSD queue: suppressed promotes under WO, bypassed writes under
// RO or a Group-3 WB. Without the correction, the classifier would read
// its own load-shedding as a workload change (e.g. a write burst under RO
// leaves a read-only queue behind). The base census is the interval's
// arrival census, which shares units with the per-interval diversion
// deltas.
func (l *LBICA) reconstructCensus(s iostat.Sample) block.Census {
	cst := l.st.Cache().Stats()
	byp := l.st.Bypassed()
	adj := s.Arrivals
	if l.armed {
		switch l.lastApplied {
		case cache.WO:
			adj[block.Promote] += int(cst.ReadMisses - l.prevReadMisses)
		case cache.RO:
			adj[block.AppWrite] += int(cst.Writes - l.prevWrites)
		default:
			adj[block.AppWrite] += int(byp - l.prevBypassed)
		}
	}
	l.prevWrites = cst.Writes
	l.prevReadMisses = cst.ReadMisses
	l.prevBypassed = byp
	return adj
}

func (l *LBICA) apply(g Group, s iostat.Sample) {
	if g == GroupUnknown {
		// Keep whatever is in force; an unreadable census is no reason to
		// churn the policy.
		l.armed = true
		return
	}
	l.group = g
	p := g.Policy()
	if p != l.lastApplied {
		l.st.Cache().SetPolicy(p)
		l.st.NotePolicy(p, g.String())
		l.lastApplied = p
	}
	l.armed = true

	if (g == Group3RandomWrite || g == Group3SeqWrite) && l.cfg.TailBypass {
		l.tailBypass += l.st.RedirectTail(l.keepThreshold())
	}
}

func (l *LBICA) disarm() {
	l.armed = false
	l.group = GroupUnknown
	if l.lastApplied != cache.WB {
		l.st.Cache().SetPolicy(cache.WB)
		l.st.NotePolicy(cache.WB, "revert")
		l.lastApplied = cache.WB
	}
}

// keepThreshold is the bottleneck position: queue slots whose estimated
// wait (Eq. 1 per position) still beats what the disk subsystem would
// offer right now. Requests beyond it are better served by the disk.
func (l *LBICA) keepThreshold() int {
	disk := float64(l.st.HDDQueue().Depth()+1) * float64(l.st.HDDLatency())
	keep := int(disk / float64(l.st.SSDLatency()))
	if keep < 1 {
		keep = 1
	}
	return keep
}

// Admit implements engine.Balancer: during an armed Group-3 burst, writes
// arriving beyond the bottleneck threshold go straight to the disk
// subsystem; everything else flows through the cache. O(1) per request —
// the design point the paper contrasts against SIB's per-request cost
// estimation.
func (l *LBICA) Admit(op block.Op, e block.Extent) bool {
	if !l.armed || op != block.Write || !l.cfg.TailBypass {
		return true
	}
	if l.group != Group3RandomWrite && l.group != Group3SeqWrite {
		return true
	}
	return l.st.SSDQueue().Depth() <= l.keepThreshold()
}
