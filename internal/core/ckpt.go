package core

import (
	"lbica/internal/cache"
	"lbica/internal/ckpt"
)

// EncodeState serializes the balancer's classifier state — exactly the
// plain values ForkFor struct-copies: burst/clear runs, arming, group,
// decision counters, the demand EWMA, and the census-reconstruction
// counter snapshots. cfg and the stack handle are configuration.
func (l *LBICA) EncodeState(enc *ckpt.Encoder) {
	enc.Section("core.LBICA")
	enc.Int(l.burstRun)
	enc.Int(l.clearRun)
	enc.Bool(l.armed)
	enc.Int(int(l.group))
	enc.Int(l.bursts)
	enc.Int(l.reverts)
	enc.Int(l.tailBypass)
	enc.U8(uint8(l.lastApplied))
	l.demandEWMA.EncodeState(enc)
	enc.U64(l.prevWrites)
	enc.U64(l.prevReadMisses)
	enc.U64(l.prevBypassed)
}

// DecodeState restores the classifier in place on an attached balancer.
// The restored lastApplied is advisory only — the cache's own policy
// rides in the cache section; this field keeps the change-detection in
// apply/disarm consistent with it.
func (l *LBICA) DecodeState(d *ckpt.Decoder) {
	d.Section("core.LBICA")
	burstRun := d.Int()
	clearRun := d.Int()
	armed := d.Bool()
	group := Group(d.Int())
	bursts := d.Int()
	reverts := d.Int()
	tailBypass := d.Int()
	lastApplied := cache.Policy(d.U8())
	l.demandEWMA.DecodeState(d)
	prevWrites := d.U64()
	prevReadMisses := d.U64()
	prevBypassed := d.U64()
	if d.Err() != nil {
		return
	}
	if group < GroupUnknown || group > Group4SeqRead {
		d.Failf("core: invalid workload group %d", int(group))
		return
	}
	l.burstRun = burstRun
	l.clearRun = clearRun
	l.armed = armed
	l.group = group
	l.bursts = bursts
	l.reverts = reverts
	l.tailBypass = tailBypass
	l.lastApplied = lastApplied
	l.prevWrites = prevWrites
	l.prevReadMisses = prevReadMisses
	l.prevBypassed = prevBypassed
}
