// Package cli holds the entry-point scaffold the lbica commands share:
// SIGINT-to-context wiring and the flag conventions (help exits 0, parse
// errors exit 2 without being printed twice).
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
)

// ErrUsage marks a flag-parse failure the FlagSet has already reported to
// stderr; Main exits 2 without printing it a second time.
var ErrUsage = errors.New("usage error")

// Parse applies the shared conventions to fs.Parse: -h/-help returns
// flag.ErrHelp (usage has printed; Main exits 0), and any other parse
// failure returns ErrUsage (the FlagSet has reported it; Main exits 2).
func Parse(fs *flag.FlagSet, args []string) error {
	err := fs.Parse(args)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, flag.ErrHelp):
		return flag.ErrHelp
	default:
		return ErrUsage
	}
}

// StartProfiles begins the standard -cpuprofile/-memprofile collection.
// Either path may be empty (that profile is skipped). The returned stop
// function finishes both profiles — call it exactly once, after the
// workload, even on error paths (a partial CPU profile of an interrupted
// run is still useful).
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		var errs []error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			errs = append(errs, cpuFile.Close())
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				errs = append(errs, err)
			} else {
				runtime.GC() // materialize the final live set
				errs = append(errs, pprof.WriteHeapProfile(f), f.Close())
			}
		}
		return errors.Join(errs...)
	}, nil
}

// Main runs a command body with a SIGINT-cancelled context and maps its
// error to the process exit code: nil and flag.ErrHelp exit 0, ErrUsage
// exits 2, anything else is printed as "name: err" and exits 1.
func Main(name string, run func(ctx context.Context, args []string, stdout, stderr io.Writer) error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Once the first SIGINT has cancelled ctx, restore default signal
	// behavior so a second Ctrl-C force-quits even if the command body is
	// stuck (e.g. blocked writing a report to a full pipe).
	go func() {
		<-ctx.Done()
		stop()
	}()
	err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
	case errors.Is(err, ErrUsage):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, name+":", err)
		os.Exit(1)
	}
}
