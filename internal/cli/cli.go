// Package cli holds the entry-point scaffold the lbica commands share:
// SIGINT-to-context wiring and the flag conventions (help exits 0, parse
// errors exit 2 without being printed twice).
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
)

// ErrUsage marks a flag-parse failure the FlagSet has already reported to
// stderr; Main exits 2 without printing it a second time.
var ErrUsage = errors.New("usage error")

// Parse applies the shared conventions to fs.Parse: -h/-help returns
// flag.ErrHelp (usage has printed; Main exits 0), and any other parse
// failure returns ErrUsage (the FlagSet has reported it; Main exits 2).
func Parse(fs *flag.FlagSet, args []string) error {
	err := fs.Parse(args)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, flag.ErrHelp):
		return flag.ErrHelp
	default:
		return ErrUsage
	}
}

// Main runs a command body with a SIGINT-cancelled context and maps its
// error to the process exit code: nil and flag.ErrHelp exit 0, ErrUsage
// exits 2, anything else is printed as "name: err" and exits 1.
func Main(name string, run func(ctx context.Context, args []string, stdout, stderr io.Writer) error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Once the first SIGINT has cancelled ctx, restore default signal
	// behavior so a second Ctrl-C force-quits even if the command body is
	// stuck (e.g. blocked writing a report to a full pipe).
	go func() {
		<-ctx.Done()
		stop()
	}()
	err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
	case errors.Is(err, ErrUsage):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, name+":", err)
		os.Exit(1)
	}
}
