package checkpoint_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"lbica/internal/checkpoint"
	"lbica/internal/engine"
	"lbica/internal/experiments"
)

// fuzzSpec/fuzzStack shrink the cache to a few hundred lines so the
// committed corpus seeds stay small while still decoding genuinely (the
// tag array dominates a default-geometry payload at ~2 MiB).
func fuzzSpec() experiments.Spec {
	return experiments.Spec{Workload: experiments.WorkloadTPCC, Scheme: experiments.SchemeLBICA, Seed: 7, Intervals: 8}.Normalize()
}

func fuzzStack(spec experiments.Spec) *engine.Stack {
	cfg := engine.DefaultConfig()
	cfg.Seed = spec.Seed
	cfg.MonitorEvery = spec.Interval
	cfg.Cache.Sets = 64
	cfg.Cache.Ways = 4
	cfg.PrewarmBlocks = 256
	return engine.New(cfg, experiments.NewGenerator(spec), experiments.NewBalancerWithThresholds(spec.Scheme, spec.Thresholds))
}

// FuzzDecodeCheckpoint hardens both decode layers against arbitrary
// bytes. The input is treated two ways: as a container file (ReadFile
// verifies magic, CRC, version and payload lengths) and as a raw stack
// payload (DecodeStack bounds-checks every read onto a fresh stack).
// Either layer may reject — truncated, bit-flipped and hostile inputs
// must surface as errors, never as panics or unbounded allocations — and
// any container ReadFile accepts must survive a write-and-read round
// trip unchanged.
func FuzzDecodeCheckpoint(f *testing.F) {
	spec := fuzzSpec()
	leader := fuzzStack(spec)
	leader.Start(context.Background(), spec.Intervals)
	leader.StepTo(1 * spec.Interval)
	payload, err := checkpoint.EncodeStack(leader)
	if err != nil {
		f.Fatalf("EncodeStack: %v", err)
	}
	path := filepath.Join(f.TempDir(), "seed.ckpt")
	if err := checkpoint.WriteFile(path, "fuzz-seed", [][]byte{payload}); err != nil {
		f.Fatalf("WriteFile: %v", err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)                // genuine container with a genuine warmed payload
	f.Add(valid[:len(valid)/2]) // truncated mid-payload
	f.Add(valid[:len(valid)-2]) // truncated inside the trailing CRC
	flip := bytes.Clone(valid)
	flip[len(flip)/3] ^= 0x10
	f.Add(flip)     // bit-flipped body
	f.Add(payload)  // raw stack payload, no container framing
	f.Add([]byte{}) // empty
	f.Add([]byte("LBICACK1"))
	f.Add([]byte("not a checkpoint container at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		ctx := context.Background()
		p := filepath.Join(t.TempDir(), "in.ckpt")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if key, payloads, err := checkpoint.ReadFile(p); err == nil {
			// Accepted containers must round-trip: re-publish and re-read
			// to the same key and payload bytes.
			p2 := filepath.Join(t.TempDir(), "out.ckpt")
			if err := checkpoint.WriteFile(p2, key, payloads); err != nil {
				t.Fatalf("re-write of accepted container: %v", err)
			}
			key2, payloads2, err := checkpoint.ReadFile(p2)
			if err != nil {
				t.Fatalf("re-read of re-written container: %v", err)
			}
			if key2 != key || len(payloads2) != len(payloads) {
				t.Fatalf("round trip diverged: key %q/%q, %d/%d payloads", key, key2, len(payloads), len(payloads2))
			}
			for i := range payloads {
				if !bytes.Equal(payloads[i], payloads2[i]) {
					t.Fatalf("payload %d diverged across the round trip", i)
				}
			}
			for _, pl := range payloads {
				// Payloads of an accepted container still carry no trust:
				// decoding may error, but must not panic.
				_ = checkpoint.DecodeStack(ctx, fuzzStack(spec), pl)
			}
		}
		// The same bytes as a bare stack payload: error or restore, never
		// a panic.
		_ = checkpoint.DecodeStack(ctx, fuzzStack(spec), data)
	})
}
