package checkpoint_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"
	"time"

	"lbica/internal/checkpoint"
	"lbica/internal/engine"
	"lbica/internal/experiments"
)

func ckptSpec(wl, scheme string) experiments.Spec {
	return experiments.Spec{Workload: wl, Scheme: scheme, Seed: 7, Intervals: 60}.Normalize()
}

func buildStack(spec experiments.Spec) *engine.Stack {
	cfg := engine.DefaultConfig()
	cfg.Seed = spec.Seed
	cfg.MonitorEvery = spec.Interval
	return engine.New(cfg, experiments.NewGenerator(spec), experiments.NewBalancerWithThresholds(spec.Scheme, spec.Thresholds))
}

func runScratch(spec experiments.Spec) *engine.Results {
	st := buildStack(spec)
	return st.RunContext(context.Background(), spec.Intervals)
}

func mustEqual(t *testing.T, got, want *engine.Results, what string) {
	t.Helper()
	if reflect.DeepEqual(got, want) {
		return
	}
	for i := range want.Samples {
		if i >= len(got.Samples) {
			t.Errorf("%s: got %d samples, want %d", what, len(got.Samples), len(want.Samples))
			return
		}
		if !reflect.DeepEqual(got.Samples[i], want.Samples[i]) {
			t.Errorf("%s: first divergent sample %d\ngot:  %+v\nwant: %+v", what, i, got.Samples[i], want.Samples[i])
			return
		}
	}
	t.Errorf("%s: results diverge outside samples\ngot:  %+v\nwant: %+v", what, got, want)
}

// warmPayload steps a fresh stack to the barrier and encodes it.
func warmPayload(t *testing.T, spec experiments.Spec, barrier time.Duration) []byte {
	t.Helper()
	leader := buildStack(spec)
	leader.Start(context.Background(), spec.Intervals)
	leader.StepTo(barrier)
	payload, err := checkpoint.EncodeStack(leader)
	if err != nil {
		t.Fatalf("EncodeStack at %v: %v", barrier, err)
	}
	return payload
}

// TestRestoreEquivalence is the tentpole's pinned contract: a stack
// restored from a checkpoint taken mid-run and drained produces results
// byte-identical to an uninterrupted from-scratch run, for every scheme ×
// paper workload — including a restore of a restore's own re-encoding,
// and a fork taken off a restored stack.
func TestRestoreEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, wl := range experiments.Workloads {
		for _, sc := range experiments.Schemes {
			wl, sc := wl, sc
			t.Run(wl+"/"+sc, func(t *testing.T) {
				t.Parallel()
				spec := ckptSpec(wl, sc)
				want := runScratch(spec)

				barrier := time.Duration(spec.Intervals/3) * spec.Interval
				payload := warmPayload(t, spec, barrier)

				// Restore → drain.
				restored := buildStack(spec)
				if err := checkpoint.DecodeStack(ctx, restored, payload); err != nil {
					t.Fatalf("DecodeStack: %v", err)
				}

				// Re-encoding the restored stack before it runs must be
				// byte-identical to the original checkpoint — the encoder
				// observes no difference between a warmed stack and its
				// restoration.
				re, err := checkpoint.EncodeStack(restored)
				if err != nil {
					t.Fatalf("re-encode restored stack: %v", err)
				}
				if !reflect.DeepEqual(re, payload) {
					t.Errorf("re-encoded checkpoint differs from original (%d vs %d bytes)", len(re), len(payload))
				}

				// Fork off the restored stack before draining it: the warm
				// plan forks members off a cache-hit leader.
				fork, err := restored.Fork(ctx, nil)
				if err != nil {
					t.Fatalf("Fork after restore: %v", err)
				}

				restored.Drain()
				mustEqual(t, restored.Collect(), want, "restored stack")
				fork.Drain()
				mustEqual(t, fork.Collect(), want, "fork off restored stack")
			})
		}
	}
}

// TestRestoreWithInFlightEvictions pins the codec on the eviction request
// graph: the background flusher's SSD evict-read (evictOp) and the HDD
// writeback its completion issues (wbCompleter, the only leg that carries
// one — victim writebacks complete anonymously). The equivalence tests
// above never catch either window: their default-size cache stays under
// the dirty watermark so the flusher never starts. This one forces it —
// a small cold cache, watermarks low enough that tpcc's write fraction
// crosses them immediately — and scans sub-interval checkpoints until
// one holds both kinds in flight.
func TestRestoreWithInFlightEvictions(t *testing.T) {
	ctx := context.Background()
	spec := experiments.Spec{Workload: experiments.WorkloadTPCC, Scheme: experiments.SchemeWB,
		Seed: 7, Intervals: 4, RateFactor: 4}.Normalize()
	cfg := engine.DefaultConfig()
	cfg.Seed = spec.Seed
	cfg.MonitorEvery = spec.Interval
	cfg.Cache.Sets = 32
	cfg.Cache.DirtyHighWatermark = 0.02
	cfg.Cache.DirtyLowWatermark = 0.01
	cfg.PrewarmBlocks = 0
	// Bare-drive writebacks (no controller write cache): the HDD leg
	// takes spindle latency, stretching the wbCompleter window from the
	// default 150µs ack to a catchable millisecond scale.
	cfg.HDD.WriteCacheDepth = 0
	build := func() *engine.Stack {
		return engine.New(cfg, experiments.NewGenerator(spec),
			experiments.NewBalancerWithThresholds(spec.Scheme, spec.Thresholds))
	}
	want := build().RunContext(ctx, spec.Intervals)

	// StepTo accepts any event boundary, not just barriers: sub-interval
	// steps scan for the (microsecond-scale) window where both eviction
	// legs are in the queues at once.
	var payload []byte
	leader := build()
	leader.Start(ctx, spec.Intervals)
	step := spec.Interval / 500
	for at := step; at < time.Duration(spec.Intervals)*spec.Interval && payload == nil; at += step {
		leader.StepTo(at)
		p, err := checkpoint.EncodeStack(leader)
		if err != nil {
			t.Fatalf("EncodeStack at %v: %v", at, err)
		}
		// Completer kind tags land on the wire verbatim at each first
		// encounter, so the payload itself says what was in flight.
		if bytes.Contains(p, []byte("engine.evictOp")) && bytes.Contains(p, []byte("engine.wbCompleter")) {
			payload = p
		}
	}
	if payload == nil {
		t.Fatal("no step caught an eviction and a writeback in flight; shrink the cache further")
	}

	restored := build()
	if err := checkpoint.DecodeStack(ctx, restored, payload); err != nil {
		t.Fatalf("DecodeStack: %v", err)
	}
	restored.Drain()
	mustEqual(t, restored.Collect(), want, "restore with in-flight evictions")
}

// TestRestoreDropBalancerFork pins the warm plan's WB trick on a restored
// leader: while the balancer has not acted, a DropBalancer fork off a
// restored LBICA leader is byte-identical to a from-scratch WB run.
func TestRestoreDropBalancerFork(t *testing.T) {
	ctx := context.Background()
	lbSpec := ckptSpec(experiments.WorkloadTPCC, experiments.SchemeLBICA)
	wbSpec := ckptSpec(experiments.WorkloadTPCC, experiments.SchemeWB)

	barrier := 2 * lbSpec.Interval
	payload := warmPayload(t, lbSpec, barrier)
	restored := buildStack(lbSpec)
	if err := checkpoint.DecodeStack(ctx, restored, payload); err != nil {
		t.Fatalf("DecodeStack: %v", err)
	}
	if restored.BalancerActed() {
		t.Skipf("balancer already acted by %v; no shared-warmup window", barrier)
	}
	f, err := restored.Fork(ctx, engine.DropBalancer)
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	f.Drain()
	mustEqual(t, f.Collect(), runScratch(wbSpec), "WB fork off restored leader")
	restored.Drain()
	mustEqual(t, restored.Collect(), runScratch(lbSpec), "restored LBICA leader")
}
