package checkpoint_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"lbica/internal/checkpoint"
)

// TestGenCorpus regenerates the committed FuzzDecodeCheckpoint seed
// corpus (testdata/fuzz). Rerun with GEN_CORPUS=1 after any wire-format
// change (and FormatVersion bump) so the committed seeds keep exercising
// the current format's success paths, not just its version-mismatch arm.
func TestGenCorpus(t *testing.T) {
	if os.Getenv("GEN_CORPUS") == "" {
		t.Skip("set GEN_CORPUS=1 to regenerate")
	}
	spec := fuzzSpec()
	leader := fuzzStack(spec)
	leader.Start(context.Background(), spec.Intervals)
	leader.StepTo(1 * spec.Interval)
	payload, err := checkpoint.EncodeStack(leader)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("payload size: %d", len(payload))
	path := filepath.Join(t.TempDir(), "seed.ckpt")
	if err := checkpoint.WriteFile(path, "corpus-seed", [][]byte{payload}); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("container size: %d", len(valid))

	trunc := valid[:len(valid)*2/3]
	flip := bytes.Clone(valid)
	flip[len(flip)/3] ^= 0x10
	ver := bytes.Clone(valid)
	ver[8] = 0xFE // format version field, little-endian low byte

	// Small valid container with synthetic payloads (container-layer
	// coverage without a large file).
	small := filepath.Join(t.TempDir(), "small.ckpt")
	if err := checkpoint.WriteFile(small, "tiny", [][]byte{[]byte("\x01payload-a"), {}, []byte("b")}); err != nil {
		t.Fatal(err)
	}
	smallBuf, err := os.ReadFile(small)
	if err != nil {
		t.Fatal(err)
	}

	dir := "testdata/fuzz/FuzzDecodeCheckpoint"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	seeds := map[string][]byte{
		"seed00": valid,
		"seed01": trunc,
		"seed02": flip,
		"seed03": ver,
		"seed04": smallBuf,
		"seed05": []byte("LBICACK1"),
		"seed06": {},
		"seed07": payload[:128],
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
