// Package checkpoint persists warmed simulation state across process
// invocations: a versioned container file holding one or more encoded
// engine.Stack payloads, and a content-addressed on-disk store that maps
// a canonical warmup key to such a file.
//
// Trust model: checkpoint files are a cache, never a source of truth. A
// missing, truncated, corrupt, version-skewed, or key-colliding entry is
// reported distinctly from a hit so callers can fall back to simulating
// the prefix from scratch — a sweep must never fail because its cache
// directory holds garbage. Every structural claim a file makes (magic,
// version, checksum, lengths, key) is verified before any payload byte
// reaches the stack decoder, and the decoder itself bounds-checks every
// read, so hostile input surfaces as an error, not a panic.
package checkpoint

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"lbica/internal/ckpt"
	"lbica/internal/engine"
)

// FormatVersion is the container format version. It must be bumped
// whenever any layer's wire encoding changes (the per-package EncodeState
// bodies, the completer payloads, or this container) so stale caches read
// as misses instead of corrupt state.
const FormatVersion = 1

// magic identifies a checkpoint container file.
const magic = "LBICACK1"

// maxFileSize caps how much of a checkpoint file Read will load — a
// corrupted length field or a hostile file cannot drive an unbounded
// allocation. Real warmed-stack payloads are a few MiB.
const maxFileSize = 1 << 30

// EncodeStack serializes a mid-run stack into one checkpoint payload.
func EncodeStack(st *engine.Stack) ([]byte, error) {
	enc := ckpt.NewEncoder()
	st.EncodeState(enc)
	if err := enc.Err(); err != nil {
		return nil, err
	}
	return enc.Data(), nil
}

// DecodeStack restores one checkpoint payload onto a freshly built,
// not-yet-started stack (see engine.Stack.DecodeState for the contract).
// The stack must be discarded on error.
func DecodeStack(ctx context.Context, st *engine.Stack, payload []byte) error {
	d := ckpt.NewDecoder(payload)
	st.DecodeState(ctx, d)
	if err := d.Err(); err != nil {
		return err
	}
	if n := d.Remaining(); n > 0 {
		return fmt.Errorf("ckpt: %d trailing bytes after stack state", n)
	}
	return nil
}

// WriteFile atomically publishes a checkpoint container: the key it was
// built for plus one payload per stack (a multi-volume warmup stores all
// volumes in one file). The write goes to a temp file in the target
// directory first and is renamed into place, so concurrent sweeps racing
// on the same key each observe either no file or a complete one.
func WriteFile(path, key string, payloads [][]byte) error {
	var w ckpt.Writer
	w.U32(FormatVersion)
	w.String(key)
	w.U32(uint32(len(payloads)))
	for _, p := range payloads {
		w.U32(uint32(len(p)))
	}
	body := w.Data()
	buf := make([]byte, 0, len(magic)+len(body)+totalLen(payloads)+4)
	buf = append(buf, magic...)
	buf = append(buf, body...)
	for _, p := range payloads {
		buf = append(buf, p...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

func totalLen(payloads [][]byte) int {
	n := 0
	for _, p := range payloads {
		n += len(p)
	}
	return n
}

// ReadFile loads and fully verifies a checkpoint container, returning
// the key it was written for and its payloads. Every error return means
// "treat as absent": the file is truncated, corrupt, from a different
// format version, or otherwise unusable.
func ReadFile(path string) (key string, payloads [][]byte, err error) {
	fi, err := os.Stat(path)
	if err != nil {
		return "", nil, err
	}
	if fi.Size() > maxFileSize {
		return "", nil, fmt.Errorf("checkpoint: %s is %d bytes, over the %d cap", path, fi.Size(), maxFileSize)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	if len(buf) < len(magic)+4 {
		return "", nil, fmt.Errorf("checkpoint: %s truncated (%d bytes)", path, len(buf))
	}
	if string(buf[:len(magic)]) != magic {
		return "", nil, fmt.Errorf("checkpoint: %s is not a checkpoint container", path)
	}
	body, sum := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return "", nil, fmt.Errorf("checkpoint: %s checksum mismatch (file %08x, computed %08x)", path, sum, got)
	}
	r := ckpt.NewReader(body[len(magic):])
	version := r.U32()
	if r.Err() == nil && version != FormatVersion {
		return "", nil, fmt.Errorf("checkpoint: %s is format v%d, this build reads v%d", path, version, FormatVersion)
	}
	key = r.String()
	n := r.Count(4)
	if err := r.Err(); err != nil {
		return "", nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	lens := make([]int, n)
	for i := range lens {
		lens[i] = int(r.U32())
	}
	if err := r.Err(); err != nil {
		return "", nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	rest := r.Remaining()
	if totalInts(lens) != rest {
		return "", nil, fmt.Errorf("checkpoint: %s payload lengths sum to %d, %d bytes present", path, totalInts(lens), rest)
	}
	payloads = make([][]byte, n)
	off := len(body) - rest
	for i, l := range lens {
		if l < 0 {
			return "", nil, fmt.Errorf("checkpoint: %s has negative payload length", path)
		}
		payloads[i] = body[off : off+l]
		off += l
	}
	return key, payloads, nil
}

func totalInts(ls []int) int {
	n := 0
	for _, l := range ls {
		if l < 0 {
			return -1
		}
		n += l
	}
	return n
}

// Store is a content-addressed checkpoint cache rooted at a directory.
// Entries are immutable once published; the key is hashed into the
// filename and also embedded in the file, so a filename collision between
// different keys reads as corrupt, not as a false hit.
type Store struct {
	dir string
}

// Open validates dir and returns a store over it. The directory is
// created if absent; an existing non-directory path or an unwritable
// directory is an error — callers validate eagerly (at flag-parse time)
// so a misconfigured cache fails the invocation up front instead of
// surfacing mid-sweep.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty cache directory")
	}
	if fi, err := os.Stat(dir); err == nil && !fi.IsDir() {
		return nil, fmt.Errorf("checkpoint: %s exists and is not a directory", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	probe, err := os.CreateTemp(dir, ".ckpt-probe-*")
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s is not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the file an entry for key lives at.
func (s *Store) Path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".ckpt")
}

// Save publishes payloads under key, atomically.
func (s *Store) Save(key string, payloads [][]byte) error {
	return WriteFile(s.Path(key), key, payloads)
}

// Load looks key up. A miss returns (nil, nil); a present-but-unusable
// entry (corrupt, truncated, version-skewed, key collision) returns a
// non-nil error so the caller can both fall back to scratch and surface
// the fallback.
func (s *Store) Load(key string) ([][]byte, error) {
	path := s.Path(key)
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return nil, nil
	}
	gotKey, payloads, err := ReadFile(path)
	if err != nil {
		return nil, err
	}
	if gotKey != key {
		return nil, fmt.Errorf("checkpoint: %s was written for a different key", path)
	}
	return payloads, nil
}
