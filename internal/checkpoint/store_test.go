package checkpoint_test

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"lbica/internal/checkpoint"
)

// TestContainerRoundTrip pins the container format: WriteFile → ReadFile
// returns the same key and payload bytes, including empty payload lists
// and zero-length payloads.
func TestContainerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name     string
		key      string
		payloads [][]byte
	}{
		{"single", "k1", [][]byte{[]byte("hello stack state")}},
		{"multi", "k2|vol=3", [][]byte{[]byte("vol0"), []byte("volume-one"), []byte("v2")}},
		{"empty-payload", "k3", [][]byte{{}}},
		{"no-payloads", "k4", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".ckpt")
			if err := checkpoint.WriteFile(path, tc.key, tc.payloads); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}
			key, payloads, err := checkpoint.ReadFile(path)
			if err != nil {
				t.Fatalf("ReadFile: %v", err)
			}
			if key != tc.key {
				t.Errorf("key %q, want %q", key, tc.key)
			}
			if len(payloads) != len(tc.payloads) {
				t.Fatalf("%d payloads, want %d", len(payloads), len(tc.payloads))
			}
			for i := range payloads {
				if string(payloads[i]) != string(tc.payloads[i]) {
					t.Errorf("payload %d = %q, want %q", i, payloads[i], tc.payloads[i])
				}
			}
		})
	}
}

// Every way a file can be structurally bad must surface as a ReadFile
// error — never a panic, never a false hit.
func TestReadFileRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry.ckpt")
	if err := checkpoint.WriteFile(path, "key", [][]byte{[]byte("payload-bytes")}); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	damage := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated-header", func(b []byte) []byte { return b[:6] }},
		{"truncated-tail", func(b []byte) []byte { return b[:len(b)-5] }},
		{"bad-magic", func(b []byte) []byte { c := clone(b); c[0] ^= 0xff; return c }},
		{"flipped-payload-bit", func(b []byte) []byte { c := clone(b); c[len(c)/2] ^= 0x01; return c }},
		{"flipped-crc", func(b []byte) []byte { c := clone(b); c[len(c)-1] ^= 0x01; return c }},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			bad := filepath.Join(dir, d.name+".ckpt")
			if err := os.WriteFile(bad, d.mut(clone(good)), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, err := checkpoint.ReadFile(bad); err == nil {
				t.Errorf("ReadFile accepted %s damage", d.name)
			}
		})
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

// reCRC recomputes the trailing checksum after a deliberate mutation so
// only deeper validation layers can reject the file.
func reCRC(b []byte) []byte {
	body := b[:len(b)-4]
	return binary.LittleEndian.AppendUint32(clone(body), crc32.ChecksumIEEE(body))
}

// A container from a different format version must read as unusable even
// when its checksum is intact: the CRC is recomputed over the altered
// version field so only the version check can reject it.
func TestReadFileRejectsVersionSkew(t *testing.T) {
	// Reimplement just enough of the writer with version+1. The layout is
	// magic, then a ckpt.Writer body starting with the u32 version.
	path := filepath.Join(t.TempDir(), "skew.ckpt")
	if err := checkpoint.WriteFile(path, "key", [][]byte{[]byte("p")}); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[8]++ // first byte of the little-endian u32 version, after the 8-byte magic
	buf = reCRC(buf)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := checkpoint.ReadFile(path); err == nil {
		t.Error("ReadFile accepted a version-skewed container")
	}
}

// A store entry written for a different key (filename collision, or a
// file renamed by hand) must load as corrupt, not as a hit.
func TestStoreKeyMismatch(t *testing.T) {
	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save("key-a", [][]byte{[]byte("a")}); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(st.Path("key-a"), st.Path("key-b")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("key-b"); err == nil {
		t.Error("Load returned a hit for a file written under another key")
	}
}

// Load distinguishes a miss (nil, nil) from damage (nil, error).
func TestStoreMissVersusCorrupt(t *testing.T) {
	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payloads, err := st.Load("absent")
	if payloads != nil || err != nil {
		t.Errorf("miss = (%v, %v), want (nil, nil)", payloads, err)
	}
	if err := os.WriteFile(st.Path("present"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("present"); err == nil {
		t.Error("Load accepted garbage as a hit")
	}
}

// Open's eager validation: creates a missing directory, rejects an empty
// path and a path occupied by a regular file.
func TestOpenValidation(t *testing.T) {
	base := t.TempDir()
	nested := filepath.Join(base, "a", "b")
	st, err := checkpoint.Open(nested)
	if err != nil {
		t.Errorf("Open did not create missing directory: %v", err)
	} else if st.Dir() != nested {
		t.Errorf("store roots at %q, want %q", st.Dir(), nested)
	}
	if fi, err := os.Stat(nested); err != nil || !fi.IsDir() {
		t.Errorf("Open left no directory at %s", nested)
	}
	if _, err := checkpoint.Open(""); err == nil {
		t.Error("Open accepted an empty path")
	}
	file := filepath.Join(base, "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := checkpoint.Open(file); err == nil {
		t.Error("Open accepted a regular file as a cache directory")
	}
}
