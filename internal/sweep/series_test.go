package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"lbica/internal/engine"
	"lbica/internal/experiments"
	"lbica/internal/iostat"
)

// seriesGrid exercises the burst axis and a bursting catalog workload so
// the exported group/policy columns actually move.
func seriesGrid() Grid {
	return Grid{
		Workloads:  []string{"tpcc", "burst-mix-hi"},
		Schemes:    []string{"wb", "lbica"},
		BurstMults: []float64{1, 2},
		Replicates: 2,
		Seed:       5,
		Intervals:  8,
	}
}

func readDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(ents))
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

// TestSeriesExportProperties is the series exporter's property test: one
// file per run, each with exactly Intervals data rows, strictly
// increasing interval indexes, parseable float columns, and group/policy
// labels.
func TestSeriesExportProperties(t *testing.T) {
	g := seriesGrid()
	dir := t.TempDir()
	res, err := Execute(t.Context(), g, Options{SeriesDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	files := readDir(t, dir)
	if len(files) != res.Total {
		t.Fatalf("exported %d series files, want one per run (%d)", len(files), res.Total)
	}
	header := "interval,cache_load_us,disk_load_us,hit_ratio,group,policy"
	for name, data := range files {
		lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
		if lines[0] != header {
			t.Fatalf("%s: header %q, want %q", name, lines[0], header)
		}
		if rows := len(lines) - 1; rows != g.Intervals {
			t.Errorf("%s: %d data rows, want Intervals = %d", name, rows, g.Intervals)
		}
		prev := -1
		for _, line := range lines[1:] {
			cols := strings.Split(line, ",")
			if len(cols) != 6 {
				t.Fatalf("%s: row %q has %d columns, want 6", name, line, len(cols))
			}
			iv, err := strconv.Atoi(cols[0])
			if err != nil {
				t.Fatalf("%s: interval %q: %v", name, cols[0], err)
			}
			if iv <= prev {
				t.Fatalf("%s: interval index %d after %d — not strictly increasing", name, iv, prev)
			}
			prev = iv
			for _, c := range cols[1:4] {
				v, err := strconv.ParseFloat(c, 64)
				if err != nil {
					t.Fatalf("%s: float column %q: %v", name, c, err)
				}
				if v < 0 {
					t.Errorf("%s: negative metric %v", name, v)
				}
			}
			if cols[4] == "" || cols[5] == "" {
				t.Errorf("%s: empty group/policy in row %q", name, line)
			}
		}
	}
	// File names carry the grid coordinates in expansion vocabulary.
	if _, ok := files["series_tpcc_wb_cm1_rf1_bm1_r0.csv"]; !ok {
		t.Errorf("expected coordinate-named file missing; got %v", fileNames(files))
	}
}

func fileNames(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestSeriesExportParallelMatchesSerial extends the sweep determinism
// guarantee to the series files: every exported byte must be identical
// between the serial baseline and the full worker pool.
func TestSeriesExportParallelMatchesSerial(t *testing.T) {
	g := seriesGrid()
	serialDir, parallelDir := t.TempDir(), t.TempDir()
	if _, err := Execute(t.Context(), g, Options{Workers: 1, SeriesDir: serialDir}); err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(t.Context(), g, Options{Workers: 0, SeriesDir: parallelDir}); err != nil {
		t.Fatal(err)
	}
	serial, parallel := readDir(t, serialDir), readDir(t, parallelDir)
	if len(serial) == 0 || len(serial) != len(parallel) {
		t.Fatalf("file counts diverge: %d serial vs %d parallel", len(serial), len(parallel))
	}
	for name, sb := range serial {
		pb, ok := parallel[name]
		if !ok {
			t.Fatalf("parallel run missing series file %s", name)
		}
		if !bytes.Equal(sb, pb) {
			t.Errorf("series file %s differs between serial and parallel sweeps", name)
		}
	}
}

// TestSeriesExportInterruptedLeavesOnlyWholeFiles pins the torn-file fix:
// a sweep cancelled mid-flight still exports the runs that finished, and
// every series file present in the directory is whole — correct header,
// full column count, parseable floats — with no temp-file debris. The
// in-place writes this replaces could leave a half-written CSV behind.
func TestSeriesExportInterruptedLeavesOnlyWholeFiles(t *testing.T) {
	g := Grid{
		Workloads:  []string{"tpcc"},
		Schemes:    []string{"wb", "lbica"},
		Replicates: 2,
		Seed:       5,
		Intervals:  4,
	}
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(t.Context())
	defer cancel()
	res, err := Execute(ctx, g, Options{
		Workers: 1,
		OnDone: func(done, total int) {
			if done >= total/2 {
				cancel()
			}
		},
		SeriesDir: dir,
	})
	if err == nil {
		t.Fatal("interrupted sweep returned nil error")
	}
	if res.Completed == 0 || res.Completed >= res.Total {
		t.Fatalf("want a genuine partial sweep, got %d of %d runs", res.Completed, res.Total)
	}

	files := readDir(t, dir)
	if len(files) != res.Completed {
		t.Fatalf("exported %d series files, want one per completed run (%d)", len(files), res.Completed)
	}
	header := "interval,cache_load_us,disk_load_us,hit_ratio,group,policy"
	for name, data := range files {
		if !strings.HasPrefix(name, "series_") || !strings.HasSuffix(name, ".csv") {
			t.Fatalf("foreign file %q in series dir (temp debris?)", name)
		}
		lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
		if lines[0] != header {
			t.Fatalf("%s: torn file — header %q", name, lines[0])
		}
		if rows := len(lines) - 1; rows != g.Intervals {
			t.Errorf("%s: %d data rows, want %d — partial file survived the interrupt", name, rows, g.Intervals)
		}
		for _, line := range lines[1:] {
			cols := strings.Split(line, ",")
			if len(cols) != 6 {
				t.Fatalf("%s: torn row %q", name, line)
			}
			for _, c := range cols[1:4] {
				if _, err := strconv.ParseFloat(c, 64); err != nil {
					t.Fatalf("%s: unparseable column %q: %v", name, c, err)
				}
			}
		}
	}
}

// TestSeriesExportPublishIsAtomic drives the temp-then-rename mechanism
// directly: a write that fails before publish must leave the final path
// absent — never a torn CSV — and a successful one must leave no temp
// file behind.
func TestSeriesExportPublishIsAtomic(t *testing.T) {
	er := &engine.Results{Samples: []iostat.Sample{
		{Interval: 0, End: 200 * time.Millisecond, CacheLoad: time.Millisecond, DiskLoad: 2 * time.Millisecond},
		{Interval: 1, End: 400 * time.Millisecond, CacheLoad: 3 * time.Millisecond, DiskLoad: time.Millisecond},
	}}
	dir := t.TempDir()
	pt := Point{Spec: experiments.Spec{Workload: "tpcc", Scheme: "WB", CacheMult: 1, RateFactor: 1, BurstMult: 1, Volumes: 1}}
	path := filepath.Join(dir, SeriesFileName(pt))

	// Block the temp slot with a directory: the write fails before ever
	// touching the final path.
	tmp := filepath.Join(dir, "."+filepath.Base(path)+".tmp")
	if err := os.MkdirAll(filepath.Join(tmp, "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := writeSeriesFile(path, er); err == nil {
		t.Fatal("write into a blocked temp slot succeeded")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("failed write left something at the final path: %v", err)
	}
	if err := os.RemoveAll(tmp); err != nil {
		t.Fatal(err)
	}

	// Unblocked, the publish lands whole and cleans up its temp file.
	if err := writeSeriesFile(path, er); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteRunSeriesCSV(&want, er); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("published series file differs from the direct encoding")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("temp file survived a successful publish: %v", err)
	}
}

// TestSeriesFileNameSanitizesHostileNames: registry names may contain
// anything; the exported file names must stay on a filesystem-safe
// alphabet and still be distinguishable by coordinates.
func TestSeriesFileNameSanitizesHostileNames(t *testing.T) {
	pt := Point{Workload: `w,"x"/../y`, Scheme: "LBICA", CacheMult: 0.5, RateFactor: 1, BurstMult: 2, Replicate: 3}
	name := SeriesFileName(pt)
	if strings.ContainsAny(name, `,"/\`+"\n") {
		t.Errorf("hostile characters leak into file name %q", name)
	}
	if !strings.Contains(name, "cm0.5") || !strings.Contains(name, "bm2") || !strings.Contains(name, "_r3") {
		t.Errorf("coordinates missing from file name %q", name)
	}
	if name != filepath.Base(name) {
		t.Errorf("file name %q escapes its directory", name)
	}

	// Array coordinates ride the same pipeline: every float component is
	// formatted by ftoa — the exact cells-CSV encoder — so a file name's
	// rs component joins back to its CSV row byte for byte, and even a
	// pathological skew value stays on the safe alphabet.
	arr := pt
	arr.Volumes = 4
	arr.RouteSkew = 1.2
	aname := SeriesFileName(arr)
	if !strings.Contains(aname, "_v4_rs"+ftoa(arr.RouteSkew)+"_") {
		t.Errorf("array file name %q does not embed ftoa(%v) = %q", aname, arr.RouteSkew, ftoa(arr.RouteSkew))
	}
	for _, v := range []float64{0.5, 1, 1.2, 2.75} {
		if s := ftoa(v); sanitizeName(s) != s {
			t.Errorf("sanitizer not the identity on ftoa(%v) = %q", v, s)
		}
	}
	// Exponent-formatted floats (never grid-valid, but defense in depth):
	// the '+' of "1e+21" must not survive into a file name.
	huge := pt
	huge.Volumes = 2
	huge.RouteSkew = 1e21
	if n := SeriesFileName(huge); strings.ContainsAny(n, "+,/") {
		t.Errorf("exponent formatting leaks hostile bytes into %q", n)
	}
}

// TestSummarizeEmptyGroup guards the zero-replicate path: an interrupted
// sweep must never panic aggregating an empty group.
func TestSummarizeEmptyGroup(t *testing.T) {
	c := summarize(cellKey{"tpcc", "WB", 1, 1, 1, 1, 0}, nil)
	if c.Replicates != 0 || c.Workload != "tpcc" || c.QMeanUS != 0 {
		t.Errorf("empty group summarized to %+v, want a zero-metric cell with its coordinates", c)
	}
	if cells := Aggregate(nil); len(cells) != 0 {
		t.Errorf("Aggregate(nil) = %v, want no cells", cells)
	}
}
