package sweep

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"
)

// cellsFromBytes deterministically decodes a fuzz input into a cell list.
// Strings are masked to printable ASCII (the emitters' contract is Go
// strings from the experiments package, not arbitrary bytes: JSON
// replaces invalid UTF-8 and csv normalizes bare CRs, so unrestricted
// bytes would fuzz the codecs' documented lossiness, not our emitters)
// and floats to finite values (JSON cannot encode NaN/±Inf at all).
func cellsFromBytes(data []byte) []Cell {
	next := func(n int) []byte {
		if len(data) < n {
			pad := make([]byte, n)
			copy(pad, data)
			data = nil
			return pad
		}
		b := data[:n]
		data = data[n:]
		return b
	}
	str := func() string {
		n := int(next(1)[0]) % 12
		raw := next(n)
		out := make([]byte, n)
		for i, b := range raw {
			out[i] = 32 + b%95 // printable ASCII, commas and quotes included
		}
		return string(out)
	}
	f64 := func() float64 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(next(8)))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return v
	}
	count := int(next(1)[0]) % 8
	if count == 0 {
		return nil
	}
	cells := make([]Cell, count)
	for i := range cells {
		cells[i] = Cell{
			Workload:        str(),
			Scheme:          str(),
			CacheMult:       f64(),
			RateFactor:      f64(),
			BurstMult:       f64(),
			Volumes:         1 + int(next(1)[0])%4,
			RouteSkew:       f64(),
			Replicates:      int(binary.LittleEndian.Uint16(next(2))),
			QMeanUS:         f64(),
			QMinUS:          f64(),
			QMaxUS:          f64(),
			DiskQMeanUS:     f64(),
			LatencyMeanUS:   f64(),
			HitRatioMean:    f64(),
			PolicyFlipsMean: f64(),
			SpeedupVsWB:     f64(),
			SpeedupVsSIB:    f64(),
		}
	}
	return cells
}

func equalCells(a, b []Cell) bool {
	if len(a) == 0 && len(b) == 0 {
		return true // nil and empty are the same absence of cells
	}
	return reflect.DeepEqual(a, b)
}

// FuzzCellsCSVRoundTrip: whatever cells a fuzz input decodes to, parsing
// the emitted CSV must reproduce them exactly — the lossless-float,
// quoting and optional-burst-column guarantees of the emitter, bit for
// bit.
func FuzzCellsCSVRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 4, 't', 'p', 'c', 'c', 2, 'W', 'B'})
	f.Add(bytes.Repeat([]byte{0xff}, 200))
	f.Add([]byte("3 some bytes that decode to cells with, commas \"quotes\" and\nnewlines"))
	// A registry-style hostile workload name (comma + quote) with
	// BurstMult bits decoding to exactly 1.0 — the legacy-layout branch
	// (the exhausted input zero-pads the array fields to their defaults:
	// Volumes 1, RouteSkew 0).
	f.Add([]byte{1, 5, 66, 77, 12, 2, 88, 2, 44, 12,
		0, 0, 0, 0, 0, 0, 0, 0, // CacheMult 0
		0, 0, 0, 0, 0, 0, 0, 0, // RateFactor 0
		0, 0, 0, 0, 0, 0, 0xf0, 0x3f, // BurstMult 1.0 → legacy header
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		cells := cellsFromBytes(data)
		var buf bytes.Buffer
		if err := WriteCellsCSV(&buf, cells); err != nil {
			t.Fatalf("emit: %v (cells %+v)", err, cells)
		}
		back, err := ParseCellsCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("parse-back: %v\ncsv:\n%s", err, buf.String())
		}
		if !equalCells(cells, back) {
			t.Fatalf("round trip diverged:\n  emitted %+v\n  parsed  %+v\ncsv:\n%s", cells, back, buf.String())
		}
	})
}

// FuzzCellsJSONRoundTrip is the JSON counterpart of the CSV property.
func FuzzCellsJSONRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 3, 'w', 'e', 'b', 5, 'L', 'B', 'I', 'C', 'A'})
	f.Add(bytes.Repeat([]byte{0x7f, 0x00, 0x42}, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		cells := cellsFromBytes(data)
		var buf bytes.Buffer
		if err := WriteCellsJSON(&buf, cells); err != nil {
			t.Fatalf("emit: %v (cells %+v)", err, cells)
		}
		back, err := ParseCellsJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("parse-back: %v\njson:\n%s", err, buf.String())
		}
		if !equalCells(cells, back) {
			t.Fatalf("round trip diverged:\n  emitted %+v\n  parsed  %+v\njson:\n%s", cells, back, buf.String())
		}
	})
}

// FuzzParseCellsCSV hardens the parser against arbitrary input: it may
// reject, but must never panic, and anything it accepts must re-emit and
// re-parse to the same cells (parse∘emit∘parse = parse).
func FuzzParseCellsCSV(f *testing.F) {
	f.Add([]byte("workload,scheme,cache_mult,rate_factor,replicates,q_mean_us,q_min_us,q_max_us,disk_q_mean_us,latency_mean_us,hit_ratio_mean,policy_flips_mean,speedup_vs_wb,speedup_vs_sib\n"))
	f.Add([]byte("workload,scheme,cache_mult,rate_factor,replicates,q_mean_us,q_min_us,q_max_us,disk_q_mean_us,latency_mean_us,hit_ratio_mean,policy_flips_mean,speedup_vs_wb,speedup_vs_sib\ntpcc,WB,1,1,2,3.5,1,8,100,250.25,0.75,0,1.5,0.9\n"))
	f.Add([]byte("not,a,cells,csv\n"))
	f.Add([]byte{})
	// The extended layout (burst_mult column) with a quoted hostile
	// workload name.
	f.Add([]byte("workload,scheme,cache_mult,rate_factor,burst_mult,replicates,q_mean_us,q_min_us,q_max_us,disk_q_mean_us,latency_mean_us,hit_ratio_mean,policy_flips_mean,speedup_vs_wb,speedup_vs_sib\n\"syn,\"\"th\"\"\",LBICA,1,1,2,3,3.5,1,8,100,250.25,0.75,0,1.5,0.9\n"))
	// Legacy layout with a quoted name: parse must default BurstMult to 1
	// and re-emit the legacy header.
	f.Add([]byte("workload,scheme,cache_mult,rate_factor,replicates,q_mean_us,q_min_us,q_max_us,disk_q_mean_us,latency_mean_us,hit_ratio_mean,policy_flips_mean,speedup_vs_wb,speedup_vs_sib\n\"a,b\",WB,1,1,2,3.5,1,8,100,250.25,0.75,0,1.5,0.9\n"))
	// The array layout (volumes/route_skew columns) with a hostile name.
	f.Add([]byte("workload,scheme,cache_mult,rate_factor,burst_mult,volumes,route_skew,replicates,q_mean_us,q_min_us,q_max_us,disk_q_mean_us,latency_mean_us,hit_ratio_mean,policy_flips_mean,speedup_vs_wb,speedup_vs_sib\n\"syn,\"\"th\"\"\",LBICA,1,1,2,4,1.2,3,3.5,1,8,100,250.25,0.75,0,1.5,0.9\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cells, err := ParseCellsCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCellsCSV(&buf, cells); err != nil {
			t.Fatalf("re-emit of accepted input failed: %v", err)
		}
		back, err := ParseCellsCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of re-emitted input failed: %v", err)
		}
		if !equalCells(cells, back) {
			t.Fatalf("parse∘emit∘parse diverged from parse:\n  first  %+v\n  second %+v", cells, back)
		}
	})
}
