// Package sweep is the parameter-sweep subsystem: it expands a declarative
// Grid (workloads × schemes × cache-size multipliers × rate factors ×
// burst-intensity multipliers × array volume counts × routing skews ×
// seed replicates) into experiment specs,
// fans them out through the bounded runner pool, and aggregates the
// finished runs into per-cell summaries — mean/min/max max-queue-time,
// LBICA-vs-baseline speedups, policy-flip counts — with CSV, JSON and
// text emitters, plus an optional per-interval series export per cell
// (Options.SeriesDir). Workload axis values resolve through the workload
// catalog, so grids range over the paper trio, the synthetic entries and
// parameterized family names alike.
//
// The paper evaluates a fixed 3 workloads × 3 schemes matrix; the grid
// generalizes that matrix along the axes its claims should be robust to
// (cache size, arrival rate, seed) while preserving the controlled
// comparison: every scheme inside a replicate shares the replicate's seed,
// so the three schemes always see an identical workload, and each
// replicate's seed derives from (Grid.Seed, replicate index) alone, so a
// parallel sweep is byte-identical to a serial one.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"lbica/internal/array"
	"lbica/internal/checkpoint"
	"lbica/internal/engine"
	"lbica/internal/experiments"
	"lbica/internal/runner"
	"lbica/internal/sim"
	"lbica/internal/stats"
)

// Grid declares a sweep: the cross product of its axes. Empty axes fall
// back to the paper's defaults (all 3 workloads, all 3 schemes, multiplier
// 1, rate 1, a single replicate), so the zero Grid is exactly the paper's
// evaluation matrix.
type Grid struct {
	// Workloads and Schemes name the experiment axes; case-insensitive
	// (normalized to the experiments package's canonical names). Workload
	// names resolve through the catalog (workload.Default): the paper
	// trio, synthetic entries, and parameterized family names such as
	// "synth-randread-zipf1.2" or "burst-mix-on6x-duty0.45-read0.35".
	Workloads []string `json:"workloads"`
	Schemes   []string `json:"schemes"`
	// CacheMults scales the SSD cache capacity relative to the paper's
	// 256 MiB (experiments.Spec.CacheMult).
	CacheMults []float64 `json:"cache_mults"`
	// RateFactors scales every workload's IOPS.
	RateFactors []float64 `json:"rate_factors"`
	// BurstMults scales every bursting phase's ON-rate and ON/OFF duty
	// cycle (experiments.Spec.BurstMult) — the burst-intensity axis. Empty
	// = {1}, the workloads' published burst shapes.
	BurstMults []float64 `json:"burst_mults"`
	// Volumes is the array-width axis: each value shards the run across
	// that many independent cache+disk volumes behind a deterministic
	// router (experiments.Spec.Volumes). Empty = {1}, the paper's
	// single-stack configuration.
	Volumes []int `json:"volumes"`
	// RouteSkews is the router-skew axis: the Zipf exponent of the
	// router's volume-popularity distribution (0 = uniform routing).
	// Empty = {0}. At one volume every skew routes identically, so skew
	// is inert at width 1: those cells canonicalize to skew 0 and
	// deduplicate (a single run per coordinate, replicate counts never
	// inflated), and the dropped combinations are reported in
	// Result.Skipped — a mixed-width grid like Volumes {1,4} ×
	// RouteSkews {0,1.2} runs in one invocation.
	RouteSkews []float64 `json:"route_skews"`
	// RouteVariant selects the ARRAY-LB controller's adaptation
	// mechanism, "weighted" (default) or "p2c". A scalar, not an axis;
	// it only affects ARRAY-LB cells.
	RouteVariant string `json:"route_variant,omitempty"`
	// Replicates is the number of seed replicates per cell (≥1). Replicate
	// r runs with seed sim.Stream(Seed, r): every scheme of a replicate
	// shares that seed (the controlled comparison), and the split depends
	// only on (Seed, r), never on scheduling.
	Replicates int `json:"replicates"`
	// Seed is the base seed (default 1).
	Seed int64 `json:"seed"`
	// Intervals overrides the per-run interval count (0 = the paper's
	// length for each workload); Interval the monitor interval in
	// nanoseconds of virtual time (0 = 200 ms).
	Intervals int           `json:"intervals"`
	Interval  time.Duration `json:"interval_ns"`
	// WarmupIntervals, when > 0, turns on incremental (warm-fork) sweeps:
	// the schemes of one controlled comparison — cells identical on every
	// axis except the scheme — share a single simulated prefix of this
	// many monitor intervals. One leader run (LBICA) executes the prefix,
	// the sibling cells fork its complete state at the barrier
	// (engine.Fork: engine, cache, queues, devices, RNG positions), and
	// every branch runs to completion independently. Results are
	// byte-identical to the default from-scratch execution; cells that
	// cannot share (multi-volume arrays, SIB, groups without a forkable
	// leader, a leader whose balancer already acted before the barrier)
	// silently fall back to scratch runs. Anything that distinguishes the
	// warmup prefix — workload, cache geometry, rate factor, burst
	// multiplier, volume count, route skew, replicate seed — keys the
	// grouping, so only true controlled comparisons ever share. 0 (the
	// default) runs every cell from scratch.
	//
	// Excluded from the JSON grid echo: warm-fork is an execution
	// strategy, not a grid axis, and the emitted sweep.json must stay
	// byte-for-byte independent of it.
	WarmupIntervals int `json:"-"`
	// WarmCacheDir, when non-empty, backs warm-fork sweeps with the
	// persistent checkpoint store rooted at that directory: each shared
	// warmup prefix is looked up there before being simulated and written
	// through after (experiments.RunWarmSharedCached), so repeated
	// invocations — narrowing a grid, adding replicates, re-running after
	// a crash — skip the warmup simulation entirely. Results stay
	// byte-identical to uncached execution; a corrupt or version-skewed
	// entry silently falls back to simulation and is overwritten. Requires
	// WarmupIntervals > 0 (the cache stores warm prefixes; with no warmup
	// there is nothing to persist).
	//
	// Excluded from the JSON grid echo for the same reason as
	// WarmupIntervals: an execution strategy must not change the emitted
	// sweep bytes.
	WarmCacheDir string `json:"-"`
	// CITolerance, when > 0, turns on cross-cell early termination: the
	// sweep stops launching further seed replicates for a grid coordinate
	// once, for every scheme at that coordinate, the 95% Student-t
	// confidence half-width over the completed replicates' headline
	// metric (QMeanUS, the mean per-interval maximum cache queue time) is
	// at most CITolerance × the metric's mean — a relative tolerance, so
	// one value works across workloads with different queue-time scales.
	// At least two replicates always run per coordinate. The decision is
	// taken over the replicate prefix in expansion order, so it — and the
	// emitted output — is byte-identical for every worker count; a
	// terminated coordinate's chain simply returns its runner slot early,
	// freeing it for unfinished coordinates. Terminated cells are marked
	// (Cell.EarlyTerminated) with their achieved half-width
	// (Cell.QCIHalfUS) and actual replicate count (Cell.Replicates).
	// 0 (the default) runs every replicate; the off-mode output is
	// byte-identical to sweeps that predate the knob.
	CITolerance float64 `json:"ci_tolerance,omitempty"`
}

// Normalize fills defaulted axes in place and returns the result: empty
// axes become the paper's evaluation axes, scheme and workload names are
// canonicalized, Replicates is clamped to ≥1 and Seed to non-zero.
func (g Grid) Normalize() Grid {
	if len(g.Workloads) == 0 {
		g.Workloads = append([]string(nil), experiments.Workloads...)
	} else {
		wls := make([]string, len(g.Workloads))
		for i, wl := range g.Workloads {
			wls[i] = strings.ToLower(strings.TrimSpace(wl))
		}
		g.Workloads = wls
	}
	if len(g.Schemes) == 0 {
		g.Schemes = append([]string(nil), experiments.Schemes...)
	} else {
		scs := make([]string, len(g.Schemes))
		for i, sc := range g.Schemes {
			scs[i] = strings.ToUpper(strings.TrimSpace(sc))
		}
		g.Schemes = scs
	}
	if len(g.CacheMults) == 0 {
		g.CacheMults = []float64{1}
	}
	if len(g.RateFactors) == 0 {
		g.RateFactors = []float64{1}
	}
	if len(g.BurstMults) == 0 {
		g.BurstMults = []float64{1}
	}
	if len(g.Volumes) == 0 {
		g.Volumes = []int{1}
	}
	if len(g.RouteSkews) == 0 {
		g.RouteSkews = []float64{0}
	}
	if g.Replicates < 1 {
		g.Replicates = 1
	}
	if g.Seed == 0 {
		g.Seed = 1
	}
	return g
}

// Validate reports the first invalid axis value. Unlike the experiments
// package (whose specs are code), grids arrive from CLI flags, so bad
// names must surface as errors, not panics. Duplicate axis values are
// rejected too: a repeated value would re-run identical simulations and
// silently inflate the cell's replicate count past Grid.Replicates.
//
// Scalar fields are checked before normalization: only the zero value
// means "use the default". A negative Replicates, Intervals or Interval
// used to be silently rewritten to its default, so the sweep ran (and
// labeled) a different experiment than the one the user asked for —
// negatives are now errors.
func (g Grid) Validate() error {
	if g.Replicates < 0 {
		return fmt.Errorf("sweep: negative replicate count %d (0 means default)", g.Replicates)
	}
	if g.Intervals < 0 {
		return fmt.Errorf("sweep: negative interval count %d (0 means the paper default)", g.Intervals)
	}
	if g.Interval < 0 {
		return fmt.Errorf("sweep: negative monitor interval %v (0 means the 200ms default)", g.Interval)
	}
	if g.WarmupIntervals < 0 {
		return fmt.Errorf("sweep: negative warmup interval count %d (0 disables warm-fork sharing)", g.WarmupIntervals)
	}
	if g.WarmCacheDir != "" && g.WarmupIntervals <= 0 {
		return fmt.Errorf("sweep: warm cache directory %q set without warmup intervals (the cache stores warm prefixes; set WarmupIntervals > 0)", g.WarmCacheDir)
	}
	// Same shape as the cache-mult check below: a bare `< 0` would wave
	// NaN through (every comparison false) into the termination decision.
	if !(g.CITolerance >= 0) || math.IsInf(g.CITolerance, 0) {
		return fmt.Errorf("sweep: invalid CI tolerance %v (want a finite value ≥ 0; 0 disables early termination)", g.CITolerance)
	}
	g = g.Normalize()
	for _, wl := range g.Workloads {
		// The workload catalog (paper trio + synthetic + burst-mix
		// families) is the source of truth for valid names.
		if err := experiments.ValidateWorkload(wl); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	for _, sc := range g.Schemes {
		switch sc {
		case experiments.SchemeWB, experiments.SchemeSIB, experiments.SchemeLBICA, experiments.SchemeArrayLB:
		default:
			return fmt.Errorf("sweep: unknown scheme %q (want wb|sib|lbica|array-lb)", sc)
		}
	}
	if _, err := array.ParseVariant(g.RouteVariant); err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	// Bounded open intervals, not mere positivity: NaN and ±Inf slip
	// through a `<= 0` check (both comparisons are false) and hang the
	// simulation, and a finite-but-absurd multiplier overflows the set
	// count downstream. The cache ceiling of 512× (a 128 GiB cache) is
	// exactly where experiments.RunContext's set-count clamp saturates at
	// the default geometry — above it, distinct multipliers would run
	// byte-identical simulations labeled as different cells.
	for _, cm := range g.CacheMults {
		if !(cm > 0 && cm <= 512) {
			return fmt.Errorf("sweep: cache multiplier %v outside (0, 512]", cm)
		}
	}
	for _, rf := range g.RateFactors {
		if !(rf > 0 && rf <= 1e4) {
			return fmt.Errorf("sweep: rate factor %v outside (0, 10000]", rf)
		}
	}
	// The burst ceiling mirrors the burst-mix family's ON-rate bound: a
	// 100× ON rate on the heaviest phase is already far past saturation.
	for _, bm := range g.BurstMults {
		if !(bm > 0 && bm <= 100) {
			return fmt.Errorf("sweep: burst multiplier %v outside (0, 100]", bm)
		}
	}
	for _, v := range g.Volumes {
		if v < 1 || v > array.MaxVolumes {
			return fmt.Errorf("sweep: volume count %d outside [1, %d]", v, array.MaxVolumes)
		}
	}
	// Skew over a width-1 volume entry is not an error: skew is inert at
	// one volume, so Expand canonicalizes those cells to skew 0 and
	// deduplicates them (the skipped combinations land in Result.Skipped).
	for _, rs := range g.RouteSkews {
		if !(rs >= 0 && rs <= array.MaxSkew) {
			return fmt.Errorf("sweep: route skew %v outside [0, %v]", rs, array.MaxSkew)
		}
	}
	for _, axis := range []struct{ name, dup string }{
		{"workload", dupString(g.Workloads)},
		{"scheme", dupString(g.Schemes)},
		{"cache multiplier", dupFloat(g.CacheMults)},
		{"rate factor", dupFloat(g.RateFactors)},
		{"burst multiplier", dupFloat(g.BurstMults)},
		{"volume count", dupInt(g.Volumes)},
		{"route skew", dupFloat(g.RouteSkews)},
	} {
		if axis.dup != "" {
			return fmt.Errorf("sweep: duplicate %s %s in grid axis", axis.name, axis.dup)
		}
	}
	return nil
}

// dupString returns the first repeated value ("" if none).
func dupString(vals []string) string {
	seen := make(map[string]bool, len(vals))
	for _, v := range vals {
		if seen[v] {
			return v
		}
		seen[v] = true
	}
	return ""
}

// dupInt returns the first repeated value formatted ("" if none).
func dupInt(vals []int) string {
	seen := make(map[int]bool, len(vals))
	for _, v := range vals {
		if seen[v] {
			return fmt.Sprintf("%d", v)
		}
		seen[v] = true
	}
	return ""
}

// dupFloat returns the first repeated value formatted ("" if none).
func dupFloat(vals []float64) string {
	seen := make(map[float64]bool, len(vals))
	for _, v := range vals {
		if seen[v] {
			return fmt.Sprintf("%v", v)
		}
		seen[v] = true
	}
	return ""
}

// effSkews returns the route-skew values that actually run at a given
// array width: the full axis when vol > 1, and the canonical single
// skew-0 cell when vol == 1 (skew is inert at one volume — every value
// would run the identical simulation, so the non-zero entries collapse
// instead of inflating the cell count).
func effSkews(vol int, skews []float64) []float64 {
	if vol > 1 {
		return skews
	}
	return zeroSkew[:]
}

var zeroSkew = [1]float64{0}

// SkippedCombos reports the (volume count, route skew) combinations the
// expansion drops as inert — human-readable, for Result.Skipped and the
// CLI log.
func (g Grid) SkippedCombos() []string {
	g = g.Normalize()
	has1 := false
	for _, v := range g.Volumes {
		if v == 1 {
			has1 = true
		}
	}
	if !has1 {
		return nil
	}
	var out []string
	for _, rs := range g.RouteSkews {
		if rs != 0 {
			out = append(out, fmt.Sprintf("volumes 1 × route skew %v: skew is inert at one volume; canonicalized to the skew-0 cell", rs))
		}
	}
	return out
}

// Size returns the number of runs the grid expands to — the product of
// the axis lengths (after defaulting), except that width-1 volume entries
// contribute a single canonical skew-0 cell however long the skew axis is
// (see effSkews). Always equal to len(Expand()).
func (g Grid) Size() int {
	g = g.Normalize()
	cells := 0
	for _, vol := range g.Volumes {
		cells += len(effSkews(vol, g.RouteSkews))
	}
	return len(g.Workloads) * len(g.Schemes) * len(g.CacheMults) * len(g.RateFactors) *
		len(g.BurstMults) * cells * g.Replicates
}

// Point is one expanded run: its grid coordinates plus the ready-to-run
// spec.
type Point struct {
	Workload   string
	Scheme     string
	CacheMult  float64
	RateFactor float64
	BurstMult  float64
	Volumes    int
	RouteSkew  float64
	Replicate  int
	Spec       experiments.Spec
}

// Expand enumerates the grid in deterministic order — workload-major, then
// cache multiplier, rate factor, burst multiplier, volume count, route
// skew, replicate, and scheme innermost, so the schemes of one controlled
// comparison are adjacent in the run order. Expansion is a pure function
// of the grid: the same Grid always yields the same points in the same
// order.
func (g Grid) Expand() []Point {
	g = g.Normalize()
	pts := make([]Point, 0, g.Size())
	for _, wl := range g.Workloads {
		for _, cm := range g.CacheMults {
			for _, rf := range g.RateFactors {
				for _, bm := range g.BurstMults {
					for _, vol := range g.Volumes {
						for _, rs := range effSkews(vol, g.RouteSkews) {
							for rep := 0; rep < g.Replicates; rep++ {
								seed := sim.Stream(g.Seed, rep)
								for _, sc := range g.Schemes {
									spec := experiments.Spec{
										Workload:   wl,
										Scheme:     sc,
										Seed:       seed,
										Intervals:  g.Intervals,
										Interval:   g.Interval,
										RateFactor: rf,
										CacheMult:  cm,
										BurstMult:  bm,
										Volumes:    vol,
										RouteSkew:  rs,
										// The cell pool already saturates the cores;
										// a second GOMAXPROCS-wide shard pool per array
										// cell would oversubscribe the CPU multiplicatively.
										// Output is byte-identical for any shard worker
										// count, so serial shards cost nothing but heat.
										ShardWorkers: 1,
									}
									if sc == experiments.SchemeArrayLB {
										spec.RouteVariant = g.RouteVariant
									}
									pts = append(pts, Point{
										Workload:   wl,
										Scheme:     sc,
										CacheMult:  cm,
										RateFactor: rf,
										BurstMult:  bm,
										Volumes:    vol,
										RouteSkew:  rs,
										Replicate:  rep,
										Spec:       spec,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return pts
}

// Run is the record of one finished simulation: the point's coordinates
// plus the scalar metrics the aggregation consumes. QMeanUS is the mean of
// the per-interval maximum cache queue times (the Fig. 4 metric, µs);
// DiskQMeanUS the disk-subsystem counterpart (Fig. 5).
type Run struct {
	Workload     string  `json:"workload"`
	Scheme       string  `json:"scheme"`
	CacheMult    float64 `json:"cache_mult"`
	RateFactor   float64 `json:"rate_factor"`
	BurstMult    float64 `json:"burst_mult"`
	Volumes      int     `json:"volumes"`
	RouteSkew    float64 `json:"route_skew"`
	Replicate    int     `json:"replicate"`
	Seed         int64   `json:"seed"`
	QMeanUS      float64 `json:"q_mean_us"`
	DiskQMeanUS  float64 `json:"disk_q_mean_us"`
	AvgLatencyUS float64 `json:"avg_latency_us"`
	HitRatio     float64 `json:"hit_ratio"`
	PolicyFlips  int     `json:"policy_flips"`
	Requests     uint64  `json:"requests"`
}

// Options tunes a sweep execution.
type Options struct {
	// Workers caps the runner pool (≤0 = GOMAXPROCS; 1 = the serial
	// baseline the determinism test compares against).
	Workers int
	// OnDone, when non-nil, observes completion (serialized, completion
	// order): done runs out of total.
	OnDone func(done, total int)
	// SeriesDir, when non-empty, exports each completed run's per-interval
	// series — cache/disk load, hit ratio, balancer group and policy in
	// force — as one CSV per cell into the directory (created if needed).
	// Files are written after the sweep finishes, in expansion order, so
	// their bytes are identical for every worker count.
	SeriesDir string
}

// Result is a finished (or interrupted) sweep: the normalized grid, every
// completed run in expansion order, and the per-cell aggregation.
type Result struct {
	Grid  Grid   `json:"grid"`
	Runs  []Run  `json:"runs"`
	Cells []Cell `json:"cells"`
	// Total is the grid size; Completed counts the runs that finished. On
	// an interrupted sweep Completed < Total and Runs/Cells cover only the
	// finished work — the partial report.
	Total     int `json:"total"`
	Completed int `json:"completed"`
	// Skipped lists the inert axis combinations the expansion collapsed
	// instead of running (currently: non-zero route skews at volume count
	// 1, canonicalized to the skew-0 cell).
	Skipped []string `json:"skipped,omitempty"`
	// Warm summarizes the warm-fork plan's outcomes (nil when
	// WarmupIntervals is 0): how many runs led a shared warmup, forked
	// one, or fell back to scratch — and why. Execution metadata, not
	// sweep output: excluded from the JSON report so warm and scratch
	// sweeps still emit byte-identical bytes.
	Warm *WarmStats `json:"-"`
}

// WarmStats counts a warm-fork sweep's per-run plan outcomes, so a
// regression to 0% sharing is visible instead of a silent slowdown.
type WarmStats struct {
	// Leaders ran (or restored) the shared warmup prefix themselves;
	// Forked reused a leader's prefix via a deep-copy fork; Scratch ran
	// from scratch.
	Leaders int
	Forked  int
	Scratch int
	// Fallbacks keys scratch runs by reason (the experiments.WarmReason*
	// constants: "no-leader", "sib", "balancer-acted", "multi-volume",
	// "fork-error").
	Fallbacks map[string]int
	// Persistent-cache tallies (all zero unless Grid.WarmCacheDir is
	// set), orthogonal to the plan-structure counts above: both a
	// leader's shared prefix and a scratch member's private one go
	// through the store. CacheHits runs restored their warmup prefix
	// from the store; CacheStores simulated it and published the
	// checkpoint; CacheCorrupt counts the stores that were fallbacks
	// from an unusable entry (truncated, checksum mismatch, version
	// skew, failed restore) — each such run is counted in both
	// CacheStores and CacheCorrupt.
	CacheHits    int
	CacheStores  int
	CacheCorrupt int
}

// observe folds one run's warm outcome into the counts. Kind and Cache
// are orthogonal: Leaders + Forked + Scratch always equals the number of
// warm-planned runs, cached or not, and the cache tallies count store
// traffic regardless of the run's place in the plan.
func (w *WarmStats) observe(o experiments.WarmOutcome) {
	switch o.Kind {
	case experiments.WarmLeader:
		w.Leaders++
	case experiments.WarmForked:
		w.Forked++
	case experiments.WarmScratch:
		w.Scratch++
		if w.Fallbacks == nil {
			w.Fallbacks = make(map[string]int)
		}
		w.Fallbacks[o.Reason]++
	}
	switch o.Cache {
	case experiments.WarmCacheHit:
		w.CacheHits++
	case experiments.WarmCacheStore:
		w.CacheStores++
	case experiments.WarmCacheCorrupt:
		w.CacheStores++
		w.CacheCorrupt++
	}
}

// unitResult carries one scheduling unit's engine results (in unit-member
// order) plus, on warm-fork sweeps, the per-member warm-plan outcomes.
type unitResult struct {
	res  []*engine.Results
	warm []experiments.WarmOutcome
}

// runUnit executes one scheduling unit: a warm-fork group when
// WarmupIntervals is set (sharing members reuse the leader's prefix —
// restored from the checkpoint store when one is given — and outcomes
// are recorded), plain sequential scratch runs otherwise.
func runUnit(ctx context.Context, g Grid, store *checkpoint.Store, pts []Point, idx []int) unitResult {
	if g.WarmupIntervals > 0 {
		specs := make([]experiments.Spec, len(idx))
		for k, i := range idx {
			specs[k] = pts[i].Spec
		}
		rs, warm := experiments.RunWarmSharedCached(ctx, specs, g.WarmupIntervals, store)
		return unitResult{res: rs, warm: warm}
	}
	rs := make([]*engine.Results, len(idx))
	for k, i := range idx {
		if ctx.Err() != nil {
			break
		}
		rs[k] = experiments.RunContext(ctx, pts[i].Spec)
	}
	return unitResult{res: rs}
}

// Execute expands the grid and fans the runs out across the bounded
// runner pool. The returned Result is byte-identical for every worker
// count (see the package comment). On cancellation the error is non-nil
// and the Result still aggregates every run that completed — the CLI's
// SIGINT partial report.
func Execute(ctx context.Context, g Grid, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Validate before normalizing: Validate distinguishes "zero = use the
	// default" from invalid negatives, which normalization would erase.
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g = g.Normalize()
	store, err := openWarmStore(g)
	if err != nil {
		return nil, err
	}
	pts := g.Expand()
	if g.CITolerance > 0 {
		return executeAdaptive(ctx, g, store, pts, opt)
	}
	// The unit is the scheduling granule: one point per unit in the
	// default from-scratch mode, one warm-fork group per unit when
	// WarmupIntervals is set (the group's members share a simulated
	// prefix, so they must run in one job). Either way, every unit writes
	// only its own members' slots in expansion order, so the sweep stays
	// byte-identical for any worker count.
	units := planUnits(g, pts)
	ro := runner.Options{Workers: opt.Workers}
	if opt.OnDone != nil {
		donePts := 0
		ro.OnDone = func(u, _, _ int) {
			donePts += len(units[u])
			opt.OnDone(donePts, len(pts))
		}
	}
	// Slots of runs that never finished stay nil; a cancelled in-flight
	// run returns its partial engine results but a non-nil ctx error keeps
	// the slot empty — partial reports contain only whole runs.
	unitRes, err := runner.Map(ctx, len(units), ro,
		func(ctx context.Context, u int) (unitResult, error) {
			return runUnit(ctx, g, store, pts, units[u]), ctx.Err()
		})
	cells := make([]*engine.Results, len(pts))
	for u, ur := range unitRes {
		if ur.res == nil {
			continue
		}
		for k, i := range units[u] {
			cells[i] = ur.res[k]
		}
	}
	res := &Result{Grid: g, Total: len(pts), Skipped: g.SkippedCombos()}
	for i, er := range cells {
		if er == nil {
			continue
		}
		res.Runs = append(res.Runs, newRun(pts[i], er))
	}
	res.Completed = len(res.Runs)
	res.Cells = Aggregate(res.Runs)
	res.Warm = warmStats(g, func(yield func(experiments.WarmOutcome)) {
		for _, ur := range unitRes {
			for _, o := range ur.warm {
				yield(o)
			}
		}
	})
	if opt.SeriesDir != "" {
		// After the fan-out, in expansion order: the exported bytes depend
		// only on each run's own results, never on completion order, which
		// extends the worker-count determinism guarantee to the series
		// files. An interrupted sweep exports the runs that finished.
		err = errors.Join(err, ExportSeries(opt.SeriesDir, pts, cells))
	}
	return res, err
}

// openWarmStore opens the grid's persistent warm cache, or returns a nil
// store — RunWarmSharedCached's "no cache" mode — when none is
// configured. Opening re-validates the directory (created if missing,
// must be a writable directory) so a sweep constructed programmatically
// gets the same eager failure the CLI's flag validation gives.
func openWarmStore(g Grid) (*checkpoint.Store, error) {
	if g.WarmCacheDir == "" {
		return nil, nil
	}
	store, err := checkpoint.Open(g.WarmCacheDir)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	return store, nil
}

// warmStats folds every recorded warm outcome into a WarmStats summary
// (nil when warm-fork sharing is off).
func warmStats(g Grid, each func(yield func(experiments.WarmOutcome))) *WarmStats {
	if g.WarmupIntervals <= 0 {
		return nil
	}
	ws := &WarmStats{}
	each(ws.observe)
	return ws
}

// minCIReplicates is the floor below which early termination never
// triggers: a confidence interval needs at least two observations.
const minCIReplicates = 2

// allTight reports whether every scheme's 95% confidence half-width over
// its completed replicates' QMeanUS values is within tol × the absolute
// mean. The comparison is false for n < 2 (half-width +Inf), so a
// one-replicate prefix never terminates.
func allTight(vals [][]float64, tol float64) bool {
	for _, v := range vals {
		mean := 0.0
		for _, x := range v {
			mean += x
		}
		mean /= float64(len(v))
		if !(stats.HalfWidth95(v) <= tol*math.Abs(mean)) {
			return false
		}
	}
	return true
}

// coordID identifies a grid coordinate — every axis except scheme and
// replicate, the two a termination decision spans.
type coordID struct {
	workload   string
	cacheMult  float64
	rateFactor float64
	burstMult  float64
	volumes    int
	routeSkew  float64
}

func pointCoord(p Point) coordID {
	return coordID{p.Workload, p.CacheMult, p.RateFactor, p.BurstMult, p.Volumes, p.RouteSkew}
}

// planChains partitions the expanded points into coordinate chains:
// maximal runs of consecutive points sharing a grid coordinate. Expand
// keeps replicate and scheme the two innermost loops, so each chain is
// one coordinate's full Replicates × Schemes block, in (replicate,
// scheme) order — the unit the adaptive scheduler walks replicate group
// by replicate group.
func planChains(pts []Point) [][]int {
	chains := make([][]int, 0)
	for i := 0; i < len(pts); {
		j := i + 1
		for j < len(pts) && pointCoord(pts[j]) == pointCoord(pts[i]) {
			j++
		}
		u := make([]int, 0, j-i)
		for k := i; k < j; k++ {
			u = append(u, k)
		}
		chains = append(chains, u)
		i = j
	}
	return chains
}

// chainResult is one coordinate chain's outcome under the adaptive
// scheduler: per-point engine results (nil for replicates never
// launched), warm outcomes for the replicate groups that ran, and
// whether the chain stopped early.
type chainResult struct {
	res     []*engine.Results
	warm    []experiments.WarmOutcome
	stopped bool
}

// executeAdaptive is the early-termination execution path (CITolerance >
// 0): one runner job per coordinate chain, each walking its replicate
// groups in expansion order and stopping — freeing the slot for
// unfinished chains — once every scheme's confidence interval is tight.
// The termination decision reads only the chain's own replicate prefix,
// in expansion order, so the output stays byte-identical for every
// worker count; it does NOT match the CITolerance == 0 output whenever
// any chain actually terminates (that is the point), but with no
// termination triggered the runs, cells, and report bytes are identical
// apart from the per-cell CI annotations.
func executeAdaptive(ctx context.Context, g Grid, store *checkpoint.Store, pts []Point, opt Options) (*Result, error) {
	chains := planChains(pts)
	nS := len(g.Schemes)
	var mu sync.Mutex
	donePts := 0
	progress := func(n int) {
		if opt.OnDone == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		donePts += n
		opt.OnDone(donePts, len(pts))
	}
	chainRes, err := runner.Map(ctx, len(chains), runner.Options{Workers: opt.Workers},
		func(ctx context.Context, c int) (chainResult, error) {
			idx := chains[c]
			reps := len(idx) / nS
			out := chainResult{res: make([]*engine.Results, len(idx))}
			vals := make([][]float64, nS)
			for rep := 0; rep < reps; rep++ {
				group := idx[rep*nS : (rep+1)*nS]
				ur := runUnit(ctx, g, store, pts, group)
				if err := ctx.Err(); err != nil {
					// The interrupted replicate group — and, because a job
					// error drops the whole slot, the chain — is discarded:
					// partial reports contain only whole runs.
					return out, err
				}
				copy(out.res[rep*nS:], ur.res)
				out.warm = append(out.warm, ur.warm...)
				for s := 0; s < nS; s++ {
					vals[s] = append(vals[s], ur.res[s].CacheLoadMean()/1e3)
				}
				progress(len(group))
				if rep+1 < reps && rep+1 >= minCIReplicates && allTight(vals, g.CITolerance) {
					out.stopped = true
					break
				}
			}
			return out, nil
		})
	cells := make([]*engine.Results, len(pts))
	stopped := make(map[coordID]bool)
	for c, cr := range chainRes {
		if cr.res == nil {
			continue
		}
		for k, i := range chains[c] {
			cells[i] = cr.res[k]
		}
		if cr.stopped {
			stopped[pointCoord(pts[chains[c][0]])] = true
		}
	}
	res := &Result{Grid: g, Total: len(pts), Skipped: g.SkippedCombos()}
	for i, er := range cells {
		if er == nil {
			continue
		}
		res.Runs = append(res.Runs, newRun(pts[i], er))
	}
	res.Completed = len(res.Runs)
	res.Cells = Aggregate(res.Runs)
	res.annotateCI(stopped)
	res.Warm = warmStats(g, func(yield func(experiments.WarmOutcome)) {
		for _, cr := range chainRes {
			for _, o := range cr.warm {
				yield(o)
			}
		}
	})
	if opt.SeriesDir != "" {
		err = errors.Join(err, ExportSeries(opt.SeriesDir, pts, cells))
	}
	return res, err
}

// annotateCI stamps every cell with its achieved confidence half-width
// and whether its coordinate terminated early — only called on the
// adaptive path, so tolerance-off sweeps never populate the fields.
func (r *Result) annotateCI(stopped map[coordID]bool) {
	for ci := range r.Cells {
		c := &r.Cells[ci]
		c.EarlyTerminated = stopped[coordID{c.Workload, c.CacheMult, c.RateFactor, c.BurstMult, c.Volumes, c.RouteSkew}]
		var vals []float64
		for _, run := range r.Runs {
			if run.Workload == c.Workload && run.Scheme == c.Scheme && run.CacheMult == c.CacheMult &&
				run.RateFactor == c.RateFactor && run.BurstMult == c.BurstMult && run.Volumes == c.Volumes &&
				run.RouteSkew == c.RouteSkew {
				vals = append(vals, run.QMeanUS)
			}
		}
		// Fewer than two replicates carry no interval; zero (not the
		// mathematical +Inf) keeps the field JSON-encodable.
		if len(vals) >= minCIReplicates {
			c.QCIHalfUS = stats.HalfWidth95(vals)
		}
	}
}

// warmKey strips the fields that distinguish the schemes of one
// controlled comparison: everything left — workload, seed, intervals,
// rate, cache and burst multipliers, volume count, route skew — shapes
// the shared warmup prefix, so two specs with equal keys are the same
// simulation until a balancer first acts. RouteVariant is stripped too:
// it is set only on ARRAY-LB cells — inert at one volume, and at more
// the ARRAY-LB member runs scratch anyway (its controller diverges from
// the group's statically routed prefix at the first barrier).
func warmKey(s experiments.Spec) experiments.Spec {
	s.Scheme = ""
	s.RouteVariant = ""
	return s
}

// planUnits partitions the expanded points into scheduling units. With
// warm-fork sharing off every point is its own unit (the classic fully
// parallel sweep). With it on, maximal runs of consecutive points that
// agree on warmKey form one unit each — Expand keeps a comparison's
// schemes adjacent (scheme is the innermost loop), so the grouping is a
// single pass.
func planUnits(g Grid, pts []Point) [][]int {
	units := make([][]int, 0, len(pts))
	if g.WarmupIntervals <= 0 {
		for i := range pts {
			units = append(units, []int{i})
		}
		return units
	}
	for i := 0; i < len(pts); {
		j := i + 1
		for j < len(pts) && warmKey(pts[j].Spec) == warmKey(pts[i].Spec) {
			j++
		}
		u := make([]int, 0, j-i)
		for k := i; k < j; k++ {
			u = append(u, k)
		}
		units = append(units, u)
		i = j
	}
	return units
}

func newRun(pt Point, er *engine.Results) Run {
	return Run{
		Workload:     pt.Workload,
		Scheme:       pt.Scheme,
		CacheMult:    pt.CacheMult,
		RateFactor:   pt.RateFactor,
		BurstMult:    pt.BurstMult,
		Volumes:      pt.Volumes,
		RouteSkew:    pt.RouteSkew,
		Replicate:    pt.Replicate,
		Seed:         pt.Spec.Seed,
		QMeanUS:      er.CacheLoadMean() / 1e3,
		DiskQMeanUS:  er.DiskLoadMean() / 1e3,
		AvgLatencyUS: float64(er.AppLatency.Mean()) / 1e3,
		HitRatio:     er.CacheStats.HitRatio(),
		PolicyFlips:  len(er.Timeline),
		Requests:     er.AppCompleted,
	}
}
