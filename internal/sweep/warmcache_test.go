package sweep

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// cacheGrid is a small warm-fork comparison with a persistent cache: one
// shareable width-1 coordinate, two replicates, all four schemes.
func cacheGrid(dir string) Grid {
	g := Grid{
		Workloads:       []string{"mail"},
		Schemes:         []string{"WB", "SIB", "LBICA", "ARRAY-LB"},
		Replicates:      2,
		Seed:            11,
		Intervals:       40,
		WarmupIntervals: 10,
		WarmCacheDir:    dir,
	}
	return g
}

// TestWarmCacheSweepByteIdentical extends the sweep-layer identity to the
// persistent cache: a cold-store sweep, a second warm-cache-hit sweep, and
// the uncached warm-fork sweep must produce identical runs and cells, with
// the warm stats telling the three executions apart.
func TestWarmCacheSweepByteIdentical(t *testing.T) {
	uncached, err := Execute(t.Context(), cacheGrid(""), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if uncached.Warm.CacheHits != 0 || uncached.Warm.CacheStores != 0 || uncached.Warm.CacheCorrupt != 0 {
		t.Fatalf("uncached sweep reported cache traffic: %+v", uncached.Warm)
	}

	dir := filepath.Join(t.TempDir(), "warm-cache")
	cold, err := Execute(t.Context(), cacheGrid(dir), Options{Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := Execute(t.Context(), cacheGrid(dir), Options{Workers: 0})
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		res  *Result
	}{{"cold-store", cold}, {"cache-hit", hot}} {
		if !reflect.DeepEqual(tc.res.Runs, uncached.Runs) {
			t.Errorf("%s runs diverge from uncached sweep", tc.name)
		}
		if !reflect.DeepEqual(tc.res.Cells, uncached.Cells) {
			t.Errorf("%s cells diverge from uncached sweep", tc.name)
		}
		ws := tc.res.Warm
		if ws == nil {
			t.Fatalf("%s sweep reported no warm stats", tc.name)
		}
		if ws.Leaders+ws.Forked+ws.Scratch != tc.res.Completed {
			t.Errorf("%s warm stats cover %d runs, want %d", tc.name, ws.Leaders+ws.Forked+ws.Scratch, tc.res.Completed)
		}
	}
	// Every leader prefix and every (single-volume) scratch member's
	// private prefix goes through the store — two replicates double both.
	// Forked members never touch it.
	wantTraffic := cold.Warm.Leaders + cold.Warm.Scratch
	if wantTraffic == 0 {
		t.Fatal("grid produced no store-backed prefixes to count")
	}
	if cold.Warm.CacheStores != wantTraffic || cold.Warm.CacheHits != 0 {
		t.Errorf("cold sweep warm stats %+v, want %d stores / 0 hits", cold.Warm, wantTraffic)
	}
	if hot.Warm.CacheHits != wantTraffic || hot.Warm.CacheStores != 0 {
		t.Errorf("hot sweep warm stats %+v, want %d hits / 0 stores", hot.Warm, wantTraffic)
	}
	if cold.Warm.CacheCorrupt != 0 || hot.Warm.CacheCorrupt != 0 {
		t.Errorf("clean store reported corrupt entries: cold %+v hot %+v", cold.Warm, hot.Warm)
	}
	// Leaders count cached leaders too.
	if cold.Warm.Leaders != uncached.Warm.Leaders || hot.Warm.Leaders != uncached.Warm.Leaders {
		t.Errorf("leader counts diverge: uncached %d, cold %d, hot %d",
			uncached.Warm.Leaders, cold.Warm.Leaders, hot.Warm.Leaders)
	}
}

// A cache directory without a warmup is a contradiction the grid rejects
// eagerly, and an unusable directory fails Execute before any run starts.
func TestWarmCacheValidation(t *testing.T) {
	g := Grid{WarmCacheDir: "/tmp/somewhere"}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "warmup") {
		t.Errorf("Validate(cache without warmup) = %v, want warmup error", err)
	}

	// A regular file where the cache directory should be: Execute must
	// fail up front.
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := cacheGrid(file)
	if _, err := Execute(t.Context(), bad, Options{Workers: 1}); err == nil {
		t.Error("Execute accepted a regular file as the warm cache directory")
	}
}
