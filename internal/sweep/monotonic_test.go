package sweep

import (
	"testing"
)

// TestCacheSizeMonotonicity is the cross-cell sanity invariant only the
// sweep layer can check: with every other axis fixed, growing the
// cache-size multiplier must not worsen the WB baseline's disk-subsystem
// mean max-queue-time beyond noise tolerance, and must not shrink its hit
// ratio. (The cache-side queue time is deliberately not checked: a bigger
// cache absorbs more traffic, so its own queue legitimately grows — it is
// the disk the extra capacity must relieve.)
func TestCacheSizeMonotonicity(t *testing.T) {
	intervals := 25
	if testing.Short() {
		intervals = 12
	}
	g := Grid{
		Schemes:    []string{"WB"},
		CacheMults: []float64{0.5, 1, 2},
		Seed:       7,
		Intervals:  intervals,
	}
	res, err := Execute(t.Context(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Cells arrive in expansion order: workload-major, cache-mult inner —
	// so per workload the three multipliers are adjacent and ascending.
	byWorkload := make(map[string][]Cell)
	for _, c := range res.Cells {
		byWorkload[c.Workload] = append(byWorkload[c.Workload], c)
	}
	for wl, cells := range byWorkload {
		if len(cells) != len(g.CacheMults) {
			t.Fatalf("%s: %d cells, want %d", wl, len(cells), len(g.CacheMults))
		}
		for i := 1; i < len(cells); i++ {
			prev, cur := cells[i-1], cells[i]
			if cur.CacheMult <= prev.CacheMult {
				t.Fatalf("%s: cells not in ascending cache-mult order: %v after %v", wl, cur.CacheMult, prev.CacheMult)
			}
			// 10% relative + 1 µs absolute noise tolerance: the disk load
			// falls by orders of magnitude when capacity doubles, so this
			// flags real regressions without tripping on simulator noise.
			if tol := prev.DiskQMeanUS*1.10 + 1; cur.DiskQMeanUS > tol {
				t.Errorf("%s: disk max-queue-time worsened when cache grew %gx → %gx: %.1fµs → %.1fµs (tolerance %.1fµs)",
					wl, prev.CacheMult, cur.CacheMult, prev.DiskQMeanUS, cur.DiskQMeanUS, tol)
			}
			if cur.HitRatioMean < prev.HitRatioMean-0.02 {
				t.Errorf("%s: hit ratio fell when cache grew %gx → %gx: %.3f → %.3f",
					wl, prev.CacheMult, cur.CacheMult, prev.HitRatioMean, cur.HitRatioMean)
			}
		}
	}
}
