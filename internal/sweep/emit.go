package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"text/tabwriter"
)

// cellsHeader is the original CSV column layout; cellsHeaderBurst adds
// the burst_mult coordinate after rate_factor. The emitter writes the
// legacy layout whenever every cell sits at the default burst multiplier
// (so pre-existing paper-trio artifacts stay byte-identical) and the
// extended one otherwise; ParseCellsCSV accepts exactly these two
// layouts, so the fuzzed round-trip property (parse(emit(x)) == x)
// doubles as a schema lock.
var cellsHeader = []string{
	"workload", "scheme", "cache_mult", "rate_factor", "replicates",
	"q_mean_us", "q_min_us", "q_max_us", "disk_q_mean_us",
	"latency_mean_us", "hit_ratio_mean", "policy_flips_mean",
	"speedup_vs_wb", "speedup_vs_sib",
}

var cellsHeaderBurst = []string{
	"workload", "scheme", "cache_mult", "rate_factor", "burst_mult", "replicates",
	"q_mean_us", "q_min_us", "q_max_us", "disk_q_mean_us",
	"latency_mean_us", "hit_ratio_mean", "policy_flips_mean",
	"speedup_vs_wb", "speedup_vs_sib",
}

// burstIdx is burst_mult's position in cellsHeaderBurst.
const burstIdx = 4

// ftoa formats floats losslessly: strconv's shortest representation that
// parses back to the identical bits, which is what lets the emitters'
// round-trip property hold exactly instead of "within epsilon".
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// hasBurstAxis reports whether any cell sits off the default burst
// multiplier — the condition for emitting the extended CSV layout. A
// BurstMult of 0 (a hand-built Cell that never went through Normalize)
// also counts: dropping the column would silently rewrite it to 1 on
// parse-back.
func hasBurstAxis(cells []Cell) bool {
	for _, c := range cells {
		if c.BurstMult != 1 {
			return true
		}
	}
	return false
}

// WriteCellsCSV emits the per-cell summaries. Fields are quoted by the
// csv writer as needed (registry workload names may contain commas,
// quotes or anything else), floats in shortest-round-trip form. The
// burst_mult column appears only when some cell is off the default
// multiplier, so sweeps without a burst axis emit the legacy layout byte
// for byte.
func WriteCellsCSV(w io.Writer, cells []Cell) error {
	burst := hasBurstAxis(cells)
	cw := csv.NewWriter(w)
	header := cellsHeader
	if burst {
		header = cellsHeaderBurst
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, c := range cells {
		rec := make([]string, 0, len(header))
		rec = append(rec, c.Workload, c.Scheme, ftoa(c.CacheMult), ftoa(c.RateFactor))
		if burst {
			rec = append(rec, ftoa(c.BurstMult))
		}
		rec = append(rec,
			strconv.Itoa(c.Replicates),
			ftoa(c.QMeanUS), ftoa(c.QMinUS), ftoa(c.QMaxUS), ftoa(c.DiskQMeanUS),
			ftoa(c.LatencyMeanUS), ftoa(c.HitRatioMean), ftoa(c.PolicyFlipsMean),
			ftoa(c.SpeedupVsWB), ftoa(c.SpeedupVsSIB),
		)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParseCellsCSV reads back a stream written by WriteCellsCSV, accepting
// both the legacy layout (no burst_mult column; every cell is at the
// default multiplier 1) and the extended one.
func ParseCellsCSV(r io.Reader) ([]Cell, error) {
	cr := csv.NewReader(r)
	// Width is pinned to the header row (which must match one of the two
	// known layouts below); FieldsPerRecord = 0 makes the reader enforce
	// it on every following record.
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("sweep: reading cells CSV: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("sweep: cells CSV is empty (missing header)")
	}
	header := cellsHeader
	if len(recs[0]) == len(cellsHeaderBurst) {
		header = cellsHeaderBurst
	}
	burst := len(header) == len(cellsHeaderBurst)
	if len(recs[0]) != len(header) {
		return nil, fmt.Errorf("sweep: cells CSV header has %d columns, want %d or %d",
			len(recs[0]), len(cellsHeader), len(cellsHeaderBurst))
	}
	for i, col := range header {
		if recs[0][i] != col {
			return nil, fmt.Errorf("sweep: cells CSV header column %d = %q, want %q", i, recs[0][i], col)
		}
	}
	// Column offset of everything at or past the optional burst_mult slot.
	off := func(i int) int {
		if burst && i >= burstIdx {
			return i + 1
		}
		return i
	}
	cells := make([]Cell, 0, len(recs)-1)
	for _, rec := range recs[1:] {
		c := Cell{BurstMult: 1} // legacy files predate the burst axis
		var err error
		c.Workload, c.Scheme = rec[0], rec[1]
		if c.Replicates, err = strconv.Atoi(rec[off(4)]); err != nil {
			return nil, fmt.Errorf("sweep: cells CSV replicates: %w", err)
		}
		fields := []struct {
			dst *float64
			s   string
		}{
			{&c.CacheMult, rec[2]}, {&c.RateFactor, rec[3]},
			{&c.QMeanUS, rec[off(5)]}, {&c.QMinUS, rec[off(6)]}, {&c.QMaxUS, rec[off(7)]},
			{&c.DiskQMeanUS, rec[off(8)]}, {&c.LatencyMeanUS, rec[off(9)]},
			{&c.HitRatioMean, rec[off(10)]}, {&c.PolicyFlipsMean, rec[off(11)]},
			{&c.SpeedupVsWB, rec[off(12)]}, {&c.SpeedupVsSIB, rec[off(13)]},
		}
		if burst {
			fields = append(fields, struct {
				dst *float64
				s   string
			}{&c.BurstMult, rec[burstIdx]})
		}
		for _, f := range fields {
			if *f.dst, err = strconv.ParseFloat(f.s, 64); err != nil {
				return nil, fmt.Errorf("sweep: cells CSV float field: %w", err)
			}
			// The emitter never writes NaN or ±Inf (simulation metrics are
			// finite); accepting them here would let a corrupt file survive
			// a parse-emit-parse cycle unequal to itself.
			if math.IsNaN(*f.dst) || math.IsInf(*f.dst, 0) {
				return nil, fmt.Errorf("sweep: cells CSV non-finite float %q", f.s)
			}
		}
		cells = append(cells, c)
	}
	return cells, nil
}

// WriteJSON emits the whole result (grid, runs, cells) as indented JSON.
func WriteJSON(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// WriteCellsJSON emits just the per-cell summaries as indented JSON.
func WriteCellsJSON(w io.Writer, cells []Cell) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cells)
}

// ParseCellsJSON reads back a stream written by WriteCellsJSON.
func ParseCellsJSON(r io.Reader) ([]Cell, error) {
	var cells []Cell
	if err := json.NewDecoder(r).Decode(&cells); err != nil {
		return nil, fmt.Errorf("sweep: decoding cells JSON: %w", err)
	}
	return cells, nil
}

// WriteReport renders the compact text report: the grid shape, a per-cell
// table, and — when the sweep was interrupted — how much of it finished.
// The burst-intensity column appears only when the grid actually sweeps
// it, so reports without a burst axis render exactly as they always have.
func WriteReport(w io.Writer, res *Result) error {
	g := res.Grid
	burst := len(g.BurstMults) > 1 || hasBurstAxis(res.Cells)
	burstShape := ""
	if burst {
		burstShape = fmt.Sprintf(" × %d bursts", len(g.BurstMults))
	}
	if _, err := fmt.Fprintf(w,
		"sweep: %d workloads × %d schemes × %d cache sizes × %d rates%s × %d seeds = %d runs (%d completed)\n\n",
		len(g.Workloads), len(g.Schemes), len(g.CacheMults), len(g.RateFactors),
		burstShape, g.Replicates, res.Total, res.Completed); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', tabwriter.AlignRight)
	burstCol := ""
	if burst {
		burstCol = "burst×\t"
	}
	fmt.Fprintln(tw, "workload\tscheme\tcache×\trate×\t"+burstCol+"reps\tq mean µs\tq min µs\tq max µs\tdisk q µs\tlat µs\thit\tflips\tvs WB\tvs SIB\t")
	for _, c := range res.Cells {
		vsWB, vsSIB := "-", "-"
		if c.SpeedupVsWB != 0 {
			vsWB = fmt.Sprintf("%.2f×", c.SpeedupVsWB)
		}
		if c.SpeedupVsSIB != 0 {
			vsSIB = fmt.Sprintf("%.2f×", c.SpeedupVsSIB)
		}
		burstVal := ""
		if burst {
			burstVal = fmt.Sprintf("%g\t", c.BurstMult)
		}
		fmt.Fprintf(tw, "%s\t%s\t%g\t%g\t%s%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.3f\t%.1f\t%s\t%s\t\n",
			c.Workload, c.Scheme, c.CacheMult, c.RateFactor, burstVal, c.Replicates,
			c.QMeanUS, c.QMinUS, c.QMaxUS, c.DiskQMeanUS,
			c.LatencyMeanUS, c.HitRatioMean, c.PolicyFlipsMean, vsWB, vsSIB)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if res.Completed < res.Total {
		if _, err := fmt.Fprintf(w, "\npartial report: %d of %d runs completed before interruption\n",
			res.Completed, res.Total); err != nil {
			return err
		}
	}
	return nil
}
