package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"text/tabwriter"
)

// cellsHeader is the CSV column layout; ParseCellsCSV rejects anything
// else, so the fuzzed round-trip property (parse(emit(x)) == x) doubles as
// a schema lock.
var cellsHeader = []string{
	"workload", "scheme", "cache_mult", "rate_factor", "replicates",
	"q_mean_us", "q_min_us", "q_max_us", "disk_q_mean_us",
	"latency_mean_us", "hit_ratio_mean", "policy_flips_mean",
	"speedup_vs_wb", "speedup_vs_sib",
}

// ftoa formats floats losslessly: strconv's shortest representation that
// parses back to the identical bits, which is what lets the emitters'
// round-trip property hold exactly instead of "within epsilon".
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCellsCSV emits the per-cell summaries. Fields are quoted by the
// csv writer as needed, floats in shortest-round-trip form.
func WriteCellsCSV(w io.Writer, cells []Cell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(cellsHeader); err != nil {
		return err
	}
	for _, c := range cells {
		rec := []string{
			c.Workload, c.Scheme, ftoa(c.CacheMult), ftoa(c.RateFactor),
			strconv.Itoa(c.Replicates),
			ftoa(c.QMeanUS), ftoa(c.QMinUS), ftoa(c.QMaxUS), ftoa(c.DiskQMeanUS),
			ftoa(c.LatencyMeanUS), ftoa(c.HitRatioMean), ftoa(c.PolicyFlipsMean),
			ftoa(c.SpeedupVsWB), ftoa(c.SpeedupVsSIB),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParseCellsCSV reads back a stream written by WriteCellsCSV.
func ParseCellsCSV(r io.Reader) ([]Cell, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(cellsHeader)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("sweep: reading cells CSV: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("sweep: cells CSV is empty (missing header)")
	}
	for i, col := range cellsHeader {
		if recs[0][i] != col {
			return nil, fmt.Errorf("sweep: cells CSV header column %d = %q, want %q", i, recs[0][i], col)
		}
	}
	cells := make([]Cell, 0, len(recs)-1)
	for _, rec := range recs[1:] {
		var c Cell
		var err error
		fields := []struct {
			dst *float64
			s   string
		}{
			{&c.CacheMult, rec[2]}, {&c.RateFactor, rec[3]},
			{&c.QMeanUS, rec[5]}, {&c.QMinUS, rec[6]}, {&c.QMaxUS, rec[7]},
			{&c.DiskQMeanUS, rec[8]}, {&c.LatencyMeanUS, rec[9]},
			{&c.HitRatioMean, rec[10]}, {&c.PolicyFlipsMean, rec[11]},
			{&c.SpeedupVsWB, rec[12]}, {&c.SpeedupVsSIB, rec[13]},
		}
		c.Workload, c.Scheme = rec[0], rec[1]
		if c.Replicates, err = strconv.Atoi(rec[4]); err != nil {
			return nil, fmt.Errorf("sweep: cells CSV replicates: %w", err)
		}
		for _, f := range fields {
			if *f.dst, err = strconv.ParseFloat(f.s, 64); err != nil {
				return nil, fmt.Errorf("sweep: cells CSV float field: %w", err)
			}
			// The emitter never writes NaN or ±Inf (simulation metrics are
			// finite); accepting them here would let a corrupt file survive
			// a parse-emit-parse cycle unequal to itself.
			if math.IsNaN(*f.dst) || math.IsInf(*f.dst, 0) {
				return nil, fmt.Errorf("sweep: cells CSV non-finite float %q", f.s)
			}
		}
		cells = append(cells, c)
	}
	return cells, nil
}

// WriteJSON emits the whole result (grid, runs, cells) as indented JSON.
func WriteJSON(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// WriteCellsJSON emits just the per-cell summaries as indented JSON.
func WriteCellsJSON(w io.Writer, cells []Cell) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cells)
}

// ParseCellsJSON reads back a stream written by WriteCellsJSON.
func ParseCellsJSON(r io.Reader) ([]Cell, error) {
	var cells []Cell
	if err := json.NewDecoder(r).Decode(&cells); err != nil {
		return nil, fmt.Errorf("sweep: decoding cells JSON: %w", err)
	}
	return cells, nil
}

// WriteReport renders the compact text report: the grid shape, a per-cell
// table, and — when the sweep was interrupted — how much of it finished.
func WriteReport(w io.Writer, res *Result) error {
	g := res.Grid
	if _, err := fmt.Fprintf(w,
		"sweep: %d workloads × %d schemes × %d cache sizes × %d rates × %d seeds = %d runs (%d completed)\n\n",
		len(g.Workloads), len(g.Schemes), len(g.CacheMults), len(g.RateFactors),
		g.Replicates, res.Total, res.Completed); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "workload\tscheme\tcache×\trate×\treps\tq mean µs\tq min µs\tq max µs\tdisk q µs\tlat µs\thit\tflips\tvs WB\tvs SIB\t")
	for _, c := range res.Cells {
		vsWB, vsSIB := "-", "-"
		if c.SpeedupVsWB != 0 {
			vsWB = fmt.Sprintf("%.2f×", c.SpeedupVsWB)
		}
		if c.SpeedupVsSIB != 0 {
			vsSIB = fmt.Sprintf("%.2f×", c.SpeedupVsSIB)
		}
		fmt.Fprintf(tw, "%s\t%s\t%g\t%g\t%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.3f\t%.1f\t%s\t%s\t\n",
			c.Workload, c.Scheme, c.CacheMult, c.RateFactor, c.Replicates,
			c.QMeanUS, c.QMinUS, c.QMaxUS, c.DiskQMeanUS,
			c.LatencyMeanUS, c.HitRatioMean, c.PolicyFlipsMean, vsWB, vsSIB)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if res.Completed < res.Total {
		if _, err := fmt.Fprintf(w, "\npartial report: %d of %d runs completed before interruption\n",
			res.Completed, res.Total); err != nil {
			return err
		}
	}
	return nil
}
