package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"text/tabwriter"
)

// cellsHeader is the original CSV column layout; cellsHeaderBurst adds
// the burst_mult coordinate after rate_factor, and cellsHeaderArray adds
// the volumes/route_skew coordinates after that. The emitter writes the
// narrowest layout that loses nothing: legacy whenever every cell sits at
// the default burst multiplier and a single unsharded volume (so
// pre-existing paper-trio artifacts stay byte-identical), the burst
// layout when only the burst axis is in play, and the array layout
// otherwise; ParseCellsCSV accepts exactly these three layouts, so the
// fuzzed round-trip property (parse(emit(x)) == x) doubles as a schema
// lock.
var cellsHeader = []string{
	"workload", "scheme", "cache_mult", "rate_factor", "replicates",
	"q_mean_us", "q_min_us", "q_max_us", "disk_q_mean_us",
	"latency_mean_us", "hit_ratio_mean", "policy_flips_mean",
	"speedup_vs_wb", "speedup_vs_sib",
}

var cellsHeaderBurst = []string{
	"workload", "scheme", "cache_mult", "rate_factor", "burst_mult", "replicates",
	"q_mean_us", "q_min_us", "q_max_us", "disk_q_mean_us",
	"latency_mean_us", "hit_ratio_mean", "policy_flips_mean",
	"speedup_vs_wb", "speedup_vs_sib",
}

var cellsHeaderArray = []string{
	"workload", "scheme", "cache_mult", "rate_factor", "burst_mult", "volumes", "route_skew", "replicates",
	"q_mean_us", "q_min_us", "q_max_us", "disk_q_mean_us",
	"latency_mean_us", "hit_ratio_mean", "policy_flips_mean",
	"speedup_vs_wb", "speedup_vs_sib",
}

// ftoa formats floats losslessly: strconv's shortest representation that
// parses back to the identical bits, which is what lets the emitters'
// round-trip property hold exactly instead of "within epsilon".
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// hasBurstAxis reports whether any cell sits off the default burst
// multiplier — the condition for emitting at least the burst CSV layout.
// A BurstMult of 0 (a hand-built Cell that never went through Normalize)
// also counts: dropping the column would silently rewrite it to 1 on
// parse-back.
func hasBurstAxis(cells []Cell) bool {
	for _, c := range cells {
		if c.BurstMult != 1 {
			return true
		}
	}
	return false
}

// hasArrayAxis reports whether any cell sits off the single-volume
// default — the condition for emitting the array CSV layout. Volumes of 0
// (a hand-built Cell) counts for the same reason as hasBurstAxis.
func hasArrayAxis(cells []Cell) bool {
	for _, c := range cells {
		if c.Volumes != 1 || c.RouteSkew != 0 {
			return true
		}
	}
	return false
}

// cellsLayout picks the narrowest header that can carry every cell.
func cellsLayout(cells []Cell) []string {
	switch {
	case hasArrayAxis(cells):
		return cellsHeaderArray
	case hasBurstAxis(cells):
		return cellsHeaderBurst
	default:
		return cellsHeader
	}
}

// WriteCellsCSV emits the per-cell summaries. Fields are quoted by the
// csv writer as needed (registry workload names may contain commas,
// quotes or anything else), floats in shortest-round-trip form. The
// burst_mult and volumes/route_skew columns appear only when some cell is
// off their defaults, so sweeps without those axes emit the earlier
// layouts byte for byte.
func WriteCellsCSV(w io.Writer, cells []Cell) error {
	header := cellsLayout(cells)
	burst := len(header) >= len(cellsHeaderBurst)
	arr := len(header) == len(cellsHeaderArray)
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, c := range cells {
		rec := make([]string, 0, len(header))
		rec = append(rec, c.Workload, c.Scheme, ftoa(c.CacheMult), ftoa(c.RateFactor))
		if burst {
			rec = append(rec, ftoa(c.BurstMult))
		}
		if arr {
			rec = append(rec, strconv.Itoa(c.Volumes), ftoa(c.RouteSkew))
		}
		rec = append(rec,
			strconv.Itoa(c.Replicates),
			ftoa(c.QMeanUS), ftoa(c.QMinUS), ftoa(c.QMaxUS), ftoa(c.DiskQMeanUS),
			ftoa(c.LatencyMeanUS), ftoa(c.HitRatioMean), ftoa(c.PolicyFlipsMean),
			ftoa(c.SpeedupVsWB), ftoa(c.SpeedupVsSIB),
		)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParseCellsCSV reads back a stream written by WriteCellsCSV, accepting
// all three layouts: legacy (no burst_mult column; every cell is at the
// default multiplier 1), burst, and array (volumes/route_skew columns).
func ParseCellsCSV(r io.Reader) ([]Cell, error) {
	cr := csv.NewReader(r)
	// Width is pinned to the header row (which must match one of the
	// known layouts below); FieldsPerRecord = 0 makes the reader enforce
	// it on every following record.
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("sweep: reading cells CSV: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("sweep: cells CSV is empty (missing header)")
	}
	var header []string
	switch len(recs[0]) {
	case len(cellsHeader):
		header = cellsHeader
	case len(cellsHeaderBurst):
		header = cellsHeaderBurst
	case len(cellsHeaderArray):
		header = cellsHeaderArray
	default:
		return nil, fmt.Errorf("sweep: cells CSV header has %d columns, want %d, %d or %d",
			len(recs[0]), len(cellsHeader), len(cellsHeaderBurst), len(cellsHeaderArray))
	}
	col := make(map[string]int, len(header))
	for i, name := range header {
		if recs[0][i] != name {
			return nil, fmt.Errorf("sweep: cells CSV header column %d = %q, want %q", i, recs[0][i], name)
		}
		col[name] = i
	}
	cells := make([]Cell, 0, len(recs)-1)
	for _, rec := range recs[1:] {
		// Files written before an axis existed carry its default.
		c := Cell{BurstMult: 1, Volumes: 1}
		var err error
		c.Workload, c.Scheme = rec[0], rec[1]
		if c.Replicates, err = strconv.Atoi(rec[col["replicates"]]); err != nil {
			return nil, fmt.Errorf("sweep: cells CSV replicates: %w", err)
		}
		if i, ok := col["volumes"]; ok {
			if c.Volumes, err = strconv.Atoi(rec[i]); err != nil {
				return nil, fmt.Errorf("sweep: cells CSV volumes: %w", err)
			}
		}
		fields := []struct {
			dst *float64
			s   string
		}{
			{&c.CacheMult, rec[col["cache_mult"]]}, {&c.RateFactor, rec[col["rate_factor"]]},
			{&c.QMeanUS, rec[col["q_mean_us"]]}, {&c.QMinUS, rec[col["q_min_us"]]}, {&c.QMaxUS, rec[col["q_max_us"]]},
			{&c.DiskQMeanUS, rec[col["disk_q_mean_us"]]}, {&c.LatencyMeanUS, rec[col["latency_mean_us"]]},
			{&c.HitRatioMean, rec[col["hit_ratio_mean"]]}, {&c.PolicyFlipsMean, rec[col["policy_flips_mean"]]},
			{&c.SpeedupVsWB, rec[col["speedup_vs_wb"]]}, {&c.SpeedupVsSIB, rec[col["speedup_vs_sib"]]},
		}
		if i, ok := col["burst_mult"]; ok {
			fields = append(fields, struct {
				dst *float64
				s   string
			}{&c.BurstMult, rec[i]})
		}
		if i, ok := col["route_skew"]; ok {
			fields = append(fields, struct {
				dst *float64
				s   string
			}{&c.RouteSkew, rec[i]})
		}
		for _, f := range fields {
			if *f.dst, err = strconv.ParseFloat(f.s, 64); err != nil {
				return nil, fmt.Errorf("sweep: cells CSV float field: %w", err)
			}
			// The emitter never writes NaN or ±Inf (simulation metrics are
			// finite); accepting them here would let a corrupt file survive
			// a parse-emit-parse cycle unequal to itself.
			if math.IsNaN(*f.dst) || math.IsInf(*f.dst, 0) {
				return nil, fmt.Errorf("sweep: cells CSV non-finite float %q", f.s)
			}
		}
		cells = append(cells, c)
	}
	return cells, nil
}

// WriteJSON emits the whole result (grid, runs, cells) as indented JSON.
func WriteJSON(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// WriteCellsJSON emits just the per-cell summaries as indented JSON.
func WriteCellsJSON(w io.Writer, cells []Cell) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cells)
}

// ParseCellsJSON reads back a stream written by WriteCellsJSON.
func ParseCellsJSON(r io.Reader) ([]Cell, error) {
	var cells []Cell
	if err := json.NewDecoder(r).Decode(&cells); err != nil {
		return nil, fmt.Errorf("sweep: decoding cells JSON: %w", err)
	}
	return cells, nil
}

// WriteReport renders the compact text report: the grid shape, a per-cell
// table, and — when the sweep was interrupted — how much of it finished.
// The burst-intensity and array columns appear only when the grid
// actually sweeps them, so reports without those axes render exactly as
// they always have.
func WriteReport(w io.Writer, res *Result) error {
	g := res.Grid
	burst := len(g.BurstMults) > 1 || hasBurstAxis(res.Cells)
	arr := len(g.Volumes) > 1 || len(g.RouteSkews) > 1 || hasArrayAxis(res.Cells)
	burstShape := ""
	if burst {
		burstShape = fmt.Sprintf(" × %d bursts", len(g.BurstMults))
	}
	arrShape := ""
	if arr {
		arrShape = fmt.Sprintf(" × %d widths × %d skews", len(g.Volumes), len(g.RouteSkews))
	}
	if _, err := fmt.Fprintf(w,
		"sweep: %d workloads × %d schemes × %d cache sizes × %d rates%s%s × %d seeds = %d runs (%d completed)\n\n",
		len(g.Workloads), len(g.Schemes), len(g.CacheMults), len(g.RateFactors),
		burstShape, arrShape, g.Replicates, res.Total, res.Completed); err != nil {
		return err
	}
	for _, s := range res.Skipped {
		if _, err := fmt.Fprintf(w, "skipped: %s\n", s); err != nil {
			return err
		}
	}
	if len(res.Skipped) > 0 {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', tabwriter.AlignRight)
	burstCol := ""
	if burst {
		burstCol = "burst×\t"
	}
	arrCol := ""
	if arr {
		arrCol = "vols\tskew\t"
	}
	fmt.Fprintln(tw, "workload\tscheme\tcache×\trate×\t"+burstCol+arrCol+"reps\tq mean µs\tq min µs\tq max µs\tdisk q µs\tlat µs\thit\tflips\tvs WB\tvs SIB\t")
	for _, c := range res.Cells {
		vsWB, vsSIB := "-", "-"
		if c.SpeedupVsWB != 0 {
			vsWB = fmt.Sprintf("%.2f×", c.SpeedupVsWB)
		}
		if c.SpeedupVsSIB != 0 {
			vsSIB = fmt.Sprintf("%.2f×", c.SpeedupVsSIB)
		}
		burstVal := ""
		if burst {
			burstVal = fmt.Sprintf("%g\t", c.BurstMult)
		}
		arrVal := ""
		if arr {
			arrVal = fmt.Sprintf("%d\t%g\t", c.Volumes, c.RouteSkew)
		}
		fmt.Fprintf(tw, "%s\t%s\t%g\t%g\t%s%s%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.3f\t%.1f\t%s\t%s\t\n",
			c.Workload, c.Scheme, c.CacheMult, c.RateFactor, burstVal, arrVal, c.Replicates,
			c.QMeanUS, c.QMinUS, c.QMaxUS, c.DiskQMeanUS,
			c.LatencyMeanUS, c.HitRatioMean, c.PolicyFlipsMean, vsWB, vsSIB)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	// Early-termination summary, gated on the tolerance so tolerance-off
	// reports keep their historical bytes.
	if res.Grid.CITolerance > 0 {
		term := 0
		for _, c := range res.Cells {
			if c.EarlyTerminated {
				term++
			}
		}
		if _, err := fmt.Fprintf(w, "\nearly termination: %d of %d cells stopped below %d replicates (ci tolerance %g)\n",
			term, len(res.Cells), res.Grid.Replicates, res.Grid.CITolerance); err != nil {
			return err
		}
	}
	if res.Completed < res.Total {
		if _, err := fmt.Fprintf(w, "\npartial report: %d of %d runs completed before interruption\n",
			res.Completed, res.Total); err != nil {
			return err
		}
	}
	return nil
}
