package sweep

import (
	"bytes"
	"reflect"
	"testing"
)

// quickGrid is a multi-axis grid at reduced scale: every axis has length
// > 1 so the determinism check exercises the full expansion, but runs stay
// short enough for the -short quick path.
func quickGrid() Grid {
	return Grid{
		Workloads:   []string{"tpcc", "web"},
		Schemes:     nil, // all three
		CacheMults:  []float64{0.5, 1},
		RateFactors: []float64{1, 1.25},
		Replicates:  2,
		Seed:        7,
		Intervals:   8,
	}
}

// TestSweepParallelMatchesSerial is the sweep layer's determinism golden
// test, the same pattern as the experiments package's
// TestMatrixParallelMatchesSerial: a sweep executed across the full worker
// pool must be byte-identical, cell by cell, to the Workers == 1 serial
// baseline — every run metric, every aggregated cell, and every rendered
// report. Meaningful under -race: the parallel sweep aggregates through
// the runner into shared slices.
func TestSweepParallelMatchesSerial(t *testing.T) {
	g := quickGrid()
	serial, err := Execute(t.Context(), g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Execute(t.Context(), g, Options{Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Completed != serial.Total || serial.Completed == 0 {
		t.Fatalf("serial sweep completed %d of %d", serial.Completed, serial.Total)
	}
	if len(serial.Runs) != len(parallel.Runs) {
		t.Fatalf("run counts diverge: %d serial vs %d parallel", len(serial.Runs), len(parallel.Runs))
	}
	for i := range serial.Runs {
		if serial.Runs[i].Requests == 0 {
			t.Fatalf("serial run %d completed no requests: %+v", i, serial.Runs[i])
		}
		if !reflect.DeepEqual(serial.Runs[i], parallel.Runs[i]) {
			t.Errorf("run %d diverges:\n  serial:   %+v\n  parallel: %+v", i, serial.Runs[i], parallel.Runs[i])
		}
	}
	if !reflect.DeepEqual(serial.Cells, parallel.Cells) {
		t.Errorf("aggregated cells diverge between serial and parallel sweeps")
	}

	// The emitted artifacts must match byte for byte, not just value for
	// value.
	for _, render := range []struct {
		name string
		fn   func(*Result) []byte
	}{
		{"csv", func(r *Result) []byte {
			var b bytes.Buffer
			if err := WriteCellsCSV(&b, r.Cells); err != nil {
				t.Fatal(err)
			}
			return b.Bytes()
		}},
		{"json", func(r *Result) []byte {
			var b bytes.Buffer
			if err := WriteJSON(&b, r); err != nil {
				t.Fatal(err)
			}
			return b.Bytes()
		}},
		{"report", func(r *Result) []byte {
			var b bytes.Buffer
			if err := WriteReport(&b, r); err != nil {
				t.Fatal(err)
			}
			return b.Bytes()
		}},
	} {
		if s, p := render.fn(serial), render.fn(parallel); !bytes.Equal(s, p) {
			t.Errorf("%s artifact differs between serial and parallel sweeps", render.name)
		}
	}
}

// TestSweepControlledComparison: inside one replicate every scheme must
// see the identical workload — equal request counts per (workload,
// cache-mult, rate, replicate) coordinate across schemes.
func TestSweepControlledComparison(t *testing.T) {
	g := quickGrid()
	res, err := Execute(t.Context(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	type coord struct {
		wl  string
		cm  float64
		rf  float64
		rep int
	}
	want := make(map[coord]uint64)
	for _, r := range res.Runs {
		k := coord{r.Workload, r.CacheMult, r.RateFactor, r.Replicate}
		if prev, ok := want[k]; ok {
			if r.Requests != prev {
				t.Errorf("%v: scheme %s saw %d requests, siblings saw %d — the controlled comparison broke",
					k, r.Scheme, r.Requests, prev)
			}
		} else {
			want[k] = r.Requests
		}
	}
}
