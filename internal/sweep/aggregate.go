package sweep

// Cell is the per-cell aggregation of a sweep: one (workload, scheme,
// cache-mult, rate, burst-mult, volumes, route-skew) coordinate
// summarized across its seed replicates.
type Cell struct {
	Workload   string  `json:"workload"`
	Scheme     string  `json:"scheme"`
	CacheMult  float64 `json:"cache_mult"`
	RateFactor float64 `json:"rate_factor"`
	// BurstMult is the burst-intensity coordinate (1 = the workload's
	// published burst shape).
	BurstMult float64 `json:"burst_mult"`
	// Volumes is the array-width coordinate (1 = the paper's single
	// stack) and RouteSkew the router's Zipf skew (0 = uniform routing).
	Volumes   int     `json:"volumes"`
	RouteSkew float64 `json:"route_skew"`
	// Replicates counts the runs aggregated into this cell (fewer than
	// Grid.Replicates on an interrupted sweep).
	Replicates int `json:"replicates"`
	// QMeanUS/QMinUS/QMaxUS summarize the replicates' max-queue-time
	// metric (each run's mean per-interval maximum cache queue time, µs).
	QMeanUS float64 `json:"q_mean_us"`
	QMinUS  float64 `json:"q_min_us"`
	QMaxUS  float64 `json:"q_max_us"`
	// DiskQMeanUS is the disk-subsystem counterpart of QMeanUS.
	DiskQMeanUS float64 `json:"disk_q_mean_us"`
	// LatencyMeanUS is the mean end-to-end latency across replicates.
	LatencyMeanUS float64 `json:"latency_mean_us"`
	// HitRatioMean is the mean cache hit ratio across replicates.
	HitRatioMean float64 `json:"hit_ratio_mean"`
	// PolicyFlipsMean is the mean number of write-policy decisions the
	// balancer took per run (0 for WB, which has no balancer).
	PolicyFlipsMean float64 `json:"policy_flips_mean"`
	// SpeedupVsWB/SpeedupVsSIB are latency speedups against the baseline
	// cell at the same (workload, cache-mult, rate) coordinate: baseline
	// mean latency over this cell's mean latency (>1 = this scheme is
	// faster). Zero when the sweep has no matching baseline cell.
	SpeedupVsWB  float64 `json:"speedup_vs_wb"`
	SpeedupVsSIB float64 `json:"speedup_vs_sib"`
	// QCIHalfUS is the achieved 95% Student-t confidence half-width over
	// the replicates' QMeanUS values — recorded only on early-termination
	// sweeps (Grid.CITolerance > 0) with at least two completed
	// replicates, zero otherwise, so tolerance-off output stays
	// byte-identical to sweeps that predate the field.
	QCIHalfUS float64 `json:"q_ci_half_us,omitempty"`
	// EarlyTerminated marks a cell whose grid coordinate stopped
	// launching further seed replicates once every scheme's confidence
	// interval was tight (Replicates then records how many actually ran).
	EarlyTerminated bool `json:"early_terminated,omitempty"`
}

type cellKey struct {
	workload   string
	scheme     string
	cacheMult  float64
	rateFactor float64
	burstMult  float64
	volumes    int
	routeSkew  float64
}

// Aggregate groups runs by cell coordinate and summarizes each group.
// Grouping preserves first-appearance order, so for runs in expansion
// order the cells come out in expansion order too — the property that
// keeps the emitted reports deterministic.
func Aggregate(runs []Run) []Cell {
	order := make([]cellKey, 0)
	groups := make(map[cellKey][]Run)
	for _, r := range runs {
		k := cellKey{r.Workload, r.Scheme, r.CacheMult, r.RateFactor, r.BurstMult, r.Volumes, r.RouteSkew}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	cells := make([]Cell, 0, len(order))
	for _, k := range order {
		cells = append(cells, summarize(k, groups[k]))
	}
	// Speedups need the sibling baselines, which only exist once every
	// cell is summarized.
	byKey := make(map[cellKey]int, len(cells))
	for i, c := range cells {
		byKey[cellKey{c.Workload, c.Scheme, c.CacheMult, c.RateFactor, c.BurstMult, c.Volumes, c.RouteSkew}] = i
	}
	for i := range cells {
		c := &cells[i]
		if wb, ok := byKey[cellKey{c.Workload, "WB", c.CacheMult, c.RateFactor, c.BurstMult, c.Volumes, c.RouteSkew}]; ok && c.Scheme != "WB" {
			c.SpeedupVsWB = speedup(cells[wb].LatencyMeanUS, c.LatencyMeanUS)
		}
		if sib, ok := byKey[cellKey{c.Workload, "SIB", c.CacheMult, c.RateFactor, c.BurstMult, c.Volumes, c.RouteSkew}]; ok && c.Scheme != "SIB" {
			c.SpeedupVsSIB = speedup(cells[sib].LatencyMeanUS, c.LatencyMeanUS)
		}
	}
	return cells
}

func speedup(baseline, own float64) float64 {
	if own <= 0 {
		return 0
	}
	return baseline / own
}

func summarize(k cellKey, runs []Run) Cell {
	c := Cell{
		Workload:   k.workload,
		Scheme:     k.scheme,
		CacheMult:  k.cacheMult,
		RateFactor: k.rateFactor,
		BurstMult:  k.burstMult,
		Volumes:    k.volumes,
		RouteSkew:  k.routeSkew,
		Replicates: len(runs),
	}
	// Aggregate only ever groups actual runs, but summarize is also the
	// bottom of the partial-report path (SIGINT-interrupted sweeps): an
	// empty group must summarize to an empty cell, not index runs[0] and
	// take the whole report down with it.
	if len(runs) == 0 {
		return c
	}
	c.QMinUS = runs[0].QMeanUS
	c.QMaxUS = runs[0].QMeanUS
	n := float64(len(runs))
	for _, r := range runs {
		c.QMeanUS += r.QMeanUS / n
		c.DiskQMeanUS += r.DiskQMeanUS / n
		c.LatencyMeanUS += r.AvgLatencyUS / n
		c.HitRatioMean += r.HitRatio / n
		c.PolicyFlipsMean += float64(r.PolicyFlips) / n
		if r.QMeanUS < c.QMinUS {
			c.QMinUS = r.QMeanUS
		}
		if r.QMeanUS > c.QMaxUS {
			c.QMaxUS = r.QMeanUS
		}
	}
	return c
}
