package sweep

import "testing"

// TestArrayLBFlattensHotShard is the cross-cell invariant only the sweep
// layer can check, and the repo's pinned acceptance regime for the array
// controller: on the hot-shard grid (tpcc, 3 volumes, route skew 1.2 —
// the split static routing turns into a 3224/1446/831 request imbalance)
// the ARRAY-LB cell's bottleneck cache load (QMeanUS: the merged mean of
// per-interval per-volume-max queue times) must not exceed the static
// LBICA cell's, which routes the identical stream with frozen Zipf
// weights. Both schemes run per-volume LBICA, so any gap is the
// controller's doing.
func TestArrayLBFlattensHotShard(t *testing.T) {
	intervals := 12
	if testing.Short() {
		intervals = 6
	}
	g := Grid{
		Workloads:  []string{"tpcc"},
		Schemes:    []string{"lbica", "array-lb"},
		Volumes:    []int{3},
		RouteSkews: []float64{1.2},
		Seed:       7,
		Intervals:  intervals,
	}
	res, err := Execute(t.Context(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	byScheme := make(map[string]Cell, len(res.Cells))
	for _, c := range res.Cells {
		byScheme[c.Scheme] = c
	}
	static, ok := byScheme["LBICA"]
	if !ok {
		t.Fatalf("no LBICA cell in %v", res.Cells)
	}
	adaptive, ok := byScheme["ARRAY-LB"]
	if !ok {
		t.Fatalf("no ARRAY-LB cell in %v", res.Cells)
	}
	if static.QMeanUS <= 0 {
		t.Fatalf("static bottleneck load %.1fµs; the regime exercises nothing", static.QMeanUS)
	}
	if adaptive.QMeanUS > static.QMeanUS {
		t.Errorf("array-lb bottleneck cache load %.1fµs exceeds static routing's %.1fµs on the hot-shard grid",
			adaptive.QMeanUS, static.QMeanUS)
	}
	// Both schemes must have served the identical stream — the controlled
	// comparison the shared replicate seed guarantees.
	reqs := make(map[string]uint64, 2)
	for _, r := range res.Runs {
		reqs[r.Scheme] = r.Requests
	}
	if reqs["ARRAY-LB"] == 0 || reqs["ARRAY-LB"] != reqs["LBICA"] {
		t.Errorf("schemes served different streams: %d vs %d requests", reqs["ARRAY-LB"], reqs["LBICA"])
	}
}
