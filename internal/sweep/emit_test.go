package sweep

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestCellsCSVHostileNames: registry workload names can contain CSV
// metacharacters; the emitter must quote them so the parse-back
// reproduces the cells exactly. This is the deterministic twin of the
// fuzz round-trip corpus entries.
func TestCellsCSVHostileNames(t *testing.T) {
	cells := []Cell{
		{Workload: `syn,"th"`, Scheme: "W\nB", CacheMult: 1, RateFactor: 1, BurstMult: 1, Volumes: 1, Replicates: 1, QMeanUS: 2.5},
		{Workload: "burst-mix-on6x-duty0.45-read0.35", Scheme: "LBICA", CacheMult: 0.5, RateFactor: 2, BurstMult: 2, Volumes: 1, Replicates: 3, QMeanUS: 7},
	}
	var buf bytes.Buffer
	if err := WriteCellsCSV(&buf, cells); err != nil {
		t.Fatal(err)
	}
	back, err := ParseCellsCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse-back: %v\ncsv:\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(cells, back) {
		t.Fatalf("hostile names diverged:\n  emitted %+v\n  parsed  %+v\ncsv:\n%s", cells, back, buf.String())
	}
}

// TestCellsCSVSchemaCompatibility pins the three accepted layouts: cells
// at the default burst multiplier and a single unsharded volume emit the
// legacy 14-column header (so pre-burst-axis artifacts stay
// byte-identical), an off-default multiplier switches to the burst
// header, an off-default volume count or route skew to the array header,
// and older files parse with the missing coordinates defaulted (BurstMult
// 1, Volumes 1, RouteSkew 0).
func TestCellsCSVSchemaCompatibility(t *testing.T) {
	legacy := []Cell{{Workload: "tpcc", Scheme: "WB", CacheMult: 1, RateFactor: 1, BurstMult: 1, Volumes: 1, Replicates: 2, QMeanUS: 3}}
	var buf bytes.Buffer
	if err := WriteCellsCSV(&buf, legacy); err != nil {
		t.Fatal(err)
	}
	if got := strings.SplitN(buf.String(), "\n", 2)[0]; strings.Contains(got, "burst_mult") {
		t.Errorf("default-burst cells emitted the extended header: %q", got)
	}
	back, err := ParseCellsCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, back) {
		t.Errorf("legacy layout round trip diverged: %+v vs %+v", legacy, back)
	}

	burst := []Cell{{Workload: "tpcc", Scheme: "WB", CacheMult: 1, RateFactor: 1, BurstMult: 2, Volumes: 1, Replicates: 2, QMeanUS: 3}}
	buf.Reset()
	if err := WriteCellsCSV(&buf, burst); err != nil {
		t.Fatal(err)
	}
	if got := strings.SplitN(buf.String(), "\n", 2)[0]; !strings.Contains(got, "burst_mult") {
		t.Errorf("burst-axis cells emitted the legacy header: %q", got)
	}
	back, err = ParseCellsCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(burst, back) {
		t.Errorf("extended layout round trip diverged: %+v vs %+v", burst, back)
	}

	// A pre-PR file with no burst_mult column parses with the multiplier
	// defaulted to 1, never 0.
	old := "workload,scheme,cache_mult,rate_factor,replicates,q_mean_us,q_min_us,q_max_us,disk_q_mean_us,latency_mean_us,hit_ratio_mean,policy_flips_mean,speedup_vs_wb,speedup_vs_sib\n" +
		"tpcc,WB,1,1,2,3,0,0,0,0,0,0,0,0\n"
	cells, err := ParseCellsCSV(strings.NewReader(old))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].BurstMult != 1 || cells[0].Volumes != 1 || cells[0].RouteSkew != 0 {
		t.Errorf("legacy file parsed to %+v, want BurstMult 1, Volumes 1, RouteSkew 0", cells)
	}

	// The array layout round-trips volumes and route skew, and burst-only
	// cells never pay for the array columns.
	arr := []Cell{{Workload: "tpcc", Scheme: "LBICA", CacheMult: 1, RateFactor: 1, BurstMult: 1, Volumes: 4, RouteSkew: 1.2, Replicates: 2, QMeanUS: 3}}
	buf.Reset()
	if err := WriteCellsCSV(&buf, arr); err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.Contains(head, "volumes") || !strings.Contains(head, "route_skew") || !strings.Contains(head, "burst_mult") {
		t.Errorf("array-axis cells emitted header %q, want the array layout", head)
	}
	back, err = ParseCellsCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(arr, back) {
		t.Errorf("array layout round trip diverged: %+v vs %+v", arr, back)
	}
}
