package sweep

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"lbica/internal/experiments"
	"lbica/internal/sim"
)

// randGrid draws a random grid with distinct values along every axis (a
// declarative grid with duplicate axis values would describe the same cell
// twice; the generator stays inside the documented contract).
func randGrid(r *rand.Rand) Grid {
	wls := append([]string(nil), experiments.Workloads...)
	scs := append([]string(nil), experiments.Schemes...)
	r.Shuffle(len(wls), func(i, j int) { wls[i], wls[j] = wls[j], wls[i] })
	r.Shuffle(len(scs), func(i, j int) { scs[i], scs[j] = scs[j], scs[i] })
	g := Grid{
		Workloads: wls[:1+r.Intn(len(wls))],
		Schemes:   scs[:1+r.Intn(len(scs))],
		Seed:      r.Int63n(1 << 30),
	}
	for i, n := 0, 1+r.Intn(4); i < n; i++ {
		g.CacheMults = append(g.CacheMults, 0.25*float64(i+1)+r.Float64()*0.1)
	}
	for i, n := 0, 1+r.Intn(4); i < n; i++ {
		g.RateFactors = append(g.RateFactors, 0.5*float64(i+1)+r.Float64()*0.1)
	}
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		g.BurstMults = append(g.BurstMults, 0.5*float64(i+1)+r.Float64()*0.1)
	}
	g.Replicates = 1 + r.Intn(5)
	return g
}

// TestExpandProperties is the property test for Grid.Expand: across many
// random grids, the expansion's length equals the product of the axis
// lengths, every point is unique, and expanding twice yields the same
// points in the same order.
func TestExpandProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		g := randGrid(r)
		pts := g.Expand()

		want := len(g.Workloads) * len(g.Schemes) * len(g.CacheMults) * len(g.RateFactors) *
			len(g.BurstMults) * g.Replicates
		if len(pts) != want || g.Size() != want {
			t.Fatalf("trial %d: len(Expand()) = %d, Size() = %d, want %d (axes %dx%dx%dx%dx%dx%d)",
				trial, len(pts), g.Size(), want,
				len(g.Workloads), len(g.Schemes), len(g.CacheMults), len(g.RateFactors),
				len(g.BurstMults), g.Replicates)
		}

		seen := make(map[string]bool, len(pts))
		for _, p := range pts {
			key := fmt.Sprintf("%s/%s/%v/%v/%v/%d", p.Workload, p.Scheme, p.CacheMult, p.RateFactor, p.BurstMult, p.Replicate)
			if seen[key] {
				t.Fatalf("trial %d: duplicate point %s", trial, key)
			}
			seen[key] = true
		}

		if again := g.Expand(); !reflect.DeepEqual(pts, again) {
			t.Fatalf("trial %d: expansion is not deterministic", trial)
		}
	}
}

// TestExpandSeedsAreControlled pins the seeding discipline: every scheme
// of one replicate shares the replicate's seed (the controlled
// comparison), and replicate seeds derive from (Grid.Seed, replicate)
// via sim.Stream.
func TestExpandSeedsAreControlled(t *testing.T) {
	g := Grid{Seed: 99, Replicates: 3}
	for _, p := range g.Expand() {
		if want := sim.Stream(99, p.Replicate); p.Spec.Seed != want {
			t.Fatalf("point %s/%s rep %d: seed %d, want sim.Stream(99, %d) = %d",
				p.Workload, p.Scheme, p.Replicate, p.Spec.Seed, p.Replicate, want)
		}
	}
}

// TestExpandDefaults: the zero grid falls back to the paper's evaluation
// matrix — 3 workloads × 3 schemes, multiplier 1, rate 1, one replicate.
func TestExpandDefaults(t *testing.T) {
	var g Grid
	pts := g.Expand()
	if len(pts) != len(experiments.Workloads)*len(experiments.Schemes) {
		t.Fatalf("zero grid expands to %d points, want %d", len(pts),
			len(experiments.Workloads)*len(experiments.Schemes))
	}
	for _, p := range pts {
		if p.CacheMult != 1 || p.RateFactor != 1 || p.BurstMult != 1 || p.Replicate != 0 {
			t.Fatalf("zero grid point %+v is not the paper default", p)
		}
	}
	n := g.Normalize()
	if !reflect.DeepEqual(n.Workloads, experiments.Workloads) {
		t.Errorf("default workloads = %v, want %v", n.Workloads, experiments.Workloads)
	}
	if !reflect.DeepEqual(n.Schemes, experiments.Schemes) {
		t.Errorf("default schemes = %v, want %v", n.Schemes, experiments.Schemes)
	}
}

// TestNormalizeCanonicalizesNames: mixed-case CLI names map onto the
// experiments package's canonical constants.
func TestNormalizeCanonicalizesNames(t *testing.T) {
	g := Grid{Workloads: []string{" TPCC ", "Web"}, Schemes: []string{"lbica", " wb"}}.Normalize()
	if !reflect.DeepEqual(g.Workloads, []string{"tpcc", "web"}) {
		t.Errorf("workloads = %v", g.Workloads)
	}
	if !reflect.DeepEqual(g.Schemes, []string{"LBICA", "WB"}) {
		t.Errorf("schemes = %v", g.Schemes)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("canonicalized grid failed validation: %v", err)
	}
}

func TestValidateRejectsBadAxes(t *testing.T) {
	for _, g := range []Grid{
		{Workloads: []string{"nope"}},
		{Schemes: []string{"nope"}},
		{CacheMults: []float64{0}},
		{CacheMults: []float64{-1}},
		{RateFactors: []float64{-0.5}},
		// Non-finite values pass a naive `<= 0` check and would hang the
		// simulation; absurd finite values would overflow the set count.
		{CacheMults: []float64{math.NaN()}},
		{CacheMults: []float64{math.Inf(1)}},
		{CacheMults: []float64{1e18}},
		{RateFactors: []float64{math.NaN()}},
		{RateFactors: []float64{math.Inf(1)}},
		{RateFactors: []float64{1e9}},
		// The burst axis gets the same finite, bounded, positive treatment.
		{BurstMults: []float64{0}},
		{BurstMults: []float64{-2}},
		{BurstMults: []float64{math.NaN()}},
		{BurstMults: []float64{math.Inf(1)}},
		{BurstMults: []float64{1e6}},
		// Malformed family names must fail validation, not panic at run
		// time inside the registry resolution.
		{Workloads: []string{"synth-randread-zipf9.9"}},
		{Workloads: []string{"burst-mix-onXx-duty0.3-read0.5"}},
		{Workloads: []string{"burst-mix-on4x-duty2-read0.5"}},
		// Duplicate axis values would silently re-run identical
		// simulations and inflate the cell's replicate count.
		{Workloads: []string{"tpcc", "TPCC"}},
		{Schemes: []string{"wb", "wb"}},
		{CacheMults: []float64{1, 2, 1}},
		{RateFactors: []float64{0.8, 0.8}},
		{BurstMults: []float64{2, 2}},
		// Negative scalars used to be silently rewritten to their
		// defaults, running a different sweep than the one the user asked
		// for; only the zero value means "use the default".
		{Replicates: -1},
		{Intervals: -5},
		{Interval: -time.Second},
		{WarmupIntervals: -1},
		// The early-termination tolerance is relative: negative and
		// non-finite values would either never or always terminate, so
		// they are hard errors, not clamps.
		{CITolerance: -0.1},
		{CITolerance: math.NaN()},
		{CITolerance: math.Inf(1)},
	} {
		if err := g.Validate(); err == nil {
			t.Errorf("grid %+v passed validation", g)
		}
	}
	// Catalog names beyond the paper trio are valid axis values now.
	ok := Grid{Workloads: []string{"burst-mix-hi", "synth-randread-zipf1.2", "burst-mix-on4x-duty0.3-read0.5"}}
	if err := ok.Validate(); err != nil {
		t.Errorf("catalog workload axis failed validation: %v", err)
	}
}

// TestAggregateSpeedups pins the speedup computation on hand-built runs.
func TestAggregateSpeedups(t *testing.T) {
	runs := []Run{
		{Workload: "tpcc", Scheme: "WB", CacheMult: 1, RateFactor: 1, AvgLatencyUS: 300, QMeanUS: 10},
		{Workload: "tpcc", Scheme: "SIB", CacheMult: 1, RateFactor: 1, AvgLatencyUS: 200, QMeanUS: 20},
		{Workload: "tpcc", Scheme: "LBICA", CacheMult: 1, RateFactor: 1, Replicate: 0, AvgLatencyUS: 100, QMeanUS: 5},
		{Workload: "tpcc", Scheme: "LBICA", CacheMult: 1, RateFactor: 1, Replicate: 1, AvgLatencyUS: 200, QMeanUS: 15},
	}
	cells := Aggregate(runs)
	if len(cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(cells))
	}
	lb := cells[2]
	if lb.Scheme != "LBICA" || lb.Replicates != 2 {
		t.Fatalf("cells[2] = %+v, want the 2-replicate LBICA cell", lb)
	}
	if lb.LatencyMeanUS != 150 || lb.QMeanUS != 10 || lb.QMinUS != 5 || lb.QMaxUS != 15 {
		t.Errorf("LBICA aggregation = %+v", lb)
	}
	if lb.SpeedupVsWB != 2 || lb.SpeedupVsSIB != 200.0/150 {
		t.Errorf("speedups = %v vs WB, %v vs SIB; want 2 and %v", lb.SpeedupVsWB, lb.SpeedupVsSIB, 200.0/150)
	}
	// Baselines compare against each other but never against themselves.
	if cells[0].SpeedupVsWB != 0 || cells[1].SpeedupVsSIB != 0 {
		t.Errorf("baseline cells carry self-speedups: %+v / %+v", cells[0], cells[1])
	}
	if cells[0].SpeedupVsSIB != 200.0/300 {
		t.Errorf("WB vs SIB speedup = %v", cells[0].SpeedupVsSIB)
	}
}
