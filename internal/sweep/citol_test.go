package sweep

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"lbica/internal/stats"
)

// ciGrid is the early-termination test grid: one coordinate per
// workload, several seed replicates, short runs.
func ciGrid(replicates int, tol float64) Grid {
	return Grid{
		Workloads:   []string{"tpcc"},
		Schemes:     []string{"WB", "LBICA"},
		Replicates:  replicates,
		Seed:        7,
		Intervals:   20,
		CITolerance: tol,
	}
}

// A loose tolerance terminates the coordinate at the replicate floor:
// the remaining replicates are never launched, the cell is marked with
// its actual replicate count and achieved half-width, and the report
// still aggregates cleanly.
func TestAdaptiveSweepTerminatesEarly(t *testing.T) {
	res, err := Execute(t.Context(), ciGrid(5, 1e3), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed >= res.Total {
		t.Fatalf("loose tolerance never terminated: %d of %d runs executed", res.Completed, res.Total)
	}
	if len(res.Cells) == 0 {
		t.Fatal("no cells aggregated")
	}
	for _, c := range res.Cells {
		if !c.EarlyTerminated {
			t.Errorf("cell %s/%s not marked early-terminated", c.Workload, c.Scheme)
		}
		if c.Replicates < minCIReplicates || c.Replicates >= 5 {
			t.Errorf("cell %s/%s ran %d replicates, want in [%d, 5)", c.Workload, c.Scheme, c.Replicates, minCIReplicates)
		}
		if c.QCIHalfUS <= 0 {
			t.Errorf("cell %s/%s missing achieved half-width", c.Workload, c.Scheme)
		}
	}
}

// The determinism guarantee holds on the adaptive path too: runs, cells
// and emitted CSV are byte-identical for every worker count.
func TestAdaptiveSweepParallelMatchesSerial(t *testing.T) {
	g := ciGrid(4, 0.05)
	want, err := Execute(t.Context(), g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4} {
		got, err := Execute(t.Context(), g, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Runs, want.Runs) || !reflect.DeepEqual(got.Cells, want.Cells) {
			t.Fatalf("workers=%d adaptive sweep differs from the serial baseline", workers)
		}
		var gb, wb bytes.Buffer
		if err := WriteCellsCSV(&gb, got.Cells); err != nil {
			t.Fatal(err)
		}
		if err := WriteCellsCSV(&wb, want.Cells); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gb.Bytes(), wb.Bytes()) {
			t.Fatalf("workers=%d cells CSV differs from the serial baseline", workers)
		}
	}
}

// A tolerance too tight to ever trigger runs the full grid and matches
// the tolerance-off sweep run for run; the only difference is the CI
// annotation on each cell.
func TestAdaptiveSweepTightToleranceMatchesClassic(t *testing.T) {
	classic, err := Execute(t.Context(), ciGrid(3, 0), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Execute(t.Context(), ciGrid(3, 1e-12), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Completed != adaptive.Total {
		t.Fatalf("tight tolerance terminated early: %d of %d", adaptive.Completed, adaptive.Total)
	}
	if !reflect.DeepEqual(adaptive.Runs, classic.Runs) {
		t.Error("adaptive runs differ from the classic path")
	}
	stripped := append([]Cell(nil), adaptive.Cells...)
	for i := range stripped {
		if stripped[i].EarlyTerminated {
			t.Errorf("cell %s/%s marked terminated on a full sweep", stripped[i].Workload, stripped[i].Scheme)
		}
		if stripped[i].QCIHalfUS <= 0 {
			t.Errorf("cell %s/%s missing CI annotation", stripped[i].Workload, stripped[i].Scheme)
		}
		stripped[i].QCIHalfUS = 0
	}
	if !reflect.DeepEqual(stripped, classic.Cells) {
		t.Error("adaptive cells (annotations stripped) differ from the classic path")
	}
	// Classic cells must stay clean of adaptive-only fields.
	for _, c := range classic.Cells {
		if c.QCIHalfUS != 0 || c.EarlyTerminated {
			t.Errorf("tolerance-off cell %s/%s carries CI fields: %+v", c.Workload, c.Scheme, c)
		}
	}
}

// HalfWidth95 is the termination criterion's kernel; pin its behavior on
// hand-checked inputs.
func TestHalfWidth95(t *testing.T) {
	if hw := stats.HalfWidth95(nil); !math.IsInf(hw, 1) {
		t.Errorf("HalfWidth95(nil) = %v, want +Inf", hw)
	}
	if hw := stats.HalfWidth95([]float64{3}); !math.IsInf(hw, 1) {
		t.Errorf("HalfWidth95(one value) = %v, want +Inf", hw)
	}
	if hw := stats.HalfWidth95([]float64{5, 5, 5}); hw != 0 {
		t.Errorf("HalfWidth95(constant) = %v, want 0", hw)
	}
	// n=2: s = |a-b|/sqrt(2), hw = 12.706 * s / sqrt(2) = 12.706 * |a-b| / 2.
	if hw, want := stats.HalfWidth95([]float64{1, 3}), 12.706; math.Abs(hw-want) > 1e-9 {
		t.Errorf("HalfWidth95({1,3}) = %v, want %v", hw, want)
	}
	// Large n falls back to the normal quantile: hw = 1.96 * s / sqrt(n).
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i % 2) // mean .5, sample sd ~.502
	}
	sd := math.Sqrt(float64(len(big)) / float64(len(big)-1) * 0.25)
	if hw, want := stats.HalfWidth95(big), 1.96*sd/10; math.Abs(hw-want) > 1e-9 {
		t.Errorf("HalfWidth95(big) = %v, want %v", hw, want)
	}
}
