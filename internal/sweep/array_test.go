package sweep

import (
	"bytes"
	"strings"
	"testing"
)

func arrayGrid() Grid {
	return Grid{
		Workloads:  []string{"tpcc"},
		Schemes:    []string{"wb", "lbica"},
		Volumes:    []int{2, 4},
		RouteSkews: []float64{0, 1.2},
		Seed:       3,
		Intervals:  4,
	}
}

func TestGridArrayAxesValidate(t *testing.T) {
	for name, g := range map[string]Grid{
		"zero volume":      {Volumes: []int{0}},
		"negative volume":  {Volumes: []int{-2}},
		"oversized volume": {Volumes: []int{100000}},
		"duplicate volume": {Volumes: []int{2, 2}},
		"negative skew":    {Volumes: []int{2}, RouteSkews: []float64{-1}},
		"oversized skew":   {Volumes: []int{2}, RouteSkews: []float64{1e9}},
		"duplicate skew":   {Volumes: []int{2}, RouteSkews: []float64{1.1, 1.1}},
		"bad variant":      {Volumes: []int{2}, RouteVariant: "nope"},
	} {
		if err := g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, g)
		}
	}
	ok := arrayGrid()
	if err := ok.Validate(); err != nil {
		t.Errorf("valid array grid rejected: %v", err)
	}
	if got, want := ok.Size(), 1*2*2*2*1; got != want {
		t.Errorf("Size() = %d, want %d", got, want)
	}
}

// Skew is inert at one volume: a mixed-width grid validates, its width-1
// cells canonicalize to the single skew-0 cell (never inflating replicate
// counts), and the collapsed combinations are reported, not fatal — the
// natural baseline-vs-array comparison runs in one invocation.
func TestGridMixedWidthSkewCanonicalizes(t *testing.T) {
	for name, g := range map[string]Grid{
		"skew without shards": {Workloads: []string{"tpcc"}, Schemes: []string{"wb"}, RouteSkews: []float64{1.2}},
		"skew with one-wide":  {Workloads: []string{"tpcc"}, Schemes: []string{"wb"}, Volumes: []int{1, 4}, RouteSkews: []float64{0, 1.2}},
	} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: Validate rejected mixed-width skew grid: %v", name, err)
		}
	}

	g := Grid{
		Workloads:  []string{"tpcc"},
		Schemes:    []string{"wb", "lbica"},
		Volumes:    []int{1, 4},
		RouteSkews: []float64{0, 1.2},
		Intervals:  2,
	}
	pts := g.Expand()
	if got, want := len(pts), g.Size(); got != want {
		t.Fatalf("len(Expand()) = %d, Size() = %d; must agree", got, want)
	}
	// Width 1 contributes exactly one coordinate (skew canonicalized to
	// 0); width 4 contributes both skews — 3 coordinates × 2 schemes.
	if got, want := len(pts), 3*2; got != want {
		t.Fatalf("expanded %d points, want %d", got, want)
	}
	coord := map[[2]interface{}]int{}
	for _, pt := range pts {
		coord[[2]interface{}{pt.Volumes, pt.RouteSkew}]++
		if pt.Volumes == 1 && pt.RouteSkew != 0 {
			t.Fatalf("width-1 point kept non-zero skew: %+v", pt)
		}
		if pt.Volumes == 1 && (pt.Spec.RouteSkew != 0 || pt.Spec.RoutePolicy != "") {
			t.Fatalf("width-1 spec routes: %+v", pt.Spec)
		}
	}
	for want, n := range map[[2]interface{}]int{
		{1, 0.0}: 2, {4, 0.0}: 2, {4, 1.2}: 2,
	} {
		if coord[want] != n {
			t.Errorf("coordinate %v expanded %d times, want %d", want, coord[want], n)
		}
	}
	skipped := g.SkippedCombos()
	if len(skipped) != 1 || !strings.Contains(skipped[0], "1.2") {
		t.Errorf("SkippedCombos() = %v, want one entry naming skew 1.2", skipped)
	}
	if all := (Grid{Volumes: []int{2, 4}, RouteSkews: []float64{0, 1.2}}).SkippedCombos(); all != nil {
		t.Errorf("all-sharded grid reported skips: %v", all)
	}
}

func TestGridArrayExpandCoordinates(t *testing.T) {
	pts := arrayGrid().Expand()
	seen := map[[2]interface{}]int{}
	for _, pt := range pts {
		seen[[2]interface{}{pt.Volumes, pt.RouteSkew}]++
		if pt.Spec.Volumes != pt.Volumes || pt.Spec.RouteSkew != pt.RouteSkew {
			t.Fatalf("point coordinates not threaded into spec: %+v", pt)
		}
	}
	for _, want := range [][2]interface{}{{2, 0.0}, {2, 1.2}, {4, 0.0}, {4, 1.2}} {
		if seen[want] != 2 { // 2 schemes per coordinate
			t.Errorf("coordinate %v expanded %d times, want 2", want, seen[want])
		}
	}
}

// A sharded sweep must stay byte-identical between serial and parallel
// execution — the runner guarantee composed with the array layer's.
func TestSweepArrayParallelMatchesSerial(t *testing.T) {
	g := arrayGrid()
	run := func(workers int) string {
		res, err := Execute(t.Context(), g, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteCellsCSV(&buf, res.Cells); err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if serial, parallel := run(1), run(0); serial != parallel {
		t.Fatal("sharded sweep output differs between serial and parallel execution")
	}
}

// Array sweeps emit the array CSV layout, carry per-cell speedups within
// each (volumes, skew) coordinate, and name series files by coordinate.
func TestSweepArrayReporting(t *testing.T) {
	dir := t.TempDir()
	res, err := Execute(t.Context(), arrayGrid(), Options{SeriesDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCellsCSV(&buf, res.Cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], "volumes,route_skew") {
		t.Errorf("array sweep emitted header without array columns:\n%s", buf.String())
	}
	lbicaCells := 0
	for _, c := range res.Cells {
		if c.Scheme == "LBICA" {
			lbicaCells++
			if c.SpeedupVsWB == 0 {
				t.Errorf("cell %+v has no WB speedup despite a WB sibling at its coordinate", c)
			}
		}
	}
	if lbicaCells != 4 {
		t.Errorf("expected 4 LBICA cells, got %d", lbicaCells)
	}
	for _, name := range []string{
		"series_tpcc_wb_cm1_rf1_bm1_v2_rs0_r0.csv",
		"series_tpcc_lbica_cm1_rf1_bm1_v4_rs1.2_r0.csv",
	} {
		if _, ok := readDir(t, dir)[name]; !ok {
			t.Errorf("series file %s missing; have %v", name, fileNames(readDir(t, dir)))
		}
	}
	var report bytes.Buffer
	if err := WriteReport(&report, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "widths") || !strings.Contains(report.String(), "skew") {
		t.Errorf("text report lacks the array columns:\n%s", report.String())
	}
}
