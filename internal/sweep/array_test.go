package sweep

import (
	"bytes"
	"strings"
	"testing"
)

func arrayGrid() Grid {
	return Grid{
		Workloads:  []string{"tpcc"},
		Schemes:    []string{"wb", "lbica"},
		Volumes:    []int{2, 4},
		RouteSkews: []float64{0, 1.2},
		Seed:       3,
		Intervals:  4,
	}
}

func TestGridArrayAxesValidate(t *testing.T) {
	for name, g := range map[string]Grid{
		"zero volume":         {Volumes: []int{0}},
		"negative volume":     {Volumes: []int{-2}},
		"oversized volume":    {Volumes: []int{100000}},
		"duplicate volume":    {Volumes: []int{2, 2}},
		"negative skew":       {Volumes: []int{2}, RouteSkews: []float64{-1}},
		"oversized skew":      {Volumes: []int{2}, RouteSkews: []float64{1e9}},
		"duplicate skew":      {Volumes: []int{2}, RouteSkews: []float64{1.1, 1.1}},
		"skew without shards": {RouteSkews: []float64{1.2}},
		"skew with one-wide":  {Volumes: []int{1, 4}, RouteSkews: []float64{0, 1.2}},
	} {
		if err := g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, g)
		}
	}
	ok := arrayGrid()
	if err := ok.Validate(); err != nil {
		t.Errorf("valid array grid rejected: %v", err)
	}
	if got, want := ok.Size(), 1*2*2*2*1; got != want {
		t.Errorf("Size() = %d, want %d", got, want)
	}
}

func TestGridArrayExpandCoordinates(t *testing.T) {
	pts := arrayGrid().Expand()
	seen := map[[2]interface{}]int{}
	for _, pt := range pts {
		seen[[2]interface{}{pt.Volumes, pt.RouteSkew}]++
		if pt.Spec.Volumes != pt.Volumes || pt.Spec.RouteSkew != pt.RouteSkew {
			t.Fatalf("point coordinates not threaded into spec: %+v", pt)
		}
	}
	for _, want := range [][2]interface{}{{2, 0.0}, {2, 1.2}, {4, 0.0}, {4, 1.2}} {
		if seen[want] != 2 { // 2 schemes per coordinate
			t.Errorf("coordinate %v expanded %d times, want 2", want, seen[want])
		}
	}
}

// A sharded sweep must stay byte-identical between serial and parallel
// execution — the runner guarantee composed with the array layer's.
func TestSweepArrayParallelMatchesSerial(t *testing.T) {
	g := arrayGrid()
	run := func(workers int) string {
		res, err := Execute(t.Context(), g, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteCellsCSV(&buf, res.Cells); err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if serial, parallel := run(1), run(0); serial != parallel {
		t.Fatal("sharded sweep output differs between serial and parallel execution")
	}
}

// Array sweeps emit the array CSV layout, carry per-cell speedups within
// each (volumes, skew) coordinate, and name series files by coordinate.
func TestSweepArrayReporting(t *testing.T) {
	dir := t.TempDir()
	res, err := Execute(t.Context(), arrayGrid(), Options{SeriesDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCellsCSV(&buf, res.Cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], "volumes,route_skew") {
		t.Errorf("array sweep emitted header without array columns:\n%s", buf.String())
	}
	lbicaCells := 0
	for _, c := range res.Cells {
		if c.Scheme == "LBICA" {
			lbicaCells++
			if c.SpeedupVsWB == 0 {
				t.Errorf("cell %+v has no WB speedup despite a WB sibling at its coordinate", c)
			}
		}
	}
	if lbicaCells != 4 {
		t.Errorf("expected 4 LBICA cells, got %d", lbicaCells)
	}
	for _, name := range []string{
		"series_tpcc_wb_cm1_rf1_bm1_v2_rs0_r0.csv",
		"series_tpcc_lbica_cm1_rf1_bm1_v4_rs1.2_r0.csv",
	} {
		if _, ok := readDir(t, dir)[name]; !ok {
			t.Errorf("series file %s missing; have %v", name, fileNames(readDir(t, dir)))
		}
	}
	var report bytes.Buffer
	if err := WriteReport(&report, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "widths") || !strings.Contains(report.String(), "skew") {
		t.Errorf("text report lacks the array columns:\n%s", report.String())
	}
}
