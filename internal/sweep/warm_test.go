package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// warmGrid is the warm-fork identity grid: all four schemes (so one
// comparison holds a forkable leader, a guarded WB sibling, a
// never-sharing SIB, and at width 1 the ARRAY-LB relabel), a shareable
// width-1 entry plus width-3 array entries at both uniform and skewed
// routing (the multi-volume array-fork plan, with ARRAY-LB falling back
// to scratch), and a burst-heavy workload whose balancer acts after the
// barrier.
func warmGrid(warmup int) Grid {
	return Grid{
		Workloads:       []string{"mail"},
		Schemes:         []string{"WB", "SIB", "LBICA", "ARRAY-LB"},
		Volumes:         []int{1, 3},
		RouteSkews:      []float64{0, 1.2},
		Replicates:      1,
		Seed:            11,
		Intervals:       40,
		WarmupIntervals: warmup,
	}
}

// TestWarmForkSweepByteIdentical is the tentpole's acceptance property at
// the sweep layer: a warm-fork sweep (schemes sharing one simulated
// warmup prefix via engine.Fork) must produce every run metric,
// aggregated cell, emitted artifact and per-cell series file
// byte-identical to the from-scratch sweep — serial and parallel alike.
func TestWarmForkSweepByteIdentical(t *testing.T) {
	seriesDir := func(name string) string { return filepath.Join(t.TempDir(), name) }
	scratchDir := seriesDir("scratch")
	scratch, err := Execute(t.Context(), warmGrid(0), Options{Workers: 1, SeriesDir: scratchDir})
	if err != nil {
		t.Fatal(err)
	}
	if scratch.Completed != scratch.Total || scratch.Completed == 0 {
		t.Fatalf("scratch sweep completed %d of %d", scratch.Completed, scratch.Total)
	}
	if scratch.Warm != nil {
		t.Fatalf("warmup-off sweep reported warm stats: %+v", scratch.Warm)
	}

	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := seriesDir("warm-" + tc.name)
			warm, err := Execute(t.Context(), warmGrid(10), Options{Workers: tc.workers, SeriesDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if len(warm.Runs) != len(scratch.Runs) {
				t.Fatalf("run counts diverge: %d warm vs %d scratch", len(warm.Runs), len(scratch.Runs))
			}
			for i := range scratch.Runs {
				if !reflect.DeepEqual(warm.Runs[i], scratch.Runs[i]) {
					t.Errorf("run %d diverges:\n  warm:    %+v\n  scratch: %+v", i, warm.Runs[i], scratch.Runs[i])
				}
			}
			if !reflect.DeepEqual(warm.Cells, scratch.Cells) {
				t.Errorf("aggregated cells diverge between warm-fork and scratch sweeps")
			}

			// The warm plan's outcome counts must reconcile with the grid:
			// every run is accounted for, the multi-volume comparisons fork
			// (the tentpole), and the known non-sharers surface by reason.
			if warm.Warm == nil {
				t.Fatal("warm sweep reported no warm stats")
			}
			ws := warm.Warm
			if ws.Leaders+ws.Forked+ws.Scratch != warm.Completed {
				t.Errorf("warm stats cover %d runs, want %d", ws.Leaders+ws.Forked+ws.Scratch, warm.Completed)
			}
			if ws.Leaders == 0 || ws.Forked == 0 {
				t.Errorf("warm plan shared nothing: %+v", ws)
			}
			if ws.Fallbacks["sib"] == 0 || ws.Fallbacks["multi-volume"] == 0 {
				t.Errorf("expected sib and multi-volume fallbacks, got %v", ws.Fallbacks)
			}

			var wb, sb bytes.Buffer
			if err := WriteCellsCSV(&wb, warm.Cells); err != nil {
				t.Fatal(err)
			}
			if err := WriteCellsCSV(&sb, scratch.Cells); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wb.Bytes(), sb.Bytes()) {
				t.Errorf("cells CSV differs between warm-fork and scratch sweeps")
			}

			// Per-cell series files, byte for byte.
			names, err := filepath.Glob(filepath.Join(scratchDir, "*.csv"))
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != scratch.Total {
				t.Fatalf("scratch series export wrote %d files, want %d", len(names), scratch.Total)
			}
			for _, sn := range names {
				want, err := os.ReadFile(sn)
				if err != nil {
					t.Fatal(err)
				}
				got, err := os.ReadFile(filepath.Join(dir, filepath.Base(sn)))
				if err != nil {
					t.Fatalf("warm-fork sweep missing series file: %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("series file %s differs between warm-fork and scratch sweeps", filepath.Base(sn))
				}
			}
		})
	}
}

// TestPlanUnits pins the scheduling-granule invariants: singleton units
// with sharing off; with sharing on, every point appears exactly once, in
// expansion order, and a unit never mixes warmup keys.
func TestPlanUnits(t *testing.T) {
	g := warmGrid(10).Normalize()
	pts := g.Expand()

	units := planUnits(warmGrid(0), pts)
	if len(units) != len(pts) {
		t.Fatalf("sharing off: %d units for %d points", len(units), len(pts))
	}

	units = planUnits(g, pts)
	next := 0
	for _, u := range units {
		if len(u) == 0 {
			t.Fatal("empty unit")
		}
		for _, i := range u {
			if i != next {
				t.Fatalf("unit order broken: got point %d, want %d", i, next)
			}
			if warmKey(pts[i].Spec) != warmKey(pts[u[0]].Spec) {
				t.Fatalf("unit mixes warmup keys: points %d and %d", u[0], i)
			}
			next++
		}
	}
	if next != len(pts) {
		t.Fatalf("units cover %d of %d points", next, len(pts))
	}
	// The grid's four schemes per coordinate must have grouped.
	for _, u := range units {
		if len(u) != len(g.Schemes) {
			t.Fatalf("unit size %d, want one comparison of %d schemes", len(u), len(g.Schemes))
		}
	}
}
