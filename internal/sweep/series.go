package sweep

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"lbica/internal/engine"
	"lbica/internal/stats"
)

// Per-interval series export: each completed run of a sweep can emit its
// interval timeline — cache load, disk load, hit ratio, and the balancer's
// group/policy decisions — as one CSV per cell, the raw material every
// plotting and calibration pass consumes. The numeric columns ride on
// stats.SeriesSet (the same carrier as the Fig. 4/5 curves); the
// categorical decision columns are appended through its WriteCSVWith hook.

// RunSeries builds the per-interval numeric series of one run: the Fig. 4
// cache load and Fig. 5 disk load (µs) plus the per-interval hit ratio
// derived from the engine's cumulative cache-stats snapshots.
func RunSeries(er *engine.Results) *stats.SeriesSet {
	ss := stats.NewSeriesSet("run-series")
	cl := ss.Get("cache_load_us")
	dl := ss.Get("disk_load_us")
	hr := ss.Get("hit_ratio")
	for i, smp := range er.Samples {
		cl.Append(smp.Interval, smp.End, float64(smp.CacheLoad)/1e3)
		dl.Append(smp.Interval, smp.End, float64(smp.DiskLoad)/1e3)
		var hits, total uint64
		if i < len(er.CacheStatsAt) {
			cur := er.CacheStatsAt[i]
			hits = cur.ReadHits + cur.WriteHits
			total = cur.Reads + cur.Writes
			if i > 0 {
				prev := er.CacheStatsAt[i-1]
				hits -= prev.ReadHits + prev.WriteHits
				total -= prev.Reads + prev.Writes
			}
		}
		ratio := 0.0
		if total > 0 {
			ratio = float64(hits) / float64(total)
		}
		hr.Append(smp.Interval, smp.End, ratio)
	}
	return ss
}

// WriteRunSeriesCSV emits one run's interval timeline:
//
//	interval,cache_load_us,disk_load_us,hit_ratio,group,policy
//
// group/policy reconstruct the balancer decision in force at each interval
// from the policy-change timeline (Fig. 6's method): "WB" with group "-"
// until the first decision, then the latest decision at or before the
// interval.
func WriteRunSeriesCSV(w io.Writer, er *engine.Results) error {
	groupAt := make([]string, len(er.Samples))
	policyAt := make([]string, len(er.Samples))
	cur, curGroup := "WB", "-"
	ti := 0
	for i := range er.Samples {
		for ti < len(er.Timeline) && er.Timeline[ti].Interval <= i {
			cur = er.Timeline[ti].Policy.String()
			curGroup = er.Timeline[ti].Group
			ti++
		}
		groupAt[i] = curGroup
		policyAt[i] = cur
	}
	return RunSeries(er).WriteCSVWith(w, []string{"group", "policy"}, func(iv int) []string {
		if iv < 0 || iv >= len(groupAt) {
			return []string{"-", "-"}
		}
		return []string{groupAt[iv], policyAt[iv]}
	})
}

// SeriesFileName names a run's series file from its grid coordinates,
// e.g. "series_tpcc_lbica_cm0.5_rf1_bm2_r0.csv". Workload names come from
// the open registry and may contain anything, so every name- and
// float-derived component is sanitized to a filesystem-safe alphabet.
// The numeric coordinates are formatted by ftoa — the exact function the
// cells CSV uses — so a series file's cm/rf/bm/rs components join back to
// their CSV row byte for byte (for every value the grid validation
// admits, the sanitizer is the identity on ftoa's output). Array
// coordinates appear only off their defaults ("..._bm1_v4_rs1.2_r0.csv"),
// so single-volume sweeps keep their historical file names byte for byte.
func SeriesFileName(pt Point) string {
	arr := ""
	if pt.Volumes > 1 || pt.RouteSkew != 0 {
		arr = "_v" + strconv.Itoa(pt.Volumes) + "_rs" + sanitizeName(ftoa(pt.RouteSkew))
	}
	return "series_" + sanitizeName(pt.Workload) + "_" + sanitizeName(strings.ToLower(pt.Scheme)) +
		"_cm" + sanitizeName(ftoa(pt.CacheMult)) + "_rf" + sanitizeName(ftoa(pt.RateFactor)) +
		"_bm" + sanitizeName(ftoa(pt.BurstMult)) + arr + "_r" + strconv.Itoa(pt.Replicate) + ".csv"
}

// sanitizeName maps a workload/scheme name onto [a-z0-9._-]: every other
// byte becomes '_'. Distinct hostile names can collide after sanitizing;
// the grid's duplicate-axis validation keeps coordinates unique in
// practice, and colliding names still produce deterministic output (the
// later run in expansion order wins).
func sanitizeName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
			b.WriteByte(c)
		case c >= 'A' && c <= 'Z':
			b.WriteByte(c - 'A' + 'a')
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// ExportSeries writes one series CSV per completed run into dir (created
// if needed). pts and results are parallel in expansion order; nil results
// (runs an interrupted sweep never finished) are skipped. Writing happens
// serially in expansion order and each file depends only on its own run's
// data, so the exported bytes are identical for every worker count.
//
// Each file is written to a dot-prefixed temp name in dir and renamed
// into place only once fully flushed, so an export interrupted mid-write
// (the SIGINT partial-report path, a full disk, a crash) never leaves a
// torn CSV behind: every "series_*.csv" present afterwards is complete
// and parseable.
func ExportSeries(dir string, pts []Point, results []*engine.Results) error {
	if len(pts) != len(results) {
		return fmt.Errorf("sweep: series export got %d points but %d results", len(pts), len(results))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("sweep: series dir: %w", err)
	}
	for i, er := range results {
		if er == nil {
			continue
		}
		if err := writeSeriesFile(filepath.Join(dir, SeriesFileName(pts[i])), er); err != nil {
			return err
		}
	}
	return nil
}

// writeSeriesFile atomically writes one run's series CSV: temp file in
// the same directory (rename is only atomic within a filesystem), then
// rename over the final path. The temp name derives from the final one,
// so concurrent sweeps into distinct cells never collide and a retried
// export simply overwrites its own leftover.
func writeSeriesFile(path string, er *engine.Results) error {
	tmp := filepath.Join(filepath.Dir(path), "."+filepath.Base(path)+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("sweep: series file: %w", err)
	}
	if err := WriteRunSeriesCSV(f, er); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("sweep: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sweep: closing %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sweep: publishing %s: %w", path, err)
	}
	return nil
}
