package array

import (
	"context"
	"fmt"
	"sort"
	"time"

	"lbica/internal/cache"
	"lbica/internal/engine"
	"lbica/internal/iostat"
	"lbica/internal/runner"
	"lbica/internal/stats"
)

// MaxVolumes bounds the array width: 256 full stacks is already far past
// any sweep worth running in one process, and an unbounded width would
// let a typo allocate hundreds of caches before the first event fires.
const MaxVolumes = 256

// MaxSkew bounds the Zipf routing exponent; at 16 essentially every
// request already lands on volume 0, so larger values only differ in
// label.
const MaxSkew = 16.0

// Config describes an array: its width, how the router splits the stream,
// and how many shards run concurrently.
type Config struct {
	// Volumes is the array width (≥ 1).
	Volumes int
	// Policy selects the routing policy; Skew is the Zipf policy's
	// volume-popularity exponent (0 = uniform weights).
	Policy Policy
	Skew   float64
	// Workers caps the shard pool (≤0 = GOMAXPROCS; 1 = the serial
	// baseline the determinism test compares against).
	Workers int
}

// Validate reports the first invalid field. Like the sweep grid, array
// configs arrive from CLI flags and public options, so bad values surface
// as errors, never clamps.
func (c Config) Validate() error {
	if c.Volumes < 1 || c.Volumes > MaxVolumes {
		return fmt.Errorf("array: volume count %d outside [1, %d]", c.Volumes, MaxVolumes)
	}
	if !(c.Skew >= 0 && c.Skew <= MaxSkew) {
		return fmt.Errorf("array: route skew %v outside [0, %v]", c.Skew, MaxSkew)
	}
	if c.Skew != 0 && c.Policy != Zipf {
		return fmt.Errorf("array: route skew %v set under policy %v (skew applies to zipf routing only)", c.Skew, c.Policy)
	}
	return nil
}

// NewRouter builds one volume's router instance for this config.
func (c Config) NewRouter(seed int64) *Router {
	return NewRouter(seed, c.Volumes, c.Policy, c.Skew)
}

// Results is a finished (or interrupted) array run.
type Results struct {
	// Volumes is the array width the run was configured with.
	Volumes int
	// Merged is the array-level reduction of every completed volume (see
	// Merge). Never nil; empty when no volume completed.
	Merged *engine.Results
	// PerVolume holds each volume's own results, indexed by volume
	// address; a nil slot is a volume a cancellation stopped before it
	// completed.
	PerVolume []*engine.Results
}

// BuildFunc assembles one volume's stack. It is called inside the shard
// worker, so everything it builds — generator, router, balancer, stack —
// must derive from the volume address and the run's spec alone (the
// runner determinism contract).
type BuildFunc func(vol int) (*engine.Stack, error)

// Run shards the array across the runner pool: build(v) assembles volume
// v's stack, each volume simulates intervals monitor intervals, and the
// per-volume results are merged order-independently. Output is
// byte-identical for every worker count. On cancellation the error is
// non-nil and Results covers the volumes that completed — volumes stopped
// mid-run are dropped (partial arrays contain only whole volumes,
// mirroring the sweep's partial-report rule).
func Run(ctx context.Context, cfg Config, intervals int, build BuildFunc) (*Results, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	per, err := runner.Map(ctx, cfg.Volumes, runner.Options{Workers: cfg.Workers},
		func(ctx context.Context, v int) (*engine.Results, error) {
			st, err := build(v)
			if err != nil {
				return nil, fmt.Errorf("array: building volume %d: %w", v, err)
			}
			res := st.RunContext(ctx, intervals)
			res.Volume = v
			// A cancellation that lands only after this volume sampled
			// every requested interval changed nothing for it: keep the
			// complete results instead of dropping them (the single-stack
			// path treats the identical timing as a complete run). Volumes
			// that genuinely stopped short are dropped — partial arrays
			// contain only whole volumes.
			if err := ctx.Err(); err != nil && len(res.Samples) < intervals {
				return nil, err
			}
			return res, nil
		})
	return &Results{Volumes: cfg.Volumes, Merged: Merge(per), PerVolume: per}, err
}

// Merge reduces per-volume results into array-level results. Entries may
// arrive in any order and may be nil (dropped volumes); the fold sorts by
// Results.Volume first, so any permutation of the same inputs merges to
// identical bytes. The reduction semantics, per field class:
//
//   - queue-time loads (CacheLoad, DiskLoad, QTimes) take the per-interval
//     maximum across volumes — the array's bottleneck volume, which is
//     what a fleet-level Fig. 4/5 curve should show;
//   - the burst flag ORs (the array is bursting if any volume is);
//   - queue depths at interval close and censuses sum (array-wide
//     totals), while within-interval peak depths take the worst volume
//     (they pair with the load columns, which are peak depth × latency);
//   - latencies average weighted by completions, and the full latency
//     histograms merge, so array quantiles are exact over all requests;
//   - counters (requests, bypasses, merges, written sectors) sum;
//   - device utilizations average across volumes (each volume is its own
//     hardware);
//   - the policy timeline interleaves every volume's decisions by virtual
//     time, each Group annotated with its volume ("v2:G3/random-write").
func Merge(perVol []*engine.Results) *engine.Results {
	vols := make([]*engine.Results, 0, len(perVol))
	for _, r := range perVol {
		if r != nil {
			vols = append(vols, r)
		}
	}
	sort.SliceStable(vols, func(i, j int) bool { return vols[i].Volume < vols[j].Volume })

	out := &engine.Results{AppLatency: stats.NewHistogram()}
	if len(vols) == 0 {
		return out
	}
	out.Workload = vols[0].Workload
	out.Scheme = vols[0].Scheme

	out.Samples = mergeSamples(vols)
	out.Timeline = mergeTimelines(vols)
	out.CacheStatsAt = mergeCacheStatsAt(vols)

	hists := make([]*stats.Histogram, len(vols))
	var utilSSD, utilHDD float64
	for i, r := range vols {
		hists[i] = r.AppLatency
		out.AppSubmitted += r.AppSubmitted
		out.AppCompleted += r.AppCompleted
		out.CacheStats = sumCacheStats(out.CacheStats, r.CacheStats)
		if r.SSDPeakDepth > out.SSDPeakDepth {
			out.SSDPeakDepth = r.SSDPeakDepth
		}
		if r.HDDPeakDepth > out.HDDPeakDepth {
			out.HDDPeakDepth = r.HDDPeakDepth
		}
		utilSSD += r.SSDUtilization
		utilHDD += r.HDDUtilization
		out.SSDMerges += r.SSDMerges
		out.HDDMerges += r.HDDMerges
		out.BypassedToDisk += r.BypassedToDisk
		out.CancelledShadows += r.CancelledShadows
		if r.Elapsed > out.Elapsed {
			out.Elapsed = r.Elapsed
		}
		out.SSDWrittenSectors += r.SSDWrittenSectors
		out.HDDWrittenSectors += r.HDDWrittenSectors
	}
	out.AppLatency = stats.MergeHistograms(hists)
	out.SSDUtilization = utilSSD / float64(len(vols))
	out.HDDUtilization = utilHDD / float64(len(vols))
	return out
}

// mergeSamples folds the per-volume interval samples into one array-level
// series over the union of interval indexes (volumes stopped early by a
// cancellation contribute the intervals they closed).
func mergeSamples(vols []*engine.Results) []iostat.Sample {
	n := 0
	for _, r := range vols {
		if len(r.Samples) > n {
			n = len(r.Samples)
		}
	}
	out := make([]iostat.Sample, 0, n)
	for i := 0; i < n; i++ {
		var (
			m       iostat.Sample
			first   = true
			appLat  stats.WeightedMean
			ssdWait stats.WeightedMean
			hddWait stats.WeightedMean
		)
		for _, r := range vols {
			if i >= len(r.Samples) {
				continue
			}
			s := r.Samples[i]
			if first {
				m = s
				first = false
			} else {
				if s.Start < m.Start {
					m.Start = s.Start
				}
				if s.End > m.End {
					m.End = s.End
				}
				m.SSDDepth += s.SSDDepth
				m.HDDDepth += s.HDDDepth
				m.SSDDepthAvg += s.SSDDepthAvg
				m.HDDDepthAvg += s.HDDDepthAvg
				// Peak depths take the worst volume, matching the load
				// columns: CacheLoad *is* the peak depth × service latency,
				// so maxing one and summing the other would decouple them.
				if s.SSDDepthMax > m.SSDDepthMax {
					m.SSDDepthMax = s.SSDDepthMax
				}
				if s.HDDDepthMax > m.HDDDepthMax {
					m.HDDDepthMax = s.HDDDepthMax
				}
				m.CacheLoad = maxDur(m.CacheLoad, s.CacheLoad)
				m.DiskLoad = maxDur(m.DiskLoad, s.DiskLoad)
				m.CacheQTime = maxDur(m.CacheQTime, s.CacheQTime)
				m.DiskQTime = maxDur(m.DiskQTime, s.DiskQTime)
				m.Bottleneck = m.Bottleneck || s.Bottleneck
				for o := range m.Census {
					m.Census[o] += s.Census[o]
					m.Arrivals[o] += s.Arrivals[o]
				}
				m.SSDCompleted += s.SSDCompleted
				m.HDDCompleted += s.HDDCompleted
				m.SSDMaxLatency = maxDur(m.SSDMaxLatency, s.SSDMaxLatency)
				m.HDDMaxLat = maxDur(m.HDDMaxLat, s.HDDMaxLat)
				m.AppCompleted += s.AppCompleted
				m.AppMaxLat = maxDur(m.AppMaxLat, s.AppMaxLat)
			}
			appLat.AddDuration(s.AppAwait, float64(s.AppCompleted))
			ssdWait.AddDuration(s.SSDAwait, float64(s.SSDCompleted))
			hddWait.AddDuration(s.HDDAwait, float64(s.HDDCompleted))
		}
		if first {
			continue // no volume closed this interval
		}
		m.Interval = i
		m.AppAwait = appLat.Duration()
		m.SSDAwait = ssdWait.Duration()
		m.HDDAwait = hddWait.Duration()
		out = append(out, m)
	}
	return out
}

// mergeTimelines interleaves every volume's policy decisions by virtual
// time (ties broken by volume, then original order), annotating each
// Group with its volume address so the array timeline stays attributable.
func mergeTimelines(vols []*engine.Results) []engine.PolicyChange {
	type entry struct {
		pc  engine.PolicyChange
		vol int
		idx int
	}
	var all []entry
	for _, r := range vols {
		for idx, pc := range r.Timeline {
			pc.Group = fmt.Sprintf("v%d:%s", r.Volume, pc.Group)
			all = append(all, entry{pc: pc, vol: r.Volume, idx: idx})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.pc.At != b.pc.At {
			return a.pc.At < b.pc.At
		}
		if a.vol != b.vol {
			return a.vol < b.vol
		}
		return a.idx < b.idx
	})
	if len(all) == 0 {
		return nil
	}
	out := make([]engine.PolicyChange, len(all))
	for i, e := range all {
		out[i] = e.pc
	}
	return out
}

// mergeCacheStatsAt sums the per-interval cumulative cache snapshots, so
// per-interval deltas over the merged snapshots (the series exporter's
// hit-ratio timeline) aggregate the whole array.
func mergeCacheStatsAt(vols []*engine.Results) []cache.Stats {
	n := 0
	for _, r := range vols {
		if len(r.CacheStatsAt) > n {
			n = len(r.CacheStatsAt)
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]cache.Stats, n)
	for _, r := range vols {
		for i, cs := range r.CacheStatsAt {
			out[i] = sumCacheStats(out[i], cs)
		}
		// A volume stopped early keeps contributing its last snapshot to
		// the remaining intervals: the cumulative counters did not reset
		// when the volume stopped, and dropping them would make array
		// deltas go negative.
		for i := len(r.CacheStatsAt); i < n; i++ {
			if len(r.CacheStatsAt) > 0 {
				out[i] = sumCacheStats(out[i], r.CacheStatsAt[len(r.CacheStatsAt)-1])
			}
		}
	}
	return out
}

func sumCacheStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Reads:          a.Reads + b.Reads,
		Writes:         a.Writes + b.Writes,
		ReadHits:       a.ReadHits + b.ReadHits,
		ReadMisses:     a.ReadMisses + b.ReadMisses,
		WriteHits:      a.WriteHits + b.WriteHits,
		WriteMisses:    a.WriteMisses + b.WriteMisses,
		Promotes:       a.Promotes + b.Promotes,
		CleanEvicts:    a.CleanEvicts + b.CleanEvicts,
		DirtyEvicts:    a.DirtyEvicts + b.DirtyEvicts,
		Invalidations:  a.Invalidations + b.Invalidations,
		FlushesStarted: a.FlushesStarted + b.FlushesStarted,
		Flushed:        a.Flushed + b.Flushed,
		PolicySwitches: a.PolicySwitches + b.PolicySwitches,
		BypassedReads:  a.BypassedReads + b.BypassedReads,
		BypassedWr:     a.BypassedWr + b.BypassedWr,
		MigratedOut:    a.MigratedOut + b.MigratedOut,
		MigratedIn:     a.MigratedIn + b.MigratedIn,
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if b > a {
		return b
	}
	return a
}
