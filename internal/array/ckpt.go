package array

import "lbica/internal/ckpt"

// EncodeState serializes the router's mutable state — the draw position
// of its dedicated "array:router" stream. Width, policy, and the Zipf
// CDF are immutable configuration the restoring side rebuilds from; they
// are written only as cross-checks.
func (r *Router) EncodeState(enc *ckpt.Encoder) {
	enc.Section("array.Router")
	enc.Int(r.n)
	enc.U8(uint8(r.policy))
	enc.Bool(r.rng != nil)
	if r.rng != nil {
		r.rng.EncodeState(enc)
	}
}

// DecodeState restores the router in place. A checkpoint written under a
// different width or policy is corrupt relative to this configuration.
func (r *Router) DecodeState(d *ckpt.Decoder) {
	d.Section("array.Router")
	n := d.Int()
	policy := Policy(d.U8())
	hasRNG := d.Bool()
	if d.Err() != nil {
		return
	}
	if n != r.n || policy != r.policy {
		d.Failf("array: router mismatch: checkpoint is %d-volume %s, stack is %d-volume %s",
			n, policy, r.n, r.policy)
		return
	}
	if hasRNG != (r.rng != nil) {
		d.Failf("array: router RNG presence mismatch for policy %s", policy)
		return
	}
	if r.rng != nil {
		r.rng.DecodeState(d)
	}
}

// EncodeState serializes the routed sub-stream position: the private
// router copy and the base stream it filters. The Filter wrapper is
// stateless wiring the restoring side rebuilds.
func (g *volumeGen) EncodeState(enc *ckpt.Encoder) {
	enc.Section("array.volumeGen")
	enc.Int(g.vol)
	g.rt.EncodeState(enc)
	sc, ok := g.inner.(ckpt.StateCodec)
	if !ok {
		enc.Failf("array: volume %d wraps non-checkpointable generator %T", g.vol, g.inner)
		return
	}
	sc.EncodeState(enc)
}

// DecodeState restores the sub-stream in place.
func (g *volumeGen) DecodeState(d *ckpt.Decoder) {
	d.Section("array.volumeGen")
	vol := d.Int()
	if d.Err() != nil {
		return
	}
	if vol != g.vol {
		d.Failf("array: checkpoint is for volume %d, stack hosts volume %d", vol, g.vol)
		return
	}
	g.rt.DecodeState(d)
	sc, ok := g.inner.(ckpt.StateCodec)
	if !ok {
		d.Failf("array: volume %d wraps non-checkpointable generator %T", g.vol, g.inner)
		return
	}
	sc.DecodeState(d)
}
