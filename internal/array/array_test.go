package array

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"lbica/internal/block"
	"lbica/internal/core"
	"lbica/internal/engine"
	"lbica/internal/sim"
	"lbica/internal/workload"
)

// testBuild returns a BuildFunc assembling small tpcc/LBICA volumes for an
// n-volume array under the given routing config.
func testBuild(cfg Config, seed int64, intervals int) BuildFunc {
	return func(vol int) (*engine.Stack, error) {
		ec := engine.DefaultConfig()
		ec.Seed = sim.Stream(seed, vol)
		ec.Volume = vol
		ec.Cache.Sets = 256 // small cache keeps the test fast
		ec.PrewarmBlocks = ec.Cache.Sets * ec.Cache.Ways
		gen := workload.TPCC(
			workload.Scale{Intervals: intervals},
			sim.NewRNG(seed, "workload:tpcc"))
		vg := VolumeGen(gen, cfg.NewRouter(seed), vol)
		return engine.New(ec, vg, core.New(core.DefaultConfig())), nil
	}
}

func runArray(t *testing.T, cfg Config, seed int64, intervals int) *Results {
	t.Helper()
	res, err := Run(context.Background(), cfg, intervals, testBuild(cfg, seed, intervals))
	if err != nil {
		t.Fatalf("array.Run: %v", err)
	}
	return res
}

// The headline determinism guarantee: a sharded parallel array run is
// byte-identical to the Workers=1 serial baseline, volume by volume and
// in the merged reduction.
func TestRunParallelMatchesSerial(t *testing.T) {
	const intervals = 8
	serial := runArray(t, Config{Volumes: 3, Workers: 1}, 7, intervals)
	parallel := runArray(t, Config{Volumes: 3, Workers: 3}, 7, intervals)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel array run differs from the serial baseline")
	}
	if len(serial.Merged.Samples) != intervals {
		t.Fatalf("merged run has %d samples, want %d", len(serial.Merged.Samples), intervals)
	}
}

// Every request of the base stream lands on exactly one volume: summed
// per-volume submissions equal a straight single-stack run's submissions.
func TestVolumesPartitionTheStream(t *testing.T) {
	for _, cfg := range []Config{
		{Volumes: 3, Policy: Uniform},
		{Volumes: 3, Policy: Hash},
		{Volumes: 3, Policy: Zipf, Skew: 1.2},
	} {
		res := runArray(t, Config{Volumes: cfg.Volumes, Policy: cfg.Policy, Skew: cfg.Skew, Workers: 1}, 5, 6)
		base := workload.TPCC(workload.Scale{Intervals: 6}, sim.NewRNG(5, "workload:tpcc"))
		total := uint64(0)
		for {
			if _, ok := base.Next(); !ok {
				break
			}
			total++
		}
		var got uint64
		for v, r := range res.PerVolume {
			if r == nil {
				t.Fatalf("%v: volume %d missing", cfg.Policy, v)
			}
			got += r.AppSubmitted
		}
		// The simulation may leave requests emitted beyond the last interval
		// unsubmitted only if the generator schedule outlives the run; tpcc's
		// schedule matches Intervals, so every request is submitted.
		if got != total {
			t.Errorf("%v: volumes submitted %d requests, base stream has %d", cfg.Policy, got, total)
		}
	}
}

// Hash routing is affine: re-running must route every block to the same
// volume, and distinct volumes see disjoint block sets (checked via the
// pure RouteBlock function).
func TestHashRoutingAffine(t *testing.T) {
	r := NewRouter(1, 4, Hash, 0)
	counts := make([]int, 4)
	for b := int64(0); b < 4096; b++ {
		v := r.RouteBlock(b)
		if v2 := r.RouteBlock(b); v2 != v {
			t.Fatalf("block %d routed to %d then %d", b, v, v2)
		}
		counts[v]++
	}
	for v, n := range counts {
		if n < 4096/4/2 || n > 4096/4*2 {
			t.Errorf("hash volume %d got %d of 4096 blocks — badly skewed", v, n)
		}
	}
}

// Zipf routing must skew volume popularity monotonically: volume 0
// hottest, and a higher skew concentrates more load there. Uniform must
// spread evenly.
func TestRoutingDistributions(t *testing.T) {
	draw := func(policy Policy, skew float64) []int {
		rt := NewRouter(3, 4, policy, skew)
		counts := make([]int, 4)
		for i := 0; i < 20000; i++ {
			counts[rt.Route(workload.Request{})]++
		}
		return counts
	}
	uni := draw(Uniform, 0)
	for v, n := range uni {
		if n < 4000 || n > 6000 {
			t.Errorf("uniform volume %d got %d of 20000", v, n)
		}
	}
	z := draw(Zipf, 1.2)
	if !(z[0] > z[1] && z[1] > z[2] && z[2] > z[3]) {
		t.Errorf("zipf(1.2) counts not monotone: %v", z)
	}
	hot := draw(Zipf, 4)
	if hot[0] <= z[0] {
		t.Errorf("zipf(4) volume 0 share %d not above zipf(1.2) share %d", hot[0], z[0])
	}
	// Zipf with skew 0 spreads uniformly.
	z0 := draw(Zipf, 0)
	for v, n := range z0 {
		if n < 4000 || n > 6000 {
			t.Errorf("zipf(0) volume %d got %d of 20000", v, n)
		}
	}
}

// Sibling routers over stream copies stay in lockstep: the same request
// sequence yields the same routing sequence on every instance.
func TestRoutersLockstep(t *testing.T) {
	for _, p := range []Policy{Uniform, Zipf} {
		skew := 0.0
		if p == Zipf {
			skew = 1.1
		}
		a := NewRouter(11, 5, p, skew)
		b := NewRouter(11, 5, p, skew)
		for i := 0; i < 1000; i++ {
			req := workload.Request{Extent: block.Extent{LBA: int64(i) * workload.BlockSectors, Sectors: 8}}
			if va, vb := a.Route(req), b.Route(req); va != vb {
				t.Fatalf("%v: request %d routed to %d vs %d", p, i, va, vb)
			}
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{
		"": Uniform, "uniform": Uniform, " Hash ": Hash, "zipf": Zipf, "ZIPF": Zipf,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("round-robin"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{
		{Volumes: 0},
		{Volumes: -1},
		{Volumes: MaxVolumes + 1},
		{Volumes: 2, Skew: -1},
		{Volumes: 2, Skew: MaxSkew + 1},
		{Volumes: 2, Policy: Zipf, Skew: math.NaN()},
		{Volumes: 2, Policy: Uniform, Skew: 1},
		{Volumes: 2, Policy: Hash, Skew: 0.5},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid config", bad)
		}
	}
	for _, good := range []Config{
		{Volumes: 1},
		{Volumes: MaxVolumes},
		{Volumes: 2, Policy: Zipf, Skew: 1.5},
		{Volumes: 2, Policy: Hash},
	} {
		if err := good.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", good, err)
		}
	}
}

// The merge reducer is permutation-invariant: any ordering of the same
// per-volume results merges to identical bytes.
func TestMergePermutationInvariant(t *testing.T) {
	res := runArray(t, Config{Volumes: 4, Workers: 1}, 3, 6)
	want := Merge(res.PerVolume)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		perm := append([]*engine.Results(nil), res.PerVolume...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got := Merge(perm)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: permuted merge differs", trial)
		}
	}
	// Nil slots (dropped volumes) are skipped, not fatal.
	partial := append([]*engine.Results(nil), res.PerVolume...)
	partial[2] = nil
	m := Merge(partial)
	if m.AppCompleted >= want.AppCompleted {
		t.Error("dropping a volume did not reduce merged completions")
	}
	// Empty input merges to a usable empty result.
	empty := Merge(nil)
	if empty == nil || empty.AppLatency == nil || len(empty.Samples) != 0 {
		t.Fatalf("Merge(nil) = %+v", empty)
	}
}

// Merged aggregates must reconcile with their per-volume inputs: counters
// sum, loads are per-interval maxima, latencies are completion-weighted.
func TestMergeSemantics(t *testing.T) {
	res := runArray(t, Config{Volumes: 3, Workers: 1}, 9, 6)
	m := res.Merged

	var wantReqs uint64
	for _, r := range res.PerVolume {
		wantReqs += r.AppCompleted
	}
	if m.AppCompleted != wantReqs {
		t.Errorf("merged AppCompleted %d, want %d", m.AppCompleted, wantReqs)
	}
	if got := m.AppLatency.Count(); got != wantReqs {
		t.Errorf("merged histogram count %d, want %d", got, wantReqs)
	}
	for i, s := range m.Samples {
		var maxLoad time.Duration
		var completed uint64
		for _, r := range res.PerVolume {
			if s2 := r.Samples[i]; true {
				if s2.CacheLoad > maxLoad {
					maxLoad = s2.CacheLoad
				}
				completed += s2.AppCompleted
			}
		}
		if s.CacheLoad != maxLoad {
			t.Fatalf("interval %d: merged CacheLoad %v, want per-volume max %v", i, s.CacheLoad, maxLoad)
		}
		if s.AppCompleted != completed {
			t.Fatalf("interval %d: merged AppCompleted %d, want %d", i, s.AppCompleted, completed)
		}
	}
	// Timeline groups carry their volume address.
	for _, pc := range m.Timeline {
		if len(pc.Group) < 2 || pc.Group[0] != 'v' {
			t.Fatalf("merged timeline group %q lacks a volume prefix", pc.Group)
		}
	}
	for i := 1; i < len(m.Timeline); i++ {
		if m.Timeline[i].At < m.Timeline[i-1].At {
			t.Fatal("merged timeline not time-ordered")
		}
	}
}

// A cancelled array run reports an error and only whole volumes.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Volumes: 3, Workers: 1}
	res, err := Run(ctx, cfg, 4, testBuild(cfg, 1, 4))
	if err == nil {
		t.Fatal("cancelled Run returned nil error")
	}
	for v, r := range res.PerVolume {
		if r != nil {
			t.Errorf("volume %d present despite pre-cancelled context", v)
		}
	}
	if res.Merged == nil || len(res.Merged.Samples) != 0 {
		t.Error("merged result of an empty array should be empty, not nil")
	}
}

// A failing build surfaces as an error naming the volume.
func TestRunBuildError(t *testing.T) {
	cfg := Config{Volumes: 2, Workers: 1}
	_, err := Run(context.Background(), cfg, 2, func(vol int) (*engine.Stack, error) {
		if vol == 1 {
			return nil, fmt.Errorf("boom")
		}
		return testBuild(cfg, 1, 2)(vol)
	})
	if err == nil {
		t.Fatal("build error did not surface")
	}
}

func TestInvalidConfigRejectedByRun(t *testing.T) {
	if _, err := Run(context.Background(), Config{Volumes: 0}, 1, nil); err == nil {
		t.Fatal("Run accepted an invalid config")
	}
}
