package array

import (
	"context"
	"reflect"
	"testing"

	"lbica/internal/engine"
	"lbica/internal/sim"
	"lbica/internal/workload"
)

// forkWorkloads are the base streams the fork contract is checked
// against — distinct phase structures exercise different clone paths.
var forkWorkloads = map[string]func(s workload.Scale, g *sim.RNG) *workload.PhaseGen{
	"tpcc": workload.TPCC,
	"mail": workload.MailServer,
}

func newTestControlled(t *testing.T, ctx context.Context, cfg ControllerConfig, seed int64, intervals int, wl string) *Controlled {
	t.Helper()
	base := forkWorkloads[wl](workload.Scale{Intervals: intervals}, sim.NewRNG(seed, "workload:"+wl))
	c, err := NewControlled(ctx, cfg, intervals, engine.DefaultConfig().MonitorEvery,
		base, controlledBuild(seed))
	if err != nil {
		t.Fatalf("NewControlled: %v", err)
	}
	return c
}

func scratchControlled(t *testing.T, ctx context.Context, cfg ControllerConfig, seed int64, intervals int, wl string) *Results {
	t.Helper()
	c := newTestControlled(t, ctx, cfg, seed, intervals, wl)
	res, err := c.Finish(ctx)
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return res
}

func mustFinish(t *testing.T, ctx context.Context, c *Controlled, label string) *Results {
	t.Helper()
	res, err := c.Finish(ctx)
	if err != nil {
		t.Fatalf("%s: Finish: %v", label, err)
	}
	return res
}

// The fork-identity contract extended to whole arrays: a Controlled
// forked mid-run finishes byte-identical to a from-scratch run, across
// array widths, routing variants and workloads — and finishing the fork
// must not perturb the original, which still has to reproduce the
// scratch bytes itself afterwards.
func TestControlledForkEquivalence(t *testing.T) {
	ctx := context.Background()
	const seed, intervals = 7, 6
	for wl := range forkWorkloads {
		for _, volumes := range []int{2, 3} {
			for _, variant := range []Variant{Weighted, PowerOfTwo} {
				cfg := ControllerConfig{Volumes: volumes, Skew: 1.2, Seed: seed, Variant: variant, Workers: 1}
				want := scratchControlled(t, ctx, cfg, seed, intervals, wl)

				c := newTestControlled(t, ctx, cfg, seed, intervals, wl)
				if err := c.StepTo(ctx, intervals/3); err != nil {
					t.Fatalf("%s/%d/%v: StepTo: %v", wl, volumes, variant, err)
				}
				f, err := c.Fork(ctx)
				if err != nil {
					t.Fatalf("%s/%d/%v: Fork: %v", wl, volumes, variant, err)
				}
				if got := mustFinish(t, ctx, f, "fork"); !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%d vols/%v: forked run differs from scratch", wl, volumes, variant)
				}
				if got := mustFinish(t, ctx, c, "original"); !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%d vols/%v: original perturbed by the fork", wl, volumes, variant)
				}
			}
		}
	}
}

// A fork of a fork carries the same identity guarantee — the clone paths
// (router state, per-volume feeds, lookahead) must survive repeated
// copying, not just one generation.
func TestControlledForkOfFork(t *testing.T) {
	ctx := context.Background()
	const seed, intervals = 7, 6
	cfg := ControllerConfig{Volumes: 3, Skew: 1.2, Seed: seed, Workers: 1}
	want := scratchControlled(t, ctx, cfg, seed, intervals, "tpcc")

	c := newTestControlled(t, ctx, cfg, seed, intervals, "tpcc")
	if err := c.StepTo(ctx, 2); err != nil {
		t.Fatalf("StepTo: %v", err)
	}
	f1, err := c.Fork(ctx)
	if err != nil {
		t.Fatalf("first fork: %v", err)
	}
	if err := f1.StepTo(ctx, 4); err != nil {
		t.Fatalf("fork StepTo: %v", err)
	}
	f2, err := f1.Fork(ctx)
	if err != nil {
		t.Fatalf("second fork: %v", err)
	}
	if got := mustFinish(t, ctx, f2, "fork-of-fork"); !reflect.DeepEqual(got, want) {
		t.Error("fork-of-fork differs from scratch")
	}
	if got := mustFinish(t, ctx, f1, "first fork"); !reflect.DeepEqual(got, want) {
		t.Error("first fork perturbed by its own fork")
	}
}

// Forking after hot-block migration has populated the routing pin table
// must deep-copy the pins: the fork reproduces the scratch bytes, and
// mutating the original's pins afterwards cannot leak into it.
func TestControlledForkAfterMigrationPins(t *testing.T) {
	ctx := context.Background()
	const seed, intervals = 3, 8
	cfg := ControllerConfig{Volumes: 3, Skew: 1.2, Seed: seed, Workers: 1}
	want := scratchControlled(t, ctx, cfg, seed, intervals, "tpcc")

	c := newTestControlled(t, ctx, cfg, seed, intervals, "tpcc")
	forkAt := -1
	var f *Controlled
	for i := 1; i < intervals; i++ {
		if err := c.StepTo(ctx, i); err != nil {
			t.Fatalf("StepTo(%d): %v", i, err)
		}
		if len(c.rt.pins) > 0 {
			forkAt = i
			var err error
			if f, err = c.Fork(ctx); err != nil {
				t.Fatalf("Fork at interval %d: %v", i, err)
			}
			break
		}
	}
	if f == nil {
		t.Fatal("hot-shard run accumulated no migration pins before the last interval; fork never exercised the pin copy")
	}
	if got, want := len(f.rt.pins), len(c.rt.pins); got != want {
		t.Fatalf("fork copied %d pins, original has %d", got, want)
	}
	// Poison the original's pin table: a shared map would now corrupt the
	// fork's routing.
	for b := range c.rt.pins {
		c.rt.pins[b] = (c.rt.pins[b] + 1) % cfg.Volumes
	}
	if got := mustFinish(t, ctx, f, "fork"); !reflect.DeepEqual(got, want) {
		t.Errorf("fork taken at interval %d with live pins differs from scratch", forkAt)
	}
}
