package array

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"lbica/internal/block"
	"lbica/internal/core"
	"lbica/internal/engine"
	"lbica/internal/sim"
	"lbica/internal/workload"
)

// controlledBuild assembles small tpcc/LBICA volumes over the
// controller's per-volume feeds.
func controlledBuild(seed int64) func(vol int, gen workload.Generator) (*engine.Stack, error) {
	return func(vol int, gen workload.Generator) (*engine.Stack, error) {
		ec := engine.DefaultConfig()
		ec.Seed = sim.Stream(seed, vol)
		ec.Volume = vol
		ec.Cache.Sets = 256 // small cache keeps the test fast
		ec.PrewarmBlocks = ec.Cache.Sets * ec.Cache.Ways
		return engine.New(ec, gen, core.New(core.DefaultConfig())), nil
	}
}

func runControlled(t *testing.T, cfg ControllerConfig, seed int64, intervals int) *Results {
	t.Helper()
	base := workload.TPCC(workload.Scale{Intervals: intervals}, sim.NewRNG(seed, "workload:tpcc"))
	res, err := RunControlled(context.Background(), cfg, intervals, engine.DefaultConfig().MonitorEvery,
		base, controlledBuild(seed))
	if err != nil {
		t.Fatalf("RunControlled: %v", err)
	}
	return res
}

func TestParseVariant(t *testing.T) {
	for in, want := range map[string]Variant{
		"": Weighted, "weighted": Weighted, " P2C ": PowerOfTwo, "power-of-two": PowerOfTwo,
	} {
		got, err := ParseVariant(in)
		if err != nil || got != want {
			t.Errorf("ParseVariant(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseVariant("nope"); err == nil {
		t.Error("ParseVariant accepted an unknown variant")
	}
	if Weighted.String() != "weighted" || PowerOfTwo.String() != "p2c" {
		t.Error("variant names do not round-trip")
	}
}

func TestControllerConfigValidate(t *testing.T) {
	for name, bad := range map[string]ControllerConfig{
		"zero volumes":           {Volumes: 0},
		"absurd width":           {Volumes: MaxVolumes + 1},
		"negative skew":          {Volumes: 2, Skew: -1},
		"oversized skew":         {Volumes: 2, Skew: MaxSkew + 1},
		"negative topk":          {Volumes: 2, TopK: -2},
		"bad smoothing":          {Volumes: 2, Smoothing: 1.5},
		"bad min share":          {Volumes: 2, MinShare: 1},
		"sub-sentinel min share": {Volumes: 2, MinShare: -2},
		"ratio below 1":          {Volumes: 2, MigrateRatio: 0.5},
		"negative pins":          {Volumes: 2, MaxPins: -1},
	} {
		if err := bad.withDefaults().Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, bad)
		}
	}
	if err := (ControllerConfig{Volumes: 3, Skew: 1.2}).withDefaults().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// The tentpole determinism guarantee: the controlled run's output is
// byte-identical for every worker count, for both routing variants —
// controller decisions happen serially at the interval barrier, so the
// shard pool must not be observable.
func TestRunControlledParallelMatchesSerial(t *testing.T) {
	for _, variant := range []Variant{Weighted, PowerOfTwo} {
		cfg := ControllerConfig{Volumes: 3, Skew: 1.2, Seed: 7, Variant: variant}
		serial := cfg
		serial.Workers = 1
		want := runControlled(t, serial, 7, 6)
		for _, workers := range []int{0, 2, 3, 8} {
			par := cfg
			par.Workers = workers
			if got := runControlled(t, par, 7, 6); !reflect.DeepEqual(got, want) {
				t.Fatalf("%v: workers=%d run differs from the serial baseline", variant, workers)
			}
		}
		if want.Merged.AppCompleted == 0 || len(want.Merged.Samples) != 6 {
			t.Fatalf("%v: controlled run incomplete: %+v", variant, want.Merged)
		}
	}
}

// Under the hot-shard regime (skewed initial weights) the controller must
// flatten the array: the bottleneck volume's mean cache load stays at or
// below the static Zipf router's, and the per-volume request split is
// strictly more even.
func TestRunControlledFlattensHotShard(t *testing.T) {
	const intervals, seed = 8, 7
	static := runArray(t, Config{Volumes: 3, Policy: Zipf, Skew: 1.2, Workers: 1}, seed, intervals)
	controlled := runControlled(t, ControllerConfig{Volumes: 3, Skew: 1.2, Seed: seed, Workers: 1}, seed, intervals)

	// Merged per-interval loads are per-volume maxima, so CacheLoadMean is
	// the bottleneck volume's mean cache load — the flattening metric.
	if got, want := controlled.Merged.CacheLoadMean(), static.Merged.CacheLoadMean(); got > want {
		t.Errorf("array-lb bottleneck cache load %.1f exceeds static routing's %.1f", got, want)
	}
	spread := func(res *Results) (max, min uint64) {
		min = ^uint64(0)
		for _, r := range res.PerVolume {
			if r.AppSubmitted > max {
				max = r.AppSubmitted
			}
			if r.AppSubmitted < min {
				min = r.AppSubmitted
			}
		}
		return
	}
	sMax, sMin := spread(static)
	cMax, cMin := spread(controlled)
	if sMax-sMin <= cMax-cMin {
		t.Errorf("controller did not even the split: static %d..%d vs controlled %d..%d",
			sMin, sMax, cMin, cMax)
	}
}

// Every request of the base stream lands on exactly one volume — the
// controlled router partitions the stream just like the static ones.
func TestControlledVolumesPartitionTheStream(t *testing.T) {
	const intervals, seed = 6, 5
	res := runControlled(t, ControllerConfig{Volumes: 3, Skew: 1.2, Seed: seed, Workers: 1}, seed, intervals)
	base := workload.TPCC(workload.Scale{Intervals: intervals}, sim.NewRNG(seed, "workload:tpcc"))
	total := uint64(0)
	for {
		if _, ok := base.Next(); !ok {
			break
		}
		total++
	}
	var got uint64
	for v, r := range res.PerVolume {
		if r == nil {
			t.Fatalf("volume %d missing", v)
		}
		got += r.AppSubmitted
	}
	if got != total {
		t.Errorf("volumes submitted %d requests, base stream has %d", got, total)
	}
}

// The merge reducer stays permutation-invariant over controlled results —
// now carrying migrated-line stats — and the migration counters reconcile:
// summed MigratedOut equals summed MigratedIn (every extracted line lands
// somewhere), and a skewed run actually migrates.
func TestControlledMergeCarriesMigrations(t *testing.T) {
	res := runControlled(t, ControllerConfig{Volumes: 3, Skew: 1.2, Seed: 3, Workers: 1}, 3, 8)
	var out, in uint64
	for _, r := range res.PerVolume {
		out += r.CacheStats.MigratedOut
		in += r.CacheStats.MigratedIn
	}
	if out == 0 {
		t.Error("hot-shard run migrated nothing; the migration lever is dead")
	}
	if out != in {
		t.Errorf("migrations unbalanced: %d out, %d in", out, in)
	}
	if res.Merged.CacheStats.MigratedOut != out || res.Merged.CacheStats.MigratedIn != in {
		t.Errorf("merge dropped migration stats: merged %d/%d, want %d/%d",
			res.Merged.CacheStats.MigratedOut, res.Merged.CacheStats.MigratedIn, out, in)
	}
	want := Merge(res.PerVolume)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		perm := append([]*engine.Results(nil), res.PerVolume...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if got := Merge(perm); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: permuted merge of controlled results differs", trial)
		}
	}
}

// Pinned blocks bypass the draw deterministically; unpinned requests
// still follow the variant's distribution.
func TestAdaptiveRouterPins(t *testing.T) {
	rt := newAdaptiveRouter(ControllerConfig{Volumes: 4, Seed: 1}.withDefaults())
	rt.pins[7] = 2
	req := workload.Request{Extent: block.Extent{LBA: 7 * workload.BlockSectors, Sectors: 8}}
	for i := 0; i < 100; i++ {
		if v := rt.route(req); v != 2 {
			t.Fatalf("pinned block routed to %d, want 2", v)
		}
	}
}

// Inverse-load reweighting must shift traffic away from a measured
// bottleneck: after observing one volume far hotter than the rest, its
// weight drops below uniform and the coldest volume's rises above it.
func TestAdaptiveRouterReweights(t *testing.T) {
	rt := newAdaptiveRouter(ControllerConfig{Volumes: 3, Seed: 1}.withDefaults())
	rt.observe([]float64{900, 100, 100}, 0.5, 0.25)
	uniform := 1.0 / 3
	if rt.weights[0] >= uniform {
		t.Errorf("bottleneck weight %.3f not below uniform %.3f", rt.weights[0], uniform)
	}
	if rt.weights[1] <= uniform || rt.weights[2] <= uniform {
		t.Errorf("cold weights %.3f/%.3f not above uniform", rt.weights[1], rt.weights[2])
	}
	// The floor keeps even a saturated volume in the measurement loop.
	rt.observe([]float64{1e9, 1, 1}, 1, 0.3)
	if rt.weights[0] < 0.3/3-1e-12 {
		t.Errorf("weight %.4f fell through the MinShare floor", rt.weights[0])
	}
}

// Regression: MinShare 0 is legal per Validate's [0, 1) but used to be
// silently rewritten to the 0.25 default, making a no-floor controller
// unreachable. NoMinShare must resolve to a genuine zero floor — routing
// with it lets a saturated volume's weight collapse all the way — while
// the zero value keeps meaning "default" and NoMigration likewise
// resolves TopK to a real zero.
func TestNoMinShareRoutesWithZeroFloor(t *testing.T) {
	cfg := ControllerConfig{Volumes: 3, Seed: 1, MinShare: NoMinShare, TopK: NoMigration}.withDefaults()
	if cfg.MinShare != 0 {
		t.Fatalf("NoMinShare resolved to %v, want 0", cfg.MinShare)
	}
	if cfg.TopK != 0 {
		t.Fatalf("NoMigration resolved to %v, want 0", cfg.TopK)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("no-floor config rejected: %v", err)
	}
	if def := (ControllerConfig{Volumes: 3}).withDefaults(); def.MinShare != 0.25 || def.TopK != 32 {
		t.Fatalf("zero config no longer defaults: MinShare %v, TopK %d", def.MinShare, def.TopK)
	}

	// Route with the zero floor: after observing an extreme bottleneck,
	// the hot volume's weight must drop below the default floor the old
	// rewrite would have clamped it to — and routing still functions.
	rt := newAdaptiveRouter(cfg)
	rt.observe([]float64{1e9, 1, 1}, 1, cfg.MinShare)
	if floor := 0.25 / 3; rt.weights[0] >= floor {
		t.Errorf("no-floor weight %.6f still clamped at the default floor %.4f", rt.weights[0], floor)
	}
	req := workload.Request{Extent: block.Extent{LBA: 0, Sectors: 8}}
	for i := 0; i < 100; i++ {
		if v := rt.route(req); v < 0 || v >= cfg.Volumes {
			t.Fatalf("route returned volume %d outside the array", v)
		}
	}

	// End to end: a controlled run with the explicit zero floor completes.
	res := runControlled(t, ControllerConfig{Volumes: 2, Seed: 1, MinShare: NoMinShare, Workers: 1}, 1, 4)
	if res.Merged.AppCompleted == 0 || len(res.Merged.Samples) != 4 {
		t.Fatalf("no-floor controlled run incomplete: %+v", res.Merged)
	}
}

// A pre-cancelled controlled run surfaces the error and keeps only whole
// volumes, mirroring Run's partial-result contract.
func TestRunControlledCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := workload.TPCC(workload.Scale{Intervals: 4}, sim.NewRNG(1, "workload:tpcc"))
	res, err := RunControlled(ctx, ControllerConfig{Volumes: 3, Seed: 1, Workers: 1}, 4,
		engine.DefaultConfig().MonitorEvery, base, controlledBuild(1))
	if err == nil {
		t.Fatal("cancelled RunControlled returned nil error")
	}
	for v, r := range res.PerVolume {
		if r != nil {
			t.Errorf("volume %d present despite pre-cancelled context", v)
		}
	}
}

// Requests at exactly the interval boundary belong to the next round —
// they must be routed after the controller's decision, not before it.
func TestBoundaryRequestRoutesNextRound(t *testing.T) {
	every := engine.DefaultConfig().MonitorEvery
	feed := &boundaryGen{reqs: []workload.Request{
		{At: every / 2, Extent: block.Extent{LBA: 0, Sectors: 8}},
		{At: every, Extent: block.Extent{LBA: 8, Sectors: 8}}, // exactly on the boundary
	}}
	var mu []time.Duration // arrival times routed before the first barrier
	cfg := ControllerConfig{Volumes: 2, Seed: 1, Workers: 1}.withDefaults()
	rt := newAdaptiveRouter(cfg)
	pending, ok := feed.Next()
	for ok && pending.At < every {
		rt.route(pending)
		mu = append(mu, pending.At)
		pending, ok = feed.Next()
	}
	if len(mu) != 1 || mu[0] != every/2 {
		t.Fatalf("round 1 routed %v; the boundary request leaked in", mu)
	}
}

type boundaryGen struct {
	reqs []workload.Request
	pos  int
}

func (g *boundaryGen) Name() string { return "boundary" }

func (g *boundaryGen) Next() (workload.Request, bool) {
	if g.pos >= len(g.reqs) {
		return workload.Request{}, false
	}
	r := g.reqs[g.pos]
	g.pos++
	return r, true
}
