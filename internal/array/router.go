// Package array is the multi-volume layer: one simulation hosting N
// volumes, each a full cache+SSD-queue+disk-subsystem stack with its own
// load-balancer instance, fed by a deterministic router that splits the
// application stream across the volumes. Volumes share no mutable state,
// so the array shards volume-per-core through the bounded runner pool and
// inherits its determinism guarantee: the merged results are byte-
// identical for any worker count, including the serial baseline.
//
// The paper evaluates one SSD-cache/disk stack; an array is the
// production shape — a fleet of such stacks behind a request router, the
// regime where load balancing across a *population* of caches (DistCache,
// NSDI '19) differs qualitatively from balancing one. The router policies
// cover that design space: Uniform spreads requests independently of
// content, Hash pins each block to a volume (the affine layout a
// consistent-hashing frontend produces), and Zipf skews volume popularity
// (the hot-shard regime proximity-aware allocation studies).
//
// # The array-lb controller
//
// RunControlled replaces the static router with a closed-loop
// controller (controller.go): at each monitor-interval boundary it reads
// every volume's measured load, reweights the router from smoothed
// inverse loads (or routes power-of-two-choices under VariantP2C), and
// migrates the hottest clean cache lines off the bottleneck volume,
// pinning their routing at the destination.
//
// Determinism contract: the controller owns the single base workload
// generator and the single adaptiveRouter; both are touched only on the
// controller goroutine. Each round it routes the next interval's
// requests serially into per-volume queues, lets the volumes step to the
// barrier in parallel through the runner pool, then — with every volume
// quiescent — observes loads, reweights, and migrates serially. Because
// everything stochastic or order-sensitive happens on one goroutine at a
// barrier, merged results are byte-identical for every worker count,
// including the serial baseline.
//
// Migrated-line merge semantics: a migration moves a clean line between
// two volumes' caches mid-run. Per-volume stats count MigratedOut at the
// source and MigratedIn at the destination; an arrival that finds the
// block already resident still counts MigratedIn, so across the array
// the two sums always reconcile. Merge is order-independent — the
// merged report carries the summed migration counts, and any
// permutation of per-volume results merges to the identical report.
package array

import (
	"fmt"
	"math"
	"strings"

	"lbica/internal/sim"
	"lbica/internal/workload"
)

// Policy selects how the router assigns requests to volumes.
type Policy uint8

// Routing policies.
const (
	// Uniform routes each request to a uniformly random volume,
	// independent of its address — the load-spreading frontend.
	Uniform Policy = iota
	// Hash routes by block address: every request for a block always
	// lands on the same volume (consistent-hashing affinity), so a
	// volume's cache only ever sees its own address shard.
	Hash
	// Zipf routes each request to a volume drawn from a Zipf-skewed
	// popularity distribution over volumes (volume 0 hottest): the
	// imbalanced-fleet regime where some volumes run hot while others
	// idle. Skew 0 degenerates to Uniform weights.
	Zipf
)

var policyNames = [...]string{"uniform", "hash", "zipf"}

func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy resolves a routing-policy name ("" = uniform).
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "uniform":
		return Uniform, nil
	case "hash":
		return Hash, nil
	case "zipf":
		return Zipf, nil
	default:
		return Uniform, fmt.Errorf("array: unknown routing policy %q (want uniform|hash|zipf)", s)
	}
}

// Router deterministically assigns a request stream to volumes. Every
// volume of an array constructs its own Router from the same (seed, n,
// policy, skew) — the stochastic policies draw one value per request from
// a dedicated "array:router" RNG stream, so sibling routers over copies
// of the same stream make identical decisions in lockstep, while leaving
// every other stream of the run untouched.
type Router struct {
	n      int
	policy Policy
	rng    *sim.RNG
	cdf    []float64 // Zipf volume-popularity CDF
}

// NewRouter builds a router over n volumes. skew is the Zipf exponent of
// the volume-popularity distribution (Zipf policy only; 0 = uniform
// weights).
func NewRouter(seed int64, n int, policy Policy, skew float64) *Router {
	if n < 1 {
		n = 1
	}
	r := &Router{n: n, policy: policy}
	switch policy {
	case Uniform, Zipf:
		r.rng = sim.NewRNG(seed, "array:router")
	}
	if policy == Zipf {
		r.cdf = make([]float64, n)
		sum := 0.0
		for v := 0; v < n; v++ {
			sum += 1 / math.Pow(float64(v+1), skew)
			r.cdf[v] = sum
		}
		for v := range r.cdf {
			r.cdf[v] /= sum
		}
	}
	return r
}

// Volumes returns the array width.
func (r *Router) Volumes() int { return r.n }

// Route assigns one request to a volume. For the stochastic policies this
// consumes exactly one RNG draw per call, whatever the outcome — the
// lockstep contract sibling routers rely on.
func (r *Router) Route(req workload.Request) int {
	if r.n == 1 {
		// Still consume the draw: a 1-volume router must stay in lockstep
		// with nothing, but skipping the draw would make Route's RNG
		// consumption depend on n, complicating reasoning for no gain.
		switch r.policy {
		case Uniform:
			r.rng.Intn(1)
		case Zipf:
			r.rng.Float64()
		}
		return 0
	}
	switch r.policy {
	case Hash:
		// Requests are assigned by their starting 4 KiB block — the same
		// granularity the generators build LBAs from, so RouteBlock on a
		// HotBlocks block number and on a request agree.
		return r.RouteBlock(req.Extent.LBA / workload.BlockSectors)
	case Zipf:
		u := r.rng.Float64()
		lo, hi := 0, r.n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if r.cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	default:
		return r.rng.Intn(r.n)
	}
}

// Clone deep-copies the router mid-stream: the copy's RNG resumes at the
// original's exact draw position, so the clone keeps making the same
// decisions the original would have — the property an array fork needs to
// stay byte-identical to a from-scratch run. The Zipf CDF is immutable
// after construction and is shared.
func (r *Router) Clone() *Router {
	r2 := *r
	if r.rng != nil {
		r2.rng = r.rng.Clone()
	}
	return &r2
}

// RouteBlock is the Hash policy's pure routing function on a 4 KiB block
// number — exposed so affine prewarm filtering can ask "could this block
// ever be routed here?" without synthesizing a request.
func (r *Router) RouteBlock(block int64) int {
	// SplitMix64-style finalizer: adjacent blocks land on unrelated
	// volumes, so striding workloads still spread.
	x := uint64(block) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(r.n))
}

// VolumeGen wraps a bit-identical copy of the array's base workload
// stream so volume vol sees exactly its routed sub-stream, in arrival
// order. rt must be vol's own Router instance (routers are stateful).
// Under the Hash policy the prewarm set is filtered to blocks that can
// route here, overfetched by the array width so the volume still fills
// its quota.
//
// The returned generator implements workload.CloneableGenerator whenever
// the base stream does: cloning copies the base stream and the router at
// their exact mid-stream positions, so engine.Stack.Fork can deep-copy a
// statically routed volume and the fork replays the identical sub-stream.
func VolumeGen(gen workload.Generator, rt *Router, vol int) workload.Generator {
	return newVolumeGen(gen, rt, vol)
}

// volumeGen is VolumeGen's concrete type: a Filter over the base stream
// whose predicate closes over a private router copy, plus the handles
// (base generator, router, volume index) CloneGenerator needs to rebuild
// the same wiring around cloned state.
type volumeGen struct {
	inner workload.Generator
	rt    *Router
	vol   int
	f     *workload.Filter
}

func newVolumeGen(gen workload.Generator, rt *Router, vol int) *volumeGen {
	f := workload.NewFilter(gen, func(req workload.Request) bool {
		return rt.Route(req) == vol
	})
	if rt.policy == Hash {
		f.WithHotFilter(func(block int64) bool { return rt.RouteBlock(block) == vol }, rt.n)
	}
	return &volumeGen{inner: gen, rt: rt, vol: vol, f: f}
}

// Name implements workload.Generator.
func (g *volumeGen) Name() string { return g.f.Name() }

// Next implements workload.Generator.
func (g *volumeGen) Next() (workload.Request, bool) { return g.f.Next() }

// HotBlocks forwards the filtered prewarm set.
func (g *volumeGen) HotBlocks(n int) []int64 { return g.f.HotBlocks(n) }

// CloneGenerator implements workload.CloneableGenerator when the base
// stream does (nil otherwise, the interface's "cannot fork" signal).
func (g *volumeGen) CloneGenerator() workload.Generator {
	cg, ok := g.inner.(workload.CloneableGenerator)
	if !ok {
		return nil
	}
	inner2 := cg.CloneGenerator()
	if inner2 == nil {
		return nil
	}
	return newVolumeGen(inner2, g.rt.Clone(), g.vol)
}
