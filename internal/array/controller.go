package array

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"lbica/internal/engine"
	"lbica/internal/runner"
	"lbica/internal/sim"
	"lbica/internal/workload"
)

// Variant selects the array controller's adaptive routing mechanism.
type Variant uint8

// Routing variants of the array-lb controller.
const (
	// Weighted recomputes a volume-popularity distribution every monitor
	// interval from measured per-volume load — KnapsackLB-style inverse-
	// load weighting, smoothed by an EMA and floored so no volume starves.
	Weighted Variant = iota
	// PowerOfTwo draws two candidate volumes per request and routes to the
	// one with the lower load estimate (measured interval load, scaled by
	// how many requests this interval already routed there).
	PowerOfTwo
)

var variantNames = [...]string{"weighted", "p2c"}

func (v Variant) String() string {
	if int(v) < len(variantNames) {
		return variantNames[v]
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// ParseVariant resolves an adaptive-routing variant name ("" = weighted).
func ParseVariant(s string) (Variant, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "weighted":
		return Weighted, nil
	case "p2c", "power-of-two":
		return PowerOfTwo, nil
	default:
		return Weighted, fmt.Errorf("array: unknown route variant %q (want weighted|p2c)", s)
	}
}

// ControllerConfig describes an array-lb run: the array shape plus the
// controller's adaptation knobs. The zero value of every knob means "use
// the default" (see the field comments), so callers only set what they
// sweep.
type ControllerConfig struct {
	// Volumes is the array width (≥ 1).
	Volumes int
	// Skew is the Zipf exponent of the *initial* routing weights — the
	// controller starts from the same skewed draw static Zipf routing
	// would use (0 = uniform start) and adapts from the first measured
	// interval on. This keeps the hot-shard regime comparable: array-lb
	// at skew 1.2 faces the same interval-0 imbalance static routing does.
	Skew float64
	// Seed derives the controller's router RNG (stream "array:router",
	// the same stream static routing draws from).
	Seed int64
	// Variant selects the adaptation mechanism (default Weighted).
	Variant Variant
	// TopK caps how many hot blocks migrate per decision (default 32;
	// NoMigration disables migration entirely).
	TopK int
	// Smoothing is the EMA coefficient applied to per-volume load
	// estimates in (0, 1]; higher reacts faster (default 0.5).
	Smoothing float64
	// MinShare floors every volume's routing weight at MinShare/Volumes,
	// in [0, 1), so adaptation never starves a volume of traffic — a
	// starved volume measures zero load and could otherwise never
	// rejoin (default 0.25). Zero is a legal value per Validate — a
	// controller with no floor — but the field's zero value must keep
	// meaning "use the default", so an explicit zero floor is spelled
	// NoMinShare.
	MinShare float64
	// MigrateRatio is the migration trigger: hot blocks move only while
	// the bottleneck volume's load estimate exceeds MigrateRatio × the
	// coldest volume's (> 1; default 1.25).
	MigrateRatio float64
	// MaxPins caps the routing pin table the migrations accumulate
	// (default 4096). At the cap, migration stops; routing adaptation
	// continues.
	MaxPins int
	// Workers caps the shard pool (≤0 = GOMAXPROCS; 1 = the serial
	// baseline the determinism test compares against).
	Workers int
}

// Explicit-zero spellings for knobs whose zero value means "use the
// default": the config's zero value must stay the paper configuration, so
// a knob whose zero is itself meaningful needs a distinct way to say so.
// withDefaults resolves each sentinel to the zero it stands for before
// Validate ever sees it.
const (
	// NoMinShare requests MinShare = 0: no routing-weight floor, so
	// adaptation may starve a volume entirely.
	NoMinShare = -1
	// NoMigration requests TopK = 0: adaptive routing without hot-block
	// migration.
	NoMigration = -1
)

// withDefaults fills zero knobs with the controller defaults and resolves
// the explicit-zero sentinels (NoMinShare, NoMigration).
func (c ControllerConfig) withDefaults() ControllerConfig {
	switch c.TopK {
	case 0:
		c.TopK = 32
	case NoMigration:
		c.TopK = 0
	}
	if c.Smoothing == 0 {
		c.Smoothing = 0.5
	}
	switch c.MinShare {
	case 0:
		c.MinShare = 0.25
	case NoMinShare:
		c.MinShare = 0
	}
	if c.MigrateRatio == 0 {
		c.MigrateRatio = 1.25
	}
	if c.MaxPins == 0 {
		c.MaxPins = 4096
	}
	return c
}

// Validate reports the first invalid field (after defaulting).
func (c ControllerConfig) Validate() error {
	if c.Volumes < 1 || c.Volumes > MaxVolumes {
		return fmt.Errorf("array: volume count %d outside [1, %d]", c.Volumes, MaxVolumes)
	}
	if !(c.Skew >= 0 && c.Skew <= MaxSkew) {
		return fmt.Errorf("array: route skew %v outside [0, %v]", c.Skew, MaxSkew)
	}
	if c.TopK < 0 {
		return fmt.Errorf("array: controller top-K %d negative", c.TopK)
	}
	if !(c.Smoothing > 0 && c.Smoothing <= 1) {
		return fmt.Errorf("array: controller smoothing %v outside (0, 1]", c.Smoothing)
	}
	if !(c.MinShare >= 0 && c.MinShare < 1) {
		return fmt.Errorf("array: controller min share %v outside [0, 1)", c.MinShare)
	}
	if c.MigrateRatio <= 1 {
		return fmt.Errorf("array: controller migrate ratio %v must exceed 1", c.MigrateRatio)
	}
	if c.MaxPins < 0 {
		return fmt.Errorf("array: controller pin cap %d negative", c.MaxPins)
	}
	return nil
}

// adaptiveRouter is the controller-owned router: unlike the static
// Router, exactly one instance exists per run (the controller routes the
// base stream itself and feeds each volume its slice), so it carries
// mutable state — weights, load estimates, migration pins — with no
// lockstep-across-copies contract to honor.
type adaptiveRouter struct {
	n       int
	variant Variant
	rng     *sim.RNG

	weights []float64 // Weighted: normalized volume shares
	cdf     []float64 // Weighted: cumulative weights for the draw
	est     []float64 // EMA load estimate per volume (µs-scale floats)
	primed  bool      // est holds at least one observation
	routed  []uint64  // PowerOfTwo: requests routed this interval

	pins map[int64]int // block → volume, set by hot-block migration
}

func newAdaptiveRouter(cfg ControllerConfig) *adaptiveRouter {
	rt := &adaptiveRouter{
		n:       cfg.Volumes,
		variant: cfg.Variant,
		rng:     sim.NewRNG(cfg.Seed, "array:router"),
		weights: make([]float64, cfg.Volumes),
		cdf:     make([]float64, cfg.Volumes),
		est:     make([]float64, cfg.Volumes),
		routed:  make([]uint64, cfg.Volumes),
		pins:    make(map[int64]int),
	}
	// Start from the static Zipf draw's distribution (uniform at skew 0):
	// interval 0 has no measurements, and matching the static router's
	// starting point makes before/after comparisons read cleanly.
	sum := 0.0
	for v := 0; v < rt.n; v++ {
		rt.weights[v] = 1 / math.Pow(float64(v+1), cfg.Skew)
		sum += rt.weights[v]
	}
	for v := range rt.weights {
		rt.weights[v] /= sum
	}
	rt.rebuildCDF()
	return rt
}

func (rt *adaptiveRouter) rebuildCDF() {
	sum := 0.0
	for v, w := range rt.weights {
		sum += w
		rt.cdf[v] = sum
	}
	for v := range rt.cdf {
		rt.cdf[v] /= sum
	}
}

// route assigns one request: pinned blocks go to their pin (no RNG
// consumed), everything else through the variant's draw.
func (rt *adaptiveRouter) route(req workload.Request) int {
	if len(rt.pins) > 0 {
		if v, ok := rt.pins[req.Extent.LBA/workload.BlockSectors]; ok {
			rt.routed[v]++
			return v
		}
	}
	var v int
	switch rt.variant {
	case PowerOfTwo:
		a := rt.rng.Intn(rt.n)
		b := rt.rng.Intn(rt.n)
		v = a
		// Least loaded of the two: measured estimate scaled by this
		// interval's routed count (+1 so a zero estimate still orders);
		// ties go to the lower index.
		sa := (rt.est[a] + 1) * float64(rt.routed[a]+1)
		sb := (rt.est[b] + 1) * float64(rt.routed[b]+1)
		if sb < sa || (sb == sa && b < a) {
			v = b
		}
	default: // Weighted
		u := rt.rng.Float64()
		lo, hi := 0, rt.n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if rt.cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		v = lo
	}
	rt.routed[v]++
	return v
}

// observe folds one interval's measured per-volume loads into the EMA
// estimates and, for the Weighted variant, recomputes the routing weights
// as floored, normalized inverse loads.
func (rt *adaptiveRouter) observe(loads []float64, smoothing, minShare float64) {
	for v := range rt.est {
		if !rt.primed {
			rt.est[v] = loads[v]
		} else {
			rt.est[v] = (1-smoothing)*rt.est[v] + smoothing*loads[v]
		}
	}
	rt.primed = true
	for v := range rt.routed {
		rt.routed[v] = 0
	}
	if rt.variant != Weighted {
		return
	}
	// Inverse-load weights. The epsilon keeps an idle volume finite; the
	// floor keeps a slow volume from starving out of the measurement loop.
	const eps = 1.0
	sum := 0.0
	for v := range rt.weights {
		rt.weights[v] = 1 / (rt.est[v] + eps)
		sum += rt.weights[v]
	}
	for v := range rt.weights {
		rt.weights[v] /= sum
	}
	// Clamp to the floor exactly: floored volumes keep floor after the
	// final normalization, so the remaining mass is redistributed over the
	// unfloored weights only (iterating in case the scale-down pushes a
	// previously safe weight under the floor). MinShare < 1 guarantees
	// n·floor < 1, so the unfloored mass never goes negative.
	floor := minShare / float64(rt.n)
	for {
		above, nBelow := 0.0, 0
		for _, w := range rt.weights {
			if w <= floor {
				nBelow++
			} else {
				above += w
			}
		}
		if nBelow == 0 || above == 0 {
			break
		}
		scale := (1 - float64(nBelow)*floor) / above
		again := false
		for v, w := range rt.weights {
			if w <= floor {
				rt.weights[v] = floor
			} else {
				rt.weights[v] = w * scale
				if rt.weights[v] < floor {
					again = true
				}
			}
		}
		if !again {
			break
		}
	}
	rt.rebuildCDF()
}

// clone deep-copies the router mid-run: the RNG resumes at the exact draw
// position, every weight/estimate slice is copied, and the pin table is
// rebuilt — afterwards the copy and the original share no mutable state,
// so a forked controller adapts independently yet identically to a
// from-scratch run that saw the same history.
func (rt *adaptiveRouter) clone() *adaptiveRouter {
	rt2 := &adaptiveRouter{
		n:       rt.n,
		variant: rt.variant,
		rng:     rt.rng.Clone(),
		weights: append([]float64(nil), rt.weights...),
		cdf:     append([]float64(nil), rt.cdf...),
		est:     append([]float64(nil), rt.est...),
		primed:  rt.primed,
		routed:  append([]uint64(nil), rt.routed...),
		pins:    make(map[int64]int, len(rt.pins)),
	}
	for b, v := range rt.pins {
		rt2.pins[b] = v
	}
	return rt2
}

// feedGen is the refillable per-volume generator under a controlled run:
// the controller routes each interval's slice of the base stream into the
// owning volume's feed before stepping it. It implements HotBlocks by
// delegating to the base generator, so every volume prewarms the same
// hottest set — exactly what static uniform/zipf routing prewarms, since
// under both any block may be routed anywhere.
type feedGen struct {
	name string
	hot  interface{ HotBlocks(int) []int64 }
	reqs []workload.Request
	pos  int
}

func (f *feedGen) Name() string { return f.name }

func (f *feedGen) Next() (workload.Request, bool) {
	if f.pos >= len(f.reqs) {
		return workload.Request{}, false
	}
	r := f.reqs[f.pos]
	f.pos++
	return r, true
}

func (f *feedGen) HotBlocks(n int) []int64 {
	if f.hot == nil {
		return nil
	}
	return f.hot.HotBlocks(n)
}

// CloneGenerator implements workload.CloneableGenerator so
// engine.Stack.Fork can deep-copy a controlled volume: the unconsumed
// queue is copied, the consumed prefix dropped (Next never revisits it).
// The prewarm delegate is shared — it is only read, and only before the
// run starts; Controlled.Fork re-points it at the forked base stream.
func (f *feedGen) CloneGenerator() workload.Generator {
	return &feedGen{
		name: f.name,
		hot:  f.hot,
		reqs: append([]workload.Request(nil), f.reqs[f.pos:]...),
	}
}

func (f *feedGen) push(r workload.Request) {
	if f.pos == len(f.reqs) {
		// The volume consumed everything queued so far; recycle the slice
		// so a long run doesn't retain the whole routed stream.
		f.reqs = f.reqs[:0]
		f.pos = 0
	}
	f.reqs = append(f.reqs, r)
}

// hotCount ranks a volume's blocks by interval arrival count for the
// migration pick (count descending, block ascending — a total order, so
// the pick is deterministic).
type hotCount struct {
	block int64
	count uint64
}

// Controlled is a resumable array-lb run: cfg.Volumes stacks advancing in
// lockstep, one monitor interval per round, with the controller routing
// the base stream and re-deciding weights and migrations at every
// interval barrier. NewControlled builds it, StepTo advances it round by
// round, Finish runs the remainder and collects; RunControlled is the
// one-shot composition. Between StepTo calls the whole array is parked at
// an interval barrier — the quiescent point Fork deep-copies.
//
// Determinism contract: the controller routes requests and makes every
// decision serially, between rounds, from state the barrier freezes —
// each volume's closed interval Sample and the controller's own arrival
// counts. Within a round the pool workers touch only their own volume's
// stack, and runner.Map's completion wait orders every volume's round-N
// writes before the controller's round-N reads (and the controller's
// writes before every round-N+1 read). Merged output is therefore
// byte-identical for every Workers value, including Workers == 1.
type Controlled struct {
	cfg          ControllerConfig // defaulted + validated
	intervals    int
	monitorEvery time.Duration

	base   workload.Generator
	rt     *adaptiveRouter
	feeds  []*feedGen
	stacks []*engine.Stack

	// Per-volume, per-interval arrival counts by 4 KiB block — the
	// controller's hotness signal for the migration pick.
	counts []map[int64]uint64

	// One-request lookahead over the base stream: route everything that
	// arrives strictly before the deadline (a request at exactly the
	// boundary belongs to the next interval, after the controller acted).
	pending    workload.Request
	hasPending bool

	next   int // 1-based index of the next interval round to execute
	loads  []float64
	runErr error // sticky: first cancellation or pool error
}

// NewControlled assembles a controlled array run and starts its volume
// stacks. build(vol, gen) must assemble volume vol's stack over gen — the
// controller's per-volume feed — with MonitorEvery equal to monitorEvery.
func NewControlled(ctx context.Context, cfg ControllerConfig, intervals int, monitorEvery time.Duration, base workload.Generator,
	build func(vol int, gen workload.Generator) (*engine.Stack, error)) (*Controlled, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if intervals < 1 {
		intervals = 1
	}
	if monitorEvery <= 0 {
		monitorEvery = 200 * time.Millisecond
	}
	n := cfg.Volumes

	c := &Controlled{
		cfg:          cfg,
		intervals:    intervals,
		monitorEvery: monitorEvery,
		base:         base,
		rt:           newAdaptiveRouter(cfg),
		feeds:        make([]*feedGen, n),
		stacks:       make([]*engine.Stack, n),
		counts:       make([]map[int64]uint64, n),
		next:         1,
		loads:        make([]float64, n),
	}
	hot, _ := base.(interface{ HotBlocks(int) []int64 })
	for v := 0; v < n; v++ {
		c.feeds[v] = &feedGen{name: base.Name(), hot: hot}
		st, err := build(v, c.feeds[v])
		if err != nil {
			return nil, fmt.Errorf("array: building volume %d: %w", v, err)
		}
		c.stacks[v] = st
		st.Start(ctx, intervals)
	}
	for v := range c.counts {
		c.counts[v] = make(map[int64]uint64)
	}
	c.pending, c.hasPending = base.Next()
	return c, nil
}

// routeBefore routes every base-stream request arriving strictly before
// deadline into its volume's feed (deadline < 0 routes the remainder).
func (c *Controlled) routeBefore(deadline time.Duration) {
	for c.hasPending && (deadline < 0 || c.pending.At < deadline) {
		v := c.rt.route(c.pending)
		c.feeds[v].push(c.pending)
		c.counts[v][c.pending.Extent.LBA/workload.BlockSectors]++
		c.pending, c.hasPending = c.base.Next()
	}
}

// StepTo executes interval rounds up to and including interval (clamped
// to the run length), leaving every volume parked at the interval barrier
// with the controller's decisions for that barrier applied. Errors are
// sticky: once a round fails (cancellation is the only source), further
// StepTo calls return the same error without advancing.
func (c *Controlled) StepTo(ctx context.Context, interval int) error {
	if c.runErr == nil {
		c.runErr = ctx.Err()
	}
	if interval > c.intervals {
		interval = c.intervals
	}
	for ; c.next <= interval && c.runErr == nil; c.next++ {
		deadline := time.Duration(c.next) * c.monitorEvery
		c.routeBefore(deadline)
		_, err := runner.Map(ctx, len(c.stacks), runner.Options{Workers: c.cfg.Workers},
			func(_ context.Context, v int) (struct{}, error) {
				c.stacks[v].ResumeArrivals()
				c.stacks[v].StepTo(deadline)
				return struct{}{}, nil
			})
		if err != nil {
			c.runErr = err
			break
		}
		// Barrier: every volume is parked at deadline with the previous
		// interval's sample closed. Read the census, adapt, migrate —
		// serially.
		for v, st := range c.stacks {
			c.loads[v] = 0
			if s := st.Monitor().Samples(); len(s) > 0 {
				last := s[len(s)-1]
				c.loads[v] = float64(last.CacheLoad+last.DiskLoad) / float64(time.Microsecond)
			}
		}
		c.rt.observe(c.loads, c.cfg.Smoothing, c.cfg.MinShare)
		migrateHot(c.rt, c.stacks, c.counts, c.cfg)
		for v := range c.counts {
			clear(c.counts[v])
		}
	}
	return c.runErr
}

// Fork deep-copies the whole controlled array at its current interval
// barrier: the base stream and the adaptive router (weights, estimates,
// RNG position, pin table) are cloned, and every volume stack is forked
// through engine.Stack.Fork — per-volume balancer state included. The
// fork and the original share no mutable state; finishing the fork yields
// results byte-identical to a from-scratch run of the same length.
//
// The base generator must implement workload.CloneableGenerator; Fork
// fails otherwise, or when any volume's stack cannot fork.
func (c *Controlled) Fork(ctx context.Context) (*Controlled, error) {
	if c.runErr != nil {
		return nil, c.runErr
	}
	cg, ok := c.base.(workload.CloneableGenerator)
	if !ok {
		return nil, fmt.Errorf("array: base generator %q is not cloneable", c.base.Name())
	}
	base2 := cg.CloneGenerator()
	if base2 == nil {
		return nil, fmt.Errorf("array: base generator %q failed to clone", c.base.Name())
	}
	c2 := &Controlled{
		cfg:          c.cfg,
		intervals:    c.intervals,
		monitorEvery: c.monitorEvery,
		base:         base2,
		rt:           c.rt.clone(),
		feeds:        make([]*feedGen, len(c.feeds)),
		stacks:       make([]*engine.Stack, len(c.stacks)),
		counts:       make([]map[int64]uint64, len(c.counts)),
		pending:      c.pending,
		hasPending:   c.hasPending,
		next:         c.next,
		loads:        append([]float64(nil), c.loads...),
	}
	hot, _ := base2.(interface{ HotBlocks(int) []int64 })
	for v, st := range c.stacks {
		f, err := st.Fork(ctx, nil)
		if err != nil {
			return nil, fmt.Errorf("array: forking volume %d: %w", v, err)
		}
		fg, ok := f.Generator().(*feedGen)
		if !ok {
			return nil, fmt.Errorf("array: forked volume %d generator is %T, want controller feed", v, f.Generator())
		}
		// Re-point the cloned feed's prewarm delegate at the forked base
		// stream so the fork holds no reference into the original's.
		fg.hot = hot
		c2.stacks[v] = f
		c2.feeds[v] = fg
	}
	for v, m := range c.counts {
		m2 := make(map[int64]uint64, len(m))
		for b, n := range m {
			m2[b] = n
		}
		c2.counts[v] = m2
	}
	return c2, nil
}

// Finish runs the remaining interval rounds, streams and drains the
// remainder past the last interval (it lands in no sample but still
// executes, matching RunContext), and collects the merged results. The
// per-volume results land in Results.PerVolume exactly as for Run; on
// cancellation only whole volumes are kept.
func (c *Controlled) Finish(ctx context.Context) (*Results, error) {
	c.StepTo(ctx, c.intervals)
	runErr := c.runErr
	if runErr == nil {
		c.routeBefore(-1)
		_, runErr = runner.Map(ctx, len(c.stacks), runner.Options{Workers: c.cfg.Workers},
			func(_ context.Context, v int) (struct{}, error) {
				c.stacks[v].ResumeArrivals()
				c.stacks[v].Drain()
				return struct{}{}, nil
			})
	} else {
		// Cancelled: drain in-flight work only — the stacks' halted event
		// chains stop on their own.
		for _, st := range c.stacks {
			st.Drain()
		}
	}

	per := make([]*engine.Results, len(c.stacks))
	for v, st := range c.stacks {
		res := st.Collect()
		res.Volume = v
		// Same partial rule as Run: a cancellation that still let the
		// volume close every interval changed nothing; volumes stopped
		// short are dropped.
		if runErr != nil && len(res.Samples) < c.intervals {
			continue
		}
		per[v] = res
	}
	return &Results{Volumes: len(c.stacks), Merged: Merge(per), PerVolume: per}, runErr
}

// RunControlled executes an array-lb run start to finish — NewControlled
// composed with Finish. See Controlled for the determinism contract.
func RunControlled(ctx context.Context, cfg ControllerConfig, intervals int, monitorEvery time.Duration, base workload.Generator,
	build func(vol int, gen workload.Generator) (*engine.Stack, error)) (*Results, error) {
	c, err := NewControlled(ctx, cfg, intervals, monitorEvery, base, build)
	if err != nil {
		return nil, err
	}
	return c.Finish(ctx)
}

// migrateHot moves the bottleneck volume's hottest unpinned blocks to the
// coldest volume while the imbalance exceeds the trigger ratio, pinning
// each moved block's routing to its new home (the DistCache shape: keep
// independent per-volume balancing, flatten the fleet with a small
// migrated hot set). Only clean resident lines move; the migration is
// metadata-only, like prewarming — the clean line's bytes already exist
// on the backing store, so no simulated transfer is issued.
func migrateHot(rt *adaptiveRouter, stacks []*engine.Stack, counts []map[int64]uint64, cfg ControllerConfig) {
	if cfg.TopK == 0 || len(stacks) < 2 || len(rt.pins) >= cfg.MaxPins {
		return
	}
	hotV, coldV := 0, 0
	for v := 1; v < len(rt.est); v++ {
		if rt.est[v] > rt.est[hotV] {
			hotV = v
		}
		if rt.est[v] < rt.est[coldV] {
			coldV = v
		}
	}
	if hotV == coldV || rt.est[hotV] <= cfg.MigrateRatio*rt.est[coldV] {
		return
	}
	ranked := make([]hotCount, 0, len(counts[hotV]))
	for b, c := range counts[hotV] {
		if _, pinned := rt.pins[b]; pinned {
			continue
		}
		ranked = append(ranked, hotCount{block: b, count: c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].count != ranked[j].count {
			return ranked[i].count > ranked[j].count
		}
		return ranked[i].block < ranked[j].block
	})
	moved := 0
	for _, hc := range ranked {
		if moved >= cfg.TopK || len(rt.pins) >= cfg.MaxPins {
			break
		}
		if !stacks[hotV].MigrateOut(hc.block) {
			continue // not resident clean on the bottleneck; skip
		}
		stacks[coldV].MigrateIn(hc.block)
		rt.pins[hc.block] = coldV
		moved++
	}
}
