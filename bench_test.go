// Benchmarks regenerating every figure of the paper's evaluation section
// plus ablations of LBICA's design choices. Run with:
//
//	go test -bench=. -benchmem
//
// Each Fig* benchmark executes the full simulation behind one paper figure
// and reports the figure's headline quantities via b.ReportMetric, so a
// bench run reproduces the numbers EXPERIMENTS.md records.
package lbica_test

import (
	"context"
	"testing"
	"time"

	"lbica/internal/block"
	"lbica/internal/cache"
	"lbica/internal/core"
	"lbica/internal/engine"
	"lbica/internal/experiments"
	"lbica/internal/iostat"
)

// runSchemes executes one workload under the three schemes through the
// runner with a single worker: ns/op stays comparable to pre-pool
// baselines and independent of core count (BenchmarkMatrixParallel is
// the dedicated parallel measurement).
func runSchemes(b *testing.B, wl string) map[string]*engine.Results {
	specs := make([]experiments.Spec, len(experiments.Schemes))
	for i, sc := range experiments.Schemes {
		specs[i] = experiments.Spec{Workload: wl, Scheme: sc, Seed: 1}
	}
	m, err := experiments.RunSpecs(context.Background(), specs, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	return m[wl]
}

// fig4 runs one workload under the three schemes and reports the mean
// per-interval I/O cache load (µs) for each — one sub-figure of Fig. 4.
func benchFig4(b *testing.B, wl string) {
	for i := 0; i < b.N; i++ {
		row := runSchemes(b, wl)
		for _, sc := range experiments.Schemes {
			b.ReportMetric(row[sc].CacheLoadMean()/1e3, "us-cache-load/"+sc)
		}
	}
}

func BenchmarkFig4CacheLoad_TPCC(b *testing.B) { benchFig4(b, experiments.WorkloadTPCC) }
func BenchmarkFig4CacheLoad_Mail(b *testing.B) { benchFig4(b, experiments.WorkloadMail) }
func BenchmarkFig4CacheLoad_Web(b *testing.B)  { benchFig4(b, experiments.WorkloadWeb) }

// fig5 reports the mean disk-subsystem load per scheme — Fig. 5.
func benchFig5(b *testing.B, wl string) {
	for i := 0; i < b.N; i++ {
		row := runSchemes(b, wl)
		for _, sc := range experiments.Schemes {
			b.ReportMetric(row[sc].DiskLoadMean()/1e3, "us-disk-load/"+sc)
		}
	}
}

func BenchmarkFig5DiskLoad_TPCC(b *testing.B) { benchFig5(b, experiments.WorkloadTPCC) }
func BenchmarkFig5DiskLoad_Mail(b *testing.B) { benchFig5(b, experiments.WorkloadMail) }
func BenchmarkFig5DiskLoad_Web(b *testing.B)  { benchFig5(b, experiments.WorkloadWeb) }

// fig6 runs LBICA alone and reports its decision activity: burst
// intervals, policy switches, and the interval of the first decision —
// the annotations of Fig. 6.
func benchFig6(b *testing.B, wl string) {
	for i := 0; i < b.N; i++ {
		res := experiments.Run(experiments.Spec{Workload: wl, Scheme: experiments.SchemeLBICA, Seed: 1})
		bursts := 0
		for _, s := range res.Samples {
			if s.Bottleneck {
				bursts++
			}
		}
		b.ReportMetric(float64(bursts), "burst-intervals")
		b.ReportMetric(float64(len(res.Timeline)), "policy-decisions")
		if len(res.Timeline) > 0 {
			b.ReportMetric(float64(res.Timeline[0].Interval), "first-decision-interval")
		}
	}
}

func BenchmarkFig6PolicyTimeline_TPCC(b *testing.B) { benchFig6(b, experiments.WorkloadTPCC) }
func BenchmarkFig6PolicyTimeline_Mail(b *testing.B) { benchFig6(b, experiments.WorkloadMail) }
func BenchmarkFig6PolicyTimeline_Web(b *testing.B)  { benchFig6(b, experiments.WorkloadWeb) }

// BenchmarkFig7AvgLatency reports the average end-to-end latency (µs) per
// workload per scheme — the nine bars of Fig. 7.
func BenchmarkFig7AvgLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := experiments.RunMatrix(1, 1)
		for _, row := range experiments.Fig7(m) {
			for _, sc := range experiments.Schemes {
				b.ReportMetric(row.AvgUS[sc], "us-avg-latency/"+row.Workload+"/"+sc)
			}
		}
	}
}

// BenchmarkHeadlineClaims reports the paper's headline aggregates: cache-
// load reduction and latency improvement of LBICA versus both baselines
// (paper: 48% load reduction on average, up to 70%; 14%/7% latency
// improvement vs WB/SIB).
func BenchmarkHeadlineClaims(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.ComputeHeadlines(experiments.RunMatrix(1, 1))
		b.ReportMetric(h.AvgCacheLoadReductionVsWB, "pct-load-reduction-vs-WB")
		b.ReportMetric(h.MaxCacheLoadReductionVsWB, "pct-load-reduction-vs-WB-max")
		b.ReportMetric(h.AvgCacheLoadReductionVsSIB, "pct-load-reduction-vs-SIB")
		b.ReportMetric(h.AvgLatencyImprovementVsWB, "pct-latency-improvement-vs-WB")
		b.ReportMetric(h.AvgLatencyImprovementVsSIB, "pct-latency-improvement-vs-SIB")
	}
}

// runLBICAVariant executes the mail workload (the richest decision
// timeline) under a modified LBICA configuration.
func runLBICAVariant(cfg core.Config) *engine.Results {
	spec := experiments.Spec{Workload: experiments.WorkloadMail, Scheme: experiments.SchemeLBICA, Seed: 1}.Normalize()
	ecfg := engine.DefaultConfig()
	ecfg.MonitorEvery = spec.Interval
	st := engine.New(ecfg, experiments.NewGenerator(spec), core.New(cfg))
	return st.Run(spec.Intervals)
}

// Ablations: disable one LBICA mechanism at a time and report the same
// metrics, quantifying what each design choice contributes (DESIGN.md §5).

// BenchmarkAblationFull is the reference point: LBICA as shipped.
func BenchmarkAblationFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runLBICAVariant(core.DefaultConfig())
		reportAblation(b, res)
	}
}

// reportAblation emits the shared ablation metric set.
func reportAblation(b *testing.B, res *engine.Results) {
	b.ReportMetric(res.CacheLoadMean()/1e3, "us-cache-load")
	b.ReportMetric(float64(res.AppLatency.Mean())/1e3, "us-avg-latency")
	b.ReportMetric(float64(res.AppLatency.Quantile(0.99))/1e3, "us-p99-latency")
}

// BenchmarkAblationNoTailBypass removes the Group-3 queue-tail
// redirection: write bursts must ride out the full SSD queue.
func BenchmarkAblationNoTailBypass(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.TailBypass = false
	for i := 0; i < b.N; i++ {
		res := runLBICAVariant(cfg)
		reportAblation(b, res)
	}
}

// BenchmarkAblationNoRecharacterize freezes the first classification for
// the whole burst: the policy cannot follow the mail server's phase
// changes (RO → WO → WB in the paper's timeline).
func BenchmarkAblationNoRecharacterize(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Recharacterize = false
	for i := 0; i < b.N; i++ {
		res := runLBICAVariant(cfg)
		reportAblation(b, res)
	}
}

// BenchmarkAblationNoHold removes the demand-based hold, re-exposing the
// oscillation the hold was designed against: relief drains the queue, the
// burst signal disappears, the policy reverts, the queue refills.
func BenchmarkAblationNoHold(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.HoldUtilization = 0
	for i := 0; i < b.N; i++ {
		res := runLBICAVariant(cfg)
		reportAblation(b, res)
		b.ReportMetric(float64(res.CacheStats.PolicySwitches), "policy-switches")
	}
}

// woOnBurst is the no-characterization ablation: any burst gets WO,
// regardless of the queue mix (what a one-size bypass heuristic would do).
type woOnBurst struct{ st *engine.Stack }

func (w *woOnBurst) Name() string { return "WO-on-burst" }
func (w *woOnBurst) Attach(st *engine.Stack) {
	w.st = st
	st.Monitor().OnClose(func(s iostat.Sample) {
		if s.Bottleneck {
			st.Cache().SetPolicy(cache.WO)
		} else {
			st.Cache().SetPolicy(cache.WB)
		}
	})
}
func (w *woOnBurst) Admit(block.Op, block.Extent) bool { return true }

// BenchmarkAblationNoCharacterization replaces the classifier with a
// fixed WO-on-burst rule. On the mail workload (whose bursts are mostly
// write-dominated) the wrong policy is chosen for most of the run.
func BenchmarkAblationNoCharacterization(b *testing.B) {
	spec := experiments.Spec{Workload: experiments.WorkloadMail, Scheme: experiments.SchemeLBICA, Seed: 1}.Normalize()
	for i := 0; i < b.N; i++ {
		ecfg := engine.DefaultConfig()
		ecfg.MonitorEvery = spec.Interval
		st := engine.New(ecfg, experiments.NewGenerator(spec), &woOnBurst{})
		res := st.Run(spec.Intervals)
		reportAblation(b, res)
	}
}

// BenchmarkAblationPeakDetector switches the Eq. 1 comparison from
// time-averaged depths to within-interval peaks: one transient disk-queue
// spike inside an interval can then mask a sustained SSD backlog.
func BenchmarkAblationPeakDetector(b *testing.B) {
	spec := experiments.Spec{Workload: experiments.WorkloadMail, Scheme: experiments.SchemeLBICA, Seed: 1}.Normalize()
	for i := 0; i < b.N; i++ {
		ecfg := engine.DefaultConfig()
		ecfg.MonitorEvery = spec.Interval
		ecfg.DetectOnPeak = true
		st := engine.New(ecfg, experiments.NewGenerator(spec), core.New(core.DefaultConfig()))
		res := st.Run(spec.Intervals)
		reportAblation(b, res)
		bursts := 0
		for _, s := range res.Samples {
			if s.Bottleneck {
				bursts++
			}
		}
		b.ReportMetric(float64(bursts), "burst-intervals")
	}
}

// BenchmarkEnduranceExtension measures the SSD write volume per scheme on
// the write-heavy mail workload — an extension experiment: the paper's
// related work motivates SSD-write reduction, and LBICA's RO/WO
// assignments deliver it as a side effect of load balancing.
func BenchmarkEnduranceExtension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row := runSchemes(b, experiments.WorkloadMail)
		for _, sc := range experiments.Schemes {
			b.ReportMetric(row[sc].SSDWrittenMiB(), "mib-ssd-writes/"+sc)
		}
	}
}

// benchMatrix measures the wall-clock of the full paper matrix at a given
// worker-pool size — the BENCH_runner.json speedup comparison. Workers=1
// is the serial baseline; workers=0 uses GOMAXPROCS.
func benchMatrix(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		m, err := experiments.RunMatrixContext(context.Background(), 1, 1, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(m) != len(experiments.Workloads) {
			b.Fatalf("matrix has %d workloads", len(m))
		}
	}
}

func BenchmarkMatrixSerial(b *testing.B)   { benchMatrix(b, 1) }
func BenchmarkMatrixParallel(b *testing.B) { benchMatrix(b, 0) }

// BenchmarkEngineThroughput measures raw simulation speed: virtual
// request completions per wall second on the TPC-C stack.
func BenchmarkEngineThroughput(b *testing.B) {
	var requests uint64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res := experiments.Run(experiments.Spec{
			Workload: experiments.WorkloadTPCC, Scheme: experiments.SchemeWB,
			Seed: 1, Intervals: 20,
		})
		requests += res.AppCompleted
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(requests)/elapsed, "sim-requests/s")
	}
}
