// Package lbica is a simulation-backed reproduction of "LBICA: A Load
// Balancer for I/O Cache Architectures" (Ahmadian, Salkhordeh, Asadi —
// DATE 2019).
//
// The library simulates an enterprise storage stack — an SSD I/O cache
// (EnhanceIO-style, set-associative, switchable write policies) in front of
// a disk subsystem — under burst-heavy workloads, and implements three
// load-management schemes on top of it:
//
//   - WB: the plain write-back cache baseline (no load balancing),
//   - SIB: Selective I/O Bypass (Kim et al., IEEE TC 2018), the prior
//     state of the art the paper compares against,
//   - LBICA: the paper's contribution — burst detection via queue-time
//     comparison, workload characterization from the R/W/P/E mix of the
//     SSD queue, and adaptive write-policy assignment.
//
// Run executes one workload under one scheme on a virtual clock (no real
// I/O, deterministic for a fixed seed) and returns per-interval statistics
// mirroring the paper's figures. The cmd/lbicabench tool and the
// benchmarks in this module regenerate every figure of the paper's
// evaluation.
//
// Quick start:
//
//	report, err := lbica.Run(lbica.Options{Workload: "tpcc", Scheme: "lbica"})
//	if err != nil { ... }
//	fmt.Println(report.Summary.AvgLatency)
//
// # Batch runs and the parallel runner
//
// RunAll executes a batch of independent simulations across a bounded
// worker pool (GOMAXPROCS goroutines by default) with progress reporting
// and context cancellation:
//
//	specs := lbica.MatrixSpecs(1) // the paper's 3 workloads × 3 schemes
//	reports, err := lbica.RunAll(ctx, specs, lbica.RunnerOptions{
//		OnProgress: func(done, total int) { log.Printf("%d/%d", done, total) },
//	})
//
// Determinism guarantee: runs share no mutable state — every stochastic
// component inside a run draws from its own (seed, component-name) stream,
// and RunnerOptions.Seed splits per-run seeds with sim.Stream(seed, i),
// a function of the spec index alone. RunAll's output is therefore
// byte-identical to running the same specs serially, for any worker
// count and any goroutine interleaving; reports[i] always corresponds to
// specs[i]. RunContext is the single-run variant with cancellation: a
// cancelled context stops the virtual clock at the next event boundary
// and returns the partial report.
//
// # Multi-volume arrays
//
// The paper evaluates one SSD-cache/disk stack; Options.Volumes scales
// that to a fleet. One run then hosts N volumes — each a full
// cache+SSD-queue+disk-subsystem stack with its own balancer instance —
// fed by a deterministic router that splits the workload stream across
// them (Options.RoutePolicy: "uniform", block-affine "hash", or "zipf"
// with Options.RouteSkew skewing volume popularity — the hot-shard
// regime). Volumes share no state, so the run shards volume-per-core
// (Options.ShardWorkers) and merges per-volume results
// order-independently: the report's top-level fields become the
// array-level view (loads show the bottleneck volume, latency quantiles
// cover every request) and Report.PerVolume carries each volume's own
// report:
//
//	report, _ := lbica.Run(lbica.Options{
//		Workload: "tpcc", Scheme: "lbica",
//		Volumes: 8, RouteSkew: 1.2, // 8 volumes, Zipf-hot routing
//	})
//	for v, vr := range report.PerVolume {
//		fmt.Printf("v%d: %v\n", v, vr.Summary.AvgLatency)
//	}
//
// Scheme "array-lb" adds an array-level controller on top of per-volume
// LBICA: at every monitor-interval boundary it reweights the router from
// measured per-volume load (Options.RouteVariant: inverse-load
// "weighted" or "p2c") and migrates the bottleneck volume's hottest
// clean cache lines to the coldest volume, pinning their routing — the
// flattening answer to the hot-shard regime static "zipf" routing sets
// up.
//
// The determinism guarantee extends to arrays: output is byte-identical
// for every ShardWorkers value, and Volumes: 1 (or unset) runs the exact
// single-stack pipeline of the paper harness. Options.Thresholds exposes
// LBICA's census-classifier calibration for sensitivity probes (zero
// fields inherit the paper defaults).
package lbica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"lbica/internal/array"
	"lbica/internal/cache"
	"lbica/internal/core"
	"lbica/internal/engine"
	"lbica/internal/experiments"
	"lbica/internal/ioqueue"
	"lbica/internal/sib"
	"lbica/internal/sim"
	"lbica/internal/trace"
	"lbica/internal/workload"
)

// Schemes accepted by Options.Scheme. The first three are the paper's
// comparison; the rest pin a static cache write policy with no balancer,
// which the policy-comparison example uses.
const (
	SchemeWB    = "wb"
	SchemeSIB   = "sib"
	SchemeLBICA = "lbica"
	// SchemeArrayLB layers an array-level controller over per-volume
	// LBICA: at every monitor-interval boundary it reweights the router
	// from measured per-volume load (Options.RouteVariant picks the
	// mechanism) and migrates the bottleneck volume's hottest cache lines
	// to the coldest volume, pinning their routing. Requires Volumes > 1
	// to have anything to balance (at one volume it runs as plain LBICA);
	// RoutePolicy must stay empty — the controller owns routing, and
	// RouteSkew only seeds its initial weights.
	SchemeArrayLB = "array-lb"

	SchemeStaticWT   = "wt"
	SchemeStaticRO   = "ro"
	SchemeStaticWO   = "wo"
	SchemeStaticWTWO = "wtwo"
)

// Workloads accepted by Options.Workload.
const (
	WorkloadTPCC        = "tpcc"
	WorkloadMail        = "mail"
	WorkloadWeb         = "web"
	WorkloadRandomRead  = "random-read"
	WorkloadRandomWrite = "random-write"
	WorkloadSeqRead     = "seq-read"
	WorkloadSeqWrite    = "seq-write"
	WorkloadMixed       = "mixed"
)

// Phase describes one segment of a custom workload: an ON/OFF-modulated
// Poisson arrival process over a Zipf-skewed working set. It mirrors the
// paper's burst model; see Options.Phases.
type Phase struct {
	// Name labels the phase.
	Name string
	// Duration of the phase in virtual time.
	Duration time.Duration
	// BaseIOPS is the arrival rate outside bursts; BurstIOPS (when > 0)
	// is the rate inside ON periods of mean length BurstOn separated by
	// OFF periods of mean length BurstOff.
	BaseIOPS, BurstIOPS float64
	BurstOn, BurstOff   time.Duration
	// ReadRatio is the fraction of reads in [0,1].
	ReadRatio float64
	// Sequential is the probability a request continues the current run.
	Sequential float64
	// WorkingSetBlocks is the addressed set size in 4 KiB blocks,
	// starting at BaseBlock; ZipfExponent skews references (0 = uniform).
	WorkingSetBlocks int64
	BaseBlock        int64
	ZipfExponent     float64
	// SizesSectors are request sizes drawn uniformly (default 4 KiB).
	SizesSectors []int64
	// Optional separate write region (reads never touch it).
	WriteWorkingSetBlocks int64
	WriteBaseBlock        int64
	WriteZipfExponent     float64
}

// Options configures a simulation run. The zero value of every field has a
// sensible default; Workload and Scheme default to "tpcc" under "lbica".
type Options struct {
	// Workload picks a named workload, or use Phases for a custom one.
	Workload string
	// Scheme picks the load-management scheme (or a static policy).
	Scheme string
	// Seed fixes all randomness; runs with equal seeds are bit-identical.
	Seed int64
	// Intervals is the number of monitor intervals to run (default: the
	// paper's length for the named workload, 200 otherwise).
	Intervals int
	// IntervalLength is the monitor sampling interval (default 200 ms of
	// virtual time).
	IntervalLength time.Duration
	// RateFactor scales the workload's IOPS (default 1).
	RateFactor float64
	// Phases, when non-empty, defines a custom workload (Name labels it).
	Phases []Phase
	// Name labels a custom workload (default "custom").
	Name string
	// TraceWriter, when non-nil, receives the full binary block-layer
	// trace (decode with cmd/traceinspect).
	TraceWriter io.Writer

	// RecordTo, when non-nil, captures the application request stream so
	// it can be replayed later against a different scheme or
	// configuration (trace-driven evaluation).
	RecordTo io.Writer
	// ReplayFrom, when non-nil, replays a stream captured with RecordTo
	// instead of generating a workload. Intervals must still be set high
	// enough to cover the recording.
	ReplayFrom io.Reader

	// CacheMiB sizes the SSD cache (default 256 MiB); CacheWays sets the
	// associativity (default 8).
	CacheMiB  int
	CacheWays int
	// Replacement selects the cache's in-set victim policy: "lru"
	// (default), "fifo" or "rand" — EnhanceIO's three options.
	Replacement string

	// Volumes is the array width: how many independent cache+disk volumes
	// one run shards the workload across (0 or 1 = the paper's single
	// stack, which bypasses the array layer entirely). Each volume is a
	// full stack with its own balancer instance; a deterministic router
	// splits the stream, the volumes run volume-per-core, and the report's
	// top-level fields become the array-level merge (per-volume reports
	// ride in Report.PerVolume). TraceWriter and RecordTo require a single
	// volume; ReplayFrom works at any width (the recorded stream is routed
	// like a generated one).
	Volumes int
	// RoutePolicy selects how the array router splits the stream:
	// "uniform" (spread independent of address), "hash" (block-affine —
	// every block always lands on the same volume) or "zipf" (volume
	// popularity skewed by RouteSkew). Empty means "zipf" when RouteSkew
	// > 0 and "uniform" otherwise. Requires Volumes > 1.
	RoutePolicy string
	// RouteSkew is the Zipf exponent of the router's volume-popularity
	// distribution (0 = uniform weights) — the skewed-routing regime
	// where some volumes run hot. Requires Volumes > 1. Under
	// Scheme "array-lb" it sets the controller's initial weights only;
	// measured load takes over from the first interval barrier.
	RouteSkew float64
	// RouteVariant selects the "array-lb" controller's adaptation
	// mechanism: "weighted" (inverse-load weighting, the default) or
	// "p2c" (power-of-two-choices: two candidate volumes per request,
	// route to the less loaded). Only valid with Scheme "array-lb".
	RouteVariant string
	// ShardWorkers caps the array's volume-per-core fan-out (≤0 =
	// GOMAXPROCS; 1 = serial). Output is byte-identical for every value.
	ShardWorkers int

	// Thresholds overrides LBICA's census-classifier calibration. The
	// zero value is the paper's calibrated defaults, and zero fields
	// inherit their default individually, so only the fields you set
	// change. Ignored by schemes other than "lbica".
	Thresholds Thresholds
	// DiskElevator dispatches the disk queue in LOOK (elevator) order and
	// switches the disk model to distance-proportional seeks — a more
	// detailed rotational model than the calibrated default.
	DiskElevator bool
	// DisablePrewarm starts the cache cold instead of preloading the
	// workload's hottest blocks.
	DisablePrewarm bool
}

// Thresholds tunes LBICA's census classifier (paper §III-B): the minimum
// shares of the SSD queue's R/W/P/E mix that classify each workload
// group. The zero value is the paper's calibrated defaults; zero fields
// inherit their default individually. All share fields are fractions in
// [0, 1].
type Thresholds struct {
	// DominantPair is the minimum combined share of a group's two request
	// types.
	DominantPair float64
	// MemberMin is the minimum individual share of each member of the
	// pair.
	MemberMin float64
	// PromoteAlone is the promote share that classifies Group 4 (seq
	// read) on its own.
	PromoteAlone float64
	// ReadAlone is the application-read share that classifies Group 1
	// (random read) on its own.
	ReadAlone float64
	// MinQueued is the minimum census population worth classifying.
	MinQueued int
}

// coreThresholds converts to the balancer's internal representation.
func (t Thresholds) coreThresholds() core.Thresholds {
	return core.Thresholds{
		DominantPair: t.DominantPair,
		MemberMin:    t.MemberMin,
		PromoteAlone: t.PromoteAlone,
		ReadAlone:    t.ReadAlone,
		MinQueued:    t.MinQueued,
	}
}

// PolicyEvent is one write-policy decision in the run's timeline.
type PolicyEvent struct {
	Interval int
	Policy   string
	Group    string
}

// Interval is one monitor interval's statistics — one x-axis point of the
// paper's Figs. 4–6.
type Interval struct {
	Index int
	// CacheLoadMicros/DiskLoadMicros are the per-interval maximum queue
	// times of Eq. 1, in microseconds (the figures' y-axis).
	CacheLoadMicros float64
	DiskLoadMicros  float64
	// Burst reports whether the detector flagged the cache as the
	// bottleneck.
	Burst bool
	// ReadPct..EvictPct is the R/W/P/E arrival mix of the SSD queue.
	ReadPct, WritePct, PromotePct, EvictPct float64
	// AvgLatency is the mean end-to-end application latency.
	AvgLatency time.Duration
	// SSDQueueMax/HDDQueueMax are the peak queue depths.
	SSDQueueMax, HDDQueueMax int
}

// Summary aggregates a run.
type Summary struct {
	Requests       uint64
	AvgLatency     time.Duration
	P50Latency     time.Duration
	P99Latency     time.Duration
	MaxLatency     time.Duration
	HitRatio       float64
	CacheLoadMean  float64 // µs
	DiskLoadMean   float64 // µs
	BypassedToDisk uint64
	SSDUtilization float64
	HDDUtilization float64
	PolicySwitches uint64
	// SSDWrittenMiB is the write volume the SSD absorbed — the endurance
	// cost of the run (lower is better for flash lifetime).
	SSDWrittenMiB float64
	HDDWrittenMiB float64
}

// Report is a finished run. For an array run (Options.Volumes > 1) the
// top-level fields are the array-level merge — loads show the bottleneck
// volume, counters and latency quantiles cover every request, and each
// policy event's Group carries its volume ("v2:G3/random-write") — while
// PerVolume holds each volume's own full report.
type Report struct {
	Workload string
	Scheme   string
	// IntervalLength is the effective monitor interval of the run (the
	// Options value after defaulting).
	IntervalLength time.Duration
	Intervals      []Interval
	Policies       []PolicyEvent
	Summary        Summary

	// PerVolume, for an array run, holds the per-volume reports indexed
	// by volume address (a nil slot is a volume a cancellation stopped
	// before it completed). Nil for single-volume runs.
	PerVolume []*Report
}

// Run executes one simulation.
func Run(o Options) (*Report, error) {
	return RunContext(context.Background(), o)
}

// RunContext is Run with cooperative cancellation: when ctx is cancelled
// the simulation stops at the next event boundary, drains in-flight
// requests, and returns the partial report accumulated so far together
// with ctx.Err(). A cancellation arriving only after every requested
// interval has sampled is ignored — the report is complete.
func RunContext(ctx context.Context, o Options) (*Report, error) {
	o, err := normalizeOptions(o)
	if err != nil {
		return nil, err
	}
	if o.Volumes > 1 {
		if strings.ToLower(o.Scheme) == SchemeArrayLB {
			return runControlledContext(ctx, o)
		}
		return runArrayContext(ctx, o)
	}

	gen, err := buildWorkload(o, nil)
	if err != nil {
		return nil, err
	}
	var recorded []workload.Request
	if o.RecordTo != nil {
		gen = workload.NewTee(gen, &recorded)
	}
	bal, initial, err := buildScheme(o)
	if err != nil {
		return nil, err
	}

	cfg, err := buildEngineConfig(o, initial)
	if err != nil {
		return nil, err
	}

	var bw *trace.BinaryWriter
	if o.TraceWriter != nil {
		bw = trace.NewBinaryWriter(o.TraceWriter)
		cfg.Trace = bw
	}

	st := engine.New(cfg, gen, bal)
	res := st.RunContext(ctx, o.Intervals)
	// Flush/save failures are joined with (not replaced by) a
	// cancellation, and the report survives them: on an interrupted run
	// the partial results are the caller's only window into what
	// happened before the output files went bad.
	var flushErr, saveErr error
	if bw != nil {
		if err := bw.Close(); err != nil {
			flushErr = fmt.Errorf("lbica: flushing trace: %w", err)
		}
	}
	if o.RecordTo != nil {
		if err := workload.SaveRequests(o.RecordTo, recorded); err != nil {
			saveErr = fmt.Errorf("lbica: saving recorded workload: %w", err)
		}
	}
	// A cancellation that lands after the last requested interval has
	// sampled changed nothing: the run is complete, not partial, and
	// reporting ctx.Err() would mislabel a full result.
	ctxErr := ctx.Err()
	if ctxErr != nil && len(res.Samples) >= o.Intervals {
		ctxErr = nil
	}
	return buildReport(o, res), errors.Join(ctxErr, flushErr, saveErr)
}

// normalizeOptions validates o and fills every defaulted field, returning
// the effective options of the run. Zero means "use the default"; a
// negative value is an error, never a silent rewrite — clamping it would
// run a different experiment than the one the caller asked for while
// reporting their value nowhere.
func normalizeOptions(o Options) (Options, error) {
	if o.Intervals < 0 || o.IntervalLength < 0 || o.RateFactor < 0 {
		return o, fmt.Errorf("lbica: negative Intervals/IntervalLength/RateFactor (got %d, %v, %v); zero means default",
			o.Intervals, o.IntervalLength, o.RateFactor)
	}
	if o.Volumes < 0 {
		return o, fmt.Errorf("lbica: negative Volumes %d; zero means the single-stack default", o.Volumes)
	}
	if o.Volumes <= 1 && (o.RoutePolicy != "" || o.RouteSkew != 0) {
		return o, fmt.Errorf("lbica: RoutePolicy %q / RouteSkew %v set on a single-volume run; routing needs Volumes > 1",
			o.RoutePolicy, o.RouteSkew)
	}
	if err := o.Thresholds.coreThresholds().Validate(); err != nil {
		return o, fmt.Errorf("lbica: %w", err)
	}
	if o.Workload == "" && len(o.Phases) == 0 {
		o.Workload = WorkloadTPCC
	}
	if o.Scheme == "" {
		o.Scheme = SchemeLBICA
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.IntervalLength == 0 {
		o.IntervalLength = 200 * time.Millisecond
	}
	if o.RateFactor == 0 {
		o.RateFactor = 1
	}
	if o.Intervals == 0 {
		if len(o.Phases) == 0 {
			o.Intervals = defaultIntervals(o.Workload)
		} else {
			o.Intervals = 200
		}
	}
	if strings.ToLower(o.Scheme) == SchemeArrayLB {
		if o.RoutePolicy != "" {
			return o, fmt.Errorf("lbica: RoutePolicy %q set under scheme array-lb; the controller owns routing (RouteSkew seeds its initial weights)", o.RoutePolicy)
		}
		if _, err := array.ParseVariant(o.RouteVariant); err != nil {
			return o, fmt.Errorf("lbica: %w", err)
		}
	} else if o.RouteVariant != "" {
		return o, fmt.Errorf("lbica: RouteVariant %q set under scheme %q; adaptive variants apply to array-lb only", o.RouteVariant, o.Scheme)
	}
	return o, nil
}

func defaultIntervals(wl string) int {
	if wl == WorkloadWeb {
		return 175
	}
	return 200
}

// buildEngineConfig assembles the stack configuration from the defaulted
// options: cache geometry, replacement policy, disk discipline, prewarm.
// Trace wiring stays with the caller (the array path rejects it).
func buildEngineConfig(o Options, initial cache.Policy) (engine.Config, error) {
	cfg := engine.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.MonitorEvery = o.IntervalLength
	cfg.Cache.InitialPolicy = initial
	if o.Replacement != "" {
		repl, err := cache.ParseReplacement(o.Replacement)
		if err != nil {
			return engine.Config{}, err
		}
		cfg.Cache.Replacement = repl
		cfg.Cache.ReplacementSeed = o.Seed
	}
	if o.DiskElevator {
		cfg.HDDDiscipline = ioqueue.LookDispatch
		cfg.HDD.DistanceSeek = true
	}
	if o.CacheMiB > 0 {
		blocks := o.CacheMiB * 1024 / 4 // 4 KiB blocks
		ways := cfg.Cache.Ways
		if o.CacheWays > 0 {
			ways = o.CacheWays
		}
		if blocks < ways {
			return engine.Config{}, fmt.Errorf("lbica: cache of %d MiB cannot hold %d ways", o.CacheMiB, ways)
		}
		cfg.Cache.Ways = ways
		cfg.Cache.Sets = blocks / ways
	} else if o.CacheWays > 0 {
		total := cfg.Cache.Sets * cfg.Cache.Ways
		cfg.Cache.Ways = o.CacheWays
		cfg.Cache.Sets = total / o.CacheWays
	}
	if o.DisablePrewarm {
		cfg.PrewarmBlocks = 0
	} else {
		cfg.PrewarmBlocks = cfg.Cache.Sets * cfg.Cache.Ways
	}
	return cfg, nil
}

// runArrayContext is RunContext's multi-volume path: each volume is a
// full stack with its own balancer instance, fed its routed sub-stream by
// sibling routers in lockstep over bit-identical copies of the workload,
// sharded volume-per-core and merged order-independently. The report's
// top-level fields are the array-level merge; per-volume reports ride in
// Report.PerVolume.
func runArrayContext(ctx context.Context, o Options) (*Report, error) {
	// A shared trace or record writer would interleave the volumes'
	// streams nondeterministically; refuse rather than emit garbage.
	if o.TraceWriter != nil || o.RecordTo != nil {
		return nil, fmt.Errorf("lbica: TraceWriter/RecordTo require Volumes <= 1 (per-volume streams would interleave)")
	}
	pol, err := array.ParsePolicy(o.RoutePolicy)
	if err != nil {
		return nil, fmt.Errorf("lbica: %w", err)
	}
	if o.RoutePolicy == "" && o.RouteSkew > 0 {
		pol = array.Zipf
	}
	acfg := array.Config{Volumes: o.Volumes, Policy: pol, Skew: o.RouteSkew, Workers: o.ShardWorkers}
	if err := acfg.Validate(); err != nil {
		return nil, fmt.Errorf("lbica: %w", err)
	}
	// A replay stream is read once and shared read-only: every volume
	// routes the same recorded requests, exactly like a generated stream.
	var replay []workload.Request
	if o.ReplayFrom != nil {
		if replay, err = workload.LoadRequests(o.ReplayFrom); err != nil {
			return nil, fmt.Errorf("lbica: loading replay stream: %w", err)
		}
	}
	_, initial, err := buildScheme(o)
	if err != nil {
		return nil, err
	}
	cfg, err := buildEngineConfig(o, initial)
	if err != nil {
		return nil, err
	}

	ares, runErr := array.Run(ctx, acfg, o.Intervals, func(vol int) (*engine.Stack, error) {
		vcfg := cfg
		// Per-volume device/replacement streams: each volume is its own
		// hardware. The workload copy keeps the *base* seed — every volume
		// must replay the bit-identical stream for the routers to agree.
		vcfg.Seed = sim.Stream(o.Seed, vol)
		vcfg.Volume = vol
		if o.Replacement != "" {
			vcfg.Cache.ReplacementSeed = vcfg.Seed
		}
		gen, err := buildWorkload(o, replay)
		if err != nil {
			return nil, err
		}
		bal, _, err := buildScheme(o) // fresh balancer instance per volume
		if err != nil {
			return nil, err
		}
		return engine.New(vcfg, array.VolumeGen(gen, acfg.NewRouter(o.Seed), vol), bal), nil
	})

	rep := buildReport(o, ares.Merged)
	rep.PerVolume = make([]*Report, len(ares.PerVolume))
	complete := true
	for v, vres := range ares.PerVolume {
		if vres == nil {
			complete = false
			continue
		}
		rep.PerVolume[v] = buildReport(o, vres)
		if len(vres.Samples) < o.Intervals {
			complete = false
		}
	}
	// Mirror the single-stack rule: a cancellation that arrives only
	// after every volume sampled every requested interval changed
	// nothing — the report is complete, not partial.
	if runErr != nil && complete && ctx.Err() != nil && errors.Is(runErr, ctx.Err()) {
		runErr = nil
	}
	return rep, runErr
}

// runControlledContext is RunContext's "array-lb" path: like
// runArrayContext each volume is a full stack with its own LBICA
// instance, but the stream is routed by a single controller-owned
// adaptive router instead of lockstep static router copies. The volumes
// advance one monitor interval per round; at each barrier the controller
// reads every volume's closed interval sample, reweights the router from
// measured load, and migrates the bottleneck volume's hottest clean
// cache lines to the coldest volume (pinning their routing). Decisions
// are made serially between rounds, so output stays byte-identical for
// every ShardWorkers value.
func runControlledContext(ctx context.Context, o Options) (*Report, error) {
	if o.TraceWriter != nil || o.RecordTo != nil {
		return nil, fmt.Errorf("lbica: TraceWriter/RecordTo require Volumes <= 1 (per-volume streams would interleave)")
	}
	variant, err := array.ParseVariant(o.RouteVariant)
	if err != nil {
		return nil, fmt.Errorf("lbica: %w", err)
	}
	var replay []workload.Request
	if o.ReplayFrom != nil {
		if replay, err = workload.LoadRequests(o.ReplayFrom); err != nil {
			return nil, fmt.Errorf("lbica: loading replay stream: %w", err)
		}
	}
	// One base stream, routed by the controller itself — unlike the static
	// path, no per-volume bit-identical copies are needed.
	base, err := buildWorkload(o, replay)
	if err != nil {
		return nil, err
	}
	_, initial, err := buildScheme(o)
	if err != nil {
		return nil, err
	}
	cfg, err := buildEngineConfig(o, initial)
	if err != nil {
		return nil, err
	}
	ccfg := array.ControllerConfig{
		Volumes: o.Volumes,
		Skew:    o.RouteSkew,
		Seed:    o.Seed,
		Variant: variant,
		Workers: o.ShardWorkers,
	}
	ares, runErr := array.RunControlled(ctx, ccfg, o.Intervals, o.IntervalLength, base,
		func(vol int, gen workload.Generator) (*engine.Stack, error) {
			vcfg := cfg
			// Per-volume device/replacement streams: each volume is its
			// own hardware (same rule as the static array path).
			vcfg.Seed = sim.Stream(o.Seed, vol)
			vcfg.Volume = vol
			if o.Replacement != "" {
				vcfg.Cache.ReplacementSeed = vcfg.Seed
			}
			bal, _, err := buildScheme(o) // fresh balancer instance per volume
			if err != nil {
				return nil, err
			}
			return engine.New(vcfg, gen, bal), nil
		})
	if runErr != nil && ares == nil {
		return nil, runErr
	}

	rep := buildReport(o, ares.Merged)
	rep.PerVolume = make([]*Report, len(ares.PerVolume))
	complete := true
	for v, vres := range ares.PerVolume {
		if vres == nil {
			complete = false
			continue
		}
		rep.PerVolume[v] = buildReport(o, vres)
		if len(vres.Samples) < o.Intervals {
			complete = false
		}
	}
	// Same rule as the static array path: a cancellation that arrives only
	// after every volume sampled every requested interval changed nothing.
	if runErr != nil && complete && ctx.Err() != nil && errors.Is(runErr, ctx.Err()) {
		runErr = nil
	}
	return rep, runErr
}

// buildWorkload assembles the run's generator. replay, when non-nil, is a
// pre-loaded recorded stream (the array path reads ReplayFrom once and
// hands every volume the same requests); otherwise ReplayFrom is read
// here.
func buildWorkload(o Options, replay []workload.Request) (workload.Generator, error) {
	if replay != nil {
		name := o.Name
		if name == "" {
			name = "replay"
		}
		return workload.NewReplay(name, replay), nil
	}
	if o.ReplayFrom != nil {
		reqs, err := workload.LoadRequests(o.ReplayFrom)
		if err != nil {
			return nil, fmt.Errorf("lbica: loading replay stream: %w", err)
		}
		name := o.Name
		if name == "" {
			name = "replay"
		}
		return workload.NewReplay(name, reqs), nil
	}
	g := sim.NewRNG(o.Seed, "workload:"+o.Workload+o.Name)
	if len(o.Phases) > 0 {
		name := o.Name
		if name == "" {
			name = "custom"
		}
		phases := make([]workload.Phase, len(o.Phases))
		for i, p := range o.Phases {
			phases[i] = workload.Phase{
				Name:                  p.Name,
				Duration:              p.Duration,
				BaseIOPS:              p.BaseIOPS,
				BurstIOPS:             p.BurstIOPS,
				BurstOn:               p.BurstOn,
				BurstOff:              p.BurstOff,
				ReadRatio:             p.ReadRatio,
				Sequential:            p.Sequential,
				WorkingSetBlocks:      p.WorkingSetBlocks,
				BaseBlock:             p.BaseBlock,
				ZipfExponent:          p.ZipfExponent,
				SizesSectors:          p.SizesSectors,
				WriteWorkingSetBlocks: p.WriteWorkingSetBlocks,
				WriteBaseBlock:        p.WriteBaseBlock,
				WriteZipfExponent:     p.WriteZipfExponent,
			}
		}
		return workload.NewPhaseGen(name, phases, g), nil
	}

	scale := workload.Scale{Interval: o.IntervalLength, Intervals: o.Intervals, RateFactor: o.RateFactor}
	dur := time.Duration(o.Intervals) * o.IntervalLength
	iops := 8000 * o.RateFactor
	switch strings.ToLower(o.Workload) {
	case WorkloadTPCC:
		return workload.TPCC(scale, g), nil
	case WorkloadMail:
		return workload.MailServer(scale, g), nil
	case WorkloadWeb:
		return workload.WebServer(scale, g), nil
	case WorkloadRandomRead:
		return workload.RandomRead(dur, iops, 96*1024, g), nil
	case WorkloadRandomWrite:
		return workload.RandomWrite(dur, iops, 96*1024, g), nil
	case WorkloadSeqRead:
		return workload.SequentialRead(dur, iops, 1<<20, g), nil
	case WorkloadSeqWrite:
		return workload.SequentialWrite(dur, iops, 1<<20, g), nil
	case WorkloadMixed:
		return workload.MixedRW(dur, iops, 96*1024, g), nil
	default:
		// Names beyond the legacy aliases resolve through the workload
		// catalog: synth-* entries, Zipf-parameterized variants
		// (synth-randread-zipf1.2) and the burst-mix family
		// (burst-mix-hi, burst-mix-on6x-duty0.45-read0.35).
		b, err := workload.Default.Resolve(strings.ToLower(o.Workload))
		if err != nil {
			return nil, fmt.Errorf("lbica: %w", err)
		}
		return b(scale, g), nil
	}
}

// buildScheme assembles a fresh balancer instance (array volumes each get
// their own) plus the scheme's initial cache policy. o.Thresholds has
// already been validated; it only reaches the LBICA classifier.
func buildScheme(o Options) (engine.Balancer, cache.Policy, error) {
	switch strings.ToLower(o.Scheme) {
	case SchemeWB:
		return nil, cache.WB, nil
	case SchemeSIB:
		return sib.New(sib.DefaultConfig()), cache.WTWO, nil
	case SchemeLBICA, SchemeArrayLB:
		// array-lb keeps the intra-volume balancer: each volume still
		// runs LBICA; the array controller adds the cross-volume layer.
		cfg := core.DefaultConfig()
		cfg.Thresholds = o.Thresholds.coreThresholds().Normalize()
		return core.New(cfg), cache.WB, nil
	case SchemeStaticWT:
		return nil, cache.WT, nil
	case SchemeStaticRO:
		return nil, cache.RO, nil
	case SchemeStaticWO:
		return nil, cache.WO, nil
	case SchemeStaticWTWO:
		return nil, cache.WTWO, nil
	default:
		return nil, cache.WB, fmt.Errorf("lbica: unknown scheme %q", o.Scheme)
	}
}

func buildReport(o Options, res *engine.Results) *Report {
	rows := experiments.Fig6(res)
	r := &Report{
		Workload:       res.Workload,
		Scheme:         res.Scheme,
		IntervalLength: o.IntervalLength,
		Intervals:      make([]Interval, len(rows)),
	}
	if res.Scheme == "WB" && o.Scheme != SchemeWB {
		// Static-policy runs report the policy name, not "WB".
		r.Scheme = strings.ToUpper(o.Scheme)
	}
	if strings.ToLower(o.Scheme) == SchemeArrayLB {
		// The per-volume balancer names itself LBICA; the run's scheme is
		// the array-level controller (also at Volumes <= 1, where it
		// degenerates to plain LBICA).
		r.Scheme = strings.ToUpper(SchemeArrayLB)
	}
	for i, row := range rows {
		r.Intervals[i] = Interval{
			Index:           row.Interval,
			CacheLoadMicros: row.CacheLoad,
			DiskLoadMicros:  row.DiskLoad,
			Burst:           row.Burst,
			ReadPct:         row.R,
			WritePct:        row.W,
			PromotePct:      row.P,
			EvictPct:        row.E,
			AvgLatency:      res.Samples[i].AppAwait,
			SSDQueueMax:     res.Samples[i].SSDDepthMax,
			HDDQueueMax:     res.Samples[i].HDDDepthMax,
		}
	}
	for _, pc := range res.Timeline {
		r.Policies = append(r.Policies, PolicyEvent{
			Interval: pc.Interval,
			Policy:   pc.Policy.String(),
			Group:    pc.Group,
		})
	}
	r.Summary = Summary{
		Requests:       res.AppCompleted,
		AvgLatency:     res.AppLatency.Mean(),
		P50Latency:     res.AppLatency.Quantile(0.5),
		P99Latency:     res.AppLatency.Quantile(0.99),
		MaxLatency:     res.AppLatency.Max(),
		HitRatio:       res.CacheStats.HitRatio(),
		CacheLoadMean:  res.CacheLoadMean() / 1e3,
		DiskLoadMean:   res.DiskLoadMean() / 1e3,
		BypassedToDisk: res.BypassedToDisk,
		SSDUtilization: res.SSDUtilization,
		HDDUtilization: res.HDDUtilization,
		PolicySwitches: res.CacheStats.PolicySwitches,
		SSDWrittenMiB:  res.SSDWrittenMiB(),
		HDDWrittenMiB:  res.HDDWrittenMiB(),
	}
	return r
}

// WriteCSV renders the per-interval series in the layout of the paper's
// Fig. 6: loads, burst flag, R/W/P/E mix, and the policy in force.
func (r *Report) WriteCSV(w io.Writer) error {
	policyAt := make([]string, len(r.Intervals))
	cur := "WB"
	pi := 0
	for i := range r.Intervals {
		for pi < len(r.Policies) && r.Policies[pi].Interval <= i {
			cur = r.Policies[pi].Policy
			pi++
		}
		policyAt[i] = cur
	}
	if _, err := fmt.Fprintln(w, "interval,cache_load_us,disk_load_us,burst,r_pct,w_pct,p_pct,e_pct,avg_latency_us,policy"); err != nil {
		return err
	}
	for i, iv := range r.Intervals {
		_, err := fmt.Fprintf(w, "%d,%.1f,%.1f,%t,%.1f,%.1f,%.1f,%.1f,%.1f,%s\n",
			iv.Index, iv.CacheLoadMicros, iv.DiskLoadMicros, iv.Burst,
			iv.ReadPct, iv.WritePct, iv.PromotePct, iv.EvictPct,
			float64(iv.AvgLatency)/1e3, policyAt[i])
		if err != nil {
			return err
		}
	}
	return nil
}

// String summarizes the run in one line.
func (r *Report) String() string {
	return fmt.Sprintf("%s/%s: %d reqs, avg %v, p99 %v, hit %.2f, cache load %.0fµs, disk load %.0fµs",
		r.Workload, r.Scheme, r.Summary.Requests, r.Summary.AvgLatency, r.Summary.P99Latency,
		r.Summary.HitRatio, r.Summary.CacheLoadMean, r.Summary.DiskLoadMean)
}
