// Capacity: sweep the SSD cache size under the TPC-C burst workload and
// compare how the WB baseline and LBICA degrade as the cache shrinks —
// the capacity-planning question an operator of this stack actually has.
//
// A larger cache raises the hit ratio, which loads the cache tier even
// harder during bursts; LBICA's advantage persists across sizes because it
// sheds exactly the traffic the cache cannot usefully absorb.
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"
	"time"

	"lbica"
)

func main() {
	sizes := []int{64, 128, 256, 512}

	fmt.Println("TPC-C, cache-size sweep (identical request stream everywhere)")
	fmt.Println()
	fmt.Printf("%10s | %-12s %-12s %-10s | %-12s %-12s %-10s | %s\n",
		"cache MiB", "WB latency", "WB load µs", "WB hit",
		"LBICA lat", "LBICA load", "LBICA hit", "latency win")

	for _, mib := range sizes {
		wb, err := lbica.Run(lbica.Options{
			Workload: lbica.WorkloadTPCC, Scheme: lbica.SchemeWB, CacheMiB: mib,
		})
		if err != nil {
			log.Fatal(err)
		}
		lb, err := lbica.Run(lbica.Options{
			Workload: lbica.WorkloadTPCC, Scheme: lbica.SchemeLBICA, CacheMiB: mib,
		})
		if err != nil {
			log.Fatal(err)
		}
		win := 100 * (1 - float64(lb.Summary.AvgLatency)/float64(wb.Summary.AvgLatency))
		fmt.Printf("%10d | %-12v %-12.0f %-10.3f | %-12v %-12.0f %-10.3f | %5.1f%%\n",
			mib,
			wb.Summary.AvgLatency.Round(time.Microsecond), wb.Summary.CacheLoadMean, wb.Summary.HitRatio,
			lb.Summary.AvgLatency.Round(time.Microsecond), lb.Summary.CacheLoadMean, lb.Summary.HitRatio,
			win)
	}

	fmt.Println()
	fmt.Println("reading the sweep: with a tiny cache the *disk* is the bottleneck, so LBICA")
	fmt.Println("(correctly) never arms; with a huge cache nearly every access hits and WO can")
	fmt.Println("shed only the few promotes. LBICA pays off most in between — when the cache")
	fmt.Println("attracts the load but cannot absorb the bursts.")
}
