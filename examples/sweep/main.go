// Sweep: the scenario-robustness question the paper's fixed 3×3 matrix
// cannot answer — do LBICA's gains survive when the cache is half the
// size, the arrival rate 20% hotter, the bursts twice as intense, and
// the seed different? One declarative grid replaces the hand-rolled
// loops of examples/capacity: expansion, parallel execution, per-cell
// aggregation (mean/min/max max-queue-time across seed replicates) and
// speedups come from lbica.Sweep. Workloads beyond the paper trio come
// from the catalog — try Workloads: []string{"burst-mix-hi"} or a
// parameterized name like "synth-randread-zipf1.2".
//
//	go run ./examples/sweep
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"lbica"
)

func main() {
	res, err := lbica.Sweep(context.Background(), lbica.GridSpec{
		// Empty Workloads/Schemes axes mean "all of the paper's".
		CacheMults:     []float64{0.5, 1},
		RateFactors:    []float64{1, 1.2},
		BurstMults:     []float64{1, 2},
		SeedReplicates: 2,
		Seed:           7,
		Intervals:      40, // a fast preview; the paper runs 200
	}, lbica.SweepOptions{
		OnProgress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d runs", done, total)
		},
	})
	fmt.Fprintln(os.Stderr)
	if err != nil {
		log.Fatal(err)
	}

	// The text report prints every cell; here, answer one question
	// directly: the worst LBICA-vs-WB speedup over the whole grid, i.e.
	// the scenario where the paper's claim is weakest.
	worst := res.Cells[0]
	found := false
	for _, c := range res.Cells {
		if c.Scheme != "LBICA" || c.SpeedupVsWB == 0 {
			continue
		}
		if !found || c.SpeedupVsWB < worst.SpeedupVsWB {
			worst, found = c, true
		}
	}
	if err := res.WriteReport(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if found {
		fmt.Printf("\nweakest LBICA scenario: %s at cache ×%g, rate ×%g, burst ×%g — still %.2f× vs WB\n",
			worst.Workload, worst.CacheMult, worst.RateFactor, worst.BurstMult, worst.SpeedupVsWB)
	}
}
