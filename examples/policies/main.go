// Policies: run TPC-C and the mail server under every static cache write
// policy and under the adaptive schemes. No static policy wins both
// workloads — RO is best for the mail server's write bursts but useless
// for TPC-C's promote storm, WO is the reverse — which is the paper's
// motivation for adaptive policy assignment.
//
//	go run ./examples/policies
package main

import (
	"fmt"
	"log"
	"time"

	"lbica"
)

var schemes = []struct{ id, label string }{
	{lbica.SchemeWB, "WB   (write-back baseline)"},
	{lbica.SchemeStaticWT, "WT   (write-through)"},
	{lbica.SchemeStaticRO, "RO   (read-only cache)"},
	{lbica.SchemeStaticWO, "WO   (no read allocation)"},
	{lbica.SchemeStaticWTWO, "WTWO (SIB's fixed policy)"},
	{lbica.SchemeSIB, "SIB  (selective bypass)"},
	{lbica.SchemeLBICA, "LBICA (adaptive)"},
}

func main() {
	type result struct {
		avg  map[string]time.Duration
		best string // static scheme with the lowest average latency
	}
	results := map[string]result{}

	for _, wl := range []string{lbica.WorkloadTPCC, lbica.WorkloadMail} {
		fmt.Printf("%s, 200 intervals, identical request stream for every scheme\n\n", wl)
		fmt.Printf("  %-28s %12s %12s %14s %10s\n",
			"scheme", "avg latency", "p99 latency", "cache load µs", "hit ratio")
		res := result{avg: map[string]time.Duration{}}
		for _, sc := range schemes {
			r, err := lbica.Run(lbica.Options{Workload: wl, Scheme: sc.id})
			if err != nil {
				log.Fatal(err)
			}
			s := r.Summary
			fmt.Printf("  %-28s %12v %12v %14.0f %10.3f\n",
				sc.label, s.AvgLatency.Round(time.Microsecond), s.P99Latency.Round(time.Microsecond),
				s.CacheLoadMean, s.HitRatio)
			res.avg[sc.id] = s.AvgLatency
			isStatic := sc.id != lbica.SchemeLBICA && sc.id != lbica.SchemeSIB
			if isStatic && (res.best == "" || s.AvgLatency < res.avg[res.best]) {
				res.best = sc.id
			}
		}
		results[wl] = res
		fmt.Println()
	}

	tpcc, mail := results[lbica.WorkloadTPCC], results[lbica.WorkloadMail]
	fmt.Printf("best static policy: %s for tpcc, %s for mail — no single policy suits both.\n",
		tpcc.best, mail.best)
	fmt.Printf("cross-applied, each collapses: %s on mail costs %v (vs %v), %s on tpcc costs %v (vs %v).\n",
		tpcc.best, mail.avg[tpcc.best].Round(time.Microsecond), mail.avg[mail.best].Round(time.Microsecond),
		mail.best, tpcc.avg[mail.best].Round(time.Microsecond), tpcc.avg[tpcc.best].Round(time.Microsecond))
	fmt.Printf("LBICA tracks the best static choice on each without knowing it in advance: tpcc %v, mail %v.\n",
		tpcc.avg[lbica.SchemeLBICA].Round(time.Microsecond), mail.avg[lbica.SchemeLBICA].Round(time.Microsecond))
}
