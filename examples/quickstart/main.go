// Quickstart: run the paper's TPC-C workload under LBICA and print what
// the balancer decided and what it bought.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"lbica"
)

func main() {
	// One run of TPC-C under the plain write-back cache...
	baseline, err := lbica.Run(lbica.Options{
		Workload: lbica.WorkloadTPCC,
		Scheme:   lbica.SchemeWB,
	})
	if err != nil {
		log.Fatal(err)
	}

	// ...and one under LBICA. Identical seed → identical workload.
	balanced, err := lbica.Run(lbica.Options{
		Workload: lbica.WorkloadTPCC,
		Scheme:   lbica.SchemeLBICA,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("TPC-C with burst I/O, 200 intervals of 200 ms virtual time")
	fmt.Println()
	fmt.Println("  baseline:", baseline)
	fmt.Println("  balanced:", balanced)
	fmt.Println()

	fmt.Println("LBICA's decisions:")
	for _, p := range balanced.Policies {
		fmt.Printf("  interval %3d: switch cache policy to %-4s — workload characterized as %s\n",
			p.Interval, p.Policy, p.Group)
	}
	fmt.Println()

	lat := 100 * (1 - float64(balanced.Summary.AvgLatency)/float64(baseline.Summary.AvgLatency))
	load := 100 * (1 - balanced.Summary.CacheLoadMean/baseline.Summary.CacheLoadMean)
	fmt.Printf("result: %.0f%% lower I/O cache load, %.0f%% lower average latency\n", load, lat)
	fmt.Printf("        (avg latency %v → %v)\n",
		baseline.Summary.AvgLatency.Round(time.Microsecond),
		balanced.Summary.AvgLatency.Round(time.Microsecond))
}
