// Arraylb: the committed hot-shard walkthrough behind the array-lb
// acceptance criterion. Static Zipf routing (skew 1.2 over 3 volumes)
// concentrates the tpcc stream on volume 0 while volume 2 idles; scheme
// "array-lb" starts from the identical skewed weights, then reweights
// the router from measured loads and migrates hot cache lines at every
// interval boundary. The sweep pins the controlled comparison — both
// schemes serve the same stream under per-volume LBICA — so any
// bottleneck-load gap is the controller's doing, and the per-volume
// request counts from two direct runs show the flattening itself.
//
//	go run ./examples/arraylb
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"lbica"
)

func main() {
	// The pinned regime: tpcc across 3 volumes, router skew 1.2.
	res, err := lbica.Sweep(context.Background(), lbica.GridSpec{
		Workloads:  []string{lbica.WorkloadTPCC},
		Schemes:    []string{lbica.SchemeLBICA, lbica.SchemeArrayLB},
		Volumes:    []int{3},
		RouteSkews: []float64{1.2},
		Seed:       7,
		Intervals:  40, // a fast preview; the paper runs 200
	}, lbica.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	byScheme := map[string]lbica.SweepCell{}
	for _, c := range res.Cells {
		byScheme[c.Scheme] = c
	}
	static, adaptive := byScheme["LBICA"], byScheme["ARRAY-LB"]
	fmt.Printf("bottleneck cache load (mean per-interval worst volume, µs):\n")
	fmt.Printf("  static zipf routing:  %8.1f\n", static.QMeanUS)
	fmt.Printf("  array-lb controller:  %8.1f  (%+.1f%%)\n\n",
		adaptive.QMeanUS, 100*(adaptive.QMeanUS-static.QMeanUS)/static.QMeanUS)

	// The per-volume split behind those numbers, from two direct runs of
	// the same regime (identical seed → identical request stream).
	for _, scheme := range []string{lbica.SchemeLBICA, lbica.SchemeArrayLB} {
		rep, err := lbica.Run(lbica.Options{
			Workload: lbica.WorkloadTPCC, Scheme: scheme,
			Volumes: 3, RouteSkew: 1.2, Seed: 7, Intervals: 40,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s per-volume requests:", rep.Scheme)
		for _, vr := range rep.PerVolume {
			fmt.Printf(" %d", vr.Summary.Requests)
		}
		fmt.Println()
	}

	if adaptive.QMeanUS > static.QMeanUS {
		fmt.Fprintln(os.Stderr, "array-lb failed to flatten the hot shard")
		os.Exit(1)
	}
}
