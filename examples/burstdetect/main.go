// Burstdetect: build a custom three-phase workload (calm → random-read
// storm → write storm) with the public Phase API and watch LBICA's
// detector and characterizer track it interval by interval.
//
//	go run ./examples/burstdetect
package main

import (
	"fmt"
	"log"
	"time"

	"lbica"
)

func main() {
	phases := []lbica.Phase{
		{
			Name: "calm", Duration: 2 * time.Second,
			BaseIOPS: 3000, ReadRatio: 0.7,
			WorkingSetBlocks: 32 * 1024, ZipfExponent: 1.0,
		},
		{
			// A read storm over a working set 1.5× the cache with strong
			// locality: the hot head hits, the tail misses and promotes,
			// and the SSD queue fills with R+P — Group 1.
			Name: "read-storm", Duration: 4 * time.Second,
			BaseIOPS: 3000, BurstIOPS: 14000,
			BurstOn: 60 * time.Millisecond, BurstOff: 140 * time.Millisecond,
			ReadRatio: 0.97, WorkingSetBlocks: 96 * 1024, ZipfExponent: 1.2,
		},
		{
			// A write storm over a small hot set: W+E dominates — Group 3.
			Name: "write-storm", Duration: 4 * time.Second,
			BaseIOPS: 3000, BurstIOPS: 22000,
			BurstOn: 60 * time.Millisecond, BurstOff: 140 * time.Millisecond,
			ReadRatio: 0.05, WorkingSetBlocks: 16 * 1024, ZipfExponent: 0.9,
		},
	}

	report, err := lbica.Run(lbica.Options{
		Name:           "storms",
		Phases:         phases,
		Scheme:         lbica.SchemeLBICA,
		Intervals:      50,
		IntervalLength: 200 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	policyAt := make(map[int]lbica.PolicyEvent)
	for _, p := range report.Policies {
		policyAt[p.Interval] = p
	}

	fmt.Println("custom workload: calm (iv 0-9) → read storm (10-29) → write storm (30-49)")
	fmt.Println()
	fmt.Printf("%8s %12s %12s %6s %6s %6s %6s %6s  %s\n",
		"interval", "cacheQ(us)", "diskQ(us)", "burst", "R%", "W%", "P%", "E%", "decision")
	for _, iv := range report.Intervals {
		decision := ""
		if p, ok := policyAt[iv.Index]; ok {
			decision = fmt.Sprintf("→ %s (%s)", p.Policy, p.Group)
		}
		fmt.Printf("%8d %12.1f %12.1f %6v %6.1f %6.1f %6.1f %6.1f  %s\n",
			iv.Index, iv.CacheLoadMicros, iv.DiskLoadMicros, iv.Burst,
			iv.ReadPct, iv.WritePct, iv.PromotePct, iv.EvictPct, decision)
	}

	fmt.Println()
	fmt.Printf("run summary: %s\n", report)
}
