package lbica_test

import (
	"context"
	"reflect"
	"testing"

	"lbica"
)

func quickBatch() []lbica.Options {
	// One cell per workload (each under a different scheme), reduced
	// intervals: cross-checking the full 9-cell matrix byte-for-byte is
	// the experiments package's golden test; here the public API wiring
	// is under test.
	all := lbica.MatrixSpecs(3)
	specs := []lbica.Options{all[0], all[4], all[8]}
	for i := range specs {
		specs[i].Intervals = 15
	}
	return specs
}

func TestRunAllMatchesSerialRun(t *testing.T) {
	specs := quickBatch()
	parallel, err := lbica.RunAll(t.Context(), specs, lbica.RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(specs) {
		t.Fatalf("got %d reports for %d specs", len(parallel), len(specs))
	}
	for i, o := range specs {
		serial, err := lbica.Run(o)
		if err != nil {
			t.Fatal(err)
		}
		if parallel[i].Workload != o.Workload {
			t.Fatalf("reports[%d] is %s/%s, want spec order preserved (%s)",
				i, parallel[i].Workload, parallel[i].Scheme, o.Workload)
		}
		if !reflect.DeepEqual(serial, parallel[i]) {
			t.Errorf("spec %d (%s/%s): parallel report diverges from serial Run "+
				"(avg %v vs %v, %d vs %d requests)",
				i, o.Workload, o.Scheme, serial.Summary.AvgLatency, parallel[i].Summary.AvgLatency,
				serial.Summary.Requests, parallel[i].Summary.Requests)
		}
	}
}

// A base seed splits into per-run streams: zero-seed specs must get
// distinct workloads, and the whole batch must reproduce bit-for-bit at
// any worker count.
func TestRunAllStreamSeeds(t *testing.T) {
	specs := make([]lbica.Options, 4)
	for i := range specs {
		specs[i] = lbica.Options{Workload: lbica.WorkloadTPCC, Scheme: lbica.SchemeWB, Intervals: 10}
	}
	a, err := lbica.RunAll(t.Context(), specs, lbica.RunnerOptions{Seed: 99, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := lbica.RunAll(t.Context(), specs, lbica.RunnerOptions{Seed: 99, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same base seed, different worker counts: reports diverge")
	}
	distinct := false
	for i := 1; i < len(a); i++ {
		if a[i].Summary.Requests != a[0].Summary.Requests ||
			a[i].Summary.AvgLatency != a[0].Summary.AvgLatency {
			distinct = true
		}
	}
	if !distinct {
		t.Error("replicated specs drew identical runs — seeds were not split per index")
	}
}

func TestRunAllProgressAndCancel(t *testing.T) {
	specs := quickBatch()
	var progress []int
	reports, err := lbica.RunAll(t.Context(), specs, lbica.RunnerOptions{
		OnProgress: func(done, total int) {
			progress = append(progress, done)
			if total != len(specs) {
				t.Errorf("total = %d, want %d", total, len(specs))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(progress) != len(specs) || progress[len(progress)-1] != len(specs) {
		t.Errorf("progress calls = %v, want 1..%d", progress, len(specs))
	}
	for i, r := range reports {
		if r == nil || r.Summary.Requests == 0 {
			t.Errorf("reports[%d] empty", i)
		}
	}

	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	if _, err := lbica.RunAll(ctx, specs, lbica.RunnerOptions{}); err == nil {
		t.Error("RunAll with cancelled context returned nil error")
	}
}

func TestRunAllRejectsBadSpec(t *testing.T) {
	specs := []lbica.Options{
		{Workload: lbica.WorkloadTPCC, Scheme: lbica.SchemeWB, Intervals: 5},
		{Workload: "no-such-workload", Intervals: 5},
	}
	if _, err := lbica.RunAll(t.Context(), specs, lbica.RunnerOptions{}); err == nil {
		t.Error("bad spec in batch returned nil error")
	}
}
