package main

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lbica"
	"lbica/internal/cli"
)

// writeTrace captures a short run's binary trace into a temp file.
func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = lbica.Run(lbica.Options{Workload: "tpcc", Scheme: "lbica", Intervals: 3, TraceWriter: f})
	if cerr := f.Close(); err != nil || cerr != nil {
		t.Fatalf("recording trace: run=%v close=%v", err, cerr)
	}
	return path
}

// Smoke: every mode must decode a freshly captured trace and report on it.
func TestRunAllModes(t *testing.T) {
	path := writeTrace(t)
	for mode, want := range map[string]string{
		"dump":     " ssd ", // event lines render as "<time> <kind> <dev> #id ..."
		"census":   "window",
		"classify": "→",
		"stats":    "origin",
	} {
		var out, errBuf strings.Builder
		if err := run(t.Context(), []string{"-mode", mode, path}, &out, &errBuf); err != nil {
			t.Fatalf("mode %s: %v (stderr: %s)", mode, err, errBuf.String())
		}
		if out.Len() == 0 {
			t.Fatalf("mode %s produced no output", mode)
		}
		if !strings.Contains(out.String(), want) {
			t.Errorf("mode %s output lacks %q:\n%.400s", mode, want, out.String())
		}
	}
}

func TestRunHDDQueueAndWindow(t *testing.T) {
	path := writeTrace(t)
	var out, errBuf strings.Builder
	if err := run(t.Context(), []string{"-mode", "census", "-dev", "hdd", "-window", "100ms", path}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "window") {
		t.Errorf("hdd census produced no windows:\n%s", out.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	path := writeTrace(t)
	for name, args := range map[string][]string{
		"no file":      {"-mode", "census"},
		"two files":    {path, path},
		"bad mode":     {"-mode", "wat", path},
		"bad device":   {"-dev", "tape", path},
		"unknown flag": {"-nope", path},
	} {
		var out, errBuf strings.Builder
		if err := run(t.Context(), args, &out, &errBuf); !errors.Is(err, cli.ErrUsage) {
			t.Errorf("%s: err = %v, want cli.ErrUsage", name, err)
		}
	}
	var out, errBuf strings.Builder
	if err := run(t.Context(), []string{"/nonexistent/trace.trc"}, &out, &errBuf); err == nil || errors.Is(err, cli.ErrUsage) {
		t.Errorf("missing file: err = %v, want a non-usage error", err)
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var out, errBuf strings.Builder
	if err := run(t.Context(), []string{"-h"}, &out, &errBuf); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h returned %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(errBuf.String(), "Usage of traceinspect") {
		t.Errorf("-h did not print usage:\n%s", errBuf.String())
	}
}
