// Command traceinspect decodes a binary block-layer trace captured with
// lbicasim -trace (or lbica.Options.TraceWriter) and reports on it: the
// raw event stream, per-window R/W/P/E census, a characterization dry-run
// showing what LBICA's classifier would decide window by window, or
// whole-trace per-origin statistics.
//
// Usage:
//
//	traceinspect -mode dump run.trc | head
//	traceinspect -mode census -window 200ms run.trc
//	traceinspect -mode classify -window 200ms run.trc
//	traceinspect -mode stats run.trc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"lbica/internal/block"
	"lbica/internal/core"
	"lbica/internal/trace"
)

func main() {
	var (
		mode   = flag.String("mode", "census", "dump | census | classify | stats")
		window = flag.Duration("window", 200*time.Millisecond, "aggregation window for census/classify")
		dev    = flag.String("dev", "ssd", "device queue to analyze: ssd | hdd")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceinspect [-mode dump|census|classify|stats] [-window 200ms] <trace-file>")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	defer f.Close()

	var wantDev trace.Device
	switch *dev {
	case "ssd":
		wantDev = trace.SSD
	case "hdd":
		wantDev = trace.HDD
	default:
		fail(fmt.Errorf("unknown device %q", *dev))
	}

	switch *mode {
	case "dump":
		err = dump(f)
	case "census":
		err = windows(f, wantDev, *window, false)
	case "classify":
		err = windows(f, wantDev, *window, true)
	case "stats":
		err = analyzeStats(f)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fail(err)
	}
}

// dump streams the decoded events as text.
func dump(r io.Reader) error {
	tr := trace.NewReader(r)
	for {
		e, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		fmt.Println(e)
	}
}

// windows prints the per-window census, optionally with the LBICA
// classifier's verdict per window.
func windows(r io.Reader, dev trace.Device, win time.Duration, classify bool) error {
	wins, err := trace.WindowCensus(r, dev, win)
	if err != nil {
		return err
	}
	th := core.DefaultThresholds()
	for _, w := range wins {
		c := w.Census
		line := fmt.Sprintf("window %4d [%8v): n=%-6d R=%5.1f%% W=%5.1f%% P=%5.1f%% E=%5.1f%%",
			w.Index, w.End, c.Total(),
			100*c.Ratio(block.AppRead), 100*c.Ratio(block.AppWrite),
			100*c.Ratio(block.Promote), 100*c.Ratio(block.Evict))
		if classify {
			line += "  → " + core.Classify(c, th).String()
		}
		fmt.Println(line)
	}
	return nil
}

// analyzeStats prints the whole-trace per-origin breakdown.
func analyzeStats(r io.Reader) error {
	a, err := trace.Analyze(r)
	if err != nil {
		return err
	}
	return trace.WriteAnalysis(os.Stdout, a)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "traceinspect:", err)
	os.Exit(1)
}
