// Command traceinspect decodes a binary block-layer trace captured with
// lbicasim -trace (or lbica.Options.TraceWriter) and reports on it: the
// raw event stream, per-window R/W/P/E census, a characterization dry-run
// showing what LBICA's classifier would decide window by window, or
// whole-trace per-origin statistics.
//
// Usage:
//
//	traceinspect -mode dump run.trc | head
//	traceinspect -mode census -window 200ms run.trc
//	traceinspect -mode classify -window 200ms run.trc
//	traceinspect -mode stats run.trc
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"lbica/internal/block"
	"lbica/internal/cli"
	"lbica/internal/core"
	"lbica/internal/trace"
)

func main() { cli.Main("traceinspect", run) }

// run is the testable body of main: flags in, report out.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("traceinspect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mode   = fs.String("mode", "census", "dump | census | classify | stats")
		window = fs.Duration("window", 200*time.Millisecond, "aggregation window for census/classify")
		dev    = fs.String("dev", "ssd", "device queue to analyze: ssd | hdd")
	)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: traceinspect [-mode dump|census|classify|stats] [-window 200ms] <trace-file>")
		return cli.ErrUsage
	}

	var wantDev trace.Device
	switch *dev {
	case "ssd":
		wantDev = trace.SSD
	case "hdd":
		wantDev = trace.HDD
	default:
		fmt.Fprintf(stderr, "traceinspect: unknown device %q (want ssd|hdd)\n", *dev)
		return cli.ErrUsage
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()

	switch *mode {
	case "dump":
		return dump(stdout, f)
	case "census":
		return windows(stdout, f, wantDev, *window, false)
	case "classify":
		return windows(stdout, f, wantDev, *window, true)
	case "stats":
		return analyzeStats(stdout, f)
	default:
		fmt.Fprintf(stderr, "traceinspect: unknown mode %q (want dump|census|classify|stats)\n", *mode)
		return cli.ErrUsage
	}
}

// dump streams the decoded events as text.
func dump(w io.Writer, r io.Reader) error {
	tr := trace.NewReader(r)
	for {
		e, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		fmt.Fprintln(w, e)
	}
}

// windows prints the per-window census, optionally with the LBICA
// classifier's verdict per window.
func windows(w io.Writer, r io.Reader, dev trace.Device, win time.Duration, classify bool) error {
	wins, err := trace.WindowCensus(r, dev, win)
	if err != nil {
		return err
	}
	th := core.DefaultThresholds()
	for _, win := range wins {
		c := win.Census
		line := fmt.Sprintf("window %4d [%8v): n=%-6d R=%5.1f%% W=%5.1f%% P=%5.1f%% E=%5.1f%%",
			win.Index, win.End, c.Total(),
			100*c.Ratio(block.AppRead), 100*c.Ratio(block.AppWrite),
			100*c.Ratio(block.Promote), 100*c.Ratio(block.Evict))
		if classify {
			line += "  → " + core.Classify(c, th).String()
		}
		fmt.Fprintln(w, line)
	}
	return nil
}

// analyzeStats prints the whole-trace per-origin breakdown.
func analyzeStats(w io.Writer, r io.Reader) error {
	a, err := trace.Analyze(r)
	if err != nil {
		return err
	}
	return trace.WriteAnalysis(w, a)
}
