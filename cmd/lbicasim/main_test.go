package main

import (
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Smoke: a tiny run must produce the summary table with a non-zero
// request count.
func TestRunTable(t *testing.T) {
	var out, errBuf strings.Builder
	err := run(t.Context(),
		[]string{"-workload", "tpcc", "-scheme", "lbica", "-intervals", "5", "-cold"},
		&out, &errBuf)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	got := out.String()
	if !strings.Contains(got, "workload tpcc under LBICA (5 intervals") {
		t.Errorf("missing header, got:\n%s", got)
	}
	if !strings.Contains(got, "summary: ") || strings.Contains(got, "summary: 0 requests") {
		t.Errorf("missing or empty summary, got:\n%s", got)
	}
}

func TestRunCSV(t *testing.T) {
	var out, errBuf strings.Builder
	err := run(t.Context(),
		[]string{"-workload", "mail", "-scheme", "wb", "-intervals", "4", "-cold", "-csv"},
		&out, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if lines[0] != "interval,cache_load_us,disk_load_us,burst,r_pct,w_pct,p_pct,e_pct,avg_latency_us,policy" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) != 5 {
		t.Errorf("csv rows = %d, want 4 intervals + header", len(lines))
	}
}

func TestRunRecordReplay(t *testing.T) {
	rec := filepath.Join(t.TempDir(), "run.rec")
	var out, errBuf strings.Builder
	if err := run(t.Context(),
		[]string{"-workload", "web", "-scheme", "wb", "-intervals", "3", "-cold", "-record", rec},
		&out, &errBuf); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(t.Context(),
		[]string{"-replay", rec, "-intervals", "3", "-cold"},
		&out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "workload replay") {
		t.Errorf("replay output missing, got:\n%s", out.String())
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var out, errBuf strings.Builder
	// flag.ErrHelp is the success-exit sentinel cli.Main maps to code 0.
	if err := run(t.Context(), []string{"-h"}, &out, &errBuf); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h returned %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(errBuf.String(), "Usage of lbicasim") {
		t.Errorf("-h did not print usage:\n%s", errBuf.String())
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	var out, errBuf strings.Builder
	if err := run(t.Context(), []string{"-workload", "nope", "-intervals", "2"}, &out, &errBuf); err == nil {
		t.Error("unknown workload returned nil error")
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	var out, errBuf strings.Builder
	if err := run(ctx, []string{"-intervals", "2", "-cold"}, &out, &errBuf); err == nil {
		t.Error("cancelled context returned nil error")
	}
}

// Smoke: -cpuprofile/-memprofile must write non-empty profile files.
func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	var out, errBuf strings.Builder
	err := run(t.Context(),
		[]string{"-workload", "tpcc", "-scheme", "wb", "-intervals", "3", "-cold",
			"-cpuprofile", cpu, "-memprofile", mem},
		&out, &errBuf)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// An unwritable profile path must fail up front, before the run.
func TestRunRejectsBadProfilePath(t *testing.T) {
	var out, errBuf strings.Builder
	err := run(t.Context(),
		[]string{"-workload", "tpcc", "-intervals", "1", "-cpuprofile", t.TempDir()},
		&out, &errBuf)
	if err == nil {
		t.Fatal("directory as -cpuprofile did not error")
	}
}

// -checkpoint saves mid-run state; -restore resumes it with output
// byte-identical to the uninterrupted run.
func TestRunCheckpointRestore(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "warm.ckpt")
	base := []string{"-workload", "tpcc", "-scheme", "lbica", "-intervals", "6", "-cold"}
	var plain, saved, restored, errBuf strings.Builder
	if err := run(t.Context(), base, &plain, &errBuf); err != nil {
		t.Fatal(err)
	}
	if err := run(t.Context(), append(base, "-checkpoint", ckpt, "-checkpoint-at", "2"), &saved, &errBuf); err != nil {
		t.Fatal(err)
	}
	if saved.String() != plain.String() {
		t.Error("checkpointing run's output diverged from the plain run's")
	}
	if fi, err := os.Stat(ckpt); err != nil || fi.Size() == 0 {
		t.Fatalf("checkpoint file not written: %v", err)
	}
	if err := run(t.Context(), append(base, "-restore", ckpt), &restored, &errBuf); err != nil {
		t.Fatal(err)
	}
	if restored.String() != plain.String() {
		t.Error("restored run's output diverged from the plain run's")
	}

	// Restoring under different run flags is a hard error, not a
	// divergent resume.
	var o, e strings.Builder
	if err := run(t.Context(), []string{"-workload", "mail", "-intervals", "6", "-cold", "-restore", ckpt}, &o, &e); err == nil {
		t.Error("restore under a different workload accepted")
	}
}

func TestRunCheckpointFlagValidation(t *testing.T) {
	var o, e strings.Builder
	if err := run(t.Context(), []string{"-checkpoint", "a", "-restore", "b", "-intervals", "2"}, &o, &e); err == nil {
		t.Error("-checkpoint with -restore accepted")
	}
	if err := run(t.Context(), []string{"-checkpoint-at", "3", "-intervals", "2"}, &o, &e); err == nil {
		t.Error("-checkpoint-at without -checkpoint accepted")
	}
	if err := run(t.Context(), []string{"-checkpoint", filepath.Join(t.TempDir(), "x.ckpt"),
		"-checkpoint-at", "9", "-intervals", "2", "-cold"}, &o, &e); err == nil {
		t.Error("-checkpoint-at past the run end accepted")
	}
}

// -volumes shards the run and reports the per-volume breakdown.
func TestRunArrayVolumes(t *testing.T) {
	var out, errBuf strings.Builder
	err := run(t.Context(),
		[]string{"-workload", "tpcc", "-scheme", "lbica", "-intervals", "3",
			"-volumes", "2", "-route-policy", "hash", "-shard-workers", "1"},
		&out, &errBuf)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errBuf.String())
	}
	if !strings.Contains(out.String(), "per-volume (array run):") ||
		!strings.Contains(out.String(), "v1:") {
		t.Errorf("array run output lacks the per-volume breakdown:\n%s", out.String())
	}
	var o, e strings.Builder
	if err := run(t.Context(), []string{"-volumes", "2", "-route-policy", "robin", "-intervals", "2"}, &o, &e); err == nil {
		t.Error("unknown -route-policy accepted")
	}
}
