// Command lbicasim runs one workload under one scheme and prints the
// per-interval statistics, the policy timeline, and a summary.
//
// Usage:
//
//	lbicasim -workload mail -scheme lbica
//	lbicasim -workload tpcc -scheme wb -intervals 50 -csv
//	lbicasim -workload web -scheme sib -trace run.trc
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lbica"
)

func main() {
	var (
		workloadName = flag.String("workload", "tpcc", "workload: tpcc|mail|web|random-read|random-write|seq-read|seq-write|mixed")
		scheme       = flag.String("scheme", "lbica", "scheme: wb|sib|lbica or a static policy wt|ro|wo|wtwo")
		seed         = flag.Int64("seed", 1, "random seed (runs with equal seeds are bit-identical)")
		intervals    = flag.Int("intervals", 0, "monitor intervals to run (0 = paper default for the workload)")
		interval     = flag.Duration("interval", 200*time.Millisecond, "monitor interval length (virtual time)")
		rate         = flag.Float64("rate", 1, "workload IOPS scale factor")
		csv          = flag.Bool("csv", false, "emit per-interval CSV instead of the table")
		tracePath    = flag.String("trace", "", "write the binary block-layer trace to this file")
		recordPath   = flag.String("record", "", "record the application request stream to this file")
		replayPath   = flag.String("replay", "", "replay a request stream recorded with -record")
		cacheMiB     = flag.Int("cache-mib", 0, "cache size in MiB (0 = default 256)")
		cold         = flag.Bool("cold", false, "start with a cold cache (skip prewarm)")
		configPath   = flag.String("config", "", "load run options from a JSON file (flags override nothing; the file wins)")
	)
	flag.Parse()

	opts := lbica.Options{
		Workload:       *workloadName,
		Scheme:         *scheme,
		Seed:           *seed,
		Intervals:      *intervals,
		IntervalLength: *interval,
		RateFactor:     *rate,
		CacheMiB:       *cacheMiB,
		DisablePrewarm: *cold,
	}
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbicasim:", err)
			os.Exit(1)
		}
		opts, err = lbica.LoadOptions(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbicasim:", err)
			os.Exit(1)
		}
	}

	var closers []*os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbicasim:", err)
			os.Exit(1)
		}
		closers = append(closers, f)
		opts.TraceWriter = f
	}
	if *recordPath != "" {
		f, err := os.Create(*recordPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbicasim:", err)
			os.Exit(1)
		}
		closers = append(closers, f)
		opts.RecordTo = f
	}
	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbicasim:", err)
			os.Exit(1)
		}
		closers = append(closers, f)
		opts.ReplayFrom = f
	}

	report, err := lbica.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbicasim:", err)
		os.Exit(1)
	}
	for _, f := range closers {
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lbicasim:", err)
			os.Exit(1)
		}
	}

	if *csv {
		if err := report.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "lbicasim:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("workload %s under %s (%d intervals × %v)\n\n",
		report.Workload, report.Scheme, len(report.Intervals), *interval)
	fmt.Printf("%8s %14s %14s %6s %6s %6s %6s %6s %12s\n",
		"interval", "cacheQ(us)", "diskQ(us)", "burst", "R%", "W%", "P%", "E%", "avg_lat")
	step := len(report.Intervals) / 50
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(report.Intervals); i += step {
		iv := report.Intervals[i]
		fmt.Printf("%8d %14.1f %14.1f %6v %6.1f %6.1f %6.1f %6.1f %12v\n",
			iv.Index, iv.CacheLoadMicros, iv.DiskLoadMicros, iv.Burst,
			iv.ReadPct, iv.WritePct, iv.PromotePct, iv.EvictPct, iv.AvgLatency.Round(time.Microsecond))
	}

	if len(report.Policies) > 0 {
		fmt.Println("\npolicy timeline:")
		for _, p := range report.Policies {
			fmt.Printf("  interval %3d: %-4s (%s)\n", p.Interval, p.Policy, p.Group)
		}
	}

	s := report.Summary
	fmt.Printf("\nsummary: %d requests, hit ratio %.3f\n", s.Requests, s.HitRatio)
	fmt.Printf("  latency: avg %v  p50 %v  p99 %v  max %v\n",
		s.AvgLatency.Round(time.Microsecond), s.P50Latency.Round(time.Microsecond),
		s.P99Latency.Round(time.Microsecond), s.MaxLatency.Round(time.Microsecond))
	fmt.Printf("  load: cache %.0fµs  disk %.0fµs (per-interval max-latency means)\n", s.CacheLoadMean, s.DiskLoadMean)
	fmt.Printf("  bypassed to disk: %d, policy switches: %d\n", s.BypassedToDisk, s.PolicySwitches)
	fmt.Printf("  utilization: ssd %.2f  disk %.2f\n", s.SSDUtilization, s.HDDUtilization)
}
