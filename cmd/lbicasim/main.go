// Command lbicasim runs one workload under one scheme and prints the
// per-interval statistics, the policy timeline, and a summary. Ctrl-C
// cancels the run at the next simulation event boundary.
//
// Usage:
//
//	lbicasim -workload mail -scheme lbica
//	lbicasim -workload tpcc -scheme wb -intervals 50 -csv
//	lbicasim -workload web -scheme sib -trace run.trc
//	lbicasim -workload tpcc -volumes 4 -route-skew 1.2   # sharded array
//	lbicasim -workload tpcc -scheme array-lb -volumes 3 -route-skew 1.2
//	lbicasim -workload tpcc -checkpoint warm.ckpt -checkpoint-at 100
//	lbicasim -workload tpcc -restore warm.ckpt           # same output, resumed
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"lbica"
	"lbica/internal/cli"
)

func main() { cli.Main("lbicasim", run) }

// run is the testable body of main: flags in, table/CSV out.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lbicasim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workloadName = fs.String("workload", "tpcc", "workload: tpcc|mail|web|random-read|random-write|seq-read|seq-write|mixed")
		scheme       = fs.String("scheme", "lbica", "scheme: wb|sib|lbica|array-lb or a static policy wt|ro|wo|wtwo")
		seed         = fs.Int64("seed", 1, "random seed (runs with equal seeds are bit-identical)")
		intervals    = fs.Int("intervals", 0, "monitor intervals to run (0 = paper default for the workload)")
		interval     = fs.Duration("interval", 200*time.Millisecond, "monitor interval length (virtual time)")
		rate         = fs.Float64("rate", 1, "workload IOPS scale factor")
		csv          = fs.Bool("csv", false, "emit per-interval CSV instead of the table")
		tracePath    = fs.String("trace", "", "write the binary block-layer trace to this file")
		recordPath   = fs.String("record", "", "record the application request stream to this file")
		replayPath   = fs.String("replay", "", "replay a request stream recorded with -record")
		cacheMiB     = fs.Int("cache-mib", 0, "cache size in MiB (0 = default 256)")
		volumes      = fs.Int("volumes", 0, "shard the run across this many independent cache+disk volumes (0/1 = single stack)")
		routePolicy  = fs.String("route-policy", "", "array routing policy: uniform|hash|zipf (needs -volumes > 1)")
		routeSkew    = fs.Float64("route-skew", 0, "router Zipf skew over volume popularity (needs -volumes > 1; under -scheme array-lb it seeds the controller's initial weights)")
		routeVariant = fs.String("route-variant", "", "array-lb controller routing mechanism: weighted|p2c (needs -scheme array-lb)")
		shardWorkers = fs.Int("shard-workers", 0, "array shard pool size (0 = GOMAXPROCS, 1 = serial)")
		cold         = fs.Bool("cold", false, "start with a cold cache (skip prewarm)")
		ckptPath     = fs.String("checkpoint", "", "save the warmed simulation state to this file mid-run, then finish (resume with -restore)")
		ckptAt       = fs.Int("checkpoint-at", 0, "interval barrier -checkpoint saves at (0 = half the run)")
		restorePath  = fs.String("restore", "", "resume a run saved with -checkpoint (all other flags must describe the same run)")
		configPath   = fs.String("config", "", "load run options from a JSON file (flags override nothing; the file wins)")
		cpuProfile   = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile   = fs.String("memprofile", "", "write a heap profile (post-run) to this file")
	)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if *ckptPath != "" && *restorePath != "" {
		return errors.New("lbicasim: -checkpoint and -restore are mutually exclusive (save a run, then resume it in a later invocation)")
	}
	if *ckptAt != 0 && *ckptPath == "" {
		return errors.New("lbicasim: -checkpoint-at needs -checkpoint")
	}
	stopProfiles, err := cli.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(stderr, "lbicasim: profile:", err)
		}
	}()

	opts := lbica.Options{
		Workload:       *workloadName,
		Scheme:         *scheme,
		Seed:           *seed,
		Intervals:      *intervals,
		IntervalLength: *interval,
		RateFactor:     *rate,
		CacheMiB:       *cacheMiB,
		DisablePrewarm: *cold,
		Volumes:        *volumes,
		RoutePolicy:    *routePolicy,
		RouteSkew:      *routeSkew,
		RouteVariant:   *routeVariant,
		ShardWorkers:   *shardWorkers,
	}
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			return err
		}
		opts, err = lbica.LoadOptions(f)
		f.Close()
		if err != nil {
			return err
		}
	}

	// Best-effort close on error paths; the success path below closes
	// explicitly so flush errors are surfaced.
	var closers []*os.File
	closed := false
	defer func() {
		if !closed {
			for _, f := range closers {
				f.Close()
			}
		}
	}()
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		closers = append(closers, f)
		opts.TraceWriter = f
	}
	if *recordPath != "" {
		f, err := os.Create(*recordPath)
		if err != nil {
			return err
		}
		closers = append(closers, f)
		opts.RecordTo = f
	}
	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			return err
		}
		closers = append(closers, f)
		opts.ReplayFrom = f
	}

	// A cancelled run still yields the partial report accumulated up to
	// the cancellation — render it before surfacing the error. A report
	// with no intervals carries no data worth presenting as "partial".
	var report *lbica.Report
	var runErr error
	switch {
	case *ckptPath != "":
		report, runErr = lbica.RunCheckpoint(ctx, opts, *ckptPath, *ckptAt)
	case *restorePath != "":
		report, runErr = lbica.RunRestore(ctx, opts, *restorePath)
	default:
		report, runErr = lbica.RunContext(ctx, opts)
	}
	if runErr != nil && (report == nil || len(report.Intervals) == 0) {
		return runErr
	}
	for _, f := range closers {
		if err := f.Close(); err != nil {
			if runErr == nil {
				return err
			}
			// The interruption is the primary error; don't let a flush
			// failure of an already-partial file suppress the report.
			fmt.Fprintln(stderr, "lbicasim:", err)
		}
	}
	closed = true
	if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "lbicasim: run interrupted — partial results follow")
	}

	if *csv {
		return errors.Join(runErr, report.WriteCSV(stdout))
	}

	fmt.Fprintf(stdout, "workload %s under %s (%d intervals × %v)\n\n",
		report.Workload, report.Scheme, len(report.Intervals), report.IntervalLength)
	fmt.Fprintf(stdout, "%8s %14s %14s %6s %6s %6s %6s %6s %12s\n",
		"interval", "cacheQ(us)", "diskQ(us)", "burst", "R%", "W%", "P%", "E%", "avg_lat")
	step := len(report.Intervals) / 50
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(report.Intervals); i += step {
		iv := report.Intervals[i]
		fmt.Fprintf(stdout, "%8d %14.1f %14.1f %6v %6.1f %6.1f %6.1f %6.1f %12v\n",
			iv.Index, iv.CacheLoadMicros, iv.DiskLoadMicros, iv.Burst,
			iv.ReadPct, iv.WritePct, iv.PromotePct, iv.EvictPct, iv.AvgLatency.Round(time.Microsecond))
	}

	if len(report.Policies) > 0 {
		fmt.Fprintln(stdout, "\npolicy timeline:")
		for _, p := range report.Policies {
			fmt.Fprintf(stdout, "  interval %3d: %-4s (%s)\n", p.Interval, p.Policy, p.Group)
		}
	}

	s := report.Summary
	fmt.Fprintf(stdout, "\nsummary: %d requests, hit ratio %.3f\n", s.Requests, s.HitRatio)
	fmt.Fprintf(stdout, "  latency: avg %v  p50 %v  p99 %v  max %v\n",
		s.AvgLatency.Round(time.Microsecond), s.P50Latency.Round(time.Microsecond),
		s.P99Latency.Round(time.Microsecond), s.MaxLatency.Round(time.Microsecond))
	fmt.Fprintf(stdout, "  load: cache %.0fµs  disk %.0fµs (per-interval max-latency means)\n", s.CacheLoadMean, s.DiskLoadMean)
	fmt.Fprintf(stdout, "  bypassed to disk: %d, policy switches: %d\n", s.BypassedToDisk, s.PolicySwitches)
	fmt.Fprintf(stdout, "  utilization: ssd %.2f  disk %.2f\n", s.SSDUtilization, s.HDDUtilization)
	if len(report.PerVolume) > 0 {
		fmt.Fprintln(stdout, "\nper-volume (array run):")
		for v, vr := range report.PerVolume {
			if vr == nil {
				fmt.Fprintf(stdout, "  v%d: (cancelled before completion)\n", v)
				continue
			}
			vs := vr.Summary
			fmt.Fprintf(stdout, "  v%d: %d reqs, avg %v, hit %.3f, cache load %.0fµs, flips %d\n",
				v, vs.Requests, vs.AvgLatency.Round(time.Microsecond), vs.HitRatio, vs.CacheLoadMean, len(vr.Policies))
		}
	}
	return runErr
}
